# Developer workflow for the OFTT reproduction. The race target exists so
# concurrent plan-cache population in internal/ndr (and the lock-protected
# scratch buffers threaded through dcom/checkpoint/diverter, plus the
# atomic telemetry instruments) is exercised under the race detector on
# every change. `make verify` is the full pre-merge gate.

GO ?= go

.PHONY: build vet test race chaos bench fuzz verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ndr ./internal/dcom ./internal/checkpoint ./internal/diverter ./internal/telemetry ./internal/heartbeat

# Fixed-seed fault-injection campaigns under the race detector. -short
# keeps the long randomized sweep (TestRandomizedCampaigns) out of the
# gate; run `go test ./internal/chaos` for the full sweep.
chaos:
	$(GO) test -race -short ./internal/chaos

bench:
	$(GO) test -run xxx -bench BenchmarkNDR -benchmem ./internal/ndr
	$(GO) test -run xxx -bench 'BenchmarkNDRPlanned|BenchmarkE4|BenchmarkE8' -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkCounterAdd|BenchmarkHistogramObserve' -benchmem ./internal/telemetry

fuzz:
	$(GO) test -fuzz FuzzPlannedVsReflective -fuzztime 30s ./internal/ndr

verify: build vet test race chaos

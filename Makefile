# Developer workflow for the OFTT reproduction. The race target exists so
# concurrent plan-cache population in internal/ndr (and the lock-protected
# scratch buffers threaded through dcom/checkpoint/diverter, plus the
# atomic telemetry instruments) is exercised under the race detector on
# every change. `make verify` is the full pre-merge gate.

GO ?= go

.PHONY: build vet test race chaos bench bench-diverter fuzz verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ndr ./internal/dcom ./internal/checkpoint ./internal/diverter ./internal/telemetry ./internal/heartbeat

# Fixed-seed fault-injection campaigns under the race detector. -short
# keeps the long randomized sweep (TestRandomizedCampaigns) out of the
# gate; run `go test ./internal/chaos` for the full sweep.
chaos:
	$(GO) test -race -short ./internal/chaos

bench:
	$(GO) test -run xxx -bench BenchmarkNDR -benchmem ./internal/ndr
	$(GO) test -run xxx -bench 'BenchmarkNDRPlanned|BenchmarkE4|BenchmarkE8' -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkCounterAdd|BenchmarkHistogramObserve' -benchmem ./internal/telemetry

# Old-vs-new diverter throughput: runs the sharded implementation against
# the retained single-pump baseline on the producers x destinations grid
# and regenerates BENCH_DIVERTER.json. Fixed -benchtime (message counts,
# not wall time) keeps runs comparable: many messages for the free-handler
# cells, fewer for the ~1ms RPC-shaped cells. The gate fails the target if
# the 8x8 RPC cell is below 3x.
bench-diverter:
	$(GO) test -run xxx -bench 'BenchmarkDiverterThroughput/impl=.*/p=.*/d=.*/svc=0s' \
		-benchmem -benchtime 200000x ./internal/diverter | tee /tmp/bench_diverter.txt
	$(GO) test -run xxx -bench 'BenchmarkDiverterThroughput/impl=.*/p=.*/d=.*/svc=1ms' \
		-benchmem -benchtime 2000x ./internal/diverter | tee -a /tmp/bench_diverter.txt
	$(GO) run ./cmd/oftt-benchdiff -in /tmp/bench_diverter.txt -out BENCH_DIVERTER.json \
		-cell 'p=8/d=8/svc=1ms' -min-speedup 3.0

fuzz:
	$(GO) test -fuzz FuzzPlannedVsReflective -fuzztime 30s ./internal/ndr

verify: build vet test race chaos

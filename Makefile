# Developer workflow for the OFTT reproduction. The race target exists so
# concurrent plan-cache population in internal/ndr (and the lock-protected
# scratch buffers threaded through dcom/checkpoint/diverter, plus the
# atomic telemetry instruments) is exercised under the race detector on
# every change. `make verify` is the full pre-merge gate; the perf claims
# have their own gated targets (bench-diverter -> BENCH_DIVERTER.json,
# bench-dcom -> BENCH_DCOM.json, bench-fabric -> BENCH_FABRIC.json,
# bench-opc -> BENCH_OPC.json) kept out of verify because benchmark
# wall-time dwarfs the test suite.

GO ?= go

.PHONY: build vet test race chaos e2e soak bench bench-diverter bench-dcom bench-fabric bench-opc bench-ckpt fuzz verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ndr ./internal/dcom ./internal/checkpoint ./internal/diverter ./internal/telemetry ./internal/heartbeat

# Fixed-seed fault-injection campaigns under the race detector. -short
# keeps the long randomized sweep (TestRandomizedCampaigns) out of the
# gate; run `go test ./internal/chaos` for the full sweep.
chaos:
	$(GO) test -race -short ./internal/chaos

bench:
	$(GO) test -run xxx -bench BenchmarkNDR -benchmem ./internal/ndr
	$(GO) test -run xxx -bench 'BenchmarkNDRPlanned|BenchmarkE4|BenchmarkE8' -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkCounterAdd|BenchmarkHistogramObserve' -benchmem ./internal/telemetry

# Old-vs-new diverter throughput: runs the sharded implementation against
# the retained single-pump baseline on the producers x destinations grid
# and regenerates BENCH_DIVERTER.json. Fixed -benchtime (message counts,
# not wall time) keeps runs comparable: many messages for the free-handler
# cells, fewer for the ~1ms RPC-shaped cells. The gate fails the target if
# the 8x8 RPC cell is below 3x.
bench-diverter:
	$(GO) test -run xxx -bench 'BenchmarkDiverterThroughput/impl=.*/p=.*/d=.*/svc=0s' \
		-benchmem -benchtime 200000x ./internal/diverter | tee /tmp/bench_diverter.txt
	$(GO) test -run xxx -bench 'BenchmarkDiverterThroughput/impl=.*/p=.*/d=.*/svc=1ms' \
		-benchmem -benchtime 2000x ./internal/diverter | tee -a /tmp/bench_diverter.txt
	$(GO) run ./cmd/oftt-benchdiff -in /tmp/bench_diverter.txt -out BENCH_DIVERTER.json \
		-cell 'p=8/d=8/svc=1ms' -min-speedup 3.0

# Old-vs-new DCOM transport: the multiplexed/pipelined client against the
# retained one-connection-per-caller synchronous baseline, over the
# simulated fabric (1ms link latency, where pipelining pays) and real TCP
# loopback. Fixed iteration counts keep runs comparable; the c=1 sim
# cells are round-trip bound (~2ms/call) so they run fewer iterations.
# The gate fails the target if the 64-client depth-8 netsim cell is
# below 3x.
bench-dcom:
	$(GO) test -run xxx -bench 'BenchmarkDCOMConcurrent/impl=.*/net=sim/c=(1|8)/' \
		-benchmem -benchtime 2000x ./internal/dcom | tee /tmp/bench_dcom.txt
	$(GO) test -run xxx -bench 'BenchmarkDCOMConcurrent/impl=.*/net=sim/c=64/' \
		-benchmem -benchtime 10000x ./internal/dcom | tee -a /tmp/bench_dcom.txt
	$(GO) test -run xxx -bench 'BenchmarkDCOMConcurrent/impl=.*/net=tcp/c=8/' \
		-benchmem -benchtime 5000x ./internal/dcom | tee -a /tmp/bench_dcom.txt
	$(GO) run ./cmd/oftt-benchdiff -in /tmp/bench_dcom.txt -bench BenchmarkDCOMConcurrent \
		-new mux -old oneconn -out BENCH_DCOM.json \
		-cell 'net=sim/c=64/d=8/pay=64' -min-speedup 3.0

# Fabric beat-traffic scaling: boots a fabric per cell of the
# groups x nodes grid, forms three-replica groups, and measures mux-beat
# datagram and entry rates, regenerating BENCH_FABRIC.json. Gated twice:
# each cell's datagram rate must stay under the per-node-pair stream
# bound (2 x pairs / beat interval — the netsim traffic assertion), and
# per pool size a 32x group-count increase may grow the datagram rate at
# most 2x (sub-linear in groups).
bench-fabric:
	$(GO) run ./cmd/oftt-fabricbench -out BENCH_FABRIC.json

# Old-vs-new OPC fan-out: the shared-scan-cycle data plane against the
# retained per-group scanner baseline on the items x subscribers grid,
# regenerating BENCH_OPC.json. Iteration counts step down with cell size
# so the big cells stay bounded; the baseline's large cell runs at a
# relaxed scan rate (it cannot sustain 10k scan loops at the shared
# plane's period — the handicap favors the baseline and it still loses).
# The gate compares the deliveries/s rate metric, which is comparable
# across operating points, and fails the target if the 100k-item /
# 10k-subscriber cell is below 3x.
bench-opc:
	$(GO) test -run xxx -bench 'BenchmarkOPCFanout/impl=.*/items=1000$$/' \
		-benchtime 20x ./internal/opc | tee /tmp/bench_opc.txt
	$(GO) test -run xxx -bench 'BenchmarkOPCFanout/impl=.*/items=10000$$/' \
		-benchtime 5x ./internal/opc | tee -a /tmp/bench_opc.txt
	$(GO) test -run xxx -bench 'BenchmarkOPCFanout/impl=.*/items=100000$$/' \
		-benchtime 2x ./internal/opc | tee -a /tmp/bench_opc.txt
	$(GO) run ./cmd/oftt-benchdiff -in /tmp/bench_opc.txt -bench BenchmarkOPCFanout \
		-new shared -old pergroup -metric persec -out BENCH_OPC.json \
		-cell 'items=100000/subs=10000/chg=32' -min-speedup 3.0

# Production-size checkpoint state: per-delta recovery cost across the
# impl={stream,oneframe} x state={1MB,64MB,512MB} x mode={full,incr,oplog}
# grid, regenerating BENCH_CKPT.json. The one-frame baseline is the
# retained pre-streaming protocol (it has no op lane, so its oplog cells
# are absent by construction). Iteration counts step down with per-op
# cost: op-log ships are O(128B) so they run thousands of times, full
# ships of 512MB run twice. The growth gate enforces the headline claim:
# state grows 512x (1MB -> 512MB) while the op-log path's per-delta
# recovery cost may grow at most 2x.
bench-ckpt:
	$(GO) test -run xxx -bench 'BenchmarkCkptRecovery/impl=.*/state=.*/mode=oplog' \
		-benchtime 2000x ./internal/checkpoint | tee /tmp/bench_ckpt.txt
	$(GO) test -run xxx -bench 'BenchmarkCkptRecovery/impl=.*/state=.*/mode=incr' \
		-benchtime 200x ./internal/checkpoint | tee -a /tmp/bench_ckpt.txt
	$(GO) test -run xxx -bench 'BenchmarkCkptRecovery/impl=.*/state=1MB/mode=full' \
		-benchtime 50x ./internal/checkpoint | tee -a /tmp/bench_ckpt.txt
	$(GO) test -run xxx -bench 'BenchmarkCkptRecovery/impl=.*/state=64MB/mode=full' \
		-benchtime 5x ./internal/checkpoint | tee -a /tmp/bench_ckpt.txt
	$(GO) test -run xxx -bench 'BenchmarkCkptRecovery/impl=.*/state=512MB/mode=full' \
		-benchtime 2x ./internal/checkpoint | tee -a /tmp/bench_ckpt.txt
	$(GO) run ./cmd/oftt-benchdiff -in /tmp/bench_ckpt.txt -bench BenchmarkCkptRecovery \
		-new stream -old oneframe -out BENCH_CKPT.json -cell '' \
		-growth 'state=1MB/mode=oplog:state=512MB/mode=oplog:2.0' \
		-growth 'state=1MB/mode=incr:state=512MB/mode=incr:2.0'

# Black-box multi-process chaos: compiles the real oftt-node and scadasim
# binaries, boots a 3-node deployment on loopback TCP, and drives scripted
# plus seed-generated fault campaigns against live PIDs (kill -9, SIGSTOP,
# one-way link cuts via the per-link proxies). The tests skip themselves
# when the environment cannot host it (no toolchain to build the daemons,
# or sockets restricted), so the target degrades gracefully in minimal
# containers. Failures print a one-line OFTT_E2E_SEED repro.
e2e:
	OFTT_E2E=1 $(GO) test ./internal/e2e -count=1 -timeout 10m -v

# Long-haul soak: back-to-back seed-varied generated campaigns against one
# long-lived deployment until the budget is spent. Not part of verify.
#   make soak                      # 2 minutes
#   make soak SOAK=30m SEED=1234   # longer, pinned base seed
SOAK ?= 2m
SEED ?=
soak:
	OFTT_E2E=1 OFTT_E2E_SOAK=$(SOAK) OFTT_E2E_SEED=$(SEED) \
		$(GO) test ./internal/e2e -run TestE2ESoak -count=1 -timeout 12h -v

fuzz:
	$(GO) test -fuzz FuzzPlannedVsReflective -fuzztime 30s ./internal/ndr

verify: build vet test race chaos e2e

# Developer workflow for the OFTT reproduction. The race target exists so
# concurrent plan-cache population in internal/ndr (and the lock-protected
# scratch buffers threaded through dcom/checkpoint/diverter) is exercised
# under the race detector on every change.

GO ?= go

.PHONY: build test race bench fuzz

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ndr ./internal/dcom ./internal/checkpoint ./internal/diverter

bench:
	$(GO) test -run xxx -bench BenchmarkNDR -benchmem ./internal/ndr
	$(GO) test -run xxx -bench 'BenchmarkNDRPlanned|BenchmarkE4|BenchmarkE8' -benchmem .

fuzz:
	$(GO) test -fuzz FuzzPlannedVsReflective -fuzztime 30s ./internal/ndr

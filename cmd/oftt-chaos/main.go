// Command oftt-chaos runs seeded fault-injection campaigns against a live
// primary/backup deployment and checks the toolkit's invariants:
// eventually-single-primary, monotonic application state, no acknowledged
// message loss, and bounded recovery time.
//
// Every campaign's fault schedule is a pure function of its seed, so a
// failing run is replayed exactly with:
//
//	oftt-chaos -campaigns 1 -seed <failing-seed>
//
// Usage:
//
//	oftt-chaos                     # 10 campaigns, seeds 1..10
//	oftt-chaos -campaigns 20 -seed 1
//	oftt-chaos -duration 1s -v     # longer fault window, print schedules
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
)

func main() {
	campaigns := flag.Int("campaigns", 10, "number of campaigns to run (seeds seed..seed+n-1)")
	seed := flag.Int64("seed", 1, "base seed; each campaign uses seed+i")
	duration := flag.Duration("duration", 500*time.Millisecond, "fault-injection window per campaign")
	verbose := flag.Bool("v", false, "print every campaign's schedule, not just failures")
	flag.Parse()

	// SIGTERM/SIGINT drain gracefully: the in-flight campaign stops
	// injecting, repairs outstanding faults, and still reports a verdict;
	// remaining campaigns are skipped. A second signal kills immediately.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	failed, ran := 0, 0
	for i := 0; i < *campaigns; i++ {
		if ctx.Err() != nil {
			break
		}
		s := *seed + int64(i)
		start := time.Now()
		res, err := chaos.RunContext(ctx, chaos.Config{Seed: s, Duration: *duration})
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: campaign error: %v\n", s, err)
			os.Exit(2)
		}
		ran++
		elapsed := time.Since(start).Round(time.Millisecond)
		if res.Passed() {
			fmt.Printf("seed %-6d PASS  faults=%d skipped=%d delivered=%d/%d worst_recovery=%v  (%v)\n",
				s, res.Injected, res.Skipped, res.Delivered, res.Enqueued,
				res.WorstRecovery.Round(time.Millisecond), elapsed)
			if *verbose {
				fmt.Printf("  schedule: %s\n", res.Schedule.Summary())
			}
			continue
		}
		failed++
		fmt.Printf("seed %-6d FAIL  faults=%d skipped=%d delivered=%d/%d  (%v)\n",
			s, res.Injected, res.Skipped, res.Delivered, res.Enqueued, elapsed)
		for _, v := range res.Violations {
			fmt.Printf("  violated %-26s %s\n", v.Invariant, v.Detail)
		}
		fmt.Printf("  schedule:\n%s", indent(res.Schedule.String()))
		fmt.Printf("  reproduce: go run ./cmd/oftt-chaos -campaigns 1 -seed %d -duration %v\n", s, *duration)
	}

	if failed > 0 {
		fmt.Printf("\n%d/%d campaigns violated invariants\n", failed, ran)
		os.Exit(1)
	}
	if ran < *campaigns {
		fmt.Printf("\ninterrupted: %d/%d campaigns ran, all passed\n", ran, *campaigns)
		return
	}
	fmt.Printf("\nall %d campaigns passed every invariant\n", *campaigns)
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}

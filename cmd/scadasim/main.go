// Command scadasim exercises the Figure 1 reference configurations: it
// builds the sensor -> PLC -> OPC server -> OPC client pipeline in both
// topologies — (a) control with remote monitoring over DCOM and
// (b) integrated monitoring and control — and reports the field-to-
// operator data path's throughput, latency, and quality.
//
// With -feed it instead runs as the black-box e2e deployment's message
// source: a long-lived feeder process publishing numbered messages to
// whichever oftt-node daemon acks as primary, keeping a delivery ledger
// served over HTTP (see internal/e2e/feed).
//
// Usage:
//
//	scadasim               # 1-second measurement window
//	scadasim -window 3s
//	scadasim -feed -feed-addrs n1.json,n2.json -feed-http 127.0.0.1:0
//
// Both modes shut down gracefully on SIGTERM/SIGINT.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/e2e/feed"
	"repro/internal/experiments"
)

func main() {
	var (
		window    = flag.Duration("window", time.Second, "measurement window per topology")
		feedMode  = flag.Bool("feed", false, "run as the e2e feeder instead of the benchmark")
		feedAddrs = flag.String("feed-addrs", "", "comma-separated daemon addr-file paths (feed mode)")
		feedEvery = flag.Duration("feed-every", 15*time.Millisecond, "message generation period (feed mode)")
		feedHTTP  = flag.String("feed-http", "127.0.0.1:0", "ledger HTTP listen address (feed mode)")
		feedFile  = flag.String("feed-addr-file", "", "write the ledger HTTP address here once up (feed mode)")
	)
	flag.Parse()

	var err error
	if *feedMode {
		err = runFeeder(*feedAddrs, *feedEvery, *feedHTTP, *feedFile)
	} else {
		err = run(*window)
	}
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(window time.Duration) error {
	// The measurement is bounded; a signal during it just means "stop
	// now" — report nothing and exit clean.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)

	type result struct {
		rows []experiments.E1Row
		err  error
	}
	resC := make(chan result, 1)
	go func() {
		fmt.Println("building Figure 1 reference configurations ...")
		rows, err := experiments.RunE1(window)
		resC <- result{rows, err}
	}()

	select {
	case s := <-sig:
		log.Printf("received %s, shutting down", s)
		return nil
	case res := <-resC:
		if res.err != nil {
			return res.err
		}
		fmt.Print(experiments.E1Table(res.rows).Render())
		for _, r := range res.rows {
			if r.Updates == 0 {
				return fmt.Errorf("%s: no data reached the operator", r.Topology)
			}
		}
		return nil
	}
}

func runFeeder(addrList string, every time.Duration, httpAddr, addrFile string) error {
	var files []string
	for _, p := range strings.Split(addrList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			files = append(files, p)
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("scadasim: -feed requires -feed-addrs")
	}
	logf := log.New(os.Stderr, "[feeder] ", log.Lmicroseconds).Printf
	f, err := feed.Start(feed.Config{
		AddrFiles: files,
		Every:     every,
		HTTPAddr:  httpAddr,
		Logf:      logf,
	})
	if err != nil {
		return err
	}
	defer f.Close()

	if addrFile != "" {
		tmp := addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(f.HTTPAddr()), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, addrFile); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	logf("received %s, draining", s)
	if snap, drained := f.Drain(5 * time.Second); !drained {
		logf("drain incomplete: %d pending", snap.Pending)
	}
	return nil
}

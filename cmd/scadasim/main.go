// Command scadasim exercises the Figure 1 reference configurations: it
// builds the sensor -> PLC -> OPC server -> OPC client pipeline in both
// topologies — (a) control with remote monitoring over DCOM and
// (b) integrated monitoring and control — and reports the field-to-
// operator data path's throughput, latency, and quality.
//
// Usage:
//
//	scadasim               # 1-second measurement window
//	scadasim -window 3s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	window := flag.Duration("window", time.Second, "measurement window per topology")
	flag.Parse()

	if err := run(*window); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(window time.Duration) error {
	fmt.Println("building Figure 1 reference configurations ...")
	rows, err := experiments.RunE1(window)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E1Table(rows).Render())
	for _, r := range rows {
		if r.Updates == 0 {
			return fmt.Errorf("%s: no data reached the operator", r.Topology)
		}
	}
	return nil
}

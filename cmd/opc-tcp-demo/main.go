// Command opc-tcp-demo exercises the toolkit's real-TCP transport: the
// same DCOM analog and OPC layer that the simulations use, over actual
// loopback sockets — the multi-process deployment path.
//
// Run a server in one terminal and a reader in another:
//
//	opc-tcp-demo -mode serve -addr 127.0.0.1:7777
//	opc-tcp-demo -mode read  -addr 127.0.0.1:7777
//
// Or let one invocation do both (the default): it spawns the server
// in-process, reads through a real socket, and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/device"
	"repro/internal/opc"
)

// demoOID is the well-known object identity both halves agree on.
var demoOID = com.MustParseGUID("{7cde1200-bbbb-4000-8000-0a0a0a0a0a01}")

func main() {
	mode := flag.String("mode", "both", "serve | read | both")
	addr := flag.String("addr", "127.0.0.1:0", "TCP address (host:port; port 0 = ephemeral)")
	runFor := flag.Duration("run", 2*time.Second, "reader duration")
	flag.Parse()

	if err := run(*mode, *addr, *runFor); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(mode, addr string, runFor time.Duration) error {
	switch mode {
	case "serve":
		boundAddr, stop, err := serve(addr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("OPC server exported over TCP at %s — ctrl-c to stop\n", boundAddr)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		return nil
	case "read":
		return read(addr, runFor)
	case "both":
		boundAddr, stop, err := serve(addr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("server up at %s; reading through a real socket\n", boundAddr)
		return read(boundAddr, runFor)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// serve stands a PLC + OPC server up and exports it over real TCP.
func serve(addr string) (boundAddr string, stop func(), err error) {
	server := opc.NewServer("TcpDemo.OPC.1")
	plc := device.NewPLC("plc1", 20*time.Millisecond)
	plc.AttachSensor(device.NewSensor("temp",
		device.Sine{Amplitude: 5, Period: time.Second, Offset: 20}, 0.05, 1))
	plc.AttachSensor(device.NewSensor("flow",
		device.NewRandomWalk(50, 2, 0, 100, 2), 0.1, 3))
	adapter, err := device.NewOPCAdapter(plc, device.NewBus(0), server, 20*time.Millisecond)
	if err != nil {
		return "", nil, err
	}
	exp, err := dcom.NewExporterTCP(addr)
	if err != nil {
		return "", nil, err
	}
	if err := opc.ExportServer(exp, demoOID, server); err != nil {
		exp.Close()
		return "", nil, err
	}
	plc.Start()
	adapter.Start()
	return string(exp.Addr()), func() {
		adapter.Stop()
		plc.Stop()
		exp.Close()
	}, nil
}

// read subscribes over TCP and prints updates until the duration passes.
func read(addr string, runFor time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cli, err := dcom.DialTCPContext(ctx, addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	conn := opc.NewRemoteConnection(cli, demoOID)
	client := opc.NewClient(conn)
	defer client.Close()

	tags, err := client.Browse("")
	if err != nil {
		return fmt.Errorf("browse: %w", err)
	}
	fmt.Printf("namespace: %v\n", tags)

	subCtx, stop := context.WithTimeout(context.Background(), runFor)
	defer stop()
	sub, err := client.Subscribe(subCtx, opc.SubscriptionConfig{
		Name:       "demo",
		UpdateRate: 50 * time.Millisecond,
		Tags:       tags,
	})
	if err != nil {
		return err
	}
	defer sub.Close()

	// The subscription closes (and its channel drains) when subCtx expires.
	updates := 0
	for batch := range sub.Updates() {
		for _, u := range batch {
			updates++
			if updates%10 == 0 {
				fmt.Printf("  %-12s = %8s  [%s]\n", u.Tag, u.Value.String(), u.Quality)
			}
		}
	}
	if updates == 0 {
		return fmt.Errorf("no updates arrived over TCP")
	}
	fmt.Printf("received %d updates over real TCP\n", updates)
	return nil
}

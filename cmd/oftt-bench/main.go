// Command oftt-bench regenerates every figure/table of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// paper-vs-measured records).
//
// Usage:
//
//	oftt-bench            # run all experiments
//	oftt-bench -exp E3    # run one experiment
//	oftt-bench -quick     # smaller parameter sweeps
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: E1..E11, A1..A3, NDR, TELEMETRY, or 'all'")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	flag.Parse()

	if err := run(strings.ToUpper(*exp), *quick); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(which string, quick bool) error {
	runners := []struct {
		id string
		fn func(bool) error
	}{
		{"E1", runE1},
		{"E2", runE2},
		{"E3", runE3},
		{"E4", runE4},
		{"E5", runE5},
		{"E6", runE6},
		{"E7", runE7},
		{"E8", runE8},
		{"E9", runE9},
		{"E10", runE10},
		{"E11", runE11},
		{"A1", runA1},
		{"A2", runA2},
		{"A3", runA3},
		{"NDR", runNDR},
		{"TELEMETRY", runTelemetry},
	}
	matched := false
	for _, r := range runners {
		if which != "ALL" && which != r.id {
			continue
		}
		matched = true
		start := time.Now()
		if err := r.fn(quick); err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q (want E1..E11, A1..A3, NDR, TELEMETRY, or all)", which)
	}
	return nil
}

func runNDR(bool) error {
	rows, err := experiments.RunNDR()
	if err != nil {
		return err
	}
	fmt.Print(experiments.NDRTable(rows).Render())
	return nil
}

func runA1(quick bool) error {
	trials := 8
	if quick {
		trials = 3
	}
	rows, err := experiments.RunA1(trials)
	if err != nil {
		return err
	}
	fmt.Print(experiments.A1Table(rows).Render())
	return nil
}

func runA2(bool) error {
	rows, err := experiments.RunA2(40)
	if err != nil {
		return err
	}
	fmt.Print(experiments.A2Table(rows).Render())
	return nil
}

func runA3(quick bool) error {
	periods := []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 160 * time.Millisecond}
	if quick {
		periods = periods[:2]
	}
	rows, err := experiments.RunA3(periods, 50)
	if err != nil {
		return err
	}
	fmt.Print(experiments.A3Table(rows).Render())
	return nil
}

func runE1(quick bool) error {
	window := time.Second
	if quick {
		window = 300 * time.Millisecond
	}
	rows, err := experiments.RunE1(window)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E1Table(rows).Render())
	return nil
}

func runE2(bool) error {
	checks, err := experiments.RunE2()
	if err != nil {
		return err
	}
	fmt.Print(experiments.E2Table(checks).Render())
	for _, c := range checks {
		if !c.OK {
			return fmt.Errorf("architecture arrow failed: %s", c.Arrow)
		}
	}
	return nil
}

func runE3(bool) error {
	rows, err := experiments.RunE3All(100)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E3Table(rows).Render())
	return nil
}

func runE4(quick bool) error {
	sizes := []int{1 << 10, 16 << 10, 256 << 10, 1 << 20}
	iters := 20
	if quick {
		sizes = []int{1 << 10, 64 << 10}
		iters = 5
	}
	rows, err := experiments.RunE4(sizes, []int{1, 10, 100}, iters)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E4Table(rows).Render())
	return nil
}

func runE5(quick bool) error {
	trials := 20
	if quick {
		trials = 6
	}
	rows, err := experiments.RunE5([]int{1, 2, 5, 10}, trials, 120*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E5Table(rows).Render())
	return nil
}

func runE6(quick bool) error {
	msgs := 60
	if quick {
		msgs = 30
	}
	res, err := experiments.RunE6(msgs, 6)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E6Table(res).Render())
	if res.Lost > 0 {
		return fmt.Errorf("diverter lost %d messages", res.Lost)
	}
	return nil
}

func runE7(quick bool) error {
	intervals := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 50 * time.Millisecond}
	loss := []int{0, 10, 30}
	trials := 5
	if quick {
		intervals = intervals[:2]
		loss = []int{0, 30}
		trials = 3
	}
	rows, err := experiments.RunE7(intervals, loss, trials)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E7Table(rows).Render())

	hTrials := 6
	if quick {
		hTrials = 3
	}
	hists, err := experiments.RunE7Histograms(hTrials, 400)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E7HistogramTable(hists).Render())
	return nil
}

func runTelemetry(bool) error {
	rows, err := experiments.RunTelemetry()
	if err != nil {
		return err
	}
	fmt.Print(experiments.TelemetryTable(rows).Render())
	return nil
}

func runE9(quick bool) error {
	campaigns := 8
	if quick {
		campaigns = 3
	}
	rows, err := experiments.RunE9(campaigns, 1, quick)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E9Table(rows).Render())
	for _, r := range rows {
		if r.Verdict != "pass" {
			return fmt.Errorf("seed %d violated invariants: %s", r.Seed, r.Verdict)
		}
	}
	return nil
}

func runE10(quick bool) error {
	rows, err := experiments.RunE10(quick)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E10Table(rows).Render())
	return nil
}

func runE11(quick bool) error {
	rows, err := experiments.RunE11(quick)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E11Table(rows).Render())
	return nil
}

func runE8(quick bool) error {
	calls := 2000
	if quick {
		calls = 500
	}
	res, err := experiments.RunE8(calls)
	if err != nil {
		return err
	}
	fmt.Print(experiments.E8Table(res).Render())
	return nil
}

// Command calltrack runs the paper's Section 4 demonstration (Figure 3 /
// Table 1): the Call Track application on a redundant pair under OFTT,
// tracking a simulated telephone system, with a chosen failure injected.
//
// Usage:
//
//	calltrack                       # run scenario a (node failure)
//	calltrack -scenario b           # NT crash
//	calltrack -scenario c           # application failure
//	calltrack -scenario d           # middleware failure
//	calltrack -scenario none -run 2s  # just run and show the histogram
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/oftt"
)

func main() {
	scenario := flag.String("scenario", "a", "failure to inject: a|b|c|d|none")
	runFor := flag.Duration("run", time.Second, "tracking time before the failure")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if err := run(*scenario, *runFor, *seed); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(scenario string, runFor time.Duration, seed int64) error {
	ct, err := oftt.NewCallTrackDeployment(oftt.CallTrackConfig{
		Config:     oftt.DeploymentConfig{Seed: seed},
		UpdateRate: 5 * time.Millisecond,
		SimTick:    2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer ct.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := ct.WaitForRolesContext(ctx); err != nil {
		return err
	}
	primary := ct.Primary().Node.Name()
	fmt.Printf("pair formed: primary=%s backup=%s\n",
		primary, ct.Backup().Node.Name())

	time.Sleep(runFor)
	tr := ct.ActiveTracker()
	if tr == nil || tr.Samples() == 0 {
		return fmt.Errorf("no telephone data flowed")
	}
	fmt.Println()
	fmt.Println(tr.RenderHistogram(40))

	var inject func(string) error
	switch scenario {
	case "a":
		fmt.Println("injecting: (a) node failure — powering the primary off")
		inject = ct.KillNode
	case "b":
		fmt.Println("injecting: (b) NT crash — blue screen of death")
		inject = ct.BlueScreen
	case "c":
		fmt.Println("injecting: (c) application software failure")
		inject = ct.KillApp
	case "d":
		fmt.Println("injecting: (d) OFTT middleware failure")
		inject = ct.KillEngine
	case "none":
		fmt.Println("no failure injected; done")
		return nil
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}

	before := tr.Samples()
	start := time.Now()
	if err := inject(primary); err != nil {
		return err
	}
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if tr := ct.ActiveTracker(); tr != nil && tr.Samples() > before {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	tr = ct.ActiveTracker()
	if tr == nil || tr.Samples() <= before {
		return fmt.Errorf("system did not recover")
	}
	fmt.Printf("recovered in %v; primary now %s\n",
		time.Since(start).Round(time.Millisecond), ct.Primary().Node.Name())
	if msg := tr.Verify(); msg != "" {
		return fmt.Errorf("history corrupted: %s", msg)
	}

	time.Sleep(300 * time.Millisecond)
	fmt.Println()
	fmt.Println(tr.RenderHistogram(40))
	fmt.Println("history intact; system operating")
	return nil
}

// Command oftt-sysmon runs the Section 4 demonstration and renders the
// OFTT System Monitor (Section 2.2.4) as a live text dashboard while a
// failure is injected and recovered.
//
// Usage:
//
//	oftt-sysmon               # dashboard for 3 seconds with a node failure at 1s
//	oftt-sysmon -run 5s -fail 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/oftt"
)

func main() {
	runFor := flag.Duration("run", 3*time.Second, "total dashboard time")
	failAt := flag.Duration("fail", time.Second, "when to power the primary off")
	flag.Parse()

	if err := run(*runFor, *failAt); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(runFor, failAt time.Duration) error {
	ct, err := oftt.NewCallTrackDeployment(oftt.CallTrackConfig{
		Config:     oftt.DeploymentConfig{Seed: 9},
		UpdateRate: 5 * time.Millisecond,
		SimTick:    2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer ct.Stop()
	if err := ct.WaitForRoles(3 * time.Second); err != nil {
		return err
	}
	if ct.Monitor == nil {
		return fmt.Errorf("monitor not enabled")
	}

	start := time.Now()
	failed := false
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for time.Since(start) < runFor {
		<-ticker.C
		if !failed && time.Since(start) >= failAt {
			p := ct.Primary()
			if p != nil {
				fmt.Printf("\n*** injecting node failure on %s ***\n\n", p.Node.Name())
				_ = ct.KillNode(p.Node.Name())
			}
			failed = true
		}
		fmt.Println(ct.Monitor.Render())
		if tr := ct.ActiveTracker(); tr != nil {
			fmt.Printf("calltrack samples: %d\n\n", tr.Samples())
		}
	}
	return nil
}

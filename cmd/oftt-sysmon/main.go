// Command oftt-sysmon runs the Section 4 demonstration and renders the
// OFTT System Monitor (Section 2.2.4) as a live text dashboard while a
// failure is injected and recovered. The deployment's telemetry hub is
// served over HTTP for the duration: a Prometheus-style text exposition
// at /metrics and a full JSON snapshot (statuses, events, metrics,
// recovery traces) at /snapshot.json. After the run it prints the
// recovery timeline the tracer assembled for the injected failure.
//
// Usage:
//
//	oftt-sysmon               # dashboard for 3 seconds with a node failure at 1s
//	oftt-sysmon -run 5s -fail 2s
//	oftt-sysmon -listen 127.0.0.1:9090   # pin the exposition address
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/oftt"
)

func main() {
	runFor := flag.Duration("run", 3*time.Second, "total dashboard time")
	failAt := flag.Duration("fail", time.Second, "when to power the primary off")
	listen := flag.String("listen", "127.0.0.1:0", "telemetry exposition address ('' disables)")
	flag.Parse()

	if err := run(*runFor, *failAt, *listen); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(runFor, failAt time.Duration, listen string) error {
	ct, err := oftt.NewCallTrackDeployment(oftt.CallTrackConfig{
		Config:     oftt.DeploymentConfig{Seed: 9},
		UpdateRate: 5 * time.Millisecond,
		SimTick:    2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer ct.Shutdown(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := ct.WaitForRolesContext(ctx); err != nil {
		return err
	}
	if ct.Monitor == nil {
		return fmt.Errorf("monitor not enabled")
	}

	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		srv := &http.Server{Handler: ct.Telemetry.Handler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (text) and /snapshot.json (JSON)\n\n", ln.Addr())
	}

	start := time.Now()
	failed := false
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for time.Since(start) < runFor {
		<-ticker.C
		if !failed && time.Since(start) >= failAt {
			p := ct.Primary()
			if p != nil {
				fmt.Printf("\n*** injecting node failure on %s ***\n\n", p.Node.Name())
				_ = ct.KillNode(p.Node.Name())
			}
			failed = true
		}
		fmt.Println(ct.Monitor.Render())
		if tr := ct.ActiveTracker(); tr != nil {
			fmt.Printf("calltrack samples: %d\n\n", tr.Samples())
		}
	}

	// Recovery timelines assembled by the hub tracer for this run.
	traces := ct.Telemetry.Tracer().Traces()
	if cur, ok := ct.Telemetry.Tracer().Current(); ok {
		traces = append(traces, cur)
	}
	if len(traces) > 0 {
		fmt.Println("recovery timelines:")
		for _, tr := range traces {
			fmt.Print(tr.String())
		}
	}
	return nil
}

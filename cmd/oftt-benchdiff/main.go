// Command oftt-benchdiff turns raw `go test -bench` output from an
// impl-labelled benchmark grid into a machine-readable old-vs-new record.
// It expects sub-benchmark names of the form
//
//	Benchmark<Name>/impl=<label>/<cell...>
//
// pairs the new and old implementation labels cell by cell, computes each
// cell's speedup from ns/op, writes the result as JSON, and enforces a
// minimum speedup on one gate cell so the performance claim is a
// reproducible check, not a README sentence.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkDiverterThroughput ./internal/diverter | \
//	  oftt-benchdiff -out BENCH_DIVERTER.json -cell p=8/d=8/svc=1ms -min-speedup 3.0
//
//	go test -run xxx -bench BenchmarkDCOMConcurrent ./internal/dcom | \
//	  oftt-benchdiff -bench BenchmarkDCOMConcurrent -new mux -old oneconn \
//	    -out BENCH_DCOM.json -cell net=sim/c=64/d=8/pay=64 -min-speedup 3.0
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// measurement is one sub-benchmark's parsed result line.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	PerSec      float64 `json:"per_sec,omitempty"` // custom throughput metric (msgs/s, calls/s, ...)
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// cell pairs the two implementations on one grid point.
type cell struct {
	Cell    string       `json:"cell"`    // e.g. p=8/d=8/svc=1ms
	New     *measurement `json:"new"`     // the -new impl's measurement
	Old     *measurement `json:"old"`     // the -old impl's measurement
	Speedup float64      `json:"speedup"` // old ns/op ÷ new ns/op
}

// growthGate checks how the NEW implementation's ns/op scales between two
// grid cells: the "to" cell may cost at most MaxRatio times the "from"
// cell. This gates sub-linear claims ("state grew 512x, recovery grew
// <=2x") that a plain old-vs-new speedup cannot express.
type growthGate struct {
	From     string  `json:"from"`
	To       string  `json:"to"`
	MaxRatio float64 `json:"max_ratio"`
	Ratio    float64 `json:"ratio"`
	Pass     bool    `json:"pass"`
}

type report struct {
	Benchmark string `json:"benchmark"`
	NewImpl   string `json:"new_impl"`
	OldImpl   string `json:"old_impl"`
	Metric    string `json:"metric,omitempty"`       // speedup source: nsop or persec
	PerSec    string `json:"per_sec_unit,omitempty"` // unit of the throughput metric
	Gate      struct {
		Cell       string  `json:"cell"`
		MinSpeedup float64 `json:"min_speedup"`
		Speedup    float64 `json:"speedup"`
		Pass       bool    `json:"pass"`
	} `json:"gate"`
	Growth []growthGate `json:"growth,omitempty"`
	Cells  []cell       `json:"cells"`
}

// growthFlags collects repeated -growth 'from:to:maxRatio' values.
type growthFlags []string

func (g *growthFlags) String() string { return strings.Join(*g, ",") }

func (g *growthFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func parseGrowth(spec string) (from, to string, maxRatio float64, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return "", "", 0, fmt.Errorf("bad -growth %q (want from:to:maxRatio)", spec)
	}
	maxRatio, err = strconv.ParseFloat(parts[2], 64)
	if err != nil || maxRatio <= 0 {
		return "", "", 0, fmt.Errorf("bad -growth ratio in %q", spec)
	}
	return parts[0], parts[1], maxRatio, nil
}

func main() {
	in := flag.String("in", "-", "bench output file ('-' for stdin)")
	out := flag.String("out", "BENCH_DIVERTER.json", "JSON report path")
	benchName := flag.String("bench", "BenchmarkDiverterThroughput", "benchmark whose sub-results to parse")
	newImpl := flag.String("new", "sharded", "impl= label of the new implementation")
	oldImpl := flag.String("old", "singlepump", "impl= label of the old (baseline) implementation")
	gateCell := flag.String("cell", "p=8/d=8/svc=1ms", "grid cell the speedup gate applies to ('' disables the speedup gate)")
	minSpeedup := flag.Float64("min-speedup", 3.0, "minimum new-over-old speedup for the gate cell")
	metric := flag.String("metric", "nsop", "speedup source: nsop (old/new ns/op) or persec (new/old custom throughput)")
	var growth growthFlags
	flag.Var(&growth, "growth", "repeatable growth gate 'cellFrom:cellTo:maxRatio': new impl ns/op at cellTo must be <= maxRatio x cellFrom")
	flag.Parse()

	if *metric != "nsop" && *metric != "persec" {
		fatal(fmt.Errorf("unknown -metric %q (want nsop or persec)", *metric))
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := build(r, *benchName, *newImpl, *oldImpl, *gateCell, *minSpeedup, *metric, growth)
	if err != nil {
		fatal(err)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d cells)\n", *out, len(rep.Cells))
	unit := rep.PerSec
	if unit == "" {
		unit = "op/s"
	}
	for _, c := range rep.Cells {
		if c.Old == nil {
			fmt.Printf("  %-28s %12.0f ns/op  (no %s cell)\n", c.Cell, c.New.NsPerOp, rep.OldImpl)
			continue
		}
		newRate, oldRate := c.New.PerSec, c.Old.PerSec
		if newRate == 0 && c.New.NsPerOp > 0 {
			newRate, oldRate = 1e9/c.New.NsPerOp, 1e9/c.Old.NsPerOp
		}
		fmt.Printf("  %-28s %10.0f vs %10.0f %s  speedup %.2fx\n",
			c.Cell, newRate, oldRate, unit, c.Speedup)
	}
	if rep.Gate.Cell != "" {
		if !rep.Gate.Pass {
			fatal(fmt.Errorf("gate cell %s: speedup %.2fx below required %.2fx",
				rep.Gate.Cell, rep.Gate.Speedup, rep.Gate.MinSpeedup))
		}
		fmt.Printf("gate %s: %.2fx >= %.2fx ok\n", rep.Gate.Cell, rep.Gate.Speedup, rep.Gate.MinSpeedup)
	}
	for _, g := range rep.Growth {
		if !g.Pass {
			fatal(fmt.Errorf("growth gate %s -> %s: ratio %.2fx above allowed %.2fx",
				g.From, g.To, g.Ratio, g.MaxRatio))
		}
		fmt.Printf("growth %s -> %s: %.2fx <= %.2fx ok\n", g.From, g.To, g.Ratio, g.MaxRatio)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oftt-benchdiff:", err)
	os.Exit(1)
}

// build parses bench output and assembles the paired report. metric
// selects the speedup source: "nsop" divides old ns/op by new ns/op;
// "persec" divides the new custom throughput metric by the old (useful
// when the grid runs the implementations at different operating points
// and the rate metric is the comparable quantity).
func build(r io.Reader, benchName, newImpl, oldImpl, gateCell string, minSpeedup float64, metric string, growth []string) (*report, error) {
	rep := &report{Benchmark: benchName, NewImpl: newImpl, OldImpl: oldImpl, Metric: metric}
	byImpl := map[string]map[string]*measurement{} // impl -> cell -> measurement
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		impl, cellName, m, unit, ok := parseLine(sc.Text(), benchName)
		if !ok {
			continue
		}
		if byImpl[impl] == nil {
			byImpl[impl] = map[string]*measurement{}
		}
		byImpl[impl][cellName] = m
		if unit != "" {
			rep.PerSec = unit
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	newM, oldM := byImpl[newImpl], byImpl[oldImpl]
	if len(newM) == 0 || len(oldM) == 0 {
		return nil, fmt.Errorf("no paired results found (%s=%d %s=%d lines)",
			newImpl, len(newM), oldImpl, len(oldM))
	}
	// Every new-impl cell is reported; speedup only where the old impl
	// ran the same cell (new-only cells keep Old nil and Speedup 0).
	names := make([]string, 0, len(newM))
	for name := range newM {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := cell{Cell: name, New: newM[name], Old: oldM[name]}
		if c.Old != nil {
			if metric == "persec" && c.Old.PerSec > 0 {
				c.Speedup = c.New.PerSec / c.Old.PerSec
			} else if c.New.NsPerOp > 0 {
				c.Speedup = c.Old.NsPerOp / c.New.NsPerOp
			}
		}
		rep.Cells = append(rep.Cells, c)
	}

	rep.Gate.Cell = gateCell
	rep.Gate.MinSpeedup = minSpeedup
	if gateCell != "" {
		for _, c := range rep.Cells {
			if c.Cell == gateCell {
				rep.Gate.Speedup = c.Speedup
				rep.Gate.Pass = c.Speedup >= minSpeedup
			}
		}
		if rep.Gate.Speedup == 0 {
			return nil, fmt.Errorf("gate cell %q not present in bench output", gateCell)
		}
	}

	// Growth gates read the NEW impl's raw measurements, not the paired
	// cells: a new-only cell (e.g. a mode the baseline cannot run) is a
	// legitimate growth endpoint.
	for _, spec := range growth {
		from, to, maxRatio, err := parseGrowth(spec)
		if err != nil {
			return nil, err
		}
		fromM, toM := newM[from], newM[to]
		if fromM == nil || toM == nil {
			return nil, fmt.Errorf("growth gate %q: cell missing in %s results", spec, newImpl)
		}
		if fromM.NsPerOp <= 0 {
			return nil, fmt.Errorf("growth gate %q: zero ns/op baseline", spec)
		}
		g := growthGate{From: from, To: to, MaxRatio: maxRatio,
			Ratio: toM.NsPerOp / fromM.NsPerOp}
		g.Pass = g.Ratio <= maxRatio
		rep.Growth = append(rep.Growth, g)
	}
	return rep, nil
}

// parseLine extracts one result line of the selected benchmark:
//
//	BenchmarkDiverterThroughput/impl=sharded/p=8/d=8/svc=1ms  2000  142744 ns/op  7006 msgs/s  382 B/op  4 allocs/op
//
// Any custom metric whose unit ends in "/s" is treated as the throughput
// metric; its unit is returned so the report can echo it.
func parseLine(line, benchName string) (impl, cellName string, m *measurement, perSecUnit string, ok bool) {
	if !strings.HasPrefix(line, benchName+"/") {
		return "", "", nil, "", false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", "", nil, "", false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 { // strip -GOMAXPROCS if present
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	parts := strings.SplitN(name, "/", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[1], "impl=") {
		return "", "", nil, "", false
	}
	impl = strings.TrimPrefix(parts[1], "impl=")
	cellName = parts[2]

	m = &measurement{}
	m.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			m.NsPerOp = v
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		default:
			if strings.HasSuffix(unit, "/s") {
				m.PerSec = v
				perSecUnit = unit
			}
		}
	}
	if m.NsPerOp == 0 {
		return "", "", nil, "", false
	}
	return impl, cellName, m, perSecUnit, true
}

// Command oftt-benchdiff turns raw `go test -bench` output from
// BenchmarkDiverterThroughput into a machine-readable old-vs-new record.
// It pairs the sharded and single-pump sub-benchmarks cell by cell
// (p=producers/d=destinations/svc=delivery cost), computes the speedup
// from ns/op, writes the result as JSON, and enforces a minimum speedup
// on one gate cell so the performance claim is a reproducible check, not
// a README sentence.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkDiverterThroughput ./internal/diverter | \
//	  oftt-benchdiff -out BENCH_DIVERTER.json -cell p=8/d=8/svc=1ms -min-speedup 3.0
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// measurement is one sub-benchmark's parsed result line.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// cell pairs the two implementations on one grid point.
type cell struct {
	Cell       string       `json:"cell"` // e.g. p=8/d=8/svc=1ms
	Sharded    *measurement `json:"sharded"`
	SinglePump *measurement `json:"singlepump"`
	Speedup    float64      `json:"speedup"` // singlepump ns/op ÷ sharded ns/op
}

type report struct {
	Benchmark string `json:"benchmark"`
	Gate      struct {
		Cell       string  `json:"cell"`
		MinSpeedup float64 `json:"min_speedup"`
		Speedup    float64 `json:"speedup"`
		Pass       bool    `json:"pass"`
	} `json:"gate"`
	Cells []cell `json:"cells"`
}

func main() {
	in := flag.String("in", "-", "bench output file ('-' for stdin)")
	out := flag.String("out", "BENCH_DIVERTER.json", "JSON report path")
	gateCell := flag.String("cell", "p=8/d=8/svc=1ms", "grid cell the speedup gate applies to")
	minSpeedup := flag.Float64("min-speedup", 3.0, "minimum sharded-over-singlepump speedup for the gate cell")
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := build(r, *gateCell, *minSpeedup)
	if err != nil {
		fatal(err)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d cells)\n", *out, len(rep.Cells))
	for _, c := range rep.Cells {
		fmt.Printf("  %-22s %8.0f vs %8.0f msgs/s  speedup %.2fx\n",
			c.Cell, c.Sharded.MsgsPerSec, c.SinglePump.MsgsPerSec, c.Speedup)
	}
	if !rep.Gate.Pass {
		fatal(fmt.Errorf("gate cell %s: speedup %.2fx below required %.2fx",
			rep.Gate.Cell, rep.Gate.Speedup, rep.Gate.MinSpeedup))
	}
	fmt.Printf("gate %s: %.2fx >= %.2fx ok\n", rep.Gate.Cell, rep.Gate.Speedup, rep.Gate.MinSpeedup)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oftt-benchdiff:", err)
	os.Exit(1)
}

// build parses bench output and assembles the paired report.
func build(r io.Reader, gateCell string, minSpeedup float64) (*report, error) {
	byImpl := map[string]map[string]*measurement{} // impl -> cell -> measurement
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		impl, cellName, m, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if byImpl[impl] == nil {
			byImpl[impl] = map[string]*measurement{}
		}
		byImpl[impl][cellName] = m
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	sharded, pump := byImpl["sharded"], byImpl["singlepump"]
	if len(sharded) == 0 || len(pump) == 0 {
		return nil, fmt.Errorf("no paired results found (sharded=%d singlepump=%d lines)", len(sharded), len(pump))
	}
	rep := &report{Benchmark: "BenchmarkDiverterThroughput"}
	names := make([]string, 0, len(sharded))
	for name := range sharded {
		if pump[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		c := cell{Cell: name, Sharded: sharded[name], SinglePump: pump[name]}
		if c.Sharded.NsPerOp > 0 {
			c.Speedup = c.SinglePump.NsPerOp / c.Sharded.NsPerOp
		}
		rep.Cells = append(rep.Cells, c)
	}

	rep.Gate.Cell = gateCell
	rep.Gate.MinSpeedup = minSpeedup
	for _, c := range rep.Cells {
		if c.Cell == gateCell {
			rep.Gate.Speedup = c.Speedup
			rep.Gate.Pass = c.Speedup >= minSpeedup
		}
	}
	if rep.Gate.Speedup == 0 {
		return nil, fmt.Errorf("gate cell %q not present in bench output", gateCell)
	}
	return rep, nil
}

// parseLine extracts one BenchmarkDiverterThroughput result line:
//
//	BenchmarkDiverterThroughput/impl=sharded/p=8/d=8/svc=1ms  2000  142744 ns/op  7006 msgs/s  382 B/op  4 allocs/op
func parseLine(line string) (impl, cellName string, m *measurement, ok bool) {
	if !strings.HasPrefix(line, "BenchmarkDiverterThroughput/") {
		return "", "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", "", nil, false
	}
	name := strings.TrimSuffix(fields[0], "-1") // strip -GOMAXPROCS if present
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	parts := strings.SplitN(name, "/", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[1], "impl=") {
		return "", "", nil, false
	}
	impl = strings.TrimPrefix(parts[1], "impl=")
	cellName = parts[2]

	m = &measurement{}
	m.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp = v
		case "msgs/s":
			m.MsgsPerSec = v
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		}
	}
	if m.NsPerOp == 0 {
		return "", "", nil, false
	}
	return impl, cellName, m, true
}

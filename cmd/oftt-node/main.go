// Command oftt-node runs one real OFTT node as a standalone OS process:
// an unmodified engine plus an FTIM-linked replicated application (the
// "plant"), bridged from its private in-process network onto real TCP.
// The black-box e2e harness spawns several of these, points them at each
// other through controllable link proxies, and kills/hangs/partitions
// them for real.
//
// Usage:
//
//	oftt-node -name n1 -peers n2=127.0.0.1:4102,n3=127.0.0.1:4103 \
//	          -addr-file /tmp/n1.json
//
// The daemon writes its listener addresses (bridge, HTTP telemetry,
// ingest) to -addr-file once it is up, then runs until SIGTERM/SIGINT,
// shutting down gracefully: plant deactivated, engine stopped, sockets
// closed. Exit status 0 on a clean shutdown.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/e2e/nodehost"
)

func main() {
	var (
		name     = flag.String("name", "", "this node's machine name (required)")
		peers    = flag.String("peers", "", "comma-separated peer list: name=host:port,...")
		seed     = flag.Int64("seed", 1, "deterministic seed for this node")
		hb       = flag.Duration("hb", 25*time.Millisecond, "engine heartbeat interval")
		peerTo   = flag.Duration("peer-timeout", 0, "peer failure timeout (default 10x hb)")
		ckpt     = flag.Duration("ckpt", 50*time.Millisecond, "plant checkpoint period")
		tick     = flag.Duration("tick", 10*time.Millisecond, "plant scan-loop period")
		adaptive = flag.Bool("adaptive", false, "use the adaptive recovery policy")
		storeDir = flag.String("store-dir", "", "persist checkpoints as a segmented WAL under this directory")
		oplog    = flag.Bool("oplog", false, "ship plant mutations as a continuous op log between checkpoints")
		compress = flag.Bool("ckpt-compress", false, "flate-compress checkpoint stream chunks")
		chunk    = flag.Int("ckpt-chunk", 0, "checkpoint stream chunk size in bytes (default 256KiB)")
		httpAddr = flag.String("http", "127.0.0.1:0", "telemetry HTTP listen address")
		ingest   = flag.String("ingest", "127.0.0.1:0", "feeder ingest listen address")
		addrFile = flag.String("addr-file", "", "write listener addresses (JSON) here once up")
	)
	flag.Parse()

	opts := nodeOpts{
		adaptive: *adaptive, storeDir: *storeDir, oplog: *oplog,
		compress: *compress, chunk: *chunk,
		httpAddr: *httpAddr, ingest: *ingest, addrFile: *addrFile,
	}
	if err := run(*name, *peers, *seed, *hb, *peerTo, *ckpt, *tick, opts); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

// nodeOpts bundles the non-timing run options so run's signature stays
// readable as flags accrete.
type nodeOpts struct {
	adaptive bool
	storeDir string
	oplog    bool
	compress bool
	chunk    int
	httpAddr string
	ingest   string
	addrFile string
}

func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=host:port)", part)
		}
		peers[name] = addr
	}
	return peers, nil
}

func run(name, peerList string, seed int64, hb, peerTo, ckpt, tick time.Duration,
	opts nodeOpts) error {
	if name == "" {
		return fmt.Errorf("oftt-node: -name is required")
	}
	peers, err := parsePeers(peerList)
	if err != nil {
		return err
	}

	logf := log.New(os.Stderr, "["+name+"] ", log.Lmicroseconds).Printf
	h, err := nodehost.Start(nodehost.Config{
		Name:              name,
		Peers:             peers,
		Seed:              seed,
		HeartbeatInterval: hb,
		PeerTimeout:       peerTo,
		CheckpointPeriod:  ckpt,
		PlantTick:         tick,
		Adaptive:          opts.adaptive,
		StoreDir:          opts.storeDir,
		OpLog:             opts.oplog,
		CkptCompress:      opts.compress,
		CkptChunk:         opts.chunk,
		HTTPAddr:          opts.httpAddr,
		IngestAddr:        opts.ingest,
		Logf:              logf,
	})
	if err != nil {
		return err
	}
	defer h.Close()

	if opts.addrFile != "" {
		if err := writeAddrFile(opts.addrFile, h.AddrInfo()); err != nil {
			return err
		}
	}

	// Run until asked to stop; the deferred Close drains the plant,
	// stops the engine, and closes every socket.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	logf("received %s, shutting down", s)
	return nil
}

// writeAddrFile publishes the address document atomically (write to a
// temp file, rename into place) so a polling harness never reads a
// partial JSON object.
func writeAddrFile(path string, info nodehost.AddrInfo) error {
	b, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Command oftt-opcbench is the OPC data-plane scale probe: it pushes the
// sharded namespace and shared scan cycles to paper-scale cell sizes
// (up to ~1M items and ~100k subscriptions) and records the sustained
// fan-out rate, mean scan-cycle time, and deadband suppression for each
// cell in BENCH_OPC_SCALE.json.
//
// Unlike `make bench-opc` (which gates a new-vs-old grid through
// oftt-benchdiff), this probe has no baseline leg — the old per-group
// scanner cannot form the large cells at all — so it records what the new
// plane sustains rather than a speedup. Subscribers are spread over
// -windows distinct watch sets plus one shared sentinel tag, exercising
// cohort sharing the way a real plant's many identical displays would.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/opc"
	"repro/internal/telemetry"
)

type cellResult struct {
	Items       int `json:"items"`
	Subscribers int `json:"subscribers"`
	Windows     int `json:"windows"` // distinct watch sets (cohorts per rate)

	SetupMS         int64   `json:"setup_ms"`
	DeliveriesPerS  float64 `json:"deliveries_per_s"`
	UpdatesPerSubPS float64 `json:"updates_per_sub_per_s"`
	ScanMeanUS      float64 `json:"scan_mean_us"`
	Suppressed      int64   `json:"deadband_suppressed"`
	Published       int64   `json:"updates_published"`
}

type report struct {
	Benchmark  string       `json:"benchmark"`
	ScanRateMS float64      `json:"scan_rate_ms"`
	WindowMS   float64      `json:"window_ms"`
	WatchTags  int          `json:"watch_tags_per_sub"`
	Cells      []cellResult `json:"cells"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_OPC_SCALE.json", "report path")
		cells   = flag.String("cells", "10000x1000,100000x10000,1000000x100000", "comma-separated itemsxsubscribers cells")
		windows = flag.Int("windows", 64, "distinct watch sets the subscribers share")
		tagsPer = flag.Int("tags", 64, "tags per watch set")
		rate    = flag.Duration("rate", 20*time.Millisecond, "subscription update rate")
		window  = flag.Duration("window", 2*time.Second, "measurement window per cell")
	)
	flag.Parse()

	parsed, err := parseCells(*cells)
	if err != nil {
		fatal("bad -cells: %v", err)
	}

	rep := report{
		Benchmark:  "OPCDataPlaneScale",
		ScanRateMS: float64(*rate) / float64(time.Millisecond),
		WindowMS:   float64(*window) / float64(time.Millisecond),
		WatchTags:  *tagsPer,
	}
	for _, c := range parsed {
		cell, err := runCell(c[0], c[1], *windows, *tagsPer, *rate, *window)
		if err != nil {
			fatal("cell items=%d subs=%d: %v", c[0], c[1], err)
		}
		fmt.Printf("items=%d subs=%d: %.0f deliveries/s (%.1f per sub), scan mean %.0fus, %d suppressed, setup %dms\n",
			cell.Items, cell.Subscribers, cell.DeliveriesPerS, cell.UpdatesPerSubPS,
			cell.ScanMeanUS, cell.Suppressed, cell.SetupMS)
		rep.Cells = append(rep.Cells, cell)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// runCell builds one namespace, spreads subs over the watch windows, and
// publishes a sentinel-bearing batch every rate tick for the window.
func runCell(items, subs, windows, tagsPer int, rate, window time.Duration) (cellResult, error) {
	cell := cellResult{Items: items, Subscribers: subs, Windows: windows}
	setupStart := time.Now()

	srv := opc.NewServer("scale")
	defer srv.Close()
	reg := telemetry.NewRegistry()
	scanHist := reg.Histogram("opc_scan_us", telemetry.DurationBuckets...)
	suppressed := reg.Counter("opc_suppressed")
	published := reg.Counter("opc_published")
	srv.Instrument(opc.Instruments{
		ScanCycle:          scanHist,
		DeadbandSuppressed: suppressed,
		UpdatesPublished:   published,
	})

	for i := 0; i < items; i++ {
		if err := srv.AddItem(opc.ItemDef{
			Tag:           fmt.Sprintf("plant.u%d.t%d", i/512, i),
			CanonicalType: opc.VTFloat64,
		}); err != nil {
			return cell, err
		}
	}
	if err := srv.AddItem(opc.ItemDef{Tag: "scale.seq", CanonicalType: opc.VTInt64}); err != nil {
		return cell, err
	}

	// Watch windows: w spans tags [w*tagsPer, (w+1)*tagsPer) plus the
	// shared sentinel, so every sweep that bumps the sentinel fans out to
	// every subscriber while per-window tags stay cohort-local.
	if windows*tagsPer > items {
		windows = items / tagsPer
		if windows == 0 {
			windows = 1
		}
		cell.Windows = windows
	}
	watch := make([][]string, windows)
	for w := 0; w < windows; w++ {
		tags := make([]string, 0, tagsPer+1)
		for j := 0; j < tagsPer; j++ {
			i := w*tagsPer + j
			tags = append(tags, fmt.Sprintf("plant.u%d.t%d", i/512, i))
		}
		tags = append(tags, "scale.seq")
		watch[w] = tags
	}

	client := opc.NewClient(srv)
	defer client.Close()
	var delivered atomic.Int64
	for s := 0; s < subs; s++ {
		_, err := client.Subscribe(context.Background(), opc.SubscriptionConfig{
			UpdateRate: rate,
			Tags:       watch[s%windows],
			OnChange: func(updates []opc.ItemState) {
				delivered.Add(int64(len(updates)))
			},
		})
		if err != nil {
			return cell, err
		}
	}
	cell.SetupMS = time.Since(setupStart).Milliseconds()

	// Publisher: every tick bump one tag in each window plus the sentinel.
	batch := make([]opc.ItemUpdate, 0, windows+1)
	seq := int64(0)
	publish := func() {
		seq++
		batch = batch[:0]
		for w := 0; w < windows; w++ {
			i := w*tagsPer + int(seq)%tagsPer
			batch = append(batch, opc.ItemUpdate{
				Tag:     fmt.Sprintf("plant.u%d.t%d", i/512, i),
				Value:   opc.VR8(float64(seq)),
				Quality: opc.GoodNonSpecific,
			})
		}
		batch = append(batch, opc.ItemUpdate{
			Tag: "scale.seq", Value: opc.VI8(seq), Quality: opc.GoodNonSpecific,
		})
		if err := srv.Publish(batch); err != nil {
			fatal("publish: %v", err)
		}
	}
	publish() // prime: first sweep delivers initial states
	time.Sleep(2 * rate)

	d0 := delivered.Load()
	start := time.Now()
	tick := time.NewTicker(rate)
	for time.Since(start) < window {
		<-tick.C
		publish()
	}
	tick.Stop()
	elapsed := time.Since(start).Seconds()
	d1 := delivered.Load()

	cell.DeliveriesPerS = float64(d1-d0) / elapsed
	cell.UpdatesPerSubPS = cell.DeliveriesPerS / float64(subs)
	if n := scanHist.Count(); n > 0 {
		cell.ScanMeanUS = float64(scanHist.Sum()) / float64(n)
	}
	cell.Suppressed = suppressed.Value()
	cell.Published = published.Value()
	return cell, nil
}

func parseCells(s string) ([][2]int, error) {
	var out [][2]int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		halves := strings.SplitN(part, "x", 2)
		if len(halves) != 2 {
			return nil, fmt.Errorf("cell %q is not itemsxsubs", part)
		}
		items, err := strconv.Atoi(halves[0])
		if err != nil || items <= 0 {
			return nil, fmt.Errorf("bad items in %q", part)
		}
		subs, err := strconv.Atoi(halves[1])
		if err != nil || subs <= 0 {
			return nil, fmt.Errorf("bad subs in %q", part)
		}
		out = append(out, [2]int{items, subs})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty cell list")
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oftt-opcbench: "+format+"\n", args...)
	os.Exit(1)
}

// Command oftt-fabricbench measures fabric beat traffic over a
// groups x nodes grid and regenerates BENCH_FABRIC.json.
//
// For each cell it boots a fabric, schedules G three-replica groups onto
// an N-node pool, waits for every group to elect a primary, and then
// counts inbound mux-beat datagrams and demultiplexed GroupState entries
// over a fixed window. Two properties are checked:
//
//   - Traffic assertion (per cell): beats ride per-node-pair streams, so
//     the datagram rate is bounded by 2 x (pairs sharing a group) /
//     BeatInterval — NOT by group count. A per-group beat design would
//     exceed the bound by orders of magnitude at G=256.
//   - Scaling gate (per node count): growing the group count 32x may grow
//     the datagram rate at most -max-growth x (sub-linear in groups).
//
// The process exits non-zero if either fails, so `make bench-fabric`
// doubles as a regression gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

type cellResult struct {
	Nodes    int `json:"nodes"`
	Groups   int `json:"groups"`
	Replicas int `json:"replicas"`

	// PairStreams is the number of unordered node pairs sharing at least
	// one group — the number of bidirectional mux beat streams.
	PairStreams int `json:"pair_streams"`

	DatagramsPerSec         float64 `json:"datagrams_per_sec"`
	EntriesPerSec           float64 `json:"entries_per_sec"`
	EntriesPerDatagram      float64 `json:"entries_per_datagram"`
	ExpectedDatagramsPerSec float64 `json:"expected_datagrams_per_sec"`
	NetDatagramsSentPerSec  float64 `json:"net_datagrams_sent_per_sec"`
	FormationMS             int64   `json:"formation_ms"`
	TrafficOK               bool    `json:"traffic_ok"`

	// Detection sweep: after the traffic window the cell kills the node
	// hosting the most group primaries and measures, per orphaned group,
	// the time until a new primary is live. Group count is the x-axis:
	// the sweep shows how failure-detection latency behaves as groups
	// multiply on a fixed pool.
	FailoverGroups int     `json:"failover_groups"`
	DetectMeanMS   float64 `json:"detect_mean_ms"`
	DetectMaxMS    float64 `json:"detect_max_ms"`
}

type gateRow struct {
	Nodes     int     `json:"nodes"`
	GroupsMin int     `json:"groups_min"`
	GroupsMax int     `json:"groups_max"`
	Growth    float64 `json:"growth"`
	Pass      bool    `json:"pass"`
}

type report struct {
	Benchmark      string  `json:"benchmark"`
	BeatIntervalMS float64 `json:"beat_interval_ms"`
	WindowMS       float64 `json:"window_ms"`
	Gate           struct {
		MaxGrowth float64   `json:"max_growth"`
		Pass      bool      `json:"pass"`
		Rows      []gateRow `json:"rows"`
	} `json:"gate"`
	Cells []cellResult `json:"cells"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_FABRIC.json", "report path")
		nodesList = flag.String("nodes", "4,8", "comma-separated pool sizes")
		groupsSet = flag.String("groups", "8,64,256", "comma-separated group counts")
		beat      = flag.Duration("beat", 10*time.Millisecond, "mux beat interval")
		window    = flag.Duration("window", 1500*time.Millisecond, "measurement window")
		maxGrowth = flag.Float64("max-growth", 2.0, "max datagram-rate growth from min to max group count")
		formWait  = flag.Duration("form-wait", 90*time.Second, "per-cell formation deadline")
		noDetect  = flag.Bool("no-detect", false, "skip the node-kill detection-latency sweep")
		detectCap = flag.Duration("detect-cap", 30*time.Second, "per-cell bound on post-kill re-settle")
	)
	flag.Parse()

	nodeCounts, err := parseInts(*nodesList)
	if err != nil {
		fatal("bad -nodes: %v", err)
	}
	groupCounts, err := parseInts(*groupsSet)
	if err != nil {
		fatal("bad -groups: %v", err)
	}

	rep := report{Benchmark: "FabricBeatScaling"}
	rep.BeatIntervalMS = float64(*beat) / float64(time.Millisecond)
	rep.WindowMS = float64(*window) / float64(time.Millisecond)
	rep.Gate.MaxGrowth = *maxGrowth
	rep.Gate.Pass = true

	trafficOK := true
	for _, n := range nodeCounts {
		for _, g := range groupCounts {
			cell, err := runCell(n, g, *beat, *window, *formWait, !*noDetect, *detectCap)
			if err != nil {
				fatal("cell nodes=%d groups=%d: %v", n, g, err)
			}
			fmt.Printf("nodes=%d groups=%d: %.0f dgrams/s (bound %.0f), %.0f entries/s, %.1f entries/dgram, pairs=%d, formed in %dms\n",
				n, g, cell.DatagramsPerSec, cell.ExpectedDatagramsPerSec,
				cell.EntriesPerSec, cell.EntriesPerDatagram, cell.PairStreams, cell.FormationMS)
			if cell.FailoverGroups > 0 {
				fmt.Printf("  detect: %d orphaned groups re-elected in mean %.1fms max %.1fms\n",
					cell.FailoverGroups, cell.DetectMeanMS, cell.DetectMaxMS)
			}
			if !cell.TrafficOK {
				trafficOK = false
				fmt.Printf("  TRAFFIC FAIL: datagram rate exceeds the per-pair stream bound\n")
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}

	// Gate: per pool size, the datagram rate from the smallest to the
	// largest group count must stay within max-growth.
	for _, n := range nodeCounts {
		var lo, hi *cellResult
		for i := range rep.Cells {
			c := &rep.Cells[i]
			if c.Nodes != n {
				continue
			}
			if lo == nil || c.Groups < lo.Groups {
				lo = c
			}
			if hi == nil || c.Groups > hi.Groups {
				hi = c
			}
		}
		if lo == nil || hi == nil || lo == hi {
			continue
		}
		growth := hi.DatagramsPerSec / lo.DatagramsPerSec
		row := gateRow{Nodes: n, GroupsMin: lo.Groups, GroupsMax: hi.Groups,
			Growth: growth, Pass: growth <= *maxGrowth}
		if !row.Pass {
			rep.Gate.Pass = false
		}
		rep.Gate.Rows = append(rep.Gate.Rows, row)
		fmt.Printf("gate nodes=%d: %dx more groups -> %.2fx datagram rate (max %.1fx): %s\n",
			n, hi.Groups/lo.Groups, growth, *maxGrowth, passStr(row.Pass))
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s\n", *out)

	if !rep.Gate.Pass || !trafficOK {
		os.Exit(1)
	}
}

// runCell boots one fabric, forms G groups, and measures beat traffic,
// then (unless detect is off) kills the busiest node and measures how
// long each orphaned group takes to elect a replacement primary.
func runCell(nodes, groups int, beat, window, formWait time.Duration,
	detect bool, detectCap time.Duration) (cellResult, error) {
	cell := cellResult{Nodes: nodes, Groups: groups, Replicas: 3}
	f, err := core.NewFabric(core.FabricConfig{
		NodeCount:    nodes,
		Seed:         1,
		BeatInterval: beat,
	})
	if err != nil {
		return cell, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = f.Shutdown(ctx)
	}()

	formStart := time.Now()
	grps := make([]*core.Group, 0, groups)
	for i := 0; i < groups; i++ {
		g, err := f.AddGroup(core.GroupSpec{Replicas: cell.Replicas})
		if err != nil {
			return cell, err
		}
		grps = append(grps, g)
	}
	ctx, cancel := context.WithTimeout(context.Background(), formWait)
	defer cancel()
	for _, g := range grps {
		if err := g.WaitForRolesContext(ctx); err != nil {
			return cell, fmt.Errorf("group %s never formed: %w", g.ID(), err)
		}
	}
	cell.FormationMS = time.Since(formStart).Milliseconds()

	// Count the bidirectional mux streams: unordered node pairs that
	// share at least one group.
	pairs := make(map[string]bool)
	for _, g := range grps {
		mn := g.MemberNodes()
		for i := 0; i < len(mn); i++ {
			for j := i + 1; j < len(mn); j++ {
				a, b := mn[i], mn[j]
				if a > b {
					a, b = b, a
				}
				pairs[a+"|"+b] = true
			}
		}
	}
	cell.PairStreams = len(pairs)

	names := f.NodeNames()
	var d0, e0 int64
	for _, n := range names {
		tr := f.Transport(n)
		d0 += tr.DatagramsReceived()
		e0 += tr.EntriesReceived()
	}
	s0 := f.Net.Stats().DatagramsSent.Load()
	start := time.Now()
	time.Sleep(window)
	elapsed := time.Since(start).Seconds()

	var d1, e1 int64
	for _, n := range names {
		tr := f.Transport(n)
		d1 += tr.DatagramsReceived()
		e1 += tr.EntriesReceived()
	}
	s1 := f.Net.Stats().DatagramsSent.Load()

	cell.DatagramsPerSec = float64(d1-d0) / elapsed
	cell.EntriesPerSec = float64(e1-e0) / elapsed
	if d1 > d0 {
		cell.EntriesPerDatagram = float64(e1-e0) / float64(d1-d0)
	}
	cell.NetDatagramsSentPerSec = float64(s1-s0) / elapsed

	// Netsim traffic assertion: one datagram per direction per beat
	// interval on each pair stream. A loaded host only lowers the measured
	// rate, so the cell asserts just the upper bound (with headroom for
	// scheduling jitter); exceeding it means beats are not riding per-pair
	// streams.
	cell.ExpectedDatagramsPerSec = float64(2*cell.PairStreams) / beat.Seconds()
	cell.TrafficOK = cell.DatagramsPerSec > 0 &&
		cell.DatagramsPerSec <= 1.5*cell.ExpectedDatagramsPerSec

	if detect {
		if err := measureDetection(f, grps, &cell, detectCap); err != nil {
			return cell, err
		}
	}
	return cell, nil
}

// measureDetection kills the node hosting the most group primaries and
// polls every orphaned group until it holds a new primary, recording the
// per-group re-election latency.
func measureDetection(f *core.Fabric, grps []*core.Group, cell *cellResult, bound time.Duration) error {
	byNode := make(map[string]int)
	for _, g := range grps {
		if p := g.PrimaryNode(); p != "" {
			byNode[p]++
		}
	}
	victim := ""
	for n, c := range byNode {
		if victim == "" || c > byNode[victim] {
			victim = n
		}
	}
	if victim == "" {
		return fmt.Errorf("no primaries to orphan")
	}
	var orphans []*core.Group
	for _, g := range grps {
		if g.PrimaryNode() == victim {
			orphans = append(orphans, g)
		}
	}
	cell.FailoverGroups = len(orphans)

	t0 := time.Now()
	f.Node(victim).PowerOff()

	recovered := make([]time.Duration, len(orphans))
	deadline := t0.Add(bound)
	pending := len(orphans)
	for pending > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("%d/%d orphaned groups never re-elected within %v",
				pending, len(orphans), bound)
		}
		for i, g := range orphans {
			if recovered[i] != 0 {
				continue
			}
			if p := g.PrimaryNode(); p != "" && p != victim {
				recovered[i] = time.Since(t0)
				pending--
			}
		}
		time.Sleep(time.Millisecond)
	}

	var sum, max time.Duration
	for _, d := range recovered {
		sum += d
		if d > max {
			max = d
		}
	}
	cell.DetectMeanMS = float64(sum.Microseconds()) / float64(len(recovered)) / 1000
	cell.DetectMaxMS = float64(max.Microseconds()) / 1000
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("%d is not positive", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func passStr(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oftt-fabricbench: "+format+"\n", args...)
	os.Exit(1)
}

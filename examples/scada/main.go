// SCADA: the paper's Figure 1(b) reference configuration — integrated
// monitoring and control.
//
// Two PLCs on a simulated field bus scan sensors (tank level, line
// pressure, pump state) and drive actuators. An OPC server on the test PC
// wraps the PLCs (the hardware vendor's "device driver in a COM object").
// The supervisory application — a fault-tolerant OPC client pair under
// OFTT — monitors the plant, raises alarms on threshold violations, and
// writes a pump setpoint back through OPC. The example then kills the
// primary node and shows supervision continuing with the alarm history
// intact, and demonstrates OPC quality propagation when a PLC fails.
//
// Run with: go run ./examples/scada
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dcom"
	"repro/internal/device"
	"repro/internal/ftim"
	"repro/internal/netsim"
	"repro/internal/opc"
)

// plantOID identifies the plant OPC server on the wire.
var plantOID = dcom.ObjectID{0x51, 0xca, 0xda}

// supervisorState is the checkpointed supervision history.
type supervisorState struct {
	Samples    int64
	Alarms     []string
	LastLevel  float64
	PumpWrites int64
}

// supervisor is the replicated SCADA application.
type supervisor struct {
	node    string
	network *netsim.Network
	server  netsim.Addr

	mu     sync.Mutex
	f      *ftim.ClientFTIM
	state  supervisorState
	client *opc.Client
	dcli   *dcom.Client
}

func newSupervisor(node string, network *netsim.Network, server netsim.Addr) *supervisor {
	return &supervisor{node: node, network: network, server: server}
}

// Setup registers supervision history for checkpointing.
func (s *supervisor) Setup(f *ftim.ClientFTIM) error {
	s.mu.Lock()
	s.f = f
	s.mu.Unlock()
	return f.RegisterState("supervision", &s.state)
}

// Activate connects to the plant OPC server and supervises.
func (s *supervisor) Activate(restored bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Printf("[%s] supervisor activated (restored=%v, %d alarms on record)\n",
		s.node, restored, len(s.state.Alarms))

	dcli, err := dcom.Dial(s.network, netsim.Addr(s.node+":scada-opc-cli"), s.server)
	if err != nil {
		return
	}
	s.dcli = dcli
	s.client = opc.NewClient(opc.NewRemoteConnection(dcli, plantOID))
	_, err = s.client.Subscribe(context.Background(), opc.SubscriptionConfig{
		Name:       "plant",
		UpdateRate: 10 * time.Millisecond,
		Tags:       []string{"plc1.level", "plc1.pressure", "plc2.motor_rpm"},
		OnChange:   s.onData,
	})
	if err != nil {
		return
	}
}

// onData supervises each update batch: record, alarm, and control.
func (s *supervisor) onData(updates []opc.ItemState) {
	s.mu.Lock()
	f := s.f
	client := s.client
	s.mu.Unlock()
	if f == nil {
		return
	}
	var pumpCmd *float64
	f.WithLock(func() {
		for _, u := range updates {
			s.state.Samples++
			if !u.Quality.IsGood() {
				s.state.Alarms = append(s.state.Alarms,
					fmt.Sprintf("%s quality %s", u.Tag, u.Quality))
				continue
			}
			v, err := u.Value.AsFloat()
			if err != nil {
				continue
			}
			switch u.Tag {
			case "plc1.level":
				s.state.LastLevel = v
				if v > 90 {
					s.state.Alarms = append(s.state.Alarms,
						fmt.Sprintf("HIGH LEVEL %.1f%%", v))
					cmd := 1.0
					pumpCmd = &cmd
				} else if v < 20 {
					cmd := 0.0
					pumpCmd = &cmd
				}
			case "plc1.pressure":
				if v > 8.5 {
					s.state.Alarms = append(s.state.Alarms,
						fmt.Sprintf("OVERPRESSURE %.2f bar", v))
				}
			}
		}
		if len(s.state.Alarms) > 200 {
			s.state.Alarms = s.state.Alarms[len(s.state.Alarms)-200:]
		}
	})
	// Control action: drive the drain pump through OPC (outside the lock).
	if pumpCmd != nil && client != nil {
		if err := client.SyncWrite("plc1.pump_cmd", opc.VR8(*pumpCmd)); err == nil {
			f.WithLock(func() { s.state.PumpWrites++ })
		}
	}
}

// Deactivate releases the OPC connection.
func (s *supervisor) Deactivate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client != nil {
		s.client.Close()
		s.client = nil
	}
	if s.dcli != nil {
		s.dcli.Close()
		s.dcli = nil
	}
}

// Stop implements core.ReplicatedApp.
func (s *supervisor) Stop() { s.Deactivate() }

func (s *supervisor) snapshot() supervisorState {
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	var cp supervisorState
	f.WithLock(func() {
		cp = s.state
		cp.Alarms = append([]string(nil), s.state.Alarms...)
	})
	return cp
}

func main() {
	if err := run(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== OFTT SCADA example: Figure 1(b) integrated monitoring & control ==")

	supervisors := map[string]*supervisor{}
	var mu sync.Mutex
	serverAddr := netsim.Addr("testpc:plant-opc")
	var net0 *netsim.Network

	d, err := core.NewWithNetworkHook(core.Config{
		Component: "scada",
		Seed:      42,
		NewApp: func(node string) core.ReplicatedApp {
			s := newSupervisor(node, net0, serverAddr)
			mu.Lock()
			supervisors[node] = s
			mu.Unlock()
			return s
		},
	}, func(n *netsim.Network) { net0 = n })
	if err != nil {
		return err
	}
	defer d.Shutdown(context.Background())

	// --- Plant floor on the test PC: 2 PLCs, field bus, OPC server ---
	plantServer := opc.NewServer("Plant.OPC.1")

	plc1 := device.NewPLC("plc1", 10*time.Millisecond)
	level := device.NewSensor("level", device.Sine{Amplitude: 45, Period: 400 * time.Millisecond, Offset: 55}, 0.5, 1)
	pressure := device.NewSensor("pressure", device.NewRandomWalk(7, 0.4, 4, 10, 2), 0.05, 3)
	pump := device.NewActuator("pump", 0)
	plc1.AttachSensor(level)
	plc1.AttachSensor(pressure)
	plc1.AttachActuator("pump_cmd", pump)

	plc2 := device.NewPLC("plc2", 10*time.Millisecond)
	rpm := device.NewSensor("motor_rpm", device.Square{Low: 0, High: 1750, Period: 300 * time.Millisecond}, 5, 4)
	plc2.AttachSensor(rpm)

	bus1 := device.NewBus(time.Millisecond)
	bus2 := device.NewBus(time.Millisecond)
	ad1, err := device.NewOPCAdapter(plc1, bus1, plantServer, 10*time.Millisecond)
	if err != nil {
		return err
	}
	ad2, err := device.NewOPCAdapter(plc2, bus2, plantServer, 10*time.Millisecond)
	if err != nil {
		return err
	}
	exp, err := dcom.NewExporter(net0, serverAddr)
	if err != nil {
		return err
	}
	defer exp.Close()
	if err := opc.ExportServer(exp, plantOID, plantServer); err != nil {
		return err
	}

	plc1.Start()
	plc2.Start()
	ad1.Start()
	ad2.Start()
	defer func() { ad1.Stop(); ad2.Stop(); plc1.Stop(); plc2.Stop() }()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := d.WaitForRolesContext(ctx); err != nil {
		return err
	}
	primary := d.Primary().Node.Name()
	fmt.Printf("plant online; supervisor primary on %s\n", primary)

	// Let supervision run: the sine level crosses 90% regularly, raising
	// alarms and pump commands.
	time.Sleep(600 * time.Millisecond)
	mu.Lock()
	before := supervisors[primary].snapshot()
	mu.Unlock()
	fmt.Printf("before failure: %d samples, %d alarms, %d pump writes, level %.1f%%\n",
		before.Samples, len(before.Alarms), before.PumpWrites, before.LastLevel)
	if before.Samples == 0 || len(before.Alarms) == 0 {
		return fmt.Errorf("supervision produced no data")
	}

	// --- Inject: primary node failure ---
	fmt.Printf("powering off %s ...\n", primary)
	if err := d.KillNode(primary); err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	var successor *core.Replica
	for time.Now().Before(deadline) {
		if p := d.Primary(); p != nil && p.Node.Name() != primary && p.AppActive() {
			successor = p
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if successor == nil {
		return fmt.Errorf("no takeover")
	}
	time.Sleep(400 * time.Millisecond)
	mu.Lock()
	after := supervisors[successor.Node.Name()].snapshot()
	mu.Unlock()
	fmt.Printf("after takeover on %s: %d samples, %d alarms (history preserved: %v)\n",
		successor.Node.Name(), after.Samples, len(after.Alarms),
		after.Samples >= before.Samples)

	// --- Inject: PLC failure -> OPC quality propagation ---
	fmt.Println("failing plc1 (device failure) ...")
	plc1.Fail()
	time.Sleep(150 * time.Millisecond)
	mu.Lock()
	withQuality := supervisors[successor.Node.Name()].snapshot()
	mu.Unlock()
	qualityAlarm := false
	for _, a := range withQuality.Alarms {
		if len(a) > 4 && a[:4] == "plc1" {
			qualityAlarm = true
			break
		}
	}
	fmt.Printf("device-failure quality alarm observed: %v\n", qualityAlarm)
	if !qualityAlarm {
		return fmt.Errorf("PLC failure did not surface as an OPC quality alarm")
	}

	fmt.Println("SCADA example OK")
	return nil
}

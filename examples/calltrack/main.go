// Call Track: the paper's Section 4 demonstration.
//
// A simulated small-office telephone system (5 lines, 10 callers) runs on
// the test-and-interface PC, published as an OPC server. The Call Track
// application — an OPC client that records the past and present states of
// the system in a busy-lines histogram — runs on a redundant node pair
// under OFTT. The demo then injects the paper's four failures in turn:
//
//	a. node failure          (power off)
//	b. NT crash              (blue screen of death)
//	c. application failure   (kill the Call Track process)
//	d. OFTT middleware failure (kill the engine process)
//
// and shows that the system continues operating with its history intact.
//
// Run with: go run ./examples/calltrack
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/oftt"
)

func main() {
	if err := run(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== OFTT demonstration: Call Track (Figure 3 / Table 1) ==")
	fmt.Println("telephone system: 5 lines, 10 callers (simulated)")
	fmt.Println()

	scenarios := []struct {
		label  string
		inject func(ct *oftt.CallTrackDeployment, primary string) error
	}{
		{"a. node failure", func(ct *oftt.CallTrackDeployment, p string) error { return ct.KillNode(p) }},
		{"b. NT crash (blue screen)", func(ct *oftt.CallTrackDeployment, p string) error { return ct.BlueScreen(p) }},
		{"c. application software failure", func(ct *oftt.CallTrackDeployment, p string) error { return ct.KillApp(p) }},
		{"d. OFTT middleware failure", func(ct *oftt.CallTrackDeployment, p string) error { return ct.KillEngine(p) }},
	}

	for i, sc := range scenarios {
		ct, err := oftt.NewCallTrackDeployment(oftt.CallTrackConfig{
			Config:     oftt.DeploymentConfig{Seed: int64(i + 1)},
			UpdateRate: 5 * time.Millisecond,
			SimTick:    2 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		err = demoScenario(ct, sc.label, sc.inject)
		_ = ct.Shutdown(context.Background())
		if err != nil {
			return err
		}
	}

	fmt.Println("all four failures survived — demonstration complete")
	return nil
}

func demoScenario(ct *oftt.CallTrackDeployment, label string,
	inject func(*oftt.CallTrackDeployment, string) error) error {

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := ct.WaitForRolesContext(ctx); err != nil {
		return err
	}
	primary := ct.Primary().Node.Name()

	// Accumulate some history first.
	if !waitFor(8*time.Second, func() bool {
		tr := ct.ActiveTracker()
		return tr != nil && tr.Samples() >= 30
	}) {
		return fmt.Errorf("%s: no telephone data flowing", label)
	}
	before := ct.ActiveTracker().Samples()

	fmt.Printf("--- %s (primary was %s) ---\n", label, primary)
	start := time.Now()
	if err := inject(ct, primary); err != nil {
		return err
	}

	if !waitFor(8*time.Second, func() bool {
		tr := ct.ActiveTracker()
		return tr != nil && tr.Samples() > before
	}) {
		return fmt.Errorf("%s: tracking did not resume", label)
	}
	recovered := time.Since(start).Round(time.Millisecond)
	nowPrimary := ct.Primary().Node.Name()
	tr := ct.ActiveTracker()

	fmt.Printf("recovered in %v; primary now %s; samples %d -> %d\n",
		recovered, nowPrimary, before, tr.Samples())
	if msg := tr.Verify(); msg != "" {
		return fmt.Errorf("%s: history corrupted: %s", label, msg)
	}
	fmt.Println(tr.RenderHistogram(30))
	return nil
}

func waitFor(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

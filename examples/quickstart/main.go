// Quickstart: make a tiny stateful application fault tolerant with OFTT.
//
// The application is a counter. It registers its state with the toolkit,
// runs on a primary/backup pair, and survives the primary machine being
// powered off mid-run: the backup takes over with the latest checkpoint,
// and the deployment's telemetry hub records the whole recovery timeline.
//
// It also demonstrates the initialization contract: the toolkit uses the
// InitializeDeferred/AttachContext pairing under the hood, which is why Setup
// (where RegisterState runs) is guaranteed to finish before the first
// Activate callback. Applications assembling an FTIM by hand must keep
// that order themselves: InitializeDeferred, RegisterState, then AttachContext.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/oftt"
)

// counterApp is the simplest possible ReplicatedApp: a counter that ticks
// while its copy is the primary.
type counterApp struct {
	node string

	mu    sync.Mutex
	f     *oftt.ClientFTIM
	state struct{ Ticks int64 }
	stop  chan struct{}
	done  chan struct{}
}

func newCounterApp(node string) *counterApp { return &counterApp{node: node} }

// Setup registers the checkpointable state — the "memory walkthrough".
// The deployment calls it between InitializeDeferred and AttachContext, so the
// region below is covered by the very first checkpoint.
func (a *counterApp) Setup(f *oftt.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	return f.RegisterState("counter", &a.state)
}

// Activate starts counting; restored tells us whether we resumed from a
// checkpoint (i.e. this is a takeover, not a cold start).
func (a *counterApp) Activate(restored bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var resumedAt int64
	a.f.WithLock(func() { resumedAt = a.state.Ticks })
	fmt.Printf("[%s] ACTIVATED (restored=%v) at tick %d\n", a.node, restored, resumedAt)

	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				a.f.WithLock(func() { a.state.Ticks++ })
			case <-stop:
				return
			}
		}
	}(a.stop, a.done)
}

// Deactivate stops counting (we are a backup now).
func (a *counterApp) Deactivate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil {
		close(a.stop)
		<-a.done
		a.stop = nil
	}
	fmt.Printf("[%s] deactivated\n", a.node)
}

// Stop implements ReplicatedApp.
func (a *counterApp) Stop() { a.Deactivate() }

// HandleMessage receives operator traffic routed through the message
// diverter — always to whichever copy is currently primary.
func (a *counterApp) HandleMessage(body []byte) error {
	fmt.Printf("[%s] operator message: %s\n", a.node, body)
	return nil
}

func (a *counterApp) ticks() int64 {
	a.mu.Lock()
	f := a.f
	a.mu.Unlock()
	var v int64
	f.WithLock(func() { v = a.state.Ticks })
	return v
}

func main() {
	if err := run(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	apps := map[string]*counterApp{}
	var mu sync.Mutex

	fmt.Println("== OFTT quickstart: fault-tolerant counter ==")
	d, err := oftt.NewDeployment(oftt.DeploymentConfig{
		Component: "counter",
		// CaptureIncremental (the default, spelled out here) ships only
		// regions that changed since the last capture. Use CaptureFull for
		// self-contained snapshots or CaptureSelective when the app marks
		// dirty regions itself with SelSave — see the CaptureMode docs.
		Mode: oftt.CaptureIncremental,
		NewApp: func(node string) oftt.ReplicatedApp {
			a := newCounterApp(node)
			mu.Lock()
			apps[node] = a
			mu.Unlock()
			return a
		},
	})
	if err != nil {
		return err
	}
	defer func() { _ = d.Shutdown(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	primary, err := d.WaitForPrimaryContext(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("pair formed: %s is primary\n", primary.Node.Name())

	// Let the primary make progress.
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	before := apps[primary.Node.Name()].ticks()
	mu.Unlock()
	fmt.Printf("primary reached tick %d — powering its node off now\n", before)

	start := time.Now()
	if err := d.KillNode(primary.Node.Name()); err != nil {
		return err
	}

	// Wait for the backup to take over.
	var successor *oftt.Replica
	for {
		if p := d.Primary(); p != nil && p.Node.Name() != primary.Node.Name() && p.AppActive() {
			successor = p
			break
		}
		if time.Since(start) > 5*time.Second {
			return fmt.Errorf("no takeover within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("switchover to %s in %v\n", successor.Node.Name(), time.Since(start).Round(time.Millisecond))

	// Traffic sent during/after the switchover is stored and forwarded to
	// the new primary; the first delivery closes the recovery timeline.
	if _, err := d.Send([]byte("setpoint=42")); err != nil {
		return err
	}
	d.Div.Drain("counter", 2*time.Second)

	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	after := apps[successor.Node.Name()].ticks()
	mu.Unlock()
	fmt.Printf("successor is at tick %d (was %d before the crash)\n", after, before)

	if after < before/2 {
		return fmt.Errorf("state was lost in the failover")
	}

	// The telemetry hub recorded the whole recovery as one trace.
	if tr, ok := d.Telemetry.Tracer().Last(); ok {
		fmt.Println("recovery timeline:")
		fmt.Print(tr.String())
	}
	if snap, found := d.Telemetry.Snapshot().Metrics.FindHistogram(
		`oftt_engine_switchover_us{node="` + successor.Node.Name() + `"}`); found && snap.Count > 0 {
		fmt.Printf("switchover duration (engine-measured): %dµs\n", int64(snap.Mean()))
	}

	fmt.Println("state survived the node failure — quickstart OK")
	return nil
}

// Patient monitor: the paper's conclusion names "multiparameter patient
// monitoring" as another environment where OFTT applies. This example
// builds it: bedside sensors (heart rate, SpO2, respiration) feed a
// device controller published as an OPC server; a fault-tolerant trending
// application records vitals and raises clinical alarms. When the primary
// monitoring station blue-screens, the backup continues with the full
// alarm record — exactly the property a clinical record needs.
//
// Run with: go run ./examples/patientmonitor
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dcom"
	"repro/internal/device"
	"repro/internal/ftim"
	"repro/internal/netsim"
	"repro/internal/opc"
)

var bedsideOID = dcom.ObjectID{0xbe, 0xd5, 0x1d}

// vitalsState is the checkpointed clinical record.
type vitalsState struct {
	Samples   int64
	HRSum     float64
	SpO2Min   float64
	Alarms    []string
	LastHR    float64
	LastSpO2  float64
	LastResp  float64
	AlarmsRun int64
}

// trendApp is the replicated monitoring application.
type trendApp struct {
	node    string
	network *netsim.Network
	server  netsim.Addr

	mu     sync.Mutex
	f      *ftim.ClientFTIM
	state  vitalsState
	client *opc.Client
	dcli   *dcom.Client
}

func newTrendApp(node string, network *netsim.Network, server netsim.Addr) *trendApp {
	return &trendApp{node: node, network: network, server: server,
		state: vitalsState{SpO2Min: 100}}
}

// Setup registers the clinical record for checkpointing.
func (a *trendApp) Setup(f *ftim.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	return f.RegisterState("vitals", &a.state)
}

// Activate subscribes to the bedside OPC namespace.
func (a *trendApp) Activate(restored bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fmt.Printf("[%s] monitoring station live (restored=%v, %d alarms on record)\n",
		a.node, restored, len(a.state.Alarms))
	dcli, err := dcom.Dial(a.network, netsim.Addr(a.node+":vitals-cli"), a.server)
	if err != nil {
		return
	}
	a.dcli = dcli
	a.client = opc.NewClient(opc.NewRemoteConnection(dcli, bedsideOID))
	_, err = a.client.Subscribe(context.Background(), opc.SubscriptionConfig{
		Name:       "vitals",
		UpdateRate: 10 * time.Millisecond,
		DeadbandPC: 1, // suppress sub-1% jitter, as a real trend display would
		Tags:       []string{"bed1.heart_rate", "bed1.spo2", "bed1.respiration"},
		OnChange:   a.onVitals,
	})
	if err != nil {
		return
	}
}

func (a *trendApp) onVitals(updates []opc.ItemState) {
	a.mu.Lock()
	f := a.f
	a.mu.Unlock()
	if f == nil {
		return
	}
	f.WithLock(func() {
		for _, u := range updates {
			if !u.Quality.IsGood() {
				a.state.Alarms = append(a.state.Alarms,
					fmt.Sprintf("SENSOR FAULT %s (%s)", u.Tag, u.Quality))
				continue
			}
			v, err := u.Value.AsFloat()
			if err != nil {
				continue
			}
			a.state.Samples++
			switch u.Tag {
			case "bed1.heart_rate":
				a.state.LastHR = v
				a.state.HRSum += v
				if v > 130 || v < 45 {
					a.state.Alarms = append(a.state.Alarms,
						fmt.Sprintf("HR ALARM %.0f bpm", v))
				}
			case "bed1.spo2":
				a.state.LastSpO2 = v
				if v < a.state.SpO2Min {
					a.state.SpO2Min = v
				}
				if v < 90 {
					a.state.Alarms = append(a.state.Alarms,
						fmt.Sprintf("SpO2 ALARM %.1f%%", v))
				}
			case "bed1.respiration":
				a.state.LastResp = v
			}
		}
		if len(a.state.Alarms) > 500 {
			a.state.Alarms = a.state.Alarms[len(a.state.Alarms)-500:]
		}
		a.state.AlarmsRun = int64(len(a.state.Alarms))
	})
}

// Deactivate releases the OPC connection.
func (a *trendApp) Deactivate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.client != nil {
		a.client.Close()
		a.client = nil
	}
	if a.dcli != nil {
		a.dcli.Close()
		a.dcli = nil
	}
}

// Stop implements core.ReplicatedApp.
func (a *trendApp) Stop() { a.Deactivate() }

func (a *trendApp) snapshot() vitalsState {
	a.mu.Lock()
	f := a.f
	a.mu.Unlock()
	var cp vitalsState
	f.WithLock(func() {
		cp = a.state
		cp.Alarms = append([]string(nil), a.state.Alarms...)
	})
	return cp
}

func main() {
	if err := run(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== OFTT example: multiparameter patient monitoring ==")

	apps := map[string]*trendApp{}
	var mu sync.Mutex
	serverAddr := netsim.Addr("testpc:bedside-opc")
	var net0 *netsim.Network

	d, err := core.NewWithNetworkHook(core.Config{
		Component: "trend",
		Seed:      2026,
		NewApp: func(node string) core.ReplicatedApp {
			a := newTrendApp(node, net0, serverAddr)
			mu.Lock()
			apps[node] = a
			mu.Unlock()
			return a
		},
	}, func(n *netsim.Network) { net0 = n })
	if err != nil {
		return err
	}
	defer d.Shutdown(context.Background())

	// Bedside device controller: vitals with an injected desaturation
	// episode (SpO2 dips below 90 every cycle).
	bedside := opc.NewServer("Bedside.OPC.1")
	plc := device.NewPLC("bed1", 10*time.Millisecond)
	hr := device.NewSensor("heart_rate", device.NewRandomWalk(78, 2.5, 40, 150, 5), 0.5, 6)
	spo2 := device.NewSensor("spo2", device.Sine{Amplitude: 6, Period: 500 * time.Millisecond, Offset: 94}, 0.2, 7)
	resp := device.NewSensor("respiration", device.Sine{Amplitude: 4, Period: 800 * time.Millisecond, Offset: 16}, 0.3, 8)
	plc.AttachSensor(hr)
	plc.AttachSensor(spo2)
	plc.AttachSensor(resp)
	bus := device.NewBus(0)
	adapter, err := device.NewOPCAdapter(plc, bus, bedside, 10*time.Millisecond)
	if err != nil {
		return err
	}
	exp, err := dcom.NewExporter(net0, serverAddr)
	if err != nil {
		return err
	}
	defer exp.Close()
	if err := opc.ExportServer(exp, bedsideOID, bedside); err != nil {
		return err
	}
	plc.Start()
	adapter.Start()
	defer func() { adapter.Stop(); plc.Stop() }()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := d.WaitForRolesContext(ctx); err != nil {
		return err
	}
	primary := d.Primary().Node.Name()
	fmt.Printf("bedside online; monitoring primary on %s\n", primary)

	time.Sleep(700 * time.Millisecond)
	mu.Lock()
	before := apps[primary].snapshot()
	mu.Unlock()
	avgHR := before.HRSum / float64(max64(before.Samples/3, 1))
	fmt.Printf("record so far: %d samples, mean HR %.0f, SpO2 min %.1f%%, %d alarms\n",
		before.Samples, avgHR, before.SpO2Min, len(before.Alarms))
	if before.Samples == 0 {
		return fmt.Errorf("no vitals flowed")
	}
	if len(before.Alarms) == 0 {
		return fmt.Errorf("desaturation episodes produced no alarms")
	}

	fmt.Printf("blue-screening %s mid-shift ...\n", primary)
	if err := d.BlueScreen(primary); err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	var successor string
	for time.Now().Before(deadline) {
		if p := d.Primary(); p != nil && p.Node.Name() != primary && p.AppActive() {
			successor = p.Node.Name()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if successor == "" {
		return fmt.Errorf("no takeover")
	}
	time.Sleep(400 * time.Millisecond)
	mu.Lock()
	after := apps[successor].snapshot()
	mu.Unlock()
	fmt.Printf("station %s continued: %d samples, SpO2 min %.1f%%, %d alarms (record preserved: %v)\n",
		successor, after.Samples, after.SpO2Min, len(after.Alarms),
		after.Samples >= before.Samples && len(after.Alarms) >= len(before.Alarms))
	if after.Samples < before.Samples {
		return fmt.Errorf("clinical record lost in failover")
	}
	fmt.Println("patient-monitoring example OK")
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

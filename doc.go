// Package repro is the root of the OFTT reproduction (Hecht, An, Zhang &
// He, "OFTT: A Fault Tolerance Middleware Toolkit for Process Monitoring
// and Control Windows NT Applications", DSN 2000).
//
// The public API lives in package repro/oftt; the substrates (COM/DCOM
// analogs, OPC data access, PLC/network/node simulation, the OFTT engine,
// FTIMs, message diverter, and system monitor) live under internal/. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. The root-level benchmarks in bench_test.go
// regenerate every figure and table; run them with:
//
//	go test -bench=. -benchmem .
package repro

package repro

// Root benchmark harness: one benchmark per figure/table of the paper's
// evaluation, as indexed in DESIGN.md. Heavy end-to-end benchmarks report
// their domain metric (recovery time, detection latency) via
// b.ReportMetric in addition to ns/op.
//
// Run with: go test -bench=. -benchmem .

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/dcom"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/ftim"
	"repro/internal/ndr"
	"repro/internal/netsim"
	"repro/internal/opc"
)

// --- E1: Figure 1 reference configurations -------------------------------

// BenchmarkE1LocalRead measures the integrated topology's read path
// (operator client reading plant items through local COM).
func BenchmarkE1LocalRead(b *testing.B) {
	server := opc.NewServer("Plant.OPC.1")
	for i := 0; i < 8; i++ {
		tag := fmt.Sprintf("plc1.sensor%d", i)
		if err := server.AddItem(opc.ItemDef{Tag: tag, CanonicalType: opc.VTFloat64}); err != nil {
			b.Fatal(err)
		}
		_ = server.SetValue(tag, opc.VR8(float64(i)), opc.GoodNonSpecific, time.Now())
	}
	client := opc.NewClient(server)
	defer client.Close()
	tags := []string{"plc1.sensor0", "plc1.sensor3", "plc1.sensor7"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.SyncRead(tags...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1RemoteRead measures the remote-monitoring topology's read
// path (the same reads through DCOM).
func BenchmarkE1RemoteRead(b *testing.B) {
	server := opc.NewServer("Plant.OPC.1")
	for i := 0; i < 8; i++ {
		tag := fmt.Sprintf("plc1.sensor%d", i)
		if err := server.AddItem(opc.ItemDef{Tag: tag, CanonicalType: opc.VTFloat64}); err != nil {
			b.Fatal(err)
		}
		_ = server.SetValue(tag, opc.VR8(float64(i)), opc.GoodNonSpecific, time.Now())
	}
	net := netsim.New("eth", 1)
	exp, err := dcom.NewExporter(net, "plant:opc")
	if err != nil {
		b.Fatal(err)
	}
	defer exp.Close()
	oid := com.NewGUID()
	if err := opc.ExportServer(exp, oid, server); err != nil {
		b.Fatal(err)
	}
	cli, err := dcom.Dial(net, "mon:opc", "plant:opc")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	client := opc.NewClient(opc.NewRemoteConnection(cli, oid))
	defer client.Close()
	tags := []string{"plc1.sensor0", "plc1.sensor3", "plc1.sensor7"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.SyncRead(tags...); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: Figure 2 architecture -------------------------------------------

// BenchmarkE2PairFormation measures standing the whole architecture up:
// engines, negotiation, FTIMs, first activation.
func BenchmarkE2PairFormation(b *testing.B) {
	var totalForm time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		d, err := core.New(core.Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if err := benchWaitRoles(d, 5*time.Second); err != nil {
			_ = d.Shutdown(context.Background())
			b.Fatal(err)
		}
		totalForm += time.Since(start)
		b.StopTimer()
		_ = d.Shutdown(context.Background())
		b.StartTimer()
	}
	b.ReportMetric(float64(totalForm.Microseconds())/float64(b.N)/1000, "form-ms/op")
}

// --- E3: Section 4 failure scenarios --------------------------------------

func benchFailover(b *testing.B, inject func(d *core.Deployment, primary string) error) {
	b.Helper()
	var totalRecovery time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := core.New(core.Config{
			Seed: int64(i + 1),
			NewApp: func(string) core.ReplicatedApp {
				return &benchApp{}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := benchWaitRoles(d, 5*time.Second); err != nil {
			_ = d.Shutdown(context.Background())
			b.Fatal(err)
		}
		primary := d.Primary().Node.Name()
		b.StartTimer()

		start := time.Now()
		if err := inject(d, primary); err != nil {
			_ = d.Shutdown(context.Background())
			b.Fatal(err)
		}
		deadline := time.Now().Add(8 * time.Second)
		recovered := false
		for time.Now().Before(deadline) {
			if p := d.Primary(); p != nil && p.AppActive() {
				if p.Node.Name() != primary || mustReplicaRebuilt(d, primary) {
					recovered = true
					break
				}
			}
			time.Sleep(time.Millisecond)
		}
		elapsed := time.Since(start)
		b.StopTimer()
		_ = d.Shutdown(context.Background())
		b.StartTimer()
		if !recovered {
			b.Fatal("no recovery")
		}
		totalRecovery += elapsed
	}
	b.ReportMetric(float64(totalRecovery.Microseconds())/float64(b.N)/1000, "recovery-ms/op")
}

// mustReplicaRebuilt reports whether the named node's app copy is live
// again (the local-restart recovery path).
func mustReplicaRebuilt(d *core.Deployment, node string) bool {
	r := d.Replica(node)
	return r != nil && r.AppActive()
}

// benchApp is a trivial replicated app for failover benchmarks.
type benchApp struct{ state struct{ N int64 } }

func (a *benchApp) Setup(f *ftim.ClientFTIM) error { return f.RegisterState("n", &a.state) }
func (a *benchApp) Activate(bool)                  {}
func (a *benchApp) Deactivate()                    {}
func (a *benchApp) Stop()                          {}

// BenchmarkE3FailoverNodeFailure is scenario (a).
func BenchmarkE3FailoverNodeFailure(b *testing.B) {
	benchFailover(b, func(d *core.Deployment, p string) error { return d.KillNode(p) })
}

// BenchmarkE3FailoverNTCrash is scenario (b).
func BenchmarkE3FailoverNTCrash(b *testing.B) {
	benchFailover(b, func(d *core.Deployment, p string) error { return d.BlueScreen(p) })
}

// BenchmarkE3FailoverAppFailure is scenario (c).
func BenchmarkE3FailoverAppFailure(b *testing.B) {
	benchFailover(b, func(d *core.Deployment, p string) error { return d.KillApp(p) })
}

// BenchmarkE3FailoverMiddlewareFailure is scenario (d).
func BenchmarkE3FailoverMiddlewareFailure(b *testing.B) {
	benchFailover(b, func(d *core.Deployment, p string) error { return d.KillEngine(p) })
}

// --- E4: checkpoint modes --------------------------------------------------

func checkpointRegistry(b *testing.B, size int) (*checkpoint.Registry, func()) {
	b.Helper()
	reg := checkpoint.NewRegistry()
	const regions = 16
	state := make([][]byte, regions)
	for i := range state {
		state[i] = make([]byte, size/regions)
		if err := reg.Register(fmt.Sprintf("r%02d", i), &state[i]); err != nil {
			b.Fatal(err)
		}
	}
	hot := int64(0)
	if err := reg.Register("hot", &hot); err != nil {
		b.Fatal(err)
	}
	if err := reg.Select("hot"); err != nil {
		b.Fatal(err)
	}
	i := 0
	mutate := func() {
		hot++
		state[i%regions][0] ^= 0xFF
		i++
	}
	return reg, mutate
}

// BenchmarkE4CheckpointFull captures the whole 64 KiB state.
func BenchmarkE4CheckpointFull(b *testing.B) {
	reg, mutate := checkpointRegistry(b, 64<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mutate()
		if _, err := reg.CaptureFull(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4CheckpointSelective captures only the SelSave designation.
func BenchmarkE4CheckpointSelective(b *testing.B) {
	reg, mutate := checkpointRegistry(b, 64<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mutate()
		if _, err := reg.CaptureSelective(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4CheckpointIncremental captures only changed regions.
func BenchmarkE4CheckpointIncremental(b *testing.B) {
	reg, mutate := checkpointRegistry(b, 64<<10)
	if _, err := reg.CaptureIncremental(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mutate()
		if _, err := reg.CaptureIncremental(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: startup negotiation ------------------------------------------------

// BenchmarkE5PairNegotiation measures a clean two-node role negotiation.
func BenchmarkE5PairNegotiation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := netsim.New("eth", int64(i+1))
		node1 := cluster.NewNode("node1", 1, net)
		node2 := cluster.NewNode("node2", 2, net)
		cfg := func(peer string) engine.Config {
			return engine.Config{
				PeerNode:          peer,
				HeartbeatInterval: 5 * time.Millisecond,
				Startup: engine.StartupPolicy{
					Retries: 10, RetryInterval: 5 * time.Millisecond,
					Alone: engine.AloneBecomePrimary,
				},
			}
		}
		e1 := engine.New(node1, cfg("node2"), nil)
		e2 := engine.New(node2, cfg("node1"), nil)
		if err := e1.Start(nil); err != nil {
			b.Fatal(err)
		}
		if err := e2.Start(nil); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			r1, r2 := e1.Role(), e2.Role()
			if (r1 == engine.RolePrimary && r2 == engine.RoleBackup) ||
				(r1 == engine.RoleBackup && r2 == engine.RolePrimary) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		b.StopTimer()
		e1.Stop()
		e2.Stop()
		b.StartTimer()
	}
}

// --- E6: message diverter ----------------------------------------------------

// BenchmarkE6DiverterDelivery measures the send -> primary delivery path
// on a healthy pair.
func BenchmarkE6DiverterDelivery(b *testing.B) {
	delivered := make(chan struct{}, 64)
	d, err := core.New(core.Config{
		Seed: 1,
		NewApp: func(string) core.ReplicatedApp {
			return &ackApp{delivered: delivered}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if err := benchWaitRoles(d, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	payload := []byte("operator message")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Send(payload); err != nil {
			b.Fatal(err)
		}
		<-delivered
	}
}

type ackApp struct {
	benchApp
	delivered chan struct{}
}

func (a *ackApp) HandleMessage([]byte) error {
	a.delivered <- struct{}{}
	return nil
}

// --- E7: failure detection ----------------------------------------------------

// BenchmarkE7DetectionLatency measures silence-to-detection time at a 5ms
// heartbeat interval.
func BenchmarkE7DetectionLatency(b *testing.B) {
	rows, err := experiments.RunE7([]time.Duration{5 * time.Millisecond}, []int{0}, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rows[0].MeanDetectMs, "detect-ms/op")
}

// --- E8: COM vs DCOM -----------------------------------------------------------

// BenchmarkE8LocalComCall measures an in-process interface call through
// QueryInterface.
func BenchmarkE8LocalComCall(b *testing.B) {
	server := opc.NewServer("Bench.OPC.1")
	if err := server.AddItem(opc.ItemDef{Tag: "x", CanonicalType: opc.VTFloat64}); err != nil {
		b.Fatal(err)
	}
	obj := com.NewObject(map[com.IID]any{com.IIDOPCServer: opc.Connection(server)})
	conn, err := com.QueryAs[opc.Connection](obj, com.IIDOPCServer)
	if err != nil {
		b.Fatal(err)
	}
	tags := []string{"x"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Read(tags); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8RemoteDcomCall measures the same call through the DCOM
// analog's proxy/stub machinery and wire marshaling.
func BenchmarkE8RemoteDcomCall(b *testing.B) {
	server := opc.NewServer("Bench.OPC.1")
	if err := server.AddItem(opc.ItemDef{Tag: "x", CanonicalType: opc.VTFloat64}); err != nil {
		b.Fatal(err)
	}
	net := netsim.New("eth", 1)
	exp, err := dcom.NewExporter(net, "s:rpc")
	if err != nil {
		b.Fatal(err)
	}
	defer exp.Close()
	oid := com.NewGUID()
	if err := opc.ExportServer(exp, oid, server); err != nil {
		b.Fatal(err)
	}
	cli, err := dcom.Dial(net, "c:rpc", "s:rpc")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	remote := opc.NewRemoteConnection(cli, oid)
	tags := []string{"x"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.Read(tags); err != nil {
			b.Fatal(err)
		}
	}
}

// --- NDR: compiled codec plans -------------------------------------------

// BenchmarkNDRPlanned measures the serialization layer every wire path
// (E4 checkpoints, E6 diverter messages, E8 DCOM frames) rides, over the
// same nested-struct shape as `oftt-bench -exp NDR`. It cannot reuse
// experiments.RunNDR here: testing.Benchmark deadlocks when invoked from
// inside a running benchmark (the testing package's benchmark lock is
// already held), so the loops are inlined.
func BenchmarkNDRPlanned(b *testing.B) {
	type ndrBenchStruct struct {
		ID     uint64
		Method string
		Args   [][]byte
		Tags   []string
		Scores map[string]float64
		When   time.Time
		Gap    time.Duration
	}
	v := ndrBenchStruct{
		ID:     42,
		Method: "Read",
		Args:   [][]byte{{1, 2, 3}, {4, 5}},
		Tags:   []string{"opc", "ftim"},
		Scores: map[string]float64{"latency": 1.5, "rate": 250},
		When:   time.Unix(961936200, 123456789).UTC(),
		Gap:    40 * time.Millisecond,
	}
	frame, err := ndr.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ndr.Marshal(v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("marshalTo", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = ndr.MarshalTo(buf[:0], v)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		var out ndrBenchStruct
		for i := 0; i < b.N; i++ {
			if err := ndr.Unmarshal(frame, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchWaitRoles bounds WaitForRolesContext with a timeout for the
// benchmark drivers.
func benchWaitRoles(d *core.Deployment, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return d.WaitForRolesContext(ctx)
}

package netsim

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"
)

// TestConnSendBatch verifies that a simulated batch send delivers every
// frame, in order, as individual receives, and counts one batch.
func TestConnSendBatch(t *testing.T) {
	n := New("eth0", 1)
	l, err := n.Listen("srv:x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cli, err := n.Dial("cli:x", "srv:x")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}

	frames := [][]byte{[]byte("one"), []byte("two"), []byte("three"), {}}
	if err := cli.SendBatch(frames); err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		got, err := srv.RecvTimeout(time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if got := n.Stats().BatchesSent.Load(); got != 1 {
		t.Fatalf("BatchesSent = %d, want 1", got)
	}
	if got := n.Stats().FramesSent.Load(); got != int64(len(frames)) {
		t.Fatalf("FramesSent = %d, want %d", got, len(frames))
	}
}

// TestConnSendBatchOrderWithSend interleaves SendBatch and Send from the
// same writer and checks FIFO delivery survives.
func TestConnSendBatchOrderWithSend(t *testing.T) {
	n := New("eth0", 1)
	n.SetLatency(time.Millisecond, time.Millisecond)
	l, err := n.Listen("srv:x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cli, err := n.Dial("cli:x", "srv:x")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}

	var want [][]byte
	for i := 0; i < 12; i++ {
		f := []byte(fmt.Sprintf("f%02d", i))
		want = append(want, f)
	}
	if err := cli.Send(want[0]); err != nil {
		t.Fatal(err)
	}
	if err := cli.SendBatch(want[1:9]); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(want[9]); err != nil {
		t.Fatal(err)
	}
	if err := cli.SendBatch(want[10:]); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		got, err := srv.RecvTimeout(time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("frame %d = %q, want %q", i, got, w)
		}
	}
}

// TestConnSendBatchPartitioned verifies a batch toward a cut link fails
// like Send does and breaks the connection.
func TestConnSendBatchPartitioned(t *testing.T) {
	n := New("eth0", 1)
	l, err := n.Listen("srv:x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cli, err := n.Dial("cli:x", "srv:x")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition("cli:x", "srv:x")
	if err := cli.SendBatch([][]byte{[]byte("x")}); err == nil {
		t.Fatal("batch across a partition should fail")
	}
}

// TestTCPSendBatchRecvBuf round-trips a batch over real TCP and exercises
// the pooled receive path.
func TestTCPSendBatchRecvBuf(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan *TCPConn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cli, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-accepted
	defer srv.Close()

	frames := [][]byte{[]byte("alpha"), []byte("beta-longer-payload"), {}, []byte("gamma")}
	if err := cli.SendBatch(frames); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 4)
	for i, want := range frames {
		got, err := srv.RecvBuf(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
		buf = got // reuse the (possibly grown) arena
	}
}

// TestDialTCPContextCanceled verifies the context-aware dial surfaces
// cancellation instead of blocking.
func TestDialTCPContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialTCPContext(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("canceled dial should fail")
	}
}

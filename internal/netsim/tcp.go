package netsim

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// FrameConn is the transport contract shared by the simulated fabric
// (*Conn) and real TCP (*TCPConn): framed, reliable, ordered delivery.
// dcom and checkpoint ride this interface, so the toolkit runs unchanged
// on either transport — the simulated Ethernet for tests and experiments,
// real sockets for multi-process deployment.
type FrameConn interface {
	Send(frame []byte) error
	Recv() ([]byte, error)
	RecvTimeout(d time.Duration) ([]byte, error)
	Close() error
}

// BatchSender is the optional frame-batching capability: transmit several
// back-to-back frames in one fabric send (simulated) or one buffered write
// (TCP, one syscall instead of 2×N). dcom's flush coalescer type-asserts
// for it and falls back to per-frame Send when absent. SendBatch is not
// safe for concurrent use with itself or Send — callers (the coalescer)
// funnel all writes through one goroutine.
type BatchSender interface {
	SendBatch(frames [][]byte) error
}

// BufRecver is the optional pooled-receive capability: decode the next
// frame into a caller-owned buffer (grown as needed) instead of a fresh
// allocation, so a per-connection read arena serves the receive path.
type BufRecver interface {
	RecvBuf(buf []byte) ([]byte, error)
}

var (
	_ FrameConn   = (*Conn)(nil)
	_ FrameConn   = (*TCPConn)(nil)
	_ BatchSender = (*Conn)(nil)
	_ BatchSender = (*TCPConn)(nil)
	_ BufRecver   = (*TCPConn)(nil)
)

// maxTCPFrame bounds a frame read from the wire.
const maxTCPFrame = 64 << 20

// TCPListener accepts framed connections on a real TCP socket.
type TCPListener struct {
	l net.Listener
}

// ListenTCP binds a framed-connection listener on a real TCP address
// (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (*TCPListener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: tcp listen: %w", err)
	}
	return &TCPListener{l: l}, nil
}

// Addr returns the bound address (useful with port 0).
func (t *TCPListener) Addr() string { return t.l.Addr().String() }

// Accept blocks for the next inbound connection.
func (t *TCPListener) Accept() (*TCPConn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, ErrClosed
	}
	return newTCPConn(c), nil
}

// Close unbinds the listener.
func (t *TCPListener) Close() error { return t.l.Close() }

// TCPConn is a length-prefixed framed connection over real TCP.
type TCPConn struct {
	c    net.Conn
	r    *bufio.Reader
	wbuf []byte // SendBatch scratch; single-writer, see BatchSender
}

func newTCPConn(c net.Conn) *TCPConn {
	return &TCPConn{c: c, r: bufio.NewReader(c)}
}

// DialTCP opens a framed connection to a TCPListener.
func DialTCP(addr string) (*TCPConn, error) {
	return DialTCPContext(context.Background(), addr)
}

// DialTCPContext is DialTCP honoring ctx for timeout and cancellation —
// without it a dial toward a partitioned peer blocks for the kernel's
// connect timeout (minutes), far past any failover budget.
func DialTCPContext(ctx context.Context, addr string) (*TCPConn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	return newTCPConn(c), nil
}

// Send transmits one frame (4-byte big-endian length prefix).
func (t *TCPConn) Send(frame []byte) error {
	if len(frame) > maxTCPFrame {
		return fmt.Errorf("netsim: frame too large: %d", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := t.c.Write(hdr[:]); err != nil {
		return mapTCPErr(err)
	}
	if _, err := t.c.Write(frame); err != nil {
		return mapTCPErr(err)
	}
	return nil
}

// SendBatch transmits several frames in one buffered write: all length
// prefixes and payloads are staged into one scratch buffer and pushed with
// a single syscall. Not safe for concurrent use with Send or itself.
func (t *TCPConn) SendBatch(frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	total := 0
	for _, f := range frames {
		if len(f) > maxTCPFrame {
			return fmt.Errorf("netsim: frame too large: %d", len(f))
		}
		total += 4 + len(f)
	}
	buf := t.wbuf[:0]
	var hdr [4]byte
	for _, f := range frames {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(f)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, f...)
	}
	if cap(buf) <= maxBatchScratch {
		t.wbuf = buf
	}
	if _, err := t.c.Write(buf); err != nil {
		return mapTCPErr(err)
	}
	return nil
}

// maxBatchScratch caps the retained SendBatch staging buffer so one giant
// burst does not pin memory for the connection's lifetime.
const maxBatchScratch = 1 << 20

// Recv blocks for the next frame.
func (t *TCPConn) Recv() ([]byte, error) {
	_ = t.c.SetReadDeadline(time.Time{})
	return t.recvFrame()
}

// RecvBuf is Recv decoding into buf's backing array when capacity allows,
// so a pooled per-connection read arena serves the receive path without a
// per-frame allocation. The returned slice aliases buf when it fit.
func (t *TCPConn) RecvBuf(buf []byte) ([]byte, error) {
	_ = t.c.SetReadDeadline(time.Time{})
	var hdr [4]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return nil, mapTCPErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxTCPFrame {
		return nil, fmt.Errorf("netsim: oversized frame: %d", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(t.r, buf); err != nil {
		return nil, mapTCPErr(err)
	}
	return buf, nil
}

// RecvTimeout is Recv with a deadline; it returns ErrTimeout on expiry.
func (t *TCPConn) RecvTimeout(d time.Duration) ([]byte, error) {
	_ = t.c.SetReadDeadline(time.Now().Add(d))
	frame, err := t.recvFrame()
	_ = t.c.SetReadDeadline(time.Time{})
	return frame, err
}

func (t *TCPConn) recvFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return nil, mapTCPErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxTCPFrame {
		return nil, fmt.Errorf("netsim: oversized frame: %d", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(t.r, frame); err != nil {
		return nil, mapTCPErr(err)
	}
	return frame, nil
}

// Close tears the connection down.
func (t *TCPConn) Close() error { return t.c.Close() }

// mapTCPErr converts net errors to the fabric's sentinel errors so callers
// handle both transports uniformly.
func mapTCPErr(err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ErrTimeout
	}
	return fmt.Errorf("%w: %v", ErrClosed, err)
}

package netsim

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func tcpPair(t *testing.T) (*TCPConn, *TCPConn) {
	t.Helper()
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })

	type acceptResult struct {
		conn *TCPConn
		err  error
	}
	ch := make(chan acceptResult, 1)
	go func() {
		c, err := l.Accept()
		ch <- acceptResult{c, err}
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}
	t.Cleanup(func() { _ = res.conn.Close() })
	return client, res.conn
}

func TestTCPFrameRoundTrip(t *testing.T) {
	client, server := tcpPair(t)
	if err := client.Send([]byte("over real sockets")); err != nil {
		t.Fatal(err)
	}
	got, err := server.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over real sockets" {
		t.Fatalf("got %q", got)
	}
	// Reply direction.
	if err := server.Send([]byte("ack")); err != nil {
		t.Fatal(err)
	}
	if got, err := client.RecvTimeout(2 * time.Second); err != nil || string(got) != "ack" {
		t.Fatalf("reply: %q %v", got, err)
	}
}

func TestTCPEmptyAndLargeFrames(t *testing.T) {
	client, server := tcpPair(t)
	large := make([]byte, 1<<20)
	for i := range large {
		large[i] = byte(i)
	}
	frames := [][]byte{{}, {0}, large}
	go func() {
		for _, f := range frames {
			_ = client.Send(f)
		}
	}()
	for i, want := range frames {
		got, err := server.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	client, _ := tcpPair(t)
	start := time.Now()
	_, err := client.RecvTimeout(50 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout overshot")
	}
	// The connection survives a timeout (deadline cleared).
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = client.Recv()
	}()
	select {
	case <-done:
		t.Fatal("Recv returned immediately after timeout; deadline leaked")
	case <-time.After(50 * time.Millisecond):
	}
	client.Close()
	<-done
}

func TestTCPPeerCloseSurfacesClosed(t *testing.T) {
	client, server := tcpPair(t)
	server.Close()
	if _, err := client.RecvTimeout(2 * time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
}

func TestTCPOrderingUnderLoad(t *testing.T) {
	client, server := tcpPair(t)
	const count = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < count; i++ {
			if err := client.Send([]byte{byte(i), byte(i >> 8)}); err != nil {
				return
			}
		}
	}()
	for i := 0; i < count; i++ {
		f, err := server.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if int(f[0])|int(f[1])<<8 != i {
			t.Fatalf("frame %d out of order", i)
		}
	}
	wg.Wait()
}

// Property: arbitrary payloads survive the TCP framing byte-identically.
func TestQuickTCPFrameIntegrity(t *testing.T) {
	client, server := tcpPair(t)
	f := func(payload []byte) bool {
		if err := client.Send(payload); err != nil {
			return false
		}
		got, err := server.RecvTimeout(5 * time.Second)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package netsim

import (
	"fmt"
	"sync"
	"time"
)

// Datagram is one unreliable message, the substrate for heartbeats.
type Datagram struct {
	From    Addr
	Payload []byte
}

// DatagramSock sends and receives unreliable datagrams at one address.
// Datagrams are subject to the network's loss rate, latency, partitions,
// and endpoint failures; they are never retransmitted.
type DatagramSock struct {
	net  *Network
	addr Addr

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []timedDatagram
	closed bool
}

type timedDatagram struct {
	due time.Time
	d   Datagram
}

// ListenDatagram binds a datagram socket to addr.
func (n *Network) ListenDatagram(addr Addr) (*DatagramSock, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, exists := n.dgramSocks[addr]; exists {
		return nil, fmt.Errorf("netsim: datagram address %s already in use", addr)
	}
	s := &DatagramSock{net: n, addr: addr}
	s.cond = sync.NewCond(&s.mu)
	n.dgramSocks[addr] = s
	return s, nil
}

// Addr returns the bound address.
func (s *DatagramSock) Addr() Addr { return s.addr }

// Send transmits one datagram to the destination. Loss and unreachability
// are silent, as with UDP: the error return covers only local failures
// (socket closed, local endpoint down).
func (s *DatagramSock) Send(to Addr, payload []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()

	n := s.net
	n.mu.Lock()
	if n.down[s.addr] {
		n.mu.Unlock()
		return ErrEndpointDown
	}
	n.stats.DatagramsSent.Add(1)
	if err := n.reachableLocked(s.addr, to); err != nil {
		n.stats.DatagramsLost.Add(1)
		n.mu.Unlock()
		return nil // silent, like UDP
	}
	if n.dropDatagramLocked() {
		n.stats.DatagramsLost.Add(1)
		n.mu.Unlock()
		return nil
	}
	dst, ok := n.dgramSocks[to]
	delay := n.delayLocked()
	n.mu.Unlock()
	if !ok {
		n.stats.DatagramsLost.Add(1)
		return nil
	}

	cp := make([]byte, len(payload))
	copy(cp, payload)
	dst.deliver(Datagram{From: s.addr, Payload: cp}, delay)
	return nil
}

func (s *DatagramSock) deliver(d Datagram, delay time.Duration) {
	due := time.Now().Add(delay)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.queue) >= 4096 {
		// Receiver overrun: drop, as a real NIC ring would.
		s.net.stats.DatagramsLost.Add(1)
		return
	}
	s.queue = append(s.queue, timedDatagram{due: due, d: d})
	s.cond.Broadcast()
}

// Recv blocks for the next datagram.
func (s *DatagramSock) Recv() (Datagram, error) {
	return s.recv(nil)
}

// RecvTimeout is Recv with a deadline; it returns ErrTimeout on expiry.
func (s *DatagramSock) RecvTimeout(d time.Duration) (Datagram, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	return s.recv(t.C)
}

func (s *DatagramSock) recv(timeout <-chan time.Time) (Datagram, error) {
	// Fast path: a due datagram is already queued — skip the timeout
	// watcher goroutine entirely. Busy receivers (the fabric's demux
	// loops) take this path for nearly every datagram.
	s.mu.Lock()
	if !s.closed && len(s.queue) > 0 {
		td := s.queue[0]
		if time.Until(td.due) <= 0 {
			s.queue = s.queue[1:]
			s.mu.Unlock()
			return td.d, nil
		}
	}
	s.mu.Unlock()

	timedOut := false
	if timeout != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-timeout:
				s.mu.Lock()
				timedOut = true
				s.mu.Unlock()
				s.cond.Broadcast()
			case <-stop:
			}
		}()
	}
	s.mu.Lock()
	for {
		if timedOut {
			s.mu.Unlock()
			return Datagram{}, ErrTimeout
		}
		if s.closed {
			s.mu.Unlock()
			return Datagram{}, ErrClosed
		}
		if len(s.queue) > 0 {
			td := s.queue[0]
			wait := time.Until(td.due)
			if wait <= 0 {
				s.queue = s.queue[1:]
				s.mu.Unlock()
				return td.d, nil
			}
			s.mu.Unlock()
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-timeoutOrNever(timeout):
				timer.Stop()
			}
			timer.Stop()
			s.mu.Lock()
			continue
		}
		s.cond.Wait()
	}
}

// Close unbinds the socket.
func (s *DatagramSock) Close() error {
	s.net.mu.Lock()
	if s.net.dgramSocks[s.addr] == s {
		delete(s.net.dgramSocks, s.addr)
	}
	s.net.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	return nil
}

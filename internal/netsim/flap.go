package netsim

import (
	"sync"
	"time"
)

// Flapper toggles a prefix partition between two node prefixes on a fixed
// cadence — the flapping-link fault (loose cable, duplex mismatch) that
// neither a clean partition nor a clean heal models. Each cycle cuts the
// link for downFor, then restores it for upFor.
type Flapper struct {
	net     *Network
	a, b    string
	downFor time.Duration
	upFor   time.Duration

	mu      sync.Mutex
	cycles  int
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// NewFlapper creates a stopped flapper for the link between prefixes a and
// b (e.g. "node1:", "node2:"). Zero durations default to 10ms.
func (n *Network) NewFlapper(a, b string, downFor, upFor time.Duration) *Flapper {
	if downFor <= 0 {
		downFor = 10 * time.Millisecond
	}
	if upFor <= 0 {
		upFor = 10 * time.Millisecond
	}
	return &Flapper{net: n, a: a, b: b, downFor: downFor, upFor: upFor}
}

// Start begins flapping. Idempotent while running.
func (f *Flapper) Start() {
	f.mu.Lock()
	if f.running {
		f.mu.Unlock()
		return
	}
	f.running = true
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	stop, done := f.stop, f.done
	f.mu.Unlock()

	go func() {
		defer close(done)
		for {
			f.net.PartitionPrefix(f.a, f.b)
			if !sleepOrStop(f.downFor, stop) {
				f.net.HealPrefix(f.a, f.b)
				return
			}
			f.net.HealPrefix(f.a, f.b)
			f.mu.Lock()
			f.cycles++
			f.mu.Unlock()
			if !sleepOrStop(f.upFor, stop) {
				return
			}
		}
	}()
}

// Stop halts flapping and leaves the link healed.
func (f *Flapper) Stop() {
	f.mu.Lock()
	if !f.running {
		f.mu.Unlock()
		return
	}
	f.running = false
	stop, done := f.stop, f.done
	f.mu.Unlock()
	close(stop)
	<-done
	f.net.HealPrefix(f.a, f.b)
}

// Cycles reports completed down/up cycles.
func (f *Flapper) Cycles() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cycles
}

// sleepOrStop sleeps for d; it returns false if stop closed first.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

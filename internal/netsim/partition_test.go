package netsim

import (
	"testing"
	"time"
)

// TestPartitionOneWayDatagrams: a one-way cut blocks datagrams in the cut
// direction while the reverse direction keeps flowing — the asymmetric
// failure mode the chaos campaigns exercise.
func TestPartitionOneWayDatagrams(t *testing.T) {
	n := newTestNet(t)
	a, err := n.ListenDatagram("a:hb")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.ListenDatagram("b:hb")
	if err != nil {
		t.Fatal(err)
	}

	n.PartitionOneWay("a:hb", "b:hb")
	if n.PartitionCount() != 1 {
		t.Fatalf("PartitionCount = %d", n.PartitionCount())
	}

	// a -> b is cut: silently lost.
	if err := a.Send("b:hb", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(30 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("cut direction delivered: %v", err)
	}

	// b -> a still flows.
	if err := b.Send("a:hb", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	d, err := a.RecvTimeout(time.Second)
	if err != nil || string(d.Payload) != "alive" {
		t.Fatalf("reverse direction: %v %q", err, d.Payload)
	}

	n.HealOneWay("a:hb", "b:hb")
	if err := a.Send("b:hb", []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if d, err := b.RecvTimeout(time.Second); err != nil || string(d.Payload) != "healed" {
		t.Fatalf("after heal: %v %q", err, d.Payload)
	}
}

// TestPartitionOneWayBreaksConns: framed (TCP-like) connections cannot
// survive a half-dead path; new sends in the cut direction fail.
func TestPartitionOneWayBreaksConns(t *testing.T) {
	n := newTestNet(t)
	l, err := n.Listen("b:svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	client, err := n.Dial("a:cli", "b:svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}

	n.PartitionOneWay("a:cli", "b:svc")
	if err := client.Send([]byte("x")); err == nil {
		t.Fatal("send across one-way cut succeeded")
	}
}

// TestPartitionPrefix cuts whole machines without enumerating services,
// both directions, and heals cleanly.
func TestPartitionPrefix(t *testing.T) {
	n := newTestNet(t)
	a, _ := n.ListenDatagram("node1:hb")
	b, _ := n.ListenDatagram("node2:hb")

	n.PartitionPrefix("node1:", "node2:")
	_ = a.Send("node2:hb", []byte("x"))
	_ = b.Send("node1:hb", []byte("y"))
	if _, err := a.RecvTimeout(30 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("partitioned delivery: %v", err)
	}
	if _, err := b.RecvTimeout(30 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("partitioned delivery: %v", err)
	}

	// New dials between the prefixes are refused.
	if l, err := n.Listen("node2:svc"); err == nil {
		defer l.Close()
		if _, err := n.Dial("node1:cli", "node2:svc"); err == nil {
			t.Fatal("dial across prefix partition succeeded")
		}
	}

	n.HealPrefix("node1:", "node2:")
	if err := a.Send("node2:hb", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if d, err := b.RecvTimeout(time.Second); err != nil || string(d.Payload) != "ok" {
		t.Fatalf("after heal: %v %q", err, d.Payload)
	}
}

// TestPartitionPrefixOneWay: asymmetric whole-machine cut.
func TestPartitionPrefixOneWay(t *testing.T) {
	n := newTestNet(t)
	a, _ := n.ListenDatagram("node1:hb")
	b, _ := n.ListenDatagram("node2:hb")

	n.PartitionPrefixOneWay("node1:", "node2:")
	_ = a.Send("node2:hb", []byte("cut"))
	if _, err := b.RecvTimeout(30 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("cut direction delivered: %v", err)
	}
	_ = b.Send("node1:hb", []byte("open"))
	if d, err := a.RecvTimeout(time.Second); err != nil || string(d.Payload) != "open" {
		t.Fatalf("open direction: %v %q", err, d.Payload)
	}

	n.HealAll()
	if n.PartitionCount() != 0 {
		t.Fatalf("PartitionCount after HealAll = %d", n.PartitionCount())
	}
	_ = a.Send("node2:hb", []byte("ok"))
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Fatalf("after HealAll: %v", err)
	}
}

// TestFlapper: the link toggles and ends healed after Stop.
func TestFlapper(t *testing.T) {
	n := newTestNet(t)
	a, _ := n.ListenDatagram("node1:hb")
	b, _ := n.ListenDatagram("node2:hb")

	f := n.NewFlapper("node1:", "node2:", 5*time.Millisecond, 5*time.Millisecond)
	f.Start()
	deadline := time.Now().Add(2 * time.Second)
	for f.Cycles() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	f.Stop()
	if f.Cycles() < 3 {
		t.Fatalf("only %d flap cycles", f.Cycles())
	}
	if n.PartitionCount() != 0 {
		t.Fatalf("link left partitioned after Stop: %d", n.PartitionCount())
	}
	if err := a.Send("node2:hb", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Fatalf("post-flap delivery: %v", err)
	}
	_ = a
}

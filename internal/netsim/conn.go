package netsim

import (
	"fmt"
	"sync"
	"time"
)

// Listener accepts framed connections at an address.
type Listener struct {
	net  *Network
	addr Addr

	mu      sync.Mutex
	backlog chan *Conn
	conns   map[*Conn]struct{}
	closed  bool
}

// Listen binds a framed-connection listener to addr.
func (n *Network) Listen(addr Addr) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("netsim: address %s already in use", addr)
	}
	l := &Listener{
		net:     n,
		addr:    addr,
		backlog: make(chan *Conn, 64),
		conns:   make(map[*Conn]struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() Addr { return l.addr }

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (*Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close unbinds the listener and breaks every connection accepted from it.
func (l *Listener) Close() error {
	l.net.mu.Lock()
	if l.net.listeners[l.addr] == l {
		delete(l.net.listeners, l.addr)
	}
	l.net.mu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.backlog)
	victims := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		victims = append(victims, c)
	}
	l.mu.Unlock()
	for _, c := range victims {
		c.breakBoth()
	}
	return nil
}

// Conn is one direction-pair of a framed, reliable, ordered connection —
// the TCP stand-in that DCOM calls and checkpoint transfers ride on.
type Conn struct {
	net    *Network
	local  Addr
	remote Addr
	send   *pipe // frames we write, peer reads
	recv   *pipe // frames peer writes, we read
	peer   *Conn
}

// Dial opens a framed connection from `from` to a listener at `to`.
func (n *Network) Dial(from, to Addr) (*Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if err := n.reachableLocked(from, to); err != nil {
		n.stats.ConnsRefused.Add(1)
		n.mu.Unlock()
		return nil, err
	}
	l, ok := n.listeners[to]
	if !ok {
		n.stats.ConnsRefused.Add(1)
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: no listener at %s", ErrUnreachable, to)
	}
	n.mu.Unlock()

	ab := newPipe()
	ba := newPipe()
	client := &Conn{net: n, local: from, remote: to, send: ab, recv: ba}
	server := &Conn{net: n, local: to, remote: from, send: ba, recv: ab}
	client.peer, server.peer = server, client

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		n.stats.ConnsRefused.Add(1)
		return nil, ErrClosed
	}
	l.conns[server] = struct{}{}
	l.mu.Unlock()

	select {
	case l.backlog <- server:
	default:
		l.mu.Lock()
		delete(l.conns, server)
		l.mu.Unlock()
		n.stats.ConnsRefused.Add(1)
		return nil, fmt.Errorf("%w: backlog full at %s", ErrUnreachable, to)
	}
	n.stats.ConnsDialed.Add(1)
	return client, nil
}

// LocalAddr returns this end's address.
func (c *Conn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() Addr { return c.remote }

// Send transmits one frame. It fails if the connection is broken or the
// path has become unreachable (partition / endpoint failure), modeling a
// TCP reset — the failure DCOM's RPC layer must surface (Section 3.3).
func (c *Conn) Send(frame []byte) error {
	c.net.mu.Lock()
	if err := c.net.reachableLocked(c.local, c.remote); err != nil {
		c.net.mu.Unlock()
		c.breakBoth()
		return err
	}
	delay := c.net.delayLocked()
	c.net.mu.Unlock()

	cp := make([]byte, len(frame))
	copy(cp, frame)
	if err := c.send.put(cp, delay); err != nil {
		return err
	}
	c.net.stats.FramesSent.Add(1)
	c.net.stats.BytesDelivered.Add(int64(len(frame)))
	return nil
}

// SendBatch transmits several back-to-back frames as one fabric send: a
// single reachability check, one latency sample (the frames travel as one
// burst, like coalesced writes share one TCP segment train), and one pipe
// lock. The receiver still sees individual frames in order. This is the
// batching hook dcom's flush coalescer rides.
func (c *Conn) SendBatch(frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	c.net.mu.Lock()
	if err := c.net.reachableLocked(c.local, c.remote); err != nil {
		c.net.mu.Unlock()
		c.breakBoth()
		return err
	}
	delay := c.net.delayLocked()
	c.net.mu.Unlock()

	total := 0
	for _, f := range frames {
		total += len(f)
	}
	if err := c.send.putBatch(frames, total, delay); err != nil {
		return err
	}
	c.net.stats.FramesSent.Add(int64(len(frames)))
	c.net.stats.BatchesSent.Add(1)
	c.net.stats.BytesDelivered.Add(int64(total))
	return nil
}

// Recv blocks for the next frame. It returns ErrClosed once the connection
// is broken and drained.
func (c *Conn) Recv() ([]byte, error) {
	return c.recv.take(nil)
}

// RecvTimeout is Recv with a deadline.
func (c *Conn) RecvTimeout(d time.Duration) ([]byte, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	return c.recv.take(t.C)
}

// Close breaks the connection in both directions.
func (c *Conn) Close() error {
	c.breakBoth()
	return nil
}

func (c *Conn) breakBoth() {
	c.send.closePipe()
	c.recv.closePipe()
}

// pipe is one direction of a connection: an ordered frame queue with
// latency-delayed visibility. Delivery order is preserved even under jitter
// (due times are clamped monotonically, as TCP's in-order delivery would).
type pipe struct {
	mu      sync.Mutex
	cond    *sync.Cond
	frames  []timedFrame
	lastDue time.Time
	closed  bool
}

type timedFrame struct {
	due  time.Time
	data []byte
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipe) put(frame []byte, delay time.Duration) error {
	due := time.Now().Add(delay)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if due.Before(p.lastDue) {
		due = p.lastDue // preserve FIFO under jitter
	}
	p.lastDue = due
	p.frames = append(p.frames, timedFrame{due: due, data: frame})
	p.cond.Broadcast()
	return nil
}

// putBatch appends a burst of frames that share one due time. All copies
// land in a single backing allocation, so a large coalesced write costs one
// allocation instead of one per frame.
func (p *pipe) putBatch(frames [][]byte, total int, delay time.Duration) error {
	backing := make([]byte, 0, total)
	due := time.Now().Add(delay)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if due.Before(p.lastDue) {
		due = p.lastDue // preserve FIFO under jitter
	}
	p.lastDue = due
	for _, f := range frames {
		start := len(backing)
		backing = append(backing, f...)
		end := len(backing)
		p.frames = append(p.frames, timedFrame{due: due, data: backing[start:end:end]})
	}
	p.cond.Broadcast()
	return nil
}

// take removes the next frame, waiting for its due time. A receive on
// timeout (if non-nil) aborts with ErrTimeout.
func (p *pipe) take(timeout <-chan time.Time) ([]byte, error) {
	timedOut := false
	if timeout != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-timeout:
				p.mu.Lock()
				timedOut = true
				p.mu.Unlock()
				p.cond.Broadcast()
			case <-stop:
			}
		}()
	}
	p.mu.Lock()
	for {
		if timedOut {
			p.mu.Unlock()
			return nil, ErrTimeout
		}
		if len(p.frames) > 0 {
			f := p.frames[0]
			wait := time.Until(f.due)
			if wait <= 0 {
				p.frames = p.frames[1:]
				p.mu.Unlock()
				return f.data, nil
			}
			// Sleep outside the lock until the frame matures, then re-check.
			p.mu.Unlock()
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-timeoutOrNever(timeout):
				timer.Stop()
			}
			timer.Stop()
			p.mu.Lock()
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		p.cond.Wait()
	}
}

func timeoutOrNever(timeout <-chan time.Time) <-chan time.Time {
	if timeout != nil {
		return timeout
	}
	return nil // nil channel: blocks forever
}

func (p *pipe) closePipe() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// ErrTimeout is returned by RecvTimeout when the deadline passes.
var ErrTimeout = fmt.Errorf("netsim: receive timeout")

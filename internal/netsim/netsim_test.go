package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestNet(t *testing.T) *Network {
	t.Helper()
	return New("eth0", 1)
}

func TestDialSendRecv(t *testing.T) {
	n := newTestNet(t)
	l, err := n.Listen("b:svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	client, err := n.Dial("a:cli", "b:svc")
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}

	if err := client.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}

	if err := server.Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err = client.Recv()
	if err != nil || string(got) != "world" {
		t.Fatalf("reply: %q %v", got, err)
	}
}

func TestDialNoListener(t *testing.T) {
	n := newTestNet(t)
	if _, err := n.Dial("a", "nowhere"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v", err)
	}
}

func TestDuplicateListen(t *testing.T) {
	n := newTestNet(t)
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Listen("x"); err == nil {
		t.Fatal("duplicate bind should fail")
	}
}

func TestFrameOrderingPreserved(t *testing.T) {
	n := newTestNet(t)
	n.SetLatency(time.Millisecond, 2*time.Millisecond) // jitter would reorder naive queues
	l, _ := n.Listen("b")
	defer l.Close()
	c, err := n.Dial("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := l.Accept()

	const count = 50
	for i := 0; i < count; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		f, err := s.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f[0] != byte(i) {
			t.Fatalf("frame %d arrived out of order (got %d)", i, f[0])
		}
	}
}

func TestPartitionBreaksConn(t *testing.T) {
	n := newTestNet(t)
	l, _ := n.Listen("b")
	defer l.Close()
	c, err := n.Dial("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := l.Accept()

	n.Partition("a", "b")
	if err := c.Send([]byte("x")); err == nil {
		// The first send may succeed if it raced the break; the recv side
		// must still observe the break.
		t.Log("send raced partition")
	}
	if _, err := s.RecvTimeout(200 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("server recv after partition: %v", err)
	}

	// New dials across the partition are refused.
	if _, err := n.Dial("a", "b"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial across partition: %v", err)
	}

	// Healing permits new connections.
	n.Heal("a", "b")
	c2, err := n.Dial("a", "b")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Close()
}

func TestFailEndpoint(t *testing.T) {
	n := newTestNet(t)
	l, _ := n.Listen("b")
	defer l.Close()
	c, err := n.Dial("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	n.FailEndpoint("b")
	// Existing conn is broken.
	if _, err := c.RecvTimeout(200 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after endpoint failure: %v", err)
	}
	// Sends from the failed endpoint error.
	if _, err := n.Dial("b", "a"); !errors.Is(err, ErrEndpointDown) {
		t.Fatalf("dial from failed endpoint: %v", err)
	}
	// Restore clears the down flag, but the dead process's listener was
	// closed; a fresh bind is required, as after an OS process restart.
	n.RestoreEndpoint("b")
	if _, err := n.Dial("a", "b"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial before rebind: %v", err)
	}
	l2, err := n.Listen("b")
	if err != nil {
		t.Fatalf("rebind after restore: %v", err)
	}
	defer l2.Close()
	c2, err := n.Dial("a", "b")
	if err != nil {
		t.Fatalf("dial after rebind: %v", err)
	}
	c2.Close()
}

func TestFailPrefix(t *testing.T) {
	n := newTestNet(t)
	l1, _ := n.Listen("node1:engine")
	l2, _ := n.Listen("node1:app")
	l3, _ := n.Listen("node2:engine")
	defer l1.Close()
	defer l2.Close()
	defer l3.Close()

	n.FailPrefix("node1:")
	if _, err := n.Dial("node2:x", "node1:engine"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial to failed node: %v", err)
	}
	if _, err := n.Dial("node2:x", "node2:engine"); err != nil {
		t.Fatalf("unrelated endpoint affected: %v", err)
	}
	n.RestorePrefix("node1:")
	l4, err := n.Listen("node1:engine")
	if err != nil {
		t.Fatalf("rebind after restore: %v", err)
	}
	defer l4.Close()
	c, err := n.Dial("node2:x", "node1:engine")
	if err != nil {
		t.Fatalf("dial after restore: %v", err)
	}
	c.Close()
}

func TestRecvTimeout(t *testing.T) {
	n := newTestNet(t)
	l, _ := n.Listen("b")
	defer l.Close()
	c, _ := n.Dial("a", "b")
	defer c.Close()
	start := time.Now()
	if _, err := c.RecvTimeout(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestLatencyApplied(t *testing.T) {
	n := newTestNet(t)
	n.SetLatency(30*time.Millisecond, 0)
	l, _ := n.Listen("b")
	defer l.Close()
	c, _ := n.Dial("a", "b")
	s, _ := l.Accept()

	start := time.Now()
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestDatagramBasics(t *testing.T) {
	n := newTestNet(t)
	rx, err := n.ListenDatagram("b:hb")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := n.ListenDatagram("a:hb")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	if err := tx.Send("b:hb", []byte("beat")); err != nil {
		t.Fatal(err)
	}
	d, err := rx.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d.From != "a:hb" || string(d.Payload) != "beat" {
		t.Fatalf("got %+v", d)
	}
}

func TestDatagramLoss(t *testing.T) {
	n := New("lossy", 42)
	n.SetLoss(1.0)
	rx, _ := n.ListenDatagram("b")
	defer rx.Close()
	tx, _ := n.ListenDatagram("a")
	defer tx.Close()

	for i := 0; i < 10; i++ {
		if err := tx.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rx.RecvTimeout(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("datagram survived 100%% loss: %v", err)
	}
	if lost := n.Stats().DatagramsLost.Load(); lost != 10 {
		t.Fatalf("lost counter = %d, want 10", lost)
	}
}

func TestDatagramPartialLoss(t *testing.T) {
	n := New("lossy", 7)
	n.SetLoss(0.5)
	rx, _ := n.ListenDatagram("b")
	defer rx.Close()
	tx, _ := n.ListenDatagram("a")
	defer tx.Close()

	const sent = 400
	for i := 0; i < sent; i++ {
		_ = tx.Send("b", []byte{byte(i)})
	}
	received := 0
	for {
		if _, err := rx.RecvTimeout(20 * time.Millisecond); err != nil {
			break
		}
		received++
	}
	if received == 0 || received == sent {
		t.Fatalf("received %d of %d; expected partial delivery", received, sent)
	}
	// Should be within a loose band around 50%.
	if received < sent/5 || received > sent*4/5 {
		t.Fatalf("received %d of %d; loss rate implausible for p=0.5", received, sent)
	}
}

func TestDatagramToDownEndpointSilentlyLost(t *testing.T) {
	n := newTestNet(t)
	tx, _ := n.ListenDatagram("a")
	defer tx.Close()
	rx, _ := n.ListenDatagram("b")
	defer rx.Close()
	n.FailEndpoint("b")
	if err := tx.Send("b", []byte("x")); err != nil {
		t.Fatalf("datagram to dead endpoint should be silent: %v", err)
	}
	// Sender down is a local error (its socket was closed with it).
	n.FailEndpoint("a")
	err := tx.Send("b", []byte("x"))
	if !errors.Is(err, ErrEndpointDown) && !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
}

func TestDualNetworkIndependence(t *testing.T) {
	ethA := New("ethA", 1)
	ethB := New("ethB", 2)
	rxA, _ := ethA.ListenDatagram("n2")
	rxB, _ := ethB.ListenDatagram("n2")
	txA, _ := ethA.ListenDatagram("n1")
	txB, _ := ethB.ListenDatagram("n1")
	defer rxA.Close()
	defer rxB.Close()
	defer txA.Close()
	defer txB.Close()

	// Partition A only; B still delivers.
	ethA.Partition("n1", "n2")
	_ = txA.Send("n2", []byte("a"))
	_ = txB.Send("n2", []byte("b"))
	if _, err := rxA.RecvTimeout(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("ethA delivered across partition: %v", err)
	}
	d, err := rxB.RecvTimeout(time.Second)
	if err != nil || string(d.Payload) != "b" {
		t.Fatalf("ethB should deliver: %v", err)
	}
}

func TestConcurrentConns(t *testing.T) {
	n := newTestNet(t)
	l, _ := n.Listen("srv")
	defer l.Close()

	// Echo server.
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c *Conn) {
				for {
					f, err := c.Recv()
					if err != nil {
						return
					}
					_ = c.Send(f)
				}
			}(c)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial(Addr(fmt.Sprintf("cli%d", i)), "srv")
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				msg := []byte(fmt.Sprintf("%d-%d", i, j))
				if err := c.Send(msg); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				got, err := c.Recv()
				if err != nil || !bytes.Equal(got, msg) {
					t.Errorf("echo mismatch: %q %v", got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestListenerCloseBreaksConns(t *testing.T) {
	n := newTestNet(t)
	l, _ := n.Listen("srv")
	c, err := n.Dial("a", "srv")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := c.RecvTimeout(200 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
	// Accept drains any conns queued before the close (they are already
	// broken), then reports ErrClosed.
	for i := 0; ; i++ {
		conn, err := l.Accept()
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatalf("accept after close: %v", err)
		}
		if _, err := conn.RecvTimeout(100 * time.Millisecond); !errors.Is(err, ErrClosed) {
			t.Fatalf("queued conn not broken: %v", err)
		}
		if i > 4 {
			t.Fatal("accept never reported ErrClosed")
		}
	}
}

// Property: any payload delivered over a conn arrives byte-identical, and
// mutating the sender's buffer afterwards does not corrupt it.
func TestQuickPayloadIntegrity(t *testing.T) {
	n := newTestNet(t)
	l, _ := n.Listen("srv")
	defer l.Close()
	c, err := n.Dial("a", "srv")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := l.Accept()

	f := func(payload []byte) bool {
		sent := make([]byte, len(payload))
		copy(sent, payload)
		if err := c.Send(payload); err != nil {
			return false
		}
		for i := range payload {
			payload[i] = 0xFF // mutate after send
		}
		got, err := s.RecvTimeout(time.Second)
		if err != nil {
			return false
		}
		return bytes.Equal(got, sent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounters(t *testing.T) {
	n := newTestNet(t)
	l, _ := n.Listen("b")
	defer l.Close()
	c, _ := n.Dial("a", "b")
	defer c.Close()
	_ = c.Send([]byte("12345"))
	st := n.Stats().Snapshot()
	if st["connsDialed"] != 1 || st["framesSent"] != 1 || st["bytesDelivered"] != 5 {
		t.Fatalf("stats: %+v", st)
	}
}

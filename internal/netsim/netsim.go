// Package netsim simulates the Ethernet fabric connecting the OFTT pair and
// its peripheral machines (Figure 1 and Figure 3 of the paper). It provides
// reliable framed connections (the substrate for the DCOM analog), an
// unreliable datagram service (the substrate for heartbeats), and injectable
// faults: latency, jitter, datagram loss, pairwise partitions, and whole
// endpoint failure.
//
// A Network value models one physical LAN segment. The paper's dual-Ethernet
// option is modeled by giving each node endpoints on two independent
// Network values.
package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Addr names a network endpoint, e.g. "node1:engine".
type Addr string

// Errors reported by the fabric.
var (
	// ErrUnreachable is returned when the destination is partitioned away,
	// powered off, or has no listener.
	ErrUnreachable = errors.New("netsim: destination unreachable")

	// ErrClosed is returned on operations against a closed conn/listener.
	ErrClosed = errors.New("netsim: closed")

	// ErrEndpointDown is returned when the local endpoint has been failed.
	ErrEndpointDown = errors.New("netsim: local endpoint down")
)

// Stats counts fabric activity for the experiment harness.
type Stats struct {
	FramesSent     atomic.Int64
	FramesDropped  atomic.Int64
	BatchesSent    atomic.Int64 // coalesced SendBatch calls (each carries ≥1 frame)
	DatagramsSent  atomic.Int64
	DatagramsLost  atomic.Int64
	ConnsDialed    atomic.Int64
	ConnsRefused   atomic.Int64
	BytesDelivered atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"framesSent":     s.FramesSent.Load(),
		"framesDropped":  s.FramesDropped.Load(),
		"batchesSent":    s.BatchesSent.Load(),
		"datagramsSent":  s.DatagramsSent.Load(),
		"datagramsLost":  s.DatagramsLost.Load(),
		"connsDialed":    s.ConnsDialed.Load(),
		"connsRefused":   s.ConnsRefused.Load(),
		"bytesDelivered": s.BytesDelivered.Load(),
	}
}

type pairKey struct{ a, b Addr }

func keyFor(a, b Addr) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// dirKey is a directional endpoint pair (asymmetric partitions).
type dirKey struct{ from, to Addr }

// prefixPair is an unordered prefix pair (whole-node partitions).
type prefixPair struct{ a, b string }

func prefixKeyFor(a, b string) prefixPair {
	if a > b {
		a, b = b, a
	}
	return prefixPair{a, b}
}

// dirPrefix is a directional prefix pair (asymmetric whole-node partitions).
type dirPrefix struct{ from, to string }

// Network is one simulated LAN segment.
type Network struct {
	name  string
	stats Stats

	mu           sync.Mutex
	rng          *rand.Rand
	listeners    map[Addr]*Listener
	dgramSocks   map[Addr]*DatagramSock
	partitions   map[pairKey]bool
	oneWay       map[dirKey]bool
	prefixParts  map[prefixPair]bool
	prefixOneWay map[dirPrefix]bool
	down         map[Addr]bool
	downPrefixes map[string]bool
	latency      time.Duration
	jitter       time.Duration
	lossRate     float64
	closed       bool
}

// New creates a named network segment with a deterministic RNG seed for
// reproducible fault behaviour.
func New(name string, seed int64) *Network {
	return &Network{
		name:         name,
		rng:          rand.New(rand.NewSource(seed)),
		listeners:    make(map[Addr]*Listener),
		dgramSocks:   make(map[Addr]*DatagramSock),
		partitions:   make(map[pairKey]bool),
		oneWay:       make(map[dirKey]bool),
		prefixParts:  make(map[prefixPair]bool),
		prefixOneWay: make(map[dirPrefix]bool),
		down:         make(map[Addr]bool),
		downPrefixes: make(map[string]bool),
	}
}

// Name returns the segment name (e.g. "eth0").
func (n *Network) Name() string { return n.name }

// Stats exposes the fabric counters.
func (n *Network) Stats() *Stats { return &n.stats }

// PartitionCount reports how many partitions are currently in force —
// pairwise, one-way, and prefix-level alike (for the telemetry collectors).
func (n *Network) PartitionCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.partitions) + len(n.oneWay) + len(n.prefixParts) + len(n.prefixOneWay)
}

// SetLatency configures one-way delivery latency and uniform jitter.
func (n *Network) SetLatency(latency, jitter time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency, n.jitter = latency, jitter
}

// SetLoss configures the datagram loss rate in [0, 1]. Framed connections
// stay reliable (they model TCP); loss only affects datagrams.
func (n *Network) SetLoss(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	n.lossRate = rate
}

// Partition severs the link between two endpoints (both directions).
func (n *Network) Partition(a, b Addr) {
	n.mu.Lock()
	n.partitions[keyFor(a, b)] = true
	n.mu.Unlock()
	n.breakConns(func(c *Conn) bool {
		return keyFor(c.local, c.remote) == keyFor(a, b)
	})
}

// PartitionOneWay blocks traffic from one endpoint to another while the
// reverse direction stays up — the asymmetric failure (bad transceiver,
// asymmetric routing) that classic pairwise partitions cannot model. A
// one-way cut still breaks framed connections between the endpoints:
// TCP cannot survive a half-dead path, only datagrams flow one-way.
func (n *Network) PartitionOneWay(from, to Addr) {
	n.mu.Lock()
	n.oneWay[dirKey{from, to}] = true
	n.mu.Unlock()
	n.breakConns(func(c *Conn) bool {
		return keyFor(c.local, c.remote) == keyFor(from, to)
	})
}

// HealOneWay restores a one-way cut.
func (n *Network) HealOneWay(from, to Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.oneWay, dirKey{from, to})
}

// PartitionPrefix severs all traffic between endpoints under prefix a and
// endpoints under prefix b, both directions. Nodes name their endpoints
// "<node>:<service>", so PartitionPrefix("node1:", "node2:") partitions two
// whole machines without enumerating services.
func (n *Network) PartitionPrefix(a, b string) {
	n.mu.Lock()
	n.prefixParts[prefixKeyFor(a, b)] = true
	n.mu.Unlock()
	n.breakConns(func(c *Conn) bool {
		return (hasPrefix(c.local, a) && hasPrefix(c.remote, b)) ||
			(hasPrefix(c.local, b) && hasPrefix(c.remote, a))
	})
}

// PartitionPrefixOneWay blocks all traffic from endpoints under `from` to
// endpoints under `to`; the reverse direction stays up.
func (n *Network) PartitionPrefixOneWay(from, to string) {
	n.mu.Lock()
	n.prefixOneWay[dirPrefix{from, to}] = true
	n.mu.Unlock()
	n.breakConns(func(c *Conn) bool {
		return (hasPrefix(c.local, from) && hasPrefix(c.remote, to)) ||
			(hasPrefix(c.local, to) && hasPrefix(c.remote, from))
	})
}

// HealPrefix removes any prefix partition between a and b: the two-way
// cut and both one-way directions.
func (n *Network) HealPrefix(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.prefixParts, prefixKeyFor(a, b))
	delete(n.prefixOneWay, dirPrefix{a, b})
	delete(n.prefixOneWay, dirPrefix{b, a})
}

// Heal restores the link between two endpoints.
func (n *Network) Heal(a, b Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, keyFor(a, b))
}

// HealAll removes every partition: pairwise, one-way, and prefix-level.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions = make(map[pairKey]bool)
	n.oneWay = make(map[dirKey]bool)
	n.prefixParts = make(map[prefixPair]bool)
	n.prefixOneWay = make(map[dirPrefix]bool)
}

// FailEndpoint takes an endpoint off the network: existing conns break,
// datagrams to/from it vanish, new dials are refused, and any listener or
// datagram socket bound there is closed and unbound (as an OS closes a dead
// process's sockets). RestoreEndpoint permits rebinding.
func (n *Network) FailEndpoint(addr Addr) {
	n.mu.Lock()
	n.down[addr] = true
	lst := n.listeners[addr]
	sock := n.dgramSocks[addr]
	n.mu.Unlock()
	n.breakConns(func(c *Conn) bool { return c.local == addr || c.remote == addr })
	if lst != nil {
		_ = lst.Close()
	}
	if sock != nil {
		_ = sock.Close()
	}
}

// FailPrefix fails every endpoint whose address begins with prefix (also
// endpoints that have been *used* from that prefix without a binding, so a
// dead node's client-side endpoints stay down too). Nodes name their
// endpoints "<node>:<service>", so FailPrefix("node1:") models a
// whole-machine failure.
func (n *Network) FailPrefix(prefix string) {
	n.mu.Lock()
	var lsts []*Listener
	var socks []*DatagramSock
	for a, l := range n.listeners {
		if hasPrefix(a, prefix) {
			n.down[a] = true
			lsts = append(lsts, l)
		}
	}
	for a, s := range n.dgramSocks {
		if hasPrefix(a, prefix) {
			n.down[a] = true
			socks = append(socks, s)
		}
	}
	n.downPrefixes[prefix] = true
	n.mu.Unlock()
	n.breakConns(func(c *Conn) bool {
		return hasPrefix(c.local, prefix) || hasPrefix(c.remote, prefix)
	})
	for _, l := range lsts {
		_ = l.Close()
	}
	for _, s := range socks {
		_ = s.Close()
	}
}

// RestoreEndpoint brings a failed endpoint back.
func (n *Network) RestoreEndpoint(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.down, addr)
}

// RestorePrefix restores every endpoint with the given prefix.
func (n *Network) RestorePrefix(prefix string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.downPrefixes, prefix)
	for a := range n.down {
		if hasPrefix(a, prefix) {
			delete(n.down, a)
		}
	}
}

func hasPrefix(a Addr, prefix string) bool {
	return len(a) >= len(prefix) && string(a[:len(prefix)]) == prefix
}

func (n *Network) breakConns(match func(*Conn) bool) {
	n.mu.Lock()
	var victims []*Conn
	for _, l := range n.listeners {
		l.mu.Lock()
		for c := range l.conns {
			if match(c) {
				victims = append(victims, c)
			}
		}
		l.mu.Unlock()
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.breakBoth()
	}
}

// reachable reports whether a frame/datagram from src may reach dst now.
// Callers hold n.mu.
func (n *Network) reachableLocked(src, dst Addr) error {
	if n.down[src] || n.prefixDownLocked(src) {
		return ErrEndpointDown
	}
	if n.down[dst] || n.prefixDownLocked(dst) || n.partitions[keyFor(src, dst)] {
		return ErrUnreachable
	}
	if n.oneWay[dirKey{src, dst}] || n.prefixPartitionedLocked(src, dst) {
		return ErrUnreachable
	}
	return nil
}

// prefixPartitionedLocked reports whether a src→dst transmission crosses a
// prefix partition (two-way, or one-way in this direction).
func (n *Network) prefixPartitionedLocked(src, dst Addr) bool {
	for p := range n.prefixParts {
		if (hasPrefix(src, p.a) && hasPrefix(dst, p.b)) ||
			(hasPrefix(src, p.b) && hasPrefix(dst, p.a)) {
			return true
		}
	}
	for p := range n.prefixOneWay {
		if hasPrefix(src, p.from) && hasPrefix(dst, p.to) {
			return true
		}
	}
	return false
}

// prefixDownLocked reports whether addr falls under a failed node prefix
// (covers client-side endpoints that never bind).
func (n *Network) prefixDownLocked(addr Addr) bool {
	for p := range n.downPrefixes {
		if hasPrefix(addr, p) {
			return true
		}
	}
	return false
}

// delay returns the sampled one-way latency. Callers hold n.mu.
func (n *Network) delayLocked() time.Duration {
	d := n.latency
	if n.jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	return d
}

// dropDatagramLocked samples the loss process. Callers hold n.mu.
func (n *Network) dropDatagramLocked() bool {
	return n.lossRate > 0 && n.rng.Float64() < n.lossRate
}

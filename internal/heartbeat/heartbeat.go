// Package heartbeat implements OFTT's failure-detection primitive
// (Section 2.2.1): every monitored component periodically emits a heartbeat
// message; the OFTT engine considers a component failed when no message
// arrives within a pre-specified timeout and initiates a recovery provision.
//
// Emitters run on the monitored side (FTIMs, the peer engine); the Monitor
// runs inside the engine. Transport is pluggable: local components beat via
// direct function call, the peer engine via netsim datagrams.
package heartbeat

import (
	"sync"
	"time"

	"repro/internal/ndr"
	"repro/internal/telemetry"
)

// Instruments are the monitor's optional metrics; zero-value fields are
// nil-safe no-ops.
type Instruments struct {
	// Misses counts deadline expirations (each declared failure).
	Misses *telemetry.Counter
	// Gap observes the inter-beat gap per observed beat, in microseconds —
	// the jitter distribution of the heartbeat fabric.
	Gap *telemetry.Histogram
}

// Beat is one heartbeat message. The lease fields (Term, Vote, Cand) are
// zero for plain liveness beats; group engines running the lease/quorum
// election path piggyback their election state on the beat stream so the
// protocol needs no extra message kinds.
type Beat struct {
	Source string
	Seq    uint64
	Status string // free-form component status, relayed to the system monitor
	SentAt time.Time

	// Term is the sender's current lease term (election epoch).
	Term uint64
	// Vote is the node the sender granted its vote to this term ("" none).
	Vote string
	// Cand marks the sender as standing for election this term.
	Cand bool
	// Ckpt is the sender's checkpoint recency — the newest checkpoint
	// sequence its backup store has applied this reign. Voters use it to
	// refuse election candidates with staler state than their own.
	Ckpt uint64
}

// Encode serializes a beat for datagram transport.
func (b Beat) Encode() ([]byte, error) { return ndr.Marshal(b) }

// DecodeBeat parses a datagram payload.
func DecodeBeat(data []byte) (Beat, error) {
	var b Beat
	err := ndr.Unmarshal(data, &b)
	return b, err
}

// SendFunc delivers one encoded beat; failures are the sender's to absorb
// (heartbeats are fire-and-forget).
type SendFunc func(b Beat)

// Emitter periodically emits heartbeats for one source.
type Emitter struct {
	source   string
	interval time.Duration
	send     SendFunc

	mu     sync.Mutex
	status string
	seq    uint64
	paused bool

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewEmitter creates a stopped emitter; call Start to begin beating.
func NewEmitter(source string, interval time.Duration, send SendFunc) *Emitter {
	return &Emitter{
		source:   source,
		interval: interval,
		send:     send,
		status:   "OK",
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SetStatus updates the status string carried by subsequent beats.
func (e *Emitter) SetStatus(s string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.status = s
}

// Start launches the beat loop. It emits one beat immediately so monitors
// learn of the component without waiting a full interval.
func (e *Emitter) Start() {
	go func() {
		defer close(e.done)
		e.beat()
		t := time.NewTicker(e.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.beat()
			case <-e.stop:
				return
			}
		}
	}()
}

func (e *Emitter) beat() {
	e.mu.Lock()
	if e.paused {
		e.mu.Unlock()
		return
	}
	e.seq++
	b := Beat{Source: e.source, Seq: e.seq, Status: e.status, SentAt: time.Now()}
	e.mu.Unlock()
	e.send(b)
}

// Pause suppresses beats without stopping the loop — the monitored
// component looks hung to its monitor. Fault injection uses this to model
// a live-but-unresponsive process, the failure mode a crash cannot mimic.
func (e *Emitter) Pause() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.paused = true
}

// Resume re-enables beats after Pause.
func (e *Emitter) Resume() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.paused = false
}

// Stop halts the beat loop and waits for it to exit.
func (e *Emitter) Stop() {
	e.once.Do(func() { close(e.stop) })
	<-e.done
}

// FailureFunc is invoked (outside the monitor's lock) when a source's
// deadline passes.
type FailureFunc func(source string, lastSeen time.Time)

// watchEntry is one monitored source.
type watchEntry struct {
	timeout   time.Duration
	lastSeen  time.Time
	lastSeq   uint64
	lastStat  string
	failed    bool
	onFail    FailureFunc
	onRecover func(source string)
}

// Monitor tracks heartbeat deadlines for many sources. A source that
// misses its timeout is reported failed exactly once; a subsequent beat
// rearms it (and is reported as a recovery if a callback is installed).
type Monitor struct {
	checkEvery time.Duration

	mu      sync.Mutex
	entries map[string]*watchEntry
	paused  bool
	ins     Instruments

	onRecover func(source string)

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewMonitor creates a monitor that sweeps deadlines every checkEvery.
func NewMonitor(checkEvery time.Duration) *Monitor {
	return &Monitor{
		checkEvery: checkEvery,
		entries:    make(map[string]*watchEntry),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Instrument installs metric instruments. Call before Start; beats
// observed earlier are simply unrecorded.
func (m *Monitor) Instrument(ins Instruments) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ins = ins
}

// OnRecover installs a callback for sources that beat again after being
// declared failed.
func (m *Monitor) OnRecover(fn func(source string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onRecover = fn
}

// Watch registers a source with its timeout and failure callback. The
// deadline clock starts now.
func (m *Monitor) Watch(source string, timeout time.Duration, onFail FailureFunc) {
	m.WatchFull(source, timeout, onFail, nil)
}

// WatchFull is Watch with a per-source recovery callback, for monitors
// shared by many independent watchers (a fabric node transport watches one
// source per peer×group, and each group engine needs its own recovery
// signal — the monitor-wide OnRecover callback cannot be partitioned).
// Both the per-source callback and the monitor-wide one fire.
func (m *Monitor) WatchFull(source string, timeout time.Duration, onFail FailureFunc, onRecover func(source string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[source] = &watchEntry{
		timeout:   timeout,
		lastSeen:  time.Now(),
		onFail:    onFail,
		onRecover: onRecover,
	}
}

// Unwatch removes a source.
func (m *Monitor) Unwatch(source string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, source)
}

// Pause suspends failure detection (used during deliberate transitions such
// as a commanded switchover, so the engine does not race its own actions).
func (m *Monitor) Pause() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.paused = true
}

// Resume re-enables detection, resetting all deadlines so time spent paused
// does not count against the components.
func (m *Monitor) Resume() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.paused = false
	now := time.Now()
	for _, e := range m.entries {
		e.lastSeen = now
	}
}

// Observe records a heartbeat. Beats from unknown sources are ignored
// (they may be from a component registered on the peer).
func (m *Monitor) Observe(b Beat) {
	m.mu.Lock()
	e, ok := m.entries[b.Source]
	if !ok {
		m.mu.Unlock()
		return
	}
	wasFailed := e.failed
	m.ins.Gap.ObserveDuration(time.Since(e.lastSeen))
	// Out-of-order beats (possible over the datagram fabric) still count as
	// liveness evidence; sequence regressions are not failures.
	e.lastSeen = time.Now()
	e.lastSeq = b.Seq
	e.lastStat = b.Status
	e.failed = false
	onRecover := m.onRecover
	perSource := e.onRecover
	m.mu.Unlock()
	if wasFailed {
		if perSource != nil {
			perSource(b.Source)
		}
		if onRecover != nil {
			onRecover(b.Source)
		}
	}
}

// Rearm resets a source's deadline and failed latch without counting as a
// recovery — used after the engine restarts a component, so continued
// silence is detected as a fresh failure.
func (m *Monitor) Rearm(source string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[source]; ok {
		e.lastSeen = time.Now()
		e.failed = false
	}
}

// Start launches the deadline sweeper.
func (m *Monitor) Start() {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.checkEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.sweep()
			case <-m.stop:
				return
			}
		}
	}()
}

func (m *Monitor) sweep() {
	type firing struct {
		source   string
		lastSeen time.Time
		fn       FailureFunc
	}
	now := time.Now()
	var fires []firing
	m.mu.Lock()
	if m.paused {
		m.mu.Unlock()
		return
	}
	for source, e := range m.entries {
		if !e.failed && now.Sub(e.lastSeen) > e.timeout {
			e.failed = true
			m.ins.Misses.Inc()
			if e.onFail != nil {
				fires = append(fires, firing{source: source, lastSeen: e.lastSeen, fn: e.onFail})
			}
		}
	}
	m.mu.Unlock()
	for _, f := range fires {
		f.fn(f.source, f.lastSeen)
	}
}

// Stop halts the sweeper and waits for it to exit.
func (m *Monitor) Stop() {
	m.once.Do(func() { close(m.stop) })
	<-m.done
}

// Status is one source's last-known condition.
type Status struct {
	Source   string
	LastSeen time.Time
	LastSeq  uint64
	Status   string
	Failed   bool
}

// Snapshot reports every watched source (for the system monitor).
func (m *Monitor) Snapshot() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.entries))
	for source, e := range m.entries {
		out = append(out, Status{
			Source:   source,
			LastSeen: e.lastSeen,
			LastSeq:  e.lastSeq,
			Status:   e.lastStat,
			Failed:   e.failed,
		})
	}
	return out
}

// Failed reports whether a specific source is currently marked failed.
func (m *Monitor) Failed(source string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[source]
	return ok && e.failed
}

// Multiplexed heartbeats: the fabric's per-node-pair beat stream.
//
// A node hosting many group engines does not emit one beat stream per
// group. Instead each node pair carries exactly one datagram stream: every
// interval the sending node packs one GroupState entry per group the pair
// has in common into a single MuxBeat. Beat traffic therefore scales with
// the number of node pairs, not the number of groups — the property the
// fabric's scaling grid (BENCH_FABRIC.json) asserts.
package heartbeat

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"
)

// GroupState is one group's slot in a multiplexed node-pair beat: the
// member's liveness (Seq) tagged with its per-group role and lease
// election state.
type GroupState struct {
	// Group is the FT group ID this entry belongs to.
	Group string
	// Seq is the member's per-group beat sequence.
	Seq uint64
	// Role is the member's current role (engine.Role numeric value; kept
	// as an int so the wire format does not import the engine package).
	Role int32
	// Term is the member's current lease term.
	Term uint64
	// Vote is the node the member granted its vote to this term ("" none).
	Vote string
	// Cand marks the member as standing for election this term.
	Cand bool
	// Ckpt is the member's checkpoint recency (newest applied checkpoint
	// sequence this reign); see the vote-grant rule in the engine's lease
	// protocol.
	Ckpt uint64
}

// MuxBeat is one datagram on a node-pair beat stream.
type MuxBeat struct {
	// From is the sending node's machine name.
	From string
	// Seq is the pair-stream sequence (not any group's).
	Seq uint64
	// SentAt timestamps the datagram.
	SentAt time.Time
	// Entries carries one GroupState per group shared by the pair.
	Entries []GroupState
}

// The mux wire format is hand-rolled rather than ndr-reflected: a fabric
// node decodes hundreds of thousands of entries per second, and the
// reflection codec's per-entry allocations dominated whole-fabric CPU
// profiles at the thousand-group scale.
const (
	muxMagic   = 0xB7
	muxVersion = 1
)

// ErrBadMuxBeat reports a payload that is not a well-formed mux beat.
var ErrBadMuxBeat = errors.New("heartbeat: malformed mux beat")

func appendMuxString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// AppendMuxBeat serializes b onto buf and returns the extended slice.
// Callers on the beat path pass a reused buffer to keep the encode
// allocation-free.
func AppendMuxBeat(buf []byte, b *MuxBeat) []byte {
	buf = append(buf, muxMagic, muxVersion)
	buf = appendMuxString(buf, b.From)
	buf = binary.LittleEndian.AppendUint64(buf, b.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.SentAt.UnixNano()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Entries)))
	for i := range b.Entries {
		gs := &b.Entries[i]
		buf = appendMuxString(buf, gs.Group)
		buf = binary.LittleEndian.AppendUint64(buf, gs.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(gs.Role))
		buf = binary.LittleEndian.AppendUint64(buf, gs.Term)
		buf = appendMuxString(buf, gs.Vote)
		cand := byte(0)
		if gs.Cand {
			cand = 1
		}
		buf = append(buf, cand)
	}
	return buf
}

// Encode serializes a mux beat for datagram transport.
func (b MuxBeat) Encode() ([]byte, error) { return AppendMuxBeat(nil, &b), nil }

// MuxDecoder parses mux-beat payloads with reusable state: group IDs and
// node names are interned (a fabric sees a fixed population of each), and
// the entries slice is recycled between calls. Not safe for concurrent
// use; each receive loop owns one.
type MuxDecoder struct {
	intern  map[string]string
	entries []GroupState
}

// NewMuxDecoder creates an empty decoder.
func NewMuxDecoder() *MuxDecoder {
	return &MuxDecoder{intern: make(map[string]string)}
}

func (d *MuxDecoder) str(data []byte, off int) (string, int, bool) {
	if off+2 > len(data) {
		return "", 0, false
	}
	n := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if off+n > len(data) {
		return "", 0, false
	}
	raw := data[off : off+n]
	s, ok := d.intern[string(raw)] // string(raw) key lookup does not allocate
	if !ok {
		s = string(raw)
		d.intern[s] = s
	}
	return s, off + n, true
}

// Decode parses one payload. The returned beat's Entries slice is owned
// by the decoder and is only valid until the next Decode call.
func (d *MuxDecoder) Decode(data []byte) (MuxBeat, error) {
	var b MuxBeat
	if len(data) < 2 || data[0] != muxMagic || data[1] != muxVersion {
		return b, ErrBadMuxBeat
	}
	off := 2
	var ok bool
	if b.From, off, ok = d.str(data, off); !ok {
		return b, ErrBadMuxBeat
	}
	if off+20 > len(data) {
		return b, ErrBadMuxBeat
	}
	b.Seq = binary.LittleEndian.Uint64(data[off:])
	b.SentAt = time.Unix(0, int64(binary.LittleEndian.Uint64(data[off+8:])))
	count := int(binary.LittleEndian.Uint32(data[off+16:]))
	off += 20
	// Each entry occupies at least 25 bytes; reject counts the payload
	// cannot possibly hold before allocating for them.
	if count < 0 || count > (len(data)-off)/25+1 {
		return b, ErrBadMuxBeat
	}
	if cap(d.entries) < count {
		d.entries = make([]GroupState, count)
	}
	d.entries = d.entries[:count]
	for i := 0; i < count; i++ {
		gs := &d.entries[i]
		if gs.Group, off, ok = d.str(data, off); !ok {
			return b, ErrBadMuxBeat
		}
		if off+20 > len(data) {
			return b, ErrBadMuxBeat
		}
		gs.Seq = binary.LittleEndian.Uint64(data[off:])
		gs.Role = int32(binary.LittleEndian.Uint32(data[off+8:]))
		gs.Term = binary.LittleEndian.Uint64(data[off+12:])
		off += 20
		if gs.Vote, off, ok = d.str(data, off); !ok {
			return b, ErrBadMuxBeat
		}
		if off >= len(data) {
			return b, ErrBadMuxBeat
		}
		gs.Cand = data[off] == 1
		off++
	}
	b.Entries = d.entries
	return b, nil
}

// DecodeMuxBeat parses a datagram payload into a freshly allocated beat.
// Hot paths should hold a MuxDecoder instead.
func DecodeMuxBeat(data []byte) (MuxBeat, error) {
	b, err := NewMuxDecoder().Decode(data)
	if err != nil {
		return MuxBeat{}, err
	}
	b.Entries = append([]GroupState(nil), b.Entries...)
	return b, nil
}

// StateSource supplies one group's current entry each emitter tick; now is
// the tick's timestamp, shared by every source the beat pulls (the election
// clock reads it instead of calling time.Now per group). Returning ok=false
// omits the entry from that tick's beat — the member looks silent to the
// peer (paused/hung), without tearing the stream down.
type StateSource func(now time.Time) (GroupState, bool)

// MuxEmitter drives one node-pair beat stream: every interval it pulls
// every registered group's state and sends a single MuxBeat. The pull is
// also the fabric's election clock — group engines run their lease tick
// inside the StateSource callback, so thousands of members need no timer
// goroutines of their own.
type MuxEmitter struct {
	from     string
	interval time.Duration
	send     func(data []byte)

	mu      sync.Mutex
	sources map[string]StateSource // by group ID
	order   []string               // stable emission order
	seq     uint64

	// Scratch state reused across beats; touched only by the beat loop.
	srcScratch []StateSource
	entScratch []GroupState
	buf        []byte

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewMuxEmitter creates a stopped per-pair emitter; send delivers one
// encoded MuxBeat to the peer (fire-and-forget).
func NewMuxEmitter(from string, interval time.Duration, send func(data []byte)) *MuxEmitter {
	return &MuxEmitter{
		from:     from,
		interval: interval,
		send:     send,
		sources:  make(map[string]StateSource),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// AddSource registers (or replaces) a group's state source on this stream.
func (m *MuxEmitter) AddSource(group string, src StateSource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sources[group]; !ok {
		m.order = append(m.order, group)
	}
	m.sources[group] = src
}

// RemoveSource drops a group from the stream.
func (m *MuxEmitter) RemoveSource(group string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sources[group]; !ok {
		return
	}
	delete(m.sources, group)
	for i, g := range m.order {
		if g == group {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// SourceCount reports how many groups ride this stream.
func (m *MuxEmitter) SourceCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sources)
}

// Start launches the beat loop. Like Emitter, it beats once immediately.
func (m *MuxEmitter) Start() {
	go func() {
		defer close(m.done)
		m.beat()
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.beat()
			case <-m.stop:
				return
			}
		}
	}()
}

func (m *MuxEmitter) beat() {
	now := time.Now()
	m.mu.Lock()
	m.seq++
	seq := m.seq
	m.srcScratch = m.srcScratch[:0]
	for _, g := range m.order {
		m.srcScratch = append(m.srcScratch, m.sources[g])
	}
	srcs := m.srcScratch
	m.mu.Unlock()

	// Pull outside the lock: sources run election ticks and take engine
	// locks of their own.
	m.entScratch = m.entScratch[:0]
	for _, src := range srcs {
		if gs, ok := src(now); ok {
			m.entScratch = append(m.entScratch, gs)
		}
	}
	if len(m.entScratch) == 0 {
		return // nothing to say; the stream stays quiet, not chatty
	}
	b := MuxBeat{From: m.from, Seq: seq, SentAt: now, Entries: m.entScratch}
	// The scratch buffer is reused every beat; send must not retain it
	// (netsim copies the payload into the receiver's queue).
	m.buf = AppendMuxBeat(m.buf[:0], &b)
	m.send(m.buf)
}

// Stop halts the beat loop and waits for it to exit.
func (m *MuxEmitter) Stop() {
	m.once.Do(func() { close(m.stop) })
	<-m.done
}

package heartbeat

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMuxBeatRoundTrip(t *testing.T) {
	in := MuxBeat{
		From:   "node3",
		Seq:    42,
		SentAt: time.Unix(100, 200).UTC(),
		Entries: []GroupState{
			{Group: "g1", Seq: 7, Role: 2, Term: 3, Vote: "node1", Cand: false},
			{Group: "g2", Seq: 9, Role: 3, Term: 1, Vote: "", Cand: true},
		},
	}
	data, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMuxBeat(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.From != in.From || out.Seq != in.Seq || len(out.Entries) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i := range in.Entries {
		if out.Entries[i] != in.Entries[i] {
			t.Fatalf("entry %d mismatch: got %+v want %+v", i, out.Entries[i], in.Entries[i])
		}
	}
}

// TestMuxEmitterOneDatagramPerTick is the wire-format contract: however
// many groups register, each tick produces exactly one datagram carrying
// one entry per live group.
func TestMuxEmitterOneDatagramPerTick(t *testing.T) {
	var mu sync.Mutex
	var beats []MuxBeat
	em := NewMuxEmitter("nodeA", 5*time.Millisecond, func(data []byte) {
		b, err := DecodeMuxBeat(data)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		mu.Lock()
		beats = append(beats, b)
		mu.Unlock()
	})
	var paused atomic.Bool
	for _, g := range []string{"g1", "g2", "g3"} {
		g := g
		em.AddSource(g, func(time.Time) (GroupState, bool) {
			if g == "g3" && paused.Load() {
				return GroupState{}, false
			}
			return GroupState{Group: g, Seq: 1, Role: 3}, true
		})
	}
	em.Start()
	time.Sleep(25 * time.Millisecond)
	paused.Store(true)
	time.Sleep(25 * time.Millisecond)
	em.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(beats) < 4 {
		t.Fatalf("too few beats: %d", len(beats))
	}
	full, reduced := 0, 0
	var lastSeq uint64
	for _, b := range beats {
		if b.Seq <= lastSeq {
			t.Fatalf("stream seq not increasing: %d after %d", b.Seq, lastSeq)
		}
		lastSeq = b.Seq
		switch len(b.Entries) {
		case 3:
			full++
		case 2:
			reduced++
		default:
			t.Fatalf("unexpected entry count %d", len(b.Entries))
		}
	}
	if full == 0 || reduced == 0 {
		t.Fatalf("expected both full and reduced beats (got %d full, %d reduced)", full, reduced)
	}
}

// TestWatchFullPerSourceRecovery checks that the per-source recovery
// callback fires for its own source only.
func TestWatchFullPerSourceRecovery(t *testing.T) {
	m := NewMonitor(2 * time.Millisecond)
	var aFailed, aRecovered, bRecovered atomic.Int32
	m.WatchFull("a", 10*time.Millisecond,
		func(string, time.Time) { aFailed.Add(1) },
		func(string) { aRecovered.Add(1) })
	m.WatchFull("b", 10*time.Minute,
		func(string, time.Time) {},
		func(string) { bRecovered.Add(1) })
	m.Start()
	defer m.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for aFailed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if aFailed.Load() == 0 {
		t.Fatal("source a never declared failed")
	}
	m.Observe(Beat{Source: "a", Seq: 1})
	if aRecovered.Load() != 1 {
		t.Fatalf("a recoveries = %d, want 1", aRecovered.Load())
	}
	if bRecovered.Load() != 0 {
		t.Fatalf("b recovered without ever failing")
	}
}

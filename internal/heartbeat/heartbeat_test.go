package heartbeat

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestEmitterBeats(t *testing.T) {
	var mu sync.Mutex
	var beats []Beat
	e := NewEmitter("ftim:app", 10*time.Millisecond, func(b Beat) {
		mu.Lock()
		beats = append(beats, b)
		mu.Unlock()
	})
	e.Start()
	time.Sleep(60 * time.Millisecond)
	e.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(beats) < 3 {
		t.Fatalf("only %d beats in 60ms at 10ms interval", len(beats))
	}
	for i, b := range beats {
		if b.Source != "ftim:app" {
			t.Fatalf("beat %d source %q", i, b.Source)
		}
		if b.Seq != uint64(i+1) {
			t.Fatalf("beat %d seq %d", i, b.Seq)
		}
	}
}

func TestEmitterStatus(t *testing.T) {
	var last atomic.Value
	e := NewEmitter("x", 5*time.Millisecond, func(b Beat) { last.Store(b.Status) })
	e.SetStatus("DEGRADED")
	e.Start()
	time.Sleep(20 * time.Millisecond)
	e.Stop()
	if got := last.Load(); got != "DEGRADED" {
		t.Fatalf("status = %v", got)
	}
}

func TestMonitorDetectsSilence(t *testing.T) {
	m := NewMonitor(5 * time.Millisecond)
	failures := make(chan string, 1)
	m.Watch("app", 25*time.Millisecond, func(source string, _ time.Time) {
		failures <- source
	})
	m.Start()
	defer m.Stop()

	select {
	case got := <-failures:
		if got != "app" {
			t.Fatalf("failed source %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("silence not detected")
	}
	if !m.Failed("app") {
		t.Fatal("Failed() should report true")
	}
}

func TestMonitorBeatsPreventFailure(t *testing.T) {
	m := NewMonitor(5 * time.Millisecond)
	var failed atomic.Bool
	m.Watch("app", 30*time.Millisecond, func(string, time.Time) { failed.Store(true) })
	m.Start()
	defer m.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(0)
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				seq++
				m.Observe(Beat{Source: "app", Seq: seq, SentAt: time.Now()})
			case <-stop:
				return
			}
		}
	}()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failed.Load() {
		t.Fatal("healthy component declared failed")
	}
}

func TestMonitorFailureFiresOnce(t *testing.T) {
	m := NewMonitor(2 * time.Millisecond)
	var count atomic.Int32
	m.Watch("app", 10*time.Millisecond, func(string, time.Time) { count.Add(1) })
	m.Start()
	defer m.Stop()
	time.Sleep(80 * time.Millisecond)
	if got := count.Load(); got != 1 {
		t.Fatalf("failure fired %d times", got)
	}
}

func TestMonitorRecovery(t *testing.T) {
	m := NewMonitor(2 * time.Millisecond)
	failed := make(chan struct{}, 1)
	recovered := make(chan string, 1)
	m.OnRecover(func(s string) { recovered <- s })
	m.Watch("app", 10*time.Millisecond, func(string, time.Time) { failed <- struct{}{} })
	m.Start()
	defer m.Stop()

	<-failed
	m.Observe(Beat{Source: "app", Seq: 1, SentAt: time.Now()})
	select {
	case s := <-recovered:
		if s != "app" {
			t.Fatalf("recovered %q", s)
		}
	case <-time.After(time.Second):
		t.Fatal("recovery not reported")
	}
	if m.Failed("app") {
		t.Fatal("source still marked failed after recovery")
	}
}

func TestMonitorPauseResume(t *testing.T) {
	m := NewMonitor(2 * time.Millisecond)
	var count atomic.Int32
	m.Watch("app", 10*time.Millisecond, func(string, time.Time) { count.Add(1) })
	m.Pause()
	m.Start()
	defer m.Stop()
	time.Sleep(50 * time.Millisecond)
	if count.Load() != 0 {
		t.Fatal("failure detected while paused")
	}
	m.Resume()
	time.Sleep(50 * time.Millisecond)
	if count.Load() != 1 {
		t.Fatalf("failures after resume: %d", count.Load())
	}
}

func TestMonitorUnwatch(t *testing.T) {
	m := NewMonitor(2 * time.Millisecond)
	var count atomic.Int32
	m.Watch("app", 10*time.Millisecond, func(string, time.Time) { count.Add(1) })
	m.Unwatch("app")
	m.Start()
	defer m.Stop()
	time.Sleep(40 * time.Millisecond)
	if count.Load() != 0 {
		t.Fatal("unwatched source reported failed")
	}
}

func TestMonitorIgnoresUnknownSource(t *testing.T) {
	m := NewMonitor(5 * time.Millisecond)
	m.Observe(Beat{Source: "stranger", Seq: 1}) // must not panic or register
	if len(m.Snapshot()) != 0 {
		t.Fatal("unknown source leaked into snapshot")
	}
}

func TestBeatEncodeDecode(t *testing.T) {
	in := Beat{Source: "engine@node1", Seq: 42, Status: "PRIMARY", SentAt: time.Now().UTC()}
	data, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBeat(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != in.Source || out.Seq != in.Seq || out.Status != in.Status {
		t.Fatalf("got %+v", out)
	}
}

func TestHeartbeatOverDatagramFabric(t *testing.T) {
	n := netsim.New("eth0", 1)
	rx, err := n.ListenDatagram("engine2:hb")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := n.ListenDatagram("engine1:hb")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	e := NewEmitter("engine1", 5*time.Millisecond, func(b Beat) {
		data, err := b.Encode()
		if err != nil {
			return
		}
		_ = tx.Send("engine2:hb", data)
	})
	e.Start()
	defer e.Stop()

	m := NewMonitor(5 * time.Millisecond)
	failed := make(chan struct{}, 1)
	m.Watch("engine1", 30*time.Millisecond, func(string, time.Time) {
		select {
		case failed <- struct{}{}:
		default:
		}
	})
	m.Start()
	defer m.Stop()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			d, err := rx.RecvTimeout(200 * time.Millisecond)
			if err != nil {
				return
			}
			if b, err := DecodeBeat(d.Payload); err == nil {
				m.Observe(b)
			}
		}
	}()

	// Healthy: no failure within 100ms.
	select {
	case <-failed:
		t.Fatal("healthy peer declared failed")
	case <-time.After(100 * time.Millisecond):
	}

	// Kill the sender's endpoint: failure must be detected.
	n.FailEndpoint("engine1:hb")
	select {
	case <-failed:
	case <-time.After(time.Second):
		t.Fatal("dead peer not detected")
	}
	e.Stop()
	<-done
}

func TestSnapshot(t *testing.T) {
	m := NewMonitor(5 * time.Millisecond)
	m.Watch("a", time.Second, nil)
	m.Watch("b", time.Second, nil)
	m.Observe(Beat{Source: "a", Seq: 3, Status: "OK"})
	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	for _, s := range snap {
		if s.Source == "a" && (s.LastSeq != 3 || s.Status != "OK") {
			t.Fatalf("entry a: %+v", s)
		}
	}
}

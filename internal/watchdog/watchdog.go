// Package watchdog implements OFTT's reliable watchdog timer objects
// (Section 2.2.2): OFTTWatchdogCreate / Set / Reset / Delete. Applications
// use them to guard sections of work; an expiry means the application has
// hung or lost a deadline, and the engine treats it as a distress signal.
//
// "Reliable" means the timers live in the engine's address space, not the
// application's: an application crash cannot take its own watchdogs down
// with it, so the expiry still fires and recovery still happens.
package watchdog

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors.
var (
	// ErrUnknown is returned for operations on a nonexistent timer.
	ErrUnknown = errors.New("watchdog: unknown timer")

	// ErrExists is returned when creating a timer whose name is taken.
	ErrExists = errors.New("watchdog: timer already exists")

	// ErrNotArmed is returned when resetting a timer that was never Set.
	ErrNotArmed = errors.New("watchdog: timer not armed")
)

// ExpireFunc is invoked when a watchdog fires. It runs on its own
// goroutine; the table remains usable from inside it.
type ExpireFunc func(name string)

type entry struct {
	duration time.Duration
	timer    *time.Timer
	armed    bool
	expired  bool
	owner    string
}

// Table holds the watchdog timers of one engine.
type Table struct {
	mu      sync.Mutex
	entries map[string]*entry
	expires int
}

// NewTable returns an empty watchdog table.
func NewTable() *Table {
	return &Table{entries: make(map[string]*entry)}
}

// Create registers a named watchdog owned by a component. The timer starts
// disarmed; Set arms it. (OFTTWatchdogCreate)
func (t *Table) Create(name, owner string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.entries[name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	t.entries[name] = &entry{owner: owner}
	return nil
}

// Set arms (or re-arms) the watchdog to fire after d, calling onExpire if
// it is not Reset or Set again first. (OFTTWatchdogSet)
func (t *Table) Set(name string, d time.Duration, onExpire ExpireFunc) error {
	if d <= 0 {
		return fmt.Errorf("watchdog: non-positive duration for %q", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	if e.timer != nil {
		e.timer.Stop()
	}
	e.duration = d
	e.armed = true
	e.expired = false
	e.timer = time.AfterFunc(d, func() { t.fire(name, onExpire) })
	return nil
}

func (t *Table) fire(name string, onExpire ExpireFunc) {
	t.mu.Lock()
	e, ok := t.entries[name]
	if !ok || !e.armed || e.expired {
		t.mu.Unlock()
		return
	}
	e.expired = true
	e.armed = false
	t.expires++
	t.mu.Unlock()
	if onExpire != nil {
		onExpire(name)
	}
}

// Reset restarts an armed watchdog with its existing duration — the
// application "petting the dog". (OFTTWatchdogReset)
func (t *Table) Reset(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	if e.timer == nil || e.duration <= 0 {
		return fmt.Errorf("%w: %q", ErrNotArmed, name)
	}
	if e.expired {
		// An expired dog cannot be petted back to life; it must be Set.
		return fmt.Errorf("%w: %q has expired", ErrNotArmed, name)
	}
	e.timer.Reset(e.duration)
	return nil
}

// Delete removes a watchdog, disarming it. (OFTTWatchdogDelete)
func (t *Table) Delete(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	if e.timer != nil {
		e.timer.Stop()
	}
	delete(t.entries, name)
	return nil
}

// DeleteOwned removes every watchdog owned by a component (cleanup after
// an application restart).
func (t *Table) DeleteOwned(owner string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for name, e := range t.entries {
		if e.owner != owner {
			continue
		}
		if e.timer != nil {
			e.timer.Stop()
		}
		delete(t.entries, name)
		n++
	}
	return n
}

// Expired reports whether a timer has fired and not been re-Set.
func (t *Table) Expired(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[name]
	return ok && e.expired
}

// Len reports the number of live timers.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Expiries reports the total number of watchdog firings (for the monitor).
func (t *Table) Expiries() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.expires
}

// Close disarms every timer.
func (t *Table) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.timer != nil {
			e.timer.Stop()
		}
	}
	t.entries = make(map[string]*entry)
}

package watchdog

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestCreateSetExpire(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Create("scan", "app"); err != nil {
		t.Fatal(err)
	}
	fired := make(chan string, 1)
	if err := tbl.Set("scan", 20*time.Millisecond, func(name string) { fired <- name }); err != nil {
		t.Fatal(err)
	}
	select {
	case name := <-fired:
		if name != "scan" {
			t.Fatalf("fired %q", name)
		}
	case <-time.After(time.Second):
		t.Fatal("watchdog never fired")
	}
	if !tbl.Expired("scan") {
		t.Fatal("Expired() should be true")
	}
	if tbl.Expiries() != 1 {
		t.Fatalf("expiries = %d", tbl.Expiries())
	}
}

func TestResetPreventsExpiry(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Create("scan", "app")
	var fired atomic.Bool
	if err := tbl.Set("scan", 50*time.Millisecond, func(string) { fired.Store(true) }); err != nil {
		t.Fatal(err)
	}
	// Pet the dog faster than it can bite.
	for i := 0; i < 10; i++ {
		time.Sleep(15 * time.Millisecond)
		if err := tbl.Reset("scan"); err != nil {
			t.Fatal(err)
		}
	}
	if fired.Load() {
		t.Fatal("watchdog fired despite resets")
	}
	// Stop petting: it must fire.
	time.Sleep(120 * time.Millisecond)
	if !fired.Load() {
		t.Fatal("watchdog never fired after resets stopped")
	}
}

func TestDuplicateCreate(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Create("scan", "app")
	if err := tbl.Create("scan", "app"); !errors.Is(err, ErrExists) {
		t.Fatalf("got %v", err)
	}
}

func TestOperationsOnUnknown(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Set("nope", time.Second, nil); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Set: %v", err)
	}
	if err := tbl.Reset("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Reset: %v", err)
	}
	if err := tbl.Delete("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Delete: %v", err)
	}
}

func TestResetBeforeSet(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Create("scan", "app")
	if err := tbl.Reset("scan"); !errors.Is(err, ErrNotArmed) {
		t.Fatalf("got %v", err)
	}
}

func TestResetAfterExpiry(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Create("scan", "app")
	fired := make(chan struct{})
	_ = tbl.Set("scan", 5*time.Millisecond, func(string) { close(fired) })
	<-fired
	if err := tbl.Reset("scan"); !errors.Is(err, ErrNotArmed) {
		t.Fatalf("got %v", err)
	}
	// Re-Set revives it.
	refired := make(chan struct{})
	if err := tbl.Set("scan", 5*time.Millisecond, func(string) { close(refired) }); err != nil {
		t.Fatal(err)
	}
	<-refired
}

func TestDeleteDisarms(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Create("scan", "app")
	var fired atomic.Bool
	_ = tbl.Set("scan", 20*time.Millisecond, func(string) { fired.Store(true) })
	if err := tbl.Delete("scan"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if fired.Load() {
		t.Fatal("deleted watchdog fired")
	}
	if tbl.Len() != 0 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestSetRearmsAndReplacesDuration(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Create("scan", "app")
	var firstFired atomic.Bool
	_ = tbl.Set("scan", 10*time.Millisecond, func(string) { firstFired.Store(true) })
	// Immediately re-Set with a long duration: the first arm must not fire.
	var secondFired atomic.Bool
	_ = tbl.Set("scan", time.Minute, func(string) { secondFired.Store(true) })
	time.Sleep(50 * time.Millisecond)
	if firstFired.Load() || secondFired.Load() {
		t.Fatalf("fired: first=%v second=%v", firstFired.Load(), secondFired.Load())
	}
}

func TestSetRejectsNonPositive(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Create("scan", "app")
	if err := tbl.Set("scan", 0, nil); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestDeleteOwned(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Create("a1", "appA")
	_ = tbl.Create("a2", "appA")
	_ = tbl.Create("b1", "appB")
	if n := tbl.DeleteOwned("appA"); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestCloseDisarmsAll(t *testing.T) {
	tbl := NewTable()
	var fired atomic.Int32
	for _, name := range []string{"a", "b", "c"} {
		_ = tbl.Create(name, "app")
		_ = tbl.Set(name, 20*time.Millisecond, func(string) { fired.Add(1) })
	}
	tbl.Close()
	time.Sleep(60 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatalf("%d watchdogs fired after Close", fired.Load())
	}
}

package telemetry

import (
	"sync"
	"time"
)

// Sink is the single reporting surface every OFTT layer talks to. It
// replaces the old monitor trio (Stub / Remote / LocalSink-RemoteSink):
// statuses, events, recovery spans, and metric deltas all travel the same
// path, whether that path is a local Hub or a DCOM proxy to the
// test-and-interface node.
type Sink interface {
	// ReportStatus updates a component's dashboard row.
	ReportStatus(st Status)
	// Emit records a notable occurrence (failure, switchover, restart).
	Emit(e Event)
	// RecordSpan files one step of a recovery timeline.
	RecordSpan(ev SpanEvent)
	// PushMetrics merges a batch of metric deltas (remote nodes push
	// periodically; local callers normally record into a Registry
	// directly and never use this).
	PushMetrics(b MetricBatch)
}

// NullSink discards everything; fault tolerance must operate with the
// instrumentation plane absent.
type NullSink struct{}

func (NullSink) ReportStatus(Status)    {}
func (NullSink) Emit(Event)             {}
func (NullSink) RecordSpan(SpanEvent)   {}
func (NullSink) PushMetrics(MetricBatch) {}

// Hub is the local instrumentation plane: status/event store, metrics
// registry, and recovery tracer behind one Sink. A deployment owns one
// Hub; views (the monitor dashboard, the HTTP exposition) read from it.
type Hub struct {
	store  *Store
	reg    *Registry
	tracer *Tracer

	colMu      sync.Mutex
	collectors []func(*Registry)
}

// NewHub builds a hub retaining up to maxEvents events.
func NewHub(maxEvents int) *Hub {
	return &Hub{
		store:  NewStore(maxEvents),
		reg:    NewRegistry(),
		tracer: NewTracer(0),
	}
}

// Store exposes the status/event store.
func (h *Hub) Store() *Store { return h.store }

// Metrics exposes the registry for direct instrument resolution.
func (h *Hub) Metrics() *Registry { return h.reg }

// Tracer exposes the recovery tracer.
func (h *Hub) Tracer() *Tracer { return h.tracer }

// ReportStatus implements Sink.
func (h *Hub) ReportStatus(st Status) { h.store.Report(st) }

// Emit implements Sink.
func (h *Hub) Emit(e Event) { h.store.RecordEvent(e) }

// RecordSpan implements Sink. Events arriving unstamped (local callers)
// get the hub tracer's monotonic clock; pre-stamped events (already
// timestamped upstream) keep their time.
func (h *Hub) RecordSpan(ev SpanEvent) {
	if ev.AtUS == 0 {
		h.tracer.Record(ev)
	} else {
		h.tracer.RecordAt(ev)
	}
}

// PushMetrics implements Sink by merging the batch into the registry.
func (h *Hub) PushMetrics(b MetricBatch) { h.reg.Apply(b) }

// AddCollector registers a pull-style collector invoked before every
// snapshot/exposition — the hook used for subsystems (netsim, diverter)
// that keep their own atomic counters rather than recording per event.
func (h *Hub) AddCollector(fn func(*Registry)) {
	h.colMu.Lock()
	h.collectors = append(h.collectors, fn)
	h.colMu.Unlock()
}

// Collect runs all registered collectors.
func (h *Hub) Collect() {
	h.colMu.Lock()
	var fns []func(*Registry)
	fns = append(fns, h.collectors...)
	h.colMu.Unlock()
	for _, fn := range fns {
		fn(h.reg)
	}
}

// HubSnapshot is a frozen, JSON-serializable view of the whole plane.
type HubSnapshot struct {
	TakenAt  time.Time       `json:"taken_at"`
	Statuses []Status        `json:"statuses"`
	Events   []Event         `json:"events"`
	Metrics  MetricsSnapshot `json:"metrics"`
	Traces   []Trace         `json:"traces"`
}

// Snapshot collects and freezes everything the hub knows.
func (h *Hub) Snapshot() HubSnapshot {
	h.Collect()
	return HubSnapshot{
		TakenAt:  time.Now(),
		Statuses: h.store.Statuses(),
		Events:   h.store.Events(0),
		Metrics:  h.reg.Snapshot(),
		Traces:   h.tracer.Traces(),
	}
}

// MetricBatch is a set of metric deltas shipped from a remote node.
type MetricBatch struct {
	Node       string
	Counters   []CounterDelta
	Gauges     []GaugeValue
	Histograms []HistogramDelta
}

// CounterDelta is a counter increment since the last push.
type CounterDelta struct {
	Name  string
	Delta int64
}

// GaugeValue is a gauge's current value.
type GaugeValue struct {
	Name  string
	Value int64
}

// HistogramDelta is per-bucket increments since the last push.
type HistogramDelta struct {
	Name   string
	Bounds []int64
	Counts []int64 // len(Bounds)+1
	Sum    int64
	Count  int64
}

// Apply merges a delta batch into the registry. Histograms are created
// with the batch's bounds on first sight; a bucket-count mismatch against
// an existing histogram drops that entry rather than corrupting it.
func (r *Registry) Apply(b MetricBatch) {
	for _, c := range b.Counters {
		r.Counter(c.Name).Add(c.Delta)
	}
	for _, g := range b.Gauges {
		r.Gauge(g.Name).Set(g.Value)
	}
	for _, hd := range b.Histograms {
		h := r.Histogram(hd.Name, hd.Bounds...)
		if len(hd.Counts) != len(h.counts) {
			continue
		}
		for i, n := range hd.Counts {
			if n != 0 {
				h.counts[i].Add(n)
			}
		}
		h.sum.Add(hd.Sum)
		h.count.Add(hd.Count)
	}
}

// Caller is the slice of a DCOM proxy the remote sink needs; *dcom.Proxy
// satisfies it. Keeping the dependency inverted lets dcom itself be
// instrumented with this package without an import cycle.
type Caller interface {
	Call(method string, out []any, args ...any) error
}

// Remote forwards sink traffic over a Caller to a Stub on another node.
// A nil Remote is valid and discards everything, and errors are swallowed:
// per the paper, the fault tolerance provisions operate without the
// monitor node.
type Remote struct {
	caller Caller
}

// NewRemote wraps a proxy-shaped caller.
func NewRemote(c Caller) *Remote { return &Remote{caller: c} }

func (r *Remote) ok() bool { return r != nil && r.caller != nil }

// ReportStatus implements Sink.
func (r *Remote) ReportStatus(st Status) {
	if r.ok() {
		_ = r.caller.Call("ReportStatus", nil, st)
	}
}

// Emit implements Sink.
func (r *Remote) Emit(e Event) {
	if r.ok() {
		_ = r.caller.Call("Emit", nil, e)
	}
}

// RecordSpan implements Sink. The event is forwarded unstamped so the
// receiving hub's monotonic clock orders all nodes on one timeline.
func (r *Remote) RecordSpan(ev SpanEvent) {
	if r.ok() {
		_ = r.caller.Call("RecordSpan", nil, ev)
	}
}

// PushMetrics implements Sink.
func (r *Remote) PushMetrics(b MetricBatch) {
	if r.ok() {
		_ = r.caller.Call("PushMetrics", nil, b)
	}
}

// Stub services remote sink calls against a local hub; export it with
// exp.Export(oid, telemetry.NewStub(hub)).
type Stub struct {
	h *Hub
}

// NewStub wraps a hub for DCOM export.
func NewStub(h *Hub) *Stub { return &Stub{h: h} }

// ReportStatus services a remote status report.
func (s *Stub) ReportStatus(st Status) error { s.h.ReportStatus(st); return nil }

// Emit services a remote event report.
func (s *Stub) Emit(e Event) error { s.h.Emit(e); return nil }

// RecordSpan services a remote span report.
func (s *Stub) RecordSpan(ev SpanEvent) error { s.h.RecordSpan(ev); return nil }

// PushMetrics services a remote metric-delta push.
func (s *Stub) PushMetrics(b MetricBatch) error { s.h.PushMetrics(b); return nil }

// Pusher periodically ships a local registry's deltas to a Sink — the
// remote-node half of metric aggregation. Call Push on a timer or at
// checkpoints; each call sends only what changed since the previous one.
type Pusher struct {
	node string
	reg  *Registry
	sink Sink
	last MetricsSnapshot
}

// NewPusher builds a pusher for the given origin node name.
func NewPusher(node string, reg *Registry, sink Sink) *Pusher {
	return &Pusher{node: node, reg: reg, sink: sink}
}

// Push computes deltas since the last push and forwards them. Returns the
// batch for tests; an empty batch is not sent.
func (p *Pusher) Push() MetricBatch {
	cur := p.reg.Snapshot()
	b := MetricBatch{Node: p.node}
	for name, v := range cur.Counters {
		if d := v - p.last.Counters[name]; d != 0 {
			b.Counters = append(b.Counters, CounterDelta{Name: name, Delta: d})
		}
	}
	for name, v := range cur.Gauges {
		if prev, ok := p.last.Gauges[name]; !ok || prev != v {
			b.Gauges = append(b.Gauges, GaugeValue{Name: name, Value: v})
		}
	}
	for _, h := range cur.Histograms {
		prev, had := p.last.FindHistogram(h.Name)
		if had && prev.Count == h.Count {
			continue
		}
		hd := HistogramDelta{
			Name:   h.Name,
			Bounds: h.Bounds,
			Counts: append([]int64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
		if had && len(prev.Counts) == len(hd.Counts) {
			for i := range hd.Counts {
				hd.Counts[i] -= prev.Counts[i]
			}
			hd.Sum -= prev.Sum
			hd.Count -= prev.Count
		}
		b.Histograms = append(b.Histograms, hd)
	}
	p.last = cur
	if len(b.Counters)+len(b.Gauges)+len(b.Histograms) > 0 {
		p.sink.PushMetrics(b)
	}
	return b
}

package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves the hub over HTTP:
//
//	/metrics        Prometheus text exposition of the registry
//	/snapshot.json  full JSON snapshot (statuses, events, metrics, traces)
//	/statuses.json  component status table only
//	/traces.json    assembled recovery traces only
//	/healthz        liveness probe (200 "ok")
//
// The narrow JSON views exist for pollers like the black-box e2e harness,
// which scrape statuses or traces at a high rate and should not pay for
// (or parse) the full snapshot each time.
//
// Collectors run before each metrics/snapshot response so pull-style
// subsystems are fresh.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		h.Collect()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.reg.WriteProm(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, h.Snapshot())
	})
	mux.HandleFunc("/statuses.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, h.store.Statuses())
	})
	mux.HandleFunc("/traces.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, h.tracer.Traces())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

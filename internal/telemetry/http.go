package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves the hub over HTTP:
//
//	/metrics        Prometheus text exposition of the registry
//	/snapshot.json  full JSON snapshot (statuses, events, metrics, traces)
//
// Collectors run before each response so pull-style subsystems are fresh.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		h.Collect()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.reg.WriteProm(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Snapshot())
	})
	return mux
}

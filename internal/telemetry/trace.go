package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Phase names the steps of a recovery timeline. The tracer stitches span
// events carrying these phases into ordered traces: heartbeat-miss →
// detection → restart/switchover decision → rebind → first post-failover
// delivery.
type Phase string

// Recovery phases in canonical timeline order.
const (
	PhaseHeartbeatMiss Phase = "heartbeat-miss" // a watched source missed its deadline
	PhaseDetect        Phase = "detect"         // failure detector declared the source dead
	PhaseDecision      Phase = "decision"       // engine chose restart vs switchover vs give-up
	PhaseRestart       Phase = "restart"        // local restart of the failed component
	PhaseSwitchover    Phase = "switchover"     // backup promoted itself to primary
	PhaseRebind        Phase = "rebind"         // diverter route re-pointed at the new primary
	PhaseDeliver       Phase = "deliver"        // first post-failover message delivered
	PhaseRecovered     Phase = "recovered"      // component back in service (restart path)
)

// starter phases open a new trace when none is in flight; terminal phases
// complete the in-flight trace.
func (p Phase) starter() bool  { return p == PhaseHeartbeatMiss || p == PhaseDetect }
func (p Phase) terminal() bool { return p == PhaseDeliver || p == PhaseRecovered }

// SpanEvent is one timestamped step of a recovery timeline. AtUS is
// microseconds since the tracer's epoch, taken from Go's monotonic clock,
// so ordering and durations are immune to wall-clock steps.
type SpanEvent struct {
	Seq       uint64 `json:"seq"`
	AtUS      int64  `json:"at_us"`
	Node      string `json:"node"`
	Component string `json:"component"`
	Phase     Phase  `json:"phase"`
	Detail    string `json:"detail,omitempty"`
}

// Trace is one assembled recovery timeline.
type Trace struct {
	ID       uint64      `json:"id"`
	Events   []SpanEvent `json:"events"`
	Complete bool        `json:"complete"`
}

// Phases returns the trace's phase sequence in order.
func (t Trace) Phases() []Phase {
	ps := make([]Phase, len(t.Events))
	for i, e := range t.Events {
		ps[i] = e.Phase
	}
	return ps
}

// First returns the first event with the given phase.
func (t Trace) First(p Phase) (SpanEvent, bool) {
	for _, e := range t.Events {
		if e.Phase == p {
			return e, true
		}
	}
	return SpanEvent{}, false
}

// HasOrdered reports whether the given phases all occur in the trace in
// the given relative order (other phases may be interleaved).
func (t Trace) HasOrdered(phases ...Phase) bool {
	i := 0
	for _, e := range t.Events {
		if i < len(phases) && e.Phase == phases[i] {
			i++
		}
	}
	return i == len(phases)
}

// Duration is the span from first to last event.
func (t Trace) Duration() time.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return time.Duration(t.Events[len(t.Events)-1].AtUS-t.Events[0].AtUS) * time.Microsecond
}

// String renders a compact one-trace-per-block timeline for humans.
func (t Trace) String() string {
	var b strings.Builder
	state := "open"
	if t.Complete {
		state = "complete"
	}
	fmt.Fprintf(&b, "trace %d (%s, %v)\n", t.ID, state, t.Duration().Round(time.Microsecond))
	base := int64(0)
	if len(t.Events) > 0 {
		base = t.Events[0].AtUS
	}
	for _, e := range t.Events {
		fmt.Fprintf(&b, "  +%8dµs  %-14s %s/%s", e.AtUS-base, e.Phase, e.Node, e.Component)
		if e.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// maxTraceEvents caps one trace's length so a flapping component cannot
// grow a trace without bound.
const maxTraceEvents = 256

// Tracer assembles span events into recovery traces. One trace is open at
// a time: a starter phase (heartbeat-miss, detect) opens it, subsequent
// events append, and a terminal phase (deliver, recovered) completes it
// into a bounded ring of finished traces. Non-starter events with no open
// trace are dropped as orphans — steady-state deliveries do not fabricate
// timelines.
type Tracer struct {
	epoch time.Time

	mu        sync.Mutex
	seq       uint64
	nextID    uint64
	current   *Trace
	completed []Trace // ring, newest last
	maxKeep   int
	orphans   int64
}

// NewTracer returns a tracer keeping up to keep completed traces
// (default 64).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = 64
	}
	return &Tracer{epoch: time.Now(), maxKeep: keep}
}

// Now returns the tracer's current monotonic timestamp in microseconds.
func (tr *Tracer) Now() int64 {
	if tr == nil {
		return 0
	}
	return time.Since(tr.epoch).Microseconds()
}

// Record stamps and files a span event. Node/Component/Phase come from
// the caller; Seq and AtUS are assigned here. Nil-safe.
func (tr *Tracer) Record(ev SpanEvent) {
	if tr == nil {
		return
	}
	ev.AtUS = tr.Now()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.seq++
	ev.Seq = tr.seq
	tr.file(ev)
}

// RecordAt files an already-stamped span event (used by the remote sink so
// the origin node's timestamps survive the hop). Seq is reassigned
// locally to keep ordering well-defined.
func (tr *Tracer) RecordAt(ev SpanEvent) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.seq++
	ev.Seq = tr.seq
	tr.file(ev)
}

func (tr *Tracer) file(ev SpanEvent) {
	if tr.current == nil {
		if !ev.Phase.starter() {
			tr.orphans++
			return
		}
		tr.nextID++
		tr.current = &Trace{ID: tr.nextID}
	}
	if len(tr.current.Events) < maxTraceEvents {
		tr.current.Events = append(tr.current.Events, ev)
	}
	if ev.Phase.terminal() {
		tr.current.Complete = true
		tr.completed = append(tr.completed, *tr.current)
		if len(tr.completed) > tr.maxKeep {
			tr.completed = tr.completed[len(tr.completed)-tr.maxKeep:]
		}
		tr.current = nil
	}
}

// Traces returns completed traces, oldest first.
func (tr *Tracer) Traces() []Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Trace, len(tr.completed))
	for i, t := range tr.completed {
		out[i] = t
		out[i].Events = append([]SpanEvent(nil), t.Events...)
	}
	return out
}

// Last returns the most recently completed trace.
func (tr *Tracer) Last() (Trace, bool) {
	if tr == nil {
		return Trace{}, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.completed) == 0 {
		return Trace{}, false
	}
	t := tr.completed[len(tr.completed)-1]
	t.Events = append([]SpanEvent(nil), t.Events...)
	return t, true
}

// Current returns a copy of the in-flight trace, if any.
func (tr *Tracer) Current() (Trace, bool) {
	if tr == nil {
		return Trace{}, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.current == nil {
		return Trace{}, false
	}
	t := *tr.current
	t.Events = append([]SpanEvent(nil), tr.current.Events...)
	return t, true
}

// Orphans reports how many events arrived with no open trace.
func (tr *Tracer) Orphans() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.orphans
}

// Remote-sink tests live in an external test package because they bind
// the sink to the real DCOM transport; internal/telemetry itself imports
// only the standard library so dcom/netsim can in turn import it.
package telemetry_test

import (
	"testing"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

func dialSink(t *testing.T) (*telemetry.Hub, *telemetry.Remote, *dcom.Exporter, *dcom.Client) {
	t.Helper()
	n := netsim.New("eth0", 1)
	exp, err := dcom.NewExporter(n, "testpc:telemetry")
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(0)
	oid := com.NewGUID()
	if err := exp.Export(oid, telemetry.NewStub(hub)); err != nil {
		t.Fatal(err)
	}
	cli, err := dcom.Dial(n, "node1:telemetrycli", "testpc:telemetry")
	if err != nil {
		t.Fatal(err)
	}
	return hub, telemetry.NewRemote(cli.Object(oid)), exp, cli
}

func TestRemoteSinkOverDCOM(t *testing.T) {
	hub, remote, exp, cli := dialSink(t)
	defer exp.Close()
	defer cli.Close()

	var sink telemetry.Sink = remote
	sink.ReportStatus(telemetry.Status{Node: "node1", Component: "engine",
		Kind: telemetry.KindEngine, State: "PRIMARY"})
	sink.Emit(telemetry.Event{Node: "node1", Kind: "role", Detail: "became primary"})
	sink.RecordSpan(telemetry.SpanEvent{Node: "node1", Component: "engine", Phase: telemetry.PhaseDetect})
	sink.RecordSpan(telemetry.SpanEvent{Node: "node1", Component: "app", Phase: telemetry.PhaseDeliver})
	sink.PushMetrics(telemetry.MetricBatch{
		Node:     "node1",
		Counters: []telemetry.CounterDelta{{Name: "oftt_remote_total", Delta: 7}},
		Histograms: []telemetry.HistogramDelta{{
			Name: "oftt_remote_us", Bounds: []int64{10, 100},
			Counts: []int64{1, 2, 0}, Sum: 120, Count: 3,
		}},
	})

	if st, ok := hub.Store().Status("node1", "engine"); !ok || st.State != "PRIMARY" {
		t.Fatalf("remote status lost: %+v", st)
	}
	if evs := hub.Store().Events(0); len(evs) != 1 || evs[0].Detail != "became primary" {
		t.Fatalf("remote event lost: %+v", evs)
	}
	tc, ok := hub.Tracer().Last()
	if !ok || !tc.HasOrdered(telemetry.PhaseDetect, telemetry.PhaseDeliver) {
		t.Fatalf("remote spans lost: %+v", tc)
	}
	if got := hub.Metrics().Counter("oftt_remote_total").Value(); got != 7 {
		t.Fatalf("remote counter = %d", got)
	}
	hs, ok := hub.Metrics().Snapshot().FindHistogram("oftt_remote_us")
	if !ok || hs.Count != 3 || hs.Sum != 120 {
		t.Fatalf("remote histogram: %+v", hs)
	}
}

func TestRemoteSurvivesMonitorNodeDeath(t *testing.T) {
	_, remote, exp, cli := dialSink(t)
	defer cli.Close()
	exp.Close() // the monitor PC dies
	// Per the paper the fault tolerance provisions operate without the
	// monitor: reports must neither panic nor surface errors.
	remote.ReportStatus(telemetry.Status{Node: "node1", Component: "engine", State: "PRIMARY"})
	remote.Emit(telemetry.Event{Kind: "info"})
	remote.RecordSpan(telemetry.SpanEvent{Phase: telemetry.PhaseDetect})
	remote.PushMetrics(telemetry.MetricBatch{})
}

func TestNilRemoteIsSafe(t *testing.T) {
	var r *telemetry.Remote
	r.ReportStatus(telemetry.Status{})
	r.Emit(telemetry.Event{})
	r.RecordSpan(telemetry.SpanEvent{})
	r.PushMetrics(telemetry.MetricBatch{})
}

// Package telemetry is OFTT's instrumentation plane: a lock-cheap metrics
// registry (counters, gauges, fixed-bucket histograms with an atomic,
// allocation-free record path), a span/event tracer that stitches recovery
// timelines into queryable traces, and a status/event store that replaces
// the system monitor's three ad-hoc reporting paths with one Sink
// interface carried over the same local and DCOM transports.
//
// The paper's system monitor (Section 2.2.4) only displays component
// status; it cannot answer the questions the paper's own evaluation asks —
// detection latency, switchover duration, checkpoint overhead. This
// package is the first-class instrumentation plane that can.
//
// The package deliberately depends only on the standard library so every
// toolkit layer (heartbeat, diverter, checkpoint, dcom) may import it; the
// DCOM transport binds through the small Caller interface, which
// *dcom.Proxy satisfies.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are nil-safe
// so optional instrumentation needs no branching at call sites, and the
// record path is atomic and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric. Nil-safe, atomic, alloc-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (queue depths etc.).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper
// bounds in ascending order; an implicit +Inf bucket follows the last
// bound. Observe is atomic and allocation-free: one bucket increment plus
// sum/count updates, no boxing, no maps.
//
// Durations are recorded in microseconds (ObserveDuration); sizes in
// bytes.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~16) and the loop touches
	// one contiguous slice — cheaper in practice than branching binary
	// search at these sizes, and trivially allocation-free.
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count reports how many observations were recorded (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observed values (0 for nil) — with Count,
// enough for a mean without walking buckets.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Default bucket sets.
var (
	// DurationBuckets covers 50µs..1s in roughly 2.5x steps (values in µs).
	DurationBuckets = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000,
		25000, 50000, 100000, 250000, 500000, 1000000}

	// SizeBuckets covers 64B..1MiB in 4x steps (values in bytes).
	SizeBuckets = []int64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

	// DepthBuckets covers small queue depths / counts.
	DepthBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

// Registry holds named instruments. Lookup/creation takes a mutex and may
// allocate; callers are expected to resolve instruments once at setup and
// hold the returned pointers — recording through those pointers never
// touches the registry.
//
// Metric names may carry a Prometheus label set baked into the name, e.g.
// `oftt_checkpoint_capture_us{mode="full"}`; the text exposition splits it
// back out so `name_bucket{mode="full",le="..."}` lines render correctly.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (DurationBuckets when none are given).
// An existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Name   string  `json:"name"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1, last is +Inf
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Mean returns the average observed value (0 with no observations).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Max returns the upper bound of the highest non-empty bucket — a bucketed
// over-estimate of the true maximum (the +Inf bucket reports the last
// finite bound).
func (s HistogramSnapshot) Max() int64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		return s.Bounds[i]
	}
	return 0
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	lower := int64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			if i < len(s.Bounds) {
				lower = s.Bounds[i]
			}
			continue
		}
		upper := lower
		if i < len(s.Bounds) {
			upper = s.Bounds[i]
		} else if len(s.Bounds) > 0 {
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		frac := (rank - float64(prev)) / float64(c)
		return float64(lower) + frac*float64(upper-lower)
	}
	if len(s.Bounds) > 0 {
		return float64(s.Bounds[len(s.Bounds)-1])
	}
	return 0
}

// MetricsSnapshot is a frozen copy of every instrument in a registry.
type MetricsSnapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current values.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := MetricsSnapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.sum.Load(),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return snap.Histograms[i].Name < snap.Histograms[j].Name
	})
	return snap
}

// FindHistogram returns the named histogram's snapshot.
func (s MetricsSnapshot) FindHistogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// splitName separates a metric name from an optional baked-in label set:
// `foo{mode="full"}` -> ("foo", `mode="full"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

func promLine(w io.Writer, base, labels, suffix, extra string, v int64) {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all != "" {
		fmt.Fprintf(w, "%s%s{%s} %d\n", base, suffix, all, v)
	} else {
		fmt.Fprintf(w, "%s%s %d\n", base, suffix, v)
	}
}

// WriteProm renders the registry in the Prometheus text exposition format.
func (r *Registry) WriteProm(w io.Writer) {
	snap := r.Snapshot()
	snap.WriteProm(w)
}

// WriteProm renders a frozen snapshot in the Prometheus text format.
func (s MetricsSnapshot) WriteProm(w io.Writer) {
	writeScalarSection(w, "counter", s.Counters)
	writeScalarSection(w, "gauge", s.Gauges)

	seenType := make(map[string]bool)
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		if !seenType[base] {
			fmt.Fprintf(w, "# TYPE %s histogram\n", base)
			seenType[base] = true
		}
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			promLine(w, base, labels, "_bucket", fmt.Sprintf("le=%q", fmt.Sprint(b)), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		promLine(w, base, labels, "_bucket", `le="+Inf"`, cum)
		promLine(w, base, labels, "_sum", "", h.Sum)
		promLine(w, base, labels, "_count", "", h.Count)
	}
}

func writeScalarSection(w io.Writer, typ string, vals map[string]int64) {
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	seenType := make(map[string]bool)
	for _, name := range names {
		base, labels := splitName(name)
		if !seenType[base] {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
			seenType[base] = true
		}
		promLine(w, base, labels, "", "", vals[name])
	}
}

package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHubImplementsSink(t *testing.T) {
	h := NewHub(0)
	var s Sink = h
	s.ReportStatus(Status{Node: "node1", Component: "engine", Kind: KindEngine, State: "PRIMARY"})
	s.Emit(Event{Node: "node1", Kind: "role", Detail: "became primary"})
	s.RecordSpan(SpanEvent{Node: "node1", Component: "engine", Phase: PhaseDetect})
	s.RecordSpan(SpanEvent{Node: "node1", Component: "app", Phase: PhaseRecovered})
	s.PushMetrics(MetricBatch{Counters: []CounterDelta{{Name: "pushed_total", Delta: 2}}})

	if st, ok := h.Store().Status("node1", "engine"); !ok || st.State != "PRIMARY" {
		t.Fatalf("status lost: %+v", st)
	}
	if evs := h.Store().Events(0); len(evs) != 1 || evs[0].Kind != "role" {
		t.Fatalf("event lost: %+v", evs)
	}
	if tc, ok := h.Tracer().Last(); !ok || !tc.HasOrdered(PhaseDetect, PhaseRecovered) {
		t.Fatalf("spans lost: %+v", tc)
	}
	if h.Metrics().Counter("pushed_total").Value() != 2 {
		t.Fatal("metric batch lost")
	}

	s = NullSink{}
	s.ReportStatus(Status{})
	s.Emit(Event{})
	s.RecordSpan(SpanEvent{})
	s.PushMetrics(MetricBatch{})
}

func TestPusherSendsDeltasOnly(t *testing.T) {
	src := NewRegistry()
	hub := NewHub(0)
	p := NewPusher("node1", src, hub)

	src.Counter("c_total").Add(5)
	src.Gauge("g").Set(9)
	src.Histogram("h_us", 10, 100).Observe(50)
	b1 := p.Push()
	if len(b1.Counters) != 1 || b1.Counters[0].Delta != 5 {
		t.Fatalf("first push counters: %+v", b1)
	}
	if hub.Metrics().Counter("c_total").Value() != 5 {
		t.Fatal("push not applied")
	}

	// No changes → empty batch, nothing re-sent.
	b2 := p.Push()
	if len(b2.Counters)+len(b2.Gauges)+len(b2.Histograms) != 0 {
		t.Fatalf("idle push not empty: %+v", b2)
	}

	src.Counter("c_total").Add(3)
	src.Histogram("h_us").Observe(7)
	b3 := p.Push()
	if len(b3.Counters) != 1 || b3.Counters[0].Delta != 3 {
		t.Fatalf("delta push: %+v", b3)
	}
	if len(b3.Histograms) != 1 || b3.Histograms[0].Count != 1 || b3.Histograms[0].Sum != 7 {
		t.Fatalf("histogram delta: %+v", b3.Histograms)
	}
	if got := hub.Metrics().Counter("c_total").Value(); got != 8 {
		t.Fatalf("merged counter = %d", got)
	}
	hs, _ := hub.Metrics().Snapshot().FindHistogram("h_us")
	if hs.Count != 2 || hs.Sum != 57 {
		t.Fatalf("merged histogram: %+v", hs)
	}
}

func TestCollectors(t *testing.T) {
	h := NewHub(0)
	calls := 0
	h.AddCollector(func(r *Registry) {
		calls++
		r.Gauge("collected_gauge").Set(int64(calls))
	})
	snap := h.Snapshot()
	if calls != 1 || snap.Metrics.Gauges["collected_gauge"] != 1 {
		t.Fatalf("collector not run: calls=%d %+v", calls, snap.Metrics.Gauges)
	}
}

func TestHandlerServesPromAndJSON(t *testing.T) {
	h := NewHub(0)
	h.ReportStatus(Status{Node: "node1", Component: "engine", Kind: KindEngine, State: "PRIMARY"})
	h.Metrics().Counter("oftt_demo_total").Add(42)
	h.RecordSpan(SpanEvent{Node: "node1", Component: "engine", Phase: PhaseDetect})
	h.RecordSpan(SpanEvent{Node: "node1", Component: "app", Phase: PhaseDeliver})

	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if !strings.Contains(string(body), "oftt_demo_total 42") {
		t.Fatalf("prom exposition:\n%s", body)
	}

	res, err = srv.Client().Get(srv.URL + "/snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap HubSnapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Statuses) != 1 || snap.Statuses[0].State != "PRIMARY" {
		t.Fatalf("json statuses: %+v", snap.Statuses)
	}
	if snap.Metrics.Counters["oftt_demo_total"] != 42 {
		t.Fatalf("json metrics: %+v", snap.Metrics.Counters)
	}
	if len(snap.Traces) != 1 || !snap.Traces[0].Complete {
		t.Fatalf("json traces: %+v", snap.Traces)
	}
}

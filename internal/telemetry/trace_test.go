package telemetry

import (
	"strings"
	"testing"
)

func span(node, comp string, p Phase) SpanEvent {
	return SpanEvent{Node: node, Component: comp, Phase: p}
}

func TestTracerAssemblesSwitchoverTimeline(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(span("node2", "oftt-engine", PhaseHeartbeatMiss))
	tr.Record(span("node2", "oftt-engine", PhaseDetect))
	tr.Record(span("node2", "oftt-engine", PhaseDecision))
	tr.Record(span("node2", "oftt-engine", PhaseSwitchover))
	tr.Record(span("node2", "oftt-diverter", PhaseRebind))
	tr.Record(span("node2", "app", PhaseDeliver))

	if _, open := tr.Current(); open {
		t.Fatal("terminal phase must close the trace")
	}
	tc, ok := tr.Last()
	if !ok || !tc.Complete {
		t.Fatalf("no completed trace: %+v", tc)
	}
	if len(tc.Events) != 6 {
		t.Fatalf("events = %d", len(tc.Events))
	}
	if !tc.HasOrdered(PhaseDetect, PhaseDecision, PhaseSwitchover, PhaseRebind, PhaseDeliver) {
		t.Fatalf("phase order wrong: %v", tc.Phases())
	}
	// Monotonic stamps: strictly non-decreasing, seq strictly increasing.
	for i := 1; i < len(tc.Events); i++ {
		if tc.Events[i].AtUS < tc.Events[i-1].AtUS {
			t.Fatalf("timestamps regressed: %+v", tc.Events)
		}
		if tc.Events[i].Seq <= tc.Events[i-1].Seq {
			t.Fatalf("seq not increasing: %+v", tc.Events)
		}
	}
	if !strings.Contains(tc.String(), "switchover") {
		t.Fatalf("render: %s", tc)
	}
}

func TestOrphanEventsAreDropped(t *testing.T) {
	tr := NewTracer(0)
	// Steady-state deliveries with no failure in flight must not
	// fabricate a timeline.
	tr.Record(span("node1", "app", PhaseDeliver))
	tr.Record(span("node1", "oftt-diverter", PhaseRebind))
	if _, open := tr.Current(); open {
		t.Fatal("orphans opened a trace")
	}
	if len(tr.Traces()) != 0 {
		t.Fatal("orphans completed a trace")
	}
	if tr.Orphans() != 2 {
		t.Fatalf("orphans = %d", tr.Orphans())
	}
}

func TestRepeatedStarterAppends(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(span("node2", "oftt-engine", PhaseDetect))
	tr.Record(span("node2", "oftt-engine", PhaseDetect)) // second failure mid-recovery
	tr.Record(span("node2", "app", PhaseRecovered))
	traces := tr.Traces()
	if len(traces) != 1 || len(traces[0].Events) != 3 {
		t.Fatalf("want one 3-event trace, got %+v", traces)
	}
}

func TestCompletedRingIsBounded(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		tr.Record(span("n", "c", PhaseDetect))
		tr.Record(span("n", "c", PhaseRecovered))
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring size = %d", len(traces))
	}
	if traces[2].ID != 10 {
		t.Fatalf("newest trace ID = %d", traces[2].ID)
	}
}

func TestTraceEventCap(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(span("n", "c", PhaseDetect))
	for i := 0; i < maxTraceEvents*2; i++ {
		tr.Record(span("n", "c", PhaseRestart))
	}
	tr.Record(span("n", "c", PhaseRecovered))
	tc, ok := tr.Last()
	if !ok {
		t.Fatal("no trace")
	}
	if len(tc.Events) > maxTraceEvents {
		t.Fatalf("cap breached: %d events", len(tc.Events))
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(span("n", "c", PhaseDetect))
	if _, ok := tr.Last(); ok {
		t.Fatal("nil tracer returned a trace")
	}
	if tr.Now() != 0 || tr.Orphans() != 0 || tr.Traces() != nil {
		t.Fatal("nil tracer accessors")
	}
	if _, ok := tr.Current(); ok {
		t.Fatal("nil tracer current")
	}
}

package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Component kinds, carried in Status.Kind. These mirror the component
// classes the paper's system monitor displays (hardware, OS, OFTT
// components, applications).
const (
	KindHardware   = "hardware"
	KindOS         = "os"
	KindEngine     = "oftt-engine"
	KindFTIM       = "oftt-ftim"
	KindDiverter   = "oftt-diverter"
	KindOPCServer  = "opc-server"
	KindOPCClient  = "opc-client"
	KindApp        = "application"
	KindWatchdog   = "watchdog"
	KindCheckpoint = "checkpoint"
	KindChaos      = "chaos"
)

// Status is one component's reported condition.
type Status struct {
	Node      string
	Component string
	Kind      string
	State     string // e.g. "PRIMARY", "BACKUP", "RUNNING", "FAILED"
	Detail    string
	UpdatedAt time.Time
}

func (s Status) key() string { return s.Node + "/" + s.Component }

// Event is one notable occurrence (failure detected, switchover, restart).
type Event struct {
	Time      time.Time
	Node      string
	Component string
	Kind      string // "failure", "recovery", "switchover", "role", "info"
	Detail    string
}

// Store aggregates component statuses and an event ring. It is the
// storage half of the old system monitor; rendering lives in
// internal/monitor as a view over this store.
type Store struct {
	mu        sync.Mutex
	statuses  map[string]Status
	events    []Event // ring buffer of capacity maxEvents
	head      int     // index of the oldest retained event
	count     int
	maxEvents int
	subs      map[int]func(Event)
	nextSub   int
}

// NewStore returns an empty store retaining up to maxEvents events
// (default 1024).
func NewStore(maxEvents int) *Store {
	if maxEvents <= 0 {
		maxEvents = 1024
	}
	return &Store{
		statuses:  make(map[string]Status),
		maxEvents: maxEvents,
		subs:      make(map[int]func(Event)),
	}
}

// Report updates (or creates) a component's status row.
func (m *Store) Report(st Status) {
	if st.UpdatedAt.IsZero() {
		st.UpdatedAt = time.Now()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.statuses[st.key()] = st
}

// RecordEvent appends an event (overwriting the oldest once the ring is
// at capacity) and notifies subscribers. The ring never reallocates or
// shifts: the store's mutex is shared by every engine in a fabric, and a
// retention trim that copied the buffer convoyed them all behind it.
func (m *Store) RecordEvent(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	m.mu.Lock()
	if m.events == nil {
		m.events = make([]Event, m.maxEvents)
	}
	if m.count < m.maxEvents {
		m.events[(m.head+m.count)%m.maxEvents] = e
		m.count++
	} else {
		m.events[m.head] = e
		m.head = (m.head + 1) % m.maxEvents
	}
	subs := make([]func(Event), 0, len(m.subs))
	for _, fn := range m.subs {
		subs = append(subs, fn)
	}
	m.mu.Unlock()
	for _, fn := range subs {
		fn(e)
	}
}

// Subscribe registers a live event sink; the returned func cancels it.
func (m *Store) Subscribe(fn func(Event)) (cancel func()) {
	m.mu.Lock()
	id := m.nextSub
	m.nextSub++
	m.subs[id] = fn
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(m.subs, id)
	}
}

// Statuses returns all rows sorted by node then component.
func (m *Store) Statuses() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.statuses))
	for _, st := range m.statuses {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// Status fetches one row.
func (m *Store) Status(node, component string) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.statuses[node+"/"+component]
	return st, ok
}

// Events returns the most recent events, newest last, up to limit
// (0 = all retained).
func (m *Store) Events(limit int) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.count
	if limit > 0 && n > limit {
		n = limit
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = m.events[(m.head+m.count-n+i)%m.maxEvents]
	}
	return out
}

// CountByState counts rows currently in the given state.
func (m *Store) CountByState(state string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.statuses {
		if st.State == state {
			n++
		}
	}
	return n
}

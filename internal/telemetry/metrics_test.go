package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestInstrumentBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Fatal("counter not interned")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}

	h := r.Histogram("h_us", 10, 100, 1000)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000) // +Inf bucket
	h.ObserveDuration(200 * time.Microsecond)
	snap, ok := r.Snapshot().FindHistogram("h_us")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []int64{1, 1, 1, 1}
	for i, n := range want {
		if snap.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, snap.Counts[i], n, snap)
		}
	}
	if snap.Count != 4 || snap.Sum != 5+50+5000+200 {
		t.Fatalf("sum/count: %+v", snap)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

// TestRegistryConcurrency hammers creation, recording, Apply, and
// Snapshot from many goroutines; run under -race it is the registry's
// thread-safety proof required by the issue.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_us", DurationBuckets...)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 2000))
				if i%500 == 0 {
					// Concurrent get-or-create of fresh names.
					r.Counter("worker_total{w=\"" + string(rune('a'+w)) + "\"}").Inc()
					_ = r.Snapshot()
				}
				if i%700 == 0 {
					r.Apply(MetricBatch{
						Counters: []CounterDelta{{Name: "applied_total", Delta: 1}},
						Gauges:   []GaugeValue{{Name: "applied_gauge", Value: int64(i)}},
					})
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*iters {
		t.Fatalf("shared_total = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("shared_us").Count(); got != workers*iters {
		t.Fatalf("shared_us count = %d, want %d", got, workers*iters)
	}
}

// TestRecordPathZeroAllocs is the acceptance criterion: the metric record
// hot path (counter add, gauge set, histogram observe) must not allocate.
func TestRecordPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_us", DurationBuckets...)

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
			g.Set(int64(i))
			h.Observe(int64(i & 0xffff))
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("record hot path allocates: %d allocs/op", allocs)
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`oftt_engine_switchovers_total{node="node1"}`).Add(3)
	r.Counter(`oftt_engine_switchovers_total{node="node2"}`).Add(1)
	r.Gauge("oftt_diverter_queue_depth").Set(4)
	h := r.Histogram(`oftt_checkpoint_capture_us{mode="full"}`, 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE oftt_engine_switchovers_total counter",
		`oftt_engine_switchovers_total{node="node1"} 3`,
		`oftt_engine_switchovers_total{node="node2"} 1`,
		"# TYPE oftt_diverter_queue_depth gauge",
		"oftt_diverter_queue_depth 4",
		"# TYPE oftt_checkpoint_capture_us histogram",
		`oftt_checkpoint_capture_us_bucket{mode="full",le="10"} 1`,
		`oftt_checkpoint_capture_us_bucket{mode="full",le="100"} 2`,
		`oftt_checkpoint_capture_us_bucket{mode="full",le="+Inf"} 3`,
		`oftt_checkpoint_capture_us_sum{mode="full"} 555`,
		`oftt_checkpoint_capture_us_count{mode="full"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE header must appear once per base name even with two label sets.
	if strings.Count(out, "# TYPE oftt_engine_switchovers_total counter") != 1 {
		t.Errorf("duplicate TYPE header:\n%s", out)
	}
}

func TestHistogramSnapshotStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_us", 10, 20, 30, 40)
	for v := int64(1); v <= 40; v++ {
		h.Observe(v)
	}
	snap, _ := r.Snapshot().FindHistogram("q_us")
	if m := snap.Mean(); m != 20.5 {
		t.Fatalf("mean = %v", m)
	}
	if mx := snap.Max(); mx != 40 {
		t.Fatalf("max = %v", mx)
	}
	p50 := snap.Quantile(0.5)
	if p50 < 10 || p50 > 20 {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := snap.Quantile(0.99)
	if p99 < 30 || p99 > 40 {
		t.Fatalf("p99 = %v", p99)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_us", DurationBuckets...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xfffff))
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get performs one request against the hub handler and returns status
// code, content type, and body.
func get(t *testing.T, h *Hub, path string) (int, string, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, rec.Header().Get("Content-Type"), body
}

// TestHandlerEndpoints exercises the narrow JSON views the black-box e2e
// harness polls, plus the liveness probe and the full snapshot.
func TestHandlerEndpoints(t *testing.T) {
	h := NewHub(16)
	h.ReportStatus(Status{
		Node: "n1", Component: "oftt-engine", Kind: KindEngine,
		State: "PRIMARY", UpdatedAt: time.Now(),
	})
	// One complete recovery trace: detect opens, recovered closes.
	h.RecordSpan(SpanEvent{Node: "n1", Component: "app", Phase: PhaseDetect, Detail: "heartbeat timeout"})
	h.RecordSpan(SpanEvent{Node: "n1", Component: "app", Phase: PhaseRestart})
	h.RecordSpan(SpanEvent{Node: "n1", Component: "app", Phase: PhaseRecovered})

	code, ct, body := get(t, h, "/healthz")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") || string(body) != "ok\n" {
		t.Fatalf("/healthz: code=%d ct=%q body=%q", code, ct, body)
	}

	code, ct, body = get(t, h, "/statuses.json")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/statuses.json: code=%d ct=%q", code, ct)
	}
	var sts []Status
	if err := json.Unmarshal(body, &sts); err != nil {
		t.Fatalf("/statuses.json not a status list: %v\n%s", err, body)
	}
	if len(sts) != 1 || sts[0].State != "PRIMARY" {
		t.Fatalf("/statuses.json contents: %+v", sts)
	}

	code, ct, body = get(t, h, "/traces.json")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/traces.json: code=%d ct=%q", code, ct)
	}
	var trs []Trace
	if err := json.Unmarshal(body, &trs); err != nil {
		t.Fatalf("/traces.json not a trace list: %v\n%s", err, body)
	}
	if len(trs) != 1 || !trs[0].Complete || len(trs[0].Events) != 3 {
		t.Fatalf("/traces.json contents: %+v", trs)
	}
	if !trs[0].HasOrdered(PhaseDetect, PhaseRestart, PhaseRecovered) {
		t.Fatalf("trace phases out of order: %v", trs[0].Phases())
	}

	code, _, body = get(t, h, "/snapshot.json")
	if code != 200 {
		t.Fatalf("/snapshot.json: code=%d", code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot.json not an object: %v", err)
	}

	code, ct, body = get(t, h, "/metrics")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics: code=%d ct=%q body=%q", code, ct, body[:min(len(body), 80)])
	}
}

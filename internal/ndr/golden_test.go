package ndr

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"testing"
	"time"
)

// Golden wire-format fixtures. The hex strings below were produced by the
// original (pre-plan) reflective encoder and are frozen: any codec change
// that alters these bytes breaks wire compatibility between peers running
// different builds, which the checkpoint store-and-forward path and the
// DCOM frame layer both depend on. Never regenerate them to make a failing
// test pass — a mismatch means the encoder changed the format.

// The fixture types mirror the real frame shapes of the three consumers
// (dcom request/reply, checkpoint snapshot, heartbeat beat, diverter
// message) without importing them, which would create an import cycle.

type goldenGUID [16]byte

type goldenRequest struct {
	ID     uint64
	OID    goldenGUID
	Method string
	Args   [][]byte
}

type goldenReply struct {
	ID      uint64
	OK      bool
	Fault   string
	Err     string
	Results [][]byte
}

type goldenSnapshot struct {
	Seq     uint64
	Kind    string
	TakenAt time.Time
	Regions map[string][]byte
}

type goldenBeat struct {
	Source string
	Seq    uint64
	Status string
	SentAt time.Time
}

type goldenMessage struct {
	ID         string
	Dest       string
	Body       []byte
	EnqueuedAt time.Time
	Attempts   int
}

type goldenNested struct {
	Name   string
	Tags   []string
	Scores map[string]float64
	Sub    *goldenNested
	When   time.Time
	Gap    time.Duration
}

// goldenAt is a fixed instant (the DSN 2000 conference date) so time
// encodings are byte-stable.
var goldenAt = time.Date(2000, 6, 25, 12, 30, 0, 123456789, time.UTC)

// goldenValues enumerates one representative value per wire shape. Order
// is part of the fixture: index i pairs with goldenHex[i].
func goldenValues() []any {
	oid := goldenGUID{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	return []any{
		true,
		int64(-123456),
		uint64(987654321),
		float32(1.5),
		float64(-2.5e300),
		"operator console",
		[]byte{0, 1, 2, 253, 254, 255},
		[]byte(nil),
		[]string{"plc1", "plc2", ""},
		[3]int{7, 8, 9},
		map[string]int64{"a": 1, "b": -2, "c": 3},
		map[int32]string{-5: "west", 9: "east"},
		2500 * time.Millisecond,
		goldenAt,
		goldenRequest{
			ID:     42,
			OID:    oid,
			Method: "Read",
			Args:   [][]byte{{1, 2, 3}, {}, {0xff}},
		},
		goldenReply{
			ID:      42,
			OK:      true,
			Err:     "item not found",
			Results: [][]byte{{7, 8}},
		},
		goldenSnapshot{
			Seq:     9,
			Kind:    "incremental",
			TakenAt: goldenAt,
			Regions: map[string][]byte{"counters": {9, 9}, "state": {1, 2, 3, 4}},
		},
		goldenBeat{Source: "node1", Seq: 77, Status: "primary", SentAt: goldenAt},
		goldenMessage{
			ID:         "m17",
			Dest:       "calltrack",
			Body:       []byte("switch line 4"),
			EnqueuedAt: goldenAt,
			Attempts:   2,
		},
		goldenNested{
			Name:   "root",
			Tags:   []string{"opc", "ftim"},
			Scores: map[string]float64{"latency": 1.5, "rate": 250},
			Sub:    &goldenNested{Name: "leaf", When: goldenAt},
			When:   goldenAt,
			Gap:    40 * time.Millisecond,
		},
	}
}

// goldenDecodeTargets returns a fresh pointer target per golden value.
func goldenDecodeTargets() []any {
	return []any{
		new(bool), new(int64), new(uint64), new(float32), new(float64),
		new(string), new([]byte), new([]byte), new([]string), new([3]int),
		new(map[string]int64), new(map[int32]string), new(time.Duration),
		new(time.Time), new(goldenRequest), new(goldenReply),
		new(goldenSnapshot), new(goldenBeat), new(goldenMessage),
		new(goldenNested),
	}
}

// TestGoldenWireFormat locks the wire format: today's encoder must emit
// exactly the frozen bytes, and today's decoder must accept them.
func TestGoldenWireFormat(t *testing.T) {
	values := goldenValues()
	targets := goldenDecodeTargets()
	if len(goldenHex) != len(values) {
		t.Fatalf("fixture skew: %d hex frames, %d values (regenerate via TestGoldenGenerate)", len(goldenHex), len(values))
	}
	for i, v := range values {
		want, err := hex.DecodeString(goldenHex[i])
		if err != nil {
			t.Fatalf("golden %d: bad hex: %v", i, err)
		}
		got, err := Marshal(v)
		if err != nil {
			t.Fatalf("golden %d (%T): marshal: %v", i, v, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("golden %d (%T): wire format changed\n got %x\nwant %x", i, v, got, want)
		}
		if err := Unmarshal(want, targets[i]); err != nil {
			t.Errorf("golden %d (%T): frozen frame no longer decodes: %v", i, v, err)
		}
	}
}

// TestGoldenGenerate prints the fixture table; run with -run TestGoldenGenerate
// -v -args after a deliberate format change (there should never be one).
func TestGoldenGenerate(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("generator: run with -v to print")
	}
	for _, v := range goldenValues() {
		b, err := Marshal(v)
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		fmt.Printf("\t\"%x\",\n", b)
	}
}

var goldenHex = []string{
	"0201",
	"03ff880f",
	"04b1d1f9d603",
	"050000c03f",
	"06039300aa4bdd4dfe",
	"07106f70657261746f7220636f6e736f6c65",
	"0806000102fdfeff",
	"0800",
	"09030704706c63310704706c63320700",
	"0a03030e03100312",
	"0b03070161030207016203030701630306",
	"0b0203090704776573740312070465617374",
	"0f80e497d012",
	"0e0f010000000eb0e7f248075bcd15ffff",
	"0c04042a0a1004de0104ad0104be0104ef01040104020403040404050406040704080409040a040b040c0704526561640903080301020308000801ff",
	"0c05042a02010700070e6974656d206e6f7420666f756e64090108020708",
	"0c040409070b696e6372656d656e74616c0e0f010000000eb0e7f248075bcd15ffff0b020708636f756e746572730802090907057374617465080401020304",
	"0c0407056e6f646531044d07077072696d6172790e0f010000000eb0e7f248075bcd15ffff",
	"0c0507036d3137070963616c6c747261636b080d737769746368206c696e6520340e0f010000000eb0e7f248075bcd15ffff0304",
	"0c060704726f6f74090207036f706307046674696d0b0207076c6174656e637906000000000000f83f070472617465060000000000406f400d010c0607046c65616609000b000d000e0f010000000eb0e7f248075bcd15ffff0f000e0f010000000eb0e7f248075bcd15ffff0f80e89226",
}

package ndr

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, in, out any) {
	t.Helper()
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("marshal %#v: %v", in, err)
	}
	if err := Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal %#v: %v", in, err)
	}
}

func TestScalars(t *testing.T) {
	tests := []struct {
		name string
		in   any
		out  func() any
	}{
		{"bool true", true, func() any { return new(bool) }},
		{"bool false", false, func() any { return new(bool) }},
		{"int", int(-42), func() any { return new(int) }},
		{"int8", int8(-8), func() any { return new(int8) }},
		{"int16", int16(-1600), func() any { return new(int16) }},
		{"int32", int32(-320000), func() any { return new(int32) }},
		{"int64", int64(math.MinInt64), func() any { return new(int64) }},
		{"uint", uint(42), func() any { return new(uint) }},
		{"uint8", uint8(255), func() any { return new(uint8) }},
		{"uint64", uint64(math.MaxUint64), func() any { return new(uint64) }},
		{"float32", float32(3.25), func() any { return new(float32) }},
		{"float64", float64(-2.5e300), func() any { return new(float64) }},
		{"string", "hello, 世界", func() any { return new(string) }},
		{"empty string", "", func() any { return new(string) }},
		{"duration", 1500 * time.Millisecond, func() any { return new(time.Duration) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := tt.out()
			roundTrip(t, tt.in, out)
			got := reflect.ValueOf(out).Elem().Interface()
			if !reflect.DeepEqual(got, tt.in) {
				t.Errorf("got %#v, want %#v", got, tt.in)
			}
		})
	}
}

func TestFloatNaN(t *testing.T) {
	var out float64
	roundTrip(t, math.NaN(), &out)
	if !math.IsNaN(out) {
		t.Errorf("got %v, want NaN", out)
	}
}

func TestTime(t *testing.T) {
	in := time.Date(2000, 6, 25, 12, 30, 0, 123456789, time.UTC) // DSN 2000
	var out time.Time
	roundTrip(t, in, &out)
	if !out.Equal(in) {
		t.Errorf("got %v, want %v", out, in)
	}
}

func TestBytes(t *testing.T) {
	in := []byte{0, 1, 2, 254, 255}
	var out []byte
	roundTrip(t, in, &out)
	if !bytes.Equal(in, out) {
		t.Errorf("got %v, want %v", out, in)
	}
}

func TestNilByteSlice(t *testing.T) {
	var in []byte
	out := []byte{9}
	roundTrip(t, in, &out)
	if len(out) != 0 {
		t.Errorf("got %v, want empty", out)
	}
}

func TestSlices(t *testing.T) {
	in := []string{"alpha", "beta", ""}
	var out []string
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("got %v, want %v", out, in)
	}
}

func TestArray(t *testing.T) {
	in := [3]int{7, 8, 9}
	var out [3]int
	roundTrip(t, in, &out)
	if out != in {
		t.Errorf("got %v, want %v", out, in)
	}
}

func TestArrayLengthMismatch(t *testing.T) {
	data, err := Marshal([2]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var out [3]int
	if err := Unmarshal(data, &out); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestMap(t *testing.T) {
	in := map[string]int{"lines": 5, "callers": 10}
	var out map[string]int
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("got %v, want %v", out, in)
	}
}

func TestMapDeterminism(t *testing.T) {
	in := map[string]int{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}
	first, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatal("map encoding is not deterministic")
		}
	}
}

type inner struct {
	Name  string
	Count int
}

type outer struct {
	ID       uint32
	Inner    inner
	Pointer  *inner
	Tags     []string
	Scores   map[string]float64
	When     time.Time
	Interval time.Duration
	skipped  int // unexported: must be ignored
	Excluded int `ndr:"-"`
}

func TestStructRoundTrip(t *testing.T) {
	in := outer{
		ID:       7,
		Inner:    inner{Name: "primary", Count: 3},
		Pointer:  &inner{Name: "backup", Count: 4},
		Tags:     []string{"opc", "ftim"},
		Scores:   map[string]float64{"latency": 1.5},
		When:     time.Unix(961934400, 0).UTC(),
		Interval: 250 * time.Millisecond,
		skipped:  99,
		Excluded: 42,
	}
	var out outer
	roundTrip(t, in, &out)
	if out.skipped != 0 {
		t.Error("unexported field should not round-trip")
	}
	if out.Excluded != 0 {
		t.Error("ndr:\"-\" field should not round-trip")
	}
	in.skipped, in.Excluded = 0, 0
	if !reflect.DeepEqual(in, out) {
		t.Errorf("got %+v, want %+v", out, in)
	}
}

func TestNilPointer(t *testing.T) {
	var in *inner
	out := &inner{Name: "dirty"}
	roundTrip(t, in, &out)
	if out != nil {
		t.Errorf("got %+v, want nil", out)
	}
}

type payloadA struct{ X int }
type payloadB struct{ Y string }

func TestInterfaceRegistry(t *testing.T) {
	MustRegister("test.payloadA", payloadA{})
	MustRegister("test.payloadB", payloadB{})

	type envelope struct{ Body any }
	in := envelope{Body: payloadA{X: 12}}
	var out envelope
	roundTrip(t, in, &out)
	got, ok := out.Body.(payloadA)
	if !ok || got.X != 12 {
		t.Errorf("got %#v, want payloadA{12}", out.Body)
	}

	in = envelope{Body: payloadB{Y: "hb"}}
	out = envelope{}
	roundTrip(t, in, &out)
	if got, ok := out.Body.(payloadB); !ok || got.Y != "hb" {
		t.Errorf("got %#v, want payloadB{hb}", out.Body)
	}
}

func TestUnregisteredInterfaceFails(t *testing.T) {
	type envelope struct{ Body any }
	type unregistered struct{ Z int }
	_, err := Marshal(envelope{Body: unregistered{1}})
	if err == nil {
		t.Fatal("expected error for unregistered interface payload")
	}
}

func TestRegisterConflict(t *testing.T) {
	if err := Register("test.conflict", payloadA{}); err != nil {
		t.Fatal(err)
	}
	if err := Register("test.conflict", payloadB{}); err == nil {
		t.Fatal("expected conflict error")
	}
	// Re-registering the same type under the same name is fine.
	if err := Register("test.conflict", payloadA{}); err != nil {
		t.Fatalf("idempotent re-register: %v", err)
	}
}

func TestDecodeIntoWrongType(t *testing.T) {
	data, err := Marshal("not a number")
	if err != nil {
		t.Fatal(err)
	}
	var out int
	if err := Unmarshal(data, &out); err == nil {
		t.Fatal("expected type mismatch")
	}
}

func TestDecodeTargetMustBePointer(t *testing.T) {
	data, _ := Marshal(1)
	var out int
	if err := Unmarshal(data, out); err == nil {
		t.Fatal("expected non-pointer target error")
	}
}

func TestTruncatedInput(t *testing.T) {
	data, err := Marshal(outer{Tags: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		var out outer
		if err := Unmarshal(data[:cut], &out); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(data))
		}
	}
}

func TestIntOverflowDetected(t *testing.T) {
	data, err := Marshal(int64(1 << 40))
	if err != nil {
		t.Fatal(err)
	}
	var out int8
	if err := Unmarshal(data, &out); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestDepthLimit(t *testing.T) {
	type node struct{ Next *node }
	root := &node{}
	cur := root
	for i := 0; i < maxDepth+4; i++ {
		cur.Next = &node{}
		cur = cur.Next
	}
	if _, err := Marshal(root); err == nil {
		t.Fatal("expected depth limit error")
	}
}

// Property: every (int64, uint64, string, []byte, map) round-trips.
func TestQuickScalarRoundTrip(t *testing.T) {
	f := func(i int64, u uint64, s string, b []byte, f64 float64) bool {
		type all struct {
			I int64
			U uint64
			S string
			B []byte
			F float64
		}
		in := all{i, u, s, b, f64}
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		var out all
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		if in.B == nil {
			in.B = []byte{}
		}
		if out.B == nil {
			out.B = []byte{}
		}
		if math.IsNaN(in.F) {
			return math.IsNaN(out.F)
		}
		return in.I == out.I && in.U == out.U && in.S == out.S &&
			bytes.Equal(in.B, out.B) && in.F == out.F
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: map[string]int64 round-trips exactly.
func TestQuickMapRoundTrip(t *testing.T) {
	f := func(m map[string]int64) bool {
		data, err := Marshal(m)
		if err != nil {
			return false
		}
		var out map[string]int64
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		if len(m) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(m, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is deterministic (byte-stable) for identical values.
func TestQuickDeterminism(t *testing.T) {
	f := func(m map[int32]string, s []float64) bool {
		type v struct {
			M map[int32]string
			S []float64
		}
		a, err := Marshal(v{m, s})
		if err != nil {
			return false
		}
		b, err := Marshal(v{m, s})
		if err != nil {
			return false
		}
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncoderDecoderStreaming(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	for i := 0; i < 10; i++ {
		if err := e.Encode(i * i); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDecoder(&buf)
	for i := 0; i < 10; i++ {
		var out int
		if err := d.Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out != i*i {
			t.Fatalf("stream value %d: got %d, want %d", i, out, i*i)
		}
	}
}

func BenchmarkMarshalStruct(b *testing.B) {
	in := outer{
		ID:      7,
		Inner:   inner{Name: "primary", Count: 3},
		Pointer: &inner{Name: "backup", Count: 4},
		Tags:    []string{"opc", "ftim", "engine", "diverter"},
		Scores:  map[string]float64{"latency": 1.5, "throughput": 2.5},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalStruct(b *testing.B) {
	in := outer{
		ID:     7,
		Inner:  inner{Name: "primary", Count: 3},
		Tags:   []string{"opc", "ftim"},
		Scores: map[string]float64{"latency": 1.5},
	}
	data, err := Marshal(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out outer
		if err := Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: decoding arbitrary bytes into common targets never panics —
// it either succeeds or returns an error. (Corrupt RPC frames from a
// failing peer must not crash the engine.)
func TestQuickDecodeGarbageNeverPanics(t *testing.T) {
	targets := []func() any{
		func() any { return new(int64) },
		func() any { return new(string) },
		func() any { return new([]byte) },
		func() any { return new(map[string]int64) },
		func() any { return new(outer) },
		func() any { return new([]outer) },
		func() any { return new(time.Time) },
	}
	f := func(data []byte, pick uint8) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked on %v: %v", data, r)
			}
		}()
		out := targets[int(pick)%len(targets)]()
		_ = Unmarshal(data, out) // error or success; never panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a valid encoding with one byte flipped either fails to decode
// or decodes without panic (bit-rot tolerance of the wire layer).
func TestQuickBitFlipTolerance(t *testing.T) {
	base := outer{
		ID:     12,
		Inner:  inner{Name: "primary", Count: 9},
		Tags:   []string{"a", "b"},
		Scores: map[string]float64{"x": 1},
	}
	data, err := Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, bit uint8) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("bit flip panicked: %v", r)
			}
		}()
		cp := make([]byte, len(data))
		copy(cp, data)
		cp[int(pos)%len(cp)] ^= 1 << (bit % 8)
		var out outer
		_ = Unmarshal(cp, &out)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

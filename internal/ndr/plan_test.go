package ndr

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Distinct struct types so each goroutine group races on first-touch
// compilation of a type no other test has warmed.

type planRaceA struct {
	X int64
	Y string
	Z []byte
}

type planRaceB struct {
	M map[string]int64
	A planRaceA
	P *planRaceB
}

type planRaceC struct {
	When time.Time
	Gap  time.Duration
	Grid [4][4]float64
}

type planRaceD struct {
	Names []string
	Sub   []planRaceA
}

// TestConcurrentPlanCompilation hammers first-use plan compilation from
// many goroutines at once: the sync.Map + placeholder scheme must produce
// one coherent plan per type with no torn state. Run under -race (the
// Makefile's race target does) for the real assertion.
func TestConcurrentPlanCompilation(t *testing.T) {
	values := []any{
		planRaceA{X: -5, Y: "ops", Z: []byte{1, 2}},
		planRaceB{M: map[string]int64{"a": 1, "b": 2}, A: planRaceA{X: 9}, P: &planRaceB{}},
		planRaceC{When: time.Unix(961936200, 0).UTC(), Gap: time.Second, Grid: [4][4]float64{{1.5}}},
		planRaceD{Names: []string{"n1", "n2"}, Sub: []planRaceA{{Y: "s"}}},
	}
	// Reference encodings from the single-threaded path first.
	want := make([][]byte, len(values))
	for i, v := range values {
		b, err := refMarshal(v)
		if err != nil {
			t.Fatalf("ref marshal %T: %v", v, err)
		}
		want[i] = b
	}

	const goroutines = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		errs  = make(chan error, goroutines)
	)
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			start.Wait()
			for i, v := range values {
				b, err := Marshal(v)
				if err != nil {
					errs <- fmt.Errorf("g%d: marshal %T: %v", g, v, err)
					return
				}
				if !bytes.Equal(b, want[i]) {
					errs <- fmt.Errorf("g%d: %T encoding diverged under contention", g, v)
					return
				}
				fresh := newLike(i)
				if err := Unmarshal(b, fresh); err != nil {
					errs <- fmt.Errorf("g%d: unmarshal %T: %v", g, v, err)
					return
				}
			}
		}(g)
	}
	start.Done() // release everyone at once to maximize first-compile races
	done.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func newLike(i int) any {
	switch i {
	case 0:
		return new(planRaceA)
	case 1:
		return new(planRaceB)
	case 2:
		return new(planRaceC)
	default:
		return new(planRaceD)
	}
}

// TestMarshalToAppends checks the appending contract: MarshalTo extends
// dst in place and the suffix equals a standalone Marshal.
func TestMarshalToAppends(t *testing.T) {
	v := planRaceA{X: 7, Y: "tail", Z: []byte{9}}
	solo, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("hdr:")
	out, err := MarshalTo(append([]byte(nil), prefix...), v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("MarshalTo clobbered the prefix: %x", out)
	}
	if !bytes.Equal(out[len(prefix):], solo) {
		t.Fatalf("MarshalTo suffix != Marshal:\n got %x\nwant %x", out[len(prefix):], solo)
	}
}

// TestMarshalDerefMatchesMarshal checks the deref variants are
// wire-identical to Marshal of the dereferenced value (NOT of the pointer,
// which would add a tagPtr wrapper).
func TestMarshalDerefMatchesMarshal(t *testing.T) {
	v := planRaceB{M: map[string]int64{"k": 42}, A: planRaceA{Y: "deref"}}
	direct, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	viaDeref, err := MarshalDeref(&v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, viaDeref) {
		t.Fatalf("MarshalDeref != Marshal:\n got %x\nwant %x", viaDeref, direct)
	}
	viaTo, err := MarshalToDeref(nil, &v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, viaTo) {
		t.Fatalf("MarshalToDeref != Marshal:\n got %x\nwant %x", viaTo, direct)
	}
	if _, err := MarshalDeref(nil); err == nil {
		t.Fatal("MarshalDeref(nil) should fail")
	}
	var nilPtr *planRaceA
	if _, err := MarshalDeref(nilPtr); err == nil {
		t.Fatal("MarshalDeref(typed nil) should fail")
	}
}

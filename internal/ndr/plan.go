package ndr

// Codec plans: per-type encode/decode programs compiled on first use and
// cached forever. Compilation resolves everything that is knowable from the
// reflect.Type alone — exported field lists, element/key/value sub-plans,
// map key comparators, scalar fast paths — so steady-state dispatch is a
// chain of closure calls over a flat byte buffer with no per-value kind
// switching. The emitted bytes are exactly those of the original reflective
// codec (see reflect_ref_test.go and golden_test.go); only the cost model
// changed.
//
// Recursive types are handled the way encoding/json handles them: the
// cache is seeded with a placeholder that blocks callers until the real
// plan is published, which also makes concurrent first-touch compilation
// safe (exercised under -race by TestConcurrentPlanCompilation).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"sync"
	"time"
)

var errVarintOverflow = errors.New("ndr: varint overflows a 64-bit integer")

// ---------------------------------------------------------------------------
// Encode side
// ---------------------------------------------------------------------------

// encState is the append-only output buffer a compiled plan writes into.
type encState struct {
	b []byte
}

func (e *encState) byte1(c byte) { e.b = append(e.b, c) }

func (e *encState) uvarint(x uint64) { e.b = binary.AppendUvarint(e.b, x) }

func (e *encState) varint(x int64) { e.b = binary.AppendVarint(e.b, x) }

func (e *encState) lenBytes(p []byte) error {
	if len(p) > maxByteLen {
		return fmt.Errorf("ndr: byte payload too large: %d", len(p))
	}
	e.uvarint(uint64(len(p)))
	e.b = append(e.b, p...)
	return nil
}

// lenString writes length + string bytes directly, without the throwaway
// []byte(s) copy the reflective encoder paid per string.
func (e *encState) lenString(s string) error {
	if len(s) > maxByteLen {
		return fmt.Errorf("ndr: byte payload too large: %d", len(s))
	}
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
	return nil
}

func (e *encState) encodeRoot(v any) error {
	if v == nil {
		e.byte1(tagNil)
		return nil
	}
	rv := reflect.ValueOf(v)
	return encPlanFor(rv.Type())(e, rv, 0)
}

type encFunc func(e *encState, v reflect.Value, depth int) error

var encPlans sync.Map // reflect.Type -> encFunc

// encPlanFor returns the compiled encode plan for t, compiling on first use.
func encPlanFor(t reflect.Type) encFunc {
	if fi, ok := encPlans.Load(t); ok {
		return fi.(encFunc)
	}
	// Publish a placeholder that blocks until compilation finishes: it
	// breaks recursive type cycles and lets concurrent first-touch callers
	// proceed the moment the real plan lands.
	var (
		wg sync.WaitGroup
		f  encFunc
	)
	wg.Add(1)
	fi, loaded := encPlans.LoadOrStore(t, encFunc(func(e *encState, v reflect.Value, depth int) error {
		wg.Wait()
		return f(e, v, depth)
	}))
	if loaded {
		return fi.(encFunc)
	}
	f = compileEnc(t)
	wg.Done()
	encPlans.Store(t, f)
	return f
}

func compileEnc(t reflect.Type) encFunc {
	switch t {
	case timeType:
		return encTime
	case durationType:
		return encDuration
	}
	switch t.Kind() {
	case reflect.Bool:
		return encBool
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return encInt
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return encUint
	case reflect.Float32:
		return encFloat32
	case reflect.Float64:
		return encFloat64
	case reflect.String:
		return encString
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return encBytes
		}
		return compileEncSeq(t, tagSlice)
	case reflect.Array:
		return compileEncSeq(t, tagArray)
	case reflect.Map:
		return compileEncMap(t)
	case reflect.Struct:
		return compileEncStruct(t)
	case reflect.Ptr:
		return compileEncPtr(t)
	case reflect.Interface:
		return encIface
	default:
		kind := t.Kind()
		return func(*encState, reflect.Value, int) error {
			return fmt.Errorf("ndr: unsupported kind %v", kind)
		}
	}
}

func encTime(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	e.byte1(tagTime)
	tv, ok := v.Interface().(time.Time)
	if !ok {
		return ErrTypeMismatch
	}
	b, err := tv.MarshalBinary()
	if err != nil {
		return fmt.Errorf("ndr: marshal time: %w", err)
	}
	return e.lenBytes(b)
}

func encDuration(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	e.byte1(tagDuration)
	e.varint(v.Int())
	return nil
}

func encBool(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	if v.Bool() {
		e.b = append(e.b, tagBool, 1)
	} else {
		e.b = append(e.b, tagBool, 0)
	}
	return nil
}

func encInt(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	e.byte1(tagInt)
	e.varint(v.Int())
	return nil
}

func encUint(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	e.byte1(tagUint)
	e.uvarint(v.Uint())
	return nil
}

func encFloat32(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	e.byte1(tagFloat32)
	e.b = binary.LittleEndian.AppendUint32(e.b, math.Float32bits(float32(v.Float())))
	return nil
}

func encFloat64(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	e.byte1(tagFloat64)
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v.Float()))
	return nil
}

func encString(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	e.byte1(tagString)
	return e.lenString(v.String())
}

func encBytes(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	e.byte1(tagBytes)
	if v.IsNil() {
		e.uvarint(0)
		return nil
	}
	return e.lenBytes(v.Bytes())
}

func compileEncSeq(t reflect.Type, tag byte) encFunc {
	elem := encPlanFor(t.Elem())
	return func(e *encState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		e.byte1(tag)
		n := v.Len()
		if n > maxElems {
			return fmt.Errorf("ndr: sequence too large: %d", n)
		}
		e.uvarint(uint64(n))
		for i := 0; i < n; i++ {
			if err := elem(e, v.Index(i), depth+1); err != nil {
				return err
			}
		}
		return nil
	}
}

func compileEncMap(t reflect.Type) encFunc {
	keyPlan := encPlanFor(t.Key())
	valPlan := encPlanFor(t.Elem())
	less := keyLess(t.Key().Kind())
	return func(e *encState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		e.byte1(tagMap)
		n := v.Len()
		if n > maxElems {
			return fmt.Errorf("ndr: map too large: %d", n)
		}
		e.uvarint(uint64(n))
		// Deterministic key order so encodings are byte-stable, which the
		// checkpoint layer relies on for cheap dirty detection.
		keys := v.MapKeys()
		if len(keys) > 1 {
			sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
		}
		for _, k := range keys {
			if err := keyPlan(e, k, depth+1); err != nil {
				return err
			}
			if err := valPlan(e, v.MapIndex(k), depth+1); err != nil {
				return err
			}
		}
		return nil
	}
}

// keyLess resolves the map key comparator once per map type.
func keyLess(k reflect.Kind) func(a, b reflect.Value) bool {
	switch k {
	case reflect.String:
		return func(a, b reflect.Value) bool { return a.String() < b.String() }
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return func(a, b reflect.Value) bool { return a.Int() < b.Int() }
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return func(a, b reflect.Value) bool { return a.Uint() < b.Uint() }
	case reflect.Float32, reflect.Float64:
		return func(a, b reflect.Value) bool { return a.Float() < b.Float() }
	default:
		// Fall back to formatting; slower but still deterministic.
		return func(a, b reflect.Value) bool {
			return fmt.Sprint(a.Interface()) < fmt.Sprint(b.Interface())
		}
	}
}

type encField struct {
	index int
	name  string // "Type.Field" for error context
	fn    encFunc
}

func compileEncStruct(t reflect.Type) encFunc {
	idxs := exportedFields(t)
	fields := make([]encField, len(idxs))
	for i, fi := range idxs {
		f := t.Field(fi)
		fields[i] = encField{index: fi, name: t.Name() + "." + f.Name, fn: encPlanFor(f.Type)}
	}
	count := uint64(len(fields))
	return func(e *encState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		e.byte1(tagStruct)
		e.uvarint(count)
		for i := range fields {
			f := &fields[i]
			if err := f.fn(e, v.Field(f.index), depth+1); err != nil {
				return fmt.Errorf("ndr: field %s: %w", f.name, err)
			}
		}
		return nil
	}
}

func compileEncPtr(t reflect.Type) encFunc {
	elem := encPlanFor(t.Elem())
	return func(e *encState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		e.byte1(tagPtr)
		if v.IsNil() {
			e.byte1(0)
			return nil
		}
		e.byte1(1)
		return elem(e, v.Elem(), depth+1)
	}
}

func encIface(e *encState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	if v.IsNil() {
		e.byte1(tagNil)
		return nil
	}
	elem := v.Elem()
	registry.RLock()
	name, ok := registry.byType[elem.Type()]
	registry.RUnlock()
	if !ok {
		return fmt.Errorf("ndr: unregistered interface payload %v", elem.Type())
	}
	e.byte1(tagIface)
	if err := e.lenString(name); err != nil {
		return err
	}
	return encPlanFor(elem.Type())(e, elem, depth+1)
}

// ---------------------------------------------------------------------------
// Decode side
// ---------------------------------------------------------------------------

// decState is the input cursor a compiled plan reads from. When b is set
// (r == nil) reads are bulk slice operations; otherwise it degrades to the
// byte-at-a-time io.ByteReader contract for streaming decoders.
type decState struct {
	r      io.ByteReader // streaming source; nil when draining b
	b      []byte
	i      int
	shared bool // alias []byte payloads into b instead of copying (UnmarshalShared)
}

func (d *decState) readByte() (byte, error) {
	if d.r != nil {
		return d.r.ReadByte()
	}
	if d.i >= len(d.b) {
		return 0, io.ErrUnexpectedEOF
	}
	c := d.b[d.i]
	d.i++
	return c, nil
}

func (d *decState) readTag() (byte, error) {
	tag, err := d.readByte()
	if err != nil {
		return 0, fmt.Errorf("ndr: read tag: %w", err)
	}
	return tag, nil
}

func (d *decState) readUvarint() (uint64, error) {
	if d.r != nil {
		return binary.ReadUvarint(d.r)
	}
	x, n := binary.Uvarint(d.b[d.i:])
	switch {
	case n > 0:
		d.i += n
		return x, nil
	case n == 0:
		d.i = len(d.b)
		return 0, io.ErrUnexpectedEOF
	default: // overflow; -n bytes were consumed
		d.i += -n
		return 0, errVarintOverflow
	}
}

func (d *decState) readVarint() (int64, error) {
	if d.r != nil {
		return binary.ReadVarint(d.r)
	}
	x, n := binary.Varint(d.b[d.i:])
	switch {
	case n > 0:
		d.i += n
		return x, nil
	case n == 0:
		d.i = len(d.b)
		return 0, io.ErrUnexpectedEOF
	default:
		d.i += -n
		return 0, errVarintOverflow
	}
}

func (d *decState) readFull(p []byte) error {
	if d.r == nil {
		if len(d.b)-d.i < len(p) {
			d.i = len(d.b)
			return io.ErrUnexpectedEOF
		}
		copy(p, d.b[d.i:])
		d.i += len(p)
		return nil
	}
	for i := range p {
		c, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		p[i] = c
	}
	return nil
}

func (d *decState) readLen() (int, error) {
	n, err := d.readUvarint()
	if err != nil {
		return 0, err
	}
	if n > maxByteLen {
		return 0, fmt.Errorf("ndr: byte payload too large: %d", n)
	}
	return int(n), nil
}

func (d *decState) readLenBytes() ([]byte, error) {
	n, err := d.readLen()
	if err != nil {
		return nil, err
	}
	if d.r == nil {
		// Bounds-check before allocating so a corrupt length on a short
		// frame cannot force a giant allocation.
		if len(d.b)-d.i < n {
			d.i = len(d.b)
			return nil, io.ErrUnexpectedEOF
		}
		if d.shared {
			// Zero-copy: subslice the source frame. Only reachable via
			// UnmarshalShared, whose callers own the frame's lifetime.
			p := d.b[d.i : d.i+n : d.i+n]
			d.i += n
			return p, nil
		}
		p := make([]byte, n)
		copy(p, d.b[d.i:])
		d.i += n
		return p, nil
	}
	p := make([]byte, n)
	if err := d.readFull(p); err != nil {
		return nil, err
	}
	return p, nil
}

func (d *decState) readString() (string, error) {
	n, err := d.readLen()
	if err != nil {
		return "", err
	}
	if d.r == nil {
		if len(d.b)-d.i < n {
			d.i = len(d.b)
			return "", io.ErrUnexpectedEOF
		}
		s := string(d.b[d.i : d.i+n])
		d.i += n
		return s, nil
	}
	p := make([]byte, n)
	if err := d.readFull(p); err != nil {
		return "", err
	}
	return string(p), nil
}

func (d *decState) readCount() (int, error) {
	n, err := d.readUvarint()
	if err != nil {
		return 0, err
	}
	if n > maxElems {
		return 0, fmt.Errorf("ndr: element count too large: %d", n)
	}
	return int(n), nil
}

func mismatch(wire string, v reflect.Value) error {
	return fmt.Errorf("%w: wire %s, destination %v", ErrTypeMismatch, wire, v.Type())
}

type decFunc func(d *decState, v reflect.Value, depth int) error

var decPlans sync.Map // reflect.Type -> decFunc

// decPlanFor returns the compiled decode plan for t, compiling on first use.
func decPlanFor(t reflect.Type) decFunc {
	if fi, ok := decPlans.Load(t); ok {
		return fi.(decFunc)
	}
	var (
		wg sync.WaitGroup
		f  decFunc
	)
	wg.Add(1)
	fi, loaded := decPlans.LoadOrStore(t, decFunc(func(d *decState, v reflect.Value, depth int) error {
		wg.Wait()
		return f(d, v, depth)
	}))
	if loaded {
		return fi.(decFunc)
	}
	f = compileDec(t)
	wg.Done()
	decPlans.Store(t, f)
	return f
}

func compileDec(t reflect.Type) decFunc {
	if t == timeType {
		return decTime
	}
	switch t.Kind() {
	case reflect.Bool:
		return decBool
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return compileDecInt(t)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return decUint
	case reflect.Float32, reflect.Float64:
		return decFloat
	case reflect.String:
		return decString
	case reflect.Slice:
		return compileDecSlice(t)
	case reflect.Array:
		return compileDecArray(t)
	case reflect.Map:
		return compileDecMap(t)
	case reflect.Struct:
		return compileDecStruct(t)
	case reflect.Ptr:
		return compileDecPtr(t)
	case reflect.Interface:
		return decIface
	default:
		return decUnsupported
	}
}

func decBool(d *decState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	tag, err := d.readTag()
	if err != nil {
		return err
	}
	switch tag {
	case tagNil:
		v.SetZero()
		return nil
	case tagBool:
		b, err := d.readByte()
		if err != nil {
			return err
		}
		v.SetBool(b != 0)
		return nil
	default:
		return d.skipMismatch(tag, v, depth)
	}
}

func compileDecInt(t reflect.Type) decFunc {
	// tagDuration historically decodes into any int64-kinded destination
	// (time.Duration included), so the acceptance is resolved at compile.
	acceptDuration := t.Kind() == reflect.Int64
	return func(d *decState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		tag, err := d.readTag()
		if err != nil {
			return err
		}
		switch tag {
		case tagNil:
			v.SetZero()
			return nil
		case tagInt:
			x, err := d.readVarint()
			if err != nil {
				return err
			}
			if v.OverflowInt(x) {
				return fmt.Errorf("ndr: int overflow into %v", v.Type())
			}
			v.SetInt(x)
			return nil
		case tagDuration:
			if !acceptDuration {
				return d.skipMismatch(tag, v, depth)
			}
			x, err := d.readVarint()
			if err != nil {
				return err
			}
			v.SetInt(x)
			return nil
		default:
			return d.skipMismatch(tag, v, depth)
		}
	}
}

func decUint(d *decState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	tag, err := d.readTag()
	if err != nil {
		return err
	}
	switch tag {
	case tagNil:
		v.SetZero()
		return nil
	case tagUint:
		x, err := d.readUvarint()
		if err != nil {
			return err
		}
		if v.OverflowUint(x) {
			return fmt.Errorf("ndr: uint overflow into %v", v.Type())
		}
		v.SetUint(x)
		return nil
	default:
		return d.skipMismatch(tag, v, depth)
	}
}

func decFloat(d *decState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	tag, err := d.readTag()
	if err != nil {
		return err
	}
	switch tag {
	case tagNil:
		v.SetZero()
		return nil
	case tagFloat32:
		var b [4]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(b[:]))))
		return nil
	case tagFloat64:
		var b [8]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
		return nil
	default:
		return d.skipMismatch(tag, v, depth)
	}
}

func decString(d *decState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	tag, err := d.readTag()
	if err != nil {
		return err
	}
	switch tag {
	case tagNil:
		v.SetZero()
		return nil
	case tagString:
		s, err := d.readString()
		if err != nil {
			return err
		}
		v.SetString(s)
		return nil
	default:
		return d.skipMismatch(tag, v, depth)
	}
}

func compileDecSlice(t reflect.Type) decFunc {
	elem := decPlanFor(t.Elem())
	isBytes := t.Elem().Kind() == reflect.Uint8
	return func(d *decState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		tag, err := d.readTag()
		if err != nil {
			return err
		}
		switch tag {
		case tagNil:
			v.SetZero()
			return nil
		case tagBytes:
			p, err := d.readLenBytes()
			if err != nil {
				return err
			}
			if !isBytes {
				return mismatch("[]byte", v)
			}
			v.SetBytes(p)
			return nil
		case tagSlice:
			n, err := d.readCount()
			if err != nil {
				return err
			}
			s := reflect.MakeSlice(t, n, n)
			for i := 0; i < n; i++ {
				if err := elem(d, s.Index(i), depth+1); err != nil {
					return err
				}
			}
			v.Set(s)
			return nil
		default:
			return d.skipMismatch(tag, v, depth)
		}
	}
}

func compileDecArray(t reflect.Type) decFunc {
	elem := decPlanFor(t.Elem())
	want := t.Len()
	return func(d *decState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		tag, err := d.readTag()
		if err != nil {
			return err
		}
		switch tag {
		case tagNil:
			v.SetZero()
			return nil
		case tagArray:
			n, err := d.readCount()
			if err != nil {
				return err
			}
			if n != want {
				return fmt.Errorf("ndr: array length %d does not match wire %d", want, n)
			}
			for i := 0; i < n; i++ {
				if err := elem(d, v.Index(i), depth+1); err != nil {
					return err
				}
			}
			return nil
		default:
			return d.skipMismatch(tag, v, depth)
		}
	}
}

func compileDecMap(t reflect.Type) decFunc {
	kt, vt := t.Key(), t.Elem()
	keyPlan := decPlanFor(kt)
	valPlan := decPlanFor(vt)
	return func(d *decState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		tag, err := d.readTag()
		if err != nil {
			return err
		}
		switch tag {
		case tagNil:
			v.SetZero()
			return nil
		case tagMap:
			n, err := d.readCount()
			if err != nil {
				return err
			}
			m := reflect.MakeMapWithSize(t, n)
			// One reusable key/value pair: SetMapIndex copies, and decode
			// paths never mutate previously-produced backing arrays.
			k := reflect.New(kt).Elem()
			val := reflect.New(vt).Elem()
			for i := 0; i < n; i++ {
				k.SetZero()
				val.SetZero()
				if err := keyPlan(d, k, depth+1); err != nil {
					return err
				}
				if err := valPlan(d, val, depth+1); err != nil {
					return err
				}
				m.SetMapIndex(k, val)
			}
			v.Set(m)
			return nil
		default:
			return d.skipMismatch(tag, v, depth)
		}
	}
}

type decField struct {
	index int
	name  string
	fn    decFunc
}

func compileDecStruct(t reflect.Type) decFunc {
	idxs := exportedFields(t)
	fields := make([]decField, len(idxs))
	for i, fi := range idxs {
		f := t.Field(fi)
		fields[i] = decField{index: fi, name: t.Name() + "." + f.Name, fn: decPlanFor(f.Type)}
	}
	return func(d *decState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		tag, err := d.readTag()
		if err != nil {
			return err
		}
		switch tag {
		case tagNil:
			v.SetZero()
			return nil
		case tagStruct:
			n, err := d.readCount()
			if err != nil {
				return err
			}
			if n != len(fields) {
				return fmt.Errorf("ndr: struct %v has %d exported fields, wire has %d",
					t, len(fields), n)
			}
			for i := range fields {
				f := &fields[i]
				if err := f.fn(d, v.Field(f.index), depth+1); err != nil {
					return fmt.Errorf("ndr: field %s: %w", f.name, err)
				}
			}
			return nil
		default:
			return d.skipMismatch(tag, v, depth)
		}
	}
}

// decTime handles the time.Time destination: tagTime frames, plus the
// degenerate tagStruct-with-zero-fields frame the generic struct path has
// always accepted for a type with no exported fields.
func decTime(d *decState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	tag, err := d.readTag()
	if err != nil {
		return err
	}
	switch tag {
	case tagNil:
		v.SetZero()
		return nil
	case tagTime:
		p, err := d.readLenBytes()
		if err != nil {
			return err
		}
		var tv time.Time
		if err := tv.UnmarshalBinary(p); err != nil {
			return fmt.Errorf("ndr: unmarshal time: %w", err)
		}
		v.Set(reflect.ValueOf(tv))
		return nil
	case tagStruct:
		n, err := d.readCount()
		if err != nil {
			return err
		}
		if n != 0 {
			return fmt.Errorf("ndr: struct %v has %d exported fields, wire has %d", timeType, 0, n)
		}
		return nil
	default:
		return d.skipMismatch(tag, v, depth)
	}
}

func compileDecPtr(t reflect.Type) decFunc {
	et := t.Elem()
	elem := decPlanFor(et)
	return func(d *decState, v reflect.Value, depth int) error {
		if depth > maxDepth {
			return ErrTooDeep
		}
		tag, err := d.readTag()
		if err != nil {
			return err
		}
		switch tag {
		case tagNil:
			v.SetZero()
			return nil
		case tagPtr:
			flag, err := d.readByte()
			if err != nil {
				return err
			}
			if flag == 0 {
				v.SetZero()
				return nil
			}
			p := reflect.New(et)
			if err := elem(d, p.Elem(), depth+1); err != nil {
				return err
			}
			v.Set(p)
			return nil
		default:
			return d.skipMismatch(tag, v, depth)
		}
	}
}

func decIface(d *decState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	tag, err := d.readTag()
	if err != nil {
		return err
	}
	switch tag {
	case tagNil:
		v.SetZero()
		return nil
	case tagIface:
		name, err := d.readString()
		if err != nil {
			return err
		}
		registry.RLock()
		ct, ok := registry.byName[name]
		registry.RUnlock()
		if !ok {
			return fmt.Errorf("ndr: unknown registered type %q", name)
		}
		target := reflect.New(ct).Elem()
		if err := decPlanFor(ct)(d, target, depth+1); err != nil {
			return err
		}
		if !ct.Implements(v.Type()) && v.Type().NumMethod() != 0 {
			return fmt.Errorf("ndr: %v does not implement %v", ct, v.Type())
		}
		v.Set(target)
		return nil
	default:
		return d.skipMismatch(tag, v, depth)
	}
}

func decUnsupported(d *decState, v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	tag, err := d.readTag()
	if err != nil {
		return err
	}
	if tag == tagNil {
		v.SetZero()
		return nil
	}
	return d.skipMismatch(tag, v, depth)
}

// skipMismatch replicates the reference decoder's behavior when the wire
// tag does not fit the destination: consume exactly the bytes the matching
// tag arm would have consumed before its kind check, then report the same
// mismatch. Keeping consumption identical preserves stream positioning and
// error behavior bit-for-bit with the reflective codec.
func (d *decState) skipMismatch(tag byte, v reflect.Value, depth int) error {
	switch tag {
	case tagBool:
		if _, err := d.readByte(); err != nil {
			return err
		}
		return mismatch("bool", v)
	case tagInt:
		if _, err := d.readVarint(); err != nil {
			return err
		}
		return mismatch("int", v)
	case tagUint:
		if _, err := d.readUvarint(); err != nil {
			return err
		}
		return mismatch("uint", v)
	case tagFloat32:
		var b [4]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		return mismatch("float32", v)
	case tagFloat64:
		var b [8]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		return mismatch("float64", v)
	case tagString:
		if _, err := d.readLenBytes(); err != nil {
			return err
		}
		return mismatch("string", v)
	case tagBytes:
		if _, err := d.readLenBytes(); err != nil {
			return err
		}
		return mismatch("[]byte", v)
	case tagSlice:
		if _, err := d.readCount(); err != nil {
			return err
		}
		return mismatch("slice", v)
	case tagArray:
		if _, err := d.readCount(); err != nil {
			return err
		}
		return mismatch("array", v)
	case tagMap:
		if _, err := d.readCount(); err != nil {
			return err
		}
		return mismatch("map", v)
	case tagStruct:
		if _, err := d.readCount(); err != nil {
			return err
		}
		return mismatch("struct", v)
	case tagPtr:
		if _, err := d.readByte(); err != nil {
			return err
		}
		return mismatch("pointer", v)
	case tagTime:
		if _, err := d.readLenBytes(); err != nil {
			return err
		}
		return mismatch("time.Time", v)
	case tagDuration:
		if _, err := d.readVarint(); err != nil {
			return err
		}
		return mismatch("time.Duration", v)
	case tagIface:
		name, err := d.readString()
		if err != nil {
			return err
		}
		registry.RLock()
		ct, ok := registry.byName[name]
		registry.RUnlock()
		if !ok {
			return fmt.Errorf("ndr: unknown registered type %q", name)
		}
		target := reflect.New(ct).Elem()
		if err := decPlanFor(ct)(d, target, depth+1); err != nil {
			return err
		}
		return mismatch("interface", v)
	default:
		return fmt.Errorf("ndr: unknown wire tag %d", tag)
	}
}

package ndr

import (
	"testing"
	"time"
)

// Allocation-focused microbenchmarks over the shapes the middleware
// actually moves: scalars, a nested struct resembling a call frame, a
// map-heavy snapshot shape, and a 64 KiB byte payload. Run with
// `make bench` or `go test -bench BenchmarkNDR -benchmem ./internal/ndr`.

type benchInner struct {
	Label  string
	Count  int64
	Weight float64
}

type benchNested struct {
	ID      uint64
	Method  string
	Args    [][]byte
	Inner   benchInner
	Sub     *benchInner
	When    time.Time
	Gap     time.Duration
	Tags    []string
	Attempt int
}

func benchNestedValue() benchNested {
	return benchNested{
		ID:     42,
		Method: "Read",
		Args:   [][]byte{{1, 2, 3}, {4, 5}, {6}},
		Inner:  benchInner{Label: "plc1", Count: -7, Weight: 1.5},
		Sub:    &benchInner{Label: "plc2", Count: 9, Weight: 0.25},
		When:   time.Date(2000, 6, 25, 12, 30, 0, 0, time.UTC),
		Gap:    40 * time.Millisecond,
		Tags:   []string{"opc", "ftim", "scada"},
		Attempt: 3,
	}
}

func benchMapValue() map[string][]byte {
	return map[string][]byte{
		"counters": {1, 2, 3, 4, 5, 6, 7, 8},
		"state":    {9, 10, 11, 12},
		"alarms":   {},
		"setpts":   {13, 14},
	}
}

func bench64K() []byte {
	b := make([]byte, 64<<10)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func benchMarshal(b *testing.B, v any) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(v); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMarshalTo(b *testing.B, v any) {
	b.Helper()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = MarshalTo(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchUnmarshal(b *testing.B, v, dst any) {
	b.Helper()
	data, err := Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Unmarshal(data, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNDRMarshalScalar(b *testing.B)   { benchMarshal(b, int64(123456789)) }
func BenchmarkNDRMarshalNested(b *testing.B)   { benchMarshal(b, benchNestedValue()) }
func BenchmarkNDRMarshalMap(b *testing.B)      { benchMarshal(b, benchMapValue()) }
func BenchmarkNDRMarshalBytes64K(b *testing.B) { benchMarshal(b, bench64K()) }

func BenchmarkNDRMarshalToScalar(b *testing.B)   { benchMarshalTo(b, int64(123456789)) }
func BenchmarkNDRMarshalToNested(b *testing.B)   { benchMarshalTo(b, benchNestedValue()) }
func BenchmarkNDRMarshalToMap(b *testing.B)      { benchMarshalTo(b, benchMapValue()) }
func BenchmarkNDRMarshalToBytes64K(b *testing.B) { benchMarshalTo(b, bench64K()) }

func BenchmarkNDRUnmarshalScalar(b *testing.B) {
	benchUnmarshal(b, int64(123456789), new(int64))
}
func BenchmarkNDRUnmarshalNested(b *testing.B) {
	benchUnmarshal(b, benchNestedValue(), new(benchNested))
}
func BenchmarkNDRUnmarshalMap(b *testing.B) {
	benchUnmarshal(b, benchMapValue(), new(map[string][]byte))
}
func BenchmarkNDRUnmarshalBytes64K(b *testing.B) {
	benchUnmarshal(b, bench64K(), new([]byte))
}

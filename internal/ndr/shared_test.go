package ndr

import (
	"bytes"
	"testing"
)

type sharedFrame struct {
	ID      uint64
	Name    string
	Body    []byte
	Chunks  [][]byte
	Trailer []byte
}

// TestUnmarshalSharedAliases proves UnmarshalShared decodes []byte fields
// as subslices of the source frame (no copy) while Unmarshal still copies.
func TestUnmarshalSharedAliases(t *testing.T) {
	in := sharedFrame{
		ID:      7,
		Name:    "frame",
		Body:    []byte("payload-bytes"),
		Chunks:  [][]byte{[]byte("aa"), []byte("bbbb")},
		Trailer: []byte("zz"),
	}
	frame, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}

	within := func(p []byte) bool {
		if len(p) == 0 {
			return true
		}
		for i := range frame {
			if &frame[i] == &p[0] {
				return true
			}
		}
		return false
	}

	var shared sharedFrame
	if err := UnmarshalShared(frame, &shared); err != nil {
		t.Fatal(err)
	}
	if shared.ID != in.ID || shared.Name != in.Name ||
		!bytes.Equal(shared.Body, in.Body) || !bytes.Equal(shared.Trailer, in.Trailer) {
		t.Fatalf("shared decode mismatch: %+v", shared)
	}
	if !within(shared.Body) || !within(shared.Chunks[0]) || !within(shared.Chunks[1]) || !within(shared.Trailer) {
		t.Fatal("shared decode should alias the source frame")
	}
	// Mutating the frame must show through the aliased view.
	old := shared.Body[0]
	frameCopy := append([]byte(nil), frame...)
	for i := range frame {
		frame[i] ^= 0xff
	}
	if shared.Body[0] == old {
		t.Fatal("aliased view did not observe frame mutation")
	}
	copy(frame, frameCopy)

	var copied sharedFrame
	if err := Unmarshal(frame, &copied); err != nil {
		t.Fatal(err)
	}
	if within(copied.Body) || within(copied.Chunks[0]) {
		t.Fatal("plain Unmarshal must copy byte payloads")
	}

	// The pooled decode state must not leak shared mode into later calls.
	var again sharedFrame
	if err := Unmarshal(frame, &again); err != nil {
		t.Fatal(err)
	}
	if within(again.Body) {
		t.Fatal("Unmarshal after UnmarshalShared aliased the frame (pool leak)")
	}
}

// TestUnmarshalSharedEmpty checks zero-length payloads survive aliasing.
func TestUnmarshalSharedEmpty(t *testing.T) {
	in := sharedFrame{Body: []byte{}}
	frame, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out sharedFrame
	if err := UnmarshalShared(frame, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Body) != 0 {
		t.Fatalf("Body = %q", out.Body)
	}
}

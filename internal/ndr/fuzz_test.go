package ndr

import (
	"testing"
	"time"
)

// FuzzUnmarshal drives the decoder with arbitrary bytes: it must never
// panic, whatever the target type. (Run `go test -fuzz=FuzzUnmarshal
// ./internal/ndr` for a long campaign; the seed corpus runs in CI time.)
func FuzzUnmarshal(f *testing.F) {
	type nested struct {
		Name  string
		Vals  []int64
		Table map[string][]byte
		At    time.Time
		Sub   *nested
	}
	seeds := [][]byte{
		{},
		{tagNil},
		{tagBool, 1},
		{tagInt, 0x80, 0x01},
		{tagString, 3, 'a', 'b', 'c'},
		{tagStruct, 5},
		{tagMap, 200},
		{tagSlice, 0xFF, 0xFF, 0xFF, 0x7F},
		{tagIface, 4, 'n', 'o', 'p', 'e'},
	}
	if enc, err := Marshal(nested{Name: "seed", Vals: []int64{1, 2}}); err == nil {
		seeds = append(seeds, enc)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var n nested
		_ = Unmarshal(data, &n)
		var m map[string]int64
		_ = Unmarshal(data, &m)
		var s []string
		_ = Unmarshal(data, &s)
	})
}

package ndr

import (
	"bytes"
	"encoding/hex"
	"testing"
	"time"
)

// FuzzUnmarshal drives the decoder with arbitrary bytes: it must never
// panic, whatever the target type. (Run `go test -fuzz=FuzzUnmarshal
// ./internal/ndr` for a long campaign; the seed corpus runs in CI time.)
func FuzzUnmarshal(f *testing.F) {
	type nested struct {
		Name  string
		Vals  []int64
		Table map[string][]byte
		At    time.Time
		Sub   *nested
	}
	seeds := [][]byte{
		{},
		{tagNil},
		{tagBool, 1},
		{tagInt, 0x80, 0x01},
		{tagString, 3, 'a', 'b', 'c'},
		{tagStruct, 5},
		{tagMap, 200},
		{tagSlice, 0xFF, 0xFF, 0xFF, 0x7F},
		{tagIface, 4, 'n', 'o', 'p', 'e'},
	}
	if enc, err := Marshal(nested{Name: "seed", Vals: []int64{1, 2}}); err == nil {
		seeds = append(seeds, enc)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var n nested
		_ = Unmarshal(data, &n)
		var m map[string]int64
		_ = Unmarshal(data, &m)
		var s []string
		_ = Unmarshal(data, &s)
	})
}

// FuzzPlannedVsReflective cross-checks the compiled-plan decoder against
// the original reflective codec (kept verbatim in reflect_ref_test.go) on
// the same input: both must agree on accept/reject, and on accept the
// decoded values must re-encode to identical bytes. The corpus is seeded
// with the golden frames of the real consumer shapes (dcom request/reply,
// checkpoint snapshot, diverter message) plus hostile fragments.
//
// Comparing re-marshaled bytes rather than reflect.DeepEqual sidesteps
// NaN != NaN while still proving the decoders built the same value, since
// encoding is deterministic (sorted map keys).
func FuzzPlannedVsReflective(f *testing.F) {
	for _, h := range goldenHex {
		b, err := hex.DecodeString(h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{tagStruct, 4, tagUint, 1})       // short struct
	f.Add([]byte{tagBytes, 5, 1, 2})              // truncated bytes
	f.Add([]byte{tagPtr, 1, tagInt, 0x80, 0x01})  // pointer chain
	f.Add([]byte{tagTime, 0})                     // empty time payload
	f.Add([]byte{tagDuration, 0x80, 0x80, 0x01})  // duration into int64
	f.Fuzz(func(t *testing.T, data []byte) {
		crossCheck(t, data, func() (any, any) { return new(goldenRequest), new(goldenRequest) })
		crossCheck(t, data, func() (any, any) { return new(goldenReply), new(goldenReply) })
		crossCheck(t, data, func() (any, any) { return new(goldenSnapshot), new(goldenSnapshot) })
		crossCheck(t, data, func() (any, any) { return new(goldenMessage), new(goldenMessage) })
		crossCheck(t, data, func() (any, any) { return new(goldenNested), new(goldenNested) })
		crossCheck(t, data, func() (any, any) { return new(map[string][]byte), new(map[string][]byte) })
		crossCheck(t, data, func() (any, any) { return new([]int64), new([]int64) })
	})
}

// crossCheck decodes data into fresh targets with both decoders and fails
// on any divergence in outcome or in the resulting value's encoding.
func crossCheck(t *testing.T, data []byte, mk func() (planned, reflective any)) {
	t.Helper()
	p, r := mk()
	errPlan := Unmarshal(data, p)
	errRef := refUnmarshal(data, r)
	if (errPlan == nil) != (errRef == nil) {
		t.Fatalf("decoder disagreement for %T on %x:\n  planned:    %v\n  reflective: %v",
			p, data, errPlan, errRef)
	}
	if errPlan != nil {
		return
	}
	bp, err1 := Marshal(p)
	br, err2 := refMarshal(r)
	if err1 != nil || err2 != nil {
		t.Fatalf("re-marshal for %T: planned %v, reflective %v", p, err1, err2)
	}
	if !bytes.Equal(bp, br) {
		t.Fatalf("re-marshal mismatch for %T on %x:\n  planned:    %x\n  reflective: %x",
			p, data, bp, br)
	}
}

// Package ndr implements a compact, reflection-driven binary codec in the
// spirit of DCE/RPC's Network Data Representation, which underlies DCOM's
// ORPC marshaling. It is the single serialization layer of the OFTT
// reproduction: dcom uses it for call frames, checkpoint uses it to capture
// registered application state, and diverter uses it for queued messages.
//
// The format is self-describing at the value level (every value carries a
// type tag) but positional at the struct level: exported struct fields are
// encoded in declaration order, so both peers must agree on the struct
// definition, exactly as DCOM proxies and stubs must be generated from the
// same IDL.
package ndr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"sync"
	"time"
)

// Type tags. Tags are part of the wire contract; never renumber, only append.
const (
	tagNil      byte = 1
	tagBool     byte = 2
	tagInt      byte = 3 // varint-encoded signed integer (all int widths)
	tagUint     byte = 4 // varint-encoded unsigned integer (all uint widths)
	tagFloat32  byte = 5
	tagFloat64  byte = 6
	tagString   byte = 7
	tagBytes    byte = 8 // []byte fast path
	tagSlice    byte = 9
	tagArray    byte = 10
	tagMap      byte = 11
	tagStruct   byte = 12
	tagPtr      byte = 13
	tagTime     byte = 14
	tagDuration byte = 15
	tagIface    byte = 16 // registered concrete type by name
)

// Limits guard against corrupt or adversarial frames.
const (
	maxDepth   = 64
	maxElems   = 1 << 24
	maxByteLen = 1 << 28
)

var (
	// ErrTooDeep is returned when a value nests past the codec's depth limit
	// (usually a cyclic data structure, which NDR does not support).
	ErrTooDeep = errors.New("ndr: value exceeds depth limit (cycle?)")

	// ErrTypeMismatch is returned when the wire tag does not match the
	// destination type during decoding.
	ErrTypeMismatch = errors.New("ndr: wire/destination type mismatch")
)

var (
	timeType     = reflect.TypeOf(time.Time{})
	durationType = reflect.TypeOf(time.Duration(0))
)

// registry maps names to concrete types for interface-valued fields,
// mirroring COM's requirement that marshaled interfaces resolve to
// registered coclasses.
var registry = struct {
	sync.RWMutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}{
	byName: make(map[string]reflect.Type),
	byType: make(map[reflect.Type]string),
}

// Register makes the concrete type of sample encodable inside interface
// values under the given name. Registration must happen identically on both
// peers (the moral equivalent of installing a proxy/stub pair).
func Register(name string, sample any) error {
	if name == "" {
		return errors.New("ndr: empty registration name")
	}
	t := reflect.TypeOf(sample)
	if t == nil {
		return errors.New("ndr: cannot register nil")
	}
	registry.Lock()
	defer registry.Unlock()
	if existing, ok := registry.byName[name]; ok && existing != t {
		return fmt.Errorf("ndr: name %q already registered to %v", name, existing)
	}
	registry.byName[name] = t
	registry.byType[t] = name
	return nil
}

// MustRegister is Register for program-initialization time.
func MustRegister(name string, sample any) {
	if err := Register(name, sample); err != nil {
		panic(err)
	}
}

// Marshal encodes v into a fresh byte slice.
func Marshal(v any) ([]byte, error) {
	var buf writer
	e := Encoder{w: &buf}
	if err := e.Encode(v); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// Unmarshal decodes data into the value pointed to by out.
func Unmarshal(data []byte, out any) error {
	d := NewDecoder(&byteReader{b: data})
	return d.Decode(out)
}

// An Encoder writes NDR values to an underlying writer.
type Encoder struct {
	w io.Writer
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode writes one value.
func (e *Encoder) Encode(v any) error {
	if v == nil {
		return e.writeByte(tagNil)
	}
	return e.encodeValue(reflect.ValueOf(v), 0)
}

func (e *Encoder) encodeValue(v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	t := v.Type()

	// Named types with special handling.
	switch t {
	case timeType:
		if err := e.writeByte(tagTime); err != nil {
			return err
		}
		tv, ok := v.Interface().(time.Time)
		if !ok {
			return ErrTypeMismatch
		}
		b, err := tv.MarshalBinary()
		if err != nil {
			return fmt.Errorf("ndr: marshal time: %w", err)
		}
		return e.writeLenBytes(b)
	case durationType:
		if err := e.writeByte(tagDuration); err != nil {
			return err
		}
		return e.writeVarint(v.Int())
	}

	switch t.Kind() {
	case reflect.Bool:
		if err := e.writeByte(tagBool); err != nil {
			return err
		}
		if v.Bool() {
			return e.writeByte(1)
		}
		return e.writeByte(0)

	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if err := e.writeByte(tagInt); err != nil {
			return err
		}
		return e.writeVarint(v.Int())

	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if err := e.writeByte(tagUint); err != nil {
			return err
		}
		return e.writeUvarint(v.Uint())

	case reflect.Float32:
		if err := e.writeByte(tagFloat32); err != nil {
			return err
		}
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(float32(v.Float())))
		_, err := e.w.Write(b[:])
		return err

	case reflect.Float64:
		if err := e.writeByte(tagFloat64); err != nil {
			return err
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Float()))
		_, err := e.w.Write(b[:])
		return err

	case reflect.String:
		if err := e.writeByte(tagString); err != nil {
			return err
		}
		return e.writeLenBytes([]byte(v.String()))

	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			if err := e.writeByte(tagBytes); err != nil {
				return err
			}
			if v.IsNil() {
				return e.writeUvarint(0)
			}
			return e.writeLenBytes(v.Bytes())
		}
		if err := e.writeByte(tagSlice); err != nil {
			return err
		}
		return e.encodeSeq(v, depth)

	case reflect.Array:
		if err := e.writeByte(tagArray); err != nil {
			return err
		}
		return e.encodeSeq(v, depth)

	case reflect.Map:
		if err := e.writeByte(tagMap); err != nil {
			return err
		}
		n := v.Len()
		if n > maxElems {
			return fmt.Errorf("ndr: map too large: %d", n)
		}
		if err := e.writeUvarint(uint64(n)); err != nil {
			return err
		}
		// Deterministic key order so encodings are byte-stable, which the
		// checkpoint layer relies on for cheap dirty detection.
		keys := v.MapKeys()
		sortKeys(keys)
		for _, k := range keys {
			if err := e.encodeValue(k, depth+1); err != nil {
				return err
			}
			if err := e.encodeValue(v.MapIndex(k), depth+1); err != nil {
				return err
			}
		}
		return nil

	case reflect.Struct:
		if err := e.writeByte(tagStruct); err != nil {
			return err
		}
		fields := exportedFields(t)
		if err := e.writeUvarint(uint64(len(fields))); err != nil {
			return err
		}
		for _, i := range fields {
			if err := e.encodeValue(v.Field(i), depth+1); err != nil {
				return fmt.Errorf("ndr: field %s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
		return nil

	case reflect.Ptr:
		if err := e.writeByte(tagPtr); err != nil {
			return err
		}
		if v.IsNil() {
			return e.writeByte(0)
		}
		if err := e.writeByte(1); err != nil {
			return err
		}
		return e.encodeValue(v.Elem(), depth+1)

	case reflect.Interface:
		if v.IsNil() {
			return e.writeByte(tagNil)
		}
		elem := v.Elem()
		registry.RLock()
		name, ok := registry.byType[elem.Type()]
		registry.RUnlock()
		if !ok {
			return fmt.Errorf("ndr: unregistered interface payload %v", elem.Type())
		}
		if err := e.writeByte(tagIface); err != nil {
			return err
		}
		if err := e.writeLenBytes([]byte(name)); err != nil {
			return err
		}
		return e.encodeValue(elem, depth+1)

	default:
		return fmt.Errorf("ndr: unsupported kind %v", t.Kind())
	}
}

func (e *Encoder) encodeSeq(v reflect.Value, depth int) error {
	n := v.Len()
	if n > maxElems {
		return fmt.Errorf("ndr: sequence too large: %d", n)
	}
	if err := e.writeUvarint(uint64(n)); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := e.encodeValue(v.Index(i), depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (e *Encoder) writeByte(b byte) error {
	_, err := e.w.Write([]byte{b})
	return err
}

func (e *Encoder) writeVarint(x int64) error {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], x)
	_, err := e.w.Write(b[:n])
	return err
}

func (e *Encoder) writeUvarint(x uint64) error {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], x)
	_, err := e.w.Write(b[:n])
	return err
}

func (e *Encoder) writeLenBytes(p []byte) error {
	if len(p) > maxByteLen {
		return fmt.Errorf("ndr: byte payload too large: %d", len(p))
	}
	if err := e.writeUvarint(uint64(len(p))); err != nil {
		return err
	}
	_, err := e.w.Write(p)
	return err
}

// A Decoder reads NDR values from an underlying reader.
type Decoder struct {
	r io.ByteReader
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.ByteReader) *Decoder { return &Decoder{r: r} }

// Decode reads one value into the non-nil pointer out.
func (d *Decoder) Decode(out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return errors.New("ndr: decode target must be a non-nil pointer")
	}
	return d.decodeValue(rv.Elem(), 0)
}

func (d *Decoder) decodeValue(v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	tag, err := d.r.ReadByte()
	if err != nil {
		return fmt.Errorf("ndr: read tag: %w", err)
	}

	switch tag {
	case tagNil:
		v.Set(reflect.Zero(v.Type()))
		return nil

	case tagBool:
		b, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Bool {
			return d.mismatch("bool", v)
		}
		v.SetBool(b != 0)
		return nil

	case tagInt:
		x, err := binary.ReadVarint(d.r)
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			if v.OverflowInt(x) {
				return fmt.Errorf("ndr: int overflow into %v", v.Type())
			}
			v.SetInt(x)
			return nil
		}
		return d.mismatch("int", v)

	case tagUint:
		x, err := binary.ReadUvarint(d.r)
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if v.OverflowUint(x) {
				return fmt.Errorf("ndr: uint overflow into %v", v.Type())
			}
			v.SetUint(x)
			return nil
		}
		return d.mismatch("uint", v)

	case tagFloat32:
		var b [4]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		f := math.Float32frombits(binary.LittleEndian.Uint32(b[:]))
		switch v.Kind() {
		case reflect.Float32, reflect.Float64:
			v.SetFloat(float64(f))
			return nil
		}
		return d.mismatch("float32", v)

	case tagFloat64:
		var b [8]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
		switch v.Kind() {
		case reflect.Float32, reflect.Float64:
			v.SetFloat(f)
			return nil
		}
		return d.mismatch("float64", v)

	case tagString:
		p, err := d.readLenBytes()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.String {
			return d.mismatch("string", v)
		}
		v.SetString(string(p))
		return nil

	case tagBytes:
		p, err := d.readLenBytes()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Slice || v.Type().Elem().Kind() != reflect.Uint8 {
			return d.mismatch("[]byte", v)
		}
		v.SetBytes(p)
		return nil

	case tagSlice:
		n, err := d.readCount()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Slice {
			return d.mismatch("slice", v)
		}
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			if err := d.decodeValue(s.Index(i), depth+1); err != nil {
				return err
			}
		}
		v.Set(s)
		return nil

	case tagArray:
		n, err := d.readCount()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Array {
			return d.mismatch("array", v)
		}
		if n != v.Len() {
			return fmt.Errorf("ndr: array length %d does not match wire %d", v.Len(), n)
		}
		for i := 0; i < n; i++ {
			if err := d.decodeValue(v.Index(i), depth+1); err != nil {
				return err
			}
		}
		return nil

	case tagMap:
		n, err := d.readCount()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Map {
			return d.mismatch("map", v)
		}
		m := reflect.MakeMapWithSize(v.Type(), n)
		for i := 0; i < n; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			if err := d.decodeValue(k, depth+1); err != nil {
				return err
			}
			val := reflect.New(v.Type().Elem()).Elem()
			if err := d.decodeValue(val, depth+1); err != nil {
				return err
			}
			m.SetMapIndex(k, val)
		}
		v.Set(m)
		return nil

	case tagStruct:
		n, err := d.readCount()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Struct {
			return d.mismatch("struct", v)
		}
		fields := exportedFields(v.Type())
		if n != len(fields) {
			return fmt.Errorf("ndr: struct %v has %d exported fields, wire has %d",
				v.Type(), len(fields), n)
		}
		for _, i := range fields {
			if err := d.decodeValue(v.Field(i), depth+1); err != nil {
				return fmt.Errorf("ndr: field %s.%s: %w",
					v.Type().Name(), v.Type().Field(i).Name, err)
			}
		}
		return nil

	case tagPtr:
		flag, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Ptr {
			return d.mismatch("pointer", v)
		}
		if flag == 0 {
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		p := reflect.New(v.Type().Elem())
		if err := d.decodeValue(p.Elem(), depth+1); err != nil {
			return err
		}
		v.Set(p)
		return nil

	case tagTime:
		p, err := d.readLenBytes()
		if err != nil {
			return err
		}
		if v.Type() != timeType {
			return d.mismatch("time.Time", v)
		}
		var tv time.Time
		if err := tv.UnmarshalBinary(p); err != nil {
			return fmt.Errorf("ndr: unmarshal time: %w", err)
		}
		v.Set(reflect.ValueOf(tv))
		return nil

	case tagDuration:
		x, err := binary.ReadVarint(d.r)
		if err != nil {
			return err
		}
		if v.Type() != durationType && v.Kind() != reflect.Int64 {
			return d.mismatch("time.Duration", v)
		}
		v.SetInt(x)
		return nil

	case tagIface:
		nameB, err := d.readLenBytes()
		if err != nil {
			return err
		}
		registry.RLock()
		ct, ok := registry.byName[string(nameB)]
		registry.RUnlock()
		if !ok {
			return fmt.Errorf("ndr: unknown registered type %q", nameB)
		}
		target := reflect.New(ct).Elem()
		if err := d.decodeValue(target, depth+1); err != nil {
			return err
		}
		if v.Kind() != reflect.Interface {
			return d.mismatch("interface", v)
		}
		if !ct.Implements(v.Type()) && v.Type().NumMethod() != 0 {
			return fmt.Errorf("ndr: %v does not implement %v", ct, v.Type())
		}
		v.Set(target)
		return nil

	default:
		return fmt.Errorf("ndr: unknown wire tag %d", tag)
	}
}

func (d *Decoder) mismatch(wire string, v reflect.Value) error {
	return fmt.Errorf("%w: wire %s, destination %v", ErrTypeMismatch, wire, v.Type())
}

func (d *Decoder) readFull(p []byte) error {
	for i := range p {
		b, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		p[i] = b
	}
	return nil
}

func (d *Decoder) readCount() (int, error) {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, err
	}
	if n > maxElems {
		return 0, fmt.Errorf("ndr: element count too large: %d", n)
	}
	return int(n), nil
}

func (d *Decoder) readLenBytes() ([]byte, error) {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, err
	}
	if n > maxByteLen {
		return nil, fmt.Errorf("ndr: byte payload too large: %d", n)
	}
	p := make([]byte, n)
	if err := d.readFull(p); err != nil {
		return nil, err
	}
	return p, nil
}

// exportedFields returns indices of exported, non-skipped fields in order.
// Fields tagged `ndr:"-"` are skipped.
func exportedFields(t reflect.Type) []int {
	out := make([]int, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		if f.Tag.Get("ndr") == "-" {
			continue
		}
		out = append(out, i)
	}
	return out
}

// sortKeys orders map keys deterministically so encodings are byte-stable.
func sortKeys(keys []reflect.Value) {
	if len(keys) < 2 {
		return
	}
	switch keys[0].Kind() {
	case reflect.String:
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		sort.Slice(keys, func(i, j int) bool { return keys[i].Int() < keys[j].Int() })
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		sort.Slice(keys, func(i, j int) bool { return keys[i].Uint() < keys[j].Uint() })
	case reflect.Float32, reflect.Float64:
		sort.Slice(keys, func(i, j int) bool { return keys[i].Float() < keys[j].Float() })
	default:
		// Fall back to formatting; slower but still deterministic.
		sort.Slice(keys, func(i, j int) bool {
			return fmt.Sprint(keys[i].Interface()) < fmt.Sprint(keys[j].Interface())
		})
	}
}

// writer is a minimal growable buffer avoiding bytes.Buffer's extra state.
type writer struct{ b []byte }

func (w *writer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// byteReader adapts a byte slice to io.ByteReader.
type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.i >= len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	c := r.b[r.i]
	r.i++
	return c, nil
}

// NewByteReader wraps data in an io.ByteReader suitable for NewDecoder.
func NewByteReader(data []byte) io.ByteReader { return &byteReader{b: data} }

// Package ndr implements a compact binary codec in the spirit of DCE/RPC's
// Network Data Representation, which underlies DCOM's ORPC marshaling. It
// is the single serialization layer of the OFTT reproduction: dcom uses it
// for call frames, checkpoint uses it to capture registered application
// state, and diverter uses it for queued messages.
//
// The format is self-describing at the value level (every value carries a
// type tag) but positional at the struct level: exported struct fields are
// encoded in declaration order, so both peers must agree on the struct
// definition, exactly as DCOM proxies and stubs must be generated from the
// same IDL.
//
// # Codec plans
//
// The first time a type is encoded or decoded, the codec compiles it into
// a plan: a closure tree with struct field lists resolved once, map key
// comparators chosen by key kind, and fixed-width fast paths for scalars,
// strings, and []byte. Plans are cached in sync.Maps keyed by reflect.Type
// and dispatched on every subsequent call, so the steady-state hot path
// never re-walks type structure. Marshal/Unmarshal additionally pool their
// scratch state, and MarshalTo appends into a caller-owned buffer for
// zero-allocation steady-state encoding. The wire format is identical to
// the original per-value reflective codec (locked by golden-bytes tests).
package ndr

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"time"
)

// Type tags. Tags are part of the wire contract; never renumber, only append.
const (
	tagNil      byte = 1
	tagBool     byte = 2
	tagInt      byte = 3 // varint-encoded signed integer (all int widths)
	tagUint     byte = 4 // varint-encoded unsigned integer (all uint widths)
	tagFloat32  byte = 5
	tagFloat64  byte = 6
	tagString   byte = 7
	tagBytes    byte = 8 // []byte fast path
	tagSlice    byte = 9
	tagArray    byte = 10
	tagMap      byte = 11
	tagStruct   byte = 12
	tagPtr      byte = 13
	tagTime     byte = 14
	tagDuration byte = 15
	tagIface    byte = 16 // registered concrete type by name
)

// Limits guard against corrupt or adversarial frames.
const (
	maxDepth   = 64
	maxElems   = 1 << 24
	maxByteLen = 1 << 28
)

var (
	// ErrTooDeep is returned when a value nests past the codec's depth limit
	// (usually a cyclic data structure, which NDR does not support).
	ErrTooDeep = errors.New("ndr: value exceeds depth limit (cycle?)")

	// ErrTypeMismatch is returned when the wire tag does not match the
	// destination type during decoding.
	ErrTypeMismatch = errors.New("ndr: wire/destination type mismatch")
)

var errNotPointer = errors.New("ndr: decode target must be a non-nil pointer")

var (
	timeType     = reflect.TypeOf(time.Time{})
	durationType = reflect.TypeOf(time.Duration(0))
)

// registry maps names to concrete types for interface-valued fields,
// mirroring COM's requirement that marshaled interfaces resolve to
// registered coclasses.
var registry = struct {
	sync.RWMutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}{
	byName: make(map[string]reflect.Type),
	byType: make(map[reflect.Type]string),
}

// Register makes the concrete type of sample encodable inside interface
// values under the given name. Registration must happen identically on both
// peers (the moral equivalent of installing a proxy/stub pair).
func Register(name string, sample any) error {
	if name == "" {
		return errors.New("ndr: empty registration name")
	}
	t := reflect.TypeOf(sample)
	if t == nil {
		return errors.New("ndr: cannot register nil")
	}
	registry.Lock()
	defer registry.Unlock()
	if existing, ok := registry.byName[name]; ok && existing != t {
		return fmt.Errorf("ndr: name %q already registered to %v", name, existing)
	}
	registry.byName[name] = t
	registry.byType[t] = name
	return nil
}

// MustRegister is Register for program-initialization time.
func MustRegister(name string, sample any) {
	if err := Register(name, sample); err != nil {
		panic(err)
	}
}

// Pooled scratch state. Oversized buffers are dropped rather than pooled so
// one giant checkpoint does not pin a megabyte arena per P forever.
const maxPooledBuf = 1 << 20

var encPool = sync.Pool{New: func() any { return new(encState) }}
var decPool = sync.Pool{New: func() any { return new(decState) }}

// Marshal encodes v into a fresh byte slice.
func Marshal(v any) ([]byte, error) {
	e := encPool.Get().(*encState)
	e.b = e.b[:0]
	err := e.encodeRoot(v)
	var out []byte
	if err == nil {
		out = make([]byte, len(e.b))
		copy(out, e.b)
	}
	if cap(e.b) <= maxPooledBuf {
		encPool.Put(e)
	}
	return out, err
}

// MarshalTo appends the encoding of v to dst and returns the extended
// slice, growing it as needed. Callers that reuse dst across calls pay no
// steady-state buffer allocations. On error dst is returned unchanged
// (its backing array beyond len may have been scribbled).
func MarshalTo(dst []byte, v any) ([]byte, error) {
	e := encPool.Get().(*encState)
	pooled := e.b
	e.b = dst
	err := e.encodeRoot(v)
	out := e.b
	e.b = pooled
	encPool.Put(e)
	if err != nil {
		return dst, err
	}
	return out, nil
}

// MarshalDeref encodes the value ptr points to, byte-identical to
// Marshal(*ptr) but without copying the pointee into an interface box —
// the checkpoint layer uses it to capture large state regions in place.
func MarshalDeref(ptr any) ([]byte, error) {
	rv, err := derefTarget(ptr)
	if err != nil {
		return nil, err
	}
	e := encPool.Get().(*encState)
	e.b = e.b[:0]
	err = encPlanFor(rv.Type())(e, rv, 0)
	var out []byte
	if err == nil {
		out = make([]byte, len(e.b))
		copy(out, e.b)
	}
	if cap(e.b) <= maxPooledBuf {
		encPool.Put(e)
	}
	return out, err
}

// MarshalToDeref is MarshalTo for the value ptr points to (see MarshalDeref).
func MarshalToDeref(dst []byte, ptr any) ([]byte, error) {
	rv, err := derefTarget(ptr)
	if err != nil {
		return dst, err
	}
	e := encPool.Get().(*encState)
	pooled := e.b
	e.b = dst
	err = encPlanFor(rv.Type())(e, rv, 0)
	out := e.b
	e.b = pooled
	encPool.Put(e)
	if err != nil {
		return dst, err
	}
	return out, nil
}

func derefTarget(ptr any) (reflect.Value, error) {
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return reflect.Value{}, errors.New("ndr: marshal-deref target must be a non-nil pointer")
	}
	return rv.Elem(), nil
}

// Unmarshal decodes data into the value pointed to by out.
func Unmarshal(data []byte, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return errNotPointer
	}
	d := decPool.Get().(*decState)
	d.r, d.b, d.i, d.shared = nil, data, 0, false
	err := decPlanFor(rv.Type().Elem())(d, rv.Elem(), 0)
	d.b = nil // do not retain the caller's frame
	decPool.Put(d)
	return err
}

// UnmarshalShared decodes data into out like Unmarshal, except that []byte
// destinations alias data's backing array instead of copying — the
// zero-copy receive path: dcom decodes request and reply frames straight
// from the per-connection read arena into pooled values. The decoded value
// is only valid while data is; callers that retain byte payloads past the
// frame's recycle must copy them. String fields are still copied (Go
// strings are immutable, an aliased reused arena would corrupt them).
func UnmarshalShared(data []byte, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return errNotPointer
	}
	d := decPool.Get().(*decState)
	d.r, d.b, d.i, d.shared = nil, data, 0, true
	err := decPlanFor(rv.Type().Elem())(d, rv.Elem(), 0)
	d.b, d.shared = nil, false // do not retain the caller's frame
	decPool.Put(d)
	return err
}

// An Encoder writes NDR values to an underlying writer. Each Encode stages
// the value in an internal plan buffer and flushes it with a single Write.
type Encoder struct {
	w io.Writer
	s encState
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode writes one value.
func (e *Encoder) Encode(v any) error {
	e.s.b = e.s.b[:0]
	if err := e.s.encodeRoot(v); err != nil {
		return err
	}
	_, err := e.w.Write(e.s.b)
	return err
}

// A Decoder reads NDR values from an underlying reader.
type Decoder struct {
	s decState
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.ByteReader) *Decoder {
	d := &Decoder{}
	d.s.r = r
	return d
}

// Decode reads one value into the non-nil pointer out.
func (d *Decoder) Decode(out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return errNotPointer
	}
	return decPlanFor(rv.Type().Elem())(&d.s, rv.Elem(), 0)
}

// exportedFields returns indices of exported, non-skipped fields in order.
// Fields tagged `ndr:"-"` are skipped.
func exportedFields(t reflect.Type) []int {
	out := make([]int, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		if f.Tag.Get("ndr") == "-" {
			continue
		}
		out = append(out, i)
	}
	return out
}

// byteReader adapts a byte slice to io.ByteReader.
type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.i >= len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	c := r.b[r.i]
	r.i++
	return c, nil
}

// NewByteReader wraps data in an io.ByteReader suitable for NewDecoder.
func NewByteReader(data []byte) io.ByteReader { return &byteReader{b: data} }

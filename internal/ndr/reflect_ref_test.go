package ndr

// This file preserves the original reflection-driven codec verbatim as an
// executable reference implementation. The production path (plan.go)
// compiles per-type codec plans; golden and fuzz tests cross-check it
// against this reference so any wire-format or acceptance divergence is an
// immediate test failure. Test-only: it does not ship in binaries.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"time"
)

// refMarshal encodes v into a fresh byte slice using the reference codec.
func refMarshal(v any) ([]byte, error) {
	var buf refWriter
	e := refEncoder{w: &buf}
	if err := e.encode(v); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// refUnmarshal decodes data into out using the reference codec.
func refUnmarshal(data []byte, out any) error {
	d := refDecoder{r: &byteReader{b: data}}
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return fmt.Errorf("ndr: decode target must be a non-nil pointer")
	}
	return d.decodeValue(rv.Elem(), 0)
}

type refEncoder struct {
	w io.Writer
}

func (e *refEncoder) encode(v any) error {
	if v == nil {
		return e.writeByte(tagNil)
	}
	return e.encodeValue(reflect.ValueOf(v), 0)
}

func (e *refEncoder) encodeValue(v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	t := v.Type()

	switch t {
	case timeType:
		if err := e.writeByte(tagTime); err != nil {
			return err
		}
		tv, ok := v.Interface().(time.Time)
		if !ok {
			return ErrTypeMismatch
		}
		b, err := tv.MarshalBinary()
		if err != nil {
			return fmt.Errorf("ndr: marshal time: %w", err)
		}
		return e.writeLenBytes(b)
	case durationType:
		if err := e.writeByte(tagDuration); err != nil {
			return err
		}
		return e.writeVarint(v.Int())
	}

	switch t.Kind() {
	case reflect.Bool:
		if err := e.writeByte(tagBool); err != nil {
			return err
		}
		if v.Bool() {
			return e.writeByte(1)
		}
		return e.writeByte(0)

	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if err := e.writeByte(tagInt); err != nil {
			return err
		}
		return e.writeVarint(v.Int())

	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if err := e.writeByte(tagUint); err != nil {
			return err
		}
		return e.writeUvarint(v.Uint())

	case reflect.Float32:
		if err := e.writeByte(tagFloat32); err != nil {
			return err
		}
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(float32(v.Float())))
		_, err := e.w.Write(b[:])
		return err

	case reflect.Float64:
		if err := e.writeByte(tagFloat64); err != nil {
			return err
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Float()))
		_, err := e.w.Write(b[:])
		return err

	case reflect.String:
		if err := e.writeByte(tagString); err != nil {
			return err
		}
		return e.writeLenBytes([]byte(v.String()))

	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			if err := e.writeByte(tagBytes); err != nil {
				return err
			}
			if v.IsNil() {
				return e.writeUvarint(0)
			}
			return e.writeLenBytes(v.Bytes())
		}
		if err := e.writeByte(tagSlice); err != nil {
			return err
		}
		return e.encodeSeq(v, depth)

	case reflect.Array:
		if err := e.writeByte(tagArray); err != nil {
			return err
		}
		return e.encodeSeq(v, depth)

	case reflect.Map:
		if err := e.writeByte(tagMap); err != nil {
			return err
		}
		n := v.Len()
		if n > maxElems {
			return fmt.Errorf("ndr: map too large: %d", n)
		}
		if err := e.writeUvarint(uint64(n)); err != nil {
			return err
		}
		keys := v.MapKeys()
		refSortKeys(keys)
		for _, k := range keys {
			if err := e.encodeValue(k, depth+1); err != nil {
				return err
			}
			if err := e.encodeValue(v.MapIndex(k), depth+1); err != nil {
				return err
			}
		}
		return nil

	case reflect.Struct:
		if err := e.writeByte(tagStruct); err != nil {
			return err
		}
		fields := exportedFields(t)
		if err := e.writeUvarint(uint64(len(fields))); err != nil {
			return err
		}
		for _, i := range fields {
			if err := e.encodeValue(v.Field(i), depth+1); err != nil {
				return fmt.Errorf("ndr: field %s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
		return nil

	case reflect.Ptr:
		if err := e.writeByte(tagPtr); err != nil {
			return err
		}
		if v.IsNil() {
			return e.writeByte(0)
		}
		if err := e.writeByte(1); err != nil {
			return err
		}
		return e.encodeValue(v.Elem(), depth+1)

	case reflect.Interface:
		if v.IsNil() {
			return e.writeByte(tagNil)
		}
		elem := v.Elem()
		registry.RLock()
		name, ok := registry.byType[elem.Type()]
		registry.RUnlock()
		if !ok {
			return fmt.Errorf("ndr: unregistered interface payload %v", elem.Type())
		}
		if err := e.writeByte(tagIface); err != nil {
			return err
		}
		if err := e.writeLenBytes([]byte(name)); err != nil {
			return err
		}
		return e.encodeValue(elem, depth+1)

	default:
		return fmt.Errorf("ndr: unsupported kind %v", t.Kind())
	}
}

func (e *refEncoder) encodeSeq(v reflect.Value, depth int) error {
	n := v.Len()
	if n > maxElems {
		return fmt.Errorf("ndr: sequence too large: %d", n)
	}
	if err := e.writeUvarint(uint64(n)); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := e.encodeValue(v.Index(i), depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (e *refEncoder) writeByte(b byte) error {
	_, err := e.w.Write([]byte{b})
	return err
}

func (e *refEncoder) writeVarint(x int64) error {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], x)
	_, err := e.w.Write(b[:n])
	return err
}

func (e *refEncoder) writeUvarint(x uint64) error {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], x)
	_, err := e.w.Write(b[:n])
	return err
}

func (e *refEncoder) writeLenBytes(p []byte) error {
	if len(p) > maxByteLen {
		return fmt.Errorf("ndr: byte payload too large: %d", len(p))
	}
	if err := e.writeUvarint(uint64(len(p))); err != nil {
		return err
	}
	_, err := e.w.Write(p)
	return err
}

type refDecoder struct {
	r io.ByteReader
}

func (d *refDecoder) decodeValue(v reflect.Value, depth int) error {
	if depth > maxDepth {
		return ErrTooDeep
	}
	tag, err := d.r.ReadByte()
	if err != nil {
		return fmt.Errorf("ndr: read tag: %w", err)
	}

	switch tag {
	case tagNil:
		v.Set(reflect.Zero(v.Type()))
		return nil

	case tagBool:
		b, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Bool {
			return d.mismatch("bool", v)
		}
		v.SetBool(b != 0)
		return nil

	case tagInt:
		x, err := binary.ReadVarint(d.r)
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			if v.OverflowInt(x) {
				return fmt.Errorf("ndr: int overflow into %v", v.Type())
			}
			v.SetInt(x)
			return nil
		}
		return d.mismatch("int", v)

	case tagUint:
		x, err := binary.ReadUvarint(d.r)
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if v.OverflowUint(x) {
				return fmt.Errorf("ndr: uint overflow into %v", v.Type())
			}
			v.SetUint(x)
			return nil
		}
		return d.mismatch("uint", v)

	case tagFloat32:
		var b [4]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		f := math.Float32frombits(binary.LittleEndian.Uint32(b[:]))
		switch v.Kind() {
		case reflect.Float32, reflect.Float64:
			v.SetFloat(float64(f))
			return nil
		}
		return d.mismatch("float32", v)

	case tagFloat64:
		var b [8]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
		switch v.Kind() {
		case reflect.Float32, reflect.Float64:
			v.SetFloat(f)
			return nil
		}
		return d.mismatch("float64", v)

	case tagString:
		p, err := d.readLenBytes()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.String {
			return d.mismatch("string", v)
		}
		v.SetString(string(p))
		return nil

	case tagBytes:
		p, err := d.readLenBytes()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Slice || v.Type().Elem().Kind() != reflect.Uint8 {
			return d.mismatch("[]byte", v)
		}
		v.SetBytes(p)
		return nil

	case tagSlice:
		n, err := d.readCount()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Slice {
			return d.mismatch("slice", v)
		}
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			if err := d.decodeValue(s.Index(i), depth+1); err != nil {
				return err
			}
		}
		v.Set(s)
		return nil

	case tagArray:
		n, err := d.readCount()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Array {
			return d.mismatch("array", v)
		}
		if n != v.Len() {
			return fmt.Errorf("ndr: array length %d does not match wire %d", v.Len(), n)
		}
		for i := 0; i < n; i++ {
			if err := d.decodeValue(v.Index(i), depth+1); err != nil {
				return err
			}
		}
		return nil

	case tagMap:
		n, err := d.readCount()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Map {
			return d.mismatch("map", v)
		}
		m := reflect.MakeMapWithSize(v.Type(), n)
		for i := 0; i < n; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			if err := d.decodeValue(k, depth+1); err != nil {
				return err
			}
			val := reflect.New(v.Type().Elem()).Elem()
			if err := d.decodeValue(val, depth+1); err != nil {
				return err
			}
			m.SetMapIndex(k, val)
		}
		v.Set(m)
		return nil

	case tagStruct:
		n, err := d.readCount()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Struct {
			return d.mismatch("struct", v)
		}
		fields := exportedFields(v.Type())
		if n != len(fields) {
			return fmt.Errorf("ndr: struct %v has %d exported fields, wire has %d",
				v.Type(), len(fields), n)
		}
		for _, i := range fields {
			if err := d.decodeValue(v.Field(i), depth+1); err != nil {
				return fmt.Errorf("ndr: field %s.%s: %w",
					v.Type().Name(), v.Type().Field(i).Name, err)
			}
		}
		return nil

	case tagPtr:
		flag, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Ptr {
			return d.mismatch("pointer", v)
		}
		if flag == 0 {
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		p := reflect.New(v.Type().Elem())
		if err := d.decodeValue(p.Elem(), depth+1); err != nil {
			return err
		}
		v.Set(p)
		return nil

	case tagTime:
		p, err := d.readLenBytes()
		if err != nil {
			return err
		}
		if v.Type() != timeType {
			return d.mismatch("time.Time", v)
		}
		var tv time.Time
		if err := tv.UnmarshalBinary(p); err != nil {
			return fmt.Errorf("ndr: unmarshal time: %w", err)
		}
		v.Set(reflect.ValueOf(tv))
		return nil

	case tagDuration:
		x, err := binary.ReadVarint(d.r)
		if err != nil {
			return err
		}
		if v.Type() != durationType && v.Kind() != reflect.Int64 {
			return d.mismatch("time.Duration", v)
		}
		v.SetInt(x)
		return nil

	case tagIface:
		nameB, err := d.readLenBytes()
		if err != nil {
			return err
		}
		registry.RLock()
		ct, ok := registry.byName[string(nameB)]
		registry.RUnlock()
		if !ok {
			return fmt.Errorf("ndr: unknown registered type %q", nameB)
		}
		target := reflect.New(ct).Elem()
		if err := d.decodeValue(target, depth+1); err != nil {
			return err
		}
		if v.Kind() != reflect.Interface {
			return d.mismatch("interface", v)
		}
		if !ct.Implements(v.Type()) && v.Type().NumMethod() != 0 {
			return fmt.Errorf("ndr: %v does not implement %v", ct, v.Type())
		}
		v.Set(target)
		return nil

	default:
		return fmt.Errorf("ndr: unknown wire tag %d", tag)
	}
}

func (d *refDecoder) mismatch(wire string, v reflect.Value) error {
	return fmt.Errorf("%w: wire %s, destination %v", ErrTypeMismatch, wire, v.Type())
}

func (d *refDecoder) readFull(p []byte) error {
	for i := range p {
		b, err := d.r.ReadByte()
		if err != nil {
			return err
		}
		p[i] = b
	}
	return nil
}

func (d *refDecoder) readCount() (int, error) {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, err
	}
	if n > maxElems {
		return 0, fmt.Errorf("ndr: element count too large: %d", n)
	}
	return int(n), nil
}

func (d *refDecoder) readLenBytes() ([]byte, error) {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, err
	}
	if n > maxByteLen {
		return nil, fmt.Errorf("ndr: byte payload too large: %d", n)
	}
	p := make([]byte, n)
	if err := d.readFull(p); err != nil {
		return nil, err
	}
	return p, nil
}

// refSortKeys is the reference's per-call key ordering (the plan compiler
// resolves the comparator once per map type instead).
func refSortKeys(keys []reflect.Value) {
	if len(keys) < 2 {
		return
	}
	switch keys[0].Kind() {
	case reflect.String:
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		sort.Slice(keys, func(i, j int) bool { return keys[i].Int() < keys[j].Int() })
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		sort.Slice(keys, func(i, j int) bool { return keys[i].Uint() < keys[j].Uint() })
	case reflect.Float32, reflect.Float64:
		sort.Slice(keys, func(i, j int) bool { return keys[i].Float() < keys[j].Float() })
	default:
		sort.Slice(keys, func(i, j int) bool {
			return fmt.Sprint(keys[i].Interface()) < fmt.Sprint(keys[j].Interface())
		})
	}
}

type refWriter struct{ b []byte }

func (w *refWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Package linkproxy is a controllable per-link TCP relay for the black-box
// e2e harness. Every oftt-node daemon dials its peers through one Proxy per
// directed node pair, so the harness can impose real network faults on real
// sockets: full cuts (connections die, new dials are refused), one-way cuts
// (bytes in one direction stall, modelling asymmetric partition — the
// sender backs up against TCP flow control and its frames arrive only after
// the heal), and added latency.
//
// A Proxy listens immediately but forwards only once a backend is set, so
// the harness can bind every proxy before any daemon exists and point
// daemons at proxy addresses from birth; backends are learned from daemon
// address files afterwards, and can be re-set when a killed daemon respawns
// on a fresh port.
package linkproxy

import (
	"errors"
	"net"
	"sync"
	"time"
)

// Direction selects which data flow a one-way cut stalls.
type Direction int

// Directions, named from the dialing node's perspective.
const (
	// ToBackend stalls client→backend bytes (the dialer's requests).
	ToBackend Direction = iota
	// ToClient stalls backend→client bytes (the responses).
	ToClient
)

// Proxy is one controllable TCP relay.
type Proxy struct {
	name string
	ln   net.Listener

	mu      sync.Mutex
	backend string
	cut     bool
	dirCut  [2]bool
	latency time.Duration
	conns   map[net.Conn]struct{}
	closed  bool
	gen     int // bumped on every cut/heal so stalled pumps recheck
	cond    *sync.Cond
}

// New binds a proxy on 127.0.0.1 (ephemeral port). It refuses connections
// until SetBackend is called.
func New(name string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{name: name, ln: ln, conns: make(map[net.Conn]struct{})}
	p.cond = sync.NewCond(&p.mu)
	go p.acceptLoop()
	return p, nil
}

// Name returns the proxy's label (e.g. "n1->n2").
func (p *Proxy) Name() string { return p.name }

// Addr is the address daemons dial (the proxy's listen address).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetBackend points the proxy at the real destination ("host:port"). May
// be called again when the destination respawns on a new port.
func (p *Proxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// Cut severs the link completely: every open connection is closed and new
// connections are refused until Heal.
func (p *Proxy) Cut() {
	p.mu.Lock()
	p.cut = true
	p.gen++
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// CutDirection stalls one data direction on every current and future
// connection. Unlike Cut, connections stay open: the stalled side backs up
// against TCP flow control, and buffered bytes flow again on Heal —
// modelling an asymmetric network outage rather than a peer crash.
func (p *Proxy) CutDirection(d Direction) {
	p.mu.Lock()
	p.dirCut[d] = true
	p.gen++
	p.mu.Unlock()
}

// SetLatency adds a per-chunk forwarding delay in both directions (0
// clears).
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// Heal restores the link: clears full and directional cuts (latency is
// governed separately by SetLatency).
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.cut = false
	p.dirCut[ToBackend] = false
	p.dirCut[ToClient] = false
	p.gen++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Close shuts the proxy down and closes every relayed connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	_ = p.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
}

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		refuse := p.cut || p.closed || p.backend == ""
		backend := p.backend
		p.mu.Unlock()
		if refuse {
			_ = c.Close()
			continue
		}
		go p.relay(c, backend)
	}
}

func (p *Proxy) relay(client net.Conn, backend string) {
	server, err := net.DialTimeout("tcp", backend, 2*time.Second)
	if err != nil {
		_ = client.Close()
		return
	}
	p.mu.Lock()
	if p.cut || p.closed {
		p.mu.Unlock()
		_ = client.Close()
		_ = server.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	p.mu.Unlock()

	done := make(chan struct{}, 2)
	go func() { p.pump(server, client, ToBackend); done <- struct{}{} }()
	go func() { p.pump(client, server, ToClient); done <- struct{}{} }()
	<-done
	<-done
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, server)
	p.mu.Unlock()
}

// pump copies src→dst, honouring the direction gate and latency. While the
// direction is cut it stops reading, so the kernel buffers fill and the
// sender stalls — TCP backpressure, the realistic face of a one-way cut.
func (p *Proxy) pump(dst, src net.Conn, dir Direction) {
	defer func() {
		_ = dst.Close()
		_ = src.Close()
	}()
	buf := make([]byte, 32<<10)
	for {
		if !p.waitOpen(dir) {
			return
		}
		n, err := src.Read(buf)
		if n > 0 {
			// Re-check the gate: a cut that landed while this pump was
			// blocked in Read holds the chunk until the heal (in-flight
			// data is delayed behind the cut, not leaked past it).
			if !p.waitOpen(dir) {
				return
			}
			if lat := p.currentLatency(); lat > 0 {
				time.Sleep(lat)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// waitOpen blocks while dir is cut; returns false when the proxy is fully
// cut or closed (the pump should exit — its connections are being closed).
func (p *Proxy) waitOpen(dir Direction) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.dirCut[dir] && !p.cut && !p.closed {
		p.cond.Wait()
	}
	return !p.cut && !p.closed
}

func (p *Proxy) currentLatency() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latency
}

// ErrNoBackend is returned by Dial helpers when no backend is set.
var ErrNoBackend = errors.New("linkproxy: backend not set")

// Link pairs the two directed proxies of one node pair (a→b and b→a) and
// exposes fault operations with network semantics: a full partition cuts
// both, a one-way cut of "a→b traffic" stalls a's requests on the a→b proxy
// and a's responses on the b→a proxy (data flowing toward b stalls on every
// connection, whoever dialed it).
type Link struct {
	A, B   string // node names
	AtoB   *Proxy // dialed by A, backend B
	BtoA   *Proxy // dialed by B, backend A
	mu     sync.Mutex
	flap   chan struct{}
	flapWG sync.WaitGroup
}

// NewLink builds the proxy pair for nodes a and b.
func NewLink(a, b string) (*Link, error) {
	ab, err := New(a + "->" + b)
	if err != nil {
		return nil, err
	}
	ba, err := New(b + "->" + a)
	if err != nil {
		ab.Close()
		return nil, err
	}
	return &Link{A: a, B: b, AtoB: ab, BtoA: ba}, nil
}

// Cut partitions the pair completely (both directions, both proxies).
func (l *Link) Cut() {
	l.AtoB.Cut()
	l.BtoA.Cut()
}

// CutOneWay stalls all data flowing from node `from` to the other node:
// requests on from's dialed proxy and responses on the reverse proxy.
func (l *Link) CutOneWay(from string) {
	if from == l.A {
		l.AtoB.CutDirection(ToBackend)
		l.BtoA.CutDirection(ToClient)
	} else {
		l.BtoA.CutDirection(ToBackend)
		l.AtoB.CutDirection(ToClient)
	}
}

// SetLatency applies a forwarding delay to both proxies (0 clears).
func (l *Link) SetLatency(d time.Duration) {
	l.AtoB.SetLatency(d)
	l.BtoA.SetLatency(d)
}

// Flap toggles the link down/up with the given half-period until Heal.
func (l *Link) Flap(halfPeriod time.Duration) {
	l.mu.Lock()
	if l.flap != nil {
		l.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	l.flap = stop
	l.flapWG.Add(1)
	l.mu.Unlock()
	go func() {
		defer l.flapWG.Done()
		down := false
		t := time.NewTicker(halfPeriod)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if down {
					l.AtoB.Heal()
					l.BtoA.Heal()
				} else {
					l.Cut()
				}
				down = !down
			}
		}
	}()
}

// Heal stops flapping and restores both directions.
func (l *Link) Heal() {
	l.mu.Lock()
	if l.flap != nil {
		close(l.flap)
		l.flap = nil
	}
	l.mu.Unlock()
	l.flapWG.Wait()
	l.AtoB.Heal()
	l.BtoA.Heal()
}

// Close closes both proxies.
func (l *Link) Close() {
	l.mu.Lock()
	if l.flap != nil {
		close(l.flap)
		l.flap = nil
	}
	l.mu.Unlock()
	l.flapWG.Wait()
	l.AtoB.Close()
	l.BtoA.Close()
}

// Has reports whether the link touches node n.
func (l *Link) Has(n string) bool { return l.A == n || l.B == n }

// Other returns the far end of the link from n.
func (l *Link) Other(n string) string {
	if l.A == n {
		return l.B
	}
	return l.A
}

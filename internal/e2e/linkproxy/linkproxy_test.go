package linkproxy

import (
	"net"
	"testing"
	"time"

	"repro/internal/netsim"
)

// echoServer accepts framed connections and echoes every frame back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := netsim.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Skipf("sockets restricted: %v", err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					b, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(b); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr()
}

func dialVia(t *testing.T, p *Proxy) *netsim.TCPConn {
	t.Helper()
	c, err := netsim.DialTCP(p.Addr())
	if err != nil {
		t.Fatalf("dial via proxy: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func roundTrip(c *netsim.TCPConn, payload string, timeout time.Duration) (string, error) {
	if err := c.Send([]byte(payload)); err != nil {
		return "", err
	}
	b, err := c.RecvTimeout(timeout)
	return string(b), err
}

func TestProxyRelaysFrames(t *testing.T) {
	backend := echoServer(t)
	p, err := New("t")
	if err != nil {
		t.Skipf("sockets restricted: %v", err)
	}
	defer p.Close()
	p.SetBackend(backend)

	c := dialVia(t, p)
	got, err := roundTrip(c, "hello", 2*time.Second)
	if err != nil || got != "hello" {
		t.Fatalf("round trip = %q, %v", got, err)
	}
}

func TestProxyRefusesWithoutBackend(t *testing.T) {
	p, err := New("t")
	if err != nil {
		t.Skipf("sockets restricted: %v", err)
	}
	defer p.Close()
	c, err := netsim.DialTCP(p.Addr())
	if err != nil {
		return // refused at dial: fine
	}
	defer c.Close()
	if _, err := c.RecvTimeout(2 * time.Second); err == nil {
		t.Fatal("expected closed connection without a backend")
	}
}

func TestProxyFullCutKillsAndRefuses(t *testing.T) {
	backend := echoServer(t)
	p, err := New("t")
	if err != nil {
		t.Skipf("sockets restricted: %v", err)
	}
	defer p.Close()
	p.SetBackend(backend)

	c := dialVia(t, p)
	if _, err := roundTrip(c, "x", 2*time.Second); err != nil {
		t.Fatalf("pre-cut round trip: %v", err)
	}
	p.Cut()
	// The existing connection dies.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := roundTrip(c, "y", 200*time.Millisecond); err != nil {
			break
		}
	}
	if _, err := roundTrip(c, "z", 200*time.Millisecond); err == nil {
		t.Fatal("connection survived a full cut")
	}
	// New connections are refused (accepted then closed, or dial error).
	if c2, err := net.DialTimeout("tcp", p.Addr(), time.Second); err == nil {
		one := []byte{0, 0, 0, 1, 'a'}
		_, _ = c2.Write(one)
		_ = c2.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 16)
		if n, err := c2.Read(buf); err == nil && n > 0 {
			t.Fatal("cut proxy still relays new connections")
		}
		_ = c2.Close()
	}
	// Heal restores service for new connections.
	p.Heal()
	c3 := dialVia(t, p)
	if got, err := roundTrip(c3, "back", 2*time.Second); err != nil || got != "back" {
		t.Fatalf("post-heal round trip = %q, %v", got, err)
	}
}

func TestProxyOneWayCutStallsThenResumes(t *testing.T) {
	backend := echoServer(t)
	p, err := New("t")
	if err != nil {
		t.Skipf("sockets restricted: %v", err)
	}
	defer p.Close()
	p.SetBackend(backend)

	c := dialVia(t, p)
	if _, err := roundTrip(c, "warm", 2*time.Second); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	p.CutDirection(ToBackend)
	time.Sleep(50 * time.Millisecond) // let the pump reach its gate
	if err := c.Send([]byte("stalled")); err != nil {
		t.Fatalf("send during one-way cut: %v", err)
	}
	if b, err := c.RecvTimeout(300 * time.Millisecond); err == nil {
		t.Fatalf("frame %q crossed a cut direction", b)
	}
	p.Heal()
	// The stalled frame flows after the heal — delayed, not lost.
	b, err := c.RecvTimeout(2 * time.Second)
	if err != nil || string(b) != "stalled" {
		t.Fatalf("post-heal recv = %q, %v (want the stalled frame)", b, err)
	}
}

func TestLinkOneWaySemantics(t *testing.T) {
	backendB := echoServer(t)
	l, err := NewLink("a", "b")
	if err != nil {
		t.Skipf("sockets restricted: %v", err)
	}
	defer l.Close()
	l.AtoB.SetBackend(backendB)

	// a dials b through AtoB. Cutting a→b data stalls a's requests.
	c := dialVia(t, l.AtoB)
	if _, err := roundTrip(c, "ok", 2*time.Second); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	l.CutOneWay("a")
	time.Sleep(50 * time.Millisecond)
	_ = c.Send([]byte("blocked"))
	if b, err := c.RecvTimeout(300 * time.Millisecond); err == nil {
		t.Fatalf("frame %q crossed the a->b cut", b)
	}
	l.Heal()
	if b, err := c.RecvTimeout(2 * time.Second); err != nil || string(b) != "blocked" {
		t.Fatalf("post-heal recv = %q, %v", b, err)
	}
}

// Package feed is the e2e deployment's message source: the black-box
// analog of the in-process diverter. A Feeder generates a steady stream
// of numbered messages and publishes each one, over DCOM on real TCP, to
// whichever daemon currently acknowledges as primary — retrying every
// message until acked (at-least-once delivery, like the diverter's
// buffered divert path).
//
// The feeder keeps a delivery ledger: ids generated (enqueued), ids acked
// (delivered), ids still pending. Acked-message loss is then auditable
// black-box: after a campaign quiesces and the feeder drains, every
// delivered id must appear in the surviving primary's plant state.
//
// It runs inside `scadasim -feed` as its own OS process and serves the
// ledger over HTTP:
//
//	/ledger.json    current ledger snapshot
//	/drain          stop generating, flush pending, reply with the final
//	                snapshot (the harness calls this before auditing)
//	/healthz        liveness
//
// Daemon ingest addresses are learned from the daemons' addr-files and
// re-read whenever delivery fails, so a daemon respawned on fresh ports
// is rediscovered without coordination.
package feed

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/dcom"
	"repro/internal/e2e/nodehost"
)

// Config parameterizes a feeder.
type Config struct {
	// AddrFiles lists every daemon's addr-file path.
	AddrFiles []string
	// Every is the message generation period (default 15ms).
	Every time.Duration
	// HTTPAddr is the ledger endpoint listen address (default ephemeral).
	HTTPAddr string
	// Logf, when set, receives feeder lifecycle lines.
	Logf func(format string, args ...any)
}

// Snapshot is the ledger's JSON view.
type Snapshot struct {
	Enqueued     int64   `json:"enqueued"`
	Delivered    int64   `json:"delivered"`
	Pending      int     `json:"pending"`
	DeliveredIDs []int64 `json:"delivered_ids"`
}

// Feeder generates, publishes, and accounts for messages.
type Feeder struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	nextID    int64
	pending   []int64
	delivered []int64
	stopped   bool
	genOff    bool

	httpLn  net.Listener
	httpSrv *http.Server
	stopGen chan struct{}
	wg      sync.WaitGroup

	cliMu   sync.Mutex
	cli     *dcom.Client
	cliAddr string
}

// Start launches the generator, the sender, and the HTTP endpoint.
func Start(cfg Config) (*Feeder, error) {
	if cfg.Every <= 0 {
		cfg.Every = 15 * time.Millisecond
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	f := &Feeder{cfg: cfg, stopGen: make(chan struct{})}
	f.cond = sync.NewCond(&f.mu)

	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		return nil, fmt.Errorf("feed: http listen: %w", err)
	}
	f.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/ledger.json", f.handleLedger)
	mux.HandleFunc("/drain", f.handleDrain)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	f.httpSrv = &http.Server{Handler: mux}
	go func() { _ = f.httpSrv.Serve(ln) }()

	f.wg.Add(2)
	go f.generate()
	go f.send()
	cfg.Logf("feeder up: http=%s targets=%v every=%s", ln.Addr(), cfg.AddrFiles, cfg.Every)
	return f, nil
}

// HTTPAddr is the ledger endpoint's address.
func (f *Feeder) HTTPAddr() string { return f.httpLn.Addr().String() }

func (f *Feeder) generate() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.Every)
	defer t.Stop()
	for {
		select {
		case <-f.stopGen:
			return
		case <-t.C:
			f.mu.Lock()
			if !f.genOff {
				f.nextID++
				f.pending = append(f.pending, f.nextID)
				f.cond.Broadcast()
			}
			f.mu.Unlock()
		}
	}
}

// next blocks until a pending id exists (peeking, not popping — the id
// stays pending until acked) or the feeder stops.
func (f *Feeder) next() (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.pending) == 0 && !f.stopped {
		f.cond.Wait()
	}
	if f.stopped {
		return 0, false
	}
	return f.pending[0], true
}

func (f *Feeder) acked(id int64) {
	f.mu.Lock()
	if len(f.pending) > 0 && f.pending[0] == id {
		f.pending = f.pending[1:]
	}
	f.delivered = append(f.delivered, id)
	f.cond.Broadcast()
	f.mu.Unlock()
}

func (f *Feeder) send() {
	defer f.wg.Done()
	for {
		id, ok := f.next()
		if !ok {
			return
		}
		if f.publish(id) {
			f.acked(id)
			continue
		}
		// Nobody acked: primary mid-failover. Back off, then retry the
		// same id — delivery order is preserved, nothing is dropped.
		time.Sleep(50 * time.Millisecond)
	}
}

// publish tries the cached primary first, then every daemon found in the
// addr-files. True means some daemon acked.
func (f *Feeder) publish(id int64) bool {
	body := []byte(fmt.Sprintf("e2e-%d", id))
	if f.tryCached(id, body) {
		return true
	}
	for _, addr := range f.targets() {
		if f.tryAddr(addr, id, body) {
			return true
		}
	}
	return false
}

func (f *Feeder) tryCached(id int64, body []byte) bool {
	f.cliMu.Lock()
	cli := f.cli
	f.cliMu.Unlock()
	if cli == nil {
		return false
	}
	if err := cli.Object(nodehost.IngestOID).Call("Publish", nil, id, body); err != nil {
		f.dropClient(cli)
		return false
	}
	return true
}

func (f *Feeder) tryAddr(addr string, id int64, body []byte) bool {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	cli, err := dcom.DialTCPContext(ctx, addr)
	cancel()
	if err != nil {
		return false
	}
	cli.SetTimeout(time.Second)
	if err := cli.Object(nodehost.IngestOID).Call("Publish", nil, id, body); err != nil {
		cli.Close()
		return false
	}
	f.cliMu.Lock()
	old := f.cli
	f.cli, f.cliAddr = cli, addr
	f.cliMu.Unlock()
	if old != nil {
		old.Close()
	}
	return true
}

func (f *Feeder) dropClient(cli *dcom.Client) {
	f.cliMu.Lock()
	if f.cli == cli {
		f.cli = nil
		f.cliAddr = ""
	}
	f.cliMu.Unlock()
	cli.Close()
}

// targets re-reads every addr-file for current ingest addresses.
func (f *Feeder) targets() []string {
	var out []string
	for _, path := range f.cfg.AddrFiles {
		b, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var info nodehost.AddrInfo
		if json.Unmarshal(b, &info) != nil || info.Ingest == "" {
			continue
		}
		out = append(out, info.Ingest)
	}
	return out
}

// Ledger snapshots the current accounting.
func (f *Feeder) Ledger() Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Snapshot{
		Enqueued:     f.nextID,
		Delivered:    int64(len(f.delivered)),
		Pending:      len(f.pending),
		DeliveredIDs: append([]int64(nil), f.delivered...),
	}
}

// Drain stops generation and waits until every pending message is acked
// or the timeout passes. Returns the final snapshot and whether the
// queue fully drained.
func (f *Feeder) Drain(timeout time.Duration) (Snapshot, bool) {
	f.mu.Lock()
	f.genOff = true
	f.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		f.mu.Lock()
		empty := len(f.pending) == 0
		f.mu.Unlock()
		if empty {
			return f.Ledger(), true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return f.Ledger(), false
}

func (f *Feeder) handleLedger(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(f.Ledger())
}

func (f *Feeder) handleDrain(w http.ResponseWriter, r *http.Request) {
	timeout := 10 * time.Second
	if v := r.URL.Query().Get("timeout"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			timeout = d
		}
	}
	snap, drained := f.Drain(timeout)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Snapshot
		Drained bool `json:"drained"`
	}{snap, drained})
}

// Close stops the feeder: generation off, sender released, HTTP down.
func (f *Feeder) Close() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	f.genOff = true
	f.cond.Broadcast()
	f.mu.Unlock()
	close(f.stopGen)
	_ = f.httpSrv.Close()
	f.cliMu.Lock()
	cli := f.cli
	f.cli = nil
	f.cliMu.Unlock()
	if cli != nil {
		cli.Close()
	}
	f.wg.Wait()
	f.cfg.Logf("feeder down: %+v", f.Ledger())
}

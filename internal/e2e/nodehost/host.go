package nodehost

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/engine"
	"repro/internal/ftim"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// IngestOID identifies the daemon's feeder-facing ingest object, exported
// over DCOM on the ingest TCP port.
var IngestOID = com.MustParseGUID("{0f7e4a10-2222-4000-8000-0e0e0e0e0e77}")

// Config parameterizes one daemon.
type Config struct {
	// Name is this node's machine name.
	Name string
	// Peers maps every peer node name to the address this daemon dials to
	// reach it — normally that peer's link-proxy address, so the harness
	// can fault the path.
	Peers map[string]string
	// Seed drives the private island network and the cluster node.
	Seed int64

	// HeartbeatInterval is the engine beat period (default 25ms).
	HeartbeatInterval time.Duration
	// PeerTimeout declares a peer dead after this silence (default 10x
	// heartbeat — generous because beats cross real sockets on a possibly
	// loaded machine).
	PeerTimeout time.Duration
	// CheckpointPeriod is the plant's checkpoint interval (default 50ms).
	CheckpointPeriod time.Duration
	// PlantTick is the plant scan-loop period (default 10ms).
	PlantTick time.Duration

	// Adaptive selects the adaptive recovery policy instead of the static
	// per-rule one.
	Adaptive bool

	// StoreDir, when set, persists the checkpoint store as a segmented
	// WAL under this directory; a daemon restart replays it instead of
	// starting cold.
	StoreDir string
	// OpLog drives plant mutations through the continuous op-log lane:
	// each tick/ingest ships as an op between checkpoint anchors, keeping
	// backups hot instead of checkpoint-stale.
	OpLog bool
	// CkptCompress enables flate compression on the checkpoint stream.
	CkptCompress bool
	// CkptChunk overrides the checkpoint stream chunk size in bytes
	// (default checkpoint.DefaultChunkSize, 256KiB).
	CkptChunk int

	// HTTPAddr and IngestAddr are listen addresses (default ephemeral
	// loopback ports).
	HTTPAddr   string
	IngestAddr string

	// Logf, when set, receives daemon lifecycle lines.
	Logf func(format string, args ...any)
}

// AddrInfo is the JSON document a daemon publishes (via -addr-file) so the
// harness can find its listeners.
type AddrInfo struct {
	Name   string `json:"name"`
	Bridge string `json:"bridge"`
	HTTP   string `json:"http"`
	Ingest string `json:"ingest"`
	PID    int    `json:"pid"`
}

// StateDoc is the /state.json response: the black-box view of one daemon.
type StateDoc struct {
	Node      string `json:"node"`
	Role      string `json:"role"`
	AppActive bool   `json:"app_active"`
	Seq       int64  `json:"seq"`
	Ingested  int    `json:"ingested"`

	// Checkpoint data-plane health: the harness audits these after fault
	// campaigns (corrupt frames must be counted, not silently absorbed).
	CkptRecvCorrupt int64 `json:"ckpt_recv_corrupt"`
	StreamInflight  int64 `json:"ckpt_stream_inflight"`
	StreamResumes   int64 `json:"ckpt_stream_resumes"`
	WALSegments     int64 `json:"wal_segments"`
	WALBytes        int64 `json:"wal_bytes"`
	WALCompactions  int64 `json:"wal_compactions"`
	OpLogLagOps     int   `json:"oplog_lag_ops"`
	OpLogLagBytes   int64 `json:"oplog_lag_bytes"`
	StandbyLive     bool  `json:"standby_live"`
}

// Host is one running daemon.
type Host struct {
	cfg    Config
	hub    *telemetry.Hub
	island *netsim.Network
	node   *cluster.Node
	bridge *Bridge
	eng    *engine.Engine

	ingest  *dcom.Exporter
	httpLn  net.Listener
	httpSrv *http.Server

	mu     sync.Mutex
	f      *ftim.ClientFTIM
	plant  *Plant
	proc   *cluster.Process
	closed bool
}

func (c *Config) applyDefaults() error {
	if c.Name == "" {
		return errors.New("nodehost: Name required")
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 10 * c.HeartbeatInterval
	}
	if c.CheckpointPeriod <= 0 {
		c.CheckpointPeriod = 50 * time.Millisecond
	}
	if c.PlantTick <= 0 {
		c.PlantTick = 10 * time.Millisecond
	}
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.IngestAddr == "" {
		c.IngestAddr = "127.0.0.1:0"
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Start assembles and runs a daemon: island network, bridge, engine,
// FTIM-linked plant, ingest exporter, and telemetry HTTP server.
func Start(cfg Config) (*Host, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	h := &Host{cfg: cfg, hub: telemetry.NewHub(4096)}

	h.island = netsim.New("island-"+cfg.Name, cfg.Seed)
	h.node = cluster.NewNode(cfg.Name, cfg.Seed, h.island)

	bridge, err := NewBridge(h.island, cfg.Name, cfg.Peers)
	if err != nil {
		return nil, err
	}
	h.bridge = bridge

	peerNames := make([]string, 0, len(cfg.Peers))
	for name := range cfg.Peers {
		peerNames = append(peerNames, name)
	}
	sort.Strings(peerNames)

	var pol engine.RecoveryPolicy
	if cfg.Adaptive {
		pol = &engine.AdaptivePolicy{}
	}
	eng, err := engine.NewWithError(h.node, engine.Config{
		Peers:               peerNames,
		HeartbeatInterval:   cfg.HeartbeatInterval,
		PeerTimeout:         cfg.PeerTimeout,
		Policy:              pol,
		Metrics:             h.hub.Metrics(),
		StoreDir:            cfg.StoreDir,
		CheckpointChunkSize: cfg.CkptChunk,
		CheckpointCompress:  cfg.CkptCompress,
		// The default 1s ack timeout is sized for quiet networks; under
		// chaos a cut link buffers sends until this deadline, and every
		// deadline's worth of plant updates is state the backups never
		// saw. Keep it a small multiple of the checkpoint period so a
		// stalled replica bounds, not balloons, the loss window.
		CheckpointAckTimeout: 3 * cfg.CheckpointPeriod,
	}, h.hub)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.eng = eng
	engProc, err := h.node.StartProcess("oftt-engine", func(stop <-chan struct{}) { <-stop })
	if err != nil {
		h.Close()
		return nil, err
	}
	if err := eng.Start(engProc); err != nil {
		h.Close()
		return nil, err
	}

	if err := h.buildPlant(false); err != nil {
		h.Close()
		return nil, err
	}

	exp, err := dcom.NewExporterTCP(cfg.IngestAddr)
	if err != nil {
		h.Close()
		return nil, fmt.Errorf("nodehost: ingest listen: %w", err)
	}
	h.ingest = exp
	if err := exp.Export(IngestOID, &ingestStub{h: h}); err != nil {
		h.Close()
		return nil, err
	}

	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		h.Close()
		return nil, fmt.Errorf("nodehost: http listen: %w", err)
	}
	h.httpLn = ln
	mux := http.NewServeMux()
	mux.Handle("/", h.hub.Handler())
	mux.HandleFunc("/state.json", h.handleState)
	mux.HandleFunc("/ids.json", h.handleIDs)
	h.httpSrv = &http.Server{Handler: mux}
	go func() { _ = h.httpSrv.Serve(ln) }()

	cfg.Logf("nodehost %s up: bridge=%s http=%s ingest=%s adaptive=%v",
		cfg.Name, bridge.Addr(), ln.Addr(), exp.Addr(), cfg.Adaptive)
	return h, nil
}

// buildPlant assembles the plant and its FTIM link; reattach preserves the
// engine's component entry (and restart budget) across local restarts.
func (h *Host) buildPlant(reattach bool) error {
	proc, err := h.node.StartProcess("plant", func(stop <-chan struct{}) { <-stop })
	if err != nil {
		return err
	}
	plant := NewPlant(h.cfg.PlantTick, h.cfg.OpLog)
	var opCfg *ftim.OpLogConfig
	if h.cfg.OpLog {
		opCfg = &ftim.OpLogConfig{Apply: plant.ApplyOp}
	}
	f, err := ftim.InitializeDeferred(ftim.Config{
		Component:        "plant",
		Engine:           h.eng,
		CheckpointPeriod: h.cfg.CheckpointPeriod,
		Rule:             engine.RecoveryRule{MaxLocalRestarts: 1, Exhausted: engine.ExhaustSwitchover},
		Reattach:         reattach,
		Metrics:          h.hub.Metrics(),
		OpLog:            opCfg,
		Restart:          h.restartPlant,
		// Activation is the daemon's service-restored moment: close the
		// recovery trace the failure detector opened so bounded-recovery
		// audits see a complete detect→…→recovered timeline. On first
		// startup no trace is open and the span is dropped as an orphan.
		OnActivate: func(restored bool) {
			plant.Activate(restored)
			h.hub.RecordSpan(telemetry.SpanEvent{
				Node:      h.cfg.Name,
				Component: "plant",
				Phase:     telemetry.PhaseRecovered,
				Detail:    fmt.Sprintf("plant active (restored=%v)", restored),
			})
		},
		OnDeactivate: plant.Deactivate,
	})
	if err != nil {
		proc.Stop()
		return fmt.Errorf("nodehost: initialize FTIM: %w", err)
	}
	if err := plant.Setup(f); err != nil {
		f.Shutdown()
		proc.Stop()
		return fmt.Errorf("nodehost: plant setup: %w", err)
	}
	proc.OnKill(f.Crash)

	h.mu.Lock()
	h.f, h.plant, h.proc = f, plant, proc
	h.mu.Unlock()
	return f.AttachContext(context.Background())
}

// restartPlant is the engine's local recovery provision: tear down the
// plant copy and rebuild it against the existing component entry.
func (h *Host) restartPlant() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return errors.New("nodehost: host closed")
	}
	oldF, oldPlant, oldProc := h.f, h.plant, h.proc
	h.f, h.plant, h.proc = nil, nil, nil
	h.mu.Unlock()
	if oldF != nil {
		oldF.Crash()
	}
	if oldProc != nil {
		oldProc.Kill()
	}
	if oldPlant != nil {
		oldPlant.Stop()
	}
	h.island.RestorePrefix(h.cfg.Name + ":plant")
	return h.buildPlant(true)
}

// currentPlant returns the live plant copy (nil mid-restart).
func (h *Host) currentPlant() *Plant {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.plant
}

// Engine exposes the daemon's engine (for in-process tests).
func (h *Host) Engine() *engine.Engine { return h.eng }

// Hub exposes the daemon's telemetry hub.
func (h *Host) Hub() *telemetry.Hub { return h.hub }

// AddrInfo reports the daemon's listener addresses.
func (h *Host) AddrInfo() AddrInfo {
	return AddrInfo{
		Name:   h.cfg.Name,
		Bridge: h.bridge.Addr(),
		HTTP:   h.httpLn.Addr().String(),
		Ingest: string(h.ingest.Addr()),
		PID:    os.Getpid(),
	}
}

// State is the black-box state document (also served at /state.json).
func (h *Host) State() StateDoc {
	doc := StateDoc{Node: h.cfg.Name, Role: h.eng.Role().String()}
	if p := h.currentPlant(); p != nil {
		doc.Seq, doc.Ingested = p.Snapshot()
		p.mu.Lock()
		doc.AppActive = p.active
		p.mu.Unlock()
	}
	// Data-plane gauges come straight off the engine's instruments in the
	// hub registry (get-or-create: reading before the first event is 0).
	reg := h.hub.Metrics()
	nl := `{node="` + h.cfg.Name + `"}`
	doc.CkptRecvCorrupt = reg.Counter("oftt_ckpt_recv_corrupt_total" + nl).Value()
	doc.StreamInflight = reg.Gauge("oftt_ckpt_stream_inflight_chunks" + nl).Value()
	doc.StreamResumes = reg.Counter("oftt_ckpt_stream_resumes_total" + nl).Value()
	doc.WALSegments = reg.Gauge("oftt_ckpt_wal_segments" + nl).Value()
	doc.WALBytes = reg.Gauge("oftt_ckpt_wal_bytes" + nl).Value()
	doc.WALCompactions = reg.Counter("oftt_ckpt_wal_compactions_total" + nl).Value()
	h.mu.Lock()
	f := h.f
	h.mu.Unlock()
	if f != nil {
		doc.OpLogLagOps, doc.OpLogLagBytes = f.OpLogLag()
		doc.StandbyLive = f.StandbyLive()
	}
	return doc
}

func (h *Host) handleState(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h.State())
}

// handleIDs serves the full ingested-id list so the harness can audit
// acked deliveries against surviving plant state after a campaign.
func (h *Host) handleIDs(w http.ResponseWriter, _ *http.Request) {
	var ids []int64
	if p := h.currentPlant(); p != nil {
		ids = p.IDs()
	}
	if ids == nil {
		ids = []int64{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ids)
}

// ingestMsg acknowledges one feeder message iff this daemon is the
// executing primary holding a live lease; anything else is an error the
// feeder retries elsewhere. The lease fence (not a bare role check)
// matters under real faults: a SIGSTOPped primary that resumes still
// thinks it is primary until the successor's beats reach it, and a bare
// role check would let it ack a burst of queued feeder messages that
// then vanish when its state is overwritten — see Engine.HoldsLease.
func (h *Host) ingestMsg(id int64) error {
	if !h.eng.HoldsLease() {
		return fmt.Errorf("nodehost: %s not primary", h.cfg.Name)
	}
	p := h.currentPlant()
	if p == nil || !p.Ingest(id) {
		return fmt.Errorf("nodehost: %s plant not active", h.cfg.Name)
	}
	return nil
}

// ingestStub is the DCOM-exported ingest surface.
type ingestStub struct{ h *Host }

// Publish records one message; the reply is the delivery ack.
func (s *ingestStub) Publish(id int64, _ []byte) error {
	return s.h.ingestMsg(id)
}

// Close shuts the daemon down: HTTP, ingest, plant, engine, bridge.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	f, plant := h.f, h.plant
	h.f, h.plant, h.proc = nil, nil, nil
	h.mu.Unlock()

	if h.httpSrv != nil {
		_ = h.httpSrv.Close()
	}
	if h.ingest != nil {
		h.ingest.Close()
	}
	if f != nil {
		f.Shutdown()
	}
	if plant != nil {
		plant.Stop()
	}
	if h.eng != nil {
		h.eng.Stop()
	}
	if h.bridge != nil {
		h.bridge.Close()
	}
	h.cfg.Logf("nodehost %s down", h.cfg.Name)
}

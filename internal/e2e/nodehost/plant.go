package nodehost

import (
	"sync"
	"time"

	"repro/internal/ftim"
)

// plantState is the checkpointed state of the daemon's replicated
// application: a monotonic work sequence (the process-control scan loop)
// plus the ids of every acknowledged ingest message. Both are captured by
// the FTIM checkpoint cycle, so a promoted backup resumes from the last
// confirmed checkpoint — the black-box harness checks Seq never regresses
// past the allowed window and no acked id is lost.
type plantState struct {
	Seq int64
	Ids []int64
}

// Plant is the daemon's replicated application: the e2e analog of the
// chaos Probe, driven by real OS-process faults instead of simulated ones.
// Only the active (primary) copy ticks and ingests; backups hold restored
// state and wait.
type Plant struct {
	tick time.Duration

	mu     sync.Mutex
	f      *ftim.ClientFTIM
	active bool
	stopC  chan struct{}
	doneC  chan struct{}

	// state and seen are guarded by the FTIM state lock, not mu: the
	// checkpoint cycle captures state under that lock.
	state plantState
	seen  map[int64]struct{}
}

// NewPlant builds a plant ticking its sequence every `tick`.
func NewPlant(tick time.Duration) *Plant {
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	return &Plant{tick: tick}
}

// Setup registers the plant's checkpointed state with the FTIM.
func (p *Plant) Setup(f *ftim.ClientFTIM) error {
	p.mu.Lock()
	p.f = f
	p.mu.Unlock()
	return f.RegisterState("plant", &p.state)
}

// Activate starts executing: rebuild the dedup index from (possibly
// restored) state and run the scan loop.
func (p *Plant) Activate(bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active || p.f == nil {
		return
	}
	p.active = true
	seen := make(map[int64]struct{})
	p.f.WithLock(func() {
		for _, id := range p.state.Ids {
			seen[id] = struct{}{}
		}
		p.seen = seen
	})
	p.stopC = make(chan struct{})
	p.doneC = make(chan struct{})
	go p.run(p.f, p.stopC, p.doneC)
}

// Deactivate stops the scan loop; state stays for the next activation.
func (p *Plant) Deactivate() {
	p.mu.Lock()
	if !p.active {
		p.mu.Unlock()
		return
	}
	p.active = false
	stop, done := p.stopC, p.doneC
	p.mu.Unlock()
	close(stop)
	<-done
}

// Stop is Deactivate (the plant owns no other resources).
func (p *Plant) Stop() { p.Deactivate() }

func (p *Plant) run(f *ftim.ClientFTIM, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(p.tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			f.WithLock(func() { p.state.Seq++ })
		}
	}
}

// Ingest records one feeder message. Returns true when the message is
// acknowledged (recorded now, or a duplicate of one already recorded —
// at-least-once delivery makes duplicates normal), false when this copy
// is not executing and must not ack.
func (p *Plant) Ingest(id int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active || p.f == nil {
		return false
	}
	p.f.WithLock(func() {
		if _, dup := p.seen[id]; dup {
			return
		}
		p.seen[id] = struct{}{}
		p.state.Ids = append(p.state.Ids, id)
	})
	return true
}

// IDs returns a copy of every ingested message id.
func (p *Plant) IDs() []int64 {
	p.mu.Lock()
	f := p.f
	p.mu.Unlock()
	if f == nil {
		return nil
	}
	var ids []int64
	f.WithLock(func() {
		ids = append([]int64(nil), p.state.Ids...)
	})
	return ids
}

// Snapshot reports the current sequence and ingested-id count.
func (p *Plant) Snapshot() (seq int64, ingested int) {
	p.mu.Lock()
	f := p.f
	p.mu.Unlock()
	if f == nil {
		return 0, 0
	}
	f.WithLock(func() {
		seq = p.state.Seq
		ingested = len(p.state.Ids)
	})
	return seq, ingested
}

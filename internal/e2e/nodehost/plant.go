package nodehost

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ftim"
)

// plantState is the checkpointed state of the daemon's replicated
// application: a monotonic work sequence (the process-control scan loop)
// plus the ids of every acknowledged ingest message. Both are captured by
// the FTIM checkpoint cycle, so a promoted backup resumes from the last
// confirmed checkpoint — the black-box harness checks Seq never regresses
// past the allowed window and no acked id is lost.
type plantState struct {
	Seq int64
	Ids []int64
}

// Plant is the daemon's replicated application: the e2e analog of the
// chaos Probe, driven by real OS-process faults instead of simulated ones.
// Only the active (primary) copy ticks and ingests; backups hold restored
// state and wait.
type Plant struct {
	tick time.Duration
	ops  bool // mutations ride the continuous op-log lane

	mu     sync.Mutex
	f      *ftim.ClientFTIM
	active bool
	stopC  chan struct{}
	doneC  chan struct{}

	// state and seen are guarded by the FTIM state lock, not mu: the
	// checkpoint cycle captures state under that lock.
	state plantState
	seen  map[int64]struct{}
}

// NewPlant builds a plant ticking its sequence every `tick`. With useOps
// set, every mutation goes through ftim.Mutate so backups follow the
// primary op-by-op instead of checkpoint-by-checkpoint.
func NewPlant(tick time.Duration, useOps bool) *Plant {
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	return &Plant{tick: tick, ops: useOps}
}

// Plant op encoding: one type byte, then an op-specific payload.
const (
	plantOpTick   = 0x01 // no payload: Seq++
	plantOpIngest = 0x02 // 8-byte LE message id
)

func tickOp() []byte { return []byte{plantOpTick} }

func ingestOp(id int64) []byte {
	b := make([]byte, 9)
	b[0] = plantOpIngest
	binary.LittleEndian.PutUint64(b[1:], uint64(id))
	return b
}

// ApplyOp interprets one plant op against the registered state. It runs
// under the FTIM state lock on both sides of the wire: via Mutate on the
// primary, via the shipped op stream on a hot standby.
func (p *Plant) ApplyOp(op []byte) error {
	if len(op) == 0 {
		return errors.New("plant: empty op")
	}
	switch op[0] {
	case plantOpTick:
		p.state.Seq++
	case plantOpIngest:
		if len(op) < 9 {
			return errors.New("plant: short ingest op")
		}
		id := int64(binary.LittleEndian.Uint64(op[1:9]))
		if p.seen == nil {
			p.seen = make(map[int64]struct{}, len(p.state.Ids))
			for _, v := range p.state.Ids {
				p.seen[v] = struct{}{}
			}
		}
		if _, dup := p.seen[id]; dup {
			return nil
		}
		p.seen[id] = struct{}{}
		p.state.Ids = append(p.state.Ids, id)
	default:
		return fmt.Errorf("plant: unknown op 0x%02x", op[0])
	}
	return nil
}

// Setup registers the plant's checkpointed state with the FTIM.
func (p *Plant) Setup(f *ftim.ClientFTIM) error {
	p.mu.Lock()
	p.f = f
	p.mu.Unlock()
	return f.RegisterState("plant", &p.state)
}

// Activate starts executing: rebuild the dedup index from (possibly
// restored) state and run the scan loop.
func (p *Plant) Activate(bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active || p.f == nil {
		return
	}
	p.active = true
	seen := make(map[int64]struct{})
	p.f.WithLock(func() {
		for _, id := range p.state.Ids {
			seen[id] = struct{}{}
		}
		p.seen = seen
	})
	p.stopC = make(chan struct{})
	p.doneC = make(chan struct{})
	go p.run(p.f, p.stopC, p.doneC)
}

// Deactivate stops the scan loop; state stays for the next activation.
func (p *Plant) Deactivate() {
	p.mu.Lock()
	if !p.active {
		p.mu.Unlock()
		return
	}
	p.active = false
	stop, done := p.stopC, p.doneC
	p.mu.Unlock()
	close(stop)
	<-done
}

// Stop is Deactivate (the plant owns no other resources).
func (p *Plant) Stop() { p.Deactivate() }

func (p *Plant) run(f *ftim.ClientFTIM, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(p.tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if p.ops {
				// A failed Mutate (role flapped mid-tick) just skips the
				// beat; the scan loop retries next tick.
				_ = f.Mutate(tickOp())
			} else {
				f.WithLock(func() { p.state.Seq++ })
			}
		}
	}
}

// Ingest records one feeder message. Returns true when the message is
// acknowledged (recorded now, or a duplicate of one already recorded —
// at-least-once delivery makes duplicates normal), false when this copy
// is not executing and must not ack.
func (p *Plant) Ingest(id int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active || p.f == nil {
		return false
	}
	if p.ops {
		// ApplyOp dedupes under the state lock, so a duplicate is an
		// acked no-op here just as in the direct path.
		return p.f.Mutate(ingestOp(id)) == nil
	}
	p.f.WithLock(func() {
		if _, dup := p.seen[id]; dup {
			return
		}
		p.seen[id] = struct{}{}
		p.state.Ids = append(p.state.Ids, id)
	})
	return true
}

// IDs returns a copy of every ingested message id.
func (p *Plant) IDs() []int64 {
	p.mu.Lock()
	f := p.f
	p.mu.Unlock()
	if f == nil {
		return nil
	}
	var ids []int64
	f.WithLock(func() {
		ids = append([]int64(nil), p.state.Ids...)
	})
	return ids
}

// Snapshot reports the current sequence and ingested-id count.
func (p *Plant) Snapshot() (seq int64, ingested int) {
	p.mu.Lock()
	f := p.f
	p.mu.Unlock()
	if f == nil {
		return 0, 0
	}
	f.WithLock(func() {
		seq = p.state.Seq
		ingested = len(p.state.Ids)
	})
	return seq, ingested
}

package nodehost

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dcom"
	"repro/internal/e2e/linkproxy"
	"repro/internal/engine"
)

// trio wires three in-process hosts through link proxies over real TCP —
// the smallest island-bridge deployment.
type trio struct {
	hosts map[string]*Host
	links map[string]*linkproxy.Link // keyed "a|b"
}

func startTrio(t *testing.T, adaptive bool) *trio {
	t.Helper()
	return startTrioCfg(t, adaptive, nil)
}

func startTrioCfg(t *testing.T, adaptive bool, tune func(name string, c *Config)) *trio {
	t.Helper()
	names := []string{"n1", "n2", "n3"}
	pairs := [][2]string{{"n1", "n2"}, {"n1", "n3"}, {"n2", "n3"}}

	tr := &trio{hosts: map[string]*Host{}, links: map[string]*linkproxy.Link{}}
	for _, pr := range pairs {
		l, err := linkproxy.NewLink(pr[0], pr[1])
		if err != nil {
			t.Skipf("sockets restricted: %v", err)
		}
		t.Cleanup(l.Close)
		tr.links[pr[0]+"|"+pr[1]] = l
	}
	// Each node dials a peer through its own directed proxy.
	dialAddr := func(from, to string) string {
		if l, ok := tr.links[from+"|"+to]; ok {
			return l.AtoB.Addr()
		}
		return tr.links[to+"|"+from].BtoA.Addr()
	}
	for _, name := range names {
		peers := map[string]string{}
		for _, p := range names {
			if p != name {
				peers[p] = dialAddr(name, p)
			}
		}
		cfg := Config{
			Name:              name,
			Peers:             peers,
			Seed:              42,
			HeartbeatInterval: 25 * time.Millisecond,
			PeerTimeout:       250 * time.Millisecond,
			PlantTick:         10 * time.Millisecond,
			Adaptive:          adaptive,
		}
		if tune != nil {
			tune(name, &cfg)
		}
		h, err := Start(cfg)
		if err != nil {
			t.Skipf("cannot start host (sockets restricted?): %v", err)
		}
		t.Cleanup(h.Close)
		tr.hosts[name] = h
	}
	// Point every proxy at the daemon behind it.
	for key, l := range tr.links {
		_ = key
		l.AtoB.SetBackend(tr.hosts[l.B].bridge.Addr())
		l.BtoA.SetBackend(tr.hosts[l.A].bridge.Addr())
	}
	return tr
}

// awaitPrimary waits for exactly one primary with an active plant among
// the given hosts and returns its name.
func (tr *trio) awaitPrimary(t *testing.T, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		primary, n := "", 0
		for name, h := range tr.hosts {
			if h.Engine().Role() == engine.RolePrimary {
				primary = name
				n++
			}
		}
		if n == 1 && tr.hosts[primary].State().AppActive {
			return primary
		}
		time.Sleep(20 * time.Millisecond)
	}
	var roles []string
	for name, h := range tr.hosts {
		roles = append(roles, fmt.Sprintf("%s=%s", name, h.Engine().Role()))
	}
	t.Fatalf("no single active primary within %s: %v", timeout, roles)
	return ""
}

func TestTrioElectsPrimaryOverTCP(t *testing.T) {
	tr := startTrio(t, false)
	primary := tr.awaitPrimary(t, 15*time.Second)

	// The plant scan loop runs on the primary.
	h := tr.hosts[primary]
	start := h.State().Seq
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && h.State().Seq <= start {
		time.Sleep(20 * time.Millisecond)
	}
	if seq := h.State().Seq; seq <= start {
		t.Fatalf("plant seq stuck at %d on primary %s", seq, primary)
	}
}

func TestTrioIngestAcksOnlyAtPrimary(t *testing.T) {
	tr := startTrio(t, false)
	primary := tr.awaitPrimary(t, 15*time.Second)

	cli, err := dcom.DialTCP(tr.hosts[primary].AddrInfo().Ingest)
	if err != nil {
		t.Fatalf("dial primary ingest: %v", err)
	}
	defer cli.Close()
	obj := cli.Object(IngestOID)
	if err := obj.Call("Publish", nil, int64(1), []byte("m1")); err != nil {
		t.Fatalf("publish at primary: %v", err)
	}
	// Duplicate delivery is acked, not double-counted.
	if err := obj.Call("Publish", nil, int64(1), []byte("m1")); err != nil {
		t.Fatalf("duplicate publish: %v", err)
	}
	if got := tr.hosts[primary].State().Ingested; got != 1 {
		t.Fatalf("ingested = %d, want 1 (dedup)", got)
	}

	// A backup must refuse the ack.
	for name, h := range tr.hosts {
		if name == primary {
			continue
		}
		bcli, err := dcom.DialTCP(h.AddrInfo().Ingest)
		if err != nil {
			t.Fatalf("dial backup ingest: %v", err)
		}
		if err := bcli.Object(IngestOID).Call("Publish", nil, int64(2), []byte("m2")); err == nil {
			t.Fatalf("backup %s acked a publish", name)
		}
		bcli.Close()
		break
	}
}

// TestTrioOpLogAndWALStateDoc runs the full production-size-state stack
// over real TCP: WAL-backed stores, compressed streaming checkpoints, and
// op-log-driven plant mutations — then audits the /state.json data-plane
// fields the black-box harness relies on.
func TestTrioOpLogAndWALStateDoc(t *testing.T) {
	base := t.TempDir()
	tr := startTrioCfg(t, false, func(name string, c *Config) {
		c.StoreDir = base + "/" + name
		c.OpLog = true
		c.CkptCompress = true
		c.CkptChunk = 64 << 10
		c.CheckpointPeriod = 100 * time.Millisecond
	})
	primary := tr.awaitPrimary(t, 15*time.Second)
	h := tr.hosts[primary]

	// The scan loop now advances through Mutate: Seq must still move.
	start := h.State().Seq
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && h.State().Seq <= start {
		time.Sleep(20 * time.Millisecond)
	}
	if seq := h.State().Seq; seq <= start {
		t.Fatalf("op-log plant seq stuck at %d", seq)
	}

	// Ingest (also an op now) still acks and dedups at the primary.
	cli, err := dcom.DialTCP(h.AddrInfo().Ingest)
	if err != nil {
		t.Fatalf("dial ingest: %v", err)
	}
	defer cli.Close()
	obj := cli.Object(IngestOID)
	for _, id := range []int64{7, 7, 8} {
		if err := obj.Call("Publish", nil, id, []byte("m")); err != nil {
			t.Fatalf("publish %d: %v", id, err)
		}
	}
	if got := h.State().Ingested; got != 2 {
		t.Fatalf("ingested = %d, want 2 (dedup through ops)", got)
	}

	// The op stream keeps a backup hot, and the WAL store persists the
	// chain: both must show up in the state documents.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		live, wal := 0, 0
		for name, bh := range tr.hosts {
			doc := bh.State()
			if name != primary && doc.StandbyLive {
				live++
			}
			if doc.WALSegments >= 1 && doc.WALBytes > 0 {
				wal++
			}
		}
		if live >= 1 && wal >= 1 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	for name, bh := range tr.hosts {
		doc := bh.State()
		t.Logf("%s: live=%v walSegs=%d walBytes=%d lagOps=%d",
			name, doc.StandbyLive, doc.WALSegments, doc.WALBytes, doc.OpLogLagOps)
	}
	t.Fatal("no live standby or WAL activity in state docs")
}

func TestTrioFailoverPromotesBackup(t *testing.T) {
	tr := startTrio(t, false)
	first := tr.awaitPrimary(t, 15*time.Second)
	lostSeq := tr.hosts[first].State().Seq

	// Kill the primary (host teardown — the in-process stand-in for a real
	// SIGKILL, which the exec harness exercises).
	tr.hosts[first].Close()
	delete(tr.hosts, first)

	second := tr.awaitPrimary(t, 15*time.Second)
	if second == first {
		t.Fatalf("dead node %s still primary", first)
	}
	// The promoted plant resumes and overtakes the lost primary's sequence.
	h := tr.hosts[second]
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && h.State().Seq <= lostSeq {
		time.Sleep(20 * time.Millisecond)
	}
	if seq := h.State().Seq; seq <= lostSeq {
		t.Fatalf("promoted plant seq %d never passed lost primary's %d", seq, lostSeq)
	}
}

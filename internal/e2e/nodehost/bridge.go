// Package nodehost assembles one real oftt-node daemon: an unmodified OFTT
// engine plus an FTIM-linked replicated application, running standalone in
// its own OS process and talking to its peers over real TCP sockets.
//
// The engine's wire protocols (DCOM control RPC, heartbeat datagrams,
// checkpoint streams) are written against netsim endpoints, addressed as
// "<node>:<service>". Rather than fork the engine for a second transport,
// each daemon runs the engine on a private in-process netsim network — an
// island with exactly one inhabitant — and a Bridge splices the island's
// edges onto real sockets:
//
//   - For every peer P, the bridge binds the island endpoints the engine
//     expects P to own ("P:engine-rpc", "P:engine-ckpt", "P:engine-hb").
//     Traffic the engine sends there is pumped frame-for-frame over a TCP
//     connection to P's daemon — via a harness-controlled link proxy, so
//     real network faults apply.
//   - A real TCP listener accepts peer connections. The first frame is a
//     routing header "<svc>|<from>"; subsequent frames are relayed into
//     the island toward this node's own engine endpoints (or injected into
//     its heartbeat socket for the datagram service).
//
// Both netsim conns and TCP conns speak the same FrameConn interface with
// identical 4-byte framing, so the pumps preserve protocol byte streams
// exactly; the engine cannot tell it left the simulator.
package nodehost

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
)

// hbDialTimeout bounds the heartbeat forwarder's lazy dial. Beats are
// datagrams: a peer that cannot be reached loses them (that is the point —
// the failure detector must see silence).
const hbDialTimeout = 500 * time.Millisecond

// svcDialTimeout bounds per-connection dials for rpc/ckpt streams.
const svcDialTimeout = 2 * time.Second

// Bridge splices a daemon's private netsim island onto real TCP.
type Bridge struct {
	self   string
	island *netsim.Network
	peers  map[string]string // peer name -> dial address (link proxy)

	ln  *netsim.TCPListener // inbound from peers
	inj *netsim.DatagramSock
	lns []*netsim.Listener
	hbs []*netsim.DatagramSock

	mu     sync.Mutex
	conns  map[*netsim.TCPConn]struct{}
	closed bool

	inSeq uint64
	wg    sync.WaitGroup
}

// NewBridge binds the island edges for every peer and the real inbound
// listener (127.0.0.1, ephemeral port).
func NewBridge(island *netsim.Network, self string, peers map[string]string) (*Bridge, error) {
	ln, err := netsim.ListenTCP("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("nodehost: bridge listen: %w", err)
	}
	b := &Bridge{
		self:   self,
		island: island,
		peers:  peers,
		ln:     ln,
		conns:  make(map[*netsim.TCPConn]struct{}),
	}
	inj, err := island.ListenDatagram(netsim.Addr("bridge:inject"))
	if err != nil {
		b.Close()
		return nil, fmt.Errorf("nodehost: bridge injector: %w", err)
	}
	b.inj = inj
	for name, addr := range peers {
		if err := b.bindPeer(name, addr); err != nil {
			b.Close()
			return nil, err
		}
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr is the real address peers dial (directly or via their proxies).
func (b *Bridge) Addr() string { return b.ln.Addr() }

// bindPeer claims the island endpoints the engine addresses as peer
// `name` and starts the outbound forwarders toward `addr`.
func (b *Bridge) bindPeer(name, addr string) error {
	rpcLn, err := b.island.Listen(netsim.Addr(name + ":engine-rpc"))
	if err != nil {
		return fmt.Errorf("nodehost: bind %s rpc edge: %w", name, err)
	}
	b.lns = append(b.lns, rpcLn)
	ckptLn, err := b.island.Listen(netsim.Addr(name + ":engine-ckpt"))
	if err != nil {
		return fmt.Errorf("nodehost: bind %s ckpt edge: %w", name, err)
	}
	b.lns = append(b.lns, ckptLn)
	hbSock, err := b.island.ListenDatagram(netsim.Addr(name + ":engine-hb"))
	if err != nil {
		return fmt.Errorf("nodehost: bind %s hb edge: %w", name, err)
	}
	b.hbs = append(b.hbs, hbSock)

	b.wg.Add(3)
	go b.outboundAccept(rpcLn, "rpc", addr)
	go b.outboundAccept(ckptLn, "ckpt", addr)
	go b.hbForward(hbSock, addr)
	return nil
}

// outboundAccept turns every island connection the engine opens toward a
// peer into a TCP connection to that peer's bridge.
func (b *Bridge) outboundAccept(ln *netsim.Listener, svc, addr string) {
	defer b.wg.Done()
	for {
		ic, err := ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.outboundConn(ic, svc, addr)
		}()
	}
}

func (b *Bridge) outboundConn(ic *netsim.Conn, svc, addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), svcDialTimeout)
	tc, err := netsim.DialTCPContext(ctx, addr)
	cancel()
	if err != nil {
		_ = ic.Close()
		return
	}
	if err := tc.Send([]byte(svc + "|" + b.self)); err != nil {
		_ = ic.Close()
		_ = tc.Close()
		return
	}
	if !b.track(tc) {
		_ = ic.Close()
		_ = tc.Close()
		return
	}
	pumpPair(ic, tc)
	b.untrack(tc)
}

// hbForward drains the engine's beats addressed to one peer onto a lazily
// dialed, persistent TCP connection. Dial or send failure drops the beat
// and resets the connection — datagram semantics over a stream carrier.
func (b *Bridge) hbForward(sock *netsim.DatagramSock, addr string) {
	defer b.wg.Done()
	var conn *netsim.TCPConn
	drop := func() {
		if conn != nil {
			b.untrack(conn)
			_ = conn.Close()
			conn = nil
		}
	}
	defer drop()
	for {
		d, err := sock.Recv()
		if err != nil {
			return
		}
		if conn == nil {
			ctx, cancel := context.WithTimeout(context.Background(), hbDialTimeout)
			c, err := netsim.DialTCPContext(ctx, addr)
			cancel()
			if err != nil {
				continue // beat lost, as a datagram would be
			}
			if err := c.Send([]byte("hb|" + b.self)); err != nil {
				_ = c.Close()
				continue
			}
			if !b.track(c) {
				_ = c.Close()
				return
			}
			conn = c
		}
		if err := conn.Send(d.Payload); err != nil {
			drop()
		}
	}
}

// acceptLoop serves inbound peer connections.
func (b *Bridge) acceptLoop() {
	defer b.wg.Done()
	for {
		tc, err := b.ln.Accept()
		if err != nil {
			return
		}
		if !b.track(tc) {
			_ = tc.Close()
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer b.untrack(tc)
			defer tc.Close()
			b.serveInbound(tc)
		}()
	}
}

// serveInbound reads the routing header and relays the rest of the stream
// into the island toward this node's own engine endpoints.
func (b *Bridge) serveInbound(tc *netsim.TCPConn) {
	h, err := tc.RecvTimeout(5 * time.Second)
	if err != nil {
		return
	}
	svc, from, ok := strings.Cut(string(h), "|")
	if !ok || from == "" {
		return
	}
	src := netsim.Addr(fmt.Sprintf("bridge:in-%s-%d", from, atomic.AddUint64(&b.inSeq, 1)))
	switch svc {
	case "rpc":
		ic, err := b.island.Dial(src, netsim.Addr(b.self+":engine-rpc"))
		if err != nil {
			return
		}
		pumpPair(ic, tc)
	case "ckpt":
		ic, err := b.island.Dial(src, netsim.Addr(b.self+":engine-ckpt"))
		if err != nil {
			return
		}
		pumpPair(ic, tc)
	case "hb":
		to := netsim.Addr(b.self + ":engine-hb")
		for {
			f, err := tc.Recv()
			if err != nil {
				return
			}
			_ = b.inj.Send(to, f)
		}
	}
}

// pumpPair relays frames in both directions until either side dies, then
// closes both. Blocks until both pumps exit.
func pumpPair(a, bc netsim.FrameConn) {
	done := make(chan struct{}, 2)
	cp := func(dst, src netsim.FrameConn) {
		for {
			f, err := src.Recv()
			if err != nil {
				break
			}
			if err := dst.Send(f); err != nil {
				break
			}
		}
		_ = dst.Close()
		_ = src.Close()
		done <- struct{}{}
	}
	go cp(a, bc)
	go cp(bc, a)
	<-done
	<-done
}

// track registers a live TCP conn for teardown; false once closed.
func (b *Bridge) track(c *netsim.TCPConn) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.conns[c] = struct{}{}
	return true
}

func (b *Bridge) untrack(c *netsim.TCPConn) {
	b.mu.Lock()
	delete(b.conns, c)
	b.mu.Unlock()
}

// Close tears the bridge down: listeners, island edges, and every relayed
// connection.
func (b *Bridge) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	conns := make([]*netsim.TCPConn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.conns = nil
	b.mu.Unlock()

	_ = b.ln.Close()
	if b.inj != nil {
		_ = b.inj.Close()
	}
	for _, l := range b.lns {
		_ = l.Close()
	}
	for _, s := range b.hbs {
		_ = s.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	b.wg.Wait()
}

// Package e2e is the black-box multi-process chaos harness: it compiles
// the real oftt-node and scadasim binaries, spawns a genuine N-node
// deployment on real TCP loopback sockets — every inter-node link routed
// through a controllable proxy (internal/e2e/linkproxy) — plus a feeder
// process keeping a delivery ledger, and then drives the seeded
// internal/chaos campaign engine against the live PIDs:
//
//   - crashes are kill -9 of a daemon process
//   - hangs are SIGSTOP / SIGCONT
//   - partitions, one-way cuts, flaps, and latency are proxy faults on
//     the real sockets
//
// The four chaos invariants (eventually-single-primary, monotonic state,
// no acked-message loss, bounded recovery) are re-checked purely from the
// outside: HTTP scrapes of each daemon's /state.json and /traces.json and
// the feeder's ledger. Nothing in this package links against the engine.
package e2e

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/e2e/feed"
	"repro/internal/e2e/linkproxy"
	"repro/internal/e2e/nodehost"
)

// Options shapes one deployment.
type Options struct {
	// Nodes is the deployment size (default 3 — the smallest quorum).
	Nodes int
	// Seed parameterizes every daemon and the campaign schedule.
	Seed int64
	// Adaptive runs every engine under the adaptive recovery policy.
	Adaptive bool

	// Timing. Defaults are sized for real processes on a small machine:
	// heartbeats every 25ms over real sockets, peers declared dead after
	// 250ms, plant checkpoints every 50ms, plant ticks every 10ms, one
	// feeder message per 15ms.
	HeartbeatInterval time.Duration
	PeerTimeout       time.Duration
	CheckpointPeriod  time.Duration
	PlantTick         time.Duration
	FeedEvery         time.Duration

	// SpawnTimeout bounds waiting for a daemon's addr-file (default 20s).
	SpawnTimeout time.Duration

	// Logf receives harness progress lines (default: discard).
	Logf func(format string, args ...any)
}

func (o *Options) applyDefaults() {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 25 * time.Millisecond
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = 10 * o.HeartbeatInterval
	}
	if o.CheckpointPeriod <= 0 {
		o.CheckpointPeriod = 50 * time.Millisecond
	}
	if o.PlantTick <= 0 {
		o.PlantTick = 10 * time.Millisecond
	}
	if o.FeedEvery <= 0 {
		o.FeedEvery = 15 * time.Millisecond
	}
	if o.SpawnTimeout <= 0 {
		o.SpawnTimeout = 20 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// nodeProc is one spawned daemon.
type nodeProc struct {
	name  string
	peers map[string]string // fixed proxy addresses

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan struct{}
	info nodehost.AddrInfo
	hung bool
	dead bool
}

// Harness is one live deployment.
type Harness struct {
	opt   Options
	dir   string
	names []string
	links []*linkproxy.Link

	nodes map[string]*nodeProc

	feedMu   sync.Mutex
	feedCmd  *exec.Cmd
	feedDone chan struct{}
	feedAddr string

	scrape *http.Client
	slow   *http.Client
}

// buildOnce compiles the oftt-node and scadasim binaries once per test
// process, into a shared temp dir.
var buildOnce struct {
	sync.Once
	dir string
	err error
}

// Binaries returns the built daemon and feeder binary paths, compiling
// them on first call.
func Binaries() (node, scadasim string, err error) {
	buildOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			buildOnce.err = fmt.Errorf("locate module root: %w", err)
			return
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == "/dev/null" {
			buildOnce.err = fmt.Errorf("not inside a module")
			return
		}
		root := filepath.Dir(gomod)
		dir, err := os.MkdirTemp("", "oftt-e2e-bin-")
		if err != nil {
			buildOnce.err = err
			return
		}
		for _, pkg := range []string{"oftt-node", "scadasim"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, pkg), "./cmd/"+pkg)
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				buildOnce.err = fmt.Errorf("build %s: %v\n%s", pkg, err, out)
				return
			}
		}
		buildOnce.dir = dir
	})
	if buildOnce.err != nil {
		return "", "", buildOnce.err
	}
	return filepath.Join(buildOnce.dir, "oftt-node"), filepath.Join(buildOnce.dir, "scadasim"), nil
}

// Start builds binaries, wires the proxy mesh, and spawns the daemons and
// the feeder. dir holds addr-files and per-process logs (the caller owns
// its lifetime — tests pass t.TempDir()).
func Start(dir string, opt Options) (*Harness, error) {
	opt.applyDefaults()
	if _, _, err := Binaries(); err != nil {
		return nil, err
	}

	h := &Harness{
		opt:    opt,
		dir:    dir,
		nodes:  map[string]*nodeProc{},
		scrape: &http.Client{Timeout: 400 * time.Millisecond},
		slow:   &http.Client{Timeout: 30 * time.Second},
	}
	for i := 1; i <= opt.Nodes; i++ {
		h.names = append(h.names, fmt.Sprintf("n%d", i))
	}

	// Full proxy mesh: one Link (two directed proxies) per node pair.
	for i, a := range h.names {
		for _, b := range h.names[i+1:] {
			l, err := linkproxy.NewLink(a, b)
			if err != nil {
				h.Shutdown()
				return nil, fmt.Errorf("e2e: link %s-%s: %w", a, b, err)
			}
			h.links = append(h.links, l)
		}
	}

	for _, name := range h.names {
		peers := map[string]string{}
		for _, p := range h.names {
			if p != name {
				peers[p] = h.dialAddr(name, p)
			}
		}
		h.nodes[name] = &nodeProc{name: name, peers: peers}
	}
	for _, name := range h.names {
		if err := h.spawn(name); err != nil {
			h.Shutdown()
			return nil, err
		}
	}
	if err := h.spawnFeeder(); err != nil {
		h.Shutdown()
		return nil, err
	}
	return h, nil
}

// dialAddr is the proxy address node `from` dials to reach node `to`.
func (h *Harness) dialAddr(from, to string) string {
	for _, l := range h.links {
		if l.A == from && l.B == to {
			return l.AtoB.Addr()
		}
		if l.A == to && l.B == from {
			return l.BtoA.Addr()
		}
	}
	return ""
}

// Link returns the proxy pair between two nodes.
func (h *Harness) Link(a, b string) *linkproxy.Link {
	for _, l := range h.links {
		if l.Has(a) && l.Has(b) {
			return l
		}
	}
	return nil
}

// LinksOf returns every link touching a node.
func (h *Harness) LinksOf(name string) []*linkproxy.Link {
	var out []*linkproxy.Link
	for _, l := range h.links {
		if l.Has(name) {
			out = append(out, l)
		}
	}
	return out
}

// Links returns the full mesh.
func (h *Harness) Links() []*linkproxy.Link { return h.links }

// Names returns the node names.
func (h *Harness) Names() []string { return append([]string(nil), h.names...) }

// spawn launches (or relaunches) one daemon and waits for its addr-file,
// then points the mesh proxies that lead to it at its fresh bridge port.
func (h *Harness) spawn(name string) error {
	np := h.nodes[name]
	nodeBin, _, err := Binaries()
	if err != nil {
		return err
	}
	addrFile := filepath.Join(h.dir, name+".json")
	_ = os.Remove(addrFile)

	var peerSpec []string
	for p, addr := range np.peers {
		peerSpec = append(peerSpec, p+"="+addr)
	}
	sort.Strings(peerSpec)
	args := []string{
		"-name", name,
		"-peers", strings.Join(peerSpec, ","),
		"-seed", strconv.FormatInt(h.opt.Seed, 10),
		"-hb", h.opt.HeartbeatInterval.String(),
		"-peer-timeout", h.opt.PeerTimeout.String(),
		"-ckpt", h.opt.CheckpointPeriod.String(),
		"-tick", h.opt.PlantTick.String(),
		"-addr-file", addrFile,
	}
	if h.opt.Adaptive {
		args = append(args, "-adaptive")
	}
	cmd := exec.Command(nodeBin, args...)
	logf, err := os.OpenFile(filepath.Join(h.dir, name+".log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd.Stdout, cmd.Stderr = logf, logf
	// The daemon must not outlive the harness process.
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("e2e: spawn %s: %w", name, err)
	}
	done := make(chan struct{})
	go func() {
		_ = cmd.Wait()
		logf.Close()
		close(done)
	}()

	info, err := h.awaitAddrFile(addrFile, done)
	if err != nil {
		_ = cmd.Process.Kill()
		return fmt.Errorf("e2e: %s never published addresses: %w", name, err)
	}

	np.mu.Lock()
	np.cmd, np.done, np.info = cmd, done, info
	np.hung, np.dead = false, false
	np.mu.Unlock()

	// Proxies whose backend is this node learn the fresh bridge port.
	for _, l := range h.LinksOf(name) {
		if l.B == name {
			l.AtoB.SetBackend(info.Bridge)
		} else {
			l.BtoA.SetBackend(info.Bridge)
		}
	}
	h.opt.Logf("spawned %s pid=%d bridge=%s http=%s", name, cmd.Process.Pid, info.Bridge, info.HTTP)
	return nil
}

func (h *Harness) awaitAddrFile(path string, died <-chan struct{}) (nodehost.AddrInfo, error) {
	deadline := time.Now().Add(h.opt.SpawnTimeout)
	for time.Now().Before(deadline) {
		select {
		case <-died:
			return nodehost.AddrInfo{}, fmt.Errorf("process exited before publishing")
		default:
		}
		if b, err := os.ReadFile(path); err == nil {
			var info nodehost.AddrInfo
			if json.Unmarshal(b, &info) == nil && info.Bridge != "" {
				return info, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nodehost.AddrInfo{}, fmt.Errorf("timeout after %s", h.opt.SpawnTimeout)
}

func (h *Harness) spawnFeeder() error {
	_, simBin, err := Binaries()
	if err != nil {
		return err
	}
	var files []string
	for _, name := range h.names {
		files = append(files, filepath.Join(h.dir, name+".json"))
	}
	feedAddrFile := filepath.Join(h.dir, "feeder.addr")
	_ = os.Remove(feedAddrFile)
	cmd := exec.Command(simBin,
		"-feed",
		"-feed-addrs", strings.Join(files, ","),
		"-feed-every", h.opt.FeedEvery.String(),
		"-feed-addr-file", feedAddrFile,
	)
	logf, err := os.OpenFile(filepath.Join(h.dir, "feeder.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd.Stdout, cmd.Stderr = logf, logf
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("e2e: spawn feeder: %w", err)
	}
	done := make(chan struct{})
	go func() {
		_ = cmd.Wait()
		logf.Close()
		close(done)
	}()

	deadline := time.Now().Add(h.opt.SpawnTimeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(feedAddrFile); err == nil && len(b) > 0 {
			h.feedMu.Lock()
			h.feedCmd, h.feedDone, h.feedAddr = cmd, done, strings.TrimSpace(string(b))
			h.feedMu.Unlock()
			h.opt.Logf("spawned feeder pid=%d http=%s", cmd.Process.Pid, h.feedAddr)
			return nil
		}
		select {
		case <-done:
			return fmt.Errorf("e2e: feeder exited before publishing")
		default:
		}
		time.Sleep(50 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	return fmt.Errorf("e2e: feeder never published its address")
}

// --- process faults -----------------------------------------------------

// Kill SIGKILLs a daemon — a real crash.
func (h *Harness) Kill(name string) error {
	np := h.nodes[name]
	np.mu.Lock()
	defer np.mu.Unlock()
	if np.dead || np.cmd == nil {
		return fmt.Errorf("e2e: %s already dead", name)
	}
	np.dead = true
	np.hung = false
	return np.cmd.Process.Kill()
}

// Hang SIGSTOPs a daemon — a real scheduler-level hang: heartbeats stop,
// sockets stay open.
func (h *Harness) Hang(name string) error {
	np := h.nodes[name]
	np.mu.Lock()
	defer np.mu.Unlock()
	if np.dead || np.cmd == nil {
		return fmt.Errorf("e2e: %s is dead", name)
	}
	if np.hung {
		return nil
	}
	np.hung = true
	return syscall.Kill(np.cmd.Process.Pid, syscall.SIGSTOP)
}

// Resume SIGCONTs a hung daemon.
func (h *Harness) Resume(name string) error {
	np := h.nodes[name]
	np.mu.Lock()
	defer np.mu.Unlock()
	if np.dead || np.cmd == nil || !np.hung {
		return nil
	}
	np.hung = false
	return syscall.Kill(np.cmd.Process.Pid, syscall.SIGCONT)
}

// EnsureAlive respawns a node if it is dead — the repair for kill faults.
func (h *Harness) EnsureAlive(name string) error {
	np := h.nodes[name]
	np.mu.Lock()
	dead := np.dead
	np.mu.Unlock()
	if !dead {
		return nil
	}
	return h.spawn(name)
}

// Alive reports whether the daemon process is running (possibly hung).
func (h *Harness) Alive(name string) bool {
	np := h.nodes[name]
	np.mu.Lock()
	defer np.mu.Unlock()
	return np.cmd != nil && !np.dead
}

// Hung reports whether the daemon is SIGSTOPped.
func (h *Harness) Hung(name string) bool {
	np := h.nodes[name]
	np.mu.Lock()
	defer np.mu.Unlock()
	return np.hung
}

// Info returns a daemon's current listener addresses.
func (h *Harness) Info(name string) nodehost.AddrInfo {
	np := h.nodes[name]
	np.mu.Lock()
	defer np.mu.Unlock()
	return np.info
}

// --- observation --------------------------------------------------------

func (h *Harness) getJSON(cli *http.Client, addr, path string, v any) error {
	resp, err := cli.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s%s: %s", addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// States scrapes /state.json from every live daemon in parallel. Hung or
// dead daemons are simply absent — exactly what an outside observer sees.
func (h *Harness) States() map[string]nodehost.StateDoc {
	type res struct {
		name string
		doc  nodehost.StateDoc
		err  error
	}
	ch := make(chan res, len(h.names))
	n := 0
	for _, name := range h.names {
		np := h.nodes[name]
		np.mu.Lock()
		addr, dead := np.info.HTTP, np.dead
		np.mu.Unlock()
		if dead || addr == "" {
			continue
		}
		n++
		go func(name, addr string) {
			var doc nodehost.StateDoc
			err := h.getJSON(h.scrape, addr, "/state.json", &doc)
			ch <- res{name, doc, err}
		}(name, addr)
	}
	out := map[string]nodehost.StateDoc{}
	for i := 0; i < n; i++ {
		r := <-ch
		if r.err == nil {
			out[r.name] = r.doc
		}
	}
	return out
}

// PrimaryName returns the unique node reporting PRIMARY ("" when there is
// none or more than one).
func (h *Harness) PrimaryName() string {
	primary := ""
	for name, st := range h.States() {
		if st.Role == "PRIMARY" {
			if primary != "" {
				return ""
			}
			primary = name
		}
	}
	return primary
}

// PrimaryIDs fetches the current primary's full ingested-id list.
func (h *Harness) PrimaryIDs() ([]int64, error) {
	name := h.PrimaryName()
	if name == "" {
		return nil, fmt.Errorf("e2e: no unique primary")
	}
	var ids []int64
	if err := h.getJSON(h.slow, h.Info(name).HTTP, "/ids.json", &ids); err != nil {
		return nil, err
	}
	return ids, nil
}

// Traces scrapes completed recovery traces from every live daemon.
func (h *Harness) Traces() []TraceDoc {
	var out []TraceDoc
	for _, name := range h.names {
		if !h.Alive(name) || h.Hung(name) {
			continue
		}
		var traces []TraceDoc
		if err := h.getJSON(h.scrape, h.Info(name).HTTP, "/traces.json", &traces); err != nil {
			continue
		}
		out = append(out, traces...)
	}
	return out
}

// TraceDoc mirrors telemetry.Trace's JSON for black-box decoding.
type TraceDoc struct {
	ID       uint64 `json:"id"`
	Complete bool   `json:"complete"`
	Events   []struct {
		AtUS   int64  `json:"at_us"`
		Phase  string `json:"phase"`
		Node   string `json:"node"`
		Detail string `json:"detail,omitempty"`
	} `json:"events"`
}

// Duration is the trace's first-to-last span.
func (t TraceDoc) Duration() time.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return time.Duration(t.Events[len(t.Events)-1].AtUS-t.Events[0].AtUS) * time.Microsecond
}

// FeederLedger scrapes the feeder's current ledger.
func (h *Harness) FeederLedger() (feed.Snapshot, error) {
	var snap feed.Snapshot
	h.feedMu.Lock()
	addr := h.feedAddr
	h.feedMu.Unlock()
	err := h.getJSON(h.slow, addr, "/ledger.json", &snap)
	return snap, err
}

// FeederDrain stops generation and waits for the pending queue to empty.
func (h *Harness) FeederDrain(timeout time.Duration) (feed.Snapshot, bool, error) {
	var doc struct {
		feed.Snapshot
		Drained bool `json:"drained"`
	}
	h.feedMu.Lock()
	addr := h.feedAddr
	h.feedMu.Unlock()
	err := h.getJSON(h.slow, addr, "/drain?timeout="+timeout.String(), &doc)
	return doc.Snapshot, doc.Drained, err
}

// --- teardown -----------------------------------------------------------

// terminate SIGTERMs a process and SIGKILLs it if it ignores the grace
// period. Returns the graceful flag (true = exited on SIGTERM).
func terminate(cmd *exec.Cmd, done <-chan struct{}, grace time.Duration) bool {
	if cmd == nil || cmd.Process == nil {
		return true
	}
	// A stopped process cannot handle SIGTERM; wake it first.
	_ = syscall.Kill(cmd.Process.Pid, syscall.SIGCONT)
	_ = cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-done:
		return true
	case <-time.After(grace):
		_ = cmd.Process.Kill()
		<-done
		return false
	}
}

// Shutdown tears the whole deployment down: feeder first (it drains),
// then daemons, then the proxy mesh.
func (h *Harness) Shutdown() {
	h.feedMu.Lock()
	feedCmd, feedDone := h.feedCmd, h.feedDone
	h.feedCmd = nil
	h.feedMu.Unlock()
	if feedCmd != nil {
		terminate(feedCmd, feedDone, 10*time.Second)
	}
	for _, name := range h.names {
		np := h.nodes[name]
		np.mu.Lock()
		cmd, done, dead := np.cmd, np.done, np.dead
		np.cmd = nil
		np.mu.Unlock()
		if cmd != nil && !dead {
			terminate(cmd, done, 5*time.Second)
		}
	}
	for _, l := range h.links {
		l.Close()
	}
}

package e2e

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/chaos"
)

// startHarness builds and spawns a deployment, skipping (not failing)
// when the environment cannot run it: no go toolchain for the build, or
// restricted sockets.
func startHarness(t *testing.T, opt Options) *Harness {
	t.Helper()
	if opt.Logf == nil {
		opt.Logf = t.Logf
	}
	h, err := Start(t.TempDir(), opt)
	if err != nil {
		t.Skipf("e2e deployment unavailable: %v", err)
	}
	t.Cleanup(h.Shutdown)
	return h
}

// campaignConfig is the shared black-box campaign tuning: everything is
// scaled from netsim microseconds to real-process timescales (detection
// takes ~250ms of real wall clock; each observation is an HTTP scrape).
func campaignConfig(seed int64) chaos.Config {
	return chaos.Config{
		Seed:           seed,
		Palette:        ExternalPalette,
		FaultDurMin:    800 * time.Millisecond,
		FaultDurSpan:   700 * time.Millisecond,
		MeanGap:        1500 * time.Millisecond,
		QuiesceTimeout: 30 * time.Second,
		StabilityDwell: 1 * time.Second,
		RecoveryBound:  15 * time.Second,
		AllowedLoss:    200,
		SampleEvery:    150 * time.Millisecond,
		DrainTimeout:   20 * time.Second,
	}
}

// maxAckedLoss bounds acked-but-lost messages per campaign. Each fault
// that deposes a primary can lose at most one checkpoint window of acks
// (50ms / 15ms-per-message ≈ 4 ids); campaigns inject a handful of
// faults, so 50 gives each incident its window plus scheduler slack on a
// loaded host. Regressions like ack-after-stale-lease or a starved
// backup winning an election lose hundreds and blow straight past it.
const maxAckedLoss = 50

// reproLine is the one-line replay recipe printed on every failure.
func reproLine(seed int64, testName string) string {
	return fmt.Sprintf("repro: OFTT_E2E=1 OFTT_E2E_SEED=%d go test ./internal/e2e -run %s -count=1 -v", seed, testName)
}

func requireE2E(t *testing.T) {
	if os.Getenv("OFTT_E2E") == "" {
		t.Skip("full e2e campaign disabled; set OFTT_E2E=1 (or use `make e2e`)")
	}
}

func envSeed(def int64) int64 {
	if v := os.Getenv("OFTT_E2E_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// TestE2ESmoke is the always-on sanity check: the multi-process
// deployment comes up, elects one primary, moves feeder traffic, and a
// SIGTERMed daemon exits gracefully with status 0.
func TestE2ESmoke(t *testing.T) {
	h := startHarness(t, Options{Seed: 11})

	// One primary with an active plant.
	deadline := time.Now().Add(20 * time.Second)
	primary := ""
	for time.Now().Before(deadline) {
		if p := h.PrimaryName(); p != "" {
			states := h.States()
			if states[p].AppActive {
				primary = p
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if primary == "" {
		t.Fatalf("no active primary within 20s; states=%v", h.States())
	}

	// The feeder delivers.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if snap, err := h.FeederLedger(); err == nil && snap.Delivered > 5 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	snap, err := h.FeederLedger()
	if err != nil || snap.Delivered <= 5 {
		t.Fatalf("feeder not delivering: %+v, %v", snap, err)
	}

	// Graceful shutdown: SIGTERM a backup daemon, expect exit status 0.
	victim := ""
	for _, name := range h.Names() {
		if name != primary {
			victim = name
			break
		}
	}
	np := h.nodes[victim]
	np.mu.Lock()
	cmd, done := np.cmd, np.done
	np.dead = true // tell the harness not to double-kill it at teardown
	np.mu.Unlock()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal %s: %v", victim, err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s ignored SIGTERM for 10s", victim)
	}
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("%s exited %d on SIGTERM, want 0", victim, code)
	}
}

// TestE2ECampaign is the acceptance scenario: a real 3-node TCP
// deployment survives a scripted campaign of kill -9 of the primary, a
// SIGSTOP hang of the (new) primary, and a one-way link cut — with all
// four invariants checked black-box.
func TestE2ECampaign(t *testing.T) {
	requireE2E(t)
	seed := envSeed(1)
	h := startHarness(t, Options{Seed: seed})
	tg := NewTarget(h, maxAckedLoss, t.Logf)

	cfg := campaignConfig(seed)
	cfg.Script = []chaos.Event{
		{At: 600 * time.Millisecond, Kind: chaos.KillNode, Target: "primary", Dur: 2400 * time.Millisecond},
		{At: 2400 * time.Millisecond, Kind: chaos.HangEngine, Target: "primary", Dur: 1600 * time.Millisecond},
		{At: 5500 * time.Millisecond, Kind: chaos.PartitionOne, Target: "primary->backup", Dur: 2 * time.Second},
	}

	res, err := chaos.RunTarget(context.Background(), cfg, tg)
	if err != nil {
		t.Fatalf("campaign error: %v\n%s", err, reproLine(seed, t.Name()))
	}
	t.Logf("campaign: injected=%d skipped=%d enqueued=%d delivered=%d worst-recovery=%s",
		res.Injected, res.Skipped, res.Enqueued, res.Delivered, res.WorstRecovery.Round(time.Millisecond))
	if res.Injected != len(cfg.Script) {
		t.Errorf("only %d/%d scripted faults applied\n%s", res.Injected, len(cfg.Script), reproLine(seed, t.Name()))
	}
	if !res.Passed() {
		for _, v := range res.Violations {
			t.Errorf("invariant violated: %s", v)
		}
		t.Fatalf("campaign failed\n%s", reproLine(seed, t.Name()))
	}
}

// TestE2EGeneratedCampaign replays a seed-generated schedule against the
// live deployment — the random-soak building block, kept short here.
func TestE2EGeneratedCampaign(t *testing.T) {
	requireE2E(t)
	seed := envSeed(7)
	h := startHarness(t, Options{Seed: seed})
	tg := NewTarget(h, maxAckedLoss, t.Logf)

	cfg := campaignConfig(seed)
	cfg.Duration = 6 * time.Second

	schedule := chaos.Generate(seed, cfg)
	t.Logf("%s", schedule)

	res, err := chaos.RunTarget(context.Background(), cfg, tg)
	if err != nil {
		t.Fatalf("campaign error: %v\n%s", err, reproLine(seed, t.Name()))
	}
	t.Logf("campaign: injected=%d skipped=%d violations=%d worst-recovery=%s",
		res.Injected, res.Skipped, len(res.Violations), res.WorstRecovery.Round(time.Millisecond))
	if !res.Passed() {
		for _, v := range res.Violations {
			t.Errorf("invariant violated: %s", v)
		}
		t.Fatalf("campaign failed (schedule above)\n%s", reproLine(seed, t.Name()))
	}
}

// TestE2ESoak runs seed-varied generated campaigns back to back against
// one long-lived deployment until the soak budget is spent. Every round
// prints its seed; a failure reproduces with OFTT_E2E_SEED.
//
// Enable with OFTT_E2E_SOAK=<duration> (e.g. `make soak`).
func TestE2ESoak(t *testing.T) {
	budgetStr := os.Getenv("OFTT_E2E_SOAK")
	if budgetStr == "" {
		t.Skip("soak disabled; set OFTT_E2E_SOAK=<duration> (or use `make soak`)")
	}
	budget, err := time.ParseDuration(budgetStr)
	if err != nil {
		t.Fatalf("bad OFTT_E2E_SOAK %q: %v", budgetStr, err)
	}
	baseSeed := envSeed(time.Now().UnixNano() % 1_000_000)
	h := startHarness(t, Options{Seed: baseSeed})

	// A signalled soak (SIGTERM/SIGINT via go test -timeout, CI abort)
	// drains gracefully: the campaign engine repairs outstanding faults
	// and still reports a verdict.
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	end := time.Now().Add(budget)
	round := 0
	for time.Now().Before(end) {
		seed := baseSeed + int64(round)
		round++
		tg := NewTarget(h, maxAckedLoss, t.Logf)
		cfg := campaignConfig(seed)
		cfg.Duration = 8 * time.Second
		t.Logf("soak round %d seed=%d (budget left %s)", round, seed, time.Until(end).Round(time.Second))

		res, err := chaos.RunTarget(ctx, cfg, tg)
		if err != nil {
			t.Fatalf("soak round %d error: %v\n%s", round, err, reproLine(seed, "TestE2EGeneratedCampaign"))
		}
		if !res.Passed() {
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			t.Fatalf("soak round %d failed: seed=%d faults=%d\n%s",
				round, seed, res.Injected, reproLine(seed, "TestE2EGeneratedCampaign"))
		}
		t.Logf("soak round %d passed: faults=%d worst-recovery=%s",
			round, res.Injected, res.WorstRecovery.Round(time.Millisecond))
		if ctx.Err() != nil {
			break
		}
	}
}

package e2e

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
)

// ExternalPalette is the fault palette that makes sense against real OS
// processes: the whole daemon is one process, so every kill flavor is a
// real SIGKILL and every hang is a real SIGSTOP; link faults act on the
// proxies. Datagram loss-bursts and checkpoint-transfer surgery need
// in-process hooks and are excluded.
var ExternalPalette = []chaos.Kind{
	chaos.KillNode, chaos.HangEngine,
	chaos.Partition, chaos.PartitionOne, chaos.LinkFlap, chaos.LatencySpike,
}

// Target drives the campaign engine against a live Harness deployment —
// the black-box counterpart of the in-process deployment target. All
// observation is HTTP scraping; all injection is signals and proxy
// controls.
type Target struct {
	h    *Harness
	logf func(format string, args ...any)

	// MaxAckedLoss bounds how many acked ids may be missing from the
	// final primary's state before the no-acked-loss invariant fails.
	// Acking happens when the primary records the id; the checkpoint
	// ships up to one CheckpointPeriod later, so ids acked inside that
	// window by a primary that is then killed are legitimately lost —
	// the same bounded-loss window the monotonic checker's AllowedLoss
	// models. Zero means no slack.
	MaxAckedLoss int

	mu     sync.Mutex
	faults int
}

// NewTarget wraps a harness for campaign use.
func NewTarget(h *Harness, maxAckedLoss int, logf func(string, ...any)) *Target {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Target{h: h, MaxAckedLoss: maxAckedLoss, logf: logf}
}

// resolveNode maps a symbolic role to a live daemon name ("" when the
// role has no current holder).
func (tg *Target) resolveNode(role string) string {
	states := tg.h.States()
	switch role {
	case "primary":
		primary := ""
		for name, st := range states {
			if st.Role == "PRIMARY" {
				if primary != "" {
					return "" // dual primary: ambiguous, skip
				}
				primary = name
			}
		}
		return primary
	case "backup":
		var backups []string
		for name, st := range states {
			if st.Role != "PRIMARY" {
				backups = append(backups, name)
			}
		}
		if len(backups) == 0 {
			return ""
		}
		sort.Strings(backups)
		return backups[0]
	default:
		return ""
	}
}

// resolvePair resolves a directed "from->to" target like the schedule's
// "primary->backup".
func (tg *Target) resolvePair(target string) (from, to string) {
	switch target {
	case "primary->backup":
		return tg.resolveNode("primary"), tg.resolveNode("backup")
	case "backup->primary":
		return tg.resolveNode("backup"), tg.resolveNode("primary")
	default:
		return "", ""
	}
}

// Inject applies one scheduled fault to the live deployment.
func (tg *Target) Inject(ev chaos.Event) (func(), bool) {
	switch ev.Kind {
	case chaos.KillNode, chaos.BlueScreen, chaos.KillApp, chaos.KillEngine:
		// One OS process hosts engine and app: every kill flavor is the
		// real thing — kill -9 of the daemon.
		name := tg.resolveNode(ev.Target)
		if name == "" || !tg.h.Alive(name) {
			return nil, false
		}
		if err := tg.h.Kill(name); err != nil {
			return nil, false
		}
		tg.logf("kill -9 %s (%s)", name, ev.Target)
		return func() {
			if err := tg.h.EnsureAlive(name); err != nil {
				tg.logf("respawn %s failed: %v", name, err)
			}
		}, true

	case chaos.HangApp, chaos.HangEngine:
		name := tg.resolveNode(ev.Target)
		if name == "" || !tg.h.Alive(name) || tg.h.Hung(name) {
			return nil, false
		}
		if err := tg.h.Hang(name); err != nil {
			return nil, false
		}
		tg.logf("SIGSTOP %s (%s)", name, ev.Target)
		return func() { _ = tg.h.Resume(name) }, true

	case chaos.Partition:
		// Isolate the current primary: cut every link it has. The quorum
		// lease must expire and the rest must elect without it.
		name := tg.resolveNode("primary")
		if name == "" {
			return nil, false
		}
		links := tg.h.LinksOf(name)
		for _, l := range links {
			l.Cut()
		}
		tg.logf("partition: isolated %s", name)
		return func() {
			for _, l := range links {
				l.Heal()
			}
		}, true

	case chaos.PartitionOne:
		from, to := tg.resolvePair(ev.Target)
		if from == "" || to == "" {
			return nil, false
		}
		l := tg.h.Link(from, to)
		if l == nil {
			return nil, false
		}
		l.CutOneWay(from)
		tg.logf("one-way cut: %s -> %s silenced", from, to)
		return func() { l.Heal() }, true

	case chaos.LinkFlap:
		from, to := tg.resolveNode("primary"), tg.resolveNode("backup")
		if from == "" || to == "" {
			return nil, false
		}
		l := tg.h.Link(from, to)
		if l == nil {
			return nil, false
		}
		l.Flap(100 * time.Millisecond)
		tg.logf("flapping link %s-%s", from, to)
		return func() { l.Heal() }, true

	case chaos.LatencySpike:
		// Param is milliseconds, as in the in-process palette.
		lat := time.Duration(ev.Param * float64(time.Millisecond))
		for _, l := range tg.h.Links() {
			l.SetLatency(lat)
		}
		tg.logf("latency spike: +%s on every link", lat.Round(time.Millisecond))
		return func() {
			for _, l := range tg.h.Links() {
				l.SetLatency(0)
			}
		}, true

	default:
		// Loss bursts and checkpoint surgery need in-process hooks.
		return nil, false
	}
}

// Quiesce ends the fault window: heal the mesh, wake every hung daemon,
// respawn every dead one.
func (tg *Target) Quiesce() {
	for _, l := range tg.h.Links() {
		l.Heal()
		l.SetLatency(0)
	}
	for _, name := range tg.h.Names() {
		_ = tg.h.Resume(name)
	}
	for _, name := range tg.h.Names() {
		if err := tg.h.EnsureAlive(name); err != nil {
			tg.logf("quiesce respawn %s failed: %v", name, err)
		}
	}
}

// Primaries counts daemons currently claiming PRIMARY.
func (tg *Target) Primaries() int {
	n := 0
	for _, st := range tg.h.States() {
		if st.Role == "PRIMARY" {
			n++
		}
	}
	return n
}

// PrimaryReady reports one PRIMARY with an active plant.
func (tg *Target) PrimaryReady() bool {
	primary, n := "", 0
	states := tg.h.States()
	for name, st := range states {
		if st.Role == "PRIMARY" {
			primary = name
			n++
		}
	}
	return n == 1 && states[primary].AppActive
}

// PrimarySeq samples the single live primary's plant counter.
func (tg *Target) PrimarySeq() (int64, bool) {
	primary, n := "", 0
	states := tg.h.States()
	for name, st := range states {
		if st.Role == "PRIMARY" {
			primary = name
			n++
		}
	}
	if n != 1 || !states[primary].AppActive {
		return 0, false
	}
	return states[primary].Seq, true
}

// StartTraffic is a no-op: the feeder process has been streaming since
// the deployment came up. The returned stop is likewise a no-op — the
// feeder drains in DrainAndAudit and dies with the harness.
func (tg *Target) StartTraffic(time.Duration) func() {
	return func() {}
}

// DrainAndAudit drains the feeder and audits the delivery ledger against
// the surviving primary's plant state.
func (tg *Target) DrainAndAudit(timeout time.Duration) []chaos.Violation {
	var vs []chaos.Violation
	snap, drained, err := tg.h.FeederDrain(timeout)
	if err != nil {
		return []chaos.Violation{{
			Invariant: chaos.InvNoAckedLoss,
			Detail:    fmt.Sprintf("feeder unreachable for drain: %v", err),
		}}
	}
	if !drained {
		vs = append(vs, chaos.Violation{
			Invariant: chaos.InvNoAckedLoss,
			Detail:    fmt.Sprintf("%d generated messages still undelivered after %s drain", snap.Pending, timeout),
		})
	}
	ids, err := tg.h.PrimaryIDs()
	if err != nil {
		vs = append(vs, chaos.Violation{
			Invariant: chaos.InvNoAckedLoss,
			Detail:    fmt.Sprintf("cannot audit primary state: %v", err),
		})
		return vs
	}
	have := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		have[id] = struct{}{}
	}
	var missing []int64
	for _, id := range snap.DeliveredIDs {
		if _, ok := have[id]; !ok {
			missing = append(missing, id)
		}
	}
	if len(missing) > tg.MaxAckedLoss {
		show := missing
		if len(show) > 8 {
			show = show[:8]
		}
		vs = append(vs, chaos.Violation{
			Invariant: chaos.InvNoAckedLoss,
			Detail: fmt.Sprintf("%d acked ids missing from surviving state (allowance %d): %v...",
				len(missing), tg.MaxAckedLoss, show),
		})
	} else if len(missing) > 0 {
		show := missing
		if len(show) > 16 {
			show = show[:16]
		}
		tg.logf("acked-loss within checkpoint-window allowance: %d/%d %v", len(missing), tg.MaxAckedLoss, show)
	}
	return vs
}

// TrafficCounts reports the ledger totals (the feeder never drops).
func (tg *Target) TrafficCounts() (int64, int64, int64) {
	snap, err := tg.h.FeederLedger()
	if err != nil {
		return 0, 0, 0
	}
	return snap.Enqueued, snap.Delivered, 0
}

// WorstRecovery is the longest completed recovery trace any daemon
// reports.
func (tg *Target) WorstRecovery() time.Duration {
	var worst time.Duration
	for _, tr := range tg.h.Traces() {
		if !tr.Complete {
			continue
		}
		if d := tr.Duration(); d > worst {
			worst = d
		}
	}
	return worst
}

// NoteFault counts injections.
func (tg *Target) NoteFault(kind chaos.Kind) {
	tg.mu.Lock()
	tg.faults++
	tg.mu.Unlock()
}

// ReportVerdict logs the campaign outcome.
func (tg *Target) ReportVerdict(seed int64, injected, violations int) {
	tg.logf("campaign verdict: seed=%d faults=%d violations=%d", seed, injected, violations)
}

var _ chaos.Target = (*Target)(nil)

// Package cluster models the machines of the paper's demonstration
// configuration (Figure 3): Windows NT PCs hosting processes, connected to
// one or two Ethernet segments. It supplies the four failure modes the
// paper demonstrates in Section 4:
//
//	(a) node failure        -> Node.PowerOff
//	(b) NT crash            -> Node.BlueScreen
//	(c) application failure -> Process.Kill
//	(d) middleware failure  -> Process.Kill on the engine process
//
// A Process is a managed goroutine group with a stop signal; killing a
// process abruptly fails all network endpoints it owns, so a slow-to-stop
// goroutine cannot keep acting on the network — the observable behaviour of
// an abruptly terminated NT process.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/com"
	"repro/internal/netsim"
)

// NodeState is the machine's health.
type NodeState int

// Node states.
const (
	NodeUp NodeState = iota + 1
	NodeCrashed
	NodePoweredOff
)

// String renders the state for the system monitor.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "UP"
	case NodeCrashed:
		return "CRASHED"
	case NodePoweredOff:
		return "POWERED_OFF"
	default:
		return "UNKNOWN"
	}
}

// ProcessState is one process's lifecycle phase.
type ProcessState int

// Process states.
const (
	ProcRunning ProcessState = iota + 1
	ProcStopped
	ProcKilled
)

// String renders the state.
func (s ProcessState) String() string {
	switch s {
	case ProcRunning:
		return "RUNNING"
	case ProcStopped:
		return "STOPPED"
	case ProcKilled:
		return "KILLED"
	default:
		return "UNKNOWN"
	}
}

// Event is a lifecycle notification for the system monitor.
type Event struct {
	Time    time.Time
	Node    string
	Process string // empty for node-level events
	Kind    string // "boot", "bluescreen", "poweroff", "proc-start", "proc-exit", "proc-kill"
}

// Errors.
var (
	// ErrNodeDown is returned when starting a process on a dead node.
	ErrNodeDown = errors.New("cluster: node is down")

	// ErrDuplicateProcess is returned for a name collision on one node.
	ErrDuplicateProcess = errors.New("cluster: duplicate process name")
)

// Node is one simulated PC.
type Node struct {
	name     string
	networks []*netsim.Network
	registry *com.Registry
	rng      *rand.Rand

	onEvent func(Event)

	mu        sync.Mutex
	state     NodeState
	procs     map[string]*Process
	bootMin   time.Duration
	bootSpan  time.Duration
	bootCount int
}

// NewNode creates a powered-on node attached to the given network segments.
// Endpoints the node's processes own are named "<node>:<service>".
func NewNode(name string, seed int64, networks ...*netsim.Network) *Node {
	return &Node{
		name:     name,
		networks: networks,
		registry: com.NewRegistry(),
		rng:      rand.New(rand.NewSource(seed)),
		state:    NodeUp,
		procs:    make(map[string]*Process),
	}
}

// Name returns the machine name.
func (n *Node) Name() string { return n.name }

// Registry returns the node's per-machine COM class registry.
func (n *Node) Registry() *com.Registry { return n.registry }

// Networks returns the attached segments.
func (n *Node) Networks() []*netsim.Network { return n.networks }

// Addr forms this node's endpoint address for a service.
func (n *Node) Addr(service string) netsim.Addr {
	return netsim.Addr(n.name + ":" + service)
}

// OnEvent installs a lifecycle-event sink (the system monitor).
func (n *Node) OnEvent(fn func(Event)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onEvent = fn
}

func (n *Node) emit(proc, kind string) {
	n.mu.Lock()
	fn := n.onEvent
	n.mu.Unlock()
	if fn != nil {
		fn(Event{Time: time.Now(), Node: n.name, Process: proc, Kind: kind})
	}
}

// State returns the node's health.
func (n *Node) State() NodeState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// SetBootDelay configures the non-deterministic startup latency window
// [min, min+span) that Section 3.2 of the paper identifies as the cause of
// false self-shutdowns.
func (n *Node) SetBootDelay(min, span time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bootMin, n.bootSpan = min, span
}

// BootDelay samples one startup latency.
func (n *Node) BootDelay() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := n.bootMin
	if n.bootSpan > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.bootSpan)))
	}
	n.bootCount++
	return d
}

// Process is a managed goroutine group on a node.
type Process struct {
	name string
	node *Node

	stop chan struct{}
	done chan struct{}

	mu        sync.Mutex
	state     ProcessState
	endpoints []ownedEndpoint
	cleanups  []func()
}

type ownedEndpoint struct {
	net  *netsim.Network
	addr netsim.Addr
}

// StartProcess launches main as a process. main must return promptly after
// stop closes. The returned Process handle is used for fault injection.
func (n *Node) StartProcess(name string, main func(stop <-chan struct{})) (*Process, error) {
	n.mu.Lock()
	if n.state != NodeUp {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrNodeDown, n.name, n.state)
	}
	if _, dup := n.procs[name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s on %s", ErrDuplicateProcess, name, n.name)
	}
	p := &Process{
		name:  name,
		node:  n,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		state: ProcRunning,
	}
	n.procs[name] = p
	n.mu.Unlock()

	n.emit(name, "proc-start")
	go func() {
		defer close(p.done)
		defer n.emit(name, "proc-exit")
		main(p.stop)
		p.mu.Lock()
		if p.state == ProcRunning {
			p.state = ProcStopped
		}
		p.mu.Unlock()
	}()
	return p, nil
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Node returns the hosting node.
func (p *Process) Node() *Node { return p.node }

// State returns the process state.
func (p *Process) State() ProcessState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// OwnEndpoint records that this process owns a network endpoint; killing
// the process fails the endpoint immediately.
func (p *Process) OwnEndpoint(n *netsim.Network, addr netsim.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.endpoints = append(p.endpoints, ownedEndpoint{net: n, addr: addr})
}

// OnKill registers a cleanup run when the process is killed or stopped
// (closing listeners, shutting apartments down).
func (p *Process) OnKill(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cleanups = append(p.cleanups, fn)
}

// Kill terminates the process abruptly: the paper's "application software
// failure" (Section 4c) or, applied to the engine process, "OFTT middleware
// failure" (Section 4d). Endpoints the process owns fail at once.
func (p *Process) Kill() {
	p.terminate(ProcKilled, "proc-kill", true)
}

// Stop shuts the process down cleanly (no endpoint failure).
func (p *Process) Stop() {
	p.terminate(ProcStopped, "proc-exit", false)
}

func (p *Process) terminate(final ProcessState, event string, abrupt bool) {
	p.mu.Lock()
	if p.state != ProcRunning {
		p.mu.Unlock()
		return
	}
	p.state = final
	endpoints := append([]ownedEndpoint(nil), p.endpoints...)
	cleanups := append([]func(){}, p.cleanups...)
	p.mu.Unlock()

	if abrupt {
		for _, ep := range endpoints {
			ep.net.FailEndpoint(ep.addr)
		}
		p.node.emit(p.name, event)
	}
	close(p.stop)
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
	<-p.done

	p.node.mu.Lock()
	if p.node.procs[p.name] == p {
		delete(p.node.procs, p.name)
	}
	p.node.mu.Unlock()
}

// Wait blocks until the process has exited.
func (p *Process) Wait() { <-p.done }

// Done returns a channel closed when the process has exited.
func (p *Process) Done() <-chan struct{} { return p.done }

// BlueScreen is the paper's "NT crash" (Section 4b): every process dies
// abruptly and all of the node's endpoints fail, with no goodbye traffic.
func (n *Node) BlueScreen() { n.die(NodeCrashed, "bluescreen") }

// PowerOff is the paper's "node failure" (Section 4a).
func (n *Node) PowerOff() { n.die(NodePoweredOff, "poweroff") }

func (n *Node) die(state NodeState, event string) {
	n.mu.Lock()
	if n.state != NodeUp {
		n.mu.Unlock()
		return
	}
	n.state = state
	victims := make([]*Process, 0, len(n.procs))
	for _, p := range n.procs {
		victims = append(victims, p)
	}
	n.mu.Unlock()

	// Fail the whole machine's endpoints first: no process gets a last word.
	for _, net := range n.networks {
		net.FailPrefix(n.name + ":")
	}
	n.emit("", event)
	for _, p := range victims {
		p.terminate(ProcKilled, "proc-kill", false)
	}
}

// Boot powers the node back on after its (non-deterministic) boot delay and
// restores its network endpoints. The caller restarts processes afterwards,
// as an NT Service Control Manager would.
func (n *Node) Boot() {
	delay := n.BootDelay()
	if delay > 0 {
		time.Sleep(delay)
	}
	n.mu.Lock()
	n.state = NodeUp
	n.mu.Unlock()
	for _, net := range n.networks {
		net.RestorePrefix(n.name + ":")
	}
	n.emit("", "boot")
}

// Processes lists live process names (for the monitor).
func (n *Node) Processes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.procs))
	for name := range n.procs {
		out = append(out, name)
	}
	return out
}

// BootCount reports how many boot delays have been sampled (test aid).
func (n *Node) BootCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bootCount
}

package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestProcessLifecycle(t *testing.T) {
	n := NewNode("node1", 1, netsim.New("eth0", 1))
	started := make(chan struct{})
	p, err := n.StartProcess("app", func(stop <-chan struct{}) {
		close(started)
		<-stop
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if p.State() != ProcRunning {
		t.Fatalf("state = %v", p.State())
	}
	p.Stop()
	p.Wait()
	if p.State() != ProcStopped {
		t.Fatalf("state = %v", p.State())
	}
}

func TestProcessNaturalExit(t *testing.T) {
	n := NewNode("node1", 1)
	p, err := n.StartProcess("oneshot", func(stop <-chan struct{}) {})
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if p.State() != ProcStopped {
		t.Fatalf("state = %v", p.State())
	}
}

func TestDuplicateProcessName(t *testing.T) {
	n := NewNode("node1", 1)
	p, _ := n.StartProcess("app", func(stop <-chan struct{}) { <-stop })
	defer p.Stop()
	if _, err := n.StartProcess("app", func(stop <-chan struct{}) {}); !errors.Is(err, ErrDuplicateProcess) {
		t.Fatalf("got %v", err)
	}
}

func TestKillFailsOwnedEndpoints(t *testing.T) {
	net := netsim.New("eth0", 1)
	n := NewNode("node1", 1, net)
	l, err := net.Listen(n.Addr("svc"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	p, _ := n.StartProcess("app", func(stop <-chan struct{}) { <-stop })
	p.OwnEndpoint(net, n.Addr("svc"))

	// Endpoint reachable before the kill.
	c, err := net.Dial("tester:x", n.Addr("svc"))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	p.Kill()
	p.Wait()
	if p.State() != ProcKilled {
		t.Fatalf("state = %v", p.State())
	}
	if _, err := net.Dial("tester:x", n.Addr("svc")); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("endpoint survived kill: %v", err)
	}
}

func TestOnKillCleanupRuns(t *testing.T) {
	n := NewNode("node1", 1)
	p, _ := n.StartProcess("app", func(stop <-chan struct{}) { <-stop })
	ran := false
	p.OnKill(func() { ran = true })
	p.Kill()
	if !ran {
		t.Fatal("cleanup did not run")
	}
}

func TestBlueScreenKillsEverything(t *testing.T) {
	net := netsim.New("eth0", 1)
	n := NewNode("node1", 1, net)
	l, _ := net.Listen(n.Addr("engine"))
	defer l.Close()

	p1, _ := n.StartProcess("engine", func(stop <-chan struct{}) { <-stop })
	p2, _ := n.StartProcess("app", func(stop <-chan struct{}) { <-stop })

	n.BlueScreen()
	p1.Wait()
	p2.Wait()
	if n.State() != NodeCrashed {
		t.Fatalf("state = %v", n.State())
	}
	if p1.State() != ProcKilled || p2.State() != ProcKilled {
		t.Fatalf("procs: %v %v", p1.State(), p2.State())
	}
	// All node endpoints failed, even ones no process claimed.
	if _, err := net.Dial("tester:x", n.Addr("engine")); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("node endpoint survived blue screen: %v", err)
	}
	// Starting a process on a crashed node fails.
	if _, err := n.StartProcess("late", func(stop <-chan struct{}) {}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("got %v", err)
	}
}

func TestPowerOffAndBoot(t *testing.T) {
	net := netsim.New("eth0", 1)
	n := NewNode("node1", 1, net)
	n.SetBootDelay(time.Millisecond, 2*time.Millisecond)

	p, _ := n.StartProcess("app", func(stop <-chan struct{}) { <-stop })
	n.PowerOff()
	p.Wait()
	if n.State() != NodePoweredOff {
		t.Fatalf("state = %v", n.State())
	}

	n.Boot()
	if n.State() != NodeUp {
		t.Fatalf("state after boot = %v", n.State())
	}
	if n.BootCount() != 1 {
		t.Fatalf("boot count = %d", n.BootCount())
	}
	// Processes restartable after boot.
	p2, err := n.StartProcess("app", func(stop <-chan struct{}) { <-stop })
	if err != nil {
		t.Fatal(err)
	}
	p2.Stop()
}

func TestBootDelayWindow(t *testing.T) {
	n := NewNode("node1", 99)
	n.SetBootDelay(5*time.Millisecond, 10*time.Millisecond)
	for i := 0; i < 50; i++ {
		d := n.BootDelay()
		if d < 5*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("boot delay %v outside [5ms, 15ms)", d)
		}
	}
}

func TestEvents(t *testing.T) {
	n := NewNode("node1", 1)
	var mu sync.Mutex
	var kinds []string
	n.OnEvent(func(e Event) {
		mu.Lock()
		kinds = append(kinds, e.Kind)
		mu.Unlock()
	})
	p, _ := n.StartProcess("app", func(stop <-chan struct{}) { <-stop })
	p.Kill()
	n.BlueScreen()

	mu.Lock()
	defer mu.Unlock()
	want := map[string]bool{"proc-start": false, "proc-kill": false, "proc-exit": false, "bluescreen": false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("event %q not observed (got %v)", k, kinds)
		}
	}
}

func TestKillIdempotent(t *testing.T) {
	n := NewNode("node1", 1)
	p, _ := n.StartProcess("app", func(stop <-chan struct{}) { <-stop })
	p.Kill()
	p.Kill() // second kill is a no-op
	p.Stop() // and stop after kill is a no-op
	if p.State() != ProcKilled {
		t.Fatalf("state = %v", p.State())
	}
}

func TestProcessesListing(t *testing.T) {
	n := NewNode("node1", 1)
	p1, _ := n.StartProcess("a", func(stop <-chan struct{}) { <-stop })
	p2, _ := n.StartProcess("b", func(stop <-chan struct{}) { <-stop })
	if got := len(n.Processes()); got != 2 {
		t.Fatalf("processes = %d", got)
	}
	p1.Stop()
	if got := len(n.Processes()); got != 1 {
		t.Fatalf("processes after stop = %d", got)
	}
	p2.Stop()
}

func TestDualNetworkNodeFailure(t *testing.T) {
	ethA := netsim.New("ethA", 1)
	ethB := netsim.New("ethB", 2)
	n := NewNode("node1", 1, ethA, ethB)
	la, _ := ethA.Listen(n.Addr("svc"))
	lb, _ := ethB.Listen(n.Addr("svc"))
	defer la.Close()
	defer lb.Close()

	n.BlueScreen()
	if _, err := ethA.Dial("t:x", n.Addr("svc")); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatal("ethA endpoint survived")
	}
	if _, err := ethB.Dial("t:x", n.Addr("svc")); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatal("ethB endpoint survived")
	}
}

package checkpoint

// BenchmarkCkptRecovery measures the cost of propagating one state change
// from primary to backup — the recovery-currency of the checkpoint plane —
// across the impl x state-size x mode grid that `make bench-ckpt` feeds
// into BENCH_CKPT.json. "Recovery" here is one delta's primary-to-backup
// trip: a full-snapshot ship (O(state)), an incremental ship of the dirty
// region (O(delta)), or an op-log batch (O(op)). The gate in the Makefile
// checks the production-size-state claim: as state grows 512x (1MB ->
// 512MB), the op-log cell's per-delta cost may grow at most 2x.
//
// impl=oneframe is the retained pre-streaming baseline
// (oneframe_ref_test.go); it has no op lane, so its oplog cells do not
// exist and benchdiff compares it only where it can play.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
)

// benchRegion is the registered-region granularity of the bench state.
const benchRegion = 64 << 10

// benchState builds size bytes of incompressible-ish state as 64KiB
// regions (the shape a real plant's registered regions take).
func benchState(size int) map[string][]byte {
	tmpl := make([]byte, benchRegion)
	for j := range tmpl {
		tmpl[j] = byte(j*31 + 7)
	}
	n := size / benchRegion
	regions := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		data := make([]byte, benchRegion)
		copy(data, tmpl)
		data[0] = byte(i)
		data[1] = byte(i >> 8)
		regions[fmt.Sprintf("r%05d", i)] = data
	}
	return regions
}

// benchLink wires one sender implementation to a receiving store over
// netsim. sendOps is nil for implementations without an op lane.
type benchLink struct {
	send    func(*Snapshot) error
	sendOps func(*OpBatch) error
	close   func()
}

func newBenchLink(tb testing.TB, impl string, store SnapshotStore) *benchLink {
	tb.Helper()
	n := netsim.New("bench", 1)
	l, err := n.Listen("backup:ckpt")
	if err != nil {
		tb.Fatal(err)
	}
	stop := make(chan struct{})
	var serve func(conn FrameConn)
	switch impl {
	case "stream":
		state := NewReceiverState(store, nil)
		serve = func(conn FrameConn) { state.Serve(conn, stop) }
	case "oneframe":
		serve = func(conn FrameConn) { serveOneframeReceiver(conn, store, stop) }
	default:
		tb.Fatalf("unknown impl %q", impl)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go serve(conn)
		}
	}()
	conn, err := n.Dial("primary:ckpt", "backup:ckpt")
	if err != nil {
		tb.Fatal(err)
	}
	lk := &benchLink{}
	switch impl {
	case "stream":
		s := NewStreamSender(conn, StreamConfig{AckTimeout: 30 * time.Second})
		lk.send, lk.sendOps = s.Send, s.SendOps
		lk.close = func() { s.Close(); close(stop); l.Close() }
	case "oneframe":
		s := newOneframeSender(conn, 30*time.Second)
		lk.send = s.Send
		lk.close = func() { s.Close(); close(stop); l.Close() }
	}
	return lk
}

func BenchmarkCkptRecovery(b *testing.B) {
	sizes := []struct {
		name  string
		bytes int
	}{
		{"1MB", 1 << 20},
		{"64MB", 64 << 20},
		{"512MB", 512 << 20},
	}
	for _, impl := range []string{"stream", "oneframe"} {
		for _, sz := range sizes {
			for _, mode := range []string{"full", "incr", "oplog"} {
				if impl == "oneframe" && mode == "oplog" {
					continue // the baseline protocol has no op lane
				}
				name := fmt.Sprintf("impl=%s/state=%s/mode=%s", impl, sz.name, mode)
				b.Run(name, func(b *testing.B) {
					benchRecovery(b, impl, sz.bytes, mode)
				})
			}
		}
	}
}

func benchRecovery(b *testing.B, impl string, size int, mode string) {
	store := NewStore()
	link := newBenchLink(b, impl, store)
	defer link.close()

	regions := benchState(size)
	if err := link.send(&Snapshot{
		Seq: 1, Kind: string(KindFull), TakenAt: time.Unix(1, 0), Regions: regions,
	}); err != nil {
		b.Fatal(err)
	}

	dirty := regions["r00000"]
	op := make([]byte, 128)
	seq, opSeq := uint64(1), uint64(0)
	switch mode {
	case "full":
		b.SetBytes(int64(size))
	case "incr":
		b.SetBytes(benchRegion)
	case "oplog":
		b.SetBytes(int64(len(op)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		switch mode {
		case "full":
			dirty[2]++
			seq++
			err = link.send(&Snapshot{
				Seq: seq, Kind: string(KindFull),
				TakenAt: time.Unix(int64(seq), 0), Regions: regions,
			})
		case "incr":
			dirty[2]++
			seq++
			err = link.send(&Snapshot{
				Seq: seq, Kind: string(KindIncremental),
				TakenAt: time.Unix(int64(seq), 0),
				Regions: map[string][]byte{"r00000": dirty},
			})
		case "oplog":
			opSeq++
			op[0], op[1] = byte(opSeq), byte(opSeq>>8)
			err = link.sendOps(&OpBatch{Ops: []Op{{Seq: opSeq, Anchor: 1, Data: op}}})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestShipBytesODelta is the deterministic form of the perf claim: after
// the base lands, propagating one small change costs O(delta) wire bytes
// (incremental ship) or O(op) wire bytes (op-log ship) — not O(state).
func TestShipBytesODelta(t *testing.T) {
	store := NewStore()
	ins := testStreamIns()
	p := newStreamPair(t, store, ins)
	sender := NewStreamSender(p.dial(), StreamConfig{AckTimeout: time.Second, Instruments: ins})
	defer sender.Close()

	const stateSize = 8 << 20
	regions := benchState(stateSize)
	if err := sender.Send(&Snapshot{
		Seq: 1, Kind: string(KindFull), TakenAt: time.Unix(1, 0), Regions: regions,
	}); err != nil {
		t.Fatal(err)
	}
	baseWire := ins.WireBytes.Value()
	if baseWire < stateSize {
		t.Fatalf("base ship wired %d bytes for %d of state", baseWire, stateSize)
	}

	// One dirty region ships as an incremental: bounded by the region
	// size plus framing, two orders of magnitude under the state size.
	dirty := regions["r00000"]
	dirty[2]++
	if err := sender.Send(&Snapshot{
		Seq: 2, Kind: string(KindIncremental), TakenAt: time.Unix(2, 0),
		Regions: map[string][]byte{"r00000": dirty},
	}); err != nil {
		t.Fatal(err)
	}
	incrWire := ins.WireBytes.Value() - baseWire
	if incrWire > 4*benchRegion {
		t.Fatalf("incremental ship wired %d bytes, want O(delta) ~%d", incrWire, benchRegion)
	}

	// One op ships as an op frame: bounded by the op size plus framing.
	afterIncr := ins.WireBytes.Value()
	if err := sender.SendOps(&OpBatch{Ops: []Op{{Seq: 1, Anchor: 2, Data: make([]byte, 128)}}}); err != nil {
		t.Fatal(err)
	}
	opWire := ins.WireBytes.Value() - afterIncr
	if opWire > 4096 {
		t.Fatalf("op ship wired %d bytes, want O(op) ~128", opWire)
	}

	if store.LastSeq() != 2 || store.OpSeq() != 1 {
		t.Fatalf("backup state: seq %d opSeq %d", store.LastSeq(), store.OpSeq())
	}
}

// Op-log shipping: the third checkpoint lane. Instead of re-capturing and
// re-shipping region bytes every period, the primary's FTIM appends each
// application-level mutation to an OpLog (under the same registry lock that
// serialized the mutation) and a flusher streams the tail to the backups,
// which replay the operations into their live registered state between
// full/incremental anchors — LLFT's strong-replica-consistency-by-log
// approach. Per-period ship cost becomes O(ops), not O(state), and the
// acked-loss window shrinks from the checkpoint period to the flush
// interval.
package checkpoint

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ndr"
)

// Op is one logged application mutation. Seq is the dense per-primary op
// sequence assigned by the OpLog; Anchor is the registry capture sequence
// the mutation follows (read under the state lock at emit time), which
// makes subsumption exact: a snapshot with Seq S contains the effect of
// every op with Anchor < S, and of no op with Anchor >= S.
type Op struct {
	Seq    uint64
	Anchor uint64
	Data   []byte
}

// OpBatch is the wire unit of op shipping.
type OpBatch struct {
	Ops []Op
}

// Encode serializes the batch for the wire.
func (b *OpBatch) Encode() ([]byte, error) { return ndr.MarshalDeref(b) }

// DecodeOpBatch parses a wire-format op batch.
func DecodeOpBatch(data []byte) (*OpBatch, error) {
	var b OpBatch
	if err := ndr.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("checkpoint: decode op batch: %w", err)
	}
	return &b, nil
}

// Bytes reports the batch payload size.
func (b *OpBatch) Bytes() int {
	total := 0
	for i := range b.Ops {
		total += 16 + len(b.Ops[i].Data)
	}
	return total
}

// Errors of the op lane.
var (
	// ErrOpGap is returned when a received op batch does not continue the
	// store's op sequence and no snapshot resync explains the jump. The
	// receiver's replica is missing operations; the shipper must re-base
	// it with a full snapshot.
	ErrOpGap = errors.New("checkpoint: op sequence gap")

	// ErrOpOverflow is returned by Append when the log's byte budget is
	// exhausted (the backup fell too far behind for the op lane to catch
	// it up); the shipper should fall back to a full snapshot re-base.
	ErrOpOverflow = errors.New("checkpoint: op log overflow")
)

// OpLog is the primary-side mutation buffer: ops append at the tail and
// are released by AckThrough once every replica confirmed them, or by
// PruneAnchored once a confirmed full snapshot subsumes them. The byte
// budget bounds primary memory when a backup stalls.
type OpLog struct {
	mu       sync.Mutex
	ops      []Op
	nextSeq  uint64
	bytes    int64
	maxBytes int64
	overflow bool
}

// DefaultOpLogBytes bounds an OpLog constructed with maxBytes <= 0.
const DefaultOpLogBytes = 64 << 20

// NewOpLog returns an empty log with the given byte budget
// (DefaultOpLogBytes when maxBytes <= 0).
func NewOpLog(maxBytes int64) *OpLog {
	if maxBytes <= 0 {
		maxBytes = DefaultOpLogBytes
	}
	return &OpLog{nextSeq: 1, maxBytes: maxBytes}
}

// Append logs one mutation and returns its op sequence. Call it under the
// registry lock that serialized the mutation (Registry.WithLockSeq), so op
// order and anchor order agree. Data is retained by the log; the caller
// must not reuse it. On overflow the op is dropped, the log is marked
// overflowed until Reset/PruneAnchored clears the backlog, and the caller
// must schedule a full re-base.
func (l *OpLog) Append(anchor uint64, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.overflow || l.bytes+int64(len(data)) > l.maxBytes {
		l.overflow = true
		return 0, ErrOpOverflow
	}
	seq := l.nextSeq
	l.nextSeq++
	l.ops = append(l.ops, Op{Seq: seq, Anchor: anchor, Data: data})
	l.bytes += int64(len(data))
	return seq, nil
}

// Batch copies up to maxBytes of unreleased ops from the head into a wire
// batch (all of them when maxBytes <= 0). Returns nil when the log is
// empty or overflowed (an overflowed log has a hole; shipping its tail
// would corrupt the replica).
func (l *OpLog) Batch(maxBytes int64) *OpBatch {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ops) == 0 || l.overflow {
		return nil
	}
	n := len(l.ops)
	if maxBytes > 0 {
		var sz int64
		for i := range l.ops {
			sz += int64(len(l.ops[i].Data))
			if sz > maxBytes && i > 0 {
				n = i
				break
			}
		}
	}
	out := make([]Op, n)
	copy(out, l.ops[:n])
	return &OpBatch{Ops: out}
}

// AckThrough releases every op with Seq <= seq (all replicas confirmed).
func (l *OpLog) AckThrough(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropWhileLocked(func(op *Op) bool { return op.Seq <= seq })
}

// PruneAnchored releases every op with Anchor < snapSeq — they are
// subsumed by a confirmed snapshot with that sequence — and clears an
// overflow mark (the re-base snapshot restores a coherent baseline).
func (l *OpLog) PruneAnchored(snapSeq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropWhileLocked(func(op *Op) bool { return op.Anchor < snapSeq })
	l.overflow = false
}

// dropWhileLocked releases the longest head run matching drop.
func (l *OpLog) dropWhileLocked(drop func(*Op) bool) {
	i := 0
	for ; i < len(l.ops); i++ {
		if !drop(&l.ops[i]) {
			break
		}
		l.bytes -= int64(len(l.ops[i].Data))
	}
	if i == 0 {
		return
	}
	rest := copy(l.ops, l.ops[i:])
	for j := rest; j < len(l.ops); j++ {
		l.ops[j] = Op{}
	}
	l.ops = l.ops[:rest]
}

// Reset drops everything and clears overflow; op sequences keep rising so
// replicas can tell a post-reset stream from a replayed one.
func (l *OpLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ops = nil
	l.bytes = 0
	l.overflow = false
}

// Lag reports the unreleased backlog (ops, payload bytes) — the distance
// the slowest replica is behind the primary.
func (l *OpLog) Lag() (ops int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops), l.bytes
}

// Overflowed reports whether the log dropped an op since the last
// Reset/PruneAnchored.
func (l *OpLog) Overflowed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overflow
}

// Package checkpoint implements OFTT's state checkpointing (Section 2.2.2).
//
// On NT, the FTIM captured statically created state with GetThreadContext
// plus a memory walkthrough, and intercepted the Import Address Table to
// find dynamically created kernel objects. In Go, the analog of the memory
// walkthrough is a registry of named state regions captured by reflection
// (via the ndr codec); the analog of the IAT hook lives in internal/ftim,
// which wraps dynamic task creation so dynamically created state is also
// registered here before it can escape tracking.
//
// Three capture modes mirror the paper's API:
//
//   - full: every registered region ("copy the address space")
//   - selective: only regions designated with Select (OFTTSelSave)
//   - incremental: only regions whose encoding changed since the last
//     capture, an optimization enabled by ndr's deterministic encodings
package checkpoint

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/ndr"
)

// Kind labels a snapshot's capture mode.
type Kind string

// Capture modes.
const (
	KindFull        Kind = "full"
	KindSelective   Kind = "selective"
	KindIncremental Kind = "incremental"
)

// Errors.
var (
	// ErrUnknownRegion is returned when selecting or restoring a region
	// that was never registered.
	ErrUnknownRegion = errors.New("checkpoint: unknown region")

	// ErrStaleSnapshot is returned when applying a snapshot older than the
	// store's newest.
	ErrStaleSnapshot = errors.New("checkpoint: stale snapshot")

	// ErrNeedBase is returned when an incremental snapshot arrives at a
	// store with no full base to apply it to.
	ErrNeedBase = errors.New("checkpoint: incremental snapshot without base")
)

// Snapshot is one captured checkpoint, the unit sent to the backup node.
type Snapshot struct {
	Seq     uint64
	Kind    string
	TakenAt time.Time
	Regions map[string][]byte
}

// Bytes reports the payload size (for the E4 experiment).
func (s *Snapshot) Bytes() int {
	total := 0
	for name, data := range s.Regions {
		total += len(name) + len(data)
	}
	return total
}

// Encode serializes the snapshot for the wire. It encodes through the
// pointer's codec plan; the bytes are identical to Marshal(*s) but the
// snapshot (and its region map) is never copied into an interface box.
func (s *Snapshot) Encode() ([]byte, error) { return ndr.MarshalDeref(s) }

// DecodeSnapshot parses a wire-format snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := ndr.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode snapshot: %w", err)
	}
	return &s, nil
}

type region struct {
	name  string
	ptr   reflect.Value // pointer to the user's state
	iface any           // the same pointer as passed in, for deref-marshal
}

// Registry tracks an application's checkpointable state regions. All
// captures and restores take the registry lock; applications mutate
// registered state under the same lock (Lock/Unlock or WithLock), which is
// the Go rendering of "the application and the FTIM run as two separate
// threads within the same address space".
type Registry struct {
	mu       sync.Mutex
	regions  map[string]*region
	order    []string
	selected map[string]bool
	lastHash map[string]uint64
	seq      uint64
	scratch  []byte // reused capture buffer, guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		regions:  make(map[string]*region),
		selected: make(map[string]bool),
		lastHash: make(map[string]uint64),
	}
}

// Register adds a named state region. ptr must be a non-nil pointer to the
// state; the pointee is what gets captured and restored.
func (r *Registry) Register(name string, ptr any) error {
	v := reflect.ValueOf(ptr)
	if v.Kind() != reflect.Ptr || v.IsNil() {
		return fmt.Errorf("checkpoint: region %q must be a non-nil pointer", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.regions[name]; dup {
		return fmt.Errorf("checkpoint: region %q already registered", name)
	}
	r.regions[name] = &region{name: name, ptr: v, iface: ptr}
	r.order = append(r.order, name)
	sort.Strings(r.order)
	return nil
}

// Unregister removes a region (used when a dynamic task exits).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.regions[name]; !ok {
		return
	}
	delete(r.regions, name)
	delete(r.selected, name)
	delete(r.lastHash, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Select designates regions for selective checkpointing (OFTTSelSave).
func (r *Registry) Select(names ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		if _, ok := r.regions[n]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownRegion, n)
		}
		r.selected[n] = true
	}
	return nil
}

// Deselect removes regions from the selective set.
func (r *Registry) Deselect(names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		delete(r.selected, n)
	}
}

// Lock acquires the state mutex shared by the app and the FTIM thread.
func (r *Registry) Lock() { r.mu.Lock() }

// Unlock releases the state mutex.
func (r *Registry) Unlock() { r.mu.Unlock() }

// WithLock runs fn while holding the state mutex.
func (r *Registry) WithLock(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}

// WithLockSeq runs fn while holding the state mutex, passing the current
// capture sequence. It is the op-log emit hook: a mutation applied inside
// fn is anchored to the capture it follows, and because the op is logged
// in the same critical section, op order and anchor order agree — the
// invariant the receiver's subsumption pruning relies on.
func (r *Registry) WithLockSeq(fn func(anchor uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.seq)
}

// Regions lists registered region names in order.
func (r *Registry) Regions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// CaptureFull snapshots every registered region.
func (r *Registry) CaptureFull() (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.captureLocked(KindFull, func(string) bool { return true }, false)
}

// CaptureSelective snapshots the Select-designated regions; with no
// designation it falls back to a full capture, matching the paper's
// "address space (or the selected subset)".
func (r *Registry) CaptureSelective() (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.selected) == 0 {
		return r.captureLocked(KindFull, func(string) bool { return true }, false)
	}
	return r.captureLocked(KindSelective, func(n string) bool { return r.selected[n] }, false)
}

// CaptureIncremental snapshots only regions whose encoding changed since
// the previous capture of any kind. The first capture is always full.
func (r *Registry) CaptureIncremental() (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.lastHash) == 0 {
		return r.captureLocked(KindFull, func(string) bool { return true }, false)
	}
	return r.captureLocked(KindIncremental, func(string) bool { return true }, true)
}

func (r *Registry) captureLocked(kind Kind, include func(string) bool, onlyDirty bool) (*Snapshot, error) {
	r.seq++
	snap := &Snapshot{
		Seq:     r.seq,
		Kind:    string(kind),
		TakenAt: time.Now(),
		Regions: make(map[string][]byte, len(r.order)),
	}
	for _, name := range r.order {
		if !include(name) {
			continue
		}
		reg := r.regions[name]
		// Encode into the registry's scratch buffer; a clean region in an
		// incremental capture costs zero allocations, and a dirty one only
		// the exact-size copy the snapshot retains.
		buf, err := ndr.MarshalToDeref(r.scratch[:0], reg.iface)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: capture %q: %w", name, err)
		}
		r.scratch = buf
		h := hashBytes(buf)
		if onlyDirty && r.lastHash[name] == h {
			continue
		}
		r.lastHash[name] = h
		data := make([]byte, len(buf))
		copy(data, buf)
		snap.Regions[name] = data
	}
	return snap, nil
}

// Restore writes a snapshot's regions back into the registered state.
// Regions in the snapshot that are not registered are an error (the
// receiving application must have registered the same regions before
// restore — the same-binary-on-both-nodes rule of the paper).
func (r *Registry) Restore(s *Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, data := range s.Regions {
		reg, ok := r.regions[name]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownRegion, name)
		}
		if err := ndr.Unmarshal(data, reg.ptr.Interface()); err != nil {
			return fmt.Errorf("checkpoint: restore %q: %w", name, err)
		}
		r.lastHash[name] = hashBytes(data)
	}
	return nil
}

// Seq returns the last capture sequence number.
func (r *Registry) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// hashBytes is FNV-1a inlined so dirty detection does not allocate a
// hash.Hash per region per capture.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// StoreEventKind labels a store observer event.
type StoreEventKind int

// Store observer events.
const (
	// EventSnapshot fires after a snapshot was applied.
	EventSnapshot StoreEventKind = iota + 1
	// EventOps fires after an op batch was accepted.
	EventOps
	// EventReset fires after the store was cleared.
	EventReset
)

// StoreEvent describes one store mutation for a hot-standby observer. The
// event is self-contained — observers MUST NOT call back into the store
// (events are dispatched under the store's notification lock).
type StoreEvent struct {
	Kind StoreEventKind
	// Snap is the applied snapshot (EventSnapshot).
	Snap *Snapshot
	// Pending is a copy of the surviving op tail after the snapshot's
	// subsumption pruning (EventSnapshot).
	Pending []Op
	// Ops are the newly accepted operations, in sequence order (EventOps).
	Ops []Op
}

// StoreObserver receives store events in apply order.
type StoreObserver func(StoreEvent)

// SnapshotStore is the store contract the engine consumes; *Store (in
// memory), *PersistentStore (single-file disk) and *WALStore (segmented
// write-ahead log) all satisfy it.
type SnapshotStore interface {
	Apply(snap *Snapshot) error
	ApplyOps(batch *OpBatch) error
	Materialize(r *Registry) error
	Export() *Snapshot
	PendingOps() []Op
	OpSeq() uint64
	SetObserver(obs StoreObserver)
	LastSeq() uint64
	LastAt() time.Time
	Counts() (applied, rejected int)
	Reset()
}

// Store accumulates snapshots on the backup node, merging incrementals
// onto their base so the latest recoverable state is always
// materializable, plus the op tail shipped since the last snapshot anchor
// so a takeover can replay to the primary's latest acknowledged mutation.
type Store struct {
	mu       sync.Mutex
	merged   map[string][]byte
	lastSeq  uint64
	lastAt   time.Time
	applied  int
	rejected int

	ops      []Op   // accepted op tail, ascending Seq
	opSeq    uint64 // highest accepted op sequence
	opResync bool   // a full snapshot arrived; next batch may jump

	// obsMu serializes observer dispatch in apply order. It is acquired
	// while mu is still held and released after the callback, so events
	// are ordered but the callback never runs under mu. Lock order is
	// always mu -> obsMu; observers must not call store methods.
	obsMu sync.Mutex
	obs   StoreObserver
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{merged: make(map[string][]byte)}
}

// SetObserver installs the hot-standby observer (nil to remove).
func (s *Store) SetObserver(obs StoreObserver) {
	s.mu.Lock()
	s.obsMu.Lock()
	s.obs = obs
	s.obsMu.Unlock()
	s.mu.Unlock()
}

// notifyLocked hands off an event while holding mu: it takes obsMu,
// releases mu, runs the callback, and releases obsMu. The caller must
// hold mu and must return immediately after (mu is unlocked here).
func (s *Store) notifyLocked(ev StoreEvent) {
	obs := s.obs
	if obs == nil {
		s.mu.Unlock()
		return
	}
	s.obsMu.Lock()
	s.mu.Unlock()
	obs(ev)
	s.obsMu.Unlock()
}

// Apply merges a received snapshot. Snapshots must arrive in increasing
// sequence order; stale ones are rejected. A full or selective snapshot
// replaces its regions; an incremental one requires a prior base. Ops
// anchored before the snapshot are subsumed by it and pruned from the
// tail; a full snapshot additionally permits the next op batch to jump
// the op sequence (the shipper prunes its own log after a re-base).
func (s *Store) Apply(snap *Snapshot) error {
	s.mu.Lock()
	if snap.Seq <= s.lastSeq {
		s.rejected++
		s.mu.Unlock()
		return fmt.Errorf("%w: seq %d <= %d", ErrStaleSnapshot, snap.Seq, s.lastSeq)
	}
	if Kind(snap.Kind) == KindIncremental && len(s.merged) == 0 {
		s.rejected++
		s.mu.Unlock()
		return ErrNeedBase
	}
	for name, data := range snap.Regions {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.merged[name] = cp
	}
	s.lastSeq = snap.Seq
	s.lastAt = snap.TakenAt
	s.applied++
	s.pruneOpsLocked(snap.Seq)
	if Kind(snap.Kind) == KindFull {
		s.opResync = true
	}
	var pending []Op
	if s.obs != nil {
		pending = append([]Op(nil), s.ops...)
	}
	s.notifyLocked(StoreEvent{Kind: EventSnapshot, Snap: snap, Pending: pending})
	return nil
}

// pruneOpsLocked drops ops subsumed by an applied snapshot.
func (s *Store) pruneOpsLocked(snapSeq uint64) {
	i := 0
	for ; i < len(s.ops); i++ {
		if s.ops[i].Anchor >= snapSeq {
			break
		}
	}
	if i > 0 {
		s.ops = append(s.ops[:0], s.ops[i:]...)
	}
}

// ApplyOps accepts a shipped op batch. Duplicates (Seq <= the highest
// accepted) are skipped; a sequence gap is an error unless a full
// snapshot arrived since the last batch (the shipper pruned subsumed ops
// after a re-base). The batch is all-or-nothing: on error nothing is
// retained.
func (s *Store) ApplyOps(batch *OpBatch) error {
	s.mu.Lock()
	if s.lastSeq == 0 {
		s.rejected++
		s.mu.Unlock()
		return ErrNeedBase
	}
	fresh := make([]Op, 0, len(batch.Ops))
	next := s.opSeq
	resync := s.opResync
	for i := range batch.Ops {
		op := batch.Ops[i]
		if op.Seq <= next {
			continue // duplicate of an already-accepted op
		}
		if next != 0 && op.Seq != next+1 && !resync {
			s.rejected++
			s.mu.Unlock()
			return fmt.Errorf("%w: got seq %d after %d", ErrOpGap, op.Seq, next)
		}
		resync = false
		next = op.Seq
		if op.Anchor < s.lastSeq {
			// Subsumed: an already-applied snapshot was captured after this
			// op, so its regions contain the op's effect. The seq is
			// consumed, but the op is neither retained nor announced —
			// replaying it would apply it twice.
			continue
		}
		cp := Op{Seq: op.Seq, Anchor: op.Anchor, Data: append([]byte(nil), op.Data...)}
		fresh = append(fresh, cp)
	}
	if next != s.opSeq {
		s.opSeq = next
		s.opResync = false
	}
	if len(fresh) == 0 {
		s.mu.Unlock()
		return nil
	}
	s.ops = append(s.ops, fresh...)
	s.notifyLocked(StoreEvent{Kind: EventOps, Ops: fresh})
	return nil
}

// PendingOps copies the accepted op tail (ops not yet subsumed by an
// applied snapshot), in sequence order.
func (s *Store) PendingOps() []Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Op(nil), s.ops...)
}

// OpSeq returns the highest accepted op sequence (0 if none).
func (s *Store) OpSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opSeq
}

// Materialize restores the merged state into a registry: the takeover path
// "the copy on the backup node will start running with the latest
// checkpoint".
func (s *Store) Materialize(r *Registry) error {
	s.mu.Lock()
	snap := &Snapshot{
		Seq:     s.lastSeq,
		Kind:    string(KindFull),
		TakenAt: s.lastAt,
		Regions: make(map[string][]byte, len(s.merged)),
	}
	for name, data := range s.merged {
		snap.Regions[name] = data
	}
	s.mu.Unlock()
	return r.Restore(snap)
}

// Export packages the merged state as a full snapshot (for serving a
// peer's recovery fetch). Returns nil if the store is empty.
func (s *Store) Export() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastSeq == 0 {
		return nil
	}
	snap := &Snapshot{
		Seq:     s.lastSeq,
		Kind:    string(KindFull),
		TakenAt: s.lastAt,
		Regions: make(map[string][]byte, len(s.merged)),
	}
	for name, data := range s.merged {
		cp := make([]byte, len(data))
		copy(cp, data)
		snap.Regions[name] = cp
	}
	return snap
}

// LastSeq returns the newest applied sequence number (0 if none).
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// LastAt returns the capture time of the newest applied snapshot.
func (s *Store) LastAt() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastAt
}

// Counts reports (applied, rejected) snapshot totals.
func (s *Store) Counts() (applied, rejected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied, s.rejected
}

var _ SnapshotStore = (*Store)(nil)

// Reset clears the store, including the op tail (used when a node
// rejoins as backup).
func (s *Store) Reset() {
	s.mu.Lock()
	s.merged = make(map[string][]byte)
	s.lastSeq = 0
	s.lastAt = time.Time{}
	s.ops = nil
	s.opSeq = 0
	s.opResync = false
	s.notifyLocked(StoreEvent{Kind: EventReset})
}

package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// testStreamIns builds instruments with live counters (the zero value of
// each metric is usable; nil fields would read 0 forever).
func testStreamIns() *StreamInstruments {
	return &StreamInstruments{
		SentChunks: &telemetry.Counter{}, WireBytes: &telemetry.Counter{},
		RawBytes: &telemetry.Counter{}, Inflight: &telemetry.Gauge{},
		RecvCorrupt: &telemetry.Counter{}, Resumes: &telemetry.Counter{},
		OpsShipped: &telemetry.Counter{}, OpBytes: &telemetry.Counter{},
	}
}

// streamPair wires a Sender to a shared ReceiverState over netsim. The
// receiver survives connection breaks (redial re-serves the same state),
// which is the property the resume tests exercise.
type streamPair struct {
	t     *testing.T
	n     *netsim.Network
	l     *netsim.Listener
	state *ReceiverState
	stop  chan struct{}
	dials int
}

func newStreamPair(t *testing.T, store SnapshotStore, ins *StreamInstruments) *streamPair {
	t.Helper()
	n := netsim.New("eth0", 1)
	l, err := n.Listen("backup:ckpt")
	if err != nil {
		t.Fatal(err)
	}
	p := &streamPair{t: t, n: n, l: l, state: NewReceiverState(store, ins), stop: make(chan struct{})}
	t.Cleanup(func() { close(p.stop); l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go p.state.Serve(conn, p.stop)
		}
	}()
	return p
}

func (p *streamPair) dial() *netsim.Conn {
	p.t.Helper()
	p.dials++
	conn, err := p.n.Dial(netsim.Addr(fmt.Sprintf("primary:ckpt-%d", p.dials)), "backup:ckpt")
	if err != nil {
		p.t.Fatal(err)
	}
	return conn
}

// bigSnapshot builds a snapshot whose raw stream spans many chunks:
// an incompressible region (cycling bytes) and a compressible one.
func bigSnapshot(seq uint64, size int) *Snapshot {
	noisy := make([]byte, size)
	for i := range noisy {
		noisy[i] = byte(i*7 + i>>8)
	}
	flat := bytes.Repeat([]byte{0xAB}, size)
	return &Snapshot{
		Seq: seq, Kind: string(KindFull), TakenAt: time.Now(),
		Regions: map[string][]byte{"noisy": noisy, "flat": flat},
	}
}

func TestStreamManyChunksRoundTrip(t *testing.T) {
	store := NewStore()
	ins := testStreamIns()
	p := newStreamPair(t, store, ins)

	sender := NewStreamSender(p.dial(), StreamConfig{
		ChunkSize: 4 << 10, Window: 4, AckTimeout: time.Second, Instruments: ins,
	})
	defer sender.Close()

	snap := bigSnapshot(1, 64<<10)
	if err := sender.Send(snap); err != nil {
		t.Fatal(err)
	}
	got := store.Export()
	if got == nil || got.Seq != 1 {
		t.Fatalf("store export: %+v", got)
	}
	for name, want := range snap.Regions {
		if !bytes.Equal(got.Regions[name], want) {
			t.Fatalf("region %q mismatch after streaming", name)
		}
	}
	// Two 64KiB regions + headers over 4KiB chunks: at least 32 chunks.
	if c := ins.SentChunks.Value(); c < 32 {
		t.Fatalf("SentChunks = %d, want >= 32", c)
	}
}

func TestStreamCompressionShrinksWire(t *testing.T) {
	store := NewStore()
	ins := testStreamIns()
	p := newStreamPair(t, store, ins)

	sender := NewStreamSender(p.dial(), StreamConfig{
		ChunkSize: 8 << 10, AckTimeout: time.Second, Compress: true, Instruments: ins,
	})
	defer sender.Close()

	size := 128 << 10
	snap := &Snapshot{Seq: 1, Kind: string(KindFull), TakenAt: time.Now(),
		Regions: map[string][]byte{"flat": bytes.Repeat([]byte{0x42}, size)}}
	if err := sender.Send(snap); err != nil {
		t.Fatal(err)
	}
	if wire, raw := ins.WireBytes.Value(), ins.RawBytes.Value(); wire >= raw/4 {
		t.Fatalf("compressible state: wire %d vs raw %d, want < raw/4", wire, raw)
	}
	got := store.Export()
	if !bytes.Equal(got.Regions["flat"], snap.Regions["flat"]) {
		t.Fatal("decompressed region mismatch")
	}
}

// failConn injects a connection failure after a fixed number of sends.
type failConn struct {
	FrameConn
	sends     int
	failAfter int
}

func (c *failConn) Send(b []byte) error {
	c.sends++
	if c.sends > c.failAfter {
		c.FrameConn.Close()
		return errors.New("injected connection failure")
	}
	return c.FrameConn.Send(b)
}

func TestStreamResumeAfterConnectionCut(t *testing.T) {
	store := NewStore()
	ins := testStreamIns()
	p := newStreamPair(t, store, ins)

	snap := bigSnapshot(1, 64<<10)

	// First attempt dies mid-stream: begin + a handful of chunks land.
	broken := NewStreamSender(&failConn{FrameConn: p.dial(), failAfter: 8},
		StreamConfig{ChunkSize: 4 << 10, Window: 4, AckTimeout: 300 * time.Millisecond, Instruments: ins})
	if err := broken.Send(snap); err == nil {
		t.Fatal("send over cut connection succeeded")
	}
	broken.Close()

	waitFor(t, time.Second, func() bool {
		_, have, _ := p.state.Partial()
		return have > 0
	})
	_, have, chunks := p.state.Partial()
	if have == 0 || have >= chunks {
		t.Fatalf("partial after cut: have %d of %d", have, chunks)
	}

	// The re-ship of the SAME snapshot resumes: only the missing chunks
	// cross the wire.
	before := ins.SentChunks.Value()
	sender := NewStreamSender(p.dial(), StreamConfig{
		ChunkSize: 4 << 10, Window: 4, AckTimeout: time.Second, Instruments: ins})
	defer sender.Close()
	if err := sender.Send(snap); err != nil {
		t.Fatal(err)
	}
	if ins.Resumes.Value() == 0 {
		t.Fatal("resume not counted")
	}
	resent := ins.SentChunks.Value() - before
	if resent >= int64(chunks) {
		t.Fatalf("resume resent %d of %d chunks, want fewer", resent, chunks)
	}
	got := store.Export()
	if got == nil || got.Seq != 1 || !bytes.Equal(got.Regions["noisy"], snap.Regions["noisy"]) {
		t.Fatal("resumed snapshot did not materialize intact")
	}
}

// corruptConn flips a byte in the first chunk frame it carries.
type corruptConn struct {
	FrameConn
	done bool
}

func (c *corruptConn) Send(b []byte) error {
	if !c.done && len(b) > 0 && b[0] == fChunk {
		c.done = true
		evil := append([]byte(nil), b...)
		evil[len(evil)-1] ^= 0xFF
		return c.FrameConn.Send(evil)
	}
	return c.FrameConn.Send(b)
}

func TestStreamCorruptChunkCountedAndRecovered(t *testing.T) {
	store := NewStore()
	ins := testStreamIns()
	p := newStreamPair(t, store, ins)

	snap := bigSnapshot(1, 32<<10)

	// The corrupted chunk must fail its CRC: the receiver counts it and
	// drops the connection instead of buffering bad bytes.
	bad := NewStreamSender(&corruptConn{FrameConn: p.dial()},
		StreamConfig{ChunkSize: 4 << 10, Window: 2, AckTimeout: 300 * time.Millisecond, Instruments: ins})
	if err := bad.Send(snap); err == nil {
		t.Fatal("send with corrupt chunk succeeded")
	}
	bad.Close()
	waitFor(t, time.Second, func() bool { return ins.RecvCorrupt.Value() == 1 })

	// A clean retry still lands the snapshot.
	sender := NewStreamSender(p.dial(), StreamConfig{
		ChunkSize: 4 << 10, AckTimeout: time.Second, Instruments: ins})
	defer sender.Close()
	if err := sender.Send(snap); err != nil {
		t.Fatal(err)
	}
	if store.LastSeq() != 1 {
		t.Fatalf("store seq = %d after retry", store.LastSeq())
	}
}

func TestSendOpsRoundTrip(t *testing.T) {
	store := NewStore()
	ins := testStreamIns()
	p := newStreamPair(t, store, ins)

	sender := NewStreamSender(p.dial(), StreamConfig{AckTimeout: time.Second, Instruments: ins})
	defer sender.Close()

	// Ops without a base must be rejected through the wire ack.
	batch := &OpBatch{Ops: []Op{{Seq: 1, Anchor: 1, Data: []byte("x")}}}
	if err := sender.SendOps(batch); err == nil {
		t.Fatal("ops without base accepted")
	}

	base := &Snapshot{Seq: 1, Kind: string(KindFull), TakenAt: time.Now(),
		Regions: map[string][]byte{"r": {1}}}
	if err := sender.Send(base); err != nil {
		t.Fatal(err)
	}
	if err := sender.SendOps(&OpBatch{Ops: []Op{
		{Seq: 1, Anchor: 1, Data: []byte("a")},
		{Seq: 2, Anchor: 1, Data: []byte("bb")},
	}}); err != nil {
		t.Fatal(err)
	}
	if got := store.OpSeq(); got != 2 {
		t.Fatalf("op seq = %d, want 2", got)
	}
	if pend := store.PendingOps(); len(pend) != 2 || !bytes.Equal(pend[1].Data, []byte("bb")) {
		t.Fatalf("pending ops: %+v", pend)
	}
	if ins.OpsShipped.Value() != 2 {
		t.Fatalf("OpsShipped = %d", ins.OpsShipped.Value())
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// PersistentStore wraps Store with crash-safe disk persistence: every
// applied snapshot atomically rewrites a state file, and a cold-started
// node can reload the last confirmed checkpoint even after both nodes of
// the pair were down — a production hardening beyond the paper's
// in-memory design (its conclusion targets "the large installed base of
// monitoring and control software", which needs exactly this).
type PersistentStore struct {
	mem  *Store
	path string
}

var _ SnapshotStore = (*PersistentStore)(nil)

// fileMagic guards against loading foreign files.
var fileMagic = []byte("OFTTCKP1")

// NewPersistentStore opens (or creates) a store backed by path. If the
// file exists and parses, its contents seed the store.
func NewPersistentStore(path string) (*PersistentStore, error) {
	ps := &PersistentStore{mem: NewStore(), path: path}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return ps, nil
	case err != nil:
		return nil, fmt.Errorf("checkpoint: open store %s: %w", path, err)
	}
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != string(fileMagic) {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint store", path)
	}
	snap, err := DecodeSnapshot(data[len(fileMagic):])
	if err != nil {
		return nil, fmt.Errorf("checkpoint: corrupt store %s: %w", path, err)
	}
	if err := ps.mem.Apply(snap); err != nil {
		return nil, fmt.Errorf("checkpoint: seed store: %w", err)
	}
	return ps, nil
}

// Apply merges a snapshot and persists the merged state atomically.
func (ps *PersistentStore) Apply(snap *Snapshot) error {
	if err := ps.mem.Apply(snap); err != nil {
		return err
	}
	return ps.flush()
}

// ApplyOps applies an op batch to the memory view. Ops are not persisted
// here — the single-file store rewrites O(state) per flush, so durable op
// logging is WALStore's job; this store keeps them only for takeover
// replay within the process lifetime.
func (ps *PersistentStore) ApplyOps(batch *OpBatch) error { return ps.mem.ApplyOps(batch) }

// PendingOps copies the accepted op tail.
func (ps *PersistentStore) PendingOps() []Op { return ps.mem.PendingOps() }

// OpSeq returns the highest accepted op sequence.
func (ps *PersistentStore) OpSeq() uint64 { return ps.mem.OpSeq() }

// SetObserver installs the hot-standby observer on the memory view.
func (ps *PersistentStore) SetObserver(obs StoreObserver) { ps.mem.SetObserver(obs) }

// Materialize restores the merged state into a registry.
func (ps *PersistentStore) Materialize(r *Registry) error { return ps.mem.Materialize(r) }

// Export packages the merged state as a full snapshot (nil when empty).
func (ps *PersistentStore) Export() *Snapshot { return ps.mem.Export() }

// LastSeq returns the newest applied sequence number.
func (ps *PersistentStore) LastSeq() uint64 { return ps.mem.LastSeq() }

// LastAt returns the capture time of the newest applied snapshot.
func (ps *PersistentStore) LastAt() time.Time { return ps.mem.LastAt() }

// Counts reports (applied, rejected) snapshot totals.
func (ps *PersistentStore) Counts() (applied, rejected int) { return ps.mem.Counts() }

// Reset clears the store and removes the state file.
func (ps *PersistentStore) Reset() {
	ps.mem.Reset()
	_ = os.Remove(ps.path)
}

// flush writes the merged state with write-to-temp + rename atomicity.
func (ps *PersistentStore) flush() error {
	snap := ps.mem.Export()
	if snap == nil {
		return nil
	}
	enc, err := snap.Encode()
	if err != nil {
		return fmt.Errorf("checkpoint: encode store: %w", err)
	}
	dir := filepath.Dir(ps.path)
	tmp, err := os.CreateTemp(dir, ".ofttckp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		_ = os.Remove(tmpName)
	}
	if _, err := tmp.Write(fileMagic); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write store: %w", err)
	}
	if _, err := tmp.Write(enc); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: sync store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close store: %w", err)
	}
	if err := os.Rename(tmpName, ps.path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: commit store: %w", err)
	}
	// The rename alone is not durable: without a directory fsync a crash
	// can roll the directory entry back to the old file (or to nothing),
	// losing a checkpoint the backup already acknowledged.
	return syncDir(dir)
}

// Path returns the backing file path.
func (ps *PersistentStore) Path() string { return ps.path }

package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPersistentStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node2.ckpt")
	ps, err := NewPersistentStore(path)
	if err != nil {
		t.Fatal(err)
	}

	// Build state through a registry and apply a few snapshots.
	reg := NewRegistry()
	a, b := int64(1), int64(2)
	_ = reg.Register("a", &a)
	_ = reg.Register("b", &b)
	base, _ := reg.CaptureIncremental()
	if err := ps.Apply(base); err != nil {
		t.Fatal(err)
	}
	a = 99
	inc, _ := reg.CaptureIncremental()
	if err := ps.Apply(inc); err != nil {
		t.Fatal(err)
	}

	// Cold restart: a fresh store seeded from disk.
	ps2, err := NewPersistentStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if ps2.LastSeq() == 0 {
		t.Fatal("reloaded store is empty")
	}
	var ra, rb int64
	replica := NewRegistry()
	_ = replica.Register("a", &ra)
	_ = replica.Register("b", &rb)
	if err := ps2.Materialize(replica); err != nil {
		t.Fatal(err)
	}
	if ra != 99 || rb != 2 {
		t.Fatalf("recovered a=%d b=%d", ra, rb)
	}
}

func TestPersistentStoreMissingFileIsEmpty(t *testing.T) {
	ps, err := NewPersistentStore(filepath.Join(t.TempDir(), "none.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if ps.LastSeq() != 0 {
		t.Fatal("fresh store not empty")
	}
}

func TestPersistentStoreRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.ckpt")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPersistentStore(path); err == nil {
		t.Fatal("foreign file accepted")
	}
}

func TestPersistentStoreRejectsCorruptBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, append(append([]byte{}, fileMagic...), 0xFF, 0x01), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPersistentStore(path); err == nil {
		t.Fatal("corrupt body accepted")
	}
}

func TestPersistentStoreResetRemovesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.ckpt")
	ps, err := NewPersistentStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Apply(&Snapshot{Seq: 1, Kind: string(KindFull),
		Regions: map[string][]byte{"x": {1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("state file missing after apply: %v", err)
	}
	ps.Reset()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("state file survived reset: %v", err)
	}
	// Applies after reset need a base again, then persist again.
	if err := ps.Apply(&Snapshot{Seq: 1, Kind: string(KindFull),
		Regions: map[string][]byte{"x": {2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("state file missing after re-apply: %v", err)
	}
}

func TestPersistentStoreStaleStillRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.ckpt")
	ps, _ := NewPersistentStore(path)
	full := &Snapshot{Seq: 5, Kind: string(KindFull), Regions: map[string][]byte{"x": {1}}}
	if err := ps.Apply(full); err != nil {
		t.Fatal(err)
	}
	if err := ps.Apply(full); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("got %v", err)
	}
	// Reload respects the persisted sequence.
	ps2, err := NewPersistentStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps2.Apply(&Snapshot{Seq: 5, Kind: string(KindFull),
		Regions: map[string][]byte{"x": {2}}}); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("reloaded store accepted stale seq: %v", err)
	}
}

package checkpoint

import (
	"errors"
	"testing"
	"time"
)

func TestOpLogAppendBatchAck(t *testing.T) {
	l := NewOpLog(0)
	for i := 0; i < 5; i++ {
		seq, err := l.Append(3, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append seq %d, want %d", seq, i+1)
		}
	}
	if ops, _ := l.Lag(); ops != 5 {
		t.Fatalf("lag %d, want 5", ops)
	}
	batch := l.Batch(1 << 20)
	if batch == nil || len(batch.Ops) != 5 {
		t.Fatalf("batch: %+v", batch)
	}
	l.AckThrough(3)
	if ops, _ := l.Lag(); ops != 2 {
		t.Fatalf("lag after ack: %d, want 2", ops)
	}
	// Sequence numbers keep rising across Reset so receivers' dup-skip
	// stays monotonic.
	l.Reset()
	seq, err := l.Append(4, []byte("x"))
	if err != nil || seq != 6 {
		t.Fatalf("append after reset: seq %d err %v", seq, err)
	}
}

func TestOpLogBatchRespectsByteBudget(t *testing.T) {
	l := NewOpLog(0)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	batch := l.Batch(250) // ~two ops of 100 bytes + op overhead
	if batch == nil || len(batch.Ops) == 0 || len(batch.Ops) >= 10 {
		t.Fatalf("budgeted batch: %+v", batch)
	}
}

func TestOpLogOverflowFallsBack(t *testing.T) {
	l := NewOpLog(64)
	if _, err := l.Append(1, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, make([]byte, 64)); !errors.Is(err, ErrOpOverflow) {
		t.Fatalf("overflow append: %v", err)
	}
	if !l.Overflowed() {
		t.Fatal("overflow not latched")
	}
	if l.Batch(1<<20) != nil {
		t.Fatal("overflowed log still handed out a batch")
	}
	// The full re-base prunes and clears the overflow latch.
	l.PruneAnchored(2)
	if l.Overflowed() {
		t.Fatal("overflow survived prune")
	}
}

func TestOpLogPruneAnchored(t *testing.T) {
	l := NewOpLog(0)
	_, _ = l.Append(1, []byte("a")) // anchor 1: contained in snapshot 2
	_, _ = l.Append(1, []byte("b"))
	_, _ = l.Append(2, []byte("c")) // anchor 2: NOT contained in snapshot 2
	l.PruneAnchored(2)
	batch := l.Batch(1 << 20)
	if batch == nil || len(batch.Ops) != 1 || string(batch.Ops[0].Data) != "c" {
		t.Fatalf("after prune: %+v", batch)
	}
}

func opStore(t *testing.T, baseSeq uint64) *Store {
	t.Helper()
	s := NewStore()
	if err := s.Apply(&Snapshot{Seq: baseSeq, Kind: string(KindFull), TakenAt: time.Now(),
		Regions: map[string][]byte{"r": {1}}}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreApplyOpsRules(t *testing.T) {
	// No base: rejected.
	s := NewStore()
	err := s.ApplyOps(&OpBatch{Ops: []Op{{Seq: 1, Anchor: 1, Data: []byte("x")}}})
	if !errors.Is(err, ErrNeedBase) {
		t.Fatalf("baseless ops: %v", err)
	}

	s = opStore(t, 1)
	if err := s.ApplyOps(&OpBatch{Ops: []Op{
		{Seq: 1, Anchor: 1, Data: []byte("a")},
		{Seq: 2, Anchor: 1, Data: []byte("b")},
	}}); err != nil {
		t.Fatal(err)
	}
	// Duplicate seqs are skipped, not errors (the resend path).
	if err := s.ApplyOps(&OpBatch{Ops: []Op{{Seq: 2, Anchor: 1, Data: []byte("b")}}}); err != nil {
		t.Fatal(err)
	}
	// A gap without a resync base is a broken chain.
	err = s.ApplyOps(&OpBatch{Ops: []Op{{Seq: 9, Anchor: 1, Data: []byte("z")}}})
	if !errors.Is(err, ErrOpGap) {
		t.Fatalf("gapped ops: %v", err)
	}
	if s.OpSeq() != 2 {
		t.Fatalf("op seq after gap reject: %d", s.OpSeq())
	}

	// A fresh full snapshot resyncs: one gap is forgiven, and ops the
	// snapshot already contains (older anchor) are consumed silently.
	if err := s.Apply(&Snapshot{Seq: 5, Kind: string(KindFull), TakenAt: time.Now(),
		Regions: map[string][]byte{"r": {5}}}); err != nil {
		t.Fatal(err)
	}
	if len(s.PendingOps()) != 0 {
		t.Fatal("full snapshot did not prune pending ops")
	}
	if err := s.ApplyOps(&OpBatch{Ops: []Op{
		{Seq: 9, Anchor: 4, Data: []byte("old")}, // anchor < 5: subsumed
		{Seq: 10, Anchor: 5, Data: []byte("new")},
	}}); err != nil {
		t.Fatal(err)
	}
	pend := s.PendingOps()
	if len(pend) != 1 || string(pend[0].Data) != "new" {
		t.Fatalf("subsumption filter: %+v", pend)
	}
	if s.OpSeq() != 10 {
		t.Fatalf("op seq after resync: %d", s.OpSeq())
	}
}

func TestStoreObserverEvents(t *testing.T) {
	s := NewStore()
	var events []StoreEventKind
	var lastPending int
	s.SetObserver(func(ev StoreEvent) {
		events = append(events, ev.Kind)
		if ev.Kind == EventSnapshot {
			lastPending = len(ev.Pending)
		}
	})
	if err := s.Apply(&Snapshot{Seq: 1, Kind: string(KindFull), TakenAt: time.Now(),
		Regions: map[string][]byte{"r": {1}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyOps(&OpBatch{Ops: []Op{{Seq: 1, Anchor: 1, Data: []byte("a")}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(&Snapshot{Seq: 2, Kind: string(KindFull), TakenAt: time.Now(),
		Regions: map[string][]byte{"r": {2}}}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	want := []StoreEventKind{EventSnapshot, EventOps, EventSnapshot, EventReset}
	if len(events) != len(want) {
		t.Fatalf("events: %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events: %v, want %v", events, want)
		}
	}
	// The second snapshot's event still carried the op (anchor 1 >= seq 2
	// is false -> pruned; anchor 1 < 2 means contained).
	if lastPending != 0 {
		t.Fatalf("snapshot 2 pending: %d, want 0 (op subsumed)", lastPending)
	}
}

package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func testWALIns() *WALInstruments {
	return &WALInstruments{
		Segments: &telemetry.Gauge{}, SegmentBytes: &telemetry.Gauge{},
		Appends: &telemetry.Counter{}, AppendBytes: &telemetry.Counter{},
		Compactions: &telemetry.Counter{},
	}
}

func walSnap(seq uint64, name string, data []byte) *Snapshot {
	kind := KindIncremental
	if seq == 1 {
		kind = KindFull
	}
	return &Snapshot{Seq: seq, Kind: string(kind), TakenAt: time.Unix(int64(seq), 0),
		Regions: map[string][]byte{name: data}}
}

func TestWALColdStartReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWALStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(walSnap(1, "a", []byte{1})); err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(walSnap(2, "b", []byte{2, 2})); err != nil {
		t.Fatal(err)
	}
	if err := w.ApplyOps(&OpBatch{Ops: []Op{{Seq: 1, Anchor: 2, Data: []byte("op")}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := NewWALStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 2 || w2.OpSeq() != 1 {
		t.Fatalf("cold start: seq %d opSeq %d", w2.LastSeq(), w2.OpSeq())
	}
	snap := w2.Export()
	if string(snap.Regions["a"]) != "\x01" || len(snap.Regions["b"]) != 2 {
		t.Fatalf("cold start regions: %+v", snap.Regions)
	}
	if pend := w2.PendingOps(); len(pend) != 1 || string(pend[0].Data) != "op" {
		t.Fatalf("cold start pending ops: %+v", pend)
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return matches[len(matches)-1]
}

func TestWALTornTailRecoversToLastIntactRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWALStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.Apply(walSnap(seq, "r", []byte{byte(seq)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: clip bytes off the last record, as a crash mid-write
	// would.
	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	w2, err := NewWALStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 2 {
		t.Fatalf("after torn tail: seq %d, want 2", w2.LastSeq())
	}
	if got := w2.Export().Regions["r"]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("after torn tail: region %v", got)
	}

	// The store keeps working after the recovery: new applies land on a
	// fresh segment past the torn one.
	if err := w2.Apply(walSnap(3, "r", []byte{33})); err != nil {
		t.Fatal(err)
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWALStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		if err := w.Apply(walSnap(seq, "r", []byte{byte(seq)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the LAST record: its CRC no longer matches.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := NewWALStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 1 {
		t.Fatalf("after corrupt record: seq %d, want 1", w2.LastSeq())
	}
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	ins := testWALIns()
	w, err := NewWALStore(WALConfig{
		Dir: dir, SegmentBytes: 256, CompactSegments: 2, Instruments: ins})
	if err != nil {
		t.Fatal(err)
	}
	// Each ~64-byte record overflows the 256-byte segment quickly.
	for seq := uint64(1); seq <= 20; seq++ {
		if err := w.Apply(walSnap(seq, "r", []byte{byte(seq), 0, 0, 0})); err != nil {
			t.Fatal(err)
		}
	}
	w.CompactNow()
	if ins.Compactions.Value() == 0 {
		t.Fatal("no compaction ran")
	}
	if _, err := os.Stat(filepath.Join(dir, "base.ckpt")); err != nil {
		t.Fatalf("no base after compaction: %v", err)
	}
	if segs := ins.Segments.Value(); segs != 1 {
		t.Fatalf("segments after compaction: %d, want 1 (active only)", segs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold start from base + active segment reproduces the state.
	w2, err := NewWALStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 20 {
		t.Fatalf("after compaction restart: seq %d, want 20", w2.LastSeq())
	}
	if got := w2.Export().Regions["r"]; got[0] != 20 {
		t.Fatalf("after compaction restart: region %v", got)
	}
}

func TestWALResetRemovesLog(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWALStore(WALConfig{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for seq := uint64(1); seq <= 5; seq++ {
		if err := w.Apply(walSnap(seq, "r", []byte{byte(seq)})); err != nil {
			t.Fatal(err)
		}
	}
	w.Reset()
	if w.LastSeq() != 0 {
		t.Fatalf("reset left seq %d", w.LastSeq())
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(matches) != 1 { // only the fresh active segment
		t.Fatalf("reset left segments: %v", matches)
	}
	// The store accepts a new chain after reset.
	if err := w.Apply(walSnap(1, "r", []byte{9})); err != nil {
		t.Fatal(err)
	}
}

package checkpoint

// The pre-streaming one-frame transfer protocol, kept verbatim as a
// test-only baseline (the singlepump_ref/oneconn_ref pattern): every
// snapshot encoded into a single frame, one blocking ack, no resume. The
// bench grid ships through both implementations so BENCH_CKPT.json shows
// what chunked streaming + op-log shipping buy as state grows.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ndr"
)

// oneframeAck is the legacy receiver acknowledgement frame.
type oneframeAck struct {
	Seq uint64
	OK  bool
	Err string
}

// oneframeSender ships whole-snapshot frames and blocks for each ack.
type oneframeSender struct {
	conn    FrameConn
	timeout time.Duration

	sent      int
	sentBytes int64
}

func newOneframeSender(conn FrameConn, ackTimeout time.Duration) *oneframeSender {
	if ackTimeout <= 0 {
		ackTimeout = 2 * time.Second
	}
	return &oneframeSender{conn: conn, timeout: ackTimeout}
}

func (s *oneframeSender) Send(snap *Snapshot) error {
	frame, err := snap.Encode()
	if err != nil {
		return err
	}
	if err := s.conn.Send(frame); err != nil {
		return fmt.Errorf("checkpoint: send seq %d: %w", snap.Seq, err)
	}
	raw, err := s.conn.RecvTimeout(s.timeout)
	if err != nil {
		return fmt.Errorf("%w: seq %d: %v", ErrNotAcked, snap.Seq, err)
	}
	var a oneframeAck
	if err := ndr.Unmarshal(raw, &a); err != nil {
		return fmt.Errorf("%w: corrupt ack: %v", ErrNotAcked, err)
	}
	if a.Seq != snap.Seq {
		return fmt.Errorf("%w: ack seq %d for snapshot %d", ErrNotAcked, a.Seq, snap.Seq)
	}
	if !a.OK {
		return fmt.Errorf("checkpoint: backup rejected seq %d: %s", snap.Seq, a.Err)
	}
	s.sent++
	s.sentBytes += int64(len(frame))
	return nil
}

func (s *oneframeSender) Stats() (count int, bytes int64) { return s.sent, s.sentBytes }

func (s *oneframeSender) Close() { _ = s.conn.Close() }

// serveOneframeReceiver pumps whole-snapshot frames into store until the
// connection breaks or stop closes.
func serveOneframeReceiver(conn FrameConn, store SnapshotStore, stop <-chan struct{}) {
	defer conn.Close()
	for {
		select {
		case <-stop:
			return
		default:
		}
		raw, err := conn.RecvTimeout(250 * time.Millisecond)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			return
		}
		snap, err := DecodeSnapshot(raw)
		if err != nil {
			return // corrupt peer: drop the connection
		}
		a := oneframeAck{Seq: snap.Seq, OK: true}
		if err := store.Apply(snap); err != nil {
			a.OK = false
			a.Err = err.Error()
			if errors.Is(err, ErrStaleSnapshot) {
				a.OK = true
				a.Err = ""
			}
		}
		out, err := ndr.Marshal(a)
		if err != nil {
			return
		}
		if err := conn.Send(out); err != nil {
			return
		}
	}
}

// Streaming chunked checkpoint transfer. The one-frame protocol (kept as
// a test-only baseline in oneframe_ref_test.go) encoded a whole snapshot
// into a single frame and blocked for one ack — O(state) wire bytes and a
// full-state memory spike per period, and any mid-transfer failure threw
// the entire transfer away. The streaming protocol cuts a snapshot's
// region stream into fixed-size chunks that flow under a bounded credit
// window, each CRC-framed and optionally flate-compressed, and the
// receiver buffers partial transfers so a re-ship after ErrPartialShip
// resumes where the broken connection stopped instead of starting over.
//
// Wire format (all integers little-endian; first byte is the frame type):
//
//	begin  [1][seq u64][flags u8][kindLen u8][kind][takenAt i64]
//	       [rawBytes u64][chunkSize u32][chunks u32]
//	have   [2][seq u64][applied u8][haveChunks u32]       (receiver→sender)
//	chunk  [3][seq u64][index u32][cflags u8][rawLen u32][crc u32][payload]
//	end    [4][seq u64][chunks u32][rawCRC u32]
//	credit [5][seq u64][consumed u32]                     (receiver→sender)
//	ack    [6][seq u64][ok u8][errLen u16][err]           (receiver→sender)
//	ops    [7][op batch (ndr)]
//
// The raw region stream is the sorted concatenation of
// [nameLen u16][name][dataLen u32][data] per region; chunk boundaries are
// cut in raw space, so a resumed transfer regenerates identical chunks.
// flags bit0 advertises compression; cflags bit0 marks one chunk's
// payload as flate-compressed (only used when it actually shrank). The
// per-chunk CRC covers the payload as sent; the end frame's CRC covers
// the whole raw stream.
package checkpoint

import (
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Frame types.
const (
	fBegin  = 1
	fHave   = 2
	fChunk  = 3
	fEnd    = 4
	fCredit = 5
	fAck    = 6
	fOps    = 7
)

// Stream defaults.
const (
	// DefaultChunkSize is the raw bytes per chunk.
	DefaultChunkSize = 256 << 10
	// DefaultWindow is the maximum in-flight (unconsumed) chunks.
	DefaultWindow = 32
	// DefaultAckTimeout bounds each wait for a receiver frame.
	DefaultAckTimeout = 2 * time.Second
)

// StreamInstruments carries the optional telemetry hooks of the stream
// lane; all fields are nil-safe.
type StreamInstruments struct {
	SentChunks  *telemetry.Counter // chunks put on the wire
	WireBytes   *telemetry.Counter // frame bytes sent (after compression)
	RawBytes    *telemetry.Counter // raw snapshot bytes represented
	Inflight    *telemetry.Gauge   // sender chunks in flight (stream depth)
	RecvCorrupt *telemetry.Counter // corrupt frames/streams dropped
	Resumes     *telemetry.Counter // partial transfers resumed
	OpsShipped  *telemetry.Counter // ops acknowledged by the receiver
	OpBytes     *telemetry.Counter // op payload bytes acknowledged
}

// StreamConfig tunes a streaming Sender.
type StreamConfig struct {
	// ChunkSize is the raw bytes per chunk (DefaultChunkSize if <= 0).
	ChunkSize int
	// Window is the credit window in chunks (DefaultWindow if <= 0).
	Window int
	// Compress enables per-chunk flate compression.
	Compress bool
	// AckTimeout bounds each wait for a receiver frame
	// (DefaultAckTimeout if <= 0). The final ack after the end frame —
	// which covers the receiver's parse+apply of the whole snapshot —
	// waits up to 10x this.
	AckTimeout time.Duration
	// Instruments hooks the sender into telemetry (optional).
	Instruments *StreamInstruments
}

func (c *StreamConfig) fill() {
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = DefaultAckTimeout
	}
	if c.Instruments == nil {
		c.Instruments = &StreamInstruments{} // nil-safe fields
	}
}

// Sender streams snapshots and op batches from the primary's FTIM to one
// backup. It is single-connection and not safe for concurrent use; the
// engine serializes ships per peer.
type Sender struct {
	conn FrameConn
	cfg  StreamConfig

	sent      int
	sentBytes int64

	chunkBuf []byte
	compBuf  []byte
	frameBuf []byte
}

// NewSender wraps a connection to the backup's checkpoint receiver with
// default stream tuning (the pre-streaming constructor signature).
func NewSender(conn FrameConn, ackTimeout time.Duration) *Sender {
	return NewStreamSender(conn, StreamConfig{AckTimeout: ackTimeout})
}

// NewStreamSender wraps a connection with explicit stream tuning.
func NewStreamSender(conn FrameConn, cfg StreamConfig) *Sender {
	cfg.fill()
	return &Sender{conn: conn, cfg: cfg, chunkBuf: make([]byte, cfg.ChunkSize)}
}

// Stats reports (snapshots sent, total wire bytes).
func (s *Sender) Stats() (count int, bytes int64) { return s.sent, s.sentBytes }

// Close releases the transport.
func (s *Sender) Close() { _ = s.conn.Close() }

// send puts one frame on the wire and charges the wire-bytes accounting.
func (s *Sender) send(frame []byte) error {
	if err := s.conn.Send(frame); err != nil {
		return err
	}
	s.sentBytes += int64(len(frame))
	s.cfg.Instruments.WireBytes.Add(int64(len(frame)))
	return nil
}

// Send streams one snapshot and blocks for the ack. A receiver that
// already holds the snapshot (or newer) confirms at the begin frame
// without any chunk flowing; a receiver holding a partial copy of this
// exact transfer resumes from its last buffered chunk.
func (s *Sender) Send(snap *Snapshot) error {
	names := make([]string, 0, len(snap.Regions))
	rawBytes := uint64(0)
	for name, data := range snap.Regions {
		names = append(names, name)
		rawBytes += uint64(regionHeaderLen+len(name)) + uint64(len(data))
	}
	sort.Strings(names)
	chunkSize := uint32(s.cfg.ChunkSize)
	chunks := uint32((rawBytes + uint64(chunkSize) - 1) / uint64(chunkSize))

	var flags byte
	if s.cfg.Compress {
		flags |= 1
	}
	begin := appendBegin(s.frameBuf[:0], snap, flags, rawBytes, chunkSize, chunks)
	s.frameBuf = begin[:0]
	if err := s.send(begin); err != nil {
		return fmt.Errorf("checkpoint: send seq %d: %w", snap.Seq, err)
	}
	applied, have, err := s.awaitHave(snap.Seq)
	if err != nil {
		return fmt.Errorf("%w: seq %d: %v", ErrNotAcked, snap.Seq, err)
	}
	if applied {
		s.sent++
		return nil
	}
	if have > 0 {
		s.cfg.Instruments.Resumes.Inc()
	}

	w := regionWalker{names: names, regions: snap.Regions}
	rawCRC := uint32(0)
	credited := have // cumulative chunks the receiver confirmed consumed
	ins := s.cfg.Instruments
	for idx := uint32(0); idx < chunks; idx++ {
		n := w.fill(s.chunkBuf[:chunkSize])
		raw := s.chunkBuf[:n]
		rawCRC = crc32.Update(rawCRC, crc32.IEEETable, raw)
		if idx < have {
			continue // receiver already buffered this chunk
		}
		payload, cflags := raw, byte(0)
		if s.cfg.Compress {
			if comp, ok := s.deflate(raw); ok {
				payload, cflags = comp, 1
			}
		}
		frame := appendChunk(s.frameBuf[:0], snap.Seq, idx, cflags, uint32(n), payload)
		s.frameBuf = frame[:0]
		if err := s.send(frame); err != nil {
			return fmt.Errorf("checkpoint: send seq %d chunk %d: %w", snap.Seq, idx, err)
		}
		ins.SentChunks.Inc()
		inflight := int64(idx+1) - int64(credited)
		ins.Inflight.Set(inflight)
		for inflight >= int64(s.cfg.Window) {
			credited, err = s.awaitCredit(snap.Seq, credited)
			if err != nil {
				ins.Inflight.Set(0)
				return fmt.Errorf("%w: seq %d: %v", ErrNotAcked, snap.Seq, err)
			}
			inflight = int64(idx+1) - int64(credited)
			ins.Inflight.Set(inflight)
		}
	}
	end := appendEnd(s.frameBuf[:0], snap.Seq, chunks, rawCRC)
	s.frameBuf = end[:0]
	if err := s.send(end); err != nil {
		ins.Inflight.Set(0)
		return fmt.Errorf("checkpoint: send seq %d end: %w", snap.Seq, err)
	}
	err = s.awaitAck(snap.Seq, 10*s.cfg.AckTimeout)
	ins.Inflight.Set(0)
	if err != nil {
		return err
	}
	s.sent++
	ins.RawBytes.Add(int64(rawBytes))
	return nil
}

// SendOps ships one op batch and blocks for the ack.
func (s *Sender) SendOps(batch *OpBatch) error {
	if len(batch.Ops) == 0 {
		return nil
	}
	enc, err := batch.Encode()
	if err != nil {
		return err
	}
	last := batch.Ops[len(batch.Ops)-1].Seq
	frame := append(append(s.frameBuf[:0], fOps), enc...)
	s.frameBuf = frame[:0]
	if err := s.send(frame); err != nil {
		return fmt.Errorf("checkpoint: send ops through %d: %w", last, err)
	}
	if err := s.awaitAck(last, s.cfg.AckTimeout); err != nil {
		return err
	}
	s.cfg.Instruments.OpsShipped.Add(int64(len(batch.Ops)))
	s.cfg.Instruments.OpBytes.Add(int64(batch.Bytes()))
	return nil
}

// awaitHave reads frames until the have reply for seq arrives, skipping
// stragglers from an earlier aborted transfer.
func (s *Sender) awaitHave(seq uint64) (applied bool, have uint32, err error) {
	deadline := time.Now().Add(s.cfg.AckTimeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return false, 0, fmt.Errorf("no have reply for seq %d", seq)
		}
		raw, err := s.conn.RecvTimeout(remain)
		if err != nil {
			return false, 0, err
		}
		if len(raw) == 14 && raw[0] == fHave && binary.LittleEndian.Uint64(raw[1:]) == seq {
			return raw[9] != 0, binary.LittleEndian.Uint32(raw[10:]), nil
		}
	}
}

// awaitCredit blocks for the next credit advance on seq. A negative ack
// for seq aborts the transfer early.
func (s *Sender) awaitCredit(seq uint64, credited uint32) (uint32, error) {
	deadline := time.Now().Add(s.cfg.AckTimeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return credited, fmt.Errorf("no credit for seq %d", seq)
		}
		raw, err := s.conn.RecvTimeout(remain)
		if err != nil {
			return credited, err
		}
		switch {
		case len(raw) == 13 && raw[0] == fCredit && binary.LittleEndian.Uint64(raw[1:]) == seq:
			if c := binary.LittleEndian.Uint32(raw[9:]); c > credited {
				return c, nil
			}
		case len(raw) >= 12 && raw[0] == fAck && binary.LittleEndian.Uint64(raw[1:]) == seq && raw[9] == 0:
			return credited, fmt.Errorf("rejected: %s", ackErr(raw))
		}
	}
}

// awaitAck reads frames until the ack for seq arrives (credits and stale
// acks are skipped).
func (s *Sender) awaitAck(seq uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("%w: seq %d: timeout", ErrNotAcked, seq)
		}
		raw, err := s.conn.RecvTimeout(remain)
		if err != nil {
			return fmt.Errorf("%w: seq %d: %v", ErrNotAcked, seq, err)
		}
		if len(raw) >= 12 && raw[0] == fAck && binary.LittleEndian.Uint64(raw[1:]) == seq {
			if raw[9] != 0 {
				return nil
			}
			return fmt.Errorf("checkpoint: backup rejected seq %d: %s", seq, ackErr(raw))
		}
	}
}

// deflate compresses raw into the sender's scratch buffer; ok is false
// when compression did not shrink the payload.
func (s *Sender) deflate(raw []byte) (comp []byte, ok bool) {
	fw := flateWriters.Get().(*flate.Writer)
	sink := byteSink{b: s.compBuf[:0]}
	fw.Reset(&sink)
	if _, err := fw.Write(raw); err != nil {
		flateWriters.Put(fw)
		return nil, false
	}
	if err := fw.Close(); err != nil {
		flateWriters.Put(fw)
		return nil, false
	}
	flateWriters.Put(fw)
	s.compBuf = sink.b
	if len(sink.b) >= len(raw) {
		return nil, false
	}
	return sink.b, true
}

var flateWriters = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

type byteSink struct{ b []byte }

func (s *byteSink) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// regionHeaderLen is the per-region raw-stream framing overhead.
const regionHeaderLen = 6

// regionWalker linearizes a snapshot's regions into the raw stream.
type regionWalker struct {
	names   []string
	regions map[string][]byte

	ri  int    // current region index
	hdr []byte // current region's pending header bytes
	hi  int    // consumed header bytes
	di  int    // consumed data bytes
}

// fill copies the next len(buf) raw-stream bytes into buf, returning how
// many were produced (less than len(buf) only at stream end).
func (w *regionWalker) fill(buf []byte) int {
	n := 0
	for n < len(buf) && w.ri < len(w.names) {
		name := w.names[w.ri]
		data := w.regions[name]
		if w.hdr == nil {
			w.hdr = make([]byte, 0, regionHeaderLen+len(name))
			w.hdr = binary.LittleEndian.AppendUint16(w.hdr, uint16(len(name)))
			w.hdr = append(w.hdr, name...)
			w.hdr = binary.LittleEndian.AppendUint32(w.hdr, uint32(len(data)))
		}
		if w.hi < len(w.hdr) {
			c := copy(buf[n:], w.hdr[w.hi:])
			w.hi += c
			n += c
			continue
		}
		c := copy(buf[n:], data[w.di:])
		w.di += c
		n += c
		if w.di == len(data) {
			w.ri++
			w.hdr, w.hi, w.di = nil, 0, 0
		}
	}
	return n
}

// Frame builders.

func appendBegin(b []byte, snap *Snapshot, flags byte, rawBytes uint64, chunkSize, chunks uint32) []byte {
	b = append(b, fBegin)
	b = binary.LittleEndian.AppendUint64(b, snap.Seq)
	b = append(b, flags, byte(len(snap.Kind)))
	b = append(b, snap.Kind...)
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.TakenAt.UnixNano()))
	b = binary.LittleEndian.AppendUint64(b, rawBytes)
	b = binary.LittleEndian.AppendUint32(b, chunkSize)
	b = binary.LittleEndian.AppendUint32(b, chunks)
	return b
}

func appendChunk(b []byte, seq uint64, index uint32, cflags byte, rawLen uint32, payload []byte) []byte {
	b = append(b, fChunk)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, index)
	b = append(b, cflags)
	b = binary.LittleEndian.AppendUint32(b, rawLen)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	b = append(b, payload...)
	return b
}

func appendEnd(b []byte, seq uint64, chunks, rawCRC uint32) []byte {
	b = append(b, fEnd)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, chunks)
	b = binary.LittleEndian.AppendUint32(b, rawCRC)
	return b
}

func appendHave(b []byte, seq uint64, applied bool, have uint32) []byte {
	b = append(b, fHave)
	b = binary.LittleEndian.AppendUint64(b, seq)
	if applied {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return binary.LittleEndian.AppendUint32(b, have)
}

func appendCredit(b []byte, seq uint64, consumed uint32) []byte {
	b = append(b, fCredit)
	b = binary.LittleEndian.AppendUint64(b, seq)
	return binary.LittleEndian.AppendUint32(b, consumed)
}

func appendAck(b []byte, seq uint64, ok bool, errText string) []byte {
	b = append(b, fAck)
	b = binary.LittleEndian.AppendUint64(b, seq)
	if ok {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if len(errText) > 65535 {
		errText = errText[:65535]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(errText)))
	return append(b, errText...)
}

func ackErr(raw []byte) string {
	n := int(binary.LittleEndian.Uint16(raw[10:]))
	if 12+n > len(raw) {
		n = len(raw) - 12
	}
	return string(raw[12 : 12+n])
}

// partialTransfer is a receiver-side in-progress snapshot stream; it
// outlives the connection that fed it so a re-ship resumes instead of
// restarting.
type partialTransfer struct {
	seq       uint64
	kind      string
	takenAt   time.Time
	rawTarget uint64
	chunkSize uint32
	chunks    uint32
	have      uint32
	raw       []byte
	crc       uint32
	fr        io.ReadCloser // reused flate reader
}

// ReceiverState is the backup side of the stream protocol: one per store,
// shared by every inbound checkpoint connection, holding at most one
// partial transfer across connection breaks.
type ReceiverState struct {
	mu      sync.Mutex
	store   SnapshotStore
	ins     *StreamInstruments
	partial *partialTransfer
	out     []byte // reply frame scratch, guarded by mu
}

// NewReceiverState wraps a store for streaming reception; ins may be nil.
func NewReceiverState(store SnapshotStore, ins *StreamInstruments) *ReceiverState {
	if ins == nil {
		ins = &StreamInstruments{} // nil-safe fields
	}
	return &ReceiverState{store: store, ins: ins}
}

// Partial reports the buffered partial transfer, if any, as
// (seq, have, chunks).
func (rs *ReceiverState) Partial() (seq uint64, have, chunks uint32) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.partial == nil {
		return 0, 0, 0
	}
	return rs.partial.seq, rs.partial.have, rs.partial.chunks
}

// Serve pumps stream frames from conn into the store until the
// connection breaks, a corrupt frame arrives, or stop closes. It is run
// by the backup's engine for each inbound checkpoint connection.
func (rs *ReceiverState) Serve(conn FrameConn, stop <-chan struct{}) {
	defer conn.Close()
	for {
		select {
		case <-stop:
			return
		default:
		}
		raw, err := conn.RecvTimeout(250 * time.Millisecond)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			return
		}
		if !rs.handle(conn, raw) {
			return
		}
	}
}

// handle processes one frame; false drops the connection.
func (rs *ReceiverState) handle(conn FrameConn, raw []byte) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(raw) == 0 {
		return rs.corrupt("empty frame")
	}
	switch raw[0] {
	case fBegin:
		return rs.onBegin(conn, raw)
	case fChunk:
		return rs.onChunk(conn, raw)
	case fEnd:
		return rs.onEnd(conn, raw)
	case fOps:
		return rs.onOps(conn, raw)
	default:
		return rs.corrupt("unknown frame type")
	}
}

// corrupt counts a protocol violation and signals a connection drop. The
// partial transfer is kept — its buffered chunks all passed their CRCs —
// so a clean reconnect still resumes.
func (rs *ReceiverState) corrupt(string) bool {
	rs.ins.RecvCorrupt.Inc()
	return false
}

func (rs *ReceiverState) onBegin(conn FrameConn, raw []byte) bool {
	if len(raw) < 11 {
		return rs.corrupt("short begin")
	}
	seq := binary.LittleEndian.Uint64(raw[1:])
	kindLen := int(raw[10])
	if len(raw) != 11+kindLen+24 {
		return rs.corrupt("short begin")
	}
	kind := string(raw[11 : 11+kindLen])
	rest := raw[11+kindLen:]
	takenAt := time.Unix(0, int64(binary.LittleEndian.Uint64(rest)))
	rawBytes := binary.LittleEndian.Uint64(rest[8:])
	chunkSize := binary.LittleEndian.Uint32(rest[16:])
	chunks := binary.LittleEndian.Uint32(rest[20:])
	if chunkSize == 0 && chunks != 0 {
		return rs.corrupt("zero chunk size")
	}

	if rs.store.LastSeq() >= seq {
		// Already confirmed (a retry after a lost ack, or another replica
		// path landed it first): positive short-circuit, no chunks flow.
		return rs.reply(conn, appendHave(rs.out[:0], seq, true, 0))
	}
	p := rs.partial
	if p != nil && p.seq == seq && p.kind == kind && p.rawTarget == rawBytes &&
		p.chunkSize == chunkSize && p.chunks == chunks {
		rs.ins.Resumes.Inc()
		return rs.reply(conn, appendHave(rs.out[:0], seq, false, p.have))
	}
	rs.partial = &partialTransfer{
		seq: seq, kind: kind, takenAt: takenAt,
		rawTarget: rawBytes, chunkSize: chunkSize, chunks: chunks,
		raw: make([]byte, 0, rawBytes),
	}
	return rs.reply(conn, appendHave(rs.out[:0], seq, false, 0))
}

func (rs *ReceiverState) onChunk(conn FrameConn, raw []byte) bool {
	if len(raw) < 22 {
		return rs.corrupt("short chunk")
	}
	seq := binary.LittleEndian.Uint64(raw[1:])
	index := binary.LittleEndian.Uint32(raw[9:])
	cflags := raw[13]
	rawLen := binary.LittleEndian.Uint32(raw[14:])
	crc := binary.LittleEndian.Uint32(raw[18:])
	payload := raw[22:]
	p := rs.partial
	if p == nil || p.seq != seq {
		return rs.corrupt("chunk without transfer")
	}
	if index < p.have {
		return true // duplicate after resume: already buffered
	}
	if index != p.have || rawLen > p.chunkSize ||
		uint64(len(p.raw))+uint64(rawLen) > p.rawTarget {
		return rs.corrupt("chunk out of sequence")
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return rs.corrupt("chunk crc mismatch")
	}
	start := len(p.raw)
	if cflags&1 != 0 {
		if !rs.inflate(p, payload, int(rawLen)) {
			return rs.corrupt("chunk inflate failure")
		}
	} else {
		if len(payload) != int(rawLen) {
			return rs.corrupt("chunk length mismatch")
		}
		p.raw = append(p.raw, payload...)
	}
	p.crc = crc32.Update(p.crc, crc32.IEEETable, p.raw[start:])
	p.have++
	return rs.reply(conn, appendCredit(rs.out[:0], seq, p.have))
}

// inflate decompresses one chunk payload onto p.raw.
func (rs *ReceiverState) inflate(p *partialTransfer, payload []byte, rawLen int) bool {
	src := byteReader{b: payload}
	if p.fr == nil {
		p.fr = flate.NewReader(&src)
	} else if err := p.fr.(flate.Resetter).Reset(&src, nil); err != nil {
		return false
	}
	start := len(p.raw)
	p.raw = p.raw[:start+rawLen]
	if _, err := io.ReadFull(p.fr, p.raw[start:]); err != nil {
		p.raw = p.raw[:start]
		return false
	}
	return true
}

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

func (rs *ReceiverState) onEnd(conn FrameConn, raw []byte) bool {
	if len(raw) != 17 {
		return rs.corrupt("short end")
	}
	seq := binary.LittleEndian.Uint64(raw[1:])
	chunks := binary.LittleEndian.Uint32(raw[9:])
	rawCRC := binary.LittleEndian.Uint32(raw[13:])
	p := rs.partial
	if p == nil || p.seq != seq {
		return rs.corrupt("end without transfer")
	}
	if p.have != chunks || uint64(len(p.raw)) != p.rawTarget || p.crc != rawCRC {
		// The buffered stream itself is bad: discard it so the re-ship
		// starts clean.
		rs.partial = nil
		return rs.corrupt("stream crc mismatch")
	}
	regions, ok := parseRegionStream(p.raw)
	if !ok {
		rs.partial = nil
		return rs.corrupt("malformed region stream")
	}
	snap := &Snapshot{Seq: p.seq, Kind: p.kind, TakenAt: p.takenAt, Regions: regions}
	rs.partial = nil
	okAck, errText := true, ""
	if err := rs.store.Apply(snap); err != nil {
		// Stale duplicates still get a positive ack so an old primary
		// retrying a confirmed snapshot does not spin.
		if !errors.Is(err, ErrStaleSnapshot) {
			okAck, errText = false, err.Error()
		}
	}
	return rs.reply(conn, appendAck(rs.out[:0], seq, okAck, errText))
}

func (rs *ReceiverState) onOps(conn FrameConn, raw []byte) bool {
	batch, err := DecodeOpBatch(raw[1:])
	if err != nil {
		return rs.corrupt("malformed op batch")
	}
	if len(batch.Ops) == 0 {
		return true
	}
	last := batch.Ops[len(batch.Ops)-1].Seq
	okAck, errText := true, ""
	if err := rs.store.ApplyOps(batch); err != nil {
		okAck, errText = false, err.Error()
	}
	return rs.reply(conn, appendAck(rs.out[:0], last, okAck, errText))
}

// reply sends a receiver frame; a dead connection drops the serve loop
// (the partial transfer survives for the next one).
func (rs *ReceiverState) reply(conn FrameConn, frame []byte) bool {
	rs.out = frame[:0]
	return conn.Send(frame) == nil
}

// parseRegionStream splits the raw stream back into regions. The region
// byte slices alias raw — Store.Apply copies what it keeps.
func parseRegionStream(raw []byte) (map[string][]byte, bool) {
	regions := make(map[string][]byte)
	for off := 0; off < len(raw); {
		if off+regionHeaderLen-4 > len(raw) {
			return nil, false
		}
		nameLen := int(binary.LittleEndian.Uint16(raw[off:]))
		off += 2
		if off+nameLen+4 > len(raw) {
			return nil, false
		}
		name := string(raw[off : off+nameLen])
		off += nameLen
		dataLen := int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
		if off+dataLen > len(raw) {
			return nil, false
		}
		regions[name] = raw[off : off+dataLen]
		off += dataLen
	}
	return regions, true
}

// ServeReceiver pumps snapshots from conn into store until the connection
// breaks or stop closes, acknowledging each — the single-connection
// convenience wrapper around ReceiverState (no cross-connection resume).
func ServeReceiver(conn FrameConn, store SnapshotStore, stop <-chan struct{}) {
	NewReceiverState(store, nil).Serve(conn, stop)
}

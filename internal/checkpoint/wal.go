// Segmented write-ahead log persistence. PersistentStore rewrites the
// whole merged state file on every applied snapshot — O(state) disk I/O
// per checkpoint, unusable at GB-class state. WALStore instead appends
// each applied snapshot or op batch as one CRC-framed record to a
// fixed-size segment file (fsync'd before the apply is acknowledged), so
// an incremental apply costs O(delta). Sealed segments are folded into a
// base snapshot by a background compactor, bounding cold-start replay and
// disk footprint.
//
// On-disk layout under Dir:
//
//	base.ckpt            "OFTTWALB" + ndr snapshot (the compacted base)
//	wal-%08d.seg         "OFTTWAL1" + records
//
// Record format: [0xC5][type u8][len u32][crc u32][payload], type 1 = ndr
// snapshot, 2 = ndr op batch; the CRC (IEEE) covers the payload. Replay
// stops at the first torn or corrupt record — everything before the tear
// was fsync-acknowledged and survives. Compaction writes the new base
// with write-to-temp + rename + directory fsync, re-logs the surviving op
// tail into the active segment, and only then deletes the folded
// segments, so a crash at any point replays to the same state.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// WAL layout constants.
const (
	walRecordMagic  = 0xC5
	walRecSnapshot  = 1
	walRecOps       = 2
	walRecHeaderLen = 10

	// DefaultSegmentBytes seals a segment once it exceeds this size.
	DefaultSegmentBytes = 4 << 20
	// DefaultCompactSegments triggers compaction once this many sealed
	// segments accumulate.
	DefaultCompactSegments = 4
)

var (
	walSegMagic  = []byte("OFTTWAL1")
	walBaseMagic = []byte("OFTTWALB")
)

// WALInstruments carries the optional telemetry hooks of the WAL; all
// fields are nil-safe.
type WALInstruments struct {
	Segments     *telemetry.Gauge     // live segment files (incl. active)
	SegmentBytes *telemetry.Gauge     // bytes across live segment files
	Appends      *telemetry.Counter   // records appended
	AppendBytes  *telemetry.Counter   // record bytes appended
	Compactions  *telemetry.Counter   // completed compactions
	CompactDur   *telemetry.Histogram // compaction duration (µs)
}

// WALConfig tunes a WALStore.
type WALConfig struct {
	// Dir holds the base file and segments (created if missing).
	Dir string
	// SegmentBytes seals a segment past this size (DefaultSegmentBytes
	// if <= 0).
	SegmentBytes int64
	// CompactSegments triggers background compaction once this many
	// sealed segments accumulate (DefaultCompactSegments if <= 0).
	CompactSegments int
	// NoFsync skips fsync on append — test/bench use only; it forfeits
	// the crash-durability the ack implies.
	NoFsync bool
	// Instruments hooks the store into telemetry (optional).
	Instruments *WALInstruments
}

// WALStore is the log-structured SnapshotStore: the in-memory merged view
// of *Store fronted by a segmented write-ahead log.
type WALStore struct {
	mem *Store
	cfg WALConfig

	mu       sync.Mutex
	seg      *os.File
	segID    uint64
	segBytes int64
	sealed   []uint64 // sealed segment ids, ascending
	liveSegs int
	liveByte int64
	closed   bool

	compactCh chan struct{}
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

var _ SnapshotStore = (*WALStore)(nil)

// NewWALStore opens (or creates) a log-structured store under cfg.Dir,
// replaying base + segments to the last intact record, and starts the
// background compactor.
func NewWALStore(cfg WALConfig) (*WALStore, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.CompactSegments <= 0 {
		cfg.CompactSegments = DefaultCompactSegments
	}
	if cfg.Instruments == nil {
		cfg.Instruments = &WALInstruments{} // nil-safe fields
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: wal dir: %w", err)
	}
	w := &WALStore{
		mem:       NewStore(),
		cfg:       cfg,
		compactCh: make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
	}
	ids, err := w.replay()
	if err != nil {
		return nil, err
	}
	// Pre-existing segments count as sealed so compaction folds them
	// (including a torn tail, which is never appended after), and the
	// store always starts on a fresh segment.
	w.sealed = ids
	if n := len(ids); n > 0 {
		w.segID = ids[n-1]
	}
	w.segID++
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	if len(w.sealed) >= w.cfg.CompactSegments {
		w.compactCh <- struct{}{}
	}
	w.publishGauges()
	w.wg.Add(1)
	go w.compactor()
	return w, nil
}

// Dir returns the backing directory.
func (w *WALStore) Dir() string { return w.cfg.Dir }

// Close stops the compactor and closes the active segment. The store is
// unusable afterwards.
func (w *WALStore) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stopCh)
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg != nil {
		err := w.seg.Close()
		w.seg = nil
		return err
	}
	return nil
}

// Apply logs the snapshot (fsync'd) and merges it into the memory view.
// The record hits the disk before the apply is visible, so a positive ack
// upstream really means recoverable.
func (w *WALStore) Apply(snap *Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if snap.Seq <= w.mem.LastSeq() {
		return w.mem.Apply(snap) // count + report the stale reject, no disk write
	}
	enc, err := snap.Encode()
	if err != nil {
		return fmt.Errorf("checkpoint: encode wal snapshot: %w", err)
	}
	if err := w.appendLocked(walRecSnapshot, enc); err != nil {
		return err
	}
	return w.mem.Apply(snap)
}

// ApplyOps logs the batch (fsync'd) and applies it to the memory view.
func (w *WALStore) ApplyOps(batch *OpBatch) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	enc, err := batch.Encode()
	if err != nil {
		return fmt.Errorf("checkpoint: encode wal ops: %w", err)
	}
	if err := w.appendLocked(walRecOps, enc); err != nil {
		return err
	}
	return w.mem.ApplyOps(batch)
}

// Materialize restores the merged state into a registry.
func (w *WALStore) Materialize(r *Registry) error { return w.mem.Materialize(r) }

// Export packages the merged state as a full snapshot (nil when empty).
func (w *WALStore) Export() *Snapshot { return w.mem.Export() }

// PendingOps copies the accepted op tail.
func (w *WALStore) PendingOps() []Op { return w.mem.PendingOps() }

// OpSeq returns the highest accepted op sequence.
func (w *WALStore) OpSeq() uint64 { return w.mem.OpSeq() }

// SetObserver installs the hot-standby observer on the memory view.
func (w *WALStore) SetObserver(obs StoreObserver) { w.mem.SetObserver(obs) }

// LastSeq returns the newest applied sequence number.
func (w *WALStore) LastSeq() uint64 { return w.mem.LastSeq() }

// LastAt returns the capture time of the newest applied snapshot.
func (w *WALStore) LastAt() time.Time { return w.mem.LastAt() }

// Counts reports (applied, rejected) snapshot totals.
func (w *WALStore) Counts() (applied, rejected int) { return w.mem.Counts() }

// Reset clears the store and removes every log file (used when a node
// rejoins as backup: the peer's state, not ours, is now authoritative).
func (w *WALStore) Reset() {
	w.mu.Lock()
	if w.seg != nil {
		_ = w.seg.Close()
		w.seg = nil
	}
	_ = os.Remove(w.basePath())
	for _, id := range w.segIDsOnDisk() {
		_ = os.Remove(w.segPath(id))
	}
	_ = syncDir(w.cfg.Dir)
	w.sealed = nil
	w.liveByte = 0
	w.segID++
	_ = w.openSegment()
	w.publishGauges()
	w.mu.Unlock()
	w.mem.Reset()
}

// appendLocked writes one record to the active segment, fsyncs, and
// rotates past the size limit.
func (w *WALStore) appendLocked(typ byte, payload []byte) error {
	if w.seg == nil {
		return errors.New("checkpoint: wal store closed")
	}
	var hdr [walRecHeaderLen]byte
	hdr[0] = walRecordMagic
	hdr[1] = typ
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[6:], crc32.ChecksumIEEE(payload))
	if _, err := w.seg.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: wal append: %w", err)
	}
	if _, err := w.seg.Write(payload); err != nil {
		return fmt.Errorf("checkpoint: wal append: %w", err)
	}
	if !w.cfg.NoFsync {
		if err := w.seg.Sync(); err != nil {
			return fmt.Errorf("checkpoint: wal sync: %w", err)
		}
	}
	n := int64(walRecHeaderLen + len(payload))
	w.segBytes += n
	w.liveByte += n
	ins := w.cfg.Instruments
	ins.Appends.Inc()
	ins.AppendBytes.Add(n)
	if w.segBytes >= w.cfg.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	w.publishGauges()
	return nil
}

// rotateLocked seals the active segment and opens the next one; the
// directory is fsync'd so the new segment file itself survives a crash.
func (w *WALStore) rotateLocked() error {
	if err := w.seg.Close(); err != nil {
		return fmt.Errorf("checkpoint: wal seal: %w", err)
	}
	w.sealed = append(w.sealed, w.segID)
	w.segID++
	if err := w.openSegment(); err != nil {
		return err
	}
	if len(w.sealed) >= w.cfg.CompactSegments {
		select {
		case w.compactCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// openSegment creates the active segment file (magic header, fsync'd,
// directory fsync'd).
func (w *WALStore) openSegment() error {
	f, err := os.OpenFile(w.segPath(w.segID), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: wal segment: %w", err)
	}
	if _, err := f.Write(walSegMagic); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: wal segment: %w", err)
	}
	if !w.cfg.NoFsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("checkpoint: wal segment: %w", err)
		}
		if err := syncDir(w.cfg.Dir); err != nil {
			f.Close()
			return err
		}
	}
	w.seg = f
	w.segBytes = int64(len(walSegMagic))
	w.liveSegs = len(w.sealed) + 1
	w.liveByte += int64(len(walSegMagic))
	return nil
}

// compactor folds sealed segments into the base snapshot in the
// background.
func (w *WALStore) compactor() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stopCh:
			return
		case <-w.compactCh:
			w.compactOnce()
		}
	}
}

// compactOnce writes the current merged state as the new base, re-logs
// the surviving op tail, and deletes the folded segments. Deletion comes
// last: a crash before it merely replays stale records that the memory
// view rejects as duplicates.
func (w *WALStore) compactOnce() {
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil || len(w.sealed) == 0 {
		return
	}
	snap := w.mem.Export()
	if snap == nil {
		return
	}
	pending := w.mem.PendingOps()
	enc, err := snap.Encode()
	if err != nil {
		return
	}
	if !w.writeBase(enc) {
		return
	}
	if len(pending) > 0 {
		if ops, err := (&OpBatch{Ops: pending}).Encode(); err == nil {
			_ = w.appendLocked(walRecOps, ops)
		}
	}
	folded := w.sealed
	w.sealed = nil
	for _, id := range folded {
		if fi, err := os.Stat(w.segPath(id)); err == nil {
			w.liveByte -= fi.Size()
		}
		_ = os.Remove(w.segPath(id))
	}
	_ = syncDir(w.cfg.Dir)
	w.liveSegs = 1
	w.publishGauges()
	w.cfg.Instruments.Compactions.Inc()
	w.cfg.Instruments.CompactDur.ObserveDuration(time.Since(start))
}

// writeBase commits the base snapshot with temp + fsync + rename +
// directory fsync.
func (w *WALStore) writeBase(enc []byte) bool {
	tmp, err := os.CreateTemp(w.cfg.Dir, ".ofttwal-*")
	if err != nil {
		return false
	}
	tmpName := tmp.Name()
	fail := func() bool {
		tmp.Close()
		_ = os.Remove(tmpName)
		return false
	}
	if _, err := tmp.Write(walBaseMagic); err != nil {
		return fail()
	}
	if _, err := tmp.Write(enc); err != nil {
		return fail()
	}
	if !w.cfg.NoFsync {
		if err := tmp.Sync(); err != nil {
			return fail()
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return false
	}
	if err := os.Rename(tmpName, w.basePath()); err != nil {
		_ = os.Remove(tmpName)
		return false
	}
	if !w.cfg.NoFsync {
		if err := syncDir(w.cfg.Dir); err != nil {
			return false
		}
	}
	return true
}

// replay loads base + segments into the memory view, stopping at the
// first torn or corrupt record, and returns the segment ids on disk.
func (w *WALStore) replay() ([]uint64, error) {
	if data, err := os.ReadFile(w.basePath()); err == nil {
		if len(data) < len(walBaseMagic) || string(data[:len(walBaseMagic)]) != string(walBaseMagic) {
			return nil, fmt.Errorf("checkpoint: %s is not a wal base", w.basePath())
		}
		snap, err := DecodeSnapshot(data[len(walBaseMagic):])
		if err != nil {
			return nil, fmt.Errorf("checkpoint: corrupt wal base: %w", err)
		}
		if err := w.mem.Apply(snap); err != nil {
			return nil, fmt.Errorf("checkpoint: seed wal base: %w", err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("checkpoint: open wal base: %w", err)
	}
	ids := w.segIDsOnDisk()
	for _, id := range ids {
		data, err := os.ReadFile(w.segPath(id))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: read wal segment: %w", err)
		}
		w.liveByte += int64(len(data))
		w.liveSegs++
		if !w.replaySegment(data) {
			break // torn tail: everything after is post-crash noise
		}
	}
	return ids, nil
}

// replaySegment applies one segment's records; false means the segment
// ended in a torn or corrupt record.
func (w *WALStore) replaySegment(data []byte) bool {
	if len(data) < len(walSegMagic) || string(data[:len(walSegMagic)]) != string(walSegMagic) {
		return false
	}
	off := len(walSegMagic)
	for off < len(data) {
		if off+walRecHeaderLen > len(data) || data[off] != walRecordMagic {
			return false
		}
		typ := data[off+1]
		n := int(binary.LittleEndian.Uint32(data[off+2:]))
		crc := binary.LittleEndian.Uint32(data[off+6:])
		off += walRecHeaderLen
		if off+n > len(data) {
			return false
		}
		payload := data[off : off+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return false
		}
		off += n
		switch typ {
		case walRecSnapshot:
			if snap, err := DecodeSnapshot(payload); err == nil {
				_ = w.mem.Apply(snap) // stale/need-base replays are no-ops
			} else {
				return false
			}
		case walRecOps:
			if batch, err := DecodeOpBatch(payload); err == nil {
				_ = w.mem.ApplyOps(batch) // duplicates skip via op seq
			} else {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// segIDsOnDisk lists segment ids present in the directory, ascending.
func (w *WALStore) segIDsOnDisk() []uint64 {
	entries, err := os.ReadDir(w.cfg.Dir)
	if err != nil {
		return nil
	}
	var ids []uint64
	for _, e := range entries {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (w *WALStore) basePath() string { return filepath.Join(w.cfg.Dir, "base.ckpt") }

func (w *WALStore) segPath(id uint64) string {
	return filepath.Join(w.cfg.Dir, fmt.Sprintf("wal-%08d.seg", id))
}

// publishGauges pushes segment count/bytes to telemetry.
func (w *WALStore) publishGauges() {
	w.cfg.Instruments.Segments.Set(int64(w.liveSegs))
	w.cfg.Instruments.SegmentBytes.Set(w.liveByte)
}

// CompactNow requests a compaction pass regardless of the sealed-segment
// threshold (tests and demote paths).
func (w *WALStore) CompactNow() {
	w.mu.Lock()
	if len(w.sealed) == 0 {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	w.compactOnceOutside()
}

// compactOnceOutside is CompactNow's synchronous entry (compactOnce takes
// the lock itself).
func (w *WALStore) compactOnceOutside() { w.compactOnce() }

// syncDir fsyncs a directory so a renamed or created entry survives a
// crash — the durability step PersistentStore.flush was missing.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

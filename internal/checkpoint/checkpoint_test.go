package checkpoint

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
)

type callHistory struct {
	Busy    []int
	Total   int64
	ByLine  map[int32]int64
	Started time.Time
}

func TestRegisterCaptureRestore(t *testing.T) {
	r := NewRegistry()
	hist := &callHistory{
		Busy:   []int{1, 2, 3},
		Total:  42,
		ByLine: map[int32]int64{1: 10, 2: 32},
	}
	counter := 7
	if err := r.Register("history", hist); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("counter", &counter); err != nil {
		t.Fatal(err)
	}

	snap, err := r.CaptureFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Regions) != 2 || snap.Kind != string(KindFull) {
		t.Fatalf("snapshot: %+v", snap)
	}

	// Mutate, then restore to the snapshot.
	hist.Total = 0
	hist.Busy = nil
	counter = 0
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if hist.Total != 42 || len(hist.Busy) != 3 || counter != 7 {
		t.Fatalf("restore lost data: %+v counter=%d", hist, counter)
	}
}

func TestRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("x", 5); err == nil {
		t.Fatal("non-pointer registration should fail")
	}
	var nilPtr *int
	if err := r.Register("x", nilPtr); err == nil {
		t.Fatal("nil pointer registration should fail")
	}
	v := 1
	if err := r.Register("x", &v); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", &v); err == nil {
		t.Fatal("duplicate registration should fail")
	}
}

func TestSelectiveCapture(t *testing.T) {
	r := NewRegistry()
	big := make([]byte, 1<<16)
	small := int64(5)
	_ = r.Register("big", &big)
	_ = r.Register("small", &small)

	// Without designation, selective falls back to full.
	snap, err := r.CaptureSelective()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Regions) != 2 {
		t.Fatalf("fallback capture has %d regions", len(snap.Regions))
	}

	if err := r.Select("small"); err != nil {
		t.Fatal(err)
	}
	snap, err = r.CaptureSelective()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Regions) != 1 || snap.Kind != string(KindSelective) {
		t.Fatalf("selective capture: %+v", snap.Regions)
	}
	if _, ok := snap.Regions["small"]; !ok {
		t.Fatal("designated region missing")
	}
	if snap.Bytes() > 1024 {
		t.Fatalf("selective snapshot unexpectedly large: %d bytes", snap.Bytes())
	}

	if err := r.Select("missing"); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("got %v", err)
	}
}

func TestIncrementalCapture(t *testing.T) {
	r := NewRegistry()
	a, b := int64(1), int64(2)
	_ = r.Register("a", &a)
	_ = r.Register("b", &b)

	// First incremental is a full base.
	snap, err := r.CaptureIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind != string(KindFull) || len(snap.Regions) != 2 {
		t.Fatalf("base: %+v", snap)
	}

	// No changes: empty incremental.
	snap, err = r.CaptureIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind != string(KindIncremental) || len(snap.Regions) != 0 {
		t.Fatalf("clean incremental: %+v", snap.Regions)
	}

	// Change one region: only it travels.
	a = 99
	snap, err = r.CaptureIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Regions) != 1 {
		t.Fatalf("dirty incremental has %d regions", len(snap.Regions))
	}
	if _, ok := snap.Regions["a"]; !ok {
		t.Fatal("dirty region missing")
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	v := 1
	_ = r.Register("x", &v)
	_ = r.Select("x")
	r.Unregister("x")
	if got := r.Regions(); len(got) != 0 {
		t.Fatalf("regions = %v", got)
	}
	snap, err := r.CaptureFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Regions) != 0 {
		t.Fatal("unregistered region captured")
	}
}

func TestRestoreUnknownRegion(t *testing.T) {
	src := NewRegistry()
	v := 5
	_ = src.Register("x", &v)
	snap, _ := src.CaptureFull()

	dst := NewRegistry()
	if err := dst.Restore(snap); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("got %v", err)
	}
}

func TestStoreMerge(t *testing.T) {
	r := NewRegistry()
	a, b := int64(1), int64(2)
	_ = r.Register("a", &a)
	_ = r.Register("b", &b)
	store := NewStore()

	base, _ := r.CaptureIncremental() // full base
	if err := store.Apply(base); err != nil {
		t.Fatal(err)
	}
	a = 100
	inc, _ := r.CaptureIncremental()
	if err := store.Apply(inc); err != nil {
		t.Fatal(err)
	}

	// Materialize into a fresh replica registry.
	var ra, rb int64
	replica := NewRegistry()
	_ = replica.Register("a", &ra)
	_ = replica.Register("b", &rb)
	if err := store.Materialize(replica); err != nil {
		t.Fatal(err)
	}
	if ra != 100 || rb != 2 {
		t.Fatalf("materialized a=%d b=%d", ra, rb)
	}
	if store.LastSeq() != inc.Seq {
		t.Fatalf("lastSeq = %d", store.LastSeq())
	}
}

func TestStoreRejectsStaleAndBaselessIncremental(t *testing.T) {
	store := NewStore()
	if err := store.Apply(&Snapshot{Seq: 1, Kind: string(KindIncremental),
		Regions: map[string][]byte{"x": {1}}}); !errors.Is(err, ErrNeedBase) {
		t.Fatalf("got %v", err)
	}
	full := &Snapshot{Seq: 2, Kind: string(KindFull), Regions: map[string][]byte{"x": {1}}}
	if err := store.Apply(full); err != nil {
		t.Fatal(err)
	}
	if err := store.Apply(full); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("got %v", err)
	}
	applied, rejected := store.Counts()
	if applied != 1 || rejected != 2 {
		t.Fatalf("counts: %d %d", applied, rejected)
	}
}

func TestStoreReset(t *testing.T) {
	store := NewStore()
	_ = store.Apply(&Snapshot{Seq: 5, Kind: string(KindFull),
		Regions: map[string][]byte{"x": {1}}})
	store.Reset()
	if store.LastSeq() != 0 {
		t.Fatal("reset did not clear seq")
	}
	// After reset, incremental needs a base again.
	if err := store.Apply(&Snapshot{Seq: 1, Kind: string(KindIncremental),
		Regions: map[string][]byte{"x": {1}}}); !errors.Is(err, ErrNeedBase) {
		t.Fatalf("got %v", err)
	}
}

func TestSnapshotEncodeDecode(t *testing.T) {
	in := &Snapshot{
		Seq:     9,
		Kind:    string(KindSelective),
		TakenAt: time.Unix(961934400, 0).UTC(),
		Regions: map[string][]byte{"x": {1, 2, 3}, "y": {}},
	}
	data, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.Kind != in.Kind || len(out.Regions) != 2 {
		t.Fatalf("got %+v", out)
	}
}

func TestTransferOverNetsim(t *testing.T) {
	n := netsim.New("eth0", 1)
	l, err := n.Listen("backup:ckpt")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	store := NewStore()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		ServeReceiver(conn, store, stop)
	}()

	conn, err := n.Dial("primary:ckpt", "backup:ckpt")
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(conn, time.Second)
	defer sender.Close()

	r := NewRegistry()
	state := int64(1)
	_ = r.Register("state", &state)

	for i := 0; i < 5; i++ {
		state = int64(i * 10)
		snap, err := r.CaptureIncremental()
		if err != nil {
			t.Fatal(err)
		}
		if err := sender.Send(snap); err != nil {
			t.Fatal(err)
		}
	}
	count, bytes := sender.Stats()
	if count != 5 || bytes <= 0 {
		t.Fatalf("sender stats: %d %d", count, bytes)
	}

	var restored int64
	replica := NewRegistry()
	_ = replica.Register("state", &restored)
	if err := store.Materialize(replica); err != nil {
		t.Fatal(err)
	}
	if restored != 40 {
		t.Fatalf("restored = %d, want 40", restored)
	}
}

func TestTransferAckTimeout(t *testing.T) {
	n := netsim.New("eth0", 1)
	l, _ := n.Listen("backup:ckpt")
	defer l.Close()
	go func() {
		// Accept but never ack: a hung backup.
		_, _ = l.Accept()
	}()
	conn, err := n.Dial("primary:ckpt", "backup:ckpt")
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(conn, 50*time.Millisecond)
	defer sender.Close()
	err = sender.Send(&Snapshot{Seq: 1, Kind: string(KindFull),
		Regions: map[string][]byte{}})
	if !errors.Is(err, ErrNotAcked) {
		t.Fatalf("got %v", err)
	}
}

func TestStaleRetryGetsPositiveAck(t *testing.T) {
	n := netsim.New("eth0", 1)
	l, _ := n.Listen("backup:ckpt")
	defer l.Close()
	store := NewStore()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		ServeReceiver(conn, store, stop)
	}()
	conn, err := n.Dial("primary:ckpt", "backup:ckpt")
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(conn, time.Second)
	defer sender.Close()

	snap := &Snapshot{Seq: 3, Kind: string(KindFull), Regions: map[string][]byte{"x": {1}}}
	if err := sender.Send(snap); err != nil {
		t.Fatal(err)
	}
	// Retransmitting a confirmed snapshot must not error.
	if err := sender.Send(snap); err != nil {
		t.Fatalf("duplicate retry: %v", err)
	}
}

// Property: capture/restore is the identity on registered state.
func TestQuickCaptureRestoreIdentity(t *testing.T) {
	f := func(total int64, busy []int64, byLine map[int32]int64) bool {
		type state struct {
			Total  int64
			Busy   []int64
			ByLine map[int32]int64
		}
		orig := state{Total: total, Busy: busy, ByLine: byLine}
		r := NewRegistry()
		s := orig
		if err := r.Register("s", &s); err != nil {
			return false
		}
		snap, err := r.CaptureFull()
		if err != nil {
			return false
		}
		s = state{} // wipe
		if err := r.Restore(snap); err != nil {
			return false
		}
		if s.Total != orig.Total || len(s.Busy) != len(orig.Busy) || len(s.ByLine) != len(orig.ByLine) {
			return false
		}
		for i := range orig.Busy {
			if s.Busy[i] != orig.Busy[i] {
				return false
			}
		}
		for k, v := range orig.ByLine {
			if s.ByLine[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: incremental captures only ship changed regions, and applying
// them to a store always reproduces the latest full state.
func TestQuickIncrementalEquivalence(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			vals = []int64{0}
		}
		r := NewRegistry()
		var a, b int64
		_ = r.Register("a", &a)
		_ = r.Register("b", &b)
		store := NewStore()
		for i, v := range vals {
			if i%2 == 0 {
				a = v
			} else {
				b = v
			}
			snap, err := r.CaptureIncremental()
			if err != nil {
				return false
			}
			if err := store.Apply(snap); err != nil && !errors.Is(err, ErrStaleSnapshot) {
				return false
			}
		}
		var ra, rb int64
		replica := NewRegistry()
		_ = replica.Register("a", &ra)
		_ = replica.Register("b", &rb)
		if err := store.Materialize(replica); err != nil {
			return false
		}
		return ra == a && rb == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCaptureFull64K(b *testing.B) {
	r := NewRegistry()
	state := make([]byte, 64<<10)
	_ = r.Register("state", &state)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.CaptureFull(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaptureIncrementalClean64K(b *testing.B) {
	r := NewRegistry()
	state := make([]byte, 64<<10)
	_ = r.Register("state", &state)
	if _, err := r.CaptureIncremental(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.CaptureIncremental(); err != nil {
			b.Fatal(err)
		}
	}
}

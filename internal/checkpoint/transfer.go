package checkpoint

import (
	"errors"
	"time"

	"repro/internal/netsim"
)

// FrameConn is the transport contract for checkpoint transfer; it is
// satisfied by *netsim.Conn.
type FrameConn interface {
	Send(frame []byte) error
	Recv() ([]byte, error)
	RecvTimeout(d time.Duration) ([]byte, error)
	Close() error
}

// ErrNotAcked is returned when the backup did not confirm a snapshot.
var ErrNotAcked = errors.New("checkpoint: snapshot not acknowledged")

// ErrPartialShip is returned by a multi-replica ship when at least one
// replica confirmed the snapshot but at least one did not. The state is
// recoverable (a quorum-side copy exists), but the failed replica's
// incremental chain is now broken: the shipper must re-base it with a
// full snapshot before its copy can be trusted again. With the streaming
// protocol the re-base resumes from the replica's buffered partial
// transfer rather than restarting from byte zero.
var ErrPartialShip = errors.New("checkpoint: shipped to some replicas only")

func isTimeout(err error) bool {
	return errors.Is(err, netsim.ErrTimeout)
}

package checkpoint

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ndr"
	"repro/internal/netsim"
)

// FrameConn is the transport contract for checkpoint transfer; it is
// satisfied by *netsim.Conn.
type FrameConn interface {
	Send(frame []byte) error
	Recv() ([]byte, error)
	RecvTimeout(d time.Duration) ([]byte, error)
	Close() error
}

// ack is the receiver's acknowledgement frame.
type ack struct {
	Seq uint64
	OK  bool
	Err string
}

// ErrNotAcked is returned when the backup did not confirm a snapshot.
var ErrNotAcked = errors.New("checkpoint: snapshot not acknowledged")

// ErrPartialShip is returned by a multi-replica ship when at least one
// replica confirmed the snapshot but at least one did not. The state is
// recoverable (a quorum-side copy exists), but the failed replica's
// incremental chain is now broken: the shipper must re-base it with a
// full snapshot before its copy can be trusted again.
var ErrPartialShip = errors.New("checkpoint: shipped to some replicas only")

// Sender ships snapshots from the primary's FTIM to the backup and waits
// for acknowledgement, so a confirmed checkpoint is known to be recoverable.
type Sender struct {
	conn    FrameConn
	timeout time.Duration

	sent      int
	sentBytes int64
}

// NewSender wraps a connection to the backup's checkpoint receiver.
func NewSender(conn FrameConn, ackTimeout time.Duration) *Sender {
	if ackTimeout <= 0 {
		ackTimeout = 2 * time.Second
	}
	return &Sender{conn: conn, timeout: ackTimeout}
}

// Send ships one snapshot and blocks for the ack.
func (s *Sender) Send(snap *Snapshot) error {
	frame, err := snap.Encode()
	if err != nil {
		return err
	}
	if err := s.conn.Send(frame); err != nil {
		return fmt.Errorf("checkpoint: send seq %d: %w", snap.Seq, err)
	}
	raw, err := s.conn.RecvTimeout(s.timeout)
	if err != nil {
		return fmt.Errorf("%w: seq %d: %v", ErrNotAcked, snap.Seq, err)
	}
	var a ack
	if err := ndr.Unmarshal(raw, &a); err != nil {
		return fmt.Errorf("%w: corrupt ack: %v", ErrNotAcked, err)
	}
	if a.Seq != snap.Seq {
		return fmt.Errorf("%w: ack seq %d for snapshot %d", ErrNotAcked, a.Seq, snap.Seq)
	}
	if !a.OK {
		return fmt.Errorf("checkpoint: backup rejected seq %d: %s", snap.Seq, a.Err)
	}
	s.sent++
	s.sentBytes += int64(len(frame))
	return nil
}

// Stats reports (snapshots sent, total wire bytes).
func (s *Sender) Stats() (count int, bytes int64) { return s.sent, s.sentBytes }

// Close releases the transport.
func (s *Sender) Close() { _ = s.conn.Close() }

// ServeReceiver pumps snapshots from conn into store until the connection
// breaks or stop closes, acknowledging each. It is run by the backup's
// engine for each inbound checkpoint connection.
func ServeReceiver(conn FrameConn, store SnapshotStore, stop <-chan struct{}) {
	defer conn.Close()
	for {
		select {
		case <-stop:
			return
		default:
		}
		raw, err := conn.RecvTimeout(250 * time.Millisecond)
		if err != nil {
			if isTimeout(err) {
				continue
			}
			return
		}
		snap, err := DecodeSnapshot(raw)
		if err != nil {
			return // corrupt peer: drop the connection
		}
		a := ack{Seq: snap.Seq, OK: true}
		if err := store.Apply(snap); err != nil {
			a.OK = false
			a.Err = err.Error()
			// Stale duplicates still get a positive ack so an old primary
			// retrying a confirmed snapshot does not spin.
			if errors.Is(err, ErrStaleSnapshot) {
				a.OK = true
				a.Err = ""
			}
		}
		out, err := ndr.Marshal(a)
		if err != nil {
			return
		}
		if err := conn.Send(out); err != nil {
			return
		}
	}
}

func isTimeout(err error) bool {
	return errors.Is(err, netsim.ErrTimeout)
}

package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ftim"
)

// E6Result measures diverter behaviour across a switchover.
type E6Result struct {
	Sent             int
	Delivered        int
	Duplicates       int
	Lost             int
	OrderViolations  int
	MaxRedeliveryMs  float64
	MeanRedeliveryMs float64
}

// e6App records messages with receive timestamps.
type e6App struct {
	mu   sync.Mutex
	f    *ftim.ClientFTIM
	seen map[string]int
	log  []string
	when map[string]time.Time
}

func newE6App() *e6App {
	return &e6App{seen: map[string]int{}, when: map[string]time.Time{}}
}

func (a *e6App) Setup(f *ftim.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	return nil
}
func (a *e6App) Activate(bool) {}
func (a *e6App) Deactivate()   {}
func (a *e6App) Stop()         {}
func (a *e6App) HandleMessage(body []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := string(body)
	a.seen[s]++
	if a.seen[s] == 1 {
		a.log = append(a.log, s)
		a.when[s] = time.Now()
	}
	return nil
}

// RunE6 reproduces Section 2.2.3: a steady stream of messages flows
// through the message diverter while the primary fails mid-stream; the
// non-delivery during the switchover must be detected and retried, with
// no loss and bounded duplication.
func RunE6(messages int, seed int64) (*E6Result, error) {
	if messages <= 0 {
		messages = 60
	}
	apps := map[string]*e6App{}
	var mu sync.Mutex
	d, err := core.New(core.Config{
		Seed:      seed,
		Component: "sink",
		NewApp: func(node string) core.ReplicatedApp {
			a := newE6App()
			mu.Lock()
			apps[node] = a
			mu.Unlock()
			return a
		},
	})
	if err != nil {
		return nil, err
	}
	defer d.Shutdown(context.Background())
	if err := waitRoles(d, 3*time.Second); err != nil {
		return nil, err
	}
	primary := d.Primary().Node.Name()

	// Stream messages; kill the primary node a third of the way through.
	sendTimes := make(map[string]time.Time, messages)
	for i := 0; i < messages; i++ {
		if i == messages/3 {
			if err := d.KillNode(primary); err != nil {
				return nil, err
			}
		}
		body := fmt.Sprintf("m%04d", i)
		sendTimes[body] = time.Now()
		if _, err := d.Send([]byte(body)); err != nil {
			return nil, err
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Wait for the queue to drain to the survivor.
	survivorName := ""
	if !waitCond(10*time.Second, func() bool {
		p := d.Primary()
		if p == nil {
			return false
		}
		survivorName = p.Node.Name()
		mu.Lock()
		app := apps[survivorName]
		mu.Unlock()
		app.mu.Lock()
		defer app.mu.Unlock()
		return len(app.log) >= messages-messages/3
	}) {
		// fall through: count what we have
	}
	time.Sleep(100 * time.Millisecond)

	res := &E6Result{Sent: messages}
	mu.Lock()
	oldApp := apps[primary]
	newApp := apps[survivorName]
	mu.Unlock()

	// Merge views: messages delivered to the old primary before it died
	// count as delivered (at-least-once); the survivor holds the rest.
	combinedFirst := map[string]time.Time{}
	dups := 0
	for _, a := range []*e6App{oldApp, newApp} {
		if a == nil {
			continue
		}
		a.mu.Lock()
		for s, n := range a.seen {
			if n > 1 {
				dups += n - 1
			}
			if t, ok := a.when[s]; ok {
				if existing, ok2 := combinedFirst[s]; !ok2 || t.Before(existing) {
					combinedFirst[s] = t
				} else if ok2 {
					dups++ // delivered to both copies
				}
			}
		}
		a.mu.Unlock()
	}
	res.Delivered = len(combinedFirst)
	res.Duplicates = dups
	res.Lost = messages - res.Delivered

	// Order: the survivor's log must be in send order.
	if newApp != nil {
		newApp.mu.Lock()
		last := -1
		for _, s := range newApp.log {
			var idx int
			if _, err := fmt.Sscanf(s, "m%04d", &idx); err == nil {
				if idx < last {
					res.OrderViolations++
				}
				last = idx
			}
		}
		newApp.mu.Unlock()
	}

	// Redelivery latency: time from send to first delivery.
	var total time.Duration
	var maxD time.Duration
	n := 0
	for s, recv := range combinedFirst {
		if sent, ok := sendTimes[s]; ok {
			lat := recv.Sub(sent)
			total += lat
			if lat > maxD {
				maxD = lat
			}
			n++
		}
	}
	if n > 0 {
		res.MeanRedeliveryMs = float64(total.Microseconds()) / float64(n) / 1000
		res.MaxRedeliveryMs = float64(maxD.Microseconds()) / 1000
	}
	return res, nil
}

// E6Table formats E6 results.
func E6Table(r *E6Result) *Table {
	return &Table{
		Title:   "E6: message diverter across a switchover (Section 2.2.3)",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"messages sent", fmt.Sprintf("%d", r.Sent)},
			{"delivered (exactly-once view)", fmt.Sprintf("%d", r.Delivered)},
			{"lost", fmt.Sprintf("%d", r.Lost)},
			{"duplicates", fmt.Sprintf("%d", r.Duplicates)},
			{"order violations", fmt.Sprintf("%d", r.OrderViolations)},
			{"mean delivery latency", f2(r.MeanRedeliveryMs) + " ms"},
			{"max delivery latency (switchover window)", f2(r.MaxRedeliveryMs) + " ms"},
		},
		Notes: []string{
			"expected: zero loss; max latency ~ failure detection + takeover time",
		},
	}
}

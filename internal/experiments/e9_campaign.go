package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chaos"
)

// E9Row is one seeded chaos campaign's verdict.
type E9Row struct {
	Seed          int64
	Faults        int
	Skipped       int
	FaultList     string // compact kind@offset summary
	Verdict       string // "pass" or the violated invariants
	WorstRecovery time.Duration
	Enqueued      int64
	Delivered     int64
}

// RunE9 runs n seeded chaos campaigns (seeds base..base+n-1) with the full
// fault palette and reports each campaign's invariant verdict. quick
// shrinks the fault window.
func RunE9(n int, base int64, quick bool) ([]E9Row, error) {
	dur := 500 * time.Millisecond
	if quick {
		dur = 250 * time.Millisecond
	}
	rows := make([]E9Row, 0, n)
	for i := 0; i < n; i++ {
		seed := base + int64(i)
		res, err := chaos.Run(chaos.Config{Seed: seed, Duration: dur})
		if err != nil {
			return nil, fmt.Errorf("campaign seed %d: %w", seed, err)
		}
		row := E9Row{
			Seed:          seed,
			Faults:        res.Injected,
			Skipped:       res.Skipped,
			FaultList:     res.Schedule.Summary(),
			Verdict:       "pass",
			WorstRecovery: res.WorstRecovery,
			Enqueued:      res.Enqueued,
			Delivered:     res.Delivered,
		}
		if !res.Passed() {
			names := make([]string, 0, len(res.Violations))
			for _, v := range res.Violations {
				names = append(names, v.Invariant)
			}
			row.Verdict = "FAIL: " + strings.Join(names, ",")
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E9Table formats campaign results.
func E9Table(rows []E9Row) *Table {
	t := &Table{
		Title:   "E9: seeded chaos campaigns — randomized compound faults vs invariants",
		Columns: []string{"seed", "faults", "skipped", "verdict", "worst_recovery_ms", "msgs_enq", "msgs_del", "schedule"},
		Notes: []string{
			"invariants: eventually-single-primary, monotonic-state, no-acked-loss, bounded-recovery",
			"each schedule is a pure function of its seed: replay with `go run ./cmd/oftt-chaos -seed N -campaigns 1`",
		},
	}
	for _, r := range rows {
		sched := r.FaultList
		if len(sched) > 60 {
			sched = sched[:57] + "..."
		}
		t.Rows = append(t.Rows, []string{
			i64(r.Seed), fmt.Sprintf("%d", r.Faults), fmt.Sprintf("%d", r.Skipped),
			r.Verdict, f1(float64(r.WorstRecovery.Microseconds()) / 1000),
			i64(r.Enqueued), i64(r.Delivered), sched,
		})
	}
	return t
}

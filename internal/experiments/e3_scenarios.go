package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// E3Row is one demonstration-scenario measurement.
type E3Row struct {
	Scenario     string
	RecoveredBy  string // "switchover" or "local restart"
	RecoveryMs   float64
	SamplesBefor int64
	SamplesAfter int64
	HistoryKept  bool
	Invariants   string // "" when consistent
}

// E3Scenarios lists the paper's Section 4 failures.
var E3Scenarios = []string{
	"a:node-failure",
	"b:nt-crash",
	"c:application-failure",
	"d:middleware-failure",
}

// RunE3 runs the Figure 3 / Table 1 demonstration for one scenario: the
// Call Track application tracks the simulated telephone system; the
// failure is injected on the primary; the measurement is how long until
// tracking resumes and whether the recorded history survived.
func RunE3(scenario string, seed int64) (*E3Row, error) {
	ct, err := core.NewCallTrackDeployment(core.CallTrackConfig{
		Config:     core.Config{Seed: seed},
		UpdateRate: 5 * time.Millisecond,
		SimTick:    2 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer ct.Shutdown(context.Background())
	if err := waitRoles(ct, 3*time.Second); err != nil {
		return nil, err
	}

	// Accumulate history.
	if !waitCond(5*time.Second, func() bool {
		tr := ct.ActiveTracker()
		return tr != nil && tr.Samples() >= 30
	}) {
		return nil, fmt.Errorf("no telephone data flowing")
	}
	primary := ct.Primary().Node.Name()
	before := ct.ActiveTracker().Samples()

	kind, ok := core.ScenarioFault(scenario)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q", scenario)
	}

	start := time.Now()
	if err := ct.Inject(kind, primary); err != nil {
		return nil, err
	}
	if !waitCond(8*time.Second, func() bool {
		tr := ct.ActiveTracker()
		return tr != nil && tr.Samples() > before
	}) {
		return nil, fmt.Errorf("%s: tracking never resumed", scenario)
	}
	recovery := time.Since(start)

	row := &E3Row{
		Scenario:     scenario,
		RecoveryMs:   float64(recovery.Microseconds()) / 1000,
		SamplesBefor: before,
	}
	tr := ct.ActiveTracker()
	row.SamplesAfter = tr.Samples()
	row.HistoryKept = row.SamplesAfter >= before/2
	row.Invariants = tr.Verify()
	if p := ct.Primary(); p != nil && p.Node.Name() == primary {
		row.RecoveredBy = "local restart"
	} else {
		row.RecoveredBy = "switchover"
	}
	return row, nil
}

// RunE3All runs all four scenarios.
func RunE3All(seed int64) ([]E3Row, error) {
	var rows []E3Row
	for i, sc := range E3Scenarios {
		row, err := RunE3(sc, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// E3Table formats E3 results.
func E3Table(rows []E3Row) *Table {
	t := &Table{
		Title:   "E3: Section 4 demonstration — Call Track under the four failures (Fig. 3, Table 1)",
		Columns: []string{"scenario", "recovered_by", "recovery_ms", "samples_before", "samples_after", "history_kept", "invariants"},
		Notes: []string{
			"the paper demonstrates continued operation; this table adds measured recovery time",
		},
	}
	for _, r := range rows {
		inv := r.Invariants
		if inv == "" {
			inv = "ok"
		}
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			r.RecoveredBy,
			f1(r.RecoveryMs),
			i64(r.SamplesBefor),
			i64(r.SamplesAfter),
			fmt.Sprintf("%v", r.HistoryKept),
			inv,
		})
	}
	return t
}

package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/netsim"
	"repro/internal/opc"
)

// E8Result measures local COM vs. remote DCOM call behaviour.
type E8Result struct {
	Calls            int
	LocalNsPerCall   int64
	RemoteNsPerCall  int64
	RemoteOverheadX  float64
	FailureDetectUs  int64 // time for a call to a dead callee to error
	RedialUs         int64 // time to re-resolve after callee restart
	PoisonedFastFail bool  // calls after poisoning fail without touching the net
}

// RunE8 quantifies Section 3.3: DCOM calls cost far more than local COM
// calls, and DCOM's RPC "does not behave well in the presence of
// failures" — a dead callee surfaces as an error, the proxy is poisoned,
// and recovery requires explicit re-resolution.
func RunE8(calls int) (*E8Result, error) {
	if calls <= 0 {
		calls = 2000
	}
	res := &E8Result{Calls: calls}

	// Local COM: in-process interface call through QueryInterface.
	server := opc.NewServer("Bench.OPC.1")
	if err := server.AddItem(opc.ItemDef{Tag: "x", CanonicalType: opc.VTFloat64}); err != nil {
		return nil, err
	}
	_ = server.SetValue("x", opc.VR8(1), opc.GoodNonSpecific, time.Now())
	obj := com.NewObject(map[com.IID]any{com.IIDOPCServer: opc.Connection(server)})
	conn, err := com.QueryAs[opc.Connection](obj, com.IIDOPCServer)
	if err != nil {
		return nil, err
	}
	tags := []string{"x"}
	start := time.Now()
	for i := 0; i < calls; i++ {
		if _, err := conn.Read(tags); err != nil {
			return nil, err
		}
	}
	res.LocalNsPerCall = time.Since(start).Nanoseconds() / int64(calls)

	// Remote DCOM: same interface through the exporter/proxy machinery.
	net := netsim.New("eth", 8)
	exp, err := dcom.NewExporter(net, "server:rpc")
	if err != nil {
		return nil, err
	}
	defer exp.Close()
	oid := com.NewGUID()
	if err := opc.ExportServer(exp, oid, server); err != nil {
		return nil, err
	}
	cli, err := dcom.Dial(net, "client:rpc", "server:rpc")
	if err != nil {
		return nil, err
	}
	defer cli.Close()
	remote := opc.NewRemoteConnection(cli, oid)
	start = time.Now()
	for i := 0; i < calls; i++ {
		if _, err := remote.Read(tags); err != nil {
			return nil, err
		}
	}
	res.RemoteNsPerCall = time.Since(start).Nanoseconds() / int64(calls)
	if res.LocalNsPerCall > 0 {
		res.RemoteOverheadX = float64(res.RemoteNsPerCall) / float64(res.LocalNsPerCall)
	}

	// Failure semantics: kill the callee mid-life.
	net.FailEndpoint("server:rpc")
	start = time.Now()
	_, err = remote.Read(tags)
	res.FailureDetectUs = time.Since(start).Microseconds()
	if !errors.Is(err, dcom.ErrRPCFailure) && !errors.Is(err, dcom.ErrCallTimeout) {
		return nil, fmt.Errorf("dead callee produced %v", err)
	}
	// Poisoned proxy fails fast.
	start = time.Now()
	_, err = remote.Read(tags)
	res.PoisonedFastFail = err != nil && time.Since(start) < 10*time.Millisecond

	// Application-level recovery: callee restarts, caller redials.
	net.RestoreEndpoint("server:rpc")
	exp2, err := dcom.NewExporter(net, "server:rpc")
	if err != nil {
		return nil, err
	}
	defer exp2.Close()
	if err := opc.ExportServer(exp2, oid, server); err != nil {
		return nil, err
	}
	start = time.Now()
	if err := remote.Redial(); err != nil {
		return nil, err
	}
	if _, err := remote.Read(tags); err != nil {
		return nil, err
	}
	res.RedialUs = time.Since(start).Microseconds()
	return res, nil
}

// E8Table formats E8 results.
func E8Table(r *E8Result) *Table {
	return &Table{
		Title:   "E8: local COM vs remote DCOM call behaviour (Section 3.3)",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"calls measured", fmt.Sprintf("%d", r.Calls)},
			{"local COM ns/call", i64(r.LocalNsPerCall)},
			{"remote DCOM ns/call", i64(r.RemoteNsPerCall)},
			{"remote/local overhead", f1(r.RemoteOverheadX) + "x"},
			{"dead-callee error detected in", fmt.Sprintf("%d us", r.FailureDetectUs)},
			{"poisoned proxy fails fast", fmt.Sprintf("%v", r.PoisonedFastFail)},
			{"redial + first call after restart", fmt.Sprintf("%d us", r.RedialUs)},
		},
		Notes: []string{
			"no built-in DCOM fault tolerance: recovery requires explicit redial after the callee returns",
		},
	}
}

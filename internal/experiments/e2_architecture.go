package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ftim"
)

// E2Check is one verified arrow of the Figure 2 architecture diagram.
type E2Check struct {
	Arrow string
	OK    bool
	Note  string
}

// e2App is a minimal stateful app for the architecture walkthrough.
type e2App struct {
	mu    sync.Mutex
	f     *ftim.ClientFTIM
	state struct{ N int64 }
	msgs  int
}

func (a *e2App) Setup(f *ftim.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	return f.RegisterState("n", &a.state)
}
func (a *e2App) Activate(bool) {}
func (a *e2App) Deactivate()   {}
func (a *e2App) Stop()         {}
func (a *e2App) HandleMessage([]byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.msgs++
	return nil
}

// RunE2 stands the full Figure 2 architecture up and verifies every
// component interaction the diagram draws: application<->FTIM linkage,
// FTIM->engine heartbeats, engine<->engine role protocol, primary->backup
// checkpoint data, message diverter->primary routing, and engine->system
// monitor status reporting.
func RunE2() ([]E2Check, error) {
	apps := map[string]*e2App{}
	var mu sync.Mutex
	d, err := core.New(core.Config{
		Seed:      2,
		Component: "app",
		NewApp: func(node string) core.ReplicatedApp {
			a := &e2App{}
			mu.Lock()
			apps[node] = a
			mu.Unlock()
			return a
		},
	})
	if err != nil {
		return nil, err
	}
	defer d.Shutdown(context.Background())

	var checks []E2Check
	add := func(arrow string, ok bool, note string) {
		checks = append(checks, E2Check{Arrow: arrow, OK: ok, Note: note})
	}

	// Role protocol between the two engines.
	err = waitRoles(d, 3*time.Second)
	add("engine <-> engine role negotiation", err == nil,
		fmt.Sprintf("roles settled: %v", err == nil))
	if err != nil {
		return checks, nil
	}
	p, b := d.Primary(), d.Backup()

	// FTIM -> engine heartbeats: both components stay registered & healthy.
	okHB := len(p.Engine.Components()) == 1 && len(b.Engine.Components()) == 1
	add("FTIM -> engine heartbeats", okHB, "component registered on both nodes")

	// Application <-> FTIM: state mutation flows into checkpoints...
	mu.Lock()
	pApp := apps[p.Node.Name()]
	mu.Unlock()
	pApp.f.WithLock(func() { pApp.state.N = 99 })
	saveErr := pApp.f.Save()
	add("application -> FTIM (OFTTSave)", saveErr == nil, fmt.Sprintf("%v", saveErr))

	// ...checkpoint data primary -> backup.
	gotCkpt := waitCond(2*time.Second, func() bool { return b.Engine.Store().LastSeq() > 0 })
	add("checkpoint data primary -> backup", gotCkpt,
		fmt.Sprintf("backup store seq %d", b.Engine.Store().LastSeq()))

	// Message diverter -> primary copy.
	_, sendErr := d.Send([]byte("hello"))
	delivered := sendErr == nil && waitCond(2*time.Second, func() bool {
		pApp.mu.Lock()
		defer pApp.mu.Unlock()
		return pApp.msgs == 1
	})
	add("message diverter -> primary", delivered, "one message, one delivery")

	// Engine -> system monitor.
	okMon := false
	if d.Monitor != nil {
		_, ok1 := d.Monitor.Status(p.Node.Name(), "oftt-engine")
		_, ok2 := d.Monitor.Status(b.Node.Name(), "oftt-engine")
		okMon = ok1 && ok2 && len(d.Monitor.Events(0)) > 0
	}
	add("engine -> system monitor", okMon, "status rows + events present")

	// Switchover control: engine -> peer engine -> FTIM activation.
	swErr := p.Engine.RequestSwitchover("E2 walkthrough")
	swOK := swErr == nil && waitCond(3*time.Second, func() bool {
		return d.Primary() != nil && d.Primary().Node.Name() == b.Node.Name()
	})
	add("switchover control (engine -> peer -> FTIM)", swOK, fmt.Sprintf("%v", swErr))

	return checks, nil
}

func waitCond(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// E2Table formats E2 results.
func E2Table(checks []E2Check) *Table {
	t := &Table{
		Title:   "E2: Figure 2 software architecture walkthrough",
		Columns: []string{"arrow", "verified", "note"},
	}
	for _, c := range checks {
		t.Rows = append(t.Rows, []string{c.Arrow, fmt.Sprintf("%v", c.OK), c.Note})
	}
	return t
}

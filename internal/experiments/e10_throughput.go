package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diverter"
)

// E10 measures the diverter's aggregate throughput scaling across a
// producers x destinations grid, comparing a deliberately serialized
// configuration (one shard, one worker, batch size one — the shape of the
// pre-sharding single-pump design) against the default sharded/batched
// configuration. Two delivery-cost modes bound the story from both ends:
// a free handler isolates per-message bookkeeping overhead, and an
// RPC-shaped handler (~1ms sleep, the DCOM/MSMQ hop of the original
// system) shows delivery-wait overlap across destinations — the win the
// worker pool exists for.

// E10Row is one grid cell's measurement.
type E10Row struct {
	Producers int
	Dests     int
	SvcMs     float64 // simulated per-delivery service time
	SerialMsg float64 // msgs/sec, serialized configuration
	ShardMsg  float64 // msgs/sec, default sharded configuration
	Speedup   float64
}

// RunE10 runs the grid. quick shrinks message counts for a fast pass.
func RunE10(quick bool) ([]E10Row, error) {
	grid := []struct{ p, d int }{{1, 1}, {4, 4}, {8, 8}}
	freeN, rpcN := 100000, 1600
	if quick {
		freeN, rpcN = 20000, 400
	}
	var rows []E10Row
	for _, mode := range []struct {
		svc time.Duration
		n   int
	}{{0, freeN}, {time.Millisecond, rpcN}} {
		for _, g := range grid {
			serial, err := e10Cell(true, g.p, g.d, mode.svc, mode.n)
			if err != nil {
				return nil, err
			}
			sharded, err := e10Cell(false, g.p, g.d, mode.svc, mode.n)
			if err != nil {
				return nil, err
			}
			rows = append(rows, E10Row{
				Producers: g.p,
				Dests:     g.d,
				SvcMs:     float64(mode.svc.Microseconds()) / 1000,
				SerialMsg: serial,
				ShardMsg:  sharded,
				Speedup:   sharded / serial,
			})
		}
	}
	return rows, nil
}

// e10Cell runs one configuration on one grid cell and returns aggregate
// msgs/sec over the full enqueue-to-drain wall time.
func e10Cell(serialized bool, producers, dests int, svc time.Duration, n int) (float64, error) {
	cfg := diverter.Config{
		RetryInterval: 5 * time.Millisecond,
		DedupWindow:   250 * time.Millisecond,
	}
	if serialized {
		cfg.Shards, cfg.Workers, cfg.BatchSize = 1, 1, 1
	}
	d := diverter.New(cfg)
	defer d.Stop()

	var delivered atomic.Int64
	names := make([]string, dests)
	for i := range names {
		names[i] = fmt.Sprintf("dest%d", i)
		d.SetRoute(names[i], func(diverter.Message) error {
			if svc > 0 {
				time.Sleep(svc)
			}
			delivered.Add(1)
			return nil
		})
	}

	body := []byte("0123456789abcdef0123456789abcdef")
	start := time.Now()
	var wg sync.WaitGroup
	var sendErr atomic.Value
	for p := 0; p < producers; p++ {
		per := n / producers
		if p < n%producers {
			per++
		}
		wg.Add(1)
		go func(p, per int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := d.Send(names[(p+i)%dests], body); err != nil {
					sendErr.Store(err)
					return
				}
			}
		}(p, per)
	}
	wg.Wait()
	if err, ok := sendErr.Load().(error); ok {
		return 0, err
	}
	for _, name := range names {
		if !d.Drain(name, 120*time.Second) {
			return 0, fmt.Errorf("e10: %s did not drain (pending=%d)", name, d.Pending(name))
		}
	}
	elapsed := time.Since(start)
	if got := delivered.Load(); got != int64(n) {
		return 0, fmt.Errorf("e10: delivered %d of %d", got, n)
	}
	return float64(n) / elapsed.Seconds(), nil
}

// E10Table formats E10 results.
func E10Table(rows []E10Row) *Table {
	t := &Table{
		Title:   "E10: diverter throughput scaling, serialized vs sharded (producers x destinations)",
		Columns: []string{"producers", "dests", "svc/delivery", "serial msgs/s", "sharded msgs/s", "speedup"},
		Notes: []string{
			"serial = Shards:1 Workers:1 BatchSize:1 (the pre-sharding single-pump shape)",
			"svc/delivery 1ms models the DCOM/MSMQ RPC hop; 0 isolates queue overhead",
			"expected: speedup grows with destination count in the RPC mode (wait overlap)",
		},
	}
	for _, r := range rows {
		svc := "0"
		if r.SvcMs > 0 {
			svc = fmt.Sprintf("%.0fms", r.SvcMs)
		}
		t.Rows = append(t.Rows, []string{
			i64(int64(r.Producers)), i64(int64(r.Dests)), svc,
			f1(r.SerialMsg), f1(r.ShardMsg), f2(r.Speedup) + "x",
		})
	}
	return t
}

// Package experiments implements the reproduction's evaluation harness:
// one runnable experiment per figure/table/claim of the paper, as indexed
// in DESIGN.md and recorded in EXPERIMENTS.md. Each experiment returns
// typed rows so cmd/oftt-bench can print them and the root benchmarks can
// assert on them.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render draws the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	b.WriteString(strings.Repeat("-", len(t.Title)) + "\n")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func i64(v int64) string  { return fmt.Sprintf("%d", v) }

// roleWaiter is any deployment view that can wait for its roles to
// settle (core.Deployment and the demo wrappers embedding it).
type roleWaiter interface {
	WaitForRolesContext(ctx context.Context) error
}

// waitRoles bounds a roles wait with a plain timeout; experiment drivers
// have no caller context to thread through.
func waitRoles(d roleWaiter, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return d.WaitForRolesContext(ctx)
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	out := tbl.Render()
	for _, want := range []string{"T", "long_column", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestE1Shape: both topologies deliver data with good quality; the remote
// topology pays wire latency.
func TestE1Shape(t *testing.T) {
	rows, err := RunE1(250 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	var local, remote *E1Row
	for i := range rows {
		switch rows[i].Topology {
		case "1b-integrated":
			local = &rows[i]
		case "1a-remote-monitoring":
			remote = &rows[i]
		}
	}
	if local == nil || remote == nil {
		t.Fatalf("topologies missing: %+v", rows)
	}
	for _, r := range []*E1Row{local, remote} {
		if r.Updates == 0 {
			t.Fatalf("%s delivered nothing", r.Topology)
		}
		if r.QualityGoodP < 0.5 {
			t.Fatalf("%s quality %f", r.Topology, r.QualityGoodP)
		}
	}
	if remote.MeanLatMs <= local.MeanLatMs {
		t.Errorf("remote latency (%.2f) should exceed local (%.2f)",
			remote.MeanLatMs, local.MeanLatMs)
	}
	t.Log("\n" + E1Table(rows).Render())
}

// TestE2AllArrowsVerified: every Figure 2 interaction holds.
func TestE2AllArrowsVerified(t *testing.T) {
	checks, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 7 {
		t.Fatalf("only %d checks ran", len(checks))
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("arrow %q failed: %s", c.Arrow, c.Note)
		}
	}
	t.Log("\n" + E2Table(checks).Render())
}

// TestE3AllScenariosRecover: every Section 4 failure is survived with
// history intact.
func TestE3AllScenariosRecover(t *testing.T) {
	rows, err := RunE3All(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("scenarios: %d", len(rows))
	}
	for _, r := range rows {
		if !r.HistoryKept {
			t.Errorf("%s lost history (%d -> %d)", r.Scenario, r.SamplesBefor, r.SamplesAfter)
		}
		if r.Invariants != "" {
			t.Errorf("%s broke invariants: %s", r.Scenario, r.Invariants)
		}
		if r.RecoveryMs <= 0 || r.RecoveryMs > 5000 {
			t.Errorf("%s recovery %f ms implausible", r.Scenario, r.RecoveryMs)
		}
	}
	t.Log("\n" + E3Table(rows).Render())
}

// TestE4Shape: selective << full; incremental wire bytes track the dirty
// fraction.
func TestE4Shape(t *testing.T) {
	rows, err := RunE4([]int{64 << 10}, []int{1, 100}, 10)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]E4Row{}
	for _, r := range rows {
		byKey[r.Mode+"/"+itoa(r.DirtyPercent)] = r
	}
	full := byKey["full/1"]
	sel := byKey["selective/1"]
	incLow := byKey["incremental/1"]
	incHigh := byKey["incremental/100"]

	if sel.WireBytes*10 > full.WireBytes {
		t.Errorf("selective (%d B) should be tiny vs full (%d B)", sel.WireBytes, full.WireBytes)
	}
	if sel.CaptureNs > full.CaptureNs {
		t.Errorf("selective capture (%d ns) should beat full (%d ns)", sel.CaptureNs, full.CaptureNs)
	}
	if incLow.WireBytes >= incHigh.WireBytes {
		t.Errorf("incremental bytes should grow with dirty fraction: %d vs %d",
			incLow.WireBytes, incHigh.WireBytes)
	}
	if incLow.WireBytes >= full.WireBytes {
		t.Errorf("1%%-dirty incremental (%d B) should beat full (%d B)",
			incLow.WireBytes, full.WireBytes)
	}
	t.Log("\n" + E4Table(rows).Render())
}

// TestE5Shape: the retry fix lifts pair-formation success toward 100%.
func TestE5Shape(t *testing.T) {
	rows, err := RunE5([]int{1, 10}, 8, 120*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	original, fixed := rows[0], rows[1]
	if original.PairFormed >= fixed.PairFormed {
		t.Errorf("retries should improve formation: %d/%d vs %d/%d",
			original.PairFormed, original.Trials, fixed.PairFormed, fixed.Trials)
	}
	if fixed.FalseShutdowns != 0 {
		t.Errorf("fixed policy still had %d false shutdowns", fixed.FalseShutdowns)
	}
	if original.FalseShutdowns == 0 {
		t.Errorf("original policy should exhibit the Section 3.2 problem")
	}
	t.Log("\n" + E5Table(rows).Render())
}

// TestE6NoLoss: the diverter loses nothing across a switchover.
func TestE6NoLoss(t *testing.T) {
	res, err := RunE6(40, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d messages", res.Lost)
	}
	if res.OrderViolations != 0 {
		t.Errorf("%d order violations", res.OrderViolations)
	}
	if res.Delivered != res.Sent {
		t.Errorf("delivered %d of %d", res.Delivered, res.Sent)
	}
	t.Log("\n" + E6Table(res).Render())
}

// TestE7Shape: detection latency tracks the timeout; clean networks
// produce no false positives.
func TestE7Shape(t *testing.T) {
	rows, err := RunE7([]time.Duration{5 * time.Millisecond, 20 * time.Millisecond},
		[]int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FalsePositives != 0 {
			t.Errorf("interval %dms: %d false positives on a clean network",
				r.IntervalMs, r.FalsePositives)
		}
		// Detection should land within [timeout, timeout + slack].
		if r.MeanDetectMs < float64(r.TimeoutMs)*0.5 ||
			r.MeanDetectMs > float64(r.TimeoutMs)*3 {
			t.Errorf("interval %dms: mean detect %.1fms vs timeout %dms",
				r.IntervalMs, r.MeanDetectMs, r.TimeoutMs)
		}
	}
	// Larger timeout => larger detection latency.
	if rows[0].MeanDetectMs >= rows[len(rows)-1].MeanDetectMs {
		t.Errorf("detection latency should grow with timeout: %+v", rows)
	}
	t.Log("\n" + E7Table(rows).Render())
}

// TestE7Histograms: the engine-telemetry recovery distributions carry one
// sample per node-kill trial and order sanely (detection <= p95 bound,
// switchover non-empty).
func TestE7Histograms(t *testing.T) {
	const trials = 2
	h, err := RunE7Histograms(trials, 700)
	if err != nil {
		t.Fatal(err)
	}
	if h.Detect.Count != trials || h.Switchover.Count != trials {
		t.Fatalf("sample counts: detect=%d switchover=%d, want %d each",
			h.Detect.Count, h.Switchover.Count, trials)
	}
	if h.Detect.Mean() <= 0 {
		t.Errorf("detection latency mean %.1fµs should be positive", h.Detect.Mean())
	}
	t.Log("\n" + E7HistogramTable(h).Render())
}

// TestE8Shape: DCOM costs more than COM and fails detectably.
func TestE8Shape(t *testing.T) {
	res, err := RunE8(300)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteNsPerCall <= res.LocalNsPerCall {
		t.Errorf("remote (%d ns) should exceed local (%d ns)",
			res.RemoteNsPerCall, res.LocalNsPerCall)
	}
	if !res.PoisonedFastFail {
		t.Error("poisoned proxy should fail fast")
	}
	t.Log("\n" + E8Table(res).Render())
}

func itoa(v int) string { return strconv.Itoa(v) }

// TestA1Shape: dual network eliminates false switchovers on one-segment loss.
func TestA1Shape(t *testing.T) {
	rows, err := RunA1(4)
	if err != nil {
		t.Fatal(err)
	}
	var single, dual *A1Row
	for i := range rows {
		if rows[i].Networks == 1 {
			single = &rows[i]
		} else {
			dual = &rows[i]
		}
	}
	if single == nil || dual == nil {
		t.Fatalf("rows: %+v", rows)
	}
	if dual.FalseSwitchover != 0 {
		t.Errorf("dual network had %d false switchovers", dual.FalseSwitchover)
	}
	if single.FalseSwitchover == 0 {
		t.Errorf("single network should suffer false switchovers under segment loss")
	}
	t.Log("\n" + A1Table(rows).Render())
}

// TestA2Shape: restart-first stays local; switchover-always flips roles.
func TestA2Shape(t *testing.T) {
	rows, err := RunA2(40)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]A2Row{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	rf := byPolicy["restart-first"]
	sa := byPolicy["switchover-always"]
	if !rf.StayedLocal {
		t.Error("restart-first should recover in place")
	}
	if sa.StayedLocal {
		t.Error("switchover-always should move to the backup")
	}
	if !rf.StateKept || !sa.StateKept {
		t.Errorf("state lost: rf=%v sa=%v", rf.StateKept, sa.StateKept)
	}
	if sa.Switchovers == 0 {
		t.Error("switchover-always recorded no switchover")
	}
	t.Log("\n" + A2Table(rows).Render())
}

// TestA3Shape: lost work is bounded by the checkpoint period.
func TestA3Shape(t *testing.T) {
	rows, err := RunA3([]time.Duration{10 * time.Millisecond, 80 * time.Millisecond}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.LossBoundOK {
			t.Errorf("period %dms lost %d ticks, beyond the bound", r.PeriodMs, r.LostTicks)
		}
	}
	t.Log("\n" + A3Table(rows).Render())
}

// TestE7FalsePositiveCrossover: at extreme datagram loss the timeout
// multiplier can no longer absorb consecutive losses, and false positives
// appear — the crossover the E7 note claims.
func TestE7FalsePositiveCrossover(t *testing.T) {
	// 80% loss, timeout = 5 intervals: P(5 consecutive losses) = 0.8^5 ≈ 33%
	// per window; over a 10-timeout grace period a false positive is nearly
	// certain on some trial.
	rows, err := RunE7([]time.Duration{5 * time.Millisecond}, []int{80}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].FalsePositives == 0 {
		t.Errorf("expected false positives at 80%% loss: %+v", rows[0])
	}
	t.Log("\n" + E7Table(rows).Render())
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/checkpoint"
)

// E4Row is one checkpoint-mode measurement.
type E4Row struct {
	StateBytes   int
	DirtyPercent int
	Mode         string
	CaptureNs    int64 // mean capture time
	WireBytes    int   // snapshot payload size
}

// RunE4 reproduces the Section 2.2.2 claim (via refs [10, 11]) that
// user-directed (selective) and incremental checkpointing beat full-state
// copies: it measures capture cost and wire bytes for each mode across
// state sizes and dirty fractions.
//
// Expected shape: full cost grows linearly with state size regardless of
// change rate; selective tracks only the designated subset; incremental
// tracks the dirty fraction.
func RunE4(sizes []int, dirtyPercents []int, iters int) ([]E4Row, error) {
	if len(sizes) == 0 {
		sizes = []int{1 << 10, 16 << 10, 256 << 10, 1 << 20}
	}
	if len(dirtyPercents) == 0 {
		dirtyPercents = []int{1, 10, 100}
	}
	if iters <= 0 {
		iters = 20
	}
	rng := rand.New(rand.NewSource(4))
	var rows []E4Row

	for _, size := range sizes {
		for _, dirty := range dirtyPercents {
			// State: 16 regions of size/16 bytes each; "dirty%" of regions
			// change between captures. One small "hot" region is the
			// SelSave designation (the user knows what matters).
			const regions = 16
			regionSize := size / regions
			reg := checkpoint.NewRegistry()
			state := make([][]byte, regions)
			for i := range state {
				state[i] = make([]byte, regionSize)
				rng.Read(state[i])
				if err := reg.Register(fmt.Sprintf("r%02d", i), &state[i]); err != nil {
					return nil, err
				}
			}
			hot := int64(0)
			if err := reg.Register("hot", &hot); err != nil {
				return nil, err
			}
			if err := reg.Select("hot"); err != nil {
				return nil, err
			}
			dirtyRegions := regions * dirty / 100
			if dirtyRegions == 0 {
				dirtyRegions = 1
			}

			mutate := func() {
				hot++
				for i := 0; i < dirtyRegions; i++ {
					idx := rng.Intn(regions)
					state[idx][rng.Intn(regionSize)] ^= 0xFF
				}
			}

			type capture func() (*checkpoint.Snapshot, error)
			modes := []struct {
				name string
				fn   capture
			}{
				{"full", reg.CaptureFull},
				{"selective", reg.CaptureSelective},
				{"incremental", reg.CaptureIncremental},
			}
			// Prime incremental with a base.
			if _, err := reg.CaptureIncremental(); err != nil {
				return nil, err
			}

			for _, mode := range modes {
				var total time.Duration
				bytes := 0
				for i := 0; i < iters; i++ {
					mutate()
					start := time.Now()
					snap, err := mode.fn()
					if err != nil {
						return nil, err
					}
					total += time.Since(start)
					bytes = snap.Bytes()
				}
				rows = append(rows, E4Row{
					StateBytes:   size,
					DirtyPercent: dirty,
					Mode:         mode.name,
					CaptureNs:    total.Nanoseconds() / int64(iters),
					WireBytes:    bytes,
				})
			}
		}
	}
	return rows, nil
}

// E4Table formats E4 results.
func E4Table(rows []E4Row) *Table {
	t := &Table{
		Title:   "E4: checkpoint mode cost (Section 2.2.2; refs [10,11] claim)",
		Columns: []string{"state", "dirty%", "mode", "capture_us", "wire_bytes"},
		Notes: []string{
			"expected shape: selective << full always; incremental tracks dirty fraction",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dKiB", r.StateBytes/1024),
			fmt.Sprintf("%d", r.DirtyPercent),
			r.Mode,
			f1(float64(r.CaptureNs) / 1e3),
			fmt.Sprintf("%d", r.WireBytes),
		})
	}
	return t
}

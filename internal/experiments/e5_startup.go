package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/netsim"
)

// E5Row is one startup-policy measurement.
type E5Row struct {
	Retries        int
	Trials         int
	PairFormed     int // both roles settled, exactly one primary
	FalseShutdowns int // a node shut itself down despite a healthy peer booting
}

// RunE5 reproduces Section 3.2: under non-deterministic startup skew, the
// original logic (no retries before self-shutdown) frequently shuts the
// first node down because the second has not booted yet; adding retries
// fixes it. The sweep varies the retry count with boot skew sampled from
// [0, skewMax).
//
// Expected shape: pair-formation rate rises toward 100% as retries grow
// past skewMax/retryInterval; false shutdowns drop to zero.
func RunE5(retryCounts []int, trials int, skewMax time.Duration) ([]E5Row, error) {
	if len(retryCounts) == 0 {
		retryCounts = []int{1, 2, 5, 10}
	}
	if trials <= 0 {
		trials = 20
	}
	if skewMax <= 0 {
		skewMax = 120 * time.Millisecond
	}
	retryInterval := 20 * time.Millisecond
	rng := rand.New(rand.NewSource(5))

	var rows []E5Row
	for _, retries := range retryCounts {
		row := E5Row{Retries: retries, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			formed, falseShutdown := runStartupTrial(rng.Int63(), retries,
				retryInterval, time.Duration(rng.Int63n(int64(skewMax))))
			if formed {
				row.PairFormed++
			}
			if falseShutdown {
				row.FalseShutdowns++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runStartupTrial(seed int64, retries int, retryInterval, skew time.Duration) (formed, falseShutdown bool) {
	net := netsim.New("ethA", seed)
	node1 := cluster.NewNode("node1", seed+1, net)
	node2 := cluster.NewNode("node2", seed+2, net)

	cfg := func(peer string) engine.Config {
		return engine.Config{
			PeerNode:          peer,
			HeartbeatInterval: 5 * time.Millisecond,
			PeerTimeout:       30 * time.Millisecond,
			Startup: engine.StartupPolicy{
				Retries:       retries,
				RetryInterval: retryInterval,
				// The paper's original safety posture: refuse to run alone.
				Alone: engine.AloneShutdown,
			},
		}
	}

	e1 := engine.New(node1, cfg("node2"), nil)
	if err := e1.Start(nil); err != nil {
		return false, false
	}
	defer e1.Stop()

	// The second node boots `skew` later — NT's non-determinism.
	time.Sleep(skew)
	e2 := engine.New(node2, cfg("node1"), nil)
	if err := e2.Start(nil); err != nil {
		return false, false
	}
	defer e2.Stop()

	deadline := time.Now().Add(time.Duration(retries)*retryInterval + 500*time.Millisecond)
	for time.Now().Before(deadline) {
		r1, r2 := e1.Role(), e2.Role()
		if r1 == engine.RoleShutdown || r2 == engine.RoleShutdown {
			return false, true
		}
		onePrimary := (r1 == engine.RolePrimary && r2 == engine.RoleBackup) ||
			(r1 == engine.RoleBackup && r2 == engine.RolePrimary)
		if onePrimary {
			return true, false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false, e1.Role() == engine.RoleShutdown || e2.Role() == engine.RoleShutdown
}

// E5Table formats E5 results.
func E5Table(rows []E5Row) *Table {
	t := &Table{
		Title:   "E5: startup negotiation under boot skew (Section 3.2)",
		Columns: []string{"retries", "trials", "pair_formed", "false_shutdowns", "success%"},
		Notes: []string{
			"retries=1 is the paper's original logic; higher retry counts are the shipped fix",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Trials),
			fmt.Sprintf("%d", r.PairFormed),
			fmt.Sprintf("%d", r.FalseShutdowns),
			f1(100 * float64(r.PairFormed) / float64(r.Trials)),
		})
	}
	return t
}

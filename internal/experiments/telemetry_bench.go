package experiments

import (
	"testing"

	"repro/internal/telemetry"
)

// TelemetryRow is one observability hot-path measurement.
type TelemetryRow struct {
	Op          string
	NsPerOp     int64
	AllocsPerOp int64
}

// RunTelemetry benchmarks the telemetry hot paths the toolkit components
// sit on: instrument record calls (which must stay allocation-free — the
// engine heartbeat sweep and the diverter pump run them per event), span
// filing, and the snapshot/exposition cold paths for scale.
func RunTelemetry() ([]TelemetryRow, error) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("bench_ops_total")
	g := reg.Gauge("bench_depth")
	h := reg.Histogram("bench_latency_us")
	tr := telemetry.NewTracer(8)

	benches := []struct {
		op string
		fn func(b *testing.B)
	}{
		{"counter.Add", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctr.Add(1)
			}
		}},
		{"gauge.Set", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Set(int64(i))
			}
		}},
		{"histogram.Observe", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.Observe(int64(i % 2000))
			}
		}},
		{"tracer.Record(open+close)", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					tr.Record(telemetry.SpanEvent{Node: "n", Component: "c", Phase: telemetry.PhaseDetect})
				} else {
					tr.Record(telemetry.SpanEvent{Node: "n", Component: "c", Phase: telemetry.PhaseRecovered})
				}
			}
		}},
		{"registry.Snapshot", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = reg.Snapshot()
			}
		}},
	}

	var rows []TelemetryRow
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		rows = append(rows, TelemetryRow{
			Op:          bench.op,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return rows, nil
}

// TelemetryTable formats the telemetry hot-path results.
func TelemetryTable(rows []TelemetryRow) *Table {
	t := &Table{
		Title:   "TELEMETRY: observability hot paths",
		Columns: []string{"op", "ns_per_op", "allocs_per_op"},
		Notes: []string{
			"instrument record calls (counter/gauge/histogram) must stay at 0 allocs/op",
			"tracer and snapshot are cold paths: they run per recovery / per scrape, not per event",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Op, i64(r.NsPerOp), i64(r.AllocsPerOp)})
	}
	return t
}

package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/netsim"
)

// E11 measures what connection multiplexing buys on a latency-bearing
// link: N concurrent callers reach one exporter over the simulated fabric
// (1ms one-way latency, the LAN hop of the paper's deployment), comparing
// the pre-mux shape — one connection per caller, one synchronous call in
// flight each — against N callers sharing ONE multiplexed connection with
// a depth-d async window apiece. The sync shape pays a full round trip
// per call per connection; the mux shape hides the latency behind the
// pipeline and merges the frames into batched writes.

// E11Row is one grid cell's measurement.
type E11Row struct {
	Callers  int
	Depth    int
	SyncRate float64 // calls/s, one sync connection per caller
	MuxRate  float64 // calls/s, one shared multiplexed connection
	Speedup  float64
}

// RunE11 runs the caller x depth grid. quick shrinks call counts.
func RunE11(quick bool) ([]E11Row, error) {
	grid := []struct{ c, d int }{{1, 1}, {8, 1}, {8, 8}, {32, 8}}
	perCaller := 400
	if quick {
		perCaller = 120
	}
	var rows []E11Row
	for _, g := range grid {
		syncRate, err := e11Cell(false, g.c, g.d, perCaller)
		if err != nil {
			return nil, err
		}
		muxRate, err := e11Cell(true, g.c, g.d, perCaller)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E11Row{
			Callers:  g.c,
			Depth:    g.d,
			SyncRate: syncRate,
			MuxRate:  muxRate,
			Speedup:  muxRate / syncRate,
		})
	}
	return rows, nil
}

// e11Service is the exported target: echo a small payload.
type e11Service struct{}

func (e11Service) Echo(p []byte) []byte { return p }

// e11Cell measures one configuration's aggregate calls/sec.
func e11Cell(mux bool, callers, depth, perCaller int) (float64, error) {
	n := netsim.New("eth0", 1)
	n.SetLatency(time.Millisecond, 0)
	exp, err := dcom.NewExporter(n, "srv:rpc")
	if err != nil {
		return 0, err
	}
	defer exp.Close()
	oid := com.NewGUID()
	if err := exp.Export(oid, e11Service{}); err != nil {
		return 0, err
	}
	payload := make([]byte, 64)

	var shared *dcom.Client
	if mux {
		shared, err = dcom.Dial(n, "cli:rpc", "srv:rpc")
		if err != nil {
			return 0, err
		}
		defer shared.Close()
		shared.SetWindow(callers * depth)
	}
	clients := make([]*dcom.Client, callers)
	for i := range clients {
		if mux {
			clients[i] = shared
			continue
		}
		cli, err := dcom.Dial(n, netsim.Addr(fmt.Sprintf("cli%d:rpc", i)), "srv:rpc")
		if err != nil {
			return 0, err
		}
		defer cli.Close()
		clients[i] = cli
	}

	ctx := context.Background()
	errs := make(chan error, callers)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(p *dcom.Proxy) {
			defer wg.Done()
			var out []byte
			if !mux {
				for j := 0; j < perCaller; j++ {
					if err := p.Call("Echo", []any{&out}, payload); err != nil {
						errs <- err
						return
					}
				}
				return
			}
			futs := make([]*dcom.Future, 0, depth)
			outs := make([][]byte, depth)
			for j := 0; j < perCaller; j++ {
				if len(futs) == depth {
					if err := futs[0].Wait(ctx); err != nil {
						errs <- err
						return
					}
					futs = futs[1:]
				}
				f, err := p.CallAsync("Echo", []any{&outs[j%depth]}, payload)
				if err != nil {
					errs <- err
					return
				}
				futs = append(futs, f)
			}
			for _, f := range futs {
				if err := f.Wait(ctx); err != nil {
					errs <- err
					return
				}
			}
		}(clients[i].Object(oid))
	}
	wg.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	total := callers * perCaller
	return float64(total) / time.Since(start).Seconds(), nil
}

// E11Table formats E11 results.
func E11Table(rows []E11Row) *Table {
	t := &Table{
		Title:   "E11: DCOM transport, sync-per-connection vs multiplexed+pipelined (1ms link)",
		Columns: []string{"callers", "depth", "sync calls/s", "mux calls/s", "speedup"},
		Notes: []string{
			"sync = one connection per caller, one blocking call in flight (the pre-mux transport)",
			"mux = all callers share one connection; each keeps `depth` async calls in flight",
			"1ms one-way fabric latency: a sync caller is bounded by ~500 calls/s per connection",
			"expected: speedup grows with callers x depth until demux/dispatch saturates",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			i64(int64(r.Callers)), i64(int64(r.Depth)),
			f1(r.SyncRate), f1(r.MuxRate), f2(r.Speedup) + "x",
		})
	}
	return t
}

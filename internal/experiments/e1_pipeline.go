package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/device"
	"repro/internal/netsim"
	"repro/internal/opc"
)

// E1Row is one reference-configuration measurement.
type E1Row struct {
	Topology     string // "1a-remote-monitoring" or "1b-integrated"
	PLCs         int
	Sensors      int
	Updates      int64   // client-observed updates during the window
	UpdatesPerS  float64 // throughput
	MeanLatMs    float64 // sensor-change -> client-observation latency
	P99LatMs     float64
	QualityGoodP float64 // fraction of observed updates with good quality
}

// RunE1 builds both Figure 1 reference configurations and measures the
// field-to-operator data path: sensors -> PLC scan -> field bus poll ->
// OPC server -> (DCOM if remote) -> OPC client group -> observation.
//
// Topology 1(a) "control with remote monitoring" puts the OPC client on a
// separate monitoring PC reached over Ethernet (DCOM); topology 1(b)
// "integrated monitoring and control" co-locates client and server on the
// industrial PC (local COM).
//
// Expected shape: both topologies deliver all sensor data with good
// quality; the remote topology adds wire latency but the same throughput.
func RunE1(window time.Duration) ([]E1Row, error) {
	if window <= 0 {
		window = 500 * time.Millisecond
	}
	var rows []E1Row
	for _, remote := range []bool{false, true} {
		row, err := runPipeline(remote, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runPipeline(remote bool, window time.Duration) (*E1Row, error) {
	const (
		plcCount   = 2
		perPLC     = 4
		scanPeriod = 5 * time.Millisecond
	)
	server := opc.NewServer("Plant.OPC.1")
	var plcs []*device.PLC
	var adapters []*device.OPCAdapter
	var tags []string

	for p := 0; p < plcCount; p++ {
		plc := device.NewPLC(fmt.Sprintf("plc%d", p+1), scanPeriod)
		for sIdx := 0; sIdx < perPLC; sIdx++ {
			name := fmt.Sprintf("sensor%d", sIdx)
			sig := device.Sine{
				Amplitude: 10,
				Period:    time.Duration(50+10*sIdx) * time.Millisecond,
				Offset:    50,
			}
			plc.AttachSensor(device.NewSensor(name, sig, 0.01, int64(p*10+sIdx+1)))
			tags = append(tags, fmt.Sprintf("plc%d.%s", p+1, name))
		}
		bus := device.NewBus(0)
		ad, err := device.NewOPCAdapter(plc, bus, server, scanPeriod)
		if err != nil {
			return nil, err
		}
		plcs = append(plcs, plc)
		adapters = append(adapters, ad)
	}

	var conn opc.Connection = server
	topology := "1b-integrated"
	var cleanup []func()
	if remote {
		topology = "1a-remote-monitoring"
		net := netsim.New("plant-eth", 1)
		net.SetLatency(500*time.Microsecond, 200*time.Microsecond)
		exp, err := dcom.NewExporter(net, "industrialpc:opc")
		if err != nil {
			return nil, err
		}
		cleanup = append(cleanup, exp.Close)
		oid := com.NewGUID()
		if err := opc.ExportServer(exp, oid, server); err != nil {
			exp.Close()
			return nil, err
		}
		cli, err := dcom.Dial(net, "monitorpc:opc", "industrialpc:opc")
		if err != nil {
			exp.Close()
			return nil, err
		}
		cleanup = append(cleanup, cli.Close)
		conn = opc.NewRemoteConnection(cli, oid)
	}

	client := opc.NewClient(conn)
	var mu sync.Mutex
	var updates int64
	var good int64
	var latencies []time.Duration
	_, err := client.Subscribe(context.Background(), opc.SubscriptionConfig{
		Name:       "operator",
		UpdateRate: scanPeriod,
		Tags:       tags,
		OnChange: func(batch []opc.ItemState) {
			now := time.Now()
			mu.Lock()
			for _, u := range batch {
				updates++
				if u.Quality.IsGood() {
					good++
					latencies = append(latencies, now.Sub(u.Timestamp))
				}
			}
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}

	for _, plc := range plcs {
		plc.Start()
	}
	for _, ad := range adapters {
		ad.Start()
	}
	time.Sleep(window)
	client.Close()
	for _, ad := range adapters {
		ad.Stop()
	}
	for _, plc := range plcs {
		plc.Stop()
	}
	for _, fn := range cleanup {
		fn()
	}

	mu.Lock()
	defer mu.Unlock()
	row := &E1Row{
		Topology:    topology,
		PLCs:        plcCount,
		Sensors:     plcCount * perPLC,
		Updates:     updates,
		UpdatesPerS: float64(updates) / window.Seconds(),
	}
	if updates > 0 {
		row.QualityGoodP = float64(good) / float64(updates)
	}
	if len(latencies) > 0 {
		var total time.Duration
		maxIdx := 0
		sorted := append([]time.Duration(nil), latencies...)
		for i := range sorted {
			total += sorted[i]
			if sorted[i] > sorted[maxIdx] {
				maxIdx = i
			}
		}
		// simple insertion-ish percentile: sort
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		row.MeanLatMs = float64(total.Microseconds()) / float64(len(sorted)) / 1000
		row.P99LatMs = float64(sorted[len(sorted)*99/100].Microseconds()) / 1000
	}
	return row, nil
}

// E1Table formats E1 results.
func E1Table(rows []E1Row) *Table {
	t := &Table{
		Title:   "E1: Figure 1 reference configurations — field-to-operator data path",
		Columns: []string{"topology", "plcs", "sensors", "updates", "upd/s", "mean_lat_ms", "p99_lat_ms", "good_quality"},
		Notes: []string{
			"1a adds DCOM wire latency; throughput and quality match 1b",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Topology,
			fmt.Sprintf("%d", r.PLCs),
			fmt.Sprintf("%d", r.Sensors),
			i64(r.Updates),
			f1(r.UpdatesPerS),
			f2(r.MeanLatMs),
			f2(r.P99LatMs),
			f2(r.QualityGoodP),
		})
	}
	return t
}

// NDR codec-plan microbenchmark: measures the serialization layer every
// other experiment rides (DCOM frames in E8, checkpoints in E4, diverter
// messages in E6) in isolation, with allocation counts. Introduced
// alongside the compiled codec plans so regressions in the hot path show
// up in the standard bench output, not just in `go test -bench`.

package experiments

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ndr"
)

// NDRRow is one codec shape's measurement.
type NDRRow struct {
	Shape       string
	Bytes       int
	MarshalNs   int64
	MarshalAllc int64
	ToNs        int64 // MarshalTo into a reused buffer
	ToAllc      int64
	UnmarshalNs int64
	UnmarshAllc int64
}

type ndrShape struct {
	name  string
	value any
	dst   func() any
}

type ndrBenchStruct struct {
	ID     uint64
	Method string
	Args   [][]byte
	Tags   []string
	Scores map[string]float64
	When   time.Time
	Gap    time.Duration
}

func ndrShapes() []ndrShape {
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i)
	}
	return []ndrShape{
		{"scalar int64", int64(987654321), func() any { return new(int64) }},
		{"nested struct", ndrBenchStruct{
			ID:     42,
			Method: "Read",
			Args:   [][]byte{{1, 2, 3}, {4, 5}},
			Tags:   []string{"opc", "ftim"},
			Scores: map[string]float64{"latency": 1.5, "rate": 250},
			When:   time.Unix(961936200, 123456789).UTC(),
			Gap:    40 * time.Millisecond,
		}, func() any { return new(ndrBenchStruct) }},
		{"region map", map[string][]byte{
			"counters": {1, 2, 3, 4}, "state": {5, 6, 7, 8, 9}, "alarms": {},
		}, func() any { return new(map[string][]byte) }},
		{"64 KiB bytes", big, func() any { return new([]byte) }},
	}
}

// RunNDR benchmarks Marshal, MarshalTo (reused buffer), and Unmarshal over
// the representative wire shapes.
func RunNDR() ([]NDRRow, error) {
	shapes := ndrShapes()
	rows := make([]NDRRow, 0, len(shapes))
	for _, s := range shapes {
		frame, err := ndr.Marshal(s.value)
		if err != nil {
			return nil, fmt.Errorf("ndr bench %q: %w", s.name, err)
		}
		row := NDRRow{Shape: s.name, Bytes: len(frame)}

		m := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ndr.Marshal(s.value); err != nil {
					b.Fatal(err)
				}
			}
		})
		row.MarshalNs = int64(m.NsPerOp())
		row.MarshalAllc = m.AllocsPerOp()

		to := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var buf []byte
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = ndr.MarshalTo(buf[:0], s.value)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		row.ToNs = int64(to.NsPerOp())
		row.ToAllc = to.AllocsPerOp()

		u := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := ndr.Unmarshal(frame, s.dst()); err != nil {
					b.Fatal(err)
				}
			}
		})
		row.UnmarshalNs = int64(u.NsPerOp())
		row.UnmarshAllc = u.AllocsPerOp()

		rows = append(rows, row)
	}
	return rows, nil
}

// NDRTable formats codec benchmark rows.
func NDRTable(rows []NDRRow) *Table {
	t := &Table{
		Title: "NDR: compiled codec plans (serialization hot path)",
		Columns: []string{"shape", "bytes", "marshal ns", "allocs",
			"marshalTo ns", "allocs", "unmarshal ns", "allocs"},
		Notes: []string{
			"MarshalTo appends into a reused buffer: steady-state encode allocations drop to the value's own pointers",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Shape, fmt.Sprintf("%d", r.Bytes),
			i64(r.MarshalNs), i64(r.MarshalAllc),
			i64(r.ToNs), i64(r.ToAllc),
			i64(r.UnmarshalNs), i64(r.UnmarshAllc),
		})
	}
	return t
}

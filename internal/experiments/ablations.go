package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ftim"
)

// --- A1: dual vs. single network ------------------------------------------

// A1Row measures switchover behaviour under single-segment loss.
type A1Row struct {
	Networks        int
	Trials          int
	FalseSwitchover int // switchover despite the pair being healthy
}

// RunA1 ablates the dual-Ethernet option of Figure 1: with one network, a
// segment partition between the engines looks identical to a dead peer and
// forces a (false) switchover plus a split-brain resolution on heal; with
// two networks, heartbeats keep flowing on the surviving segment.
func RunA1(trials int) ([]A1Row, error) {
	if trials <= 0 {
		trials = 8
	}
	var rows []A1Row
	for _, dual := range []bool{false, true} {
		row := A1Row{Networks: 1, Trials: trials}
		if dual {
			row.Networks = 2
		}
		for trial := 0; trial < trials; trial++ {
			false1, err := a1Trial(int64(trial+1), dual)
			if err != nil {
				return nil, err
			}
			if false1 {
				row.FalseSwitchover++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func a1Trial(seed int64, dual bool) (falseSwitchover bool, err error) {
	// Generous heartbeat margins so the measurement is about network
	// redundancy, not scheduler jitter (the suite may run under heavy
	// parallel load).
	d, err := core.New(core.Config{
		Seed:              seed,
		DualNetwork:       dual,
		HeartbeatInterval: 10 * time.Millisecond,
		PeerTimeout:       80 * time.Millisecond,
	})
	if err != nil {
		return false, err
	}
	defer d.Shutdown(context.Background())
	if err := waitRoles(d, 3*time.Second); err != nil {
		return false, err
	}
	primary := d.Primary().Node.Name()

	// Partition the engines' heartbeat path on segment A only.
	d.Nets[0].Partition("node1:engine-hb", "node2:engine-hb")
	// Give detection several timeouts to react (or not).
	time.Sleep(350 * time.Millisecond)
	p := d.Primary()
	switched := p == nil || p.Node.Name() != primary ||
		d.Replica("node1").Engine.Switchovers()+d.Replica("node2").Engine.Switchovers() > 1
	d.Nets[0].HealAll()
	return switched, nil
}

// A1Table formats A1 results.
func A1Table(rows []A1Row) *Table {
	t := &Table{
		Title:   "A1 (ablation): single vs dual Ethernet under one-segment loss",
		Columns: []string{"networks", "trials", "false_switchovers"},
		Notes: []string{
			"dual-network pairs ride out a single segment partition; single-network pairs cannot tell it from node death",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Networks),
			fmt.Sprintf("%d", r.Trials),
			fmt.Sprintf("%d", r.FalseSwitchover),
		})
	}
	return t
}

// --- A2: recovery rule ----------------------------------------------------

// A2Row measures one recovery-rule policy against a transient fault.
type A2Row struct {
	Policy       string
	RecoveryMs   float64
	StayedLocal  bool
	StateKept    bool
	Switchovers  int
	RestartsUsed bool
}

// a2App is a counter app whose process can die transiently.
type a2App struct {
	mu    sync.Mutex
	f     *ftim.ClientFTIM
	state struct{ N int64 }
}

func (a *a2App) Setup(f *ftim.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	return f.RegisterState("n", &a.state)
}
func (a *a2App) Activate(bool) {}
func (a *a2App) Deactivate()   {}
func (a *a2App) Stop()         {}

// RunA2 ablates the recovery rule (Section 2.2.1): the same transient
// application fault handled by (i) restart-first (the transient-fault
// provision) and (ii) switchover-always (treat everything as permanent).
// Restart-first keeps the work on the healthy primary node; switchover-
// always burns a role flip on every glitch.
func RunA2(seed int64) ([]A2Row, error) {
	policies := []struct {
		name string
		rule engine.RecoveryRule
	}{
		{"restart-first", engine.RecoveryRule{MaxLocalRestarts: 3, Exhausted: engine.ExhaustSwitchover}},
		{"switchover-always", engine.RecoveryRule{MaxLocalRestarts: 0, Exhausted: engine.ExhaustSwitchover}},
	}
	var rows []A2Row
	for i, p := range policies {
		row, err := a2Trial(seed+int64(i), p.name, p.rule)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func a2Trial(seed int64, name string, rule engine.RecoveryRule) (*A2Row, error) {
	apps := map[string]*a2App{}
	var mu sync.Mutex
	d, err := core.New(core.Config{
		Seed: seed,
		Rule: rule,
		NewApp: func(node string) core.ReplicatedApp {
			a := &a2App{}
			mu.Lock()
			apps[node] = a
			mu.Unlock()
			return a
		},
	})
	if err != nil {
		return nil, err
	}
	defer d.Shutdown(context.Background())
	if err := waitRoles(d, 3*time.Second); err != nil {
		return nil, err
	}
	primary := d.Primary().Node.Name()
	mu.Lock()
	app := apps[primary]
	mu.Unlock()
	app.f.WithLock(func() { app.state.N = 777 })
	if err := app.f.Save(); err != nil {
		return nil, err
	}

	startSwitch := d.Replica("node1").Engine.Switchovers() +
		d.Replica("node2").Engine.Switchovers()
	start := time.Now()
	if err := d.KillApp(primary); err != nil {
		return nil, err
	}
	// Recovered: some copy live with the state intact.
	var live *core.Replica
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if p := d.Primary(); p != nil && p.AppActive() {
			live = p
			break
		}
		time.Sleep(time.Millisecond)
	}
	if live == nil {
		return nil, fmt.Errorf("%s: no recovery", name)
	}
	elapsed := time.Since(start)

	row := &A2Row{
		Policy:      name,
		RecoveryMs:  float64(elapsed.Microseconds()) / 1000,
		StayedLocal: live.Node.Name() == primary,
	}
	row.Switchovers = d.Replica("node1").Engine.Switchovers() +
		d.Replica("node2").Engine.Switchovers() - startSwitch
	row.RestartsUsed = row.StayedLocal

	// Verify the state followed the recovery.
	stateOK := false
	waitDeadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(waitDeadline) {
		mu.Lock()
		var liveApp *a2App
		for node, a := range apps {
			if node == live.Node.Name() && a.f != nil {
				liveApp = a
			}
		}
		// After a local restart the app instance is rebuilt: re-look it up
		// through the replica.
		mu.Unlock()
		if liveApp == nil {
			if ra, ok := replicaApp(live); ok {
				liveApp = ra
			}
		}
		if liveApp != nil {
			var n int64
			liveApp.f.WithLock(func() { n = liveApp.state.N })
			if n == 777 {
				stateOK = true
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	row.StateKept = stateOK
	return row, nil
}

// replicaApp digs the live a2App out of a replica (after a rebuild).
func replicaApp(r *core.Replica) (*a2App, bool) {
	app, ok := r.CurrentApp().(*a2App)
	return app, ok
}

// A2Table formats A2 results.
func A2Table(rows []A2Row) *Table {
	t := &Table{
		Title:   "A2 (ablation): recovery rule on a transient application fault",
		Columns: []string{"policy", "recovery_ms", "stayed_local", "state_kept", "switchovers"},
		Notes: []string{
			"restart-first recovers in place (transient-fault provision); switchover-always flips roles on every glitch",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Policy,
			f1(r.RecoveryMs),
			fmt.Sprintf("%v", r.StayedLocal),
			fmt.Sprintf("%v", r.StateKept),
			fmt.Sprintf("%d", r.Switchovers),
		})
	}
	return t
}

// --- A3: checkpoint period vs. lost work -----------------------------------

// A3Row measures the work-loss window for one checkpoint period.
type A3Row struct {
	PeriodMs     int
	TicksBefore  int64
	TicksAfter   int64
	LostTicks    int64
	LossBoundOK  bool // loss <= ticks producible in one period (+slack)
	TickPeriodMs float64
}

// a3App ticks a counter continuously while active.
type a3App struct {
	mu   sync.Mutex
	f    *ftim.ClientFTIM
	tick time.Duration

	state struct{ Ticks int64 }
	stop  chan struct{}
	done  chan struct{}
}

func (a *a3App) Setup(f *ftim.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	return f.RegisterState("ticks", &a.state)
}

func (a *a3App) Activate(bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(a.tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				a.f.WithLock(func() { a.state.Ticks++ })
			case <-stop:
				return
			}
		}
	}(a.stop, a.done)
}

func (a *a3App) Deactivate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil {
		close(a.stop)
		<-a.done
		a.stop = nil
	}
}
func (a *a3App) Stop() { a.Deactivate() }

func (a *a3App) ticks() int64 {
	a.mu.Lock()
	f := a.f
	a.mu.Unlock()
	var v int64
	f.WithLock(func() { v = a.state.Ticks })
	return v
}

// RunA3 sweeps the checkpoint period and measures how much work (counter
// ticks) a node-failure failover loses: the paper's design trades
// checkpoint overhead against the lost-work window.
//
// Expected shape: lost work is bounded by one checkpoint period's worth of
// ticks (plus detection-window slack) and grows with the period.
func RunA3(periods []time.Duration, seed int64) ([]A3Row, error) {
	if len(periods) == 0 {
		periods = []time.Duration{10 * time.Millisecond, 40 * time.Millisecond,
			160 * time.Millisecond}
	}
	const tick = 2 * time.Millisecond
	var rows []A3Row
	for i, period := range periods {
		apps := map[string]*a3App{}
		var mu sync.Mutex
		d, err := core.New(core.Config{
			Seed:             seed + int64(i),
			CheckpointPeriod: period,
			NewApp: func(node string) core.ReplicatedApp {
				a := &a3App{tick: tick}
				mu.Lock()
				apps[node] = a
				mu.Unlock()
				return a
			},
		})
		if err != nil {
			return nil, err
		}
		if err := waitRoles(d, 3*time.Second); err != nil {
			_ = d.Shutdown(context.Background())
			return nil, err
		}
		primary := d.Primary().Node.Name()
		mu.Lock()
		pApp := apps[primary]
		mu.Unlock()

		// Let it run for several periods, then kill the node mid-period.
		time.Sleep(4*period + 50*time.Millisecond)
		before := pApp.ticks()
		_ = d.KillNode(primary)

		var after int64 = -1
		deadline := time.Now().Add(8 * time.Second)
		for time.Now().Before(deadline) {
			if p := d.Primary(); p != nil && p.Node.Name() != primary && p.AppActive() {
				mu.Lock()
				after = apps[p.Node.Name()].ticks()
				mu.Unlock()
				break
			}
			time.Sleep(time.Millisecond)
		}
		_ = d.Shutdown(context.Background())
		if after < 0 {
			return nil, fmt.Errorf("period %v: no takeover", period)
		}
		lost := before - after
		if lost < 0 {
			lost = 0
		}
		// Bound: one checkpoint period of ticks + generous slack for the
		// detection window and scheduler noise.
		bound := int64(period/tick) + int64((100*time.Millisecond)/tick)
		rows = append(rows, A3Row{
			PeriodMs:     int(period / time.Millisecond),
			TicksBefore:  before,
			TicksAfter:   after,
			LostTicks:    lost,
			LossBoundOK:  lost <= bound,
			TickPeriodMs: float64(tick) / float64(time.Millisecond),
		})
	}
	return rows, nil
}

// A3Table formats A3 results.
func A3Table(rows []A3Row) *Table {
	t := &Table{
		Title:   "A3 (ablation): checkpoint period vs lost work at failover",
		Columns: []string{"ckpt_period_ms", "ticks_before", "ticks_after", "lost_ticks", "within_bound"},
		Notes: []string{
			"lost work is bounded by one checkpoint period (+ detection window); OFTTSave shrinks it to ~0 for event-critical state",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.PeriodMs),
			i64(r.TicksBefore),
			i64(r.TicksAfter),
			i64(r.LostTicks),
			fmt.Sprintf("%v", r.LossBoundOK),
		})
	}
	return t
}

package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// E7Row is one failure-detection measurement.
type E7Row struct {
	IntervalMs     int
	TimeoutMs      int
	LossPercent    int
	Trials         int
	MeanDetectMs   float64
	MaxDetectMs    float64
	FalsePositives int
}

// RunE7 measures the failure detector (Section 2.2.1): detection latency
// after a component goes silent, as a function of heartbeat interval and
// timeout, and the false-positive rate under datagram loss.
//
// Expected shape: detection latency ~ timeout + sweep granularity; false
// positives appear only when loss is high enough that `timeout/interval`
// consecutive datagrams are plausibly lost.
func RunE7(intervals []time.Duration, lossPercents []int, trials int) ([]E7Row, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{5 * time.Millisecond, 10 * time.Millisecond,
			20 * time.Millisecond, 50 * time.Millisecond}
	}
	if len(lossPercents) == 0 {
		lossPercents = []int{0, 10, 30}
	}
	if trials <= 0 {
		trials = 5
	}

	var rows []E7Row
	for _, interval := range intervals {
		timeout := 5 * interval
		for _, loss := range lossPercents {
			row := E7Row{
				IntervalMs:  int(interval / time.Millisecond),
				TimeoutMs:   int(timeout / time.Millisecond),
				LossPercent: loss,
				Trials:      trials,
			}
			var total, maxD time.Duration
			for trial := 0; trial < trials; trial++ {
				detect, falsePos, err := detectionTrial(int64(trial+1), interval, timeout,
					float64(loss)/100)
				if err != nil {
					return nil, err
				}
				if falsePos {
					row.FalsePositives++
					continue
				}
				total += detect
				if detect > maxD {
					maxD = detect
				}
			}
			measured := trials - row.FalsePositives
			if measured > 0 {
				row.MeanDetectMs = float64(total.Microseconds()) / float64(measured) / 1000
				row.MaxDetectMs = float64(maxD.Microseconds()) / 1000
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// detectionTrial runs one emitter/monitor pair over a lossy fabric, lets
// it run healthy for a grace period (false positives counted), then kills
// the emitter and times detection.
func detectionTrial(seed int64, interval, timeout time.Duration, loss float64) (time.Duration, bool, error) {
	net := netsim.New("eth", seed)
	net.SetLoss(loss)
	rx, err := net.ListenDatagram("mon:hb")
	if err != nil {
		return 0, false, err
	}
	defer rx.Close()
	tx, err := net.ListenDatagram("app:hb")
	if err != nil {
		return 0, false, err
	}
	defer tx.Close()

	mon := heartbeat.NewMonitor(interval / 2)
	var mu sync.Mutex
	var failedAt time.Time
	mon.Watch("app", timeout, func(string, time.Time) {
		mu.Lock()
		if failedAt.IsZero() {
			failedAt = time.Now()
		}
		mu.Unlock()
	})
	mon.Start()
	defer mon.Stop()

	em := heartbeat.NewEmitter("app", interval, func(b heartbeat.Beat) {
		data, err := b.Encode()
		if err != nil {
			return
		}
		_ = tx.Send("mon:hb", data)
	})
	em.Start()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			d, err := rx.RecvTimeout(100 * time.Millisecond)
			if err != nil {
				if err == netsim.ErrClosed {
					return
				}
				select {
				case <-done:
					return
				default:
					continue
				}
			}
			if b, err := heartbeat.DecodeBeat(d.Payload); err == nil {
				mon.Observe(b)
			}
		}
	}()

	// Healthy grace period of 10 timeouts: any failure here is false.
	grace := 10 * timeout
	time.Sleep(grace)
	mu.Lock()
	falsePositive := !failedAt.IsZero()
	mu.Unlock()
	if falsePositive {
		em.Stop()
		rx.Close()
		<-done
		return 0, true, nil
	}

	// Kill the component.
	em.Stop()
	killedAt := time.Now()
	deadline := time.Now().Add(timeout*4 + 500*time.Millisecond)
	for time.Now().Before(deadline) {
		mu.Lock()
		at := failedAt
		mu.Unlock()
		if !at.IsZero() {
			rx.Close()
			<-done
			return at.Sub(killedAt), false, nil
		}
		time.Sleep(time.Millisecond)
	}
	rx.Close()
	<-done
	return 0, false, fmt.Errorf("silence never detected (interval %v)", interval)
}

// E7Histograms are the end-to-end recovery distributions measured by the
// engines' own telemetry across repeated node-kill trials: peer-failure
// detection latency and switchover duration.
type E7Histograms struct {
	Trials     int
	Detect     telemetry.HistogramSnapshot
	Switchover telemetry.HistogramSnapshot
}

// RunE7Histograms runs repeated primary-node kills against full
// deployments and aggregates the surviving engine's detection-latency and
// switchover-duration histograms into one distribution each.
func RunE7Histograms(trials int, seed int64) (*E7Histograms, error) {
	if trials <= 0 {
		trials = 5
	}
	agg := telemetry.NewRegistry()
	for trial := 0; trial < trials; trial++ {
		if err := switchoverTrial(seed+int64(trial)*100, agg); err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
	}
	snap := agg.Snapshot()
	out := &E7Histograms{Trials: trials}
	var ok bool
	if out.Detect, ok = snap.FindHistogram("e7_detect_us"); !ok {
		return nil, fmt.Errorf("no detection samples collected")
	}
	if out.Switchover, ok = snap.FindHistogram("e7_switchover_us"); !ok {
		return nil, fmt.Errorf("no switchover samples collected")
	}
	return out, nil
}

// switchoverTrial kills the primary of a fresh engines-only pair and
// folds the survivor's recovery histograms into agg.
func switchoverTrial(seed int64, agg *telemetry.Registry) error {
	d, err := core.New(core.Config{Seed: seed})
	if err != nil {
		return err
	}
	defer d.Shutdown(context.Background())
	if err := waitRoles(d, 5*time.Second); err != nil {
		return err
	}
	victim := d.Primary().Node.Name()
	if err := d.KillNode(victim); err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if p := d.Primary(); p != nil && p.Node.Name() != victim {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no takeover after killing %s", victim)
		}
		time.Sleep(time.Millisecond)
	}
	survivor := d.Primary().Node.Name()

	snap := d.Telemetry.Metrics().Snapshot()
	for alias, name := range map[string]string{
		"e7_detect_us":     `oftt_engine_peer_detect_us{node="` + survivor + `"}`,
		"e7_switchover_us": `oftt_engine_switchover_us{node="` + survivor + `"}`,
	} {
		h, ok := snap.FindHistogram(name)
		if !ok {
			return fmt.Errorf("survivor %s has no %s", survivor, name)
		}
		// A fresh deployment per trial makes the snapshot its own delta.
		agg.Apply(telemetry.MetricBatch{Histograms: []telemetry.HistogramDelta{{
			Name:   alias,
			Bounds: h.Bounds,
			Counts: h.Counts,
			Sum:    h.Sum,
			Count:  h.Count,
		}}})
	}
	return nil
}

// E7HistogramTable formats the recovery distributions.
func E7HistogramTable(h *E7Histograms) *Table {
	row := func(name string, s telemetry.HistogramSnapshot) []string {
		return []string{
			name,
			fmt.Sprintf("%d", s.Count),
			f2(s.Quantile(0.50) / 1000),
			f2(s.Quantile(0.95) / 1000),
			f2(s.Mean() / 1000),
			f2(float64(s.Max()) / 1000),
		}
	}
	return &Table{
		Title:   "E7b: recovery distributions from engine telemetry (node-kill trials)",
		Columns: []string{"metric", "samples", "p50_ms", "p95_ms", "mean_ms", "max_ms"},
		Rows: [][]string{
			row("peer detection latency", h.Detect),
			row("switchover duration", h.Switchover),
		},
		Notes: []string{
			fmt.Sprintf("%d primary-node kills; histograms read from the survivor's oftt_engine_* instruments", h.Trials),
			"detection ~ peer timeout; switchover adds checkpoint restore + activation on top",
		},
	}
}

// E7Table formats E7 results.
func E7Table(rows []E7Row) *Table {
	t := &Table{
		Title:   "E7: failure detection latency and false positives (Section 2.2.1)",
		Columns: []string{"hb_interval_ms", "timeout_ms", "loss%", "mean_detect_ms", "max_detect_ms", "false_pos"},
		Notes: []string{
			"detection latency tracks the configured timeout; loss inflates false positives only at high rates",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.IntervalMs),
			fmt.Sprintf("%d", r.TimeoutMs),
			fmt.Sprintf("%d", r.LossPercent),
			f2(r.MeanDetectMs),
			f2(r.MaxDetectMs),
			fmt.Sprintf("%d/%d", r.FalsePositives, r.Trials),
		})
	}
	return t
}

// Package monitor implements OFTT's System Monitor (Section 2.2.4): it
// displays the status of the components in a process monitoring and
// control system — hardware, operating system, OFTT components, and
// applications. Per the paper it is needed for test, evaluation, and
// maintenance, but the fault tolerance provisions operate without it.
//
// Since the telemetry redesign this package is a rendering view: storage,
// transport (local and DCOM), metrics, and recovery tracing live in
// internal/telemetry behind the unified telemetry.Sink. The old Stub /
// Remote / Sink trio is gone — engines report through telemetry.Hub or
// telemetry.Remote, and this package draws the textual dashboard on top
// of the shared store.
package monitor

import (
	"fmt"
	"strings"

	"repro/internal/telemetry"
)

// Component kinds (aliases into the telemetry plane, kept for existing
// call sites).
const (
	KindHardware   = telemetry.KindHardware
	KindOS         = telemetry.KindOS
	KindEngine     = telemetry.KindEngine
	KindFTIM       = telemetry.KindFTIM
	KindDiverter   = telemetry.KindDiverter
	KindOPCServer  = telemetry.KindOPCServer
	KindOPCClient  = telemetry.KindOPCClient
	KindApp        = telemetry.KindApp
	KindWatchdog   = telemetry.KindWatchdog
	KindCheckpoint = telemetry.KindCheckpoint
)

// ComponentStatus is one component's reported condition.
type ComponentStatus = telemetry.Status

// Event is one notable occurrence (failure detected, switchover, restart).
type Event = telemetry.Event

// Monitor is the dashboard view over a telemetry status/event store.
type Monitor struct {
	store *telemetry.Store
}

// New returns a monitor over a fresh store retaining up to maxEvents
// events (default 1024). Most callers should prefer FromHub so the
// dashboard shares the deployment's instrumentation plane.
func New(maxEvents int) *Monitor {
	return FromStore(telemetry.NewStore(maxEvents))
}

// FromStore wraps an existing store.
func FromStore(s *telemetry.Store) *Monitor { return &Monitor{store: s} }

// FromHub views a telemetry hub's store.
func FromHub(h *telemetry.Hub) *Monitor { return FromStore(h.Store()) }

// Store exposes the backing store (the monitor holds no state of its own).
func (m *Monitor) Store() *telemetry.Store { return m.store }

// Report updates (or creates) a component's status row.
func (m *Monitor) Report(st ComponentStatus) error {
	m.store.Report(st)
	return nil
}

// RecordEvent appends an event and notifies subscribers.
func (m *Monitor) RecordEvent(e Event) error {
	m.store.RecordEvent(e)
	return nil
}

// Subscribe registers a live event sink; the returned func cancels it.
func (m *Monitor) Subscribe(fn func(Event)) (cancel func()) {
	return m.store.Subscribe(fn)
}

// Statuses returns all rows sorted by node then component.
func (m *Monitor) Statuses() []ComponentStatus { return m.store.Statuses() }

// Status fetches one row.
func (m *Monitor) Status(node, component string) (ComponentStatus, bool) {
	return m.store.Status(node, component)
}

// Events returns the most recent events, newest last, up to limit
// (0 = all retained).
func (m *Monitor) Events(limit int) []Event { return m.store.Events(limit) }

// CountByState counts rows currently in the given state.
func (m *Monitor) CountByState(state string) int { return m.store.CountByState(state) }

// Render draws the text dashboard.
func (m *Monitor) Render() string {
	statuses := m.Statuses()
	events := m.Events(10)

	var b strings.Builder
	b.WriteString("OFTT SYSTEM MONITOR\n")
	b.WriteString("===================\n")
	fmt.Fprintf(&b, "%-10s %-22s %-14s %-10s %s\n", "NODE", "COMPONENT", "KIND", "STATE", "DETAIL")
	for _, st := range statuses {
		fmt.Fprintf(&b, "%-10s %-22s %-14s %-10s %s\n",
			st.Node, st.Component, st.Kind, st.State, st.Detail)
	}
	b.WriteString("\nRECENT EVENTS\n")
	for _, e := range events {
		fmt.Fprintf(&b, "%s  %-10s %-18s %-10s %s\n",
			e.Time.Format("15:04:05.000"), e.Node, e.Component, e.Kind, e.Detail)
	}
	return b.String()
}

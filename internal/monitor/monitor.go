// Package monitor implements OFTT's System Monitor (Section 2.2.4): it
// displays the status of the components in a process monitoring and
// control system — hardware, operating system, OFTT components, and
// applications. Per the paper it is needed for test, evaluation, and
// maintenance, but the fault tolerance provisions operate without it.
//
// Engines report component status over DCOM (the monitor usually runs on
// the separate test-and-interface PC of Figure 3); the monitor renders a
// textual dashboard.
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dcom"
)

// Component kinds.
const (
	KindHardware   = "hardware"
	KindOS         = "os"
	KindEngine     = "oftt-engine"
	KindFTIM       = "oftt-ftim"
	KindDiverter   = "oftt-diverter"
	KindOPCServer  = "opc-server"
	KindOPCClient  = "opc-client"
	KindApp        = "application"
	KindWatchdog   = "watchdog"
	KindCheckpoint = "checkpoint"
)

// ComponentStatus is one component's reported condition.
type ComponentStatus struct {
	Node      string
	Component string
	Kind      string
	State     string // e.g. "PRIMARY", "BACKUP", "RUNNING", "FAILED"
	Detail    string
	UpdatedAt time.Time
}

func (s ComponentStatus) key() string { return s.Node + "/" + s.Component }

// Event is one notable occurrence (failure detected, switchover, restart).
type Event struct {
	Time      time.Time
	Node      string
	Component string
	Kind      string // "failure", "recovery", "switchover", "role", "info"
	Detail    string
}

// Monitor aggregates statuses and events.
type Monitor struct {
	mu        sync.Mutex
	statuses  map[string]ComponentStatus
	events    []Event
	maxEvents int
	subs      map[int]func(Event)
	nextSub   int
}

// New returns an empty monitor retaining up to maxEvents events
// (default 1024).
func New(maxEvents int) *Monitor {
	if maxEvents <= 0 {
		maxEvents = 1024
	}
	return &Monitor{
		statuses:  make(map[string]ComponentStatus),
		maxEvents: maxEvents,
		subs:      make(map[int]func(Event)),
	}
}

// Report updates (or creates) a component's status row.
func (m *Monitor) Report(st ComponentStatus) error {
	if st.UpdatedAt.IsZero() {
		st.UpdatedAt = time.Now()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.statuses[st.key()] = st
	return nil
}

// RecordEvent appends an event, trimming to the retention limit, and
// notifies subscribers.
func (m *Monitor) RecordEvent(e Event) error {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	m.mu.Lock()
	m.events = append(m.events, e)
	if over := len(m.events) - m.maxEvents; over > 0 {
		m.events = append([]Event(nil), m.events[over:]...)
	}
	subs := make([]func(Event), 0, len(m.subs))
	for _, fn := range m.subs {
		subs = append(subs, fn)
	}
	m.mu.Unlock()
	for _, fn := range subs {
		fn(e)
	}
	return nil
}

// Subscribe registers a live event sink; the returned func cancels it.
func (m *Monitor) Subscribe(fn func(Event)) (cancel func()) {
	m.mu.Lock()
	id := m.nextSub
	m.nextSub++
	m.subs[id] = fn
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(m.subs, id)
	}
}

// Statuses returns all rows sorted by node then component.
func (m *Monitor) Statuses() []ComponentStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ComponentStatus, 0, len(m.statuses))
	for _, st := range m.statuses {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// Status fetches one row.
func (m *Monitor) Status(node, component string) (ComponentStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.statuses[node+"/"+component]
	return st, ok
}

// Events returns the most recent events, newest last, up to limit
// (0 = all retained).
func (m *Monitor) Events(limit int) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	evs := m.events
	if limit > 0 && len(evs) > limit {
		evs = evs[len(evs)-limit:]
	}
	return append([]Event(nil), evs...)
}

// CountByState counts rows currently in the given state.
func (m *Monitor) CountByState(state string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.statuses {
		if st.State == state {
			n++
		}
	}
	return n
}

// Render draws the text dashboard.
func (m *Monitor) Render() string {
	statuses := m.Statuses()
	events := m.Events(10)

	var b strings.Builder
	b.WriteString("OFTT SYSTEM MONITOR\n")
	b.WriteString("===================\n")
	fmt.Fprintf(&b, "%-10s %-22s %-14s %-10s %s\n", "NODE", "COMPONENT", "KIND", "STATE", "DETAIL")
	for _, st := range statuses {
		fmt.Fprintf(&b, "%-10s %-22s %-14s %-10s %s\n",
			st.Node, st.Component, st.Kind, st.State, st.Detail)
	}
	b.WriteString("\nRECENT EVENTS\n")
	for _, e := range events {
		fmt.Fprintf(&b, "%s  %-10s %-18s %-10s %s\n",
			e.Time.Format("15:04:05.000"), e.Node, e.Component, e.Kind, e.Detail)
	}
	return b.String()
}

// Stub exposes the monitor over DCOM for remote engines.
type Stub struct {
	m *Monitor
}

// NewStub wraps a monitor for export.
func NewStub(m *Monitor) *Stub { return &Stub{m: m} }

// Report services remote status reports.
func (s *Stub) Report(st ComponentStatus) error { return s.m.Report(st) }

// RecordEvent services remote event reports.
func (s *Stub) RecordEvent(e Event) error { return s.m.RecordEvent(e) }

// Export publishes the monitor on a dcom exporter.
func Export(exp *dcom.Exporter, oid dcom.ObjectID, m *Monitor) error {
	return exp.Export(oid, NewStub(m))
}

// Remote is the engine-side proxy to a monitor on another node. A nil
// Remote is valid and discards reports (fault tolerance must operate
// without the monitor).
type Remote struct {
	proxy *dcom.Proxy
}

// NewRemote wraps a dcom client/OID pair.
func NewRemote(client *dcom.Client, oid dcom.ObjectID) *Remote {
	return &Remote{proxy: client.Object(oid)}
}

// Report forwards a status row; errors are swallowed (monitor is optional).
func (r *Remote) Report(st ComponentStatus) {
	if r == nil || r.proxy == nil {
		return
	}
	_ = r.proxy.Call("Report", nil, st)
}

// RecordEvent forwards an event; errors are swallowed.
func (r *Remote) RecordEvent(e Event) {
	if r == nil || r.proxy == nil {
		return
	}
	_ = r.proxy.Call("RecordEvent", nil, e)
}

// Sink is anything that accepts monitor reports: the local monitor, a
// remote proxy, or nil.
type Sink interface {
	ReportStatus(st ComponentStatus)
	Emit(e Event)
}

// LocalSink adapts *Monitor to Sink.
type LocalSink struct{ M *Monitor }

// ReportStatus implements Sink.
func (s LocalSink) ReportStatus(st ComponentStatus) { _ = s.M.Report(st) }

// Emit implements Sink.
func (s LocalSink) Emit(e Event) { _ = s.M.RecordEvent(e) }

// RemoteSink adapts *Remote to Sink.
type RemoteSink struct{ R *Remote }

// ReportStatus implements Sink.
func (s RemoteSink) ReportStatus(st ComponentStatus) { s.R.Report(st) }

// Emit implements Sink.
func (s RemoteSink) Emit(e Event) { s.R.RecordEvent(e) }

// NullSink discards everything.
type NullSink struct{}

// ReportStatus implements Sink.
func (NullSink) ReportStatus(ComponentStatus) {}

// Emit implements Sink.
func (NullSink) Emit(Event) {}

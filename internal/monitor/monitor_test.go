package monitor

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/netsim"
)

func TestReportAndStatuses(t *testing.T) {
	m := New(0)
	_ = m.Report(ComponentStatus{Node: "node2", Component: "engine", Kind: KindEngine, State: "BACKUP"})
	_ = m.Report(ComponentStatus{Node: "node1", Component: "engine", Kind: KindEngine, State: "PRIMARY"})
	_ = m.Report(ComponentStatus{Node: "node1", Component: "calltrack", Kind: KindApp, State: "RUNNING"})

	rows := m.Statuses()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by node then component.
	if rows[0].Component != "calltrack" || rows[1].Node != "node1" || rows[2].Node != "node2" {
		t.Fatalf("order: %+v", rows)
	}

	// Re-report replaces the row.
	_ = m.Report(ComponentStatus{Node: "node1", Component: "engine", Kind: KindEngine, State: "FAILED"})
	st, ok := m.Status("node1", "engine")
	if !ok || st.State != "FAILED" {
		t.Fatalf("updated row: %+v", st)
	}
	if m.CountByState("FAILED") != 1 {
		t.Fatal("CountByState")
	}
}

func TestEventRetention(t *testing.T) {
	m := New(5)
	for i := 0; i < 12; i++ {
		_ = m.RecordEvent(Event{Kind: "info", Detail: strings.Repeat("x", i)})
	}
	evs := m.Events(0)
	if len(evs) != 5 {
		t.Fatalf("retained %d", len(evs))
	}
	if len(evs[4].Detail) != 11 {
		t.Fatal("retention dropped the wrong end")
	}
	if got := m.Events(2); len(got) != 2 || len(got[1].Detail) != 11 {
		t.Fatalf("limit: %+v", got)
	}
}

func TestSubscribe(t *testing.T) {
	m := New(0)
	var mu sync.Mutex
	var got []Event
	cancel := m.Subscribe(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	_ = m.RecordEvent(Event{Kind: "failure", Node: "node1"})
	mu.Lock()
	if len(got) != 1 || got[0].Kind != "failure" {
		mu.Unlock()
		t.Fatalf("got %+v", got)
	}
	mu.Unlock()
	cancel()
	_ = m.RecordEvent(Event{Kind: "info"})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatal("cancelled subscriber fired")
	}
}

func TestRender(t *testing.T) {
	m := New(0)
	_ = m.Report(ComponentStatus{Node: "node1", Component: "engine", Kind: KindEngine,
		State: "PRIMARY", Detail: "up 5m", UpdatedAt: time.Now()})
	_ = m.RecordEvent(Event{Node: "node1", Component: "app", Kind: "failure", Detail: "heartbeat lost"})
	out := m.Render()
	for _, want := range []string{"OFTT SYSTEM MONITOR", "node1", "engine", "PRIMARY", "heartbeat lost"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRemoteReporting(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, err := dcom.NewExporter(n, "testpc:monitor")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	m := New(0)
	oid := com.NewGUID()
	if err := Export(exp, oid, m); err != nil {
		t.Fatal(err)
	}

	cli, err := dcom.Dial(n, "node1:monitorcli", "testpc:monitor")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	remote := NewRemote(cli, oid)

	remote.Report(ComponentStatus{Node: "node1", Component: "engine", Kind: KindEngine, State: "PRIMARY"})
	remote.RecordEvent(Event{Node: "node1", Kind: "role", Detail: "became primary"})

	st, ok := m.Status("node1", "engine")
	if !ok || st.State != "PRIMARY" {
		t.Fatalf("remote report lost: %+v", st)
	}
	if evs := m.Events(0); len(evs) != 1 || evs[0].Kind != "role" {
		t.Fatalf("remote event lost: %+v", evs)
	}
}

func TestRemoteSurvivesMonitorDeath(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, _ := dcom.NewExporter(n, "testpc:monitor")
	m := New(0)
	oid := com.NewGUID()
	_ = Export(exp, oid, m)
	cli, _ := dcom.Dial(n, "node1:monitorcli", "testpc:monitor")
	defer cli.Close()
	remote := NewRemote(cli, oid)

	exp.Close() // the monitor PC dies
	// Reports must not panic or error: the monitor is optional.
	remote.Report(ComponentStatus{Node: "node1", Component: "engine", State: "PRIMARY"})
	remote.RecordEvent(Event{Kind: "info"})
}

func TestNilRemoteIsSafe(t *testing.T) {
	var r *Remote
	r.Report(ComponentStatus{})
	r.RecordEvent(Event{})
}

func TestSinks(t *testing.T) {
	m := New(0)
	var sink Sink = LocalSink{M: m}
	sink.ReportStatus(ComponentStatus{Node: "n", Component: "c", State: "OK"})
	sink.Emit(Event{Kind: "info"})
	if _, ok := m.Status("n", "c"); !ok {
		t.Fatal("local sink dropped status")
	}
	sink = NullSink{}
	sink.ReportStatus(ComponentStatus{})
	sink.Emit(Event{})
}

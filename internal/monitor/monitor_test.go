package monitor

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestReportAndStatuses(t *testing.T) {
	m := New(0)
	_ = m.Report(ComponentStatus{Node: "node2", Component: "engine", Kind: KindEngine, State: "BACKUP"})
	_ = m.Report(ComponentStatus{Node: "node1", Component: "engine", Kind: KindEngine, State: "PRIMARY"})
	_ = m.Report(ComponentStatus{Node: "node1", Component: "calltrack", Kind: KindApp, State: "RUNNING"})

	rows := m.Statuses()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by node then component.
	if rows[0].Component != "calltrack" || rows[1].Node != "node1" || rows[2].Node != "node2" {
		t.Fatalf("order: %+v", rows)
	}

	// Re-report replaces the row.
	_ = m.Report(ComponentStatus{Node: "node1", Component: "engine", Kind: KindEngine, State: "FAILED"})
	st, ok := m.Status("node1", "engine")
	if !ok || st.State != "FAILED" {
		t.Fatalf("updated row: %+v", st)
	}
	if m.CountByState("FAILED") != 1 {
		t.Fatal("CountByState")
	}
}

func TestEventRetention(t *testing.T) {
	m := New(5)
	for i := 0; i < 12; i++ {
		_ = m.RecordEvent(Event{Kind: "info", Detail: strings.Repeat("x", i)})
	}
	evs := m.Events(0)
	if len(evs) != 5 {
		t.Fatalf("retained %d", len(evs))
	}
	if len(evs[4].Detail) != 11 {
		t.Fatal("retention dropped the wrong end")
	}
	if got := m.Events(2); len(got) != 2 || len(got[1].Detail) != 11 {
		t.Fatalf("limit: %+v", got)
	}
}

func TestSubscribe(t *testing.T) {
	m := New(0)
	var mu sync.Mutex
	var got []Event
	cancel := m.Subscribe(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	_ = m.RecordEvent(Event{Kind: "failure", Node: "node1"})
	mu.Lock()
	if len(got) != 1 || got[0].Kind != "failure" {
		mu.Unlock()
		t.Fatalf("got %+v", got)
	}
	mu.Unlock()
	cancel()
	_ = m.RecordEvent(Event{Kind: "info"})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatal("cancelled subscriber fired")
	}
}

func TestRender(t *testing.T) {
	m := New(0)
	_ = m.Report(ComponentStatus{Node: "node1", Component: "engine", Kind: KindEngine,
		State: "PRIMARY", Detail: "up 5m", UpdatedAt: time.Now()})
	_ = m.RecordEvent(Event{Node: "node1", Component: "app", Kind: "failure", Detail: "heartbeat lost"})
	out := m.Render()
	for _, want := range []string{"OFTT SYSTEM MONITOR", "node1", "engine", "PRIMARY", "heartbeat lost"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestViewSharesHubStore proves the dashboard and the telemetry sink see
// the same rows: a report through the hub's Sink surface shows up in
// Render with no copying.
func TestViewSharesHubStore(t *testing.T) {
	hub := telemetry.NewHub(0)
	m := FromHub(hub)
	var sink telemetry.Sink = hub
	sink.ReportStatus(ComponentStatus{Node: "node1", Component: "engine", Kind: KindEngine, State: "PRIMARY"})
	sink.Emit(Event{Node: "node1", Component: "engine", Kind: "role", Detail: "became primary"})

	if st, ok := m.Status("node1", "engine"); !ok || st.State != "PRIMARY" {
		t.Fatalf("view missed hub report: %+v", st)
	}
	if !strings.Contains(m.Render(), "became primary") {
		t.Fatal("render missed hub event")
	}
	if m.Store() != hub.Store() {
		t.Fatal("view must share the hub's store")
	}
}

// Package telephone implements the paper's demonstration workload
// (Section 4): a simulated small office telephone system with 5 telephone
// lines and 10 callers, plus the Call Track application that records the
// past and present states of the system — the stateful OPC client that the
// OFTT toolkit makes fault tolerant in the demo.
package telephone

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/opc"
)

// SimConfig parameterizes the telephone system simulator. The zero value
// is the paper's configuration: 5 lines, 10 callers.
type SimConfig struct {
	Lines    int           // default 5
	Callers  int           // default 10
	MeanIdle time.Duration // mean time between a caller's call attempts (default 200ms)
	MeanHold time.Duration // mean call duration (default 300ms)
	Tick     time.Duration // simulation step (default 5ms)
	Seed     int64
}

func (c *SimConfig) applyDefaults() {
	if c.Lines <= 0 {
		c.Lines = 5
	}
	if c.Callers <= 0 {
		c.Callers = 10
	}
	if c.MeanIdle <= 0 {
		c.MeanIdle = 200 * time.Millisecond
	}
	if c.MeanHold <= 0 {
		c.MeanHold = 300 * time.Millisecond
	}
	if c.Tick <= 0 {
		c.Tick = 5 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// caller is one phone user: idle until their next attempt, then on a line
// (or blocked if none is free).
type caller struct {
	id       int
	nextCall time.Time
	onLine   int // -1 when idle
	hangUp   time.Time
}

// Simulator drives the telephone system and publishes its state into an
// OPC server namespace:
//
//	tel.lineN.busy   (bool as 0/1)  one per line
//	tel.busy_count   current number of busy lines
//	tel.total_calls  calls placed since start
//	tel.blocked      attempts that found no free line
type Simulator struct {
	cfg SimConfig

	mu      sync.Mutex
	rng     *rand.Rand
	lines   []int // callerID occupying the line, -1 if free
	callers []*caller
	total   int64
	blocked int64
	started time.Time
	running bool

	server *opc.Server

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewSimulator creates a simulator publishing into server (may be nil for
// pure-logic tests).
func NewSimulator(cfg SimConfig, server *opc.Server) (*Simulator, error) {
	cfg.applyDefaults()
	s := &Simulator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		lines:  make([]int, cfg.Lines),
		server: server,
	}
	for i := range s.lines {
		s.lines[i] = -1
	}
	now := time.Now()
	for i := 0; i < cfg.Callers; i++ {
		s.callers = append(s.callers, &caller{
			id:       i,
			onLine:   -1,
			nextCall: now.Add(s.exp(cfg.MeanIdle)),
		})
	}
	if server != nil {
		if err := s.defineItems(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Simulator) defineItems() error {
	defs := []opc.ItemDef{
		{Tag: "tel.busy_count", CanonicalType: opc.VTInt32, Rights: opc.AccessRead,
			Description: "number of busy telephone lines"},
		{Tag: "tel.total_calls", CanonicalType: opc.VTInt64, Rights: opc.AccessRead},
		{Tag: "tel.blocked", CanonicalType: opc.VTInt64, Rights: opc.AccessRead},
	}
	for i := 0; i < s.cfg.Lines; i++ {
		defs = append(defs, opc.ItemDef{
			Tag:           fmt.Sprintf("tel.line%d.busy", i+1),
			CanonicalType: opc.VTBool,
			Rights:        opc.AccessRead,
		})
	}
	for _, d := range defs {
		if err := s.server.AddItem(d); err != nil {
			return err
		}
	}
	return nil
}

// exp samples an exponential holding time with the given mean.
func (s *Simulator) exp(mean time.Duration) time.Duration {
	return time.Duration(s.rng.ExpFloat64() * float64(mean))
}

// Start launches the simulation loop.
func (s *Simulator) Start() {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.started = time.Now()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.once = sync.Once{}
	s.mu.Unlock()

	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Step(time.Now())
				s.publish()
			case <-s.stop:
				return
			}
		}
	}()
}

// Step advances the simulation to `now` (exported for deterministic tests).
func (s *Simulator) Step(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Hang-ups first, freeing lines for new attempts this tick.
	for _, c := range s.callers {
		if c.onLine >= 0 && now.After(c.hangUp) {
			s.lines[c.onLine] = -1
			c.onLine = -1
			c.nextCall = now.Add(s.exp(s.cfg.MeanIdle))
		}
	}
	// Call attempts.
	for _, c := range s.callers {
		if c.onLine >= 0 || now.Before(c.nextCall) {
			continue
		}
		line := s.freeLineLocked()
		if line < 0 {
			s.blocked++
			c.nextCall = now.Add(s.exp(s.cfg.MeanIdle))
			continue
		}
		s.lines[line] = c.id
		c.onLine = line
		c.hangUp = now.Add(s.exp(s.cfg.MeanHold))
		s.total++
	}
}

func (s *Simulator) freeLineLocked() int {
	for i, occupant := range s.lines {
		if occupant == -1 {
			return i
		}
	}
	return -1
}

// publish pushes the current state into the OPC namespace.
func (s *Simulator) publish() {
	if s.server == nil {
		return
	}
	busy, total, blocked, lineBusy := s.snapshot()
	now := time.Now()
	_ = s.server.SetValue("tel.busy_count", opc.VI4(int32(busy)), opc.GoodNonSpecific, now)
	_ = s.server.SetValue("tel.total_calls", opc.VI8(total), opc.GoodNonSpecific, now)
	_ = s.server.SetValue("tel.blocked", opc.VI8(blocked), opc.GoodNonSpecific, now)
	for i, b := range lineBusy {
		tag := fmt.Sprintf("tel.line%d.busy", i+1)
		_ = s.server.SetValue(tag, opc.VBool(b), opc.GoodNonSpecific, now)
	}
}

func (s *Simulator) snapshot() (busy int, total, blocked int64, lineBusy []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lineBusy = make([]bool, len(s.lines))
	for i, occupant := range s.lines {
		if occupant != -1 {
			busy++
			lineBusy[i] = true
		}
	}
	return busy, s.total, s.blocked, lineBusy
}

// BusyLines reports the current number of busy lines.
func (s *Simulator) BusyLines() int {
	busy, _, _, _ := s.snapshot()
	return busy
}

// Totals reports (total calls placed, blocked attempts).
func (s *Simulator) Totals() (total, blocked int64) {
	_, total, blocked, _ = s.snapshot()
	return total, blocked
}

// Stop halts the simulation loop.
func (s *Simulator) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	s.mu.Unlock()
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// HistoryGenerator is the "Calling History generator" of Table 1: it
// produces a deterministic scripted sequence of busy-count observations for
// driving tests and experiments without the live simulator.
type HistoryGenerator struct {
	rng   *rand.Rand
	lines int
	busy  int
}

// NewHistoryGenerator returns a seeded generator for a system with the
// given number of lines.
func NewHistoryGenerator(lines int, seed int64) *HistoryGenerator {
	if lines <= 0 {
		lines = 5
	}
	return &HistoryGenerator{rng: rand.New(rand.NewSource(seed)), lines: lines}
}

// Next returns the next busy-count observation: a bounded random walk, the
// statistical shape of line occupancy.
func (g *HistoryGenerator) Next() int {
	step := g.rng.Intn(3) - 1 // -1, 0, +1
	g.busy += step
	if g.busy < 0 {
		g.busy = 0
	}
	if g.busy > g.lines {
		g.busy = g.lines
	}
	return g.busy
}

// Series returns the next n observations.
func (g *HistoryGenerator) Series(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

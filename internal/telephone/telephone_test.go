package telephone

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/opc"
)

func TestSimulatorDefaultsMatchPaper(t *testing.T) {
	s, err := NewSimulator(SimConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Lines != 5 || s.cfg.Callers != 10 {
		t.Fatalf("defaults: %d lines, %d callers", s.cfg.Lines, s.cfg.Callers)
	}
}

func TestSimulatorStepConservesLines(t *testing.T) {
	s, err := NewSimulator(SimConfig{MeanIdle: 10 * time.Millisecond,
		MeanHold: 20 * time.Millisecond, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i := 0; i < 2000; i++ {
		now = now.Add(time.Millisecond)
		s.Step(now)
		busy := s.BusyLines()
		if busy < 0 || busy > 5 {
			t.Fatalf("busy lines %d out of [0,5]", busy)
		}
	}
	total, blocked := s.Totals()
	if total == 0 {
		t.Fatal("no calls placed in 2s of simulated traffic")
	}
	// With 10 aggressive callers and 5 lines, some attempts must block.
	if blocked == 0 {
		t.Fatal("no blocked attempts despite overload")
	}
}

func TestSimulatorLineOccupancyConsistent(t *testing.T) {
	s, _ := NewSimulator(SimConfig{MeanIdle: 5 * time.Millisecond,
		MeanHold: 50 * time.Millisecond, Seed: 3}, nil)
	now := time.Now()
	for i := 0; i < 500; i++ {
		now = now.Add(time.Millisecond)
		s.Step(now)
		s.mu.Lock()
		// Each line's occupant, if any, must agree it is on that line.
		for line, occ := range s.lines {
			if occ == -1 {
				continue
			}
			if s.callers[occ].onLine != line {
				s.mu.Unlock()
				t.Fatalf("line %d thinks caller %d is on it; caller thinks line %d",
					line, occ, s.callers[occ].onLine)
			}
		}
		// No caller occupies two lines.
		seen := map[int]bool{}
		for _, c := range s.callers {
			if c.onLine >= 0 {
				if seen[c.onLine] {
					s.mu.Unlock()
					t.Fatal("two callers on one line")
				}
				seen[c.onLine] = true
			}
		}
		s.mu.Unlock()
	}
}

func TestSimulatorPublishesOPC(t *testing.T) {
	server := opc.NewServer("Telephone.OPC.1")
	s, err := NewSimulator(SimConfig{MeanIdle: 5 * time.Millisecond,
		MeanHold: 30 * time.Millisecond, Tick: 2 * time.Millisecond, Seed: 2}, server)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		states, err := server.Read([]string{"tel.busy_count", "tel.total_calls"})
		if err != nil {
			t.Fatal(err)
		}
		if states[0].Quality.IsGood() {
			if v, _ := states[1].Value.AsInt(); v > 0 {
				return // live data flowing
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no live telephone data reached the OPC namespace")
}

func TestSimulatorNamespaceShape(t *testing.T) {
	server := opc.NewServer("Telephone.OPC.1")
	if _, err := NewSimulator(SimConfig{}, server); err != nil {
		t.Fatal(err)
	}
	tags, _ := server.Browse("tel.")
	want := 3 + 5 // busy_count, total_calls, blocked + 5 lines
	if len(tags) != want {
		t.Fatalf("namespace has %d tags: %v", len(tags), tags)
	}
}

func TestTrackerObserve(t *testing.T) {
	tr := NewTracker(5, 100)
	for _, b := range []int{0, 1, 1, 3, 5, 5, 5} {
		tr.Observe(b)
	}
	s := tr.Snapshot()
	if s.Samples != 7 {
		t.Fatalf("samples = %d", s.Samples)
	}
	if s.Histogram[1] != 2 || s.Histogram[5] != 3 || s.Histogram[0] != 1 {
		t.Fatalf("histogram: %v", s.Histogram)
	}
	if s.LastBusy != 5 {
		t.Fatalf("lastBusy = %d", s.LastBusy)
	}
	if msg := tr.Verify(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

func TestTrackerClampsOutOfRange(t *testing.T) {
	tr := NewTracker(5, 100)
	tr.Observe(-3)
	tr.Observe(99)
	s := tr.Snapshot()
	if s.Histogram[0] != 1 || s.Histogram[5] != 1 {
		t.Fatalf("clamping failed: %v", s.Histogram)
	}
}

func TestTrackerHistoryBounded(t *testing.T) {
	tr := NewTracker(5, 10)
	for i := 0; i < 100; i++ {
		tr.Observe(i % 6)
	}
	s := tr.Snapshot()
	if len(s.History) != 10 {
		t.Fatalf("history length %d", len(s.History))
	}
	// Ring keeps the most recent observations.
	if s.History[9] != int32(99%6) {
		t.Fatalf("history tail: %v", s.History)
	}
	if msg := tr.Verify(); msg != "" {
		t.Fatal(msg)
	}
}

func TestTrackerIngest(t *testing.T) {
	tr := NewTracker(5, 100)
	tr.Ingest([]opc.ItemState{
		{Tag: "tel.busy_count", Value: opc.VI4(3), Quality: opc.GoodNonSpecific},
		{Tag: "tel.total_calls", Value: opc.VI8(12), Quality: opc.GoodNonSpecific},
		{Tag: "tel.blocked", Value: opc.VI8(2), Quality: opc.GoodNonSpecific},
		{Tag: "tel.busy_count", Value: opc.VI4(4), Quality: opc.BadCommFailure}, // ignored
		{Tag: "unrelated", Value: opc.VI4(9), Quality: opc.GoodNonSpecific},     // ignored
	})
	s := tr.Snapshot()
	if s.Samples != 1 || s.LastBusy != 3 {
		t.Fatalf("ingest: %+v", s)
	}
	if s.TotalCalls != 12 || s.Blocked != 2 {
		t.Fatalf("totals: %+v", s)
	}
}

func TestRenderHistogram(t *testing.T) {
	tr := NewTracker(3, 10)
	tr.Observe(1)
	tr.Observe(1)
	tr.Observe(2)
	out := tr.RenderHistogram(20)
	if !strings.Contains(out, "histogram") || !strings.Contains(out, "#") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+4 { // header + buckets 0..3
		t.Fatalf("render rows: %d", len(lines))
	}
}

// Property: tracker invariants hold for any observation sequence.
func TestQuickTrackerInvariants(t *testing.T) {
	f := func(obs []int8) bool {
		tr := NewTracker(5, 50)
		for _, o := range obs {
			tr.Observe(int(o))
		}
		return tr.Verify() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistoryGeneratorBounds(t *testing.T) {
	g := NewHistoryGenerator(5, 42)
	series := g.Series(5000)
	for i, v := range series {
		if v < 0 || v > 5 {
			t.Fatalf("series[%d] = %d", i, v)
		}
	}
	// Determinism: same seed, same series.
	g2 := NewHistoryGenerator(5, 42)
	for i, v := range g2.Series(5000) {
		if v != series[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestTelTags(t *testing.T) {
	tags := TelTags(5)
	if len(tags) != 8 {
		t.Fatalf("tags: %v", tags)
	}
	if tags[0] != "tel.busy_count" || tags[7] != "tel.line5.busy" {
		t.Fatalf("tags: %v", tags)
	}
}

package telephone

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/opc"
)

// TrackerState is the Call Track application's checkpointable state: the
// busy-line histogram the demo displays plus call totals and a bounded
// observation history. It is exactly what must survive a failover —
// "the application is preferred to be fault tolerant since it records the
// past and present states of the system".
type TrackerState struct {
	Lines      int
	Histogram  []int64 // Histogram[k] = samples observed with k busy lines
	Samples    int64
	TotalCalls int64
	Blocked    int64
	LastBusy   int32
	History    []int32 // bounded ring of recent busy counts
	HistoryCap int
}

// Tracker is the pure logic of the Call Track application, independent of
// OPC and OFTT so it is unit-testable; the wiring lives in core and the
// examples.
type Tracker struct {
	mu    sync.Locker
	state TrackerState
}

// NewTracker creates a tracker for a system with `lines` lines, retaining
// up to historyCap observations.
func NewTracker(lines, historyCap int) *Tracker {
	if lines <= 0 {
		lines = 5
	}
	if historyCap <= 0 {
		historyCap = 1000
	}
	return &Tracker{
		mu: &sync.Mutex{},
		state: TrackerState{
			Lines:      lines,
			Histogram:  make([]int64, lines+1),
			HistoryCap: historyCap,
		},
	}
}

// State returns a pointer to the tracker's state for checkpoint
// registration. All tracker methods and all checkpoint captures must be
// serialized by the same lock: after registering the state with an FTIM,
// call SetLocker with the FTIM's registry so captures/restores and tracker
// updates exclude each other. Standalone use keeps the built-in mutex.
func (t *Tracker) State() *TrackerState { return &t.state }

// SetLocker replaces the mutex guarding the tracker's state. Use the
// checkpoint registry that holds the registered state so the FTIM thread
// and the tracker serialize on one lock.
func (t *Tracker) SetLocker(l sync.Locker) { t.mu = l }

// Observe records one busy-count sample.
func (t *Tracker) Observe(busy int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if busy < 0 {
		busy = 0
	}
	if busy > t.state.Lines {
		busy = t.state.Lines
	}
	t.state.Histogram[busy]++
	t.state.Samples++
	t.state.LastBusy = int32(busy)
	t.state.History = append(t.state.History, int32(busy))
	if len(t.state.History) > t.state.HistoryCap {
		t.state.History = t.state.History[len(t.state.History)-t.state.HistoryCap:]
	}
}

// SetTotals records the simulator's call counters.
func (t *Tracker) SetTotals(total, blocked int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state.TotalCalls = total
	t.state.Blocked = blocked
}

// Ingest consumes an OPC update batch from the telephone namespace.
func (t *Tracker) Ingest(updates []opc.ItemState) {
	for _, u := range updates {
		if !u.Quality.IsGood() {
			continue
		}
		switch u.Tag {
		case "tel.busy_count":
			if v, err := u.Value.AsInt(); err == nil {
				t.Observe(int(v))
			}
		case "tel.total_calls":
			if v, err := u.Value.AsInt(); err == nil {
				t.mu.Lock()
				t.state.TotalCalls = v
				t.mu.Unlock()
			}
		case "tel.blocked":
			if v, err := u.Value.AsInt(); err == nil {
				t.mu.Lock()
				t.state.Blocked = v
				t.mu.Unlock()
			}
		}
	}
}

// Snapshot returns a deep copy of the state.
func (t *Tracker) Snapshot() TrackerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := t.state
	cp.Histogram = append([]int64(nil), t.state.Histogram...)
	cp.History = append([]int32(nil), t.state.History...)
	return cp
}

// Samples reports the number of observations recorded.
func (t *Tracker) Samples() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state.Samples
}

// Lock/Unlock expose the tracker's mutex so an FTIM checkpoint capture can
// be coordinated with ongoing observation in standalone deployments.
func (t *Tracker) Lock() { t.mu.Lock() }

// Unlock releases the tracker's mutex.
func (t *Tracker) Unlock() { t.mu.Unlock() }

// RenderHistogram draws the demo's busy-lines histogram as ASCII art.
func (t *Tracker) RenderHistogram(width int) string {
	if width <= 0 {
		width = 40
	}
	s := t.Snapshot()
	var max int64
	for _, c := range s.Histogram {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Busy-lines histogram (%d samples, %d calls, %d blocked)\n",
		s.Samples, s.TotalCalls, s.Blocked)
	for k, c := range s.Histogram {
		bar := 0
		if max > 0 {
			bar = int(c * int64(width) / max)
		}
		fmt.Fprintf(&b, "%2d busy |%-*s| %d\n", k, width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Verify checks the tracker's internal invariants; the demo uses it to
// prove no history was lost across a failover. It returns a descriptive
// error-like string ("" when consistent).
func (t *Tracker) Verify() string {
	s := t.Snapshot()
	var sum int64
	for _, c := range s.Histogram {
		if c < 0 {
			return "negative histogram bucket"
		}
		sum += c
	}
	if sum != s.Samples {
		return fmt.Sprintf("histogram sum %d != samples %d", sum, s.Samples)
	}
	if len(s.History) > s.HistoryCap {
		return "history exceeds cap"
	}
	if int64(len(s.History)) > s.Samples {
		return "more history than samples"
	}
	return ""
}

// TelTags returns the OPC tags the tracker subscribes to for a system with
// the given line count.
func TelTags(lines int) []string {
	tags := []string{"tel.busy_count", "tel.total_calls", "tel.blocked"}
	for i := 1; i <= lines; i++ {
		tags = append(tags, fmt.Sprintf("tel.line%d.busy", i))
	}
	return tags
}

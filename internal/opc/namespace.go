package opc

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// nsItem is one namespace entry. The definition is immutable after
// AddItem; the live state is published through an atomic pointer so the
// scan path reads it without taking any lock, and the version counter
// lets a sweep skip unchanged items with two atomic loads instead of a
// state comparison.
//
// Publish order matters: the state pointer is stored before the version
// is bumped, so a reader that observes a new version always observes a
// state at least that fresh. A reader that races the other way (new
// state, old version) re-reads the same state on its next sweep and the
// deadband comparison suppresses the duplicate.
type nsItem struct {
	def     ItemDef
	state   atomic.Pointer[ItemState]
	version atomic.Uint64

	// removed tombstones an item deleted from the namespace: sweeps that
	// cached the pointer see it, drop their cache, and re-resolve — so a
	// tag removed and re-added flows again instead of pinning the orphan.
	removed atomic.Bool
}

// nsShard is one lock stripe of the namespace. The mutex covers the map
// only — item state never requires it.
type nsShard struct {
	mu    sync.RWMutex
	items map[string]*nsItem
}

// namespace is the sharded item store: tags hash (FNV-1a) onto a
// power-of-two shard set. Item addition/removal is O(1) (no sorted tag
// slice is maintained — browses gather and sort on demand, which is the
// right trade at a million items with management-rate browsing).
type namespace struct {
	shards []nsShard
	mask   uint32
	count  atomic.Int64
}

// defaultNamespaceShards spreads map contention for ~1M-item namespaces
// while keeping empty servers cheap.
const defaultNamespaceShards = 128

func newNamespace(shardCount int) *namespace {
	n := nextPow2NS(shardCount)
	ns := &namespace{shards: make([]nsShard, n), mask: uint32(n - 1)}
	for i := range ns.shards {
		ns.shards[i].items = make(map[string]*nsItem)
	}
	return ns
}

func nextPow2NS(v int) int {
	if v < 1 {
		v = 1
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// fnvHash is 32-bit FNV-1a over the tag.
func fnvHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (ns *namespace) shardFor(tag string) *nsShard {
	return &ns.shards[fnvHash(tag)&ns.mask]
}

// add inserts a new item; it reports false on a duplicate tag.
func (ns *namespace) add(it *nsItem) bool {
	sh := ns.shardFor(it.def.Tag)
	sh.mu.Lock()
	if _, dup := sh.items[it.def.Tag]; dup {
		sh.mu.Unlock()
		return false
	}
	sh.items[it.def.Tag] = it
	sh.mu.Unlock()
	ns.count.Add(1)
	return true
}

// remove deletes a tag; it reports whether the tag existed.
func (ns *namespace) remove(tag string) bool {
	sh := ns.shardFor(tag)
	sh.mu.Lock()
	it, ok := sh.items[tag]
	if ok {
		it.removed.Store(true)
		delete(sh.items, tag)
	}
	sh.mu.Unlock()
	if ok {
		ns.count.Add(-1)
	}
	return ok
}

// lookup resolves a tag to its item, or nil.
func (ns *namespace) lookup(tag string) *nsItem {
	sh := ns.shardFor(tag)
	sh.mu.RLock()
	it := sh.items[tag]
	sh.mu.RUnlock()
	return it
}

// len is the live item count.
func (ns *namespace) len() int { return int(ns.count.Load()) }

// forEach visits every item. Visits happen under the shard read lock, so
// fn must not call back into namespace mutation; state loads and atomic
// publishes are fine.
func (ns *namespace) forEach(fn func(*nsItem)) {
	for i := range ns.shards {
		sh := &ns.shards[i]
		sh.mu.RLock()
		for _, it := range sh.items {
			fn(it)
		}
		sh.mu.RUnlock()
	}
}

// tagsWithPrefix gathers matching tags, sorted. prefix "" means all.
func (ns *namespace) tagsWithPrefix(prefix string) []string {
	out := make([]string, 0, 16)
	ns.forEach(func(it *nsItem) {
		if strings.HasPrefix(it.def.Tag, prefix) {
			out = append(out, it.def.Tag)
		}
	})
	sort.Strings(out)
	return out
}

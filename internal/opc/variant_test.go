package opc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVariantConstructorsAndString(t *testing.T) {
	tests := []struct {
		v    Variant
		vt   VT
		text string
	}{
		{Empty(), VTEmpty, "<empty>"},
		{VBool(true), VTBool, "true"},
		{VI4(-7), VTInt32, "-7"},
		{VI8(1 << 40), VTInt64, "1099511627776"},
		{VR4(2.5), VTFloat32, "2.5"},
		{VR8(-0.125), VTFloat64, "-0.125"},
		{VStr("busy"), VTString, "busy"},
	}
	for _, tt := range tests {
		if tt.v.Type != tt.vt {
			t.Errorf("%v: type %v, want %v", tt.v, tt.v.Type, tt.vt)
		}
		if got := tt.v.String(); got != tt.text {
			t.Errorf("String() = %q, want %q", got, tt.text)
		}
	}
}

func TestVariantConversions(t *testing.T) {
	if f, err := VI4(42).AsFloat(); err != nil || f != 42 {
		t.Errorf("AsFloat(42) = %v %v", f, err)
	}
	if i, err := VR8(3.9).AsInt(); err != nil || i != 3 {
		t.Errorf("AsInt(3.9) = %v %v", i, err)
	}
	if b, err := VI4(1).AsBool(); err != nil || !b {
		t.Errorf("AsBool(1) = %v %v", b, err)
	}
	if f, err := VStr("2.5").AsFloat(); err != nil || f != 2.5 {
		t.Errorf("AsFloat(\"2.5\") = %v %v", f, err)
	}
	if b, err := VBool(true).AsFloat(); err != nil || b != 1 {
		t.Errorf("AsFloat(true) = %v %v", b, err)
	}
	if _, err := VStr("junk").AsFloat(); err == nil {
		t.Error("junk string converted to float")
	}
	if _, err := Empty().AsInt(); err == nil {
		t.Error("empty converted to int")
	}
}

func TestVariantEqual(t *testing.T) {
	if !VI4(1).Equal(VI4(1)) {
		t.Error("equal ints unequal")
	}
	if VI4(1).Equal(VI8(1)) {
		t.Error("different types compare equal")
	}
	if VI4(1).Equal(VI4(2)) {
		t.Error("different values compare equal")
	}
	if !VR8(math.NaN()).Equal(VR8(math.NaN())) {
		t.Error("NaN should equal NaN for change detection")
	}
	if !Empty().Equal(Variant{}) {
		t.Error("empty should equal zero variant")
	}
}

func TestCoerceTo(t *testing.T) {
	v, err := VStr("42").CoerceTo(VTInt32)
	if err != nil || v.Type != VTInt32 || v.Int != 42 {
		t.Fatalf("coerce string->i4: %+v %v", v, err)
	}
	v, err = VI4(1).CoerceTo(VTBool)
	if err != nil || !v.Bool {
		t.Fatalf("coerce i4->bool: %+v %v", v, err)
	}
	v, err = VR8(2.5).CoerceTo(VTString)
	if err != nil || v.Str != "2.5" {
		t.Fatalf("coerce r8->bstr: %+v %v", v, err)
	}
	if _, err := VI8(math.MaxInt64).CoerceTo(VTInt32); err == nil {
		t.Fatal("i8 overflow into i4 accepted")
	}
	if _, err := VStr("x").CoerceTo(VTFloat64); err == nil {
		t.Fatal("junk coerced to float")
	}
	// Identity coercion.
	v, err = VI4(5).CoerceTo(VTInt32)
	if err != nil || v.Int != 5 {
		t.Fatalf("identity coerce: %+v %v", v, err)
	}
}

// Property: numeric coercion to float64 and back to int64 truncates
// consistently with Go conversion semantics.
func TestQuickCoerceIntFloat(t *testing.T) {
	f := func(v int32) bool {
		r8, err := VI4(v).CoerceTo(VTFloat64)
		if err != nil {
			return false
		}
		back, err := r8.CoerceTo(VTInt32)
		if err != nil {
			return false
		}
		return back.Int == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQualityBits(t *testing.T) {
	if !GoodNonSpecific.IsGood() || GoodNonSpecific.IsBad() {
		t.Error("GoodNonSpecific misclassified")
	}
	if !BadCommFailure.IsBad() {
		t.Error("BadCommFailure misclassified")
	}
	if !UncertainLastUsable.IsUncertain() {
		t.Error("UncertainLastUsable misclassified")
	}
	if !GoodLocalOverride.IsGood() {
		t.Error("GoodLocalOverride should be good-major")
	}
	if BadNotConnected.Major() != QualityBad {
		t.Error("major extraction wrong")
	}
}

func TestQualityStrings(t *testing.T) {
	tests := map[Quality]string{
		GoodNonSpecific:     "GOOD",
		BadNotConnected:     "BAD(not connected)",
		BadCommFailure:      "BAD(comm failure)",
		BadDeviceFailure:    "BAD(device failure)",
		GoodLocalOverride:   "GOOD(local override)",
		UncertainLastUsable: "UNCERTAIN(last usable)",
	}
	for q, want := range tests {
		if got := q.String(); got != want {
			t.Errorf("%#x: got %q, want %q", uint16(q), got, want)
		}
	}
}

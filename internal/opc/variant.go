// Package opc is the OLE for Process Control (OPC Data Access) analog: the
// standard interface the paper's applications speak. An OPC server wraps a
// device driver and publishes named items; OPC clients read, write, and
// subscribe to those items, locally via COM or remotely via DCOM.
//
// The data model follows OPC DA 1.0 as the paper describes it: VARIANT
// values, a 16-bit quality word, per-item timestamps, and client-defined
// groups with an update rate and percent deadband.
package opc

import (
	"fmt"
	"math"
	"strconv"
)

// VT is the variant type tag (the VARIANT vt field).
type VT int

// Variant types supported by the toolkit.
const (
	VTEmpty VT = iota + 1
	VTBool
	VTInt32
	VTInt64
	VTFloat32
	VTFloat64
	VTString
)

// String names the variant type.
func (t VT) String() string {
	switch t {
	case VTEmpty:
		return "VT_EMPTY"
	case VTBool:
		return "VT_BOOL"
	case VTInt32:
		return "VT_I4"
	case VTInt64:
		return "VT_I8"
	case VTFloat32:
		return "VT_R4"
	case VTFloat64:
		return "VT_R8"
	case VTString:
		return "VT_BSTR"
	default:
		return "VT_UNKNOWN"
	}
}

// Variant is the OLE VARIANT analog: a tagged scalar. The representation is
// a flat struct so it crosses the NDR wire without registration.
type Variant struct {
	Type  VT
	Bool  bool
	Int   int64
	Float float64
	Str   string
}

// Constructors, named after the OLE vt codes.

// Empty returns VT_EMPTY.
func Empty() Variant { return Variant{Type: VTEmpty} }

// VBool returns a VT_BOOL variant.
func VBool(v bool) Variant { return Variant{Type: VTBool, Bool: v} }

// VI4 returns a VT_I4 (32-bit integer) variant.
func VI4(v int32) Variant { return Variant{Type: VTInt32, Int: int64(v)} }

// VI8 returns a VT_I8 (64-bit integer) variant.
func VI8(v int64) Variant { return Variant{Type: VTInt64, Int: v} }

// VR4 returns a VT_R4 (float32) variant.
func VR4(v float32) Variant { return Variant{Type: VTFloat32, Float: float64(v)} }

// VR8 returns a VT_R8 (float64) variant.
func VR8(v float64) Variant { return Variant{Type: VTFloat64, Float: v} }

// VStr returns a VT_BSTR variant.
func VStr(v string) Variant { return Variant{Type: VTString, Str: v} }

// IsEmpty reports whether the variant is VT_EMPTY (or zero-valued).
func (v Variant) IsEmpty() bool { return v.Type == VTEmpty || v.Type == 0 }

// IsNumeric reports whether the variant holds a number.
func (v Variant) IsNumeric() bool {
	switch v.Type {
	case VTInt32, VTInt64, VTFloat32, VTFloat64:
		return true
	}
	return false
}

// AsFloat converts to float64 (bool -> 0/1, string via strconv).
func (v Variant) AsFloat() (float64, error) {
	switch v.Type {
	case VTBool:
		if v.Bool {
			return 1, nil
		}
		return 0, nil
	case VTInt32, VTInt64:
		return float64(v.Int), nil
	case VTFloat32, VTFloat64:
		return v.Float, nil
	case VTString:
		f, err := strconv.ParseFloat(v.Str, 64)
		if err != nil {
			return 0, fmt.Errorf("opc: variant %q is not numeric", v.Str)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("opc: cannot convert %s to float", v.Type)
	}
}

// AsInt converts to int64 (floats truncate toward zero).
func (v Variant) AsInt() (int64, error) {
	switch v.Type {
	case VTBool:
		if v.Bool {
			return 1, nil
		}
		return 0, nil
	case VTInt32, VTInt64:
		return v.Int, nil
	case VTFloat32, VTFloat64:
		return int64(v.Float), nil
	case VTString:
		i, err := strconv.ParseInt(v.Str, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("opc: variant %q is not an integer", v.Str)
		}
		return i, nil
	default:
		return 0, fmt.Errorf("opc: cannot convert %s to int", v.Type)
	}
}

// AsBool converts to bool (numbers: nonzero is true).
func (v Variant) AsBool() (bool, error) {
	switch v.Type {
	case VTBool:
		return v.Bool, nil
	case VTInt32, VTInt64:
		return v.Int != 0, nil
	case VTFloat32, VTFloat64:
		return v.Float != 0, nil
	case VTString:
		b, err := strconv.ParseBool(v.Str)
		if err != nil {
			return false, fmt.Errorf("opc: variant %q is not a bool", v.Str)
		}
		return b, nil
	default:
		return false, fmt.Errorf("opc: cannot convert %s to bool", v.Type)
	}
}

// NumericValue is the allocation-free numeric fast path for the scan
// loop: it returns the value as float64 for the four numeric types and
// ok=false otherwise, without the error allocation AsFloat carries.
func (v Variant) NumericValue() (f float64, ok bool) {
	switch v.Type {
	case VTInt32, VTInt64:
		return float64(v.Int), true
	case VTFloat32, VTFloat64:
		return v.Float, true
	default:
		return 0, false
	}
}

// String renders the payload.
func (v Variant) String() string {
	switch v.Type {
	case VTEmpty, 0:
		return "<empty>"
	case VTBool:
		return strconv.FormatBool(v.Bool)
	case VTInt32, VTInt64:
		return strconv.FormatInt(v.Int, 10)
	case VTFloat32, VTFloat64:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case VTString:
		return v.Str
	default:
		return "<unknown>"
	}
}

// Equal reports exact equality of type and payload. A zero Variant and an
// explicit VT_EMPTY compare equal.
func (v Variant) Equal(o Variant) bool {
	if v.IsEmpty() && o.IsEmpty() {
		return true
	}
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case VTEmpty, 0:
		return true
	case VTBool:
		return v.Bool == o.Bool
	case VTInt32, VTInt64:
		return v.Int == o.Int
	case VTFloat32, VTFloat64:
		return v.Float == o.Float || (math.IsNaN(v.Float) && math.IsNaN(o.Float))
	case VTString:
		return v.Str == o.Str
	default:
		return false
	}
}

// CoerceTo converts the variant to the target type, the OPC "canonical
// data type" coercion servers perform on writes.
func (v Variant) CoerceTo(t VT) (Variant, error) {
	if v.Type == t {
		return v, nil
	}
	switch t {
	case VTBool:
		b, err := v.AsBool()
		if err != nil {
			return Variant{}, err
		}
		return VBool(b), nil
	case VTInt32:
		i, err := v.AsInt()
		if err != nil {
			return Variant{}, err
		}
		if i > math.MaxInt32 || i < math.MinInt32 {
			return Variant{}, fmt.Errorf("opc: %d overflows VT_I4", i)
		}
		return VI4(int32(i)), nil
	case VTInt64:
		i, err := v.AsInt()
		if err != nil {
			return Variant{}, err
		}
		return VI8(i), nil
	case VTFloat32:
		f, err := v.AsFloat()
		if err != nil {
			return Variant{}, err
		}
		return VR4(float32(f)), nil
	case VTFloat64:
		f, err := v.AsFloat()
		if err != nil {
			return Variant{}, err
		}
		return VR8(f), nil
	case VTString:
		return VStr(v.String()), nil
	default:
		return Variant{}, fmt.Errorf("opc: cannot coerce %s to %s", v.Type, t)
	}
}

package opc

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diverter"
)

// The shared scan engine.
//
// The old data plane ran one goroutine per group and evaluated deadband
// once per (item, subscriber). This one runs one sweep goroutine per
// distinct update rate (a scanCycle), and groups subscriptions that share
// an item set and base deadband into cohorts, so per sweep each item is
// read once (two atomic loads on the fast path) and its deadband is
// evaluated once per cohort — not once per subscriber. Changes leave the
// sweep as one pooled, refcounted updateBatch broadcast through the
// sharded diverter to every member subscription: 10k subscribers cost 10k
// queue slots sharing one batch, not 10k allocations of the batch.
//
// Two read paths share the machinery: a local *Server is swept in-process
// against the namespace's atomic item states; a remote Connection is
// swept with one batched conn.Read per cohort (per cohort, not a union
// read, so one cohort's bad tag cannot starve the others).

// scanEngine owns the scan cycles and the fan-out diverter for one
// connection (server-side: srv != nil; client-side: conn != nil).
type scanEngine struct {
	srv  *Server
	conn Connection
	ins  Instruments

	mu     sync.Mutex
	cycles map[time.Duration]*scanCycle
	div    *diverter.Diverter
	nextID uint64
	closed bool
}

func newScanEngine(srv *Server, conn Connection) *scanEngine {
	return &scanEngine{srv: srv, conn: conn, cycles: make(map[time.Duration]*scanCycle)}
}

// diverter returns the engine's fan-out diverter, creating it lazily so
// servers nobody subscribes to never spin up workers.
func (e *scanEngine) diverter() *diverter.Diverter {
	if e.div == nil {
		e.div = diverter.New(diverter.Config{
			RetryInterval: 2 * time.Millisecond,
			RetryBackoff:  time.Millisecond,
		})
	}
	return e.div
}

// subID allocates a diverter destination name for a subscription.
func (e *scanEngine) subID() string {
	e.nextID++
	return "opc-sub-" + strconv.FormatUint(e.nextID, 10)
}

// cycle returns the scanCycle for an update rate, creating and starting
// it on first use. Callers must not hold any cycle's mu.
func (e *scanEngine) cycle(rate time.Duration) (*scanCycle, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	cy := e.cycles[rate]
	if cy == nil {
		cy = &scanCycle{
			eng:     e,
			div:     e.diverter(),
			rate:    rate,
			cohorts: make(map[uint64][]*cohort),
			stop:    make(chan struct{}),
			done:    make(chan struct{}),
		}
		e.cycles[rate] = cy
		go cy.run()
	}
	return cy, nil
}

// dropCycleIfEmpty retires a cycle whose last cohort detached. The
// stopped flag closes the attach race: an attach that fetched this cycle
// before it left the map observes stopped under cy.mu and retries.
func (e *scanEngine) dropCycleIfEmpty(cy *scanCycle) {
	e.mu.Lock()
	cy.mu.Lock()
	if len(cy.cohorts) > 0 || cy.stopped {
		cy.mu.Unlock()
		e.mu.Unlock()
		return
	}
	cy.stopped = true
	delete(e.cycles, cy.rate)
	cy.mu.Unlock()
	e.mu.Unlock()
	close(cy.stop)
	<-cy.done
}

// close stops every cycle and the fan-out diverter.
func (e *scanEngine) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	cycles := make([]*scanCycle, 0, len(e.cycles))
	for _, cy := range e.cycles {
		cycles = append(cycles, cy)
	}
	e.cycles = make(map[time.Duration]*scanCycle)
	div := e.div
	e.mu.Unlock()
	for _, cy := range cycles {
		cy.mu.Lock()
		already := cy.stopped
		cy.stopped = true
		cy.mu.Unlock()
		if !already {
			close(cy.stop)
			<-cy.done
		}
	}
	if div != nil {
		div.Stop()
	}
}

// scanCycle is one shared ticker sweep: every cohort at this update rate
// rides it. cohorts is keyed by cohort key (item set + base deadband)
// with a small collision list.
type scanCycle struct {
	eng  *scanEngine
	div  *diverter.Diverter // pinned at creation: sweeps must not take eng.mu (lock order is eng.mu → cy.mu)
	rate time.Duration

	mu      sync.Mutex
	cohorts map[uint64][]*cohort
	stopped bool

	stop chan struct{}
	done chan struct{}
}

// cohort is a set of subscriptions sharing (item set, base deadband) at
// one rate. The sweep evaluates each item's deadband once per cohort and
// broadcasts one shared batch to every member.
type cohort struct {
	key      uint64
	tags     []string // sorted, deduped
	deadband float64  // configured base deadband (percent)

	// effective is the deadband the sweep actually applies per item:
	// min(deadband, lowest member override). Members whose override is
	// larger than effective re-filter at delivery. Indexed like tags.
	effective []float64

	items []cohortItem // resolved per-item scan state, indexed like tags

	members []*Subscription
	dests   []string // members' diverter destinations, same order
}

// cohortItem is the per-(cohort, item) scan state, guarded by the
// cycle's mu (held for the whole sweep; attach/detach are
// management-rate, so the lock is effectively uncontended on the hot
// path — the namespace item reads inside remain lock-free).
type cohortItem struct {
	it      *nsItem // local path; nil on the remote path or if undefined
	lastVer uint64  // version observed at the last evaluation (local path)
	sent    ItemState
	hasSent bool
}

// cohortKeyFor hashes the identity of a cohort: the sorted tag set and
// the base deadband. Quality filters and per-item overrides are applied
// per member at delivery, so they stay out of the key — subscriptions
// differing only there still share one sweep evaluation.
func cohortKeyFor(sortedTags []string, deadband float64) uint64 {
	h := uint64(14695981039346656037)
	for _, t := range sortedTags {
		for i := 0; i < len(t); i++ {
			h ^= uint64(t[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	h ^= math.Float64bits(deadband)
	h *= 1099511628211
	return h
}

// updateBatch is the pooled fan-out unit: one slice of changed states
// shared by every member of a cohort. refs counts undelivered
// destinations; the last terminal outcome (delivered or dropped at a
// closed subscription) releases the batch to the pool. Retryable
// delivery errors do not decrement.
type updateBatch struct {
	states []ItemState
	refs   atomic.Int32
}

var batchPool = sync.Pool{New: func() any { return new(updateBatch) }}

func newBatch() *updateBatch {
	b := batchPool.Get().(*updateBatch)
	b.states = b.states[:0]
	return b
}

// release drops one reference; the last one returns the batch.
func (b *updateBatch) release() {
	if b.refs.Add(-1) == 0 {
		batchPool.Put(b)
	}
}

// Release satisfies the diverter's releasable payload hook: when the
// diverter drops a queued message undelivered (Forget, MaxAttempts), it
// returns the reference that message's enqueue took.
func (b *updateBatch) Release() { b.release() }

// run is the cycle's sweep loop.
func (cy *scanCycle) run() {
	defer close(cy.done)
	t := time.NewTicker(cy.rate)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			cy.sweep()
		case <-cy.stop:
			return
		}
	}
}

// sweep evaluates every cohort once. The cohort list is snapshotted and
// cy.mu is taken per cohort — never across a blocking conn.Read — so a
// slow remote read stalls neither attach/detach/Refresh/Close on this
// rate nor the other cohorts' locked apply phases. Cohort scan state is
// still only ever touched with cy.mu held; a cohort retired between the
// snapshot and its turn just updates private garbage and broadcasts to
// zero members.
func (cy *scanCycle) sweep() {
	start := time.Now()
	eng := cy.eng
	cy.mu.Lock()
	cohorts := make([]*cohort, 0, len(cy.cohorts))
	for _, list := range cy.cohorts {
		cohorts = append(cohorts, list...)
	}
	cy.mu.Unlock()
	for _, co := range cohorts {
		if eng.srv != nil {
			cy.mu.Lock()
			cy.sweepLocal(co)
			cy.mu.Unlock()
		} else {
			cy.sweepRemote(co)
		}
	}
	eng.ins.ScanCycle.ObserveDuration(time.Since(start))
}

// sweepLocal evaluates one cohort against the in-process namespace: per
// item, two atomic loads on the unchanged fast path; state load + one
// deadband evaluation when the version moved. Called with cy.mu held.
func (cy *scanCycle) sweepLocal(co *cohort) {
	eng := cy.eng
	var batch *updateBatch
	suppressed := int64(0)
	for i := range co.items {
		ci := &co.items[i]
		it := ci.it
		if it != nil && it.removed.Load() {
			// The cached item was deleted from the namespace; drop the
			// pointer so a re-added tag resolves to its new entry instead
			// of the orphan.
			it, ci.it = nil, nil
		}
		fresh := false
		if it == nil {
			// Tag was undefined at attach (or its item was removed);
			// re-resolve so items (re-)added to the server after
			// subscription creation start flowing.
			if it = eng.srv.ns.lookup(co.tags[i]); it == nil {
				continue
			}
			ci.it = it
			fresh = true
		}
		ver := it.version.Load()
		if !fresh && ci.hasSent && ver == ci.lastVer {
			continue // unchanged since last evaluation
		}
		st := it.state.Load()
		ci.lastVer = ver
		if ci.hasSent && !exceedsDeadband(&ci.sent, st, co.effective[i]) {
			suppressed++
			continue
		}
		ci.sent = *st
		ci.hasSent = true
		if batch == nil {
			batch = newBatch()
		}
		batch.states = append(batch.states, *st)
	}
	if suppressed > 0 {
		eng.ins.DeadbandSuppressed.Add(suppressed)
	}
	cy.broadcast(co, batch)
}

// sweepRemote evaluates one cohort over the wire with one batched Read.
// The RPC runs with no lock held (co.tags is immutable after cohort
// creation); cy.mu is taken only for the apply-and-broadcast phase.
func (cy *scanCycle) sweepRemote(co *cohort) {
	eng := cy.eng
	states, err := eng.conn.Read(co.tags)
	cy.mu.Lock()
	defer cy.mu.Unlock()
	if err != nil {
		for _, sub := range co.members {
			sub.noteScanErr()
		}
		return
	}
	var batch *updateBatch
	suppressed := int64(0)
	for i := range states {
		st := &states[i]
		// conn.Read returns states in tag order; guard anyway.
		idx := i
		if idx >= len(co.items) || co.tags[idx] != st.Tag {
			idx = sort.SearchStrings(co.tags, st.Tag)
			if idx >= len(co.tags) || co.tags[idx] != st.Tag {
				continue
			}
		}
		ci := &co.items[idx]
		if ci.hasSent && !exceedsDeadband(&ci.sent, st, co.effective[idx]) {
			suppressed++
			continue
		}
		ci.sent = *st
		ci.hasSent = true
		if batch == nil {
			batch = newBatch()
		}
		batch.states = append(batch.states, *st)
	}
	if suppressed > 0 {
		eng.ins.DeadbandSuppressed.Add(suppressed)
	}
	cy.broadcast(co, batch)
}

// broadcast fans one batch out to every cohort member and bumps scan
// counters. A nil batch still counts the scan (for Stats()).
func (cy *scanCycle) broadcast(co *cohort, batch *updateBatch) {
	for _, sub := range co.members {
		sub.noteScan()
	}
	if batch == nil {
		return
	}
	if len(co.dests) == 0 {
		batchPool.Put(batch)
		return
	}
	cy.eng.ins.FanoutBatch.Observe(int64(len(batch.states)))
	cy.send(co.dests, batch)
}

// send fans one batch out with partial-enqueue-safe refcounting.
// Broadcast can stop short when the diverter closes mid-loop, with the
// destinations it DID enqueue already delivering (and releasing)
// concurrently — so refs starts at dests+1, the extra being a caller
// reference that keeps the count positive until Broadcast reports how
// many got in. The caller then drops its reference plus one per
// destination never enqueued; whoever takes the count to zero — here or
// the last delivery — pools the batch exactly once.
func (cy *scanCycle) send(dests []string, batch *updateBatch) {
	batch.refs.Store(int32(len(dests)) + 1)
	n, _ := cy.div.Broadcast(dests, batch)
	if batch.refs.Add(int32(-(len(dests) - n + 1))) == 0 {
		batchPool.Put(batch)
	}
}

// diverterRef fetches the (already created) diverter under the engine
// lock; attach always created it before any subscription exists.
func (e *scanEngine) diverterRef() *diverter.Diverter {
	e.mu.Lock()
	d := e.div
	e.mu.Unlock()
	return d
}

// exceedsDeadband applies OPC percent-deadband semantics between the
// last-sent state and a candidate: quality changes always pass;
// deadbandPC 0 passes any value change; numeric changes must exceed
// deadbandPC% of the previous magnitude (zero-span previous: any move
// off zero passes); non-numeric values compare exactly.
func exceedsDeadband(prev, next *ItemState, deadbandPC float64) bool {
	if prev.Quality != next.Quality {
		return true
	}
	if deadbandPC == 0 {
		return !prev.Value.Equal(next.Value)
	}
	pf, ok1 := prev.Value.NumericValue()
	nf, ok2 := next.Value.NumericValue()
	if !ok1 || !ok2 {
		return !prev.Value.Equal(next.Value)
	}
	span := math.Abs(pf)
	if span == 0 {
		return nf != 0
	}
	return math.Abs(nf-pf) > span*deadbandPC/100
}

// attach joins a subscription to the cycle matching its rate, creating
// or extending a cohort. Loops because the fetched cycle may have been
// retired by a concurrent detach.
func (e *scanEngine) attach(sub *Subscription) error {
	for {
		cy, err := e.cycle(sub.cfg.UpdateRate)
		if err != nil {
			return err
		}
		cy.mu.Lock()
		if cy.stopped {
			cy.mu.Unlock()
			continue
		}
		cy.attachLocked(sub)
		cy.mu.Unlock()
		return nil
	}
}

// attachLocked adds sub to its cohort (creating one if needed) and
// queues a snapshot of already-sent state so a subscriber joining an
// established cohort starts from the current values instead of silence.
func (cy *scanCycle) attachLocked(sub *Subscription) {
	key := cohortKeyFor(sub.tags, sub.cfg.DeadbandPC)
	var co *cohort
	for _, cand := range cy.cohorts[key] {
		if cand.deadband == sub.cfg.DeadbandPC && equalTags(cand.tags, sub.tags) {
			co = cand
			break
		}
	}
	fresh := co == nil
	if fresh {
		co = &cohort{
			key:       key,
			tags:      append([]string(nil), sub.tags...),
			deadband:  sub.cfg.DeadbandPC,
			effective: make([]float64, len(sub.tags)),
			items:     make([]cohortItem, len(sub.tags)),
		}
		for i := range co.effective {
			co.effective[i] = sub.cfg.DeadbandPC
		}
		if cy.eng.srv != nil {
			for i, tag := range co.tags {
				co.items[i].it = cy.eng.srv.ns.lookup(tag)
			}
		}
		cy.cohorts[key] = append(cy.cohorts[key], co)
	}
	co.members = append(co.members, sub)
	co.dests = append(co.dests, sub.dest)
	sub.cohort, sub.cycle = co, cy

	// Per-item overrides can only lower the cohort's effective deadband;
	// members with larger overrides re-filter at delivery.
	for tag, db := range sub.overrides {
		if i := sort.SearchStrings(co.tags, tag); i < len(co.tags) && co.tags[i] == tag {
			if db < co.effective[i] {
				co.effective[i] = db
			}
		}
	}

	if !fresh {
		cy.snapshotToLocked(co, sub)
	}
}

// snapshotToLocked sends a joining member the cohort's already-sent item
// states as one batch, so it catches up without waiting for changes.
func (cy *scanCycle) snapshotToLocked(co *cohort, sub *Subscription) {
	var batch *updateBatch
	for i := range co.items {
		if co.items[i].hasSent {
			if batch == nil {
				batch = newBatch()
			}
			batch.states = append(batch.states, co.items[i].sent)
		}
	}
	if batch == nil {
		return
	}
	cy.send([]string{sub.dest}, batch)
}

// detach removes sub from its cohort; the last member retires the
// cohort, and the last cohort retires the cycle.
func (e *scanEngine) detach(sub *Subscription) {
	cy, co := sub.cycle, sub.cohort
	if cy == nil || co == nil {
		return
	}
	cy.mu.Lock()
	for i, m := range co.members {
		if m == sub {
			co.members = append(co.members[:i], co.members[i+1:]...)
			co.dests = append(co.dests[:i], co.dests[i+1:]...)
			break
		}
	}
	empty := len(co.members) == 0
	if empty {
		list := cy.cohorts[co.key]
		for i, cand := range list {
			if cand == co {
				list = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(cy.cohorts, co.key)
		} else {
			cy.cohorts[co.key] = list
		}
	} else if len(sub.overrides) > 0 {
		// A departing override-holder may have been the member pinning an
		// effective deadband below base; recompute from scratch (rare).
		for i := range co.effective {
			co.effective[i] = co.deadband
		}
		for _, m := range co.members {
			for tag, db := range m.overrides {
				if i := sort.SearchStrings(co.tags, tag); i < len(co.tags) && co.tags[i] == tag {
					if db < co.effective[i] {
						co.effective[i] = db
					}
				}
			}
		}
	}
	cycleEmpty := len(cy.cohorts) == 0
	cy.mu.Unlock()
	sub.cycle, sub.cohort = nil, nil
	if empty && cycleEmpty {
		e.dropCycleIfEmpty(cy)
	}
}

// requeue re-homes a subscription whose item set or overrides changed:
// detach from the old cohort, attach to a matching (possibly new) one.
func (e *scanEngine) requeue(sub *Subscription) error {
	e.detach(sub)
	return e.attach(sub)
}

// refresh queues the cohort's already-sent states to one member
// (IOPCAsyncIO::Refresh semantics for the new API).
func (e *scanEngine) refresh(sub *Subscription) {
	cy, co := sub.cycle, sub.cohort
	if cy == nil || co == nil {
		return
	}
	cy.mu.Lock()
	if !cy.stopped {
		cy.snapshotToLocked(co, sub)
	}
	cy.mu.Unlock()
}

func equalTags(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package opc

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dcom"
)

// RemoteMethods is the wire method set an OPC server exports over DCOM.
// The stub and the proxy below are the hand-written equivalents of the
// generated proxy/stub pair Section 3.3 of the paper complains about.

// ServerStub adapts a *Server for dcom export.
type ServerStub struct {
	s *Server
}

// NewServerStub wraps a server for export.
func NewServerStub(s *Server) *ServerStub { return &ServerStub{s: s} }

// Read services remote sync reads.
func (st *ServerStub) Read(tags []string) ([]ItemState, error) { return st.s.Read(tags) }

// Write services remote sync writes.
func (st *ServerStub) Write(tag string, v Variant) error { return st.s.Write(tag, v) }

// Browse services remote namespace browsing.
func (st *ServerStub) Browse(prefix string) ([]string, error) { return st.s.Browse(prefix) }

// Status services remote GetStatus.
func (st *ServerStub) Status() (ServerStatus, error) { return st.s.Status() }

// BrowseHierarchy services remote tree browsing.
func (st *ServerStub) BrowseHierarchy(position string, bt int) ([]string, error) {
	return st.s.BrowseHierarchy(position, BrowseType(bt))
}

// ItemProperties services remote property queries.
func (st *ServerStub) ItemProperties(tag string) ([]ItemProperty, error) {
	return st.s.ItemProperties(tag)
}

// ExportServer publishes a server on a dcom exporter under oid.
func ExportServer(exp *dcom.Exporter, oid dcom.ObjectID, s *Server) error {
	return exp.Export(oid, NewServerStub(s))
}

// RemoteConnection is the client-side DCOM proxy implementing Connection.
type RemoteConnection struct {
	client *dcom.Client
	proxy  *dcom.Proxy
}

var _ Connection = (*RemoteConnection)(nil)

// NewRemoteConnection wraps a dcom client/OID pair.
func NewRemoteConnection(client *dcom.Client, oid dcom.ObjectID) *RemoteConnection {
	return &RemoteConnection{client: client, proxy: client.Object(oid)}
}

// Read implements Connection over the wire.
func (r *RemoteConnection) Read(tags []string) ([]ItemState, error) {
	var out []ItemState
	if err := r.proxy.Call("Read", []any{&out}, tags); err != nil {
		return nil, mapRemoteErr(err)
	}
	return out, nil
}

// Write implements Connection over the wire.
func (r *RemoteConnection) Write(tag string, v Variant) error {
	return mapRemoteErr(r.proxy.Call("Write", nil, tag, v))
}

// Browse implements Connection over the wire.
func (r *RemoteConnection) Browse(prefix string) ([]string, error) {
	var out []string
	if err := r.proxy.Call("Browse", []any{&out}, prefix); err != nil {
		return nil, mapRemoteErr(err)
	}
	return out, nil
}

// Status implements Connection over the wire.
func (r *RemoteConnection) Status() (ServerStatus, error) {
	var out ServerStatus
	if err := r.proxy.Call("Status", []any{&out}); err != nil {
		return ServerStatus{}, mapRemoteErr(err)
	}
	return out, nil
}

// BrowseHierarchy implements tree browsing over the wire.
func (r *RemoteConnection) BrowseHierarchy(position string, bt BrowseType) ([]string, error) {
	var out []string
	if err := r.proxy.Call("BrowseHierarchy", []any{&out}, position, int(bt)); err != nil {
		return nil, mapRemoteErr(err)
	}
	return out, nil
}

// ItemProperties implements property queries over the wire.
func (r *RemoteConnection) ItemProperties(tag string) ([]ItemProperty, error) {
	var out []ItemProperty
	if err := r.proxy.Call("ItemProperties", []any{&out}, tag); err != nil {
		return nil, mapRemoteErr(err)
	}
	return out, nil
}

// Broken reports whether the underlying RPC channel is poisoned.
func (r *RemoteConnection) Broken() bool { return r.client.Broken() }

// Redial re-establishes the RPC channel after a server restart or
// switchover — the recovery DCOM itself lacks.
func (r *RemoteConnection) Redial() error { return r.client.Redial() }

// mapRemoteErr converts wire-level application errors back into this
// package's sentinel errors so callers can errors.Is on them through DCOM.
func mapRemoteErr(err error) error {
	if err == nil {
		return nil
	}
	var re *dcom.RemoteError
	if errors.As(err, &re) {
		for _, sentinel := range []error{ErrUnknownItem, ErrAccessDenied, ErrServerDown, ErrBadTag} {
			if matchSentinel(re.Msg, sentinel) {
				return fmt.Errorf("%w (remote): %s", sentinel, re.Msg)
			}
		}
	}
	return err
}

func matchSentinel(msg string, sentinel error) bool {
	return strings.Contains(msg, sentinel.Error())
}

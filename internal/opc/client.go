package opc

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Connection is what an OPC client talks to: either a local server (same
// process, COM) or a remote one (DCOM proxy). Both expose the OPC DA call
// surface.
type Connection interface {
	Read(tags []string) ([]ItemState, error)
	Write(tag string, value Variant) error
	Browse(prefix string) ([]string, error)
	Status() (ServerStatus, error)
}

var _ Connection = (*Server)(nil)

// DataChangeFunc receives async update batches (IOPCDataCallback analog).
type DataChangeFunc func(updates []ItemState)

// Client is an OPC client: it owns subscriptions (and legacy groups)
// over one server connection.
type Client struct {
	conn Connection

	mu     sync.Mutex
	groups map[string]*Group
	subs   map[string]*Subscription // dest -> sub, for Close
	eng    *scanEngine              // client-owned when conn is remote
	closed bool
}

// NewClient wraps a connection.
func NewClient(conn Connection) *Client {
	return &Client{
		conn:   conn,
		groups: make(map[string]*Group),
		subs:   make(map[string]*Subscription),
	}
}

// SyncRead reads tags synchronously, bypassing subscriptions.
func (c *Client) SyncRead(tags ...string) ([]ItemState, error) {
	return c.conn.Read(tags)
}

// SyncWrite writes one tag synchronously.
func (c *Client) SyncWrite(tag string, v Variant) error {
	return c.conn.Write(tag, v)
}

// Browse lists server tags under a prefix.
func (c *Client) Browse(prefix string) ([]string, error) {
	return c.conn.Browse(prefix)
}

// ServerStatus fetches the server status block.
func (c *Client) ServerStatus() (ServerStatus, error) {
	return c.conn.Status()
}

// engine resolves the scan engine serving this client's subscriptions:
// the server's own engine for in-process connections (so co-located
// clients share cycles and cohorts), or a client-owned engine that
// sweeps with batched remote reads otherwise.
func (c *Client) engine() (*scanEngine, error) {
	if srv, ok := c.conn.(*Server); ok {
		return srv.engine(), nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.eng == nil {
		c.eng = newScanEngine(nil, c.conn)
	}
	return c.eng, nil
}

// Subscribe creates a data subscription: cfg.Tags scanned every
// cfg.UpdateRate on a shared cycle, changes beyond cfg.DeadbandPC
// delivered as batches — to cfg.OnChange when set, else on
// Subscription.Updates(). Closing ctx closes the subscription;
// context.Background() (or nil) leaves lifetime to Close.
func (c *Client) Subscribe(ctx context.Context, cfg SubscriptionConfig) (*Subscription, error) {
	eng, err := c.engine()
	if err != nil {
		return nil, err
	}
	sub, err := newSubscription(eng, ctx, cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		sub.Close()
		return nil, ErrClosed
	}
	c.subs[sub.dest] = sub
	c.mu.Unlock()
	return sub, nil
}

// GroupConfig parameterizes AddGroup.
//
// Deprecated: use SubscriptionConfig with Client.Subscribe.
type GroupConfig struct {
	Name       string
	UpdateRate time.Duration // scan period; default 100ms
	DeadbandPC float64       // percent deadband on numeric items, 0-100
	Active     bool          // start scanning immediately
}

// AddGroup creates a client group (IOPCServer::AddGroup).
//
// Deprecated: AddGroup remains for one release as a thin wrapper over
// Subscribe. A Group is a named, stoppable handle on a subscription; new
// code should call Client.Subscribe and hold the *Subscription directly.
func (c *Client) AddGroup(cfg GroupConfig, onChange DataChangeFunc) (*Group, error) {
	cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: client", ErrClosed)
	}
	if _, dup := c.groups[cfg.Name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q already exists", ErrDuplicateGroup, cfg.Name)
	}
	g := &Group{client: c, cfg: cfg, onChange: onChange}
	c.groups[cfg.Name] = g
	c.mu.Unlock()
	if cfg.Active {
		g.Start()
	}
	return g, nil
}

// RemoveGroup stops and deletes a group.
func (c *Client) RemoveGroup(name string) error {
	c.mu.Lock()
	g, ok := c.groups[name]
	if ok {
		delete(c.groups, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("opc: no group %q", name)
	}
	g.Stop()
	return nil
}

// Close stops every subscription and group; a client-owned scan engine
// (remote connections) is shut down with them.
func (c *Client) Close() {
	c.mu.Lock()
	groups := make([]*Group, 0, len(c.groups))
	for _, g := range c.groups {
		groups = append(groups, g)
	}
	subs := make([]*Subscription, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.groups = make(map[string]*Group)
	c.subs = make(map[string]*Subscription)
	eng := c.eng
	c.eng = nil
	c.closed = true
	c.mu.Unlock()
	for _, g := range groups {
		g.Stop()
	}
	for _, s := range subs {
		s.Close()
	}
	if eng != nil {
		eng.close()
	}
}

// Group is the legacy OPC DA group object: a named, stoppable handle
// over one subscription. Start materializes the subscription; Stop
// closes it (retaining the item set for the next Start).
//
// Deprecated: hold a *Subscription from Client.Subscribe instead.
type Group struct {
	client *Client
	cfg    GroupConfig

	mu       sync.Mutex
	onChange DataChangeFunc
	tags     []string
	sub      *Subscription
	scans    int64 // accumulated across Start/Stop cycles
	errs     int64
}

// Name returns the group name.
func (g *Group) Name() string { return g.cfg.Name }

// AddItems registers tags with the group.
func (g *Group) AddItems(tags ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tags = append(g.tags, tags...)
	if g.sub != nil {
		_ = g.sub.AddItems(tags...)
	}
}

// RemoveItems drops tags from the group.
func (g *Group) RemoveItems(tags ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	drop := make(map[string]bool, len(tags))
	for _, t := range tags {
		drop[t] = true
	}
	kept := g.tags[:0]
	for _, t := range g.tags {
		if !drop[t] {
			kept = append(kept, t)
		}
	}
	g.tags = kept
	if g.sub != nil {
		_ = g.sub.RemoveItems(tags...)
	}
}

// Start begins scanning (SetActive(true)).
func (g *Group) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	_ = g.startLocked()
}

func (g *Group) startLocked() error {
	if g.sub != nil {
		return nil
	}
	eng, err := g.client.engine()
	if err != nil {
		return err
	}
	cb := func(updates []ItemState) {
		g.mu.Lock()
		fn := g.onChange
		g.mu.Unlock()
		if fn != nil {
			fn(updates)
		}
	}
	sub, err := newSubscription(eng, nil, SubscriptionConfig{
		Name:       "group:" + g.cfg.Name,
		UpdateRate: g.cfg.UpdateRate,
		DeadbandPC: g.cfg.DeadbandPC,
		OnChange:   cb,
		Tags:       g.tags,
	})
	if err != nil {
		return err
	}
	g.sub = sub
	return nil
}

// Stop halts scanning (SetActive(false)); queued deliveries drain before
// it returns, so no callback fires after Stop.
func (g *Group) Stop() {
	g.mu.Lock()
	sub := g.sub
	g.sub = nil
	if sub != nil {
		s, e := sub.Stats()
		g.scans += s
		g.errs += e
	}
	g.mu.Unlock()
	if sub != nil {
		sub.Close()
	}
}

// Active reports whether the group is scanning.
func (g *Group) Active() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sub != nil
}

// Stats reports (scans completed, scan errors), cumulative across
// Start/Stop cycles.
func (g *Group) Stats() (scans, errs int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	scans, errs = g.scans, g.errs
	if g.sub != nil {
		s, e := g.sub.Stats()
		scans += s
		errs += e
	}
	return scans, errs
}

// ForceRefresh resends every item on the next change check
// (IOPCAsyncIO::Refresh).
func (g *Group) ForceRefresh() {
	g.mu.Lock()
	sub := g.sub
	g.mu.Unlock()
	if sub != nil {
		_ = sub.Refresh()
	}
}

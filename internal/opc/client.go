package opc

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Connection is what an OPC client talks to: either a local server (same
// process, COM) or a remote one (DCOM proxy). Both expose the OPC DA call
// surface.
type Connection interface {
	Read(tags []string) ([]ItemState, error)
	Write(tag string, value Variant) error
	Browse(prefix string) ([]string, error)
	Status() (ServerStatus, error)
}

var _ Connection = (*Server)(nil)

// DataChangeFunc receives async update batches (IOPCDataCallback analog).
type DataChangeFunc func(updates []ItemState)

// Client is an OPC client: it owns groups over one server connection.
type Client struct {
	conn Connection

	mu     sync.Mutex
	groups map[string]*Group
	closed bool
}

// NewClient wraps a connection.
func NewClient(conn Connection) *Client {
	return &Client{conn: conn, groups: make(map[string]*Group)}
}

// SyncRead reads tags synchronously, bypassing groups.
func (c *Client) SyncRead(tags ...string) ([]ItemState, error) {
	return c.conn.Read(tags)
}

// SyncWrite writes one tag synchronously.
func (c *Client) SyncWrite(tag string, v Variant) error {
	return c.conn.Write(tag, v)
}

// Browse lists server tags under a prefix.
func (c *Client) Browse(prefix string) ([]string, error) {
	return c.conn.Browse(prefix)
}

// ServerStatus fetches the server status block.
func (c *Client) ServerStatus() (ServerStatus, error) {
	return c.conn.Status()
}

// GroupConfig parameterizes AddGroup.
type GroupConfig struct {
	Name       string
	UpdateRate time.Duration // scan period; default 100ms
	DeadbandPC float64       // percent deadband on numeric items, 0-100
	Active     bool          // start scanning immediately
}

// AddGroup creates a client group (IOPCServer::AddGroup).
func (c *Client) AddGroup(cfg GroupConfig, onChange DataChangeFunc) (*Group, error) {
	if cfg.Name == "" {
		return nil, errors.New("opc: group needs a name")
	}
	if cfg.UpdateRate <= 0 {
		cfg.UpdateRate = 100 * time.Millisecond
	}
	if cfg.DeadbandPC < 0 || cfg.DeadbandPC > 100 {
		return nil, fmt.Errorf("opc: deadband %v%% out of range", cfg.DeadbandPC)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("opc: client closed")
	}
	if _, dup := c.groups[cfg.Name]; dup {
		return nil, fmt.Errorf("opc: group %q already exists", cfg.Name)
	}
	g := &Group{
		client:   c,
		cfg:      cfg,
		onChange: onChange,
		lastSent: make(map[string]ItemState),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.groups[cfg.Name] = g
	if cfg.Active {
		g.startLocked()
	} else {
		close(g.done) // nothing running yet
	}
	return g, nil
}

// RemoveGroup stops and deletes a group.
func (c *Client) RemoveGroup(name string) error {
	c.mu.Lock()
	g, ok := c.groups[name]
	if ok {
		delete(c.groups, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("opc: no group %q", name)
	}
	g.Stop()
	return nil
}

// Close stops every group.
func (c *Client) Close() {
	c.mu.Lock()
	groups := make([]*Group, 0, len(c.groups))
	for _, g := range c.groups {
		groups = append(groups, g)
	}
	c.groups = make(map[string]*Group)
	c.closed = true
	c.mu.Unlock()
	for _, g := range groups {
		g.Stop()
	}
}

// Group is a set of items scanned at one rate with one deadband — the OPC
// DA group object. Async updates are produced by comparing scans against
// the last values sent to the callback.
type Group struct {
	client   *Client
	cfg      GroupConfig
	onChange DataChangeFunc

	mu       sync.Mutex
	tags     []string
	lastSent map[string]ItemState
	active   bool
	scans    int64
	errs     int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// Name returns the group name.
func (g *Group) Name() string { return g.cfg.Name }

// AddItems registers tags with the group.
func (g *Group) AddItems(tags ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tags = append(g.tags, tags...)
}

// RemoveItems drops tags from the group.
func (g *Group) RemoveItems(tags ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	drop := make(map[string]bool, len(tags))
	for _, t := range tags {
		drop[t] = true
	}
	kept := g.tags[:0]
	for _, t := range g.tags {
		if !drop[t] {
			kept = append(kept, t)
		} else {
			delete(g.lastSent, t)
		}
	}
	g.tags = kept
}

// Start begins scanning (SetActive(true)).
func (g *Group) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.startLocked()
}

func (g *Group) startLocked() {
	if g.active {
		return
	}
	g.active = true
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	g.once = sync.Once{}
	go g.scanLoop(g.stop, g.done)
}

func (g *Group) scanLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(g.cfg.UpdateRate)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.scanOnce()
		case <-stop:
			return
		}
	}
}

// scanOnce reads the group's tags and fires the callback with items that
// changed beyond the deadband.
func (g *Group) scanOnce() {
	g.mu.Lock()
	tags := append([]string(nil), g.tags...)
	g.mu.Unlock()
	if len(tags) == 0 {
		return
	}

	states, err := g.client.conn.Read(tags)
	if err != nil {
		g.mu.Lock()
		g.errs++
		g.mu.Unlock()
		return
	}

	var updates []ItemState
	g.mu.Lock()
	g.scans++
	for _, st := range states {
		prev, seen := g.lastSent[st.Tag]
		if seen && !g.exceedsDeadband(prev, st) {
			continue
		}
		g.lastSent[st.Tag] = st
		updates = append(updates, st)
	}
	cb := g.onChange
	g.mu.Unlock()

	if len(updates) > 0 && cb != nil {
		cb(updates)
	}
}

// exceedsDeadband applies OPC percent-deadband semantics: numeric items
// suppress changes smaller than DeadbandPC% of the previous value's
// magnitude; quality changes and non-numeric changes always pass.
func (g *Group) exceedsDeadband(prev, next ItemState) bool {
	if prev.Quality != next.Quality {
		return true
	}
	if g.cfg.DeadbandPC == 0 {
		return !prev.Value.Equal(next.Value)
	}
	if !prev.Value.IsNumeric() || !next.Value.IsNumeric() {
		return !prev.Value.Equal(next.Value)
	}
	pf, err1 := prev.Value.AsFloat()
	nf, err2 := next.Value.AsFloat()
	if err1 != nil || err2 != nil {
		return true
	}
	span := math.Abs(pf)
	if span == 0 {
		return nf != 0
	}
	return math.Abs(nf-pf) > span*g.cfg.DeadbandPC/100
}

// Stop halts scanning (SetActive(false)) and waits for the scanner.
func (g *Group) Stop() {
	g.mu.Lock()
	if !g.active {
		g.mu.Unlock()
		return
	}
	g.active = false
	stop, done := g.stop, g.done
	g.mu.Unlock()
	g.once.Do(func() { close(stop) })
	<-done
}

// Active reports whether the group is scanning.
func (g *Group) Active() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active
}

// Stats reports (scans completed, scan errors).
func (g *Group) Stats() (scans, errs int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.scans, g.errs
}

// ForceRefresh resends every item on the next change check by clearing the
// last-sent cache (IOPCAsyncIO::Refresh).
func (g *Group) ForceRefresh() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lastSent = make(map[string]ItemState)
}

package opc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/netsim"
)

func TestSyncReadWrite(t *testing.T) {
	s := newPlantServer(t)
	c := NewClient(s)
	defer c.Close()

	_ = s.SetValue("plc1.temp", VR8(19.0), GoodNonSpecific, time.Now())
	states, err := c.SyncRead("plc1.temp")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := states[0].Value.AsFloat(); f != 19.0 {
		t.Fatalf("read %v", f)
	}
	if err := c.SyncWrite("plc1.valve", VBool(true)); err != nil {
		t.Fatal(err)
	}
	states, _ = c.SyncRead("plc1.valve")
	if b, _ := states[0].Value.AsBool(); !b {
		t.Fatal("write not visible")
	}
}

func TestGroupDataChange(t *testing.T) {
	s := newPlantServer(t)
	c := NewClient(s)
	defer c.Close()

	var mu sync.Mutex
	var updates []ItemState
	g, err := c.AddGroup(GroupConfig{
		Name:       "fast",
		UpdateRate: 10 * time.Millisecond,
		Active:     true,
	}, func(batch []ItemState) {
		mu.Lock()
		updates = append(updates, batch...)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	g.AddItems("plc1.temp")

	_ = s.SetValue("plc1.temp", VR8(20), GoodNonSpecific, time.Now())
	time.Sleep(50 * time.Millisecond)
	_ = s.SetValue("plc1.temp", VR8(21), GoodNonSpecific, time.Now())
	time.Sleep(50 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(updates) < 2 {
		t.Fatalf("got %d updates, want >=2 (initial + change)", len(updates))
	}
	last := updates[len(updates)-1]
	if f, _ := last.Value.AsFloat(); f != 21 {
		t.Fatalf("last update %v", f)
	}
}

func TestGroupNoSpuriousUpdates(t *testing.T) {
	s := newPlantServer(t)
	c := NewClient(s)
	defer c.Close()

	var count sync.Map
	total := 0
	var mu sync.Mutex
	g, _ := c.AddGroup(GroupConfig{Name: "g", UpdateRate: 5 * time.Millisecond, Active: true},
		func(batch []ItemState) {
			mu.Lock()
			total += len(batch)
			mu.Unlock()
			for _, b := range batch {
				count.Store(b.Tag, b)
			}
		})
	g.AddItems("plc1.temp")
	_ = s.SetValue("plc1.temp", VR8(20), GoodNonSpecific, time.Now())
	time.Sleep(100 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	// One initial snapshot + one change = at most 2 (value stayed constant).
	if total > 2 {
		t.Fatalf("%d updates for a constant value", total)
	}
}

func TestGroupDeadband(t *testing.T) {
	s := newPlantServer(t)
	c := NewClient(s)
	defer c.Close()

	var mu sync.Mutex
	var got []float64
	g, _ := c.AddGroup(GroupConfig{
		Name:       "db",
		UpdateRate: 5 * time.Millisecond,
		DeadbandPC: 10, // suppress <10% moves
		Active:     true,
	}, func(batch []ItemState) {
		mu.Lock()
		for _, b := range batch {
			f, _ := b.Value.AsFloat()
			got = append(got, f)
		}
		mu.Unlock()
	})
	g.AddItems("plc1.temp")

	_ = s.SetValue("plc1.temp", VR8(100), GoodNonSpecific, time.Now())
	time.Sleep(30 * time.Millisecond)
	_ = s.SetValue("plc1.temp", VR8(104), GoodNonSpecific, time.Now()) // +4%: suppressed
	time.Sleep(30 * time.Millisecond)
	_ = s.SetValue("plc1.temp", VR8(120), GoodNonSpecific, time.Now()) // +20%: passes
	time.Sleep(30 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	for _, f := range got {
		if f == 104 {
			t.Fatalf("deadband failed to suppress 4%% move: %v", got)
		}
	}
	if len(got) == 0 || got[len(got)-1] != 120 {
		t.Fatalf("20%% move suppressed: %v", got)
	}
}

func TestGroupQualityChangeBypassesDeadband(t *testing.T) {
	s := newPlantServer(t)
	c := NewClient(s)
	defer c.Close()

	var mu sync.Mutex
	var quals []Quality
	g, _ := c.AddGroup(GroupConfig{Name: "q", UpdateRate: 5 * time.Millisecond,
		DeadbandPC: 50, Active: true},
		func(batch []ItemState) {
			mu.Lock()
			for _, b := range batch {
				quals = append(quals, b.Quality)
			}
			mu.Unlock()
		})
	g.AddItems("plc1.temp")
	_ = s.SetValue("plc1.temp", VR8(100), GoodNonSpecific, time.Now())
	time.Sleep(30 * time.Millisecond)
	// Same value, quality goes bad: must pass the deadband.
	_ = s.SetValue("plc1.temp", VR8(100), BadCommFailure, time.Now())
	time.Sleep(30 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	sawBad := false
	for _, q := range quals {
		if q == BadCommFailure {
			sawBad = true
		}
	}
	if !sawBad {
		t.Fatalf("quality transition suppressed: %v", quals)
	}
}

func TestGroupStartStop(t *testing.T) {
	s := newPlantServer(t)
	c := NewClient(s)
	defer c.Close()

	var count int
	var mu sync.Mutex
	g, _ := c.AddGroup(GroupConfig{Name: "g", UpdateRate: 5 * time.Millisecond},
		func(batch []ItemState) {
			mu.Lock()
			count += len(batch)
			mu.Unlock()
		})
	g.AddItems("plc1.temp")
	if g.Active() {
		t.Fatal("group active before Start")
	}
	_ = s.SetValue("plc1.temp", VR8(1), GoodNonSpecific, time.Now())
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	if count != 0 {
		mu.Unlock()
		t.Fatal("inactive group delivered updates")
	}
	mu.Unlock()

	g.Start()
	time.Sleep(30 * time.Millisecond)
	g.Stop()
	mu.Lock()
	after := count
	mu.Unlock()
	if after == 0 {
		t.Fatal("active group delivered nothing")
	}
	_ = s.SetValue("plc1.temp", VR8(2), GoodNonSpecific, time.Now())
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != after {
		t.Fatal("stopped group delivered updates")
	}
}

func TestGroupValidation(t *testing.T) {
	c := NewClient(newPlantServer(t))
	defer c.Close()
	if _, err := c.AddGroup(GroupConfig{Name: ""}, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.AddGroup(GroupConfig{Name: "x", DeadbandPC: 101}, nil); err == nil {
		t.Fatal("deadband 101% accepted")
	}
	if _, err := c.AddGroup(GroupConfig{Name: "ok"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGroup(GroupConfig{Name: "ok"}, nil); err == nil {
		t.Fatal("duplicate group accepted")
	}
	if err := c.RemoveGroup("ok"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveGroup("ok"); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestGroupForceRefresh(t *testing.T) {
	s := newPlantServer(t)
	c := NewClient(s)
	defer c.Close()

	var mu sync.Mutex
	count := 0
	g, _ := c.AddGroup(GroupConfig{Name: "g", UpdateRate: 5 * time.Millisecond, Active: true},
		func(batch []ItemState) {
			mu.Lock()
			count += len(batch)
			mu.Unlock()
		})
	g.AddItems("plc1.temp")
	_ = s.SetValue("plc1.temp", VR8(5), GoodNonSpecific, time.Now())
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	before := count
	mu.Unlock()
	g.ForceRefresh()
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count <= before {
		t.Fatal("ForceRefresh did not resend")
	}
}

func TestRemoteConnectionEndToEnd(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, err := dcom.NewExporter(n, "server:opc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	s := newPlantServer(t)
	oid := com.NewGUID()
	if err := ExportServer(exp, oid, s); err != nil {
		t.Fatal(err)
	}
	cli, err := dcom.Dial(n, "client:opc", "server:opc")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	conn := NewRemoteConnection(cli, oid)
	c := NewClient(conn)
	defer c.Close()

	_ = s.SetValue("plc1.temp", VR8(33), GoodNonSpecific, time.Now())
	states, err := c.SyncRead("plc1.temp")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := states[0].Value.AsFloat(); f != 33 {
		t.Fatalf("remote read %v", f)
	}

	if err := c.SyncWrite("plc1.valve", VBool(true)); err != nil {
		t.Fatal(err)
	}
	tags, err := c.Browse("plc1.")
	if err != nil || len(tags) != 3 {
		t.Fatalf("remote browse: %v %v", tags, err)
	}
	st, err := c.ServerStatus()
	if err != nil || st.Name != "Plant.OPC.1" {
		t.Fatalf("remote status: %+v %v", st, err)
	}

	// Sentinel errors survive the wire.
	if _, err := c.SyncRead("nope"); !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("remote unknown item: %v", err)
	}
	if err := c.SyncWrite("plc1.temp", VR8(1)); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("remote access denied: %v", err)
	}
}

func TestRemoteConnectionFailureAndRedial(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, err := dcom.NewExporter(n, "server:opc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	s := newPlantServer(t)
	oid := com.NewGUID()
	_ = ExportServer(exp, oid, s)

	cli, err := dcom.Dial(n, "client:opc", "server:opc")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	conn := NewRemoteConnection(cli, oid)

	n.FailEndpoint("server:opc")
	if _, err := conn.Read([]string{"plc1.temp"}); !errors.Is(err, dcom.ErrRPCFailure) {
		t.Fatalf("got %v", err)
	}
	if !conn.Broken() {
		t.Fatal("connection should be broken")
	}
	// The dead server's listener died with it; a restarted server re-binds
	// and re-exports before the client can redial.
	n.RestoreEndpoint("server:opc")
	exp2, err := dcom.NewExporter(n, "server:opc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	if err := ExportServer(exp2, oid, s); err != nil {
		t.Fatal(err)
	}
	if err := conn.Redial(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read([]string{"plc1.temp"}); err != nil {
		t.Fatalf("read after redial: %v", err)
	}
}

func TestGroupOverRemoteConnection(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, _ := dcom.NewExporter(n, "server:opc")
	defer exp.Close()
	s := newPlantServer(t)
	oid := com.NewGUID()
	_ = ExportServer(exp, oid, s)
	cli, _ := dcom.Dial(n, "client:opc", "server:opc")
	defer cli.Close()
	c := NewClient(NewRemoteConnection(cli, oid))
	defer c.Close()

	got := make(chan float64, 16)
	g, _ := c.AddGroup(GroupConfig{Name: "g", UpdateRate: 10 * time.Millisecond, Active: true},
		func(batch []ItemState) {
			for _, b := range batch {
				if f, err := b.Value.AsFloat(); err == nil {
					got <- f
				}
			}
		})
	g.AddItems("plc1.temp")
	_ = s.SetValue("plc1.temp", VR8(55), GoodNonSpecific, time.Now())
	select {
	case f := <-got:
		if f != 55 {
			t.Fatalf("remote group update %v", f)
		}
	case <-time.After(time.Second):
		t.Fatal("remote group never updated")
	}
}

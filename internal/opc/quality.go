package opc

import "fmt"

// Quality is the OPC DA 16-bit quality word: QQ SSSS LL (quality bits,
// substatus, limit bits) in the low byte, vendor bits in the high byte.
type Quality uint16

// Major quality fields (bits 7-6).
const (
	qualityMask Quality = 0xC0

	// QualityBad: the value is not useful.
	QualityBad Quality = 0x00
	// QualityUncertain: the value may be stale or degraded.
	QualityUncertain Quality = 0x40
	// QualityGood: the value is trustworthy.
	QualityGood Quality = 0xC0
)

// Common full quality words (major + substatus), as in the OPC DA spec.
const (
	// BadNonSpecific is plain bad quality.
	BadNonSpecific Quality = 0x00
	// BadConfigError: the item is misconfigured.
	BadConfigError Quality = 0x04
	// BadNotConnected: no path to the device.
	BadNotConnected Quality = 0x08
	// BadDeviceFailure: the device itself failed.
	BadDeviceFailure Quality = 0x0C
	// BadCommFailure: communication to the device failed.
	BadCommFailure Quality = 0x18
	// BadOutOfService: the item is disabled.
	BadOutOfService Quality = 0x1C

	// UncertainNonSpecific is plain uncertain quality.
	UncertainNonSpecific Quality = 0x40
	// UncertainLastUsable: the value is stale but was once good.
	UncertainLastUsable Quality = 0x44
	// UncertainSensorNotAccurate: reading outside calibrated range.
	UncertainSensorNotAccurate Quality = 0x50

	// GoodNonSpecific is plain good quality.
	GoodNonSpecific Quality = 0xC0
	// GoodLocalOverride: an operator forced the value.
	GoodLocalOverride Quality = 0xD8
)

// Major returns the 2-bit quality field.
func (q Quality) Major() Quality { return q & qualityMask }

// IsGood reports whether the value is trustworthy.
func (q Quality) IsGood() bool { return q.Major() == QualityGood }

// IsBad reports whether the value is unusable.
func (q Quality) IsBad() bool { return q.Major() == QualityBad }

// IsUncertain reports whether the value is degraded.
func (q Quality) IsUncertain() bool { return q.Major() == QualityUncertain }

// String renders the quality word.
func (q Quality) String() string {
	var major string
	switch q.Major() {
	case QualityGood:
		major = "GOOD"
	case QualityUncertain:
		major = "UNCERTAIN"
	case QualityBad:
		major = "BAD"
	default:
		major = "INVALID"
	}
	switch q {
	case BadNotConnected:
		return "BAD(not connected)"
	case BadDeviceFailure:
		return "BAD(device failure)"
	case BadCommFailure:
		return "BAD(comm failure)"
	case BadOutOfService:
		return "BAD(out of service)"
	case BadConfigError:
		return "BAD(config error)"
	case UncertainLastUsable:
		return "UNCERTAIN(last usable)"
	case UncertainSensorNotAccurate:
		return "UNCERTAIN(sensor)"
	case GoodLocalOverride:
		return "GOOD(local override)"
	case GoodNonSpecific, UncertainNonSpecific, BadNonSpecific:
		return major
	default:
		return fmt.Sprintf("%s(0x%02x)", major, uint16(q))
	}
}

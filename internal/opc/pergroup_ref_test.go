package opc

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// This file preserves the pre-shared-cycle data plane verbatim as a
// test-only baseline, following the singlepump (diverter) and oneconn
// (dcom) playbook: refServer is the old monolithic-mutex server trimmed
// to the paths the scanner exercises (SetValue/Read), and refGroup is
// the old per-group scanner — one goroutine per group, deadband
// evaluated per subscriber — exactly as it shipped. BenchmarkOPCFanout
// runs the same workload against both data planes; the Makefile
// bench-opc target gates the ratio.

// refServer is the old server: one RWMutex over a flat item map, reads
// take the exclusive lock (readCount mutates under it, as the original
// did), so concurrent group scans serialize.
type refServer struct {
	mu         sync.Mutex
	items      map[string]*refItem
	state      ServerState
	readCount  int64
	lastUpdate time.Time
}

type refItem struct {
	def   ItemDef
	state ItemState
}

// newRefServer builds the namespace by direct map construction: the old
// AddItem re-sorted a global tag slice per insert, which is unusably
// slow at bench scale and irrelevant to the scan paths under test.
func newRefServer(defs []ItemDef) *refServer {
	s := &refServer{items: make(map[string]*refItem, len(defs)), state: ServerRunning}
	now := time.Now()
	for _, def := range defs {
		if def.Rights == 0 {
			def.Rights = AccessRead
		}
		if def.CanonicalType == 0 {
			def.CanonicalType = VTFloat64
		}
		s.items[def.Tag] = &refItem{
			def: def,
			state: ItemState{
				Tag:       def.Tag,
				Value:     Empty(),
				Quality:   BadNotConnected,
				Timestamp: now,
			},
		}
	}
	return s
}

// SetValue is the old device-driver publish path.
func (s *refServer) SetValue(tag string, v Variant, q Quality, ts time.Time) error {
	s.mu.Lock()
	it, ok := s.items[tag]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownItem, tag)
	}
	coerced, err := v.CoerceTo(it.def.CanonicalType)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if ts.IsZero() {
		ts = time.Now()
	}
	it.state = ItemState{Tag: tag, Value: coerced, Quality: q, Timestamp: ts}
	s.lastUpdate = ts
	s.mu.Unlock()
	return nil
}

// Read is the old synchronous read: the whole call under the exclusive
// lock (readCount++ needs it), copying each requested state out.
func (s *refServer) Read(tags []string) ([]ItemState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != ServerRunning {
		return nil, ErrServerDown
	}
	out := make([]ItemState, 0, len(tags))
	for _, tag := range tags {
		it, ok := s.items[tag]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownItem, tag)
		}
		if it.def.Rights&AccessRead == 0 {
			return nil, fmt.Errorf("%w: read %q", ErrAccessDenied, tag)
		}
		out = append(out, it.state)
	}
	s.readCount++
	return out, nil
}

func (s *refServer) Write(tag string, v Variant) error { return ErrAccessDenied }
func (s *refServer) Browse(prefix string) ([]string, error) {
	return nil, ErrServerDown
}
func (s *refServer) Status() (ServerStatus, error) { return ServerStatus{}, nil }

// refGroup is the old OPC DA group scanner, verbatim: its own ticker
// goroutine, a full Read of its tag set per tick, and per-group
// last-sent/deadband state.
type refGroup struct {
	conn     Connection
	cfg      GroupConfig
	onChange DataChangeFunc

	mu       sync.Mutex
	tags     []string
	lastSent map[string]ItemState
	active   bool
	scans    int64
	errs     int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

func newRefGroup(conn Connection, cfg GroupConfig, onChange DataChangeFunc) *refGroup {
	if cfg.UpdateRate <= 0 {
		cfg.UpdateRate = 100 * time.Millisecond
	}
	g := &refGroup{
		conn:     conn,
		cfg:      cfg,
		onChange: onChange,
		lastSent: make(map[string]ItemState),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	close(g.done) // nothing running yet
	return g
}

func (g *refGroup) AddItems(tags ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tags = append(g.tags, tags...)
}

func (g *refGroup) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.active {
		return
	}
	g.active = true
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	g.once = sync.Once{}
	go g.scanLoop(g.stop, g.done)
}

func (g *refGroup) scanLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(g.cfg.UpdateRate)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.scanOnce()
		case <-stop:
			return
		}
	}
}

func (g *refGroup) scanOnce() {
	g.mu.Lock()
	tags := append([]string(nil), g.tags...)
	g.mu.Unlock()
	if len(tags) == 0 {
		return
	}

	states, err := g.conn.Read(tags)
	if err != nil {
		g.mu.Lock()
		g.errs++
		g.mu.Unlock()
		return
	}

	var updates []ItemState
	g.mu.Lock()
	g.scans++
	for _, st := range states {
		prev, seen := g.lastSent[st.Tag]
		if seen && !g.exceedsDeadband(prev, st) {
			continue
		}
		g.lastSent[st.Tag] = st
		updates = append(updates, st)
	}
	cb := g.onChange
	g.mu.Unlock()

	if len(updates) > 0 && cb != nil {
		cb(updates)
	}
}

func (g *refGroup) exceedsDeadband(prev, next ItemState) bool {
	if prev.Quality != next.Quality {
		return true
	}
	if g.cfg.DeadbandPC == 0 {
		return !prev.Value.Equal(next.Value)
	}
	if !prev.Value.IsNumeric() || !next.Value.IsNumeric() {
		return !prev.Value.Equal(next.Value)
	}
	pf, err1 := prev.Value.AsFloat()
	nf, err2 := next.Value.AsFloat()
	if err1 != nil || err2 != nil {
		return true
	}
	span := math.Abs(pf)
	if span == 0 {
		return nf != 0
	}
	return math.Abs(nf-pf) > span*g.cfg.DeadbandPC/100
}

func (g *refGroup) Stop() {
	g.mu.Lock()
	if !g.active {
		g.mu.Unlock()
		return
	}
	g.active = false
	stop, done := g.stop, g.done
	g.mu.Unlock()
	g.once.Do(func() { close(stop) })
	<-done
}

// refServer implements Connection so refGroup scans it like the old
// client did its server.
var _ Connection = (*refServer)(nil)

// TestRefBaselineStillScans sanity-checks the retained baseline: value
// changes beyond the deadband reach the callback, suppressed ones don't.
// If this fails the benchmark comparison is meaningless.
func TestRefBaselineStillScans(t *testing.T) {
	srv := newRefServer([]ItemDef{{Tag: "a.v", CanonicalType: VTFloat64}})
	if err := srv.SetValue("a.v", VR8(100), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []float64
	g := newRefGroup(srv, GroupConfig{Name: "g", UpdateRate: 5 * time.Millisecond, DeadbandPC: 10}, func(updates []ItemState) {
		mu.Lock()
		for _, u := range updates {
			got = append(got, u.Value.Float)
		}
		mu.Unlock()
	})
	g.AddItems("a.v")
	g.Start()
	defer g.Stop()

	waitRef := func(want float64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			n := len(got)
			last := float64(math.NaN())
			if n > 0 {
				last = got[n-1]
			}
			mu.Unlock()
			if last == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("baseline never delivered %v (got %v)", want, got)
	}

	waitRef(100)
	// Inside the 10% deadband: must be suppressed.
	if err := srv.SetValue("a.v", VR8(104), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	if len(got) != 1 {
		mu.Unlock()
		t.Fatalf("deadband leak in baseline: %v", got)
	}
	mu.Unlock()
	// Beyond it: must pass.
	if err := srv.SetValue("a.v", VR8(120), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitRef(120)
}

package opc

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/netsim"
)

func hierarchyServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer("Plant.OPC.1")
	for _, tag := range []string{
		"plc1.tank.level", "plc1.tank.temp", "plc1.pump.state",
		"plc2.motor.rpm", "status",
	} {
		if err := s.AddItem(ItemDef{Tag: tag, CanonicalType: VTFloat64,
			EUUnit: "u", Description: "d-" + tag}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestBrowseHierarchyBranches(t *testing.T) {
	s := hierarchyServer(t)
	root, err := s.BrowseHierarchy("", BrowseBranch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(root, []string{"plc1", "plc2"}) {
		t.Fatalf("root branches: %v", root)
	}
	sub, _ := s.BrowseHierarchy("plc1", BrowseBranch)
	if !reflect.DeepEqual(sub, []string{"pump", "tank"}) {
		t.Fatalf("plc1 branches: %v", sub)
	}
	empty, _ := s.BrowseHierarchy("plc1.tank", BrowseBranch)
	if len(empty) != 0 {
		t.Fatalf("leaf position has branches: %v", empty)
	}
}

func TestBrowseHierarchyLeaves(t *testing.T) {
	s := hierarchyServer(t)
	rootLeaves, err := s.BrowseHierarchy("", BrowseLeaf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rootLeaves, []string{"status"}) {
		t.Fatalf("root leaves: %v", rootLeaves)
	}
	tank, _ := s.BrowseHierarchy("plc1.tank", BrowseLeaf)
	if !reflect.DeepEqual(tank, []string{"plc1.tank.level", "plc1.tank.temp"}) {
		t.Fatalf("tank leaves: %v", tank)
	}
}

func TestBrowseHierarchyFlat(t *testing.T) {
	s := hierarchyServer(t)
	flat, err := s.BrowseHierarchy("plc1", BrowseFlat)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != 3 {
		t.Fatalf("flat: %v", flat)
	}
	if _, err := s.BrowseHierarchy("", BrowseType(99)); err == nil {
		t.Fatal("unknown browse type accepted")
	}
}

func TestBrowseHierarchyServerDown(t *testing.T) {
	s := hierarchyServer(t)
	s.SetState(ServerFailed)
	if _, err := s.BrowseHierarchy("", BrowseFlat); !errors.Is(err, ErrServerDown) {
		t.Fatalf("got %v", err)
	}
}

func TestItemProperties(t *testing.T) {
	s := hierarchyServer(t)
	_ = s.SetValue("plc1.tank.level", VR8(42), GoodNonSpecific, time.Now())
	props, err := s.ItemProperties("plc1.tank.level")
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]ItemProperty{}
	for _, p := range props {
		byID[p.ID] = p
	}
	if v, _ := byID[PropValue].Value.AsFloat(); v != 42 {
		t.Fatalf("PropValue: %v", byID[PropValue].Value)
	}
	if q, _ := byID[PropQuality].Value.AsInt(); Quality(q) != GoodNonSpecific {
		t.Fatalf("PropQuality: %v", byID[PropQuality].Value)
	}
	if byID[PropEUUnits].Value.Str != "u" {
		t.Fatalf("PropEUUnits: %v", byID[PropEUUnits].Value)
	}
	if byID[PropDescription].Value.Str != "d-plc1.tank.level" {
		t.Fatalf("PropDescription: %v", byID[PropDescription].Value)
	}
	if _, err := s.ItemProperties("nope"); !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("got %v", err)
	}
}

func TestAsyncReadWrite(t *testing.T) {
	s := hierarchyServer(t)
	if err := s.AddItem(ItemDef{Tag: "rw", CanonicalType: VTFloat64,
		Rights: AccessReadWrite}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(s)
	defer c.Close()

	wrote := make(chan AsyncResult, 1)
	c.AsyncWrite("rw", VR8(7), func(r AsyncResult) { wrote <- r })
	select {
	case r := <-wrote:
		if r.Err != nil || r.Tag != "rw" {
			t.Fatalf("async write: %+v", r)
		}
	case <-time.After(time.Second):
		t.Fatal("async write never completed")
	}

	read := make(chan []ItemState, 1)
	c.AsyncRead([]string{"rw"}, func(states []ItemState, err error) {
		if err == nil {
			read <- states
		}
	})
	select {
	case states := <-read:
		if f, _ := states[0].Value.AsFloat(); f != 7 {
			t.Fatalf("async read: %v", states)
		}
	case <-time.After(time.Second):
		t.Fatal("async read never completed")
	}

	// Async write failure is delivered, not swallowed.
	failed := make(chan AsyncResult, 1)
	c.AsyncWrite("plc1.tank.level", VR8(1), func(r AsyncResult) { failed <- r })
	select {
	case r := <-failed:
		if !errors.Is(r.Err, ErrAccessDenied) {
			t.Fatalf("async write to RO item: %v", r.Err)
		}
	case <-time.After(time.Second):
		t.Fatal("async failure never delivered")
	}
}

func TestHierarchyAndPropertiesOverDCOM(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, err := dcom.NewExporter(n, "server:opc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	s := hierarchyServer(t)
	oid := com.NewGUID()
	if err := ExportServer(exp, oid, s); err != nil {
		t.Fatal(err)
	}
	cli, err := dcom.Dial(n, "client:opc", "server:opc")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	c := NewClient(NewRemoteConnection(cli, oid))
	defer c.Close()

	branches, err := c.BrowseHierarchy("", BrowseBranch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(branches, []string{"plc1", "plc2"}) {
		t.Fatalf("remote branches: %v", branches)
	}
	props, err := c.ItemProperties("plc2.motor.rpm")
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 7 {
		t.Fatalf("remote properties: %d", len(props))
	}
	if _, err := c.ItemProperties("nope"); !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("remote unknown item: %v", err)
	}
}

func TestClientHierarchyOnLocalConnection(t *testing.T) {
	s := hierarchyServer(t)
	c := NewClient(s)
	defer c.Close()
	branches, err := c.BrowseHierarchy("", BrowseBranch)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 {
		t.Fatalf("local branches: %v", branches)
	}
	props, err := c.ItemProperties("status")
	if err != nil || len(props) != 7 {
		t.Fatalf("local properties: %v %v", props, err)
	}
}

package opc

import (
	"errors"
	"testing"
	"time"
)

// TestGroupConfigValidate pins the typed-validation surface: every
// rejection unwraps to a package sentinel through ConfigError, so
// callers branch with errors.Is instead of string matching.
func TestGroupConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  GroupConfig
		want error // nil means valid
	}{
		{"valid", GroupConfig{Name: "g", UpdateRate: time.Second}, nil},
		{"valid-zero-deadband", GroupConfig{Name: "g"}, nil},
		{"valid-max-deadband", GroupConfig{Name: "g", DeadbandPC: 100}, nil},
		{"missing-name", GroupConfig{}, ErrNameRequired},
		{"deadband-negative", GroupConfig{Name: "g", DeadbandPC: -0.5}, ErrBadDeadband},
		{"deadband-over-100", GroupConfig{Name: "g", DeadbandPC: 100.01}, ErrBadDeadband},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) || ce.Field == "" {
				t.Fatalf("Validate() = %v, want a *ConfigError naming the field", err)
			}
		})
	}
}

// TestSubscriptionConfigValidate covers the Subscribe-side config.
func TestSubscriptionConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   SubscriptionConfig
		field string
		want  error
	}{
		{"valid", SubscriptionConfig{UpdateRate: time.Millisecond}, "", nil},
		{"deadband-negative", SubscriptionConfig{UpdateRate: time.Millisecond, DeadbandPC: -1}, "DeadbandPC", ErrBadDeadband},
		{"deadband-over-100", SubscriptionConfig{UpdateRate: time.Millisecond, DeadbandPC: 101}, "DeadbandPC", ErrBadDeadband},
		{"bad-rate", SubscriptionConfig{UpdateRate: -time.Second}, "UpdateRate", ErrBadUpdateRate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) || ce.Field != tc.field {
				t.Fatalf("Validate() = %v, want ConfigError on field %s", err, tc.field)
			}
		})
	}
}

// TestAddGroupTypedErrors checks the AddGroup wrapper reports duplicate
// and closed conditions through the sentinels too.
func TestAddGroupTypedErrors(t *testing.T) {
	srv := NewServer("t")
	defer srv.Close()
	c := NewClient(srv)

	if _, err := c.AddGroup(GroupConfig{}, nil); !errors.Is(err, ErrNameRequired) {
		t.Fatalf("nameless AddGroup: %v, want ErrNameRequired", err)
	}
	if _, err := c.AddGroup(GroupConfig{Name: "g", DeadbandPC: 120}, nil); !errors.Is(err, ErrBadDeadband) {
		t.Fatalf("bad deadband AddGroup: %v, want ErrBadDeadband", err)
	}
	if _, err := c.AddGroup(GroupConfig{Name: "g"}, nil); err != nil {
		t.Fatalf("first AddGroup: %v", err)
	}
	if _, err := c.AddGroup(GroupConfig{Name: "g"}, nil); !errors.Is(err, ErrDuplicateGroup) {
		t.Fatalf("duplicate AddGroup: %v, want ErrDuplicateGroup", err)
	}
	c.Close()
	if _, err := c.AddGroup(GroupConfig{Name: "h"}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddGroup after Close: %v, want ErrClosed", err)
	}
	if _, err := c.Subscribe(nil, SubscriptionConfig{Tags: []string{"x"}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close: %v, want ErrClosed", err)
	}
}

// TestPublishValidation: Publish applies valid entries and reports the
// failures joined, each wrapping its sentinel.
func TestPublishValidation(t *testing.T) {
	srv := NewServer("t")
	defer srv.Close()
	if err := srv.AddItem(ItemDef{Tag: "a.f", CanonicalType: VTFloat64}); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddItem(ItemDef{Tag: "a.i", CanonicalType: VTInt32}); err != nil {
		t.Fatal(err)
	}

	err := srv.Publish([]ItemUpdate{
		{Tag: "a.f", Value: VR8(1.5), Quality: GoodNonSpecific},
		{Tag: "missing", Value: VR8(2), Quality: GoodNonSpecific},
		{Tag: "a.i", Value: VStr("not a number"), Quality: GoodNonSpecific},
	})
	if !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("Publish err = %v, want ErrUnknownItem among joined errors", err)
	}
	// The valid entry applied despite its neighbors failing.
	states, rerr := srv.Read([]string{"a.f"})
	if rerr != nil || states[0].Value.Float != 1.5 {
		t.Fatalf("valid entry not applied: %v %v", states, rerr)
	}
	if !states[0].Quality.IsGood() {
		t.Fatalf("quality = %v, want good", states[0].Quality)
	}

	if err := srv.AddItem(ItemDef{Tag: "a.f"}); !errors.Is(err, ErrDuplicateItem) {
		t.Fatalf("duplicate AddItem: %v, want ErrDuplicateItem", err)
	}
}

package opc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkOPCFanout measures the data plane end to end on an
// items × subscribers × change-rate grid: a namespace of `items` tags,
// `subs` subscribers all watching the same 64-tag window, and one op =
// publish `chg` changed values (one of them a sequence sentinel) and
// wait until every subscriber has observed the sentinel.
//
//	impl=shared   — the sharded namespace + shared scan cycle + cohort
//	                broadcast data plane
//	impl=pergroup — the retained old per-group scanner over the old
//	                monolithic-mutex server (pergroup_ref_test.go)
//
// The custom deliveries/s metric is (chg × subs) / op seconds — how many
// per-subscriber update deliveries the plane sustains. `make bench-opc`
// runs this grid and oftt-benchdiff gates BENCH_OPC.json on the
// items=100000/subs=10000 cell.
func BenchmarkOPCFanout(b *testing.B) {
	const window = 64 // tags every subscriber watches
	cells := []struct {
		items, subs, chg int
	}{
		{1000, 100, 1},
		{1000, 100, 32},
		{10000, 1000, 32},
		{100000, 10000, 32},
	}
	for _, impl := range []string{"shared", "pergroup"} {
		for _, cell := range cells {
			name := fmt.Sprintf("impl=%s/items=%d/subs=%d/chg=%d", impl, cell.items, cell.subs, cell.chg)
			b.Run(name, func(b *testing.B) {
				if impl == "shared" {
					benchShared(b, cell.items, cell.subs, cell.chg, window)
				} else {
					benchPerGroup(b, cell.items, cell.subs, cell.chg, window)
				}
			})
		}
	}
}

// benchTags builds the namespace defs and the shared watch window. The
// sentinel tag bench.seq is watched by everyone and carries the round
// number; watching subscribers report rounds through `seen`.
func benchTags(items, window int) (defs []ItemDef, watch []string) {
	defs = make([]ItemDef, 0, items+1)
	for i := 0; i < items; i++ {
		defs = append(defs, ItemDef{Tag: fmt.Sprintf("plant.u%d.tag%d", i/512, i), CanonicalType: VTFloat64})
	}
	defs = append(defs, ItemDef{Tag: "bench.seq", CanonicalType: VTInt64})
	watch = make([]string, 0, window)
	for i := 0; i < window-1; i++ {
		watch = append(watch, defs[i].Tag)
	}
	watch = append(watch, "bench.seq")
	return defs, watch
}

// watcher returns a DataChangeFunc that bumps `arrived` exactly once per
// round when the sentinel reaches this subscriber.
func watcher(arrived *atomic.Int64, round *atomic.Int64) DataChangeFunc {
	var lastSeen int64
	return func(updates []ItemState) {
		want := round.Load()
		for i := range updates {
			if updates[i].Tag == "bench.seq" && updates[i].Value.Int == want && lastSeen != want {
				lastSeen = want
				arrived.Add(1)
				return
			}
		}
	}
}

// runRounds drives b.N publish-and-await-fanout rounds through publish()
// and reports the deliveries/s metric.
func runRounds(b *testing.B, subs, chg int, round, arrived *atomic.Int64,
	publish func(seq int64, chg int)) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := int64(i + 1)
		arrived.Store(0)
		round.Store(seq)
		publish(seq, chg)
		for arrived.Load() < int64(subs) {
			time.Sleep(200 * time.Microsecond)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(chg*subs*b.N)/b.Elapsed().Seconds(), "deliveries/s")
}

const benchScanRate = 2 * time.Millisecond

func benchShared(b *testing.B, items, subs, chg, window int) {
	defs, watch := benchTags(items, window)
	srv := NewServer("bench")
	for _, def := range defs {
		if err := srv.AddItem(def); err != nil {
			b.Fatal(err)
		}
	}
	defer srv.Close()

	client := NewClient(srv)
	defer client.Close()

	var round, arrived atomic.Int64
	for i := 0; i < subs; i++ {
		_, err := client.Subscribe(context.Background(), SubscriptionConfig{
			UpdateRate: benchScanRate,
			OnChange:   watcher(&arrived, &round),
			Tags:       watch,
		})
		if err != nil {
			b.Fatal(err)
		}
	}

	batch := make([]ItemUpdate, 0, chg)
	runRounds(b, subs, chg, &round, &arrived, func(seq int64, chg int) {
		batch = batch[:0]
		for j := 0; j < chg-1; j++ {
			batch = append(batch, ItemUpdate{
				Tag:     watch[j%(window-1)],
				Value:   VR8(float64(seq*1000 + int64(j))),
				Quality: GoodNonSpecific,
			})
		}
		batch = append(batch, ItemUpdate{Tag: "bench.seq", Value: VI8(seq), Quality: GoodNonSpecific})
		if err := srv.Publish(batch); err != nil {
			b.Fatal(err)
		}
	})
}

func benchPerGroup(b *testing.B, items, subs, chg, window int) {
	defs, watch := benchTags(items, window)
	srv := newRefServer(defs)

	// The baseline cannot sustain 10k independent scan loops at the
	// shared rate: the per-group tickers and the exclusive-lock reads
	// saturate the scheduler and a single round never completes. The big
	// cell runs the baseline at 25x the scan period — a handicap in the
	// baseline's favor (fewer reads, less contention) that still leaves
	// it far past the gate.
	rate := benchScanRate
	if subs >= 10000 {
		rate = 25 * benchScanRate
	}

	var round, arrived atomic.Int64
	groups := make([]*refGroup, 0, subs)
	for i := 0; i < subs; i++ {
		g := newRefGroup(srv, GroupConfig{
			Name:       fmt.Sprintf("g%d", i),
			UpdateRate: rate,
		}, watcher(&arrived, &round))
		g.AddItems(watch...)
		g.Start()
		groups = append(groups, g)
	}
	// Stop concurrently: a sequential loop waits out the read-lock convoy
	// once per group (minutes at 10k groups), which is the baseline's
	// pathology, not the benchmark's business.
	defer func() {
		var wg sync.WaitGroup
		for _, g := range groups {
			wg.Add(1)
			go func(g *refGroup) { defer wg.Done(); g.Stop() }(g)
		}
		wg.Wait()
	}()

	runRounds(b, subs, chg, &round, &arrived, func(seq int64, chg int) {
		for j := 0; j < chg-1; j++ {
			if err := srv.SetValue(watch[j%(window-1)], VR8(float64(seq*1000+int64(j))), GoodNonSpecific, time.Time{}); err != nil {
				b.Fatal(err)
			}
		}
		if err := srv.SetValue("bench.seq", VI8(seq), GoodNonSpecific, time.Time{}); err != nil {
			b.Fatal(err)
		}
	})
}

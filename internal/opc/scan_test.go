package opc

import (
	"context"
	"sync"
	"testing"
	"time"
)

const testRate = 4 * time.Millisecond

func newScanPlant(t *testing.T) *Server {
	t.Helper()
	srv := NewServer("plant")
	for _, def := range []ItemDef{
		{Tag: "u1.flow", CanonicalType: VTFloat64},
		{Tag: "u1.level", CanonicalType: VTFloat64},
		{Tag: "u1.mode", CanonicalType: VTString},
	} {
		if err := srv.AddItem(def); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(srv.Close)
	return srv
}

// recorder collects delivered states per tag.
type recorder struct {
	mu  sync.Mutex
	got map[string][]ItemState
}

func newRecorder() *recorder { return &recorder{got: make(map[string][]ItemState)} }

func (r *recorder) onChange(updates []ItemState) {
	r.mu.Lock()
	for _, u := range updates {
		r.got[u.Tag] = append(r.got[u.Tag], u)
	}
	r.mu.Unlock()
}

func (r *recorder) count(tag string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got[tag])
}

func (r *recorder) last(tag string) (ItemState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	states := r.got[tag]
	if len(states) == 0 {
		return ItemState{}, false
	}
	return states[len(states)-1], true
}

// waitFor polls until cond or the deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSharedCycleQualityChangeBypassesDeadband: under the shared cycle,
// a quality transition must deliver even when the value sits well
// inside the deadband — and a KeepValue publish (the MarkAllQuality
// shape) is how devices report it.
func TestSharedCycleQualityChangeBypassesDeadband(t *testing.T) {
	srv := newScanPlant(t)
	if err := srv.SetValue("u1.flow", VR8(100), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv)
	defer c.Close()

	rec := newRecorder()
	sub, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate,
		DeadbandPC: 50,
		OnChange:   rec.onChange,
		Tags:       []string{"u1.flow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	waitFor(t, "initial delivery", func() bool { return rec.count("u1.flow") >= 1 })

	// Same value, bad quality: must pass the 50% deadband.
	srv.MarkAllQuality(BadCommFailure)
	waitFor(t, "quality transition", func() bool {
		st, ok := rec.last("u1.flow")
		return ok && st.Quality == BadCommFailure
	})
	if st, _ := rec.last("u1.flow"); st.Value.Float != 100 {
		t.Fatalf("KeepValue publish lost the value: %v", st.Value)
	}

	// Back to good at the same value: passes again (quality change).
	if err := srv.SetValue("u1.flow", VR8(100), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "recovery transition", func() bool {
		st, ok := rec.last("u1.flow")
		return ok && st.Quality == GoodNonSpecific
	})

	// Now a same-quality change inside the deadband: suppressed.
	before := rec.count("u1.flow")
	if err := srv.SetValue("u1.flow", VR8(120), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * testRate)
	if got := rec.count("u1.flow"); got != before {
		t.Fatalf("in-deadband change delivered: %d -> %d", before, got)
	}
}

// TestSharedCycleZeroSpanDeadband: when the previous value is exactly
// zero the percent deadband has no span; any move off zero must pass,
// and repeated zeros must stay suppressed.
func TestSharedCycleZeroSpanDeadband(t *testing.T) {
	srv := newScanPlant(t)
	if err := srv.SetValue("u1.level", VR8(0), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv)
	defer c.Close()

	rec := newRecorder()
	sub, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate,
		DeadbandPC: 10,
		OnChange:   rec.onChange,
		Tags:       []string{"u1.level"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	waitFor(t, "initial zero", func() bool { return rec.count("u1.level") >= 1 })

	// Republishing zero: no span, no change, suppressed.
	before := rec.count("u1.level")
	for i := 0; i < 3; i++ {
		if err := srv.SetValue("u1.level", VR8(0), GoodNonSpecific, time.Time{}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * testRate)
	}
	if got := rec.count("u1.level"); got != before {
		t.Fatalf("republished zero delivered: %d -> %d", before, got)
	}

	// A tiny move off zero: 10%% of |0| is 0, so it must pass.
	if err := srv.SetValue("u1.level", VR8(0.001), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "move off zero", func() bool {
		st, ok := rec.last("u1.level")
		return ok && st.Value.Float == 0.001
	})
}

// TestPerSubscriberDeadbandOverride: two subscribers in the same cohort
// position (same tag set, same base deadband) where one carries a
// per-item override — each must see its own filtering.
func TestPerSubscriberDeadbandOverride(t *testing.T) {
	srv := newScanPlant(t)
	if err := srv.SetValue("u1.flow", VR8(100), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv)
	defer c.Close()

	coarse := newRecorder() // base 20% deadband
	fine := newRecorder()   // same base, but 1% override on u1.flow

	subCoarse, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate,
		DeadbandPC: 20,
		OnChange:   coarse.onChange,
		Tags:       []string{"u1.flow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer subCoarse.Close()

	subFine, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate,
		DeadbandPC: 20,
		OnChange:   fine.onChange,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer subFine.Close()
	if err := subFine.AddItemsWithOptions(ItemOptions{DeadbandPC: 1}, "u1.flow"); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "both initial deliveries", func() bool {
		return coarse.count("u1.flow") >= 1 && fine.count("u1.flow") >= 1
	})

	// +5%: inside the coarse subscriber's 20%, outside fine's 1%.
	coarseBefore := coarse.count("u1.flow")
	if err := srv.SetValue("u1.flow", VR8(105), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fine subscriber update", func() bool {
		st, ok := fine.last("u1.flow")
		return ok && st.Value.Float == 105
	})
	time.Sleep(4 * testRate)
	if got := coarse.count("u1.flow"); got != coarseBefore {
		t.Fatalf("coarse subscriber saw an in-deadband change: %d -> %d", coarseBefore, got)
	}

	// +50%: both must see it.
	if err := srv.SetValue("u1.flow", VR8(150), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both subscribers see the big move", func() bool {
		cst, cok := coarse.last("u1.flow")
		fst, fok := fine.last("u1.flow")
		return cok && fok && cst.Value.Float == 150 && fst.Value.Float == 150
	})
}

// TestGoodOnlySubscription: the quality filter applies per subscriber at
// delivery, without affecting cohort-mates.
func TestGoodOnlySubscription(t *testing.T) {
	srv := newScanPlant(t)
	if err := srv.SetValue("u1.flow", VR8(1), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv)
	defer c.Close()

	all := newRecorder()
	good := newRecorder()
	subAll, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate, OnChange: all.onChange, Tags: []string{"u1.flow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer subAll.Close()
	subGood, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate, GoodOnly: true, OnChange: good.onChange, Tags: []string{"u1.flow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer subGood.Close()

	waitFor(t, "initial good delivery to both", func() bool {
		return all.count("u1.flow") >= 1 && good.count("u1.flow") >= 1
	})

	goodBefore := good.count("u1.flow")
	srv.MarkAllQuality(BadDeviceFailure)
	waitFor(t, "unfiltered subscriber sees the bad quality", func() bool {
		st, ok := all.last("u1.flow")
		return ok && st.Quality == BadDeviceFailure
	})
	if got := good.count("u1.flow"); got != goodBefore {
		t.Fatalf("GoodOnly subscriber saw a bad-quality update")
	}

	if err := srv.SetValue("u1.flow", VR8(2), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "good recovery reaches the filtered subscriber", func() bool {
		st, ok := good.last("u1.flow")
		return ok && st.Value.Float == 2
	})
}

// TestSubscriptionChannelForm: Updates() delivery, context cancellation,
// and idempotent Close.
func TestSubscriptionChannelForm(t *testing.T) {
	srv := newScanPlant(t)
	c := NewClient(srv)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	sub, err := c.Subscribe(ctx, SubscriptionConfig{
		UpdateRate: testRate,
		BufferSize: 8,
		Tags:       []string{"u1.flow", "u1.mode"},
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := srv.SetValue("u1.flow", VR8(7), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetValue("u1.mode", VStr("auto"), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}

	seen := make(map[string]ItemState)
	deadline := time.After(2 * time.Second)
	for len(seen) < 2 {
		select {
		case batch, ok := <-sub.Updates():
			if !ok {
				t.Fatal("Updates() closed early")
			}
			for _, st := range batch {
				if st.Quality.IsGood() {
					seen[st.Tag] = st
				}
			}
		case <-deadline:
			t.Fatalf("timed out; saw %v", seen)
		}
	}
	if seen["u1.flow"].Value.Float != 7 || seen["u1.mode"].Value.Str != "auto" {
		t.Fatalf("wrong states: %v", seen)
	}

	// Context cancellation closes the subscription and its channel.
	cancel()
	waitFor(t, "channel close on cancel", func() bool {
		select {
		case _, ok := <-sub.Updates():
			return !ok
		default:
			return false
		}
	})
	// Idempotent double-close, plus operations on a closed sub.
	if err := sub.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := sub.AddItems("u1.level"); err == nil {
		t.Fatal("AddItems on closed sub: want error")
	}
}

// TestSubscriptionItemAddRemove: per-item add/remove re-homes the
// subscription across cohorts without losing delivery.
func TestSubscriptionItemAddRemove(t *testing.T) {
	srv := newScanPlant(t)
	if err := srv.SetValue("u1.flow", VR8(1), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetValue("u1.level", VR8(10), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv)
	defer c.Close()

	rec := newRecorder()
	sub, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate, OnChange: rec.onChange, Tags: []string{"u1.flow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	waitFor(t, "first item", func() bool { return rec.count("u1.flow") >= 1 })

	if err := sub.AddItems("u1.level"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "added item's current state", func() bool { return rec.count("u1.level") >= 1 })

	if err := sub.RemoveItems("u1.flow"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * testRate) // let in-flight deliveries settle
	before := rec.count("u1.flow")
	if err := srv.SetValue("u1.flow", VR8(99), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(6 * testRate)
	if got := rec.count("u1.flow"); got != before {
		t.Fatalf("removed item still delivering: %d -> %d", before, got)
	}
	// The remaining item still flows.
	if err := srv.SetValue("u1.level", VR8(11), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "remaining item", func() bool {
		st, ok := rec.last("u1.level")
		return ok && st.Value.Float == 11
	})
}

// TestSubscriptionRefresh mirrors the legacy ForceRefresh contract on
// the new surface.
func TestSubscriptionRefresh(t *testing.T) {
	srv := newScanPlant(t)
	if err := srv.SetValue("u1.flow", VR8(5), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv)
	defer c.Close()

	rec := newRecorder()
	sub, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate, OnChange: rec.onChange, Tags: []string{"u1.flow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	waitFor(t, "initial", func() bool { return rec.count("u1.flow") >= 1 })
	before := rec.count("u1.flow")
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "refresh resend", func() bool { return rec.count("u1.flow") > before })
}

// TestChannelBackpressureKeepsDeadbandUpdates: a deadband-tracked
// channel subscriber whose buffer is full must get the parked update on
// redelivery. A lastSent recorded by the FAILED attempt would make the
// redelivery re-filter the batch against itself and silently drop it.
func TestChannelBackpressureKeepsDeadbandUpdates(t *testing.T) {
	srv := newScanPlant(t)
	if err := srv.SetValue("u1.flow", VR8(100), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv)
	defer c.Close()

	sub, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate,
		DeadbandPC: 10,
		BufferSize: 1,
		Tags:       []string{"u1.flow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Don't consume: the initial delivery fills the one-slot buffer.
	waitFor(t, "buffered first update", func() bool { return len(sub.Updates()) == 1 })

	// A past-deadband change lands while the buffer is full; the busy
	// delivery parks in the diverter queue and retries.
	if err := srv.SetValue("u1.flow", VR8(200), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * testRate) // let retries churn against the full buffer

	if got := <-sub.Updates(); got[0].Value.Float != 100 {
		t.Fatalf("first update: got %v, want 100", got[0].Value)
	}
	select {
	case got := <-sub.Updates():
		if got[0].Value.Float != 200 {
			t.Fatalf("redelivered update: got %v, want 200", got[0].Value)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update lost under backpressure redelivery")
	}
}

// TestRemoveReAddItemResumesUpdates: deleting a tag and defining it again
// must re-point existing subscriptions at the new namespace entry — the
// sweep may not pin the orphaned item forever.
func TestRemoveReAddItemResumesUpdates(t *testing.T) {
	srv := newScanPlant(t)
	if err := srv.SetValue("u1.flow", VR8(1), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv)
	defer c.Close()

	rec := newRecorder()
	sub, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate, OnChange: rec.onChange, Tags: []string{"u1.flow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	waitFor(t, "initial delivery", func() bool { return rec.count("u1.flow") >= 1 })

	if err := srv.RemoveItem("u1.flow"); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddItem(ItemDef{Tag: "u1.flow", CanonicalType: VTFloat64}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetValue("u1.flow", VR8(42), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "updates from re-added item", func() bool {
		st, ok := rec.last("u1.flow")
		return ok && st.Quality.IsGood() && st.Value.Float == 42
	})
}

// TestServerCloseStopsDataPlane: Close reclaims cycles and the fan-out
// diverter; synchronous reads stay available.
func TestServerCloseStopsDataPlane(t *testing.T) {
	srv := newScanPlant(t)
	c := NewClient(srv)

	rec := newRecorder()
	if _, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate, OnChange: rec.onChange, Tags: []string{"u1.flow"},
	}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Read([]string{"u1.flow"}); err != nil {
		t.Fatalf("sync read after Close: %v", err)
	}
	// New subscriptions land on a fresh engine.
	if _, err := c.Subscribe(context.Background(), SubscriptionConfig{
		UpdateRate: testRate, OnChange: rec.onChange, Tags: []string{"u1.flow"},
	}); err != nil {
		t.Fatalf("Subscribe after server Close: %v", err)
	}
	c.Close()
	srv.Close()
}

package opc

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diverter"
)

// SubscriptionConfig parameterizes Client.Subscribe.
type SubscriptionConfig struct {
	// Name labels the subscription (diagnostics only); one is generated
	// if empty.
	Name string
	// UpdateRate is the scan period; subscriptions sharing a rate share
	// one ticker sweep. Default 100ms.
	UpdateRate time.Duration
	// DeadbandPC is the percent deadband applied to numeric items, 0-100.
	// Per-item overrides (AddItemsWithOptions) layer on top.
	DeadbandPC float64
	// GoodOnly delivers only good-quality updates to this subscriber;
	// quality transitions to bad/uncertain are filtered at delivery (the
	// shared sweep still evaluates them once for the whole cohort).
	GoodOnly bool
	// BufferSize is the Updates() channel capacity (default 64). Ignored
	// for the callback form.
	BufferSize int
	// OnChange, when set, selects callback delivery: invoked per batch
	// from a delivery worker. The slice is only valid during the call
	// (it aliases a pooled batch shared across subscribers); copy to
	// retain. When nil, batches arrive on Updates() instead (the channel
	// form copies, so consumers own what they receive).
	OnChange func(updates []ItemState)
	// Tags is the initial item set; AddItems/RemoveItems adjust it later.
	Tags []string
}

// ItemOptions carries per-item subscription overrides.
type ItemOptions struct {
	// DeadbandPC overrides the subscription's base deadband for these
	// items. Negative means "inherit".
	DeadbandPC float64
}

// Subscription is a live OPC data subscription: a set of items scanned
// on a shared cycle, with changed values delivered as batches through
// the fan-out diverter. Created by Client.Subscribe.
type Subscription struct {
	eng  *scanEngine
	cfg  SubscriptionConfig
	dest string // diverter destination

	updates chan []ItemState // nil in callback form
	ctx     context.Context

	scans atomic.Int64 // sweeps observed; atomic — bumped under the cycle lock
	errs  atomic.Int64

	mu        sync.Mutex
	tags      []string           // sorted, deduped
	overrides map[string]float64 // tag -> deadband override
	lastSent  map[string]ItemState
	attached  bool
	closed    bool
	closeSig  chan struct{}

	// cohort/cycle are the scan engine's bookkeeping, guarded by the
	// cycle's mu; the subscription's mu serializes attach/detach calls.
	cohort *cohort
	cycle  *scanCycle
}

// newSubscription builds, validates, and attaches a subscription.
func newSubscription(eng *scanEngine, ctx context.Context, cfg SubscriptionConfig) (*Subscription, error) {
	cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sub := &Subscription{
		eng:       eng,
		cfg:       cfg,
		tags:      sortedUnique(cfg.Tags),
		overrides: make(map[string]float64),
		lastSent:  make(map[string]ItemState),
		ctx:       ctx,
		closeSig:  make(chan struct{}),
	}
	if cfg.OnChange == nil {
		sub.updates = make(chan []ItemState, cfg.BufferSize)
	}

	eng.mu.Lock()
	if eng.closed {
		eng.mu.Unlock()
		return nil, ErrClosed
	}
	sub.dest = eng.subID()
	div := eng.diverter()
	eng.mu.Unlock()

	if cfg.Name == "" {
		sub.cfg.Name = sub.dest
	}
	div.SetRoute(sub.dest, sub.deliver)

	sub.mu.Lock()
	defer sub.mu.Unlock()
	if err := eng.attach(sub); err != nil {
		return nil, err
	}
	sub.attached = true
	eng.ins.Subscriptions.Add(1)

	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				sub.Close()
			case <-sub.closeSig:
			}
		}()
	}
	return sub, nil
}

// Name returns the subscription's label.
func (s *Subscription) Name() string { return s.cfg.Name }

// Updates returns the batched delivery channel (nil when the
// subscription was created with an OnChange callback). The channel is
// closed by Close; each received slice is owned by the receiver.
func (s *Subscription) Updates() <-chan []ItemState { return s.updates }

// deliver is the subscription's diverter route: unwrap the shared batch,
// apply this subscriber's quality filter and per-item deadband
// re-filtering, and hand the result to the callback or channel.
func (s *Subscription) deliver(msg diverter.Message) error {
	batch, ok := msg.Payload.(*updateBatch)
	if !ok {
		return nil // foreign message shape; ack and ignore
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		batch.release()
		return nil // ack: a closed subscriber drops silently
	}
	out, commits := s.filterLocked(batch.states)
	cb := s.cfg.OnChange
	if len(out) == 0 {
		s.mu.Unlock()
		batch.release()
		return nil
	}
	if cb != nil {
		s.commitLocked(commits)
		s.mu.Unlock()
		cb(out)
		batch.release()
		return nil
	}
	// Channel form: copy (the consumer owns the slice), non-blocking
	// send. A full buffer returns an error so the diverter redelivers in
	// FIFO order once the consumer catches up — no reference is dropped.
	// lastSent commits only after the send lands: a redelivery must
	// re-filter against the state the consumer actually saw, or the
	// whole batch would look within-deadband and vanish.
	owned := append([]ItemState(nil), out...)
	select {
	case s.updates <- owned:
		s.commitLocked(commits)
		s.mu.Unlock()
		batch.release()
		return nil
	default:
		s.mu.Unlock()
		return errSubBusy
	}
}

var errSubBusy = errors.New("opc: subscriber buffer full")

// filterLocked applies per-subscriber delivery filtering on top of the
// cohort's shared evaluation: the GoodOnly quality filter, and a deadband
// re-check against the last state THIS subscriber accepted (the OPC DA
// contract) for every item with a nonzero effective deadband. The shared
// sweep evaluates each item once per cohort at the members' minimum
// deadband; members sitting above that minimum re-filter here. When no
// filtering applies — deadband 0, no overrides, no quality filter — the
// shared slice is returned as-is (zero-copy for the callback form).
//
// It does NOT mutate lastSent: the states a deadband-tracked item would
// record come back as commits, and the caller applies them via
// commitLocked only once delivery is known to succeed. Committing
// eagerly would make a redelivery after backpressure re-filter the batch
// against itself and drop it.
func (s *Subscription) filterLocked(states []ItemState) (out, commits []ItemState) {
	needFilter := s.cfg.GoodOnly || len(s.overrides) > 0 || s.cfg.DeadbandPC > 0
	if !needFilter {
		return states, nil
	}
	out = make([]ItemState, 0, len(states))
	for i := range states {
		st := &states[i]
		if s.cfg.GoodOnly && !st.Quality.IsGood() {
			continue
		}
		db, ok := s.overrides[st.Tag]
		if !ok {
			db = s.cfg.DeadbandPC
		}
		if db > 0 {
			prev, seen := s.lastSent[st.Tag]
			if seen && !exceedsDeadband(&prev, st, db) {
				continue
			}
			commits = append(commits, *st)
		}
		out = append(out, *st)
	}
	return out, commits
}

// commitLocked records the states a successful delivery handed the
// subscriber, for the next deadband re-check. Callers hold s.mu.
func (s *Subscription) commitLocked(commits []ItemState) {
	for i := range commits {
		s.lastSent[commits[i].Tag] = commits[i]
	}
}

// AddItems adds tags to the subscription's item set.
func (s *Subscription) AddItems(tags ...string) error {
	return s.AddItemsWithOptions(ItemOptions{DeadbandPC: -1}, tags...)
}

// AddItemsWithOptions adds tags with per-item overrides (e.g. a tighter
// deadband than the subscription default).
func (s *Subscription) AddItemsWithOptions(opts ItemOptions, tags ...string) error {
	if len(tags) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	merged := append(append([]string(nil), s.tags...), tags...)
	s.tags = sortedUnique(merged)
	if opts.DeadbandPC >= 0 {
		for _, t := range tags {
			s.overrides[t] = opts.DeadbandPC
		}
	}
	return s.rehomeLocked()
}

// RemoveItems drops tags from the subscription's item set.
func (s *Subscription) RemoveItems(tags ...string) error {
	if len(tags) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	drop := make(map[string]bool, len(tags))
	for _, t := range tags {
		drop[t] = true
	}
	kept := s.tags[:0]
	for _, t := range s.tags {
		if drop[t] {
			delete(s.overrides, t)
			delete(s.lastSent, t)
		} else {
			kept = append(kept, t)
		}
	}
	s.tags = kept
	return s.rehomeLocked()
}

// rehomeLocked moves the subscription onto the cohort matching its
// current item set (detach + attach). Callers hold s.mu.
func (s *Subscription) rehomeLocked() error {
	if !s.attached {
		return nil
	}
	return s.eng.requeue(s)
}

// Refresh resends the current state of every item as one batch
// (IOPCAsyncIO::Refresh).
func (s *Subscription) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.attached {
		s.eng.refresh(s)
	}
	return nil
}

// Stats reports (scan sweeps observed, scan errors).
func (s *Subscription) Stats() (scans, errs int64) {
	return s.scans.Load(), s.errs.Load()
}

// noteScan/noteScanErr are called from the sweep with the cycle lock
// held; they are atomic so the sweep never takes s.mu (which would
// invert the s.mu → cycle.mu order attach uses).
func (s *Subscription) noteScan()    { s.scans.Add(1) }
func (s *Subscription) noteScanErr() { s.errs.Add(1) }

// Close detaches the subscription and closes Updates(). Idempotent and
// safe to call concurrently with deliveries.
func (s *Subscription) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	wasAttached := s.attached
	s.attached = false
	close(s.closeSig)
	s.mu.Unlock()

	if wasAttached {
		s.eng.detach(s)
		s.eng.ins.Subscriptions.Add(-1)
	}
	// Queued deliveries for this dest drain through deliver(), which
	// acks-and-drops for a closed sub (releasing batch references), so
	// the channel close below cannot race a send. Forget then retires the
	// destination's diverter shard entirely — every subscription gets a
	// unique dest on a server-lifetime engine, so without it subscription
	// churn would grow the diverter's maps forever. Anything still queued
	// at the drain timeout is dropped with its batch reference released.
	if div := s.eng.diverterRef(); div != nil {
		div.Drain(s.dest, 2*time.Second)
		div.Forget(s.dest)
	}
	if s.updates != nil {
		close(s.updates)
	}
	return nil
}

// sortedUnique copies, sorts, and dedups a tag list.
func sortedUnique(tags []string) []string {
	out := append([]string(nil), tags...)
	sort.Strings(out)
	kept := out[:0]
	for i, t := range out {
		if i > 0 && out[i-1] == t {
			continue
		}
		kept = append(kept, t)
	}
	return kept
}

package opc

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// BrowseType selects what a hierarchical browse returns, after
// IOPCBrowseServerAddressSpace's OPC_BRANCH / OPC_LEAF / OPC_FLAT.
type BrowseType int

// Browse types.
const (
	// BrowseBranch lists child branches at a position ("plc1" under "").
	BrowseBranch BrowseType = iota + 1
	// BrowseLeaf lists items directly at a position.
	BrowseLeaf
	// BrowseFlat lists every item under a position.
	BrowseFlat
)

// BrowseHierarchy walks the '.'-separated namespace tree: position "" is
// the root, "plc1" a branch. Branch results are relative names; leaf and
// flat results are fully qualified tags.
func (s *Server) BrowseHierarchy(position string, bt BrowseType) ([]string, error) {
	if ServerState(s.state.Load()) != ServerRunning {
		return nil, ErrServerDown
	}
	prefix := position
	if prefix != "" {
		prefix += "."
	}
	// Gather-and-sort on demand: the sharded namespace keeps no global
	// sorted tag list (browsing is management-rate, publishes are not).
	tags := s.ns.tagsWithPrefix(prefix)
	switch bt {
	case BrowseFlat:
		return tags, nil
	case BrowseBranch:
		seen := make(map[string]bool)
		for _, tag := range tags {
			rest := tag[len(prefix):]
			if i := strings.IndexByte(rest, '.'); i > 0 {
				seen[rest[:i]] = true
			}
		}
		out := make([]string, 0, len(seen))
		for b := range seen {
			out = append(out, b)
		}
		sort.Strings(out)
		return out, nil
	case BrowseLeaf:
		out := make([]string, 0, 8)
		for _, tag := range tags {
			rest := tag[len(prefix):]
			if !strings.Contains(rest, ".") {
				out = append(out, tag)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("opc: unknown browse type %d", bt)
	}
}

// Standard OPC item property IDs (OPC DA 2.0 Appendix C).
const (
	PropCanonicalType = 1
	PropValue         = 2
	PropQuality       = 3
	PropTimestamp     = 4
	PropAccessRights  = 5
	PropEUUnits       = 100
	PropDescription   = 101
)

// ItemProperty is one (id, description, value) row of IOPCItemProperties.
type ItemProperty struct {
	ID          int
	Description string
	Value       Variant
}

// ItemProperties returns the standard property set for a tag.
func (s *Server) ItemProperties(tag string) ([]ItemProperty, error) {
	it := s.ns.lookup(tag)
	if it == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownItem, tag)
	}
	st := it.state.Load()
	return []ItemProperty{
		{PropCanonicalType, "Item Canonical DataType", VI4(int32(it.def.CanonicalType))},
		{PropValue, "Item Value", st.Value},
		{PropQuality, "Item Quality", VI4(int32(st.Quality))},
		{PropTimestamp, "Item Timestamp", VStr(st.Timestamp.Format(time.RFC3339Nano))},
		{PropAccessRights, "Item Access Rights", VI4(int32(it.def.Rights))},
		{PropEUUnits, "EU Units", VStr(it.def.EUUnit)},
		{PropDescription, "Item Description", VStr(it.def.Description)},
	}, nil
}

// AsyncResult reports the outcome of an asynchronous operation
// (IOPCAsyncIO completion callback).
type AsyncResult struct {
	Tag string
	Err error
}

// AsyncWrite performs a write off the caller's thread and delivers the
// outcome to done (which may be nil for fire-and-forget). The write is
// attempted exactly once; queue-and-retry semantics belong to the message
// diverter, not the OPC layer.
func (c *Client) AsyncWrite(tag string, v Variant, done func(AsyncResult)) {
	go func() {
		err := c.conn.Write(tag, v)
		if done != nil {
			done(AsyncResult{Tag: tag, Err: err})
		}
	}()
}

// AsyncRead reads tags off the caller's thread, delivering states or an
// error to done.
func (c *Client) AsyncRead(tags []string, done func([]ItemState, error)) {
	go func() {
		states, err := c.conn.Read(tags)
		if done != nil {
			done(states, err)
		}
	}()
}

// BrowseHierarchy browses the server's namespace tree through whatever
// connection the client holds; remote connections require the server stub
// to export the method (all stubs in this toolkit do).
func (c *Client) BrowseHierarchy(position string, bt BrowseType) ([]string, error) {
	type hierarchical interface {
		BrowseHierarchy(position string, bt BrowseType) ([]string, error)
	}
	h, ok := c.conn.(hierarchical)
	if !ok {
		return nil, fmt.Errorf("opc: connection does not support hierarchy browsing")
	}
	return h.BrowseHierarchy(position, bt)
}

// ItemProperties fetches an item's property set through the connection.
func (c *Client) ItemProperties(tag string) ([]ItemProperty, error) {
	type propertied interface {
		ItemProperties(tag string) ([]ItemProperty, error)
	}
	p, ok := c.conn.(propertied)
	if !ok {
		return nil, fmt.Errorf("opc: connection does not support item properties")
	}
	return p.ItemProperties(tag)
}

package opc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Access is an item's access-rights mask.
type Access int

// Access rights.
const (
	AccessRead Access = 1 << iota
	AccessWrite
	// AccessReadWrite permits both.
	AccessReadWrite = AccessRead | AccessWrite
)

// Errors.
var (
	// ErrUnknownItem is returned for operations on a tag that is not in
	// the server's namespace.
	ErrUnknownItem = errors.New("opc: unknown item")

	// ErrAccessDenied is returned for writes to read-only items and reads
	// of write-only items.
	ErrAccessDenied = errors.New("opc: access denied")

	// ErrBadTag is returned for malformed tag names.
	ErrBadTag = errors.New("opc: bad tag")

	// ErrServerDown means the server is not in a running state.
	ErrServerDown = errors.New("opc: server down")
)

// ItemState is the (value, quality, timestamp) triple OPC reads return.
type ItemState struct {
	Tag       string
	Value     Variant
	Quality   Quality
	Timestamp time.Time
}

// ItemDef describes one namespace entry.
type ItemDef struct {
	Tag           string
	CanonicalType VT
	Rights        Access
	Description   string
	EUUnit        string // engineering unit, e.g. "degC"
}

// item is the server-side record.
type item struct {
	def   ItemDef
	state ItemState
}

// ServerState is the OPC server status word.
type ServerState int

// Server states (OPC_STATUS_*).
const (
	ServerRunning ServerState = iota + 1
	ServerFailed
	ServerSuspended
)

// String renders the state.
func (s ServerState) String() string {
	switch s {
	case ServerRunning:
		return "RUNNING"
	case ServerFailed:
		return "FAILED"
	case ServerSuspended:
		return "SUSPENDED"
	default:
		return "UNKNOWN"
	}
}

// ServerStatus is the GetStatus result.
type ServerStatus struct {
	Name       string
	State      int
	StartTime  time.Time
	LastUpdate time.Time
	ItemCount  int
	ReadCount  int64
	WriteCount int64
}

// WriteHandler receives client writes so the hosting device driver can
// forward them to the field (valve commands, setpoints). Returning an
// error fails the client's write.
type WriteHandler func(tag string, value Variant) error

// Server is an OPC server: the stateless format converter between device
// drivers and OPC clients. Per the paper it takes no checkpoints — its
// entire state is reconstructible from the device scan.
type Server struct {
	name string

	mu          sync.RWMutex
	items       map[string]*item
	tags        []string // sorted
	state       ServerState
	startTime   time.Time
	lastUpdate  time.Time
	readCount   int64
	writeCount  int64
	writeRoutes map[string]WriteHandler // tag-prefix -> handler; "" is default
	subscribers map[int]func(ItemState)
	nextSub     int
}

// NewServer creates a running server with an empty namespace.
func NewServer(name string) *Server {
	return &Server{
		name:        name,
		items:       make(map[string]*item),
		state:       ServerRunning,
		startTime:   time.Now(),
		writeRoutes: make(map[string]WriteHandler),
		subscribers: make(map[int]func(ItemState)),
	}
}

// Name returns the server's ProgID-ish name.
func (s *Server) Name() string { return s.name }

// SetWriteHandler installs the default device-write path (all tags not
// claimed by a RouteWrites prefix).
func (s *Server) SetWriteHandler(h WriteHandler) {
	s.RouteWrites("", h)
}

// RouteWrites installs a device-write handler for tags with the given
// prefix, so one server can front several device drivers (one per PLC).
// The longest matching prefix wins.
func (s *Server) RouteWrites(prefix string, h WriteHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h == nil {
		delete(s.writeRoutes, prefix)
		return
	}
	s.writeRoutes[prefix] = h
}

// writeHandlerFor resolves the handler for a tag. Callers hold s.mu.
func (s *Server) writeHandlerFor(tag string) WriteHandler {
	var best string
	var found WriteHandler
	hasBest := false
	for prefix, h := range s.writeRoutes {
		if strings.HasPrefix(tag, prefix) && (!hasBest || len(prefix) > len(best)) {
			best, found, hasBest = prefix, h, true
		}
	}
	return found
}

// AddItem defines a namespace entry with an initial bad-quality value
// (devices have not reported yet).
func (s *Server) AddItem(def ItemDef) error {
	if def.Tag == "" || strings.ContainsAny(def.Tag, " \t\n") {
		return fmt.Errorf("%w: %q", ErrBadTag, def.Tag)
	}
	if def.Rights == 0 {
		def.Rights = AccessRead
	}
	if def.CanonicalType == 0 {
		def.CanonicalType = VTFloat64
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.items[def.Tag]; dup {
		return fmt.Errorf("opc: item %q already defined", def.Tag)
	}
	s.items[def.Tag] = &item{
		def: def,
		state: ItemState{
			Tag:       def.Tag,
			Value:     Empty(),
			Quality:   BadNotConnected,
			Timestamp: time.Now(),
		},
	}
	s.tags = append(s.tags, def.Tag)
	sort.Strings(s.tags)
	return nil
}

// RemoveItem deletes a namespace entry.
func (s *Server) RemoveItem(tag string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[tag]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownItem, tag)
	}
	delete(s.items, tag)
	for i, t := range s.tags {
		if t == tag {
			s.tags = append(s.tags[:i], s.tags[i+1:]...)
			break
		}
	}
	return nil
}

// SetValue is the device-driver path: the driver pushes fresh field data
// into the namespace. Values are coerced to the item's canonical type.
func (s *Server) SetValue(tag string, v Variant, q Quality, ts time.Time) error {
	s.mu.Lock()
	it, ok := s.items[tag]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownItem, tag)
	}
	coerced, err := v.CoerceTo(it.def.CanonicalType)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if ts.IsZero() {
		ts = time.Now()
	}
	it.state = ItemState{Tag: tag, Value: coerced, Quality: q, Timestamp: ts}
	s.lastUpdate = ts
	subs := make([]func(ItemState), 0, len(s.subscribers))
	for _, fn := range s.subscribers {
		subs = append(subs, fn)
	}
	state := it.state
	s.mu.Unlock()
	for _, fn := range subs {
		fn(state)
	}
	return nil
}

// MarkAllQuality stamps every item with a quality (device/comm failure).
func (s *Server) MarkAllQuality(q Quality) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for _, it := range s.items {
		it.state.Quality = q
		it.state.Timestamp = now
	}
}

// Read returns the current state of each tag (IOPCSyncIO::Read).
func (s *Server) Read(tags []string) ([]ItemState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != ServerRunning {
		return nil, ErrServerDown
	}
	out := make([]ItemState, 0, len(tags))
	for _, tag := range tags {
		it, ok := s.items[tag]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownItem, tag)
		}
		if it.def.Rights&AccessRead == 0 {
			return nil, fmt.Errorf("%w: read %q", ErrAccessDenied, tag)
		}
		out = append(out, it.state)
	}
	s.readCount++
	return out, nil
}

// Write applies a client write (IOPCSyncIO::Write): coerce, hand to the
// device handler, then reflect the value in the namespace with good
// quality and a local-override flavor if no handler overrides it.
func (s *Server) Write(tag string, v Variant) error {
	s.mu.Lock()
	if s.state != ServerRunning {
		s.mu.Unlock()
		return ErrServerDown
	}
	it, ok := s.items[tag]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownItem, tag)
	}
	if it.def.Rights&AccessWrite == 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: write %q", ErrAccessDenied, tag)
	}
	coerced, err := v.CoerceTo(it.def.CanonicalType)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	handler := s.writeHandlerFor(tag)
	s.writeCount++
	s.mu.Unlock()

	if handler != nil {
		if err := handler(tag, coerced); err != nil {
			return fmt.Errorf("opc: device write %q: %w", tag, err)
		}
	}
	return s.SetValue(tag, coerced, GoodNonSpecific, time.Now())
}

// Browse lists tags under a prefix, sorted (IOPCBrowseServerAddressSpace).
// An empty prefix lists everything.
func (s *Server) Browse(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.state != ServerRunning {
		return nil, ErrServerDown
	}
	out := make([]string, 0, len(s.tags))
	for _, tag := range s.tags {
		if strings.HasPrefix(tag, prefix) {
			out = append(out, tag)
		}
	}
	return out, nil
}

// ItemDefinition returns an item's metadata.
func (s *Server) ItemDefinition(tag string) (ItemDef, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.items[tag]
	if !ok {
		return ItemDef{}, fmt.Errorf("%w: %q", ErrUnknownItem, tag)
	}
	return it.def, nil
}

// Status returns the server status block (IOPCServer::GetStatus).
func (s *Server) Status() (ServerStatus, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ServerStatus{
		Name:       s.name,
		State:      int(s.state),
		StartTime:  s.startTime,
		LastUpdate: s.lastUpdate,
		ItemCount:  len(s.items),
		ReadCount:  s.readCount,
		WriteCount: s.writeCount,
	}, nil
}

// SetState transitions the server (fault injection / shutdown).
func (s *Server) SetState(st ServerState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = st
}

// Subscribe registers a same-process callback fired on every SetValue (the
// server-side advise sink). Returns an unsubscribe handle.
func (s *Server) Subscribe(fn func(ItemState)) (cancel func()) {
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subscribers[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.subscribers, id)
	}
}

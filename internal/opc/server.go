package opc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Access is an item's access-rights mask.
type Access int

// Access rights.
const (
	AccessRead Access = 1 << iota
	AccessWrite
	// AccessReadWrite permits both.
	AccessReadWrite = AccessRead | AccessWrite
)

// Errors.
var (
	// ErrUnknownItem is returned for operations on a tag that is not in
	// the server's namespace.
	ErrUnknownItem = errors.New("opc: unknown item")

	// ErrAccessDenied is returned for writes to read-only items and reads
	// of write-only items.
	ErrAccessDenied = errors.New("opc: access denied")

	// ErrBadTag is returned for malformed tag names.
	ErrBadTag = errors.New("opc: bad tag")

	// ErrServerDown means the server is not in a running state.
	ErrServerDown = errors.New("opc: server down")
)

// ItemState is the (value, quality, timestamp) triple OPC reads return.
type ItemState struct {
	Tag       string
	Value     Variant
	Quality   Quality
	Timestamp time.Time
}

// ItemDef describes one namespace entry.
type ItemDef struct {
	Tag           string
	CanonicalType VT
	Rights        Access
	Description   string
	EUUnit        string // engineering unit, e.g. "degC"
}

// ItemUpdate is one entry in a Publish batch: the device-side unit of
// namespace change. A zero Timestamp is stamped at apply time. KeepValue
// updates quality and timestamp while retaining the current value (the
// MarkAllQuality shape: "the value is stale, here is why").
type ItemUpdate struct {
	Tag       string
	Value     Variant
	Quality   Quality
	Timestamp time.Time
	KeepValue bool
}

// ServerState is the OPC server status word.
type ServerState int

// Server states (OPC_STATUS_*).
const (
	ServerRunning ServerState = iota + 1
	ServerFailed
	ServerSuspended
)

// String renders the state.
func (s ServerState) String() string {
	switch s {
	case ServerRunning:
		return "RUNNING"
	case ServerFailed:
		return "FAILED"
	case ServerSuspended:
		return "SUSPENDED"
	default:
		return "UNKNOWN"
	}
}

// ServerStatus is the GetStatus result.
type ServerStatus struct {
	Name       string
	State      int
	StartTime  time.Time
	LastUpdate time.Time
	ItemCount  int
	ReadCount  int64
	WriteCount int64
}

// WriteHandler receives client writes so the hosting device driver can
// forward them to the field (valve commands, setpoints). Returning an
// error fails the client's write.
type WriteHandler func(tag string, value Variant) error

// Instruments are the server data plane's registry-resolved metrics;
// zero-value fields record nothing.
type Instruments struct {
	// ScanCycle observes shared-sweep duration in microseconds — the cost
	// of one pass over every subscribed item at one update rate.
	ScanCycle *telemetry.Histogram
	// FanoutBatch observes updates per fan-out batch: how many item
	// changes one diverter broadcast carries to a subscriber cohort.
	FanoutBatch *telemetry.Histogram
	// DeadbandSuppressed counts item changes a sweep held back because
	// they stayed inside the percent deadband.
	DeadbandSuppressed *telemetry.Counter
	// UpdatesPublished counts item updates applied through Publish.
	UpdatesPublished *telemetry.Counter
	// Subscriptions gauges live subscriptions on the data plane.
	Subscriptions *telemetry.Gauge
}

// Server is an OPC server: the format converter between device drivers
// and OPC clients. Per the paper it takes no checkpoints — its entire
// state is reconstructible from the device scan.
//
// The namespace is sharded (see namespace.go): item states publish
// through atomic pointers, so the subscription scan path and concurrent
// client reads never contend with device-side Publish calls on a lock.
type Server struct {
	name      string
	ns        *namespace
	startTime time.Time

	state      atomic.Int32 // ServerState
	lastUpdate atomic.Int64 // unix nanos of the latest applied update
	readCount  atomic.Int64
	writeCount atomic.Int64

	routeMu     sync.RWMutex
	writeRoutes map[string]WriteHandler // tag-prefix -> handler; "" is default

	// Legacy per-update advise callbacks (Subscribe). The flag keeps the
	// Publish fast path to one atomic load when nobody is advised.
	adviseMu  sync.Mutex
	advise    map[int]func(ItemState)
	nextAdv   int
	hasAdvise atomic.Bool

	ins Instruments

	// scan is the server-side shared scan engine, created on the first
	// subscription (engine()).
	scanMu sync.Mutex
	scan   *scanEngine
}

// NewServer creates a running server with an empty namespace.
func NewServer(name string) *Server {
	s := &Server{
		name:        name,
		ns:          newNamespace(defaultNamespaceShards),
		startTime:   time.Now(),
		writeRoutes: make(map[string]WriteHandler),
		advise:      make(map[int]func(ItemState)),
	}
	s.state.Store(int32(ServerRunning))
	return s
}

// Name returns the server's ProgID-ish name.
func (s *Server) Name() string { return s.name }

// Instrument routes the data plane's metrics (scan-cycle duration,
// fan-out batch size, deadband suppression, publish and subscription
// counters) into ins. Call before the first subscription.
func (s *Server) Instrument(ins Instruments) {
	s.scanMu.Lock()
	s.ins = ins
	if s.scan != nil {
		s.scan.ins = ins
	}
	s.scanMu.Unlock()
}

// engine returns the server's shared scan engine, creating it (and its
// fan-out diverter) on first use.
func (s *Server) engine() *scanEngine {
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	if s.scan == nil {
		s.scan = newScanEngine(s, nil)
		s.scan.ins = s.ins
	}
	return s.scan
}

// Close stops the subscription data plane (scan cycles and the fan-out
// diverter). The synchronous call surface (Read/Write/Browse) stays up;
// Close is about reclaiming the background goroutines.
func (s *Server) Close() {
	s.scanMu.Lock()
	eng := s.scan
	s.scan = nil
	s.scanMu.Unlock()
	if eng != nil {
		eng.close()
	}
}

// SetWriteHandler installs the default device-write path (all tags not
// claimed by a RouteWrites prefix).
func (s *Server) SetWriteHandler(h WriteHandler) {
	s.RouteWrites("", h)
}

// RouteWrites installs a device-write handler for tags with the given
// prefix, so one server can front several device drivers (one per PLC).
// The longest matching prefix wins.
func (s *Server) RouteWrites(prefix string, h WriteHandler) {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if h == nil {
		delete(s.writeRoutes, prefix)
		return
	}
	s.writeRoutes[prefix] = h
}

// writeHandlerFor resolves the handler for a tag.
func (s *Server) writeHandlerFor(tag string) WriteHandler {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	var best string
	var found WriteHandler
	hasBest := false
	for prefix, h := range s.writeRoutes {
		if strings.HasPrefix(tag, prefix) && (!hasBest || len(prefix) > len(best)) {
			best, found, hasBest = prefix, h, true
		}
	}
	return found
}

// AddItem defines a namespace entry with an initial bad-quality value
// (devices have not reported yet).
func (s *Server) AddItem(def ItemDef) error {
	if def.Tag == "" || strings.ContainsAny(def.Tag, " \t\n") {
		return fmt.Errorf("%w: %q", ErrBadTag, def.Tag)
	}
	if def.Rights == 0 {
		def.Rights = AccessRead
	}
	if def.CanonicalType == 0 {
		def.CanonicalType = VTFloat64
	}
	it := &nsItem{def: def}
	it.state.Store(&ItemState{
		Tag:       def.Tag,
		Value:     Empty(),
		Quality:   BadNotConnected,
		Timestamp: time.Now(),
	})
	if !s.ns.add(it) {
		return fmt.Errorf("%w: item %q already defined", ErrDuplicateItem, def.Tag)
	}
	return nil
}

// RemoveItem deletes a namespace entry. Subscriptions still holding the
// item keep its last state and stop receiving updates for it.
func (s *Server) RemoveItem(tag string) error {
	if !s.ns.remove(tag) {
		return fmt.Errorf("%w: %q", ErrUnknownItem, tag)
	}
	return nil
}

// Publish applies a batch of device-side updates through the single
// validation path (item exists, value coerces to the canonical type).
// Valid entries apply even when others fail — a device batch is not
// all-or-nothing — and the failures come back joined, each wrapping a
// sentinel (ErrUnknownItem, or the coercion error).
//
// This is the one namespace write path: SetValue, Write, and
// MarkAllQuality are wrappers over it.
func (s *Server) Publish(batch []ItemUpdate) error {
	var errs []error
	applied := 0
	var lastTS time.Time
	for i := range batch {
		u := &batch[i]
		it := s.ns.lookup(u.Tag)
		if it == nil {
			errs = append(errs, fmt.Errorf("%w: %q", ErrUnknownItem, u.Tag))
			continue
		}
		st, err := s.applyUpdate(it, u)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		applied++
		lastTS = st.Timestamp
		if s.hasAdvise.Load() {
			s.fanAdvise(*st)
		}
	}
	if applied > 0 {
		s.lastUpdate.Store(lastTS.UnixNano())
		s.ins.UpdatesPublished.Add(int64(applied))
	}
	return errors.Join(errs...)
}

// applyUpdate coerces, builds, and atomically publishes one item state.
// The version bump after the pointer store is what sweeps key change
// detection on (see nsItem).
func (s *Server) applyUpdate(it *nsItem, u *ItemUpdate) (*ItemState, error) {
	ts := u.Timestamp
	if ts.IsZero() {
		ts = time.Now()
	}
	var val Variant
	if u.KeepValue {
		val = it.state.Load().Value
	} else {
		coerced, err := u.Value.CoerceTo(it.def.CanonicalType)
		if err != nil {
			return nil, err
		}
		val = coerced
	}
	st := &ItemState{Tag: it.def.Tag, Value: val, Quality: u.Quality, Timestamp: ts}
	it.state.Store(st)
	it.version.Add(1)
	return st, nil
}

// SetValue is the single-item device-driver path: the driver pushes
// fresh field data into the namespace. Values are coerced to the item's
// canonical type. It is a wrapper over Publish.
func (s *Server) SetValue(tag string, v Variant, q Quality, ts time.Time) error {
	batch := [1]ItemUpdate{{Tag: tag, Value: v, Quality: q, Timestamp: ts}}
	return s.Publish(batch[:])
}

// MarkAllQuality stamps every item with a quality (device/comm failure),
// keeping values: a KeepValue publish across the whole namespace. The
// quality transitions flow to scan subscribers like any other update.
func (s *Server) MarkAllQuality(q Quality) {
	now := time.Now()
	n := 0
	s.ns.forEach(func(it *nsItem) {
		u := ItemUpdate{Tag: it.def.Tag, Quality: q, Timestamp: now, KeepValue: true}
		if _, err := s.applyUpdate(it, &u); err == nil {
			n++
		}
	})
	if n > 0 {
		s.lastUpdate.Store(now.UnixNano())
		s.ins.UpdatesPublished.Add(int64(n))
	}
}

// fanAdvise delivers one applied state to the legacy advise callbacks.
func (s *Server) fanAdvise(st ItemState) {
	s.adviseMu.Lock()
	subs := make([]func(ItemState), 0, len(s.advise))
	for _, fn := range s.advise {
		subs = append(subs, fn)
	}
	s.adviseMu.Unlock()
	for _, fn := range subs {
		fn(st)
	}
}

// Read returns the current state of each tag (IOPCSyncIO::Read). Reads
// are lock-free per item: a shard map lookup plus an atomic state load.
func (s *Server) Read(tags []string) ([]ItemState, error) {
	if ServerState(s.state.Load()) != ServerRunning {
		return nil, ErrServerDown
	}
	out := make([]ItemState, 0, len(tags))
	for _, tag := range tags {
		it := s.ns.lookup(tag)
		if it == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownItem, tag)
		}
		if it.def.Rights&AccessRead == 0 {
			return nil, fmt.Errorf("%w: read %q", ErrAccessDenied, tag)
		}
		out = append(out, *it.state.Load())
	}
	s.readCount.Add(1)
	return out, nil
}

// Write applies a client write (IOPCSyncIO::Write): coerce, hand to the
// device handler, then reflect the value in the namespace with good
// quality through the Publish path.
func (s *Server) Write(tag string, v Variant) error {
	if ServerState(s.state.Load()) != ServerRunning {
		return ErrServerDown
	}
	it := s.ns.lookup(tag)
	if it == nil {
		return fmt.Errorf("%w: %q", ErrUnknownItem, tag)
	}
	if it.def.Rights&AccessWrite == 0 {
		return fmt.Errorf("%w: write %q", ErrAccessDenied, tag)
	}
	coerced, err := v.CoerceTo(it.def.CanonicalType)
	if err != nil {
		return err
	}
	s.writeCount.Add(1)
	if handler := s.writeHandlerFor(tag); handler != nil {
		if err := handler(tag, coerced); err != nil {
			return fmt.Errorf("opc: device write %q: %w", tag, err)
		}
	}
	return s.SetValue(tag, coerced, GoodNonSpecific, time.Now())
}

// Browse lists tags under a prefix, sorted (IOPCBrowseServerAddressSpace).
// An empty prefix lists everything.
func (s *Server) Browse(prefix string) ([]string, error) {
	if ServerState(s.state.Load()) != ServerRunning {
		return nil, ErrServerDown
	}
	return s.ns.tagsWithPrefix(prefix), nil
}

// ItemDefinition returns an item's metadata.
func (s *Server) ItemDefinition(tag string) (ItemDef, error) {
	it := s.ns.lookup(tag)
	if it == nil {
		return ItemDef{}, fmt.Errorf("%w: %q", ErrUnknownItem, tag)
	}
	return it.def, nil
}

// Status returns the server status block (IOPCServer::GetStatus).
func (s *Server) Status() (ServerStatus, error) {
	var last time.Time
	if ns := s.lastUpdate.Load(); ns != 0 {
		last = time.Unix(0, ns)
	}
	return ServerStatus{
		Name:       s.name,
		State:      int(s.state.Load()),
		StartTime:  s.startTime,
		LastUpdate: last,
		ItemCount:  s.ns.len(),
		ReadCount:  s.readCount.Load(),
		WriteCount: s.writeCount.Load(),
	}, nil
}

// SetState transitions the server (fault injection / shutdown).
func (s *Server) SetState(st ServerState) {
	s.state.Store(int32(st))
}

// Subscribe registers a same-process callback fired on every published
// update (the legacy server-side advise sink — per update, not batched;
// prefer Client.Subscribe for the scanned, deadband-filtered form).
// Returns an unsubscribe handle.
func (s *Server) Subscribe(fn func(ItemState)) (cancel func()) {
	s.adviseMu.Lock()
	id := s.nextAdv
	s.nextAdv++
	s.advise[id] = fn
	s.hasAdvise.Store(true)
	s.adviseMu.Unlock()
	return func() {
		s.adviseMu.Lock()
		defer s.adviseMu.Unlock()
		delete(s.advise, id)
		if len(s.advise) == 0 {
			s.hasAdvise.Store(false)
		}
	}
}

package opc

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func newPlantServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer("Plant.OPC.1")
	defs := []ItemDef{
		{Tag: "plc1.temp", CanonicalType: VTFloat64, Rights: AccessRead, EUUnit: "degC"},
		{Tag: "plc1.pressure", CanonicalType: VTFloat64, Rights: AccessRead},
		{Tag: "plc1.valve", CanonicalType: VTBool, Rights: AccessReadWrite},
		{Tag: "plc2.count", CanonicalType: VTInt32, Rights: AccessRead},
	}
	for _, d := range defs {
		if err := s.AddItem(d); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAddItemValidation(t *testing.T) {
	s := NewServer("x")
	if err := s.AddItem(ItemDef{Tag: ""}); !errors.Is(err, ErrBadTag) {
		t.Fatalf("empty tag: %v", err)
	}
	if err := s.AddItem(ItemDef{Tag: "has space"}); !errors.Is(err, ErrBadTag) {
		t.Fatalf("spaced tag: %v", err)
	}
	if err := s.AddItem(ItemDef{Tag: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddItem(ItemDef{Tag: "ok"}); err == nil {
		t.Fatal("duplicate tag accepted")
	}
}

func TestInitialQualityIsBad(t *testing.T) {
	s := newPlantServer(t)
	states, err := s.Read([]string{"plc1.temp"})
	if err != nil {
		t.Fatal(err)
	}
	if states[0].Quality != BadNotConnected {
		t.Fatalf("initial quality %v", states[0].Quality)
	}
}

func TestSetValueAndRead(t *testing.T) {
	s := newPlantServer(t)
	ts := time.Now()
	if err := s.SetValue("plc1.temp", VR8(21.5), GoodNonSpecific, ts); err != nil {
		t.Fatal(err)
	}
	states, err := s.Read([]string{"plc1.temp", "plc1.pressure"})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := states[0].Value.AsFloat(); got != 21.5 {
		t.Fatalf("temp = %v", got)
	}
	if !states[0].Quality.IsGood() {
		t.Fatalf("quality = %v", states[0].Quality)
	}
	if states[1].Quality != BadNotConnected {
		t.Fatal("pressure quality should still be bad")
	}
}

func TestSetValueCoercion(t *testing.T) {
	s := newPlantServer(t)
	// Device reports int for a float item: coerced.
	if err := s.SetValue("plc1.temp", VI4(20), GoodNonSpecific, time.Time{}); err != nil {
		t.Fatal(err)
	}
	states, _ := s.Read([]string{"plc1.temp"})
	if states[0].Value.Type != VTFloat64 {
		t.Fatalf("canonical coercion failed: %v", states[0].Value.Type)
	}
}

func TestReadUnknownAndWriteDenied(t *testing.T) {
	s := newPlantServer(t)
	if _, err := s.Read([]string{"nope"}); !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("got %v", err)
	}
	if err := s.Write("plc1.temp", VR8(1)); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("write to RO item: %v", err)
	}
}

func TestWritePathToDevice(t *testing.T) {
	s := newPlantServer(t)
	var mu sync.Mutex
	var gotTag string
	var gotVal Variant
	s.SetWriteHandler(func(tag string, v Variant) error {
		mu.Lock()
		defer mu.Unlock()
		gotTag, gotVal = tag, v
		return nil
	})
	if err := s.Write("plc1.valve", VBool(true)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if gotTag != "plc1.valve" || !gotVal.Bool {
		t.Fatalf("device saw %q %v", gotTag, gotVal)
	}
	mu.Unlock()
	states, _ := s.Read([]string{"plc1.valve"})
	if b, _ := states[0].Value.AsBool(); !b || !states[0].Quality.IsGood() {
		t.Fatalf("namespace not updated: %+v", states[0])
	}
}

func TestWriteHandlerFailureFailsWrite(t *testing.T) {
	s := newPlantServer(t)
	s.SetWriteHandler(func(string, Variant) error { return errors.New("field bus dead") })
	if err := s.Write("plc1.valve", VBool(true)); err == nil {
		t.Fatal("write should propagate device failure")
	}
}

func TestBrowse(t *testing.T) {
	s := newPlantServer(t)
	all, err := s.Browse("")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"plc1.pressure", "plc1.temp", "plc1.valve", "plc2.count"}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("browse all: %v", all)
	}
	plc1, _ := s.Browse("plc1.")
	if len(plc1) != 3 {
		t.Fatalf("browse plc1: %v", plc1)
	}
}

func TestRemoveItem(t *testing.T) {
	s := newPlantServer(t)
	if err := s.RemoveItem("plc2.count"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveItem("plc2.count"); !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("got %v", err)
	}
	all, _ := s.Browse("")
	if len(all) != 3 {
		t.Fatalf("browse after remove: %v", all)
	}
}

func TestServerDown(t *testing.T) {
	s := newPlantServer(t)
	s.SetState(ServerFailed)
	if _, err := s.Read([]string{"plc1.temp"}); !errors.Is(err, ErrServerDown) {
		t.Fatalf("read: %v", err)
	}
	if err := s.Write("plc1.valve", VBool(true)); !errors.Is(err, ErrServerDown) {
		t.Fatalf("write: %v", err)
	}
	if _, err := s.Browse(""); !errors.Is(err, ErrServerDown) {
		t.Fatalf("browse: %v", err)
	}
}

func TestMarkAllQuality(t *testing.T) {
	s := newPlantServer(t)
	_ = s.SetValue("plc1.temp", VR8(20), GoodNonSpecific, time.Now())
	s.MarkAllQuality(BadCommFailure)
	states, _ := s.Read([]string{"plc1.temp", "plc2.count"})
	for _, st := range states {
		if st.Quality != BadCommFailure {
			t.Fatalf("%s quality %v", st.Tag, st.Quality)
		}
	}
}

func TestStatusCounts(t *testing.T) {
	s := newPlantServer(t)
	_, _ = s.Read([]string{"plc1.temp"})
	_, _ = s.Read([]string{"plc1.temp"})
	_ = s.Write("plc1.valve", VBool(true))
	st, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadCount != 2 || st.WriteCount != 1 || st.ItemCount != 4 {
		t.Fatalf("status: %+v", st)
	}
	if st.Name != "Plant.OPC.1" || st.State != int(ServerRunning) {
		t.Fatalf("status: %+v", st)
	}
}

func TestSubscribe(t *testing.T) {
	s := newPlantServer(t)
	got := make(chan ItemState, 4)
	cancel := s.Subscribe(func(st ItemState) { got <- st })
	_ = s.SetValue("plc1.temp", VR8(25), GoodNonSpecific, time.Now())
	select {
	case st := <-got:
		if st.Tag != "plc1.temp" {
			t.Fatalf("subscriber saw %q", st.Tag)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber never fired")
	}
	cancel()
	_ = s.SetValue("plc1.temp", VR8(26), GoodNonSpecific, time.Now())
	select {
	case <-got:
		t.Fatal("cancelled subscriber fired")
	case <-time.After(30 * time.Millisecond):
	}
}

func TestItemDefinition(t *testing.T) {
	s := newPlantServer(t)
	def, err := s.ItemDefinition("plc1.temp")
	if err != nil {
		t.Fatal(err)
	}
	if def.EUUnit != "degC" || def.CanonicalType != VTFloat64 {
		t.Fatalf("def: %+v", def)
	}
	if _, err := s.ItemDefinition("nope"); !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("got %v", err)
	}
}

package opc

import (
	"errors"
	"fmt"
	"time"
)

// Validation sentinels. Callers match them with errors.Is through the
// wrapping ConfigError (the same typed-validation pattern engine.Config
// uses), so "deadband out of range" is a branchable condition instead of
// a string to grep.
var (
	// ErrNameRequired: a group needs a non-empty name.
	ErrNameRequired = errors.New("opc: name required")
	// ErrBadDeadband: percent deadband must be within [0, 100].
	ErrBadDeadband = errors.New("opc: deadband out of range")
	// ErrBadUpdateRate: a fully specified update rate must be positive.
	ErrBadUpdateRate = errors.New("opc: update rate must be positive")
	// ErrDuplicateGroup: the client already owns a group with that name.
	ErrDuplicateGroup = errors.New("opc: duplicate group")
	// ErrDuplicateItem: the tag is already present (in the server's
	// namespace, or in a subscription's item set).
	ErrDuplicateItem = errors.New("opc: duplicate item")
	// ErrClosed is returned from operations on a closed client,
	// subscription, or server data plane.
	ErrClosed = errors.New("opc: closed")
)

// ConfigError reports which field of a GroupConfig or SubscriptionConfig
// failed validation; it unwraps to one of the sentinels above.
type ConfigError struct {
	Field string
	Err   error
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("opc: config field %s: %v", e.Field, e.Err)
}

func (e *ConfigError) Unwrap() error { return e.Err }

// normalize applies the documented defaults in place.
func (cfg *SubscriptionConfig) normalize() {
	if cfg.UpdateRate <= 0 {
		cfg.UpdateRate = 100 * time.Millisecond
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 64
	}
}

// Validate checks a normalized SubscriptionConfig. Subscription names are
// optional (one is generated), so only the numeric fields are constrained.
func (cfg *SubscriptionConfig) Validate() error {
	if cfg.UpdateRate <= 0 {
		return &ConfigError{Field: "UpdateRate", Err: ErrBadUpdateRate}
	}
	if cfg.DeadbandPC < 0 || cfg.DeadbandPC > 100 {
		return &ConfigError{Field: "DeadbandPC",
			Err: fmt.Errorf("%w: %v%%", ErrBadDeadband, cfg.DeadbandPC)}
	}
	return nil
}

// normalize applies the legacy group defaults in place.
func (cfg *GroupConfig) normalize() {
	if cfg.UpdateRate <= 0 {
		cfg.UpdateRate = 100 * time.Millisecond
	}
}

// Validate checks a GroupConfig for AddGroup. Unlike subscriptions, a
// group must be named: RemoveGroup addresses it by name.
func (cfg *GroupConfig) Validate() error {
	if cfg.Name == "" {
		return &ConfigError{Field: "Name", Err: fmt.Errorf("%w: group needs a name", ErrNameRequired)}
	}
	if cfg.DeadbandPC < 0 || cfg.DeadbandPC > 100 {
		return &ConfigError{Field: "DeadbandPC",
			Err: fmt.Errorf("%w: %v%%", ErrBadDeadband, cfg.DeadbandPC)}
	}
	return nil
}

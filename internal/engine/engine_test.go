package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// pairHarness wires two nodes with engines over one or two segments.
type pairHarness struct {
	nets   []*netsim.Network
	node1  *cluster.Node
	node2  *cluster.Node
	e1, e2 *Engine
	p1, p2 *cluster.Process
	hub    *telemetry.Hub
}

func fastConfig(peer string) Config {
	return Config{
		PeerNode:          peer,
		HeartbeatInterval: 5 * time.Millisecond,
		PeerTimeout:       30 * time.Millisecond,
		RPCTimeout:        200 * time.Millisecond,
		Startup: StartupPolicy{
			Retries:       10,
			RetryInterval: 10 * time.Millisecond,
			Alone:         AloneBecomePrimary,
		},
	}
}

func newPair(t *testing.T, dual bool) *pairHarness {
	t.Helper()
	h := &pairHarness{hub: telemetry.NewHub(0)}
	h.nets = []*netsim.Network{netsim.New("ethA", 1)}
	if dual {
		h.nets = append(h.nets, netsim.New("ethB", 2))
	}
	h.node1 = cluster.NewNode("node1", 1, h.nets...)
	h.node2 = cluster.NewNode("node2", 2, h.nets...)

	sink := h.hub
	h.e1 = New(h.node1, fastConfig("node2"), sink)
	h.e2 = New(h.node2, fastConfig("node1"), sink)

	var err error
	h.p1, err = h.node1.StartProcess("oftt-engine", func(stop <-chan struct{}) { <-stop })
	if err != nil {
		t.Fatal(err)
	}
	h.p2, err = h.node2.StartProcess("oftt-engine", func(stop <-chan struct{}) { <-stop })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.e1.Start(h.p1); err != nil {
		t.Fatal(err)
	}
	if err := h.e2.Start(h.p2); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		h.e1.Stop()
		h.e2.Stop()
	})
	return h
}

// waitRoles blocks until the pair settles into the wanted roles.
func (h *pairHarness) waitRoles(t *testing.T, r1, r2 Role) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if h.e1.Role() == r1 && h.e2.Role() == r2 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("roles never settled: e1=%s e2=%s (want %s/%s)",
		h.e1.Role(), h.e2.Role(), r1, r2)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestNegotiationElectsOnePrimary(t *testing.T) {
	h := newPair(t, false)
	// node1 < node2 lexicographically: node1 wins the tie-break.
	h.waitRoles(t, RolePrimary, RoleBackup)
}

func TestPreferredNodeWinsTieBreak(t *testing.T) {
	nets := []*netsim.Network{netsim.New("ethA", 1)}
	node1 := cluster.NewNode("node1", 1, nets...)
	node2 := cluster.NewNode("node2", 2, nets...)
	cfg1 := fastConfig("node2")
	cfg2 := fastConfig("node1")
	cfg2.Preferred = true // node2 preferred despite lexicographic order
	e1 := New(node1, cfg1, nil)
	e2 := New(node2, cfg2, nil)
	if err := e1.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(nil); err != nil {
		t.Fatal(err)
	}
	defer e1.Stop()
	defer e2.Stop()
	waitFor(t, "preferred primary", func() bool {
		return e2.Role() == RolePrimary && e1.Role() == RoleBackup
	})
}

func TestAloneBecomePrimary(t *testing.T) {
	nets := []*netsim.Network{netsim.New("ethA", 1)}
	node1 := cluster.NewNode("node1", 1, nets...)
	cfg := fastConfig("node2")
	cfg.Startup.Retries = 2
	e1 := New(node1, cfg, nil)
	if err := e1.Start(nil); err != nil {
		t.Fatal(err)
	}
	defer e1.Stop()
	waitFor(t, "alone primary", func() bool { return e1.Role() == RolePrimary })
}

func TestAloneShutdownOriginalLogic(t *testing.T) {
	nets := []*netsim.Network{netsim.New("ethA", 1)}
	node1 := cluster.NewNode("node1", 1, nets...)
	cfg := fastConfig("node2")
	cfg.Startup.Retries = 2
	cfg.Startup.Alone = AloneShutdown
	e1 := New(node1, cfg, nil)
	if err := e1.Start(nil); err != nil {
		t.Fatal(err)
	}
	defer e1.Stop()
	waitFor(t, "alone shutdown", func() bool { return e1.Role() == RoleShutdown })
}

func TestStartupRetriesSurviveBootSkew(t *testing.T) {
	// Section 3.2: the first node must not give up before the second has
	// booted. Start e2 well after e1, inside the retry window.
	nets := []*netsim.Network{netsim.New("ethA", 1)}
	node1 := cluster.NewNode("node1", 1, nets...)
	node2 := cluster.NewNode("node2", 2, nets...)
	cfg1 := fastConfig("node2")
	cfg1.Startup.Retries = 30
	cfg1.Startup.Alone = AloneShutdown
	e1 := New(node1, cfg1, nil)
	if err := e1.Start(nil); err != nil {
		t.Fatal(err)
	}
	defer e1.Stop()

	time.Sleep(80 * time.Millisecond) // boot skew
	if e1.Role() == RoleShutdown {
		t.Fatal("first node gave up during the retry window")
	}
	e2 := New(node2, fastConfig("node1"), nil)
	if err := e2.Start(nil); err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	waitFor(t, "pair formation after skewed boot", func() bool {
		return (e1.Role() == RolePrimary && e2.Role() == RoleBackup) ||
			(e1.Role() == RoleBackup && e2.Role() == RolePrimary)
	})
}

func TestBackupTakesOverOnPrimaryNodeFailure(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	start := time.Now()
	h.node1.PowerOff() // scenario (a): node failure
	waitFor(t, "backup takeover", func() bool { return h.e2.Role() == RolePrimary })
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("takeover took %v", elapsed)
	}
	if h.e2.Switchovers() != 1 {
		t.Fatalf("switchovers = %d", h.e2.Switchovers())
	}
}

func TestBackupTakesOverOnBlueScreen(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	h.node1.BlueScreen() // scenario (b): NT crash
	waitFor(t, "takeover after bluescreen", func() bool { return h.e2.Role() == RolePrimary })
}

func TestBackupTakesOverOnEngineKill(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	h.p1.Kill() // scenario (d): OFTT middleware failure
	waitFor(t, "takeover after engine kill", func() bool { return h.e2.Role() == RolePrimary })
}

func TestPrimarySurvivesBackupFailure(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	h.node2.PowerOff()
	waitFor(t, "peer failure detection", func() bool { return h.e1.PeerFailed() })
	if h.e1.Role() != RolePrimary {
		t.Fatalf("primary changed role on backup failure: %s", h.e1.Role())
	}
}

func TestDualNetworkToleratesSingleSegmentLoss(t *testing.T) {
	h := newPair(t, true)
	h.waitRoles(t, RolePrimary, RoleBackup)

	// Partition segment A only: heartbeats still flow on B, so no
	// takeover (the dual-Ethernet benefit of Figure 1).
	h.nets[0].Partition("node1:engine-hb", "node2:engine-hb")
	time.Sleep(100 * time.Millisecond)
	if h.e2.Role() != RoleBackup || h.e1.Role() != RolePrimary {
		t.Fatalf("roles flapped on single-segment loss: %s/%s", h.e1.Role(), h.e2.Role())
	}

	// Partition segment B too: now the backup takes over.
	h.nets[1].Partition("node1:engine-hb", "node2:engine-hb")
	waitFor(t, "takeover after both segments lost", func() bool {
		return h.e2.Role() == RolePrimary
	})
}

func TestSplitBrainResolvesAfterHeal(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	// Full partition: backup promotes -> dual primary.
	h.nets[0].Partition("node1:engine-hb", "node2:engine-hb")
	h.nets[0].Partition("node1:engine-rpc", "node2:engine-rpc-cli")
	h.nets[0].Partition("node2:engine-rpc", "node1:engine-rpc-cli")
	waitFor(t, "partition promotes backup", func() bool { return h.e2.Role() == RolePrimary })

	// Heal: exactly one demotes (node2 > node1 loses).
	h.nets[0].HealAll()
	waitFor(t, "split-brain resolution", func() bool {
		return h.e1.Role() == RolePrimary && h.e2.Role() == RoleBackup
	})
}

func TestCommandedSwitchover(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	if err := h.e1.RequestSwitchover("operator command"); err != nil {
		t.Fatal(err)
	}
	h.waitRoles(t, RoleBackup, RolePrimary)
	// Switchover back.
	if err := h.e2.RequestSwitchover("fail back"); err != nil {
		t.Fatal(err)
	}
	h.waitRoles(t, RolePrimary, RoleBackup)
}

func TestSwitchoverRefusedWhenNotPrimary(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	if err := h.e2.RequestSwitchover("x"); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("got %v", err)
	}
}

func TestDistressTriggersSwitchover(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	if err := h.e1.Distress("calltrack", "internal inconsistency"); err != nil {
		t.Fatal(err)
	}
	h.waitRoles(t, RoleBackup, RolePrimary)
}

func TestDistressRefusedWithoutPeer(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	h.node2.PowerOff()
	waitFor(t, "peer failure", func() bool { return h.e1.PeerFailed() })
	if err := h.e1.Distress("calltrack", "problem"); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("got %v", err)
	}
	if h.e1.Role() != RolePrimary {
		t.Fatal("primary abandoned role with no peer")
	}
}

func TestCheckpointShipAndMaterialize(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	reg := checkpoint.NewRegistry()
	counter := int64(7)
	if err := reg.Register("counter", &counter); err != nil {
		t.Fatal(err)
	}
	snap, err := reg.CaptureFull()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.e1.ShipSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "store receipt", func() bool { return h.e2.Store().LastSeq() == snap.Seq })

	// Backup materializes on takeover.
	var restored int64
	replica := checkpoint.NewRegistry()
	_ = replica.Register("counter", &restored)
	if err := h.e2.Materialize(replica); err != nil {
		t.Fatal(err)
	}
	if restored != 7 {
		t.Fatalf("restored %d", restored)
	}
}

func TestShipSnapshotRefusedOnBackup(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	err := h.e2.ShipSnapshot(&checkpoint.Snapshot{Seq: 1, Kind: "full"})
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("got %v", err)
	}
}

func TestComponentLocalRestart(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	var mu sync.Mutex
	restarts := 0
	err := h.e1.RegisterComponent("calltrack", 25*time.Millisecond,
		RecoveryRule{MaxLocalRestarts: 3, Exhausted: ExhaustSwitchover},
		func() error {
			mu.Lock()
			restarts++
			mu.Unlock()
			// Restart resumes heartbeats.
			h.e1.ComponentBeat("calltrack", 1, "OK")
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// Go silent: the engine must invoke the local recovery provision.
	waitFor(t, "local restart", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return restarts >= 1
	})
	if h.e1.Role() != RolePrimary {
		t.Fatal("transient fault escalated to switchover")
	}
}

func TestComponentExhaustionCausesSwitchover(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	// Restart never brings heartbeats back: a permanent fault.
	err := h.e1.RegisterComponent("calltrack", 20*time.Millisecond,
		RecoveryRule{MaxLocalRestarts: 1, Exhausted: ExhaustSwitchover},
		func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "switchover after exhausted restarts", func() bool {
		return h.e2.Role() == RolePrimary && h.e1.Role() == RoleBackup
	})
}

func TestComponentGiveUp(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	err := h.e1.RegisterComponent("optional-logger", 20*time.Millisecond,
		RecoveryRule{MaxLocalRestarts: 0, Exhausted: ExhaustGiveUp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if h.e1.Role() != RolePrimary {
		t.Fatal("GiveUp rule caused a role change")
	}
}

func TestRegisterComponentValidation(t *testing.T) {
	h := newPair(t, false)
	if err := h.e1.RegisterComponent("", time.Second, RecoveryRule{}, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := h.e1.RegisterComponent("x", time.Second, RecoveryRule{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.e1.RegisterComponent("x", time.Second, RecoveryRule{}, nil); err == nil {
		t.Fatal("duplicate accepted")
	}
	h.e1.UnregisterComponent("x")
	if err := h.e1.RegisterComponent("x", time.Second, RecoveryRule{}, nil); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
}

func TestStatusRPC(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	_ = h.e1.RegisterComponent("calltrack", time.Second, RecoveryRule{}, nil)
	st := h.e1.Status()
	if st.Node != "node1" || Role(st.Role) != RolePrimary {
		t.Fatalf("status: %+v", st)
	}
	if len(st.Components) != 1 || st.Components[0] != "calltrack" {
		t.Fatalf("components: %v", st.Components)
	}
}

func TestMonitorSeesRoleEvents(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	st, ok := h.hub.Store().Status("node1", "oftt-engine")
	if !ok || st.State != "PRIMARY" {
		t.Fatalf("monitor row: %+v", st)
	}
	found := false
	for _, e := range h.hub.Store().Events(0) {
		if e.Kind == "role" {
			found = true
		}
	}
	if !found {
		t.Fatal("no role events recorded")
	}
}

func TestFailbackAfterRepair(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	// Primary node dies; backup takes over.
	h.node1.PowerOff()
	waitFor(t, "takeover", func() bool { return h.e2.Role() == RolePrimary })
	h.e1.Stop()

	// Node repairs and reboots; a fresh engine joins as backup.
	h.node1.Boot()
	e1b := New(h.node1, fastConfig("node2"), h.hub)
	if err := e1b.Start(nil); err != nil {
		t.Fatal(err)
	}
	defer e1b.Stop()
	waitFor(t, "rejoin as backup", func() bool {
		return e1b.Role() == RoleBackup && h.e2.Role() == RolePrimary
	})
}

func TestDynamicRecoveryRule(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	// Start with GiveUp (no escalation), then switch the rule at run-time
	// to Switchover before the failure: the dynamic rule must govern.
	err := h.e1.RegisterComponent("app", 25*time.Millisecond,
		RecoveryRule{MaxLocalRestarts: 0, Exhausted: ExhaustGiveUp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Keep it alive briefly.
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		seq := uint64(0)
		for {
			select {
			case <-tick.C:
				seq++
				h.e1.ComponentBeat("app", seq, "OK")
			case <-stop:
				return
			}
		}
	}()

	if err := h.e1.SetRecoveryRule("app", RecoveryRule{
		MaxLocalRestarts: 0, Exhausted: ExhaustSwitchover}, true); err != nil {
		t.Fatal(err)
	}
	rule, ok := h.e1.RecoveryRuleOf("app")
	if !ok || rule.Exhausted != ExhaustSwitchover {
		t.Fatalf("rule not updated: %+v %v", rule, ok)
	}

	// Now let it die: the new rule must cause a switchover, not a give-up.
	close(stop)
	waitFor(t, "switchover under dynamic rule", func() bool {
		return h.e2.Role() == RolePrimary && h.e1.Role() == RoleBackup
	})
}

func TestSetRecoveryRuleUnknownComponent(t *testing.T) {
	h := newPair(t, false)
	if err := h.e1.SetRecoveryRule("nope", RecoveryRule{}, false); err == nil {
		t.Fatal("unknown component accepted")
	}
}

func TestPersistentStoreSurvivesWholePairOutage(t *testing.T) {
	dir := t.TempDir()
	nets := []*netsim.Network{netsim.New("ethA", 1)}
	node1 := cluster.NewNode("node1", 1, nets...)
	node2 := cluster.NewNode("node2", 2, nets...)
	cfg1 := fastConfig("node2")
	cfg2 := fastConfig("node1")
	cfg2.StorePath = dir + "/node2.ckpt"

	e1, err := NewWithError(node1, cfg1, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewWithError(node2, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pair", func() bool {
		return e1.Role() == RolePrimary && e2.Role() == RoleBackup
	})

	reg := checkpoint.NewRegistry()
	counter := int64(4242)
	_ = reg.Register("counter", &counter)
	snap, _ := reg.CaptureFull()
	if err := e1.ShipSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "checkpoint persisted", func() bool { return e2.Store().LastSeq() > 0 })

	// Whole-pair outage: both engines stop.
	e1.Stop()
	e2.Stop()

	// Cold restart of node2 with the same store path: the checkpoint is
	// back before any peer contact.
	node2b := cluster.NewNode("node2", 3, netsim.New("ethB", 9))
	e2b, err := NewWithError(node2b, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e2b.Store().LastSeq() == 0 {
		t.Fatal("persisted checkpoint not reloaded")
	}
	var restored int64
	replica := checkpoint.NewRegistry()
	_ = replica.Register("counter", &restored)
	if err := e2b.Store().Materialize(replica); err != nil {
		t.Fatal(err)
	}
	if restored != 4242 {
		t.Fatalf("restored %d", restored)
	}
}

func TestNewWithErrorBadStorePath(t *testing.T) {
	node := cluster.NewNode("node1", 1, netsim.New("eth", 1))
	cfg := fastConfig("node2")
	cfg.StorePath = t.TempDir() // a directory, not a file: open fails on read? no—ReadFile of dir errors
	if _, err := NewWithError(node, cfg, nil); err == nil {
		t.Skip("directory read did not error on this platform")
	}
}

// NodeTransport is the fabric's shared per-node plumbing. A node hosting
// hundreds of group engines binds exactly one heartbeat socket and one
// DCOM exporter per network segment; every group engine on the node
// registers into it instead of binding six endpoints of its own:
//
//   - Outbound beats are multiplexed per node *pair*: one MuxEmitter per
//     peer node packs one GroupState entry per shared group into a single
//     datagram each interval, so beat traffic scales with node pairs, not
//     groups.
//   - Inbound datagrams are demultiplexed back to the owning engines.
//   - Engine-to-engine control RPC rides one shared mux DCOM client per
//     peer node, routed by group ID through the FabricStub.
//   - One heartbeat.Monitor serves every engine's failure detection, with
//     group-prefixed source keys.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
)

// FabricOID is the well-known object ID a node's shared fabric control
// interface is exported under.
var FabricOID = com.MustParseGUID("{0f7e4a10-2222-4000-8000-0e0e0e0e0e02}")

// ErrUnknownGroup is returned for fabric RPCs naming a group the node
// hosts no member of.
var ErrUnknownGroup = errors.New("engine: unknown group on node")

// TransportConfig parameterizes a node's shared fabric transport.
type TransportConfig struct {
	// BeatInterval is the per-pair mux beat period (default 20ms).
	BeatInterval time.Duration
	// SweepInterval is the shared failure-detector scan period (default
	// BeatInterval, min 2ms).
	SweepInterval time.Duration
	// RPCTimeout bounds shared-client control calls (default 500ms).
	RPCTimeout time.Duration
}

func (c *TransportConfig) applyDefaults() {
	if c.BeatInterval <= 0 {
		c.BeatInterval = 20 * time.Millisecond
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.BeatInterval
		if c.SweepInterval < 2*time.Millisecond {
			c.SweepInterval = 2 * time.Millisecond
		}
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 500 * time.Millisecond
	}
}

// NodeTransport multiplexes every fabric group engine on one node over a
// single set of endpoints. See the package comment above.
type NodeTransport struct {
	node     *cluster.Node
	cfg      TransportConfig
	networks []*netsim.Network

	socks     []*netsim.DatagramSock
	exporters []*dcom.Exporter
	monitor   *heartbeat.Monitor

	mu       sync.Mutex
	engines  map[string]*Engine               // by group ID
	emitters map[string]*heartbeat.MuxEmitter // by peer node
	started  bool
	closed   bool

	clientMu sync.Mutex
	clients  map[string]*dcom.Client // by peer node

	datagramsIn atomic.Int64
	entriesIn   atomic.Int64

	// actCh feeds the node's role-action worker: role transitions decided
	// on the beat/demux hot paths run here instead of blocking those loops
	// (one slow takeover must not stall every other group's heartbeats).
	actCh chan func()

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewNodeTransport creates a stopped transport for node.
func NewNodeTransport(node *cluster.Node, cfg TransportConfig) *NodeTransport {
	cfg.applyDefaults()
	return &NodeTransport{
		node:     node,
		cfg:      cfg,
		networks: node.Networks(),
		engines:  make(map[string]*Engine),
		emitters: make(map[string]*heartbeat.MuxEmitter),
		clients:  make(map[string]*dcom.Client),
		monitor:  heartbeat.NewMonitor(cfg.SweepInterval),
		actCh:    make(chan func(), 1024),
		stop:     make(chan struct{}),
	}
}

// Node returns the hosting node's name.
func (t *NodeTransport) Node() string { return t.node.Name() }

// Monitor exposes the node's shared failure detector.
func (t *NodeTransport) Monitor() *heartbeat.Monitor { return t.monitor }

// BeatInterval reports the per-pair mux beat period.
func (t *NodeTransport) BeatInterval() time.Duration { return t.cfg.BeatInterval }

// DatagramsReceived and EntriesReceived report inbound mux-beat traffic —
// the numbers the scaling grid uses to verify beats are per-pair streams.
func (t *NodeTransport) DatagramsReceived() int64 { return t.datagramsIn.Load() }

// EntriesReceived reports the total GroupState entries demultiplexed.
func (t *NodeTransport) EntriesReceived() int64 { return t.entriesIn.Load() }

// Start binds the node's shared fabric endpoints (one datagram socket and
// one exporter per segment) and launches the demux loops. proc, when set,
// owns the endpoints so killing the node's fabric agent fails them all.
func (t *NodeTransport) Start(proc *cluster.Process) error {
	hbAddr := t.node.Addr("fabric-hb")
	rpcAddr := t.node.Addr("fabric-rpc")
	for _, n := range t.networks {
		sock, err := n.ListenDatagram(hbAddr)
		if err != nil {
			t.teardown()
			return fmt.Errorf("fabric: bind hb on %s: %w", n.Name(), err)
		}
		t.socks = append(t.socks, sock)

		exp, err := dcom.NewExporter(n, rpcAddr)
		if err != nil {
			t.teardown()
			return fmt.Errorf("fabric: bind rpc on %s: %w", n.Name(), err)
		}
		if err := exp.Export(FabricOID, &FabricStub{t: t}); err != nil {
			exp.Close()
			t.teardown()
			return err
		}
		t.exporters = append(t.exporters, exp)

		if proc != nil {
			proc.OwnEndpoint(n, hbAddr)
			proc.OwnEndpoint(n, rpcAddr)
			proc.OwnEndpoint(n, t.node.Addr("fabric-rpc-cli"))
		}
	}

	t.monitor.Start()
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.actLoop()
	}()
	for _, sock := range t.socks {
		sock := sock
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.recvLoop(sock)
		}()
	}

	t.mu.Lock()
	t.started = true
	ems := make([]*heartbeat.MuxEmitter, 0, len(t.emitters))
	for _, em := range t.emitters {
		ems = append(ems, em)
	}
	t.mu.Unlock()
	for _, em := range ems {
		em.Start()
	}
	return nil
}

// Register wires a group engine into the node's shared streams: its state
// source joins the mux emitter of every peer it shares a pair with.
func (t *NodeTransport) Register(e *Engine) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.engines[e.cfg.GroupID] = e
	for _, peer := range e.peers {
		em, ok := t.emitters[peer]
		if !ok {
			peerHB := netsim.Addr(peer + ":fabric-hb")
			em = heartbeat.NewMuxEmitter(t.node.Name(), t.cfg.BeatInterval, func(data []byte) {
				for _, sock := range t.socks {
					_ = sock.Send(peerHB, data)
				}
			})
			t.emitters[peer] = em
			if t.started {
				em.Start()
			}
		}
		em.AddSource(e.cfg.GroupID, e.muxState)
	}
}

// Unregister removes a group engine from the node's streams; a pair
// emitter with no remaining groups is torn down.
func (t *NodeTransport) Unregister(e *Engine) {
	t.mu.Lock()
	if t.engines[e.cfg.GroupID] == e {
		delete(t.engines, e.cfg.GroupID)
	}
	var stopped []*heartbeat.MuxEmitter
	for _, peer := range e.peers {
		em, ok := t.emitters[peer]
		if !ok {
			continue
		}
		em.RemoveSource(e.cfg.GroupID)
		if em.SourceCount() == 0 {
			delete(t.emitters, peer)
			if t.started {
				stopped = append(stopped, em)
			}
		}
	}
	t.mu.Unlock()
	for _, em := range stopped {
		em.Stop()
	}
}

func (t *NodeTransport) engine(group string) *Engine {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.engines[group]
}

// enqueueAct hands a role-transition action to the node's act worker.
// When the queue is saturated (a node-wide churn storm) the action runs
// inline — correctness over latency, never dropped.
func (t *NodeTransport) enqueueAct(act func()) {
	select {
	case t.actCh <- act:
	default:
		act()
	}
}

// actLoop serializes deferred role transitions for every engine on the
// node. Takeovers and demotions do real work (checkpoint restore, app
// callbacks, telemetry); running them here keeps the demux and emitter
// loops at pure protocol-state speed.
func (t *NodeTransport) actLoop() {
	for {
		select {
		case act := <-t.actCh:
			act()
		case <-t.stop:
			return
		}
	}
}

// recvLoop demultiplexes inbound pair beats to the owning group engines.
// The loop owns a reusable decoder (interned strings, recycled entries),
// resolves every entry's engine under one registry lock, and stamps the
// datagram's arrival time once — per-entry overhead here is what bounds
// how many groups a node can host.
func (t *NodeTransport) recvLoop(sock *netsim.DatagramSock) {
	dec := heartbeat.NewMuxDecoder()
	var engs []*Engine
	for {
		select {
		case <-t.stop:
			return
		default:
		}
		d, err := sock.RecvTimeout(100 * time.Millisecond)
		if err != nil {
			if errors.Is(err, netsim.ErrClosed) {
				return
			}
			continue
		}
		b, err := dec.Decode(d.Payload)
		if err != nil {
			continue
		}
		t.datagramsIn.Add(1)
		t.entriesIn.Add(int64(len(b.Entries)))
		engs = engs[:0]
		t.mu.Lock()
		for i := range b.Entries {
			engs = append(engs, t.engines[b.Entries[i].Group])
		}
		t.mu.Unlock()
		now := time.Now()
		for i, e := range engs {
			if e != nil {
				e.observeFromPeer(b.From, b.Entries[i], now)
			}
		}
	}
}

// call routes one control call to a peer node's member of group, over the
// shared (lazily dialed, multiplexed) per-pair client. method is the pair
// protocol's name ("Hello", "TakeOverRPC", ...); the FabricStub carries a
// group-scoped variant of each.
func (t *NodeTransport) call(peer, group, method string, out []any, args ...any) error {
	t.clientMu.Lock()
	client := t.clients[peer]
	if client == nil || client.Broken() {
		if client != nil {
			client.Close()
			delete(t.clients, peer)
		}
		var err error
		client, err = t.dialPeer(peer)
		if err != nil {
			t.clientMu.Unlock()
			return err
		}
		t.clients[peer] = client
	}
	t.clientMu.Unlock()

	err := client.Object(FabricOID).Call(method+"G", out, append([]any{group}, args...)...)
	if err != nil && client.Broken() {
		t.clientMu.Lock()
		if t.clients[peer] == client {
			delete(t.clients, peer)
		}
		t.clientMu.Unlock()
		client.Close()
	}
	return err
}

func (t *NodeTransport) dialPeer(peer string) (*dcom.Client, error) {
	from := t.node.Addr("fabric-rpc-cli")
	to := netsim.Addr(peer + ":fabric-rpc")
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.RPCTimeout)
	defer cancel()
	var lastErr error
	for _, n := range t.networks {
		client, err := dcom.DialContext(ctx, n, from, to)
		if err == nil {
			client.SetTimeout(t.cfg.RPCTimeout)
			return client, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrPeerUnavailable
	}
	return nil, fmt.Errorf("%w: %v", ErrPeerUnavailable, lastErr)
}

func (t *NodeTransport) teardown() {
	for _, exp := range t.exporters {
		exp.Close()
	}
	for _, s := range t.socks {
		_ = s.Close()
	}
	t.exporters, t.socks = nil, nil
}

// Stop tears the transport down: emitters, demux loops, monitor, clients.
// Engines should be stopped first; any still registered just go silent.
func (t *NodeTransport) Stop() {
	t.once.Do(func() { close(t.stop) })
	t.mu.Lock()
	t.closed = true
	ems := make([]*heartbeat.MuxEmitter, 0, len(t.emitters))
	for _, em := range t.emitters {
		ems = append(ems, em)
	}
	t.emitters = make(map[string]*heartbeat.MuxEmitter)
	started := t.started
	t.mu.Unlock()
	if started {
		for _, em := range ems {
			em.Stop()
		}
		t.monitor.Stop()
	}
	t.teardown()
	t.clientMu.Lock()
	for peer, c := range t.clients {
		c.Close()
		delete(t.clients, peer)
	}
	t.clientMu.Unlock()
	t.wg.Wait()
}

// FabricStub is the node's shared DCOM control surface: the pair
// protocol's methods, each routed by group ID to the hosted member.
type FabricStub struct {
	t *NodeTransport
}

func (s *FabricStub) member(group string) (*Engine, error) {
	e := s.t.engine(group)
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGroup, group)
	}
	return e, nil
}

// HelloG services pair negotiation for one group.
func (s *FabricStub) HelloG(group string, req helloReq) (helloResp, error) {
	e, err := s.member(group)
	if err != nil {
		return helloResp{}, err
	}
	return (&Stub{e: e}).Hello(req)
}

// TakeOverG services a commanded switchover for one group.
func (s *FabricStub) TakeOverG(group, reason string) error {
	e, err := s.member(group)
	if err != nil {
		return err
	}
	e.TakeOver("peer request: " + reason)
	return nil
}

// DemoteG services a commanded demotion for one group.
func (s *FabricStub) DemoteG(group, reason string) error {
	e, err := s.member(group)
	if err != nil {
		return err
	}
	e.Demote("peer request: " + reason)
	return nil
}

// StatusRPCG services remote status queries for one group.
func (s *FabricStub) StatusRPCG(group string) (EngineStatus, error) {
	e, err := s.member(group)
	if err != nil {
		return EngineStatus{}, err
	}
	return e.Status(), nil
}

// FetchSnapshotG serves one group's stored checkpoint.
func (s *FabricStub) FetchSnapshotG(group string) ([]byte, error) {
	e, err := s.member(group)
	if err != nil {
		return nil, err
	}
	snap := e.store.Export()
	if snap == nil {
		return nil, nil
	}
	return snap.Encode()
}

// StoreSnapshotG applies a checkpoint shipped by the group's primary —
// the fabric's replacement for the pair's streaming checkpoint channel.
func (s *FabricStub) StoreSnapshotG(group string, data []byte) error {
	e, err := s.member(group)
	if err != nil {
		return err
	}
	snap, err := checkpoint.DecodeSnapshot(data)
	if err != nil {
		return err
	}
	return e.store.Apply(snap)
}

// StoreOpsG applies an op-log batch shipped by the group's primary — the
// fabric's op lane (the pair protocol carries ops on the checkpoint
// stream instead).
func (s *FabricStub) StoreOpsG(group string, data []byte) error {
	e, err := s.member(group)
	if err != nil {
		return err
	}
	batch, err := checkpoint.DecodeOpBatch(data)
	if err != nil {
		return err
	}
	return e.store.ApplyOps(batch)
}

package engine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
)

// trioHarness wires a 3-replica group over standalone engine transports:
// the smallest membership that activates the lease/quorum election path.
type trioHarness struct {
	net   *netsim.Network
	nodes [3]*cluster.Node
	engs  [3]*Engine
	procs [3]*cluster.Process
}

var trioNames = [3]string{"alpha", "beta", "gamma"}

func quorumConfig(self int) Config {
	var peers []string
	for i, n := range trioNames {
		if i != self {
			peers = append(peers, n)
		}
	}
	return Config{
		GroupID:           "g-lease",
		Peers:             peers,
		HeartbeatInterval: 5 * time.Millisecond,
		PeerTimeout:       30 * time.Millisecond,
		LeaseDuration:     30 * time.Millisecond,
		RPCTimeout:        200 * time.Millisecond,
	}
}

func newTrio(t *testing.T) *trioHarness {
	t.Helper()
	h := &trioHarness{net: netsim.New("ethQ", 1)}
	for i, name := range trioNames {
		h.nodes[i] = cluster.NewNode(name, int64(11+i), h.net)
		e, err := NewWithError(h.nodes[i], quorumConfig(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		h.engs[i] = e
		p, err := h.nodes[i].StartProcess("oftt-engine", func(stop <-chan struct{}) { <-stop })
		if err != nil {
			t.Fatal(err)
		}
		h.procs[i] = p
		if err := e.Start(p); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, e := range h.engs {
			e.Stop()
		}
	})
	return h
}

func (h *trioHarness) primaries() []int {
	var out []int
	for i, e := range h.engs {
		if e.Role() == RolePrimary {
			out = append(out, i)
		}
	}
	return out
}

// waitSingleLeader blocks until exactly one member is primary and the
// others are backup, and returns the leader's index.
func (h *trioHarness) waitSingleLeader(t *testing.T) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		prim := h.primaries()
		if len(prim) == 1 {
			backups := 0
			for i, e := range h.engs {
				if i != prim[0] && e.Role() == RoleBackup {
					backups++
				}
			}
			if backups == 2 {
				return prim[0]
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("group never settled on one leader: roles %s/%s/%s",
		h.engs[0].Role(), h.engs[1].Role(), h.engs[2].Role())
	return -1
}

// cut fully partitions member i from member j, both directions.
func (h *trioHarness) cut(i, j int) {
	h.net.PartitionPrefix(trioNames[i], trioNames[j])
}

func TestLeaseElectsSingleLeader(t *testing.T) {
	h := newTrio(t)
	lead := h.waitSingleLeader(t)
	if term := h.engs[lead].LeaseTerm(); term == 0 {
		t.Fatalf("leader holds term 0; election never ran")
	}
	// Every member agrees on who holds the lease. Agreement is eventual:
	// a follower demoted by a higher-term candidate learns the new
	// leader's identity only from its first primary beat.
	deadline := time.Now().Add(3 * time.Second)
	for {
		agree := 0
		for _, e := range h.engs {
			if e.LeaderNode() == trioNames[lead] {
				agree++
			}
		}
		if agree == len(h.engs) {
			break
		}
		if time.Now().After(deadline) {
			for i, e := range h.engs {
				if got := e.LeaderNode(); got != trioNames[lead] {
					t.Errorf("member %d believes leader is %q, want %q", i, got, trioNames[lead])
				}
			}
			t.FailNow()
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLeaseExpiryDuringPartition isolates the lease holder from both
// followers. The majority side must elect a replacement, and the isolated
// holder must surrender its lease (quorum loss) *while still partitioned*
// — the property the 2-node tie-break cannot provide, since it needs to
// observe the other primary to resolve.
func TestLeaseExpiryDuringPartition(t *testing.T) {
	h := newTrio(t)
	old := h.waitSingleLeader(t)
	oldTerm := h.engs[old].LeaseTerm()

	for i := range h.engs {
		if i != old {
			h.cut(old, i)
		}
	}

	// Majority side elects a new leader at a higher term.
	waitFor(t, "replacement leader on majority side", func() bool {
		for i, e := range h.engs {
			if i != old && e.Role() == RolePrimary && e.LeaseTerm() > oldTerm {
				return true
			}
		}
		return false
	})
	// Isolated holder demotes itself without seeing anyone: lease expiry.
	waitFor(t, "isolated holder surrenders lease", func() bool {
		return h.engs[old].Role() == RoleBackup
	})
	if d := h.engs[old].Demotions(); d < 1 {
		t.Fatalf("old holder recorded %d demotions, want >= 1", d)
	}

	h.net.HealAll()
	lead := h.waitSingleLeader(t)
	if lead == old {
		// Allowed in principle (it could win a later election) but with
		// sticky leases the replacement should still hold the role.
		t.Logf("note: old holder re-elected after heal")
	}
}

// TestStaleLeaseHolderYieldsAfterOneWayCut models the asymmetric failure:
// the holder's outbound beats are lost but its inbound path still works.
// Followers elect a replacement (two leaders briefly coexist); the stale
// holder observes the new term on its intact inbound path and yields —
// before the cut even heals.
func TestStaleLeaseHolderYieldsAfterOneWayCut(t *testing.T) {
	h := newTrio(t)
	old := h.waitSingleLeader(t)
	oldTerm := h.engs[old].LeaseTerm()

	// Outbound-only cut: holder -> followers lost, followers -> holder OK.
	for i := range h.engs {
		if i != old {
			h.net.PartitionPrefixOneWay(trioNames[old], trioNames[i])
		}
	}

	waitFor(t, "replacement leader elected", func() bool {
		for i, e := range h.engs {
			if i != old && e.Role() == RolePrimary && e.LeaseTerm() > oldTerm {
				return true
			}
		}
		return false
	})
	// The stale holder hears the new leader's higher term and steps down
	// while the one-way cut is still in place.
	waitFor(t, "stale holder yields to higher term", func() bool {
		return h.engs[old].Role() == RoleBackup
	})

	h.net.HealAll()
	time.Sleep(100 * time.Millisecond)
	if prim := h.primaries(); len(prim) != 1 {
		t.Fatalf("after heal: %d primaries, want 1", len(prim))
	}
}

// TestLeaseHolderLostMidCheckpoint kills the holder right after it ships
// state: a majority replacement must take over holding the last shipped
// checkpoint (promotion must not reset the backup's store).
func TestLeaseHolderLostMidCheckpoint(t *testing.T) {
	h := newTrio(t)
	lead := h.waitSingleLeader(t)

	reg := checkpoint.NewRegistry()
	state := []byte("plant state v1")
	if err := reg.Register("plant", &state); err != nil {
		t.Fatal(err)
	}
	snap, err := reg.CaptureFull()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.engs[lead].ShipSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	shipped := snap.Seq

	// Confirm at least a majority of backups hold the state, then cut the
	// holder off entirely (node loss).
	waitFor(t, "backups store the checkpoint", func() bool {
		n := 0
		for i, e := range h.engs {
			if i != lead && e.Store().LastSeq() >= shipped {
				n++
			}
		}
		return n >= 1
	})
	for i := range h.engs {
		if i != lead {
			h.cut(lead, i)
		}
	}

	waitFor(t, "replacement leader after holder loss", func() bool {
		for i, e := range h.engs {
			if i != lead && e.Role() == RolePrimary {
				return e.Store().LastSeq() >= shipped
			}
		}
		return false
	})
}

// TestPairKeepsTieBreak gates the election path on membership size: a
// 2-replica group must keep the paper's negotiate/tie-break protocol and
// never open a lease term.
func TestPairKeepsTieBreak(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	if term := h.e1.LeaseTerm(); term != 0 {
		t.Fatalf("pair engine opened lease term %d; pairs must stay on tie-break", term)
	}
	if term := h.e2.LeaseTerm(); term != 0 {
		t.Fatalf("pair engine opened lease term %d; pairs must stay on tie-break", term)
	}
}

// TestHoldsLeaseFence covers the ack fence: a live quorum leader holds
// the lease, a backup never does, and a leader whose peer contact has
// gone stale past LeaseDuration — the state a SIGSTOPped process wakes
// up in, before its role catches up — must fail the fence even though
// its cached role is still primary.
func TestHoldsLeaseFence(t *testing.T) {
	h := newTrio(t)
	lead := h.waitSingleLeader(t)

	if !h.engs[lead].HoldsLease() {
		t.Fatalf("live leader fails the lease fence")
	}
	for i, e := range h.engs {
		if i != lead && e.HoldsLease() {
			t.Fatalf("backup %d claims the lease", i)
		}
	}

	// Forge the post-freeze state: role still primary, every peer's last
	// beat older than LeaseDuration. The fence must fail before any role
	// transition runs.
	e := h.engs[lead]
	e.mu.Lock()
	for p := range e.lease.peerSeen {
		e.lease.peerSeen[p] = time.Now().Add(-10 * e.cfg.LeaseDuration)
	}
	stale := e.role == RolePrimary
	e.mu.Unlock()
	if !stale {
		t.Fatalf("leader lost primary role before the fence was tested")
	}
	if e.HoldsLease() {
		t.Fatalf("leader with stale peer contact passes the lease fence")
	}
}

// TestHoldsLeasePairFallback: pair-protocol groups have no lease, so the
// fence degrades to the role check.
func TestHoldsLeasePairFallback(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	if !h.e1.HoldsLease() {
		t.Fatalf("pair primary fails the fence")
	}
	if h.e2.HoldsLease() {
		t.Fatalf("pair backup passes the fence")
	}
}

// TestVoteGateRefusesStaleCandidate: the up-to-date rule. A voter whose
// own store has applied checkpoint seq N refuses its vote to a candidate
// advertising a staler recency, and grants it to one at least as fresh —
// so a checkpoint-starved backup (one-way cut victim) cannot win an
// election and resurrect state from before the cut.
func TestVoteGateRefusesStaleCandidate(t *testing.T) {
	net := netsim.New("ethVote", 1)
	node := cluster.NewNode(trioNames[0], 11, net)
	e, err := NewWithError(node, quorumConfig(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.store.Apply(&checkpoint.Snapshot{
		Seq: 5, Kind: string(checkpoint.KindFull),
		Regions: map[string][]byte{"x": {1}},
	}); err != nil {
		t.Fatal(err)
	}

	votedFor := func() string {
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.lease.votedFor
	}

	// leaderSeen is the zero time: our leader view is long stale, so only
	// the recency gate stands between each candidate and our vote.
	e.observeLease(trioNames[1], heartbeat.GroupState{Cand: true, Term: 0, Ckpt: 3}, time.Now())
	if got := votedFor(); got != "" {
		t.Fatalf("vote granted to checkpoint-starved candidate (ckpt 3 < ours 5): votedFor=%q", got)
	}
	e.observeLease(trioNames[2], heartbeat.GroupState{Cand: true, Term: 0, Ckpt: 5}, time.Now())
	if got := votedFor(); got != trioNames[2] {
		t.Fatalf("vote withheld from up-to-date candidate: votedFor=%q", got)
	}
}

// TestShipSnapshotPartialVerdict: a ship round where one replica
// confirmed and one was unreachable reports checkpoint.ErrPartialShip
// (the FTIM re-bases the broken chain with a full capture); a round
// where nobody confirmed reports plain unavailability.
func TestShipSnapshotPartialVerdict(t *testing.T) {
	h := newTrio(t)
	lead := h.waitSingleLeader(t)
	snap := func(seq uint64) *checkpoint.Snapshot {
		return &checkpoint.Snapshot{Seq: seq, Kind: string(checkpoint.KindFull),
			Regions: map[string][]byte{"x": {byte(seq)}}}
	}
	if err := h.engs[lead].ShipSnapshot(snap(1)); err != nil {
		t.Fatalf("ship with both backups live: %v", err)
	}
	victim := (lead + 1) % 3
	h.engs[victim].Stop()
	err := h.engs[lead].ShipSnapshot(snap(2))
	if !errors.Is(err, checkpoint.ErrPartialShip) {
		t.Fatalf("one backup down: got %v, want ErrPartialShip", err)
	}
	h.engs[(lead+2)%3].Stop()
	err = h.engs[lead].ShipSnapshot(snap(3))
	if err == nil || errors.Is(err, checkpoint.ErrPartialShip) {
		t.Fatalf("both backups down: got %v, want hard failure", err)
	}
}

package engine

import (
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/netsim"
)

// trioHarness wires a 3-replica group over standalone engine transports:
// the smallest membership that activates the lease/quorum election path.
type trioHarness struct {
	net   *netsim.Network
	nodes [3]*cluster.Node
	engs  [3]*Engine
	procs [3]*cluster.Process
}

var trioNames = [3]string{"alpha", "beta", "gamma"}

func quorumConfig(self int) Config {
	var peers []string
	for i, n := range trioNames {
		if i != self {
			peers = append(peers, n)
		}
	}
	return Config{
		GroupID:           "g-lease",
		Peers:             peers,
		HeartbeatInterval: 5 * time.Millisecond,
		PeerTimeout:       30 * time.Millisecond,
		LeaseDuration:     30 * time.Millisecond,
		RPCTimeout:        200 * time.Millisecond,
	}
}

func newTrio(t *testing.T) *trioHarness {
	t.Helper()
	h := &trioHarness{net: netsim.New("ethQ", 1)}
	for i, name := range trioNames {
		h.nodes[i] = cluster.NewNode(name, int64(11+i), h.net)
		e, err := NewWithError(h.nodes[i], quorumConfig(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		h.engs[i] = e
		p, err := h.nodes[i].StartProcess("oftt-engine", func(stop <-chan struct{}) { <-stop })
		if err != nil {
			t.Fatal(err)
		}
		h.procs[i] = p
		if err := e.Start(p); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, e := range h.engs {
			e.Stop()
		}
	})
	return h
}

func (h *trioHarness) primaries() []int {
	var out []int
	for i, e := range h.engs {
		if e.Role() == RolePrimary {
			out = append(out, i)
		}
	}
	return out
}

// waitSingleLeader blocks until exactly one member is primary and the
// others are backup, and returns the leader's index.
func (h *trioHarness) waitSingleLeader(t *testing.T) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		prim := h.primaries()
		if len(prim) == 1 {
			backups := 0
			for i, e := range h.engs {
				if i != prim[0] && e.Role() == RoleBackup {
					backups++
				}
			}
			if backups == 2 {
				return prim[0]
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("group never settled on one leader: roles %s/%s/%s",
		h.engs[0].Role(), h.engs[1].Role(), h.engs[2].Role())
	return -1
}

// cut fully partitions member i from member j, both directions.
func (h *trioHarness) cut(i, j int) {
	h.net.PartitionPrefix(trioNames[i], trioNames[j])
}

func TestLeaseElectsSingleLeader(t *testing.T) {
	h := newTrio(t)
	lead := h.waitSingleLeader(t)
	if term := h.engs[lead].LeaseTerm(); term == 0 {
		t.Fatalf("leader holds term 0; election never ran")
	}
	// Every member agrees on who holds the lease. Agreement is eventual:
	// a follower demoted by a higher-term candidate learns the new
	// leader's identity only from its first primary beat.
	deadline := time.Now().Add(3 * time.Second)
	for {
		agree := 0
		for _, e := range h.engs {
			if e.LeaderNode() == trioNames[lead] {
				agree++
			}
		}
		if agree == len(h.engs) {
			break
		}
		if time.Now().After(deadline) {
			for i, e := range h.engs {
				if got := e.LeaderNode(); got != trioNames[lead] {
					t.Errorf("member %d believes leader is %q, want %q", i, got, trioNames[lead])
				}
			}
			t.FailNow()
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLeaseExpiryDuringPartition isolates the lease holder from both
// followers. The majority side must elect a replacement, and the isolated
// holder must surrender its lease (quorum loss) *while still partitioned*
// — the property the 2-node tie-break cannot provide, since it needs to
// observe the other primary to resolve.
func TestLeaseExpiryDuringPartition(t *testing.T) {
	h := newTrio(t)
	old := h.waitSingleLeader(t)
	oldTerm := h.engs[old].LeaseTerm()

	for i := range h.engs {
		if i != old {
			h.cut(old, i)
		}
	}

	// Majority side elects a new leader at a higher term.
	waitFor(t, "replacement leader on majority side", func() bool {
		for i, e := range h.engs {
			if i != old && e.Role() == RolePrimary && e.LeaseTerm() > oldTerm {
				return true
			}
		}
		return false
	})
	// Isolated holder demotes itself without seeing anyone: lease expiry.
	waitFor(t, "isolated holder surrenders lease", func() bool {
		return h.engs[old].Role() == RoleBackup
	})
	if d := h.engs[old].Demotions(); d < 1 {
		t.Fatalf("old holder recorded %d demotions, want >= 1", d)
	}

	h.net.HealAll()
	lead := h.waitSingleLeader(t)
	if lead == old {
		// Allowed in principle (it could win a later election) but with
		// sticky leases the replacement should still hold the role.
		t.Logf("note: old holder re-elected after heal")
	}
}

// TestStaleLeaseHolderYieldsAfterOneWayCut models the asymmetric failure:
// the holder's outbound beats are lost but its inbound path still works.
// Followers elect a replacement (two leaders briefly coexist); the stale
// holder observes the new term on its intact inbound path and yields —
// before the cut even heals.
func TestStaleLeaseHolderYieldsAfterOneWayCut(t *testing.T) {
	h := newTrio(t)
	old := h.waitSingleLeader(t)
	oldTerm := h.engs[old].LeaseTerm()

	// Outbound-only cut: holder -> followers lost, followers -> holder OK.
	for i := range h.engs {
		if i != old {
			h.net.PartitionPrefixOneWay(trioNames[old], trioNames[i])
		}
	}

	waitFor(t, "replacement leader elected", func() bool {
		for i, e := range h.engs {
			if i != old && e.Role() == RolePrimary && e.LeaseTerm() > oldTerm {
				return true
			}
		}
		return false
	})
	// The stale holder hears the new leader's higher term and steps down
	// while the one-way cut is still in place.
	waitFor(t, "stale holder yields to higher term", func() bool {
		return h.engs[old].Role() == RoleBackup
	})

	h.net.HealAll()
	time.Sleep(100 * time.Millisecond)
	if prim := h.primaries(); len(prim) != 1 {
		t.Fatalf("after heal: %d primaries, want 1", len(prim))
	}
}

// TestLeaseHolderLostMidCheckpoint kills the holder right after it ships
// state: a majority replacement must take over holding the last shipped
// checkpoint (promotion must not reset the backup's store).
func TestLeaseHolderLostMidCheckpoint(t *testing.T) {
	h := newTrio(t)
	lead := h.waitSingleLeader(t)

	reg := checkpoint.NewRegistry()
	state := []byte("plant state v1")
	if err := reg.Register("plant", &state); err != nil {
		t.Fatal(err)
	}
	snap, err := reg.CaptureFull()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.engs[lead].ShipSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	shipped := snap.Seq

	// Confirm at least a majority of backups hold the state, then cut the
	// holder off entirely (node loss).
	waitFor(t, "backups store the checkpoint", func() bool {
		n := 0
		for i, e := range h.engs {
			if i != lead && e.Store().LastSeq() >= shipped {
				n++
			}
		}
		return n >= 1
	})
	for i := range h.engs {
		if i != lead {
			h.cut(lead, i)
		}
	}

	waitFor(t, "replacement leader after holder loss", func() bool {
		for i, e := range h.engs {
			if i != lead && e.Role() == RolePrimary {
				return e.Store().LastSeq() >= shipped
			}
		}
		return false
	})
}

// TestPairKeepsTieBreak gates the election path on membership size: a
// 2-replica group must keep the paper's negotiate/tie-break protocol and
// never open a lease term.
func TestPairKeepsTieBreak(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	if term := h.e1.LeaseTerm(); term != 0 {
		t.Fatalf("pair engine opened lease term %d; pairs must stay on tie-break", term)
	}
	if term := h.e2.LeaseTerm(); term != 0 {
		t.Fatalf("pair engine opened lease term %d; pairs must stay on tie-break", term)
	}
}

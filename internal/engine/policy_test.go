package engine

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStaticPolicyMatchesRule checks StaticPolicy reproduces the classic
// RecoveryRule table: restart within budget, the exhausted action after,
// and immediate escalation when the restart provision itself errored.
func TestStaticPolicyMatchesRule(t *testing.T) {
	p := StaticPolicy{}
	cases := []struct {
		name string
		s    ComponentStats
		want Decision
	}{
		{"within budget", ComponentStats{Attempt: 1, Rule: RecoveryRule{MaxLocalRestarts: 2, Exhausted: ExhaustSwitchover}}, DecideRestart},
		{"at budget", ComponentStats{Attempt: 2, Rule: RecoveryRule{MaxLocalRestarts: 2, Exhausted: ExhaustSwitchover}}, DecideRestart},
		{"over budget switchover", ComponentStats{Attempt: 3, Rule: RecoveryRule{MaxLocalRestarts: 2, Exhausted: ExhaustSwitchover}}, DecideSwitchover},
		{"over budget give up", ComponentStats{Attempt: 3, Rule: RecoveryRule{MaxLocalRestarts: 2, Exhausted: ExhaustGiveUp}}, DecideGiveUp},
		{"keep restarting forever", ComponentStats{Attempt: 100, Rule: RecoveryRule{Exhausted: ExhaustKeepRestarting}}, DecideRestart},
		{"restart errored switchover", ComponentStats{Attempt: 1, FailedRestarts: 1, Rule: RecoveryRule{MaxLocalRestarts: 2, Exhausted: ExhaustSwitchover}}, DecideSwitchover},
		{"restart errored keep restarting", ComponentStats{Attempt: 1, FailedRestarts: 1, Rule: RecoveryRule{Exhausted: ExhaustKeepRestarting}}, decideNone},
	}
	for _, tc := range cases {
		if got := p.Decide(tc.s); got != tc.want {
			t.Errorf("%s: got %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestAdaptivePolicyEscalatesCrashLoop: a component whose failures arrive
// faster than the convergence threshold escalates to switchover even under
// a rule that would keep restarting forever.
func TestAdaptivePolicyEscalatesCrashLoop(t *testing.T) {
	p := &AdaptivePolicy{MaxFailureRate: 5, MinSamples: 3}
	rule := RecoveryRule{Exhausted: ExhaustKeepRestarting}

	// Sparse failures: stays on restart regardless of attempt count.
	s := ComponentStats{Attempt: 10, Rule: rule, FailureRate: 0.5}
	if got := p.Decide(s); got != DecideRestart {
		t.Fatalf("converging restarts: got %s, want restart", got)
	}
	// Crash loop: 20 failures/sec after enough samples.
	s = ComponentStats{Attempt: 3, Rule: rule, FailureRate: 20}
	if got := p.Decide(s); got != DecideSwitchover {
		t.Fatalf("crash loop: got %s, want switchover", got)
	}
	// Same rate but too few samples: trust the restart path a bit longer.
	s = ComponentStats{Attempt: 2, Rule: rule, FailureRate: 20}
	if got := p.Decide(s); got != DecideRestart {
		t.Fatalf("under min samples: got %s, want restart", got)
	}
}

// TestAdaptivePolicyRebuildsOnFailedRestarts: consecutive restart-provision
// errors escalate to demote-and-rebuild after one in-place retry.
func TestAdaptivePolicyRebuildsOnFailedRestarts(t *testing.T) {
	p := &AdaptivePolicy{}
	rule := RecoveryRule{MaxLocalRestarts: 3, Exhausted: ExhaustSwitchover}
	if got := p.Decide(ComponentStats{Attempt: 1, FailedRestarts: 1, Rule: rule}); got != DecideRestart {
		t.Fatalf("first restart error: got %s, want restart (one retry)", got)
	}
	if got := p.Decide(ComponentStats{Attempt: 2, FailedRestarts: 2, Rule: rule}); got != DecideRebuild {
		t.Fatalf("second restart error: got %s, want demote-and-rebuild", got)
	}
}

// TestEWMAFailureRate sanity-checks the engine-side rate estimator: evenly
// spaced failures converge near 1/gap.
func TestEWMAFailureRate(t *testing.T) {
	c := &component{name: "x"}
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		c.observeFailureLocked(base.Add(time.Duration(i) * 100 * time.Millisecond))
	}
	if c.ewmaRate < 9 || c.ewmaRate > 11 {
		t.Fatalf("EWMA after 100ms-spaced failures = %.2f, want ~10", c.ewmaRate)
	}
}

// TestReattachCrashLoopEscalates: an application that crashes, restarts,
// and rebinds via ReattachComponent must keep spending the SAME restart
// budget — a crash loop that re-registered fresh each time would restart
// locally forever and never give the role away.
func TestReattachCrashLoopEscalates(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	rule := RecoveryRule{MaxLocalRestarts: 1, Exhausted: ExhaustSwitchover}
	var restart func() error
	restart = func() error {
		// The restarted application rebinds to its component entry the way
		// a real FTIM reattach does, beats once, then goes silent again —
		// a crash loop.
		if err := h.e1.ReattachComponent("app", 20*time.Millisecond, rule, restart); err != nil {
			return err
		}
		h.e1.ComponentBeat("app", 1, "OK")
		return nil
	}
	if err := h.e1.RegisterComponent("app", 20*time.Millisecond, rule, restart); err != nil {
		t.Fatal(err)
	}
	// Budget is 1 local restart: failure #1 restarts, failure #2 (attempt 2
	// on the preserved budget) must escalate to switchover.
	waitFor(t, "crash loop escalates to switchover", func() bool {
		return h.e2.Role() == RolePrimary && h.e1.Role() == RoleBackup
	})
	if s, ok := h.e1.ComponentStatsOf("app"); !ok || s.Attempt < 2 {
		t.Fatalf("reattach reset the restart budget: stats=%+v ok=%v", s, ok)
	}
}

// TestAdaptiveDemoteOnBrokenRestart: under the adaptive policy a restart
// provision that keeps erroring escalates to demote-and-rebuild — the
// primary gives the role away and resets the component's budget — instead
// of wedging the group (regression test for the demote path).
func TestAdaptiveDemoteOnBrokenRestart(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)
	h.e1.SetRecoveryPolicy(&AdaptivePolicy{RebuildAfterFailedRestarts: 2})

	var mu sync.Mutex
	attempts := 0
	err := h.e1.RegisterComponent("app", 20*time.Millisecond,
		RecoveryRule{MaxLocalRestarts: 5, Exhausted: ExhaustSwitchover},
		func() error {
			mu.Lock()
			attempts++
			mu.Unlock()
			return errors.New("exec format error")
		})
	if err != nil {
		t.Fatal(err)
	}
	// First restart error gets one in-place retry; the second escalates to
	// demote-and-rebuild: the role moves even though budget (5) remains.
	waitFor(t, "demote-and-rebuild moves the role", func() bool {
		return h.e2.Role() == RolePrimary && h.e1.Role() == RoleBackup
	})
	mu.Lock()
	n := attempts
	mu.Unlock()
	if n < 2 {
		t.Fatalf("demoted after %d restart attempts, want >= 2 (one retry first)", n)
	}
	// The rebuild path hands the component a fresh budget.
	waitFor(t, "budget reset after rebuild", func() bool {
		s, ok := h.e1.ComponentStatsOf("app")
		return ok && s.FailedRestarts == 0
	})
}

// Lease/quorum election — the role protocol for groups with three or more
// replicas. The 2-node pair keeps the paper's negotiate-plus-tie-break
// protocol; once a group has a real majority, the fragile lexicographic
// tie-break is replaced by a term-based election in the style of
// freestore's majority-of-servers spec and LLFT's leader-determined
// membership:
//
//   - Election state (term, vote, candidacy) rides the ordinary beat
//     stream — there are no extra message kinds and no per-engine timers.
//     The emitter's pull is the election clock.
//   - A follower that has heard no leader for PeerTimeout (plus a
//     deterministic per-node stagger, so candidacies rarely collide)
//     stands: it increments its term and solicits votes via its beats.
//   - Peers grant at most one vote per term, only while their own view
//     of the leader is stale, and only to candidates whose checkpoint
//     recency is no worse than their own (the log up-to-date rule, so a
//     checkpoint-starved backup cannot win and resurrect old state);
//     grants ride back on their beats.
//   - A candidate counting a majority (its own vote included) takes over.
//     A primary that cannot hear a majority of its group for LeaseDuration
//     demotes itself — the lease expires.
//   - Observing a higher term, or a primary beat at one's own term from a
//     node that wins the tie-break, demotes a stale holder. Two leaders
//     cannot share a term (their vote quorums would intersect), so after a
//     partition heals the holder with the older term always yields.
package engine

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/heartbeat"
	"repro/internal/telemetry"
)

// leaseState is the per-engine election record, guarded by Engine.mu.
type leaseState struct {
	term      uint64
	votedFor  string // node granted our vote this term ("" = none)
	candidate bool
	votes     map[string]bool // peers whose vote we hold this term

	leaderSeen time.Time // last beat observed from a live leader
	leaderNode string
	peerSeen   map[string]time.Time // last beat per peer, for the quorum check
	standAt    time.Time            // earliest time we may (re)stand
	stands     int                  // consecutive candidacies without seeing a leader
}

// quorumOn reports whether this engine runs the lease/quorum election
// path: two or more peers, i.e. a group of three or more replicas.
func (e *Engine) quorumOn() bool { return len(e.peers) >= 2 }

// quorum is the majority size of the full group (peers + self).
func (e *Engine) quorum() int { return (len(e.peers)+1)/2 + 1 }

// electionStagger separates candidacies deterministically: each member
// waits a node-and-group-specific extra fraction of PeerTimeout before
// standing, so concurrent elections (split votes) are rare without
// needing randomness.
func (e *Engine) electionStagger() time.Duration {
	h := fnv.New32a()
	_, _ = h.Write([]byte(e.node.Name()))
	_, _ = h.Write([]byte{'|'})
	_, _ = h.Write([]byte(e.cfg.GroupID))
	return e.cfg.PeerTimeout * time.Duration(h.Sum32()%64) / 64
}

func (e *Engine) electionPatience() time.Duration {
	return e.cfg.PeerTimeout + e.electionStagger()
}

// initLease arms the election clock at Start: every peer gets a grace
// period as if it had just beaten, and this member may not stand before
// one full patience interval elapses.
func (e *Engine) initLease() {
	now := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lease.peerSeen = make(map[string]time.Time, len(e.peers))
	for _, p := range e.peers {
		e.lease.peerSeen[p] = now
	}
	e.lease.leaderSeen = now
	e.lease.standAt = now.Add(e.electionPatience())
}

// isPeer reports group membership of a beat sender.
func (e *Engine) isPeer(node string) bool {
	for _, p := range e.peers {
		if p == node {
			return true
		}
	}
	return false
}

// standLocked opens a candidacy: new term, self-vote, empty tally.
// Consecutive candidacies without an elected leader back off
// exponentially (capped at 8x patience): when beats are delayed — an
// overloaded host, a congested simulation — a fixed patience window can
// expire before the granted votes complete their round trip, and every
// restand invalidates the votes in flight. Widening the window guarantees
// some candidacy eventually outlives the delay. Caller holds e.mu.
func (e *Engine) standLocked(now time.Time) {
	e.lease.term++
	e.lease.votedFor = e.node.Name()
	e.lease.candidate = true
	e.lease.votes = make(map[string]bool, len(e.peers))
	if e.lease.stands < 4 {
		e.lease.stands++
	}
	backoff := time.Duration(1) << (e.lease.stands - 1) // 1x, 2x, 4x, 8x
	e.lease.standAt = now.Add(e.electionPatience() * backoff)
}

// leaseTick advances the election clock. It runs on every outbound beat
// (the emitter callback in own-transport mode, the mux StateSource pull in
// fabric mode), so a group's failover latency is a small multiple of the
// heartbeat interval with no dedicated timers.
func (e *Engine) leaseTick() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	act := e.leaseTickLocked(time.Now())
	e.mu.Unlock()
	if act != nil {
		e.dispatchAct(act)
	}
}

// dispatchAct runs a deferred role transition: asynchronously on the
// shared transport's act worker in fabric mode (the beat and demux loops
// must never block on one group's switchover), inline otherwise.
func (e *Engine) dispatchAct(act func()) {
	if tr := e.cfg.Transport; tr != nil {
		tr.enqueueAct(act)
		return
	}
	act()
}

// wonAt guards a deferred takeover: by the time the act worker runs it,
// a higher term may have been observed, making the win stale.
func (e *Engine) wonAt(term uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lease.term == term && e.lease.leaderNode == e.node.Name()
}

// leaseTickLocked is the election clock's core. Caller holds e.mu and is
// responsible for running the returned action (a demotion or takeover)
// after unlocking — role transitions take the lock themselves.
func (e *Engine) leaseTickLocked(now time.Time) (act func()) {
	ls := &e.lease
	switch {
	case e.role == RolePrimary:
		// Lease renewal: a primary that cannot hear a majority for
		// LeaseDuration must assume a new leader was elected on the other
		// side of a partition, and yields before the partition heals.
		live := 1 // self
		for _, t := range ls.peerSeen {
			if now.Sub(t) <= e.cfg.LeaseDuration {
				live++
			}
		}
		if live < e.quorum() {
			ls.standAt = now.Add(e.electionPatience())
			act = func() {
				e.span("oftt-engine", telemetry.PhaseDecision, "lease expired: quorum lost")
				e.Demote("lease expired: lost contact with quorum")
			}
		}
	case ls.candidate:
		if 1+len(ls.votes) >= e.quorum() {
			ls.candidate = false
			ls.stands = 0
			ls.leaderNode = e.node.Name()
			ls.leaderSeen = now
			term := ls.term
			act = func() {
				if !e.wonAt(term) {
					return
				}
				e.span("oftt-engine", telemetry.PhaseDecision, fmt.Sprintf("lease election won (term %d)", term))
				e.TakeOver(fmt.Sprintf("lease election won (term %d)", term))
			}
		} else if now.After(ls.standAt) {
			// Stalled candidacy (split vote, lost beats): stand again.
			e.standLocked(now)
		}
	default:
		if now.Sub(ls.leaderSeen) > e.cfg.PeerTimeout && now.After(ls.standAt) {
			first := ls.stands == 0
			e.standLocked(now)
			if first {
				// The first stand of an outage episode is this member's
				// failure-detection moment: it opens the recovery trace
				// that a takeover (or the leader reappearing) completes.
				act = func() {
					e.span("oftt-engine", telemetry.PhaseDetect, "leader silent: standing for election")
				}
			}
		}
	}
	return act
}

// observeLease folds one peer's beat entry into the election state. It is
// the receive half of the protocol; leaseTick is the timer half. now is
// the observation timestamp — the demux loop stamps each datagram once
// and shares it across the datagram's entries.
func (e *Engine) observeLease(from string, gs heartbeat.GroupState, now time.Time) {
	if !e.isPeer(from) {
		return
	}
	var acts []func()
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	ls := &e.lease
	if ls.peerSeen == nil {
		ls.peerSeen = make(map[string]time.Time, len(e.peers))
	}
	ls.peerSeen[from] = now
	peerRole := Role(gs.Role)

	// A higher term deposes: whatever we were doing belongs to a stale
	// epoch. (A primary stepping down here is the plain-Raft disruption on
	// rejoin; it costs one extra switchover, never a dual primary.)
	if gs.Term > ls.term {
		wasPrimary := e.role == RolePrimary
		ls.term = gs.Term
		ls.votedFor = ""
		ls.candidate = false
		if ls.leaderNode != from {
			// Whoever we thought led belongs to the stale epoch; the new
			// term's leader is unknown until its primary beat arrives.
			ls.leaderNode = ""
		}
		ls.standAt = now.Add(e.electionPatience())
		if wasPrimary {
			term := gs.Term
			acts = append(acts, func() {
				e.event("engine", "role", fmt.Sprintf("stale lease holder: observed term %d; demoting", term))
				e.Demote(fmt.Sprintf("stale lease: higher term %d observed", term))
			})
		}
	}

	// A current-term leader refreshes the lease we grant it.
	if peerRole == RolePrimary && gs.Term >= ls.term {
		if ls.candidate || ls.stands > 0 {
			// We had detected an outage (opened a recovery trace by
			// standing) but a live leader reappeared: close the episode so
			// the dangling trace cannot swallow a later, real recovery.
			acts = append(acts, func() {
				e.span("oftt-engine", telemetry.PhaseRecovered, "stood down: leader "+from+" alive")
			})
		}
		ls.leaderSeen = now
		ls.leaderNode = from
		ls.candidate = false
		ls.stands = 0
		ls.standAt = now.Add(e.electionPatience())
		if e.role == RoleNegotiating {
			acts = append(acts, func() { e.becomeBackup("lease: leader " + from + " observed") })
		}
		// Belt and braces: two leaders at the same term cannot both hold a
		// vote quorum, but if the impossible happens (store corruption,
		// future bugs) the tie-break resolves it instead of livelocking.
		if e.role == RolePrimary && from != e.node.Name() && !e.winsTie(false, from) {
			acts = append(acts, func() {
				e.event("engine", "role", "dual lease holder at equal term; demoting (tie-break)")
				e.Demote("dual lease holder tie-break")
			})
		}
	}

	// Grant at most one vote per term, and only while our own leader view
	// is stale — a live leader's followers do not join insurgencies.
	//
	// The recency gate (gs.Ckpt >= our own applied checkpoint seq) is the
	// Raft §5.4.1 up-to-date check translated to checkpoint shipping: a
	// backup the primary could not reach — say the victim of a one-way
	// link cut — keeps hearing the group and can stand, but electing it
	// would resurrect state as old as the cut, losing every update acked
	// since. Both backups' stores apply the same shipped stream (reset
	// together at each reign change), so the seqs are directly
	// comparable; refusing a staler candidate is safe for liveness
	// because the freshest live member is exactly the one every other
	// member will grant.
	if gs.Cand && gs.Term == ls.term && e.role != RolePrimary &&
		(ls.votedFor == "" || ls.votedFor == from) &&
		gs.Ckpt >= e.store.LastSeq() &&
		now.Sub(ls.leaderSeen) > e.cfg.PeerTimeout {
		ls.votedFor = from
		// Give the candidate a full patience interval before competing.
		ls.standAt = now.Add(e.electionPatience())
	}

	// Count votes granted to us while standing.
	if ls.candidate && gs.Term == ls.term && gs.Vote == e.node.Name() {
		ls.votes[from] = true
		if 1+len(ls.votes) >= e.quorum() {
			ls.candidate = false
			ls.stands = 0
			ls.leaderNode = e.node.Name()
			ls.leaderSeen = now
			term := ls.term
			acts = append(acts, func() {
				if !e.wonAt(term) {
					return
				}
				e.span("oftt-engine", telemetry.PhaseDecision, fmt.Sprintf("lease election won (term %d)", term))
				e.TakeOver(fmt.Sprintf("lease election won (term %d)", term))
			})
		}
	}
	e.mu.Unlock()
	for _, a := range acts {
		e.dispatchAct(a)
	}
}

// LeaseTerm reports the current election term (tests, monitor).
func (e *Engine) LeaseTerm() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lease.term
}

// LeaderNode reports who this member believes holds the lease.
func (e *Engine) LeaderNode() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lease.leaderNode
}

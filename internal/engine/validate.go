package engine

import (
	"errors"
	"fmt"
)

// Validation sentinels. Callers match them with errors.Is through the
// wrapping ConfigError.
var (
	// ErrDuplicatePeer: the same node name appears twice in the membership.
	ErrDuplicatePeer = errors.New("duplicate node name")
	// ErrBadTimeout: a timeout or interval is not positive.
	ErrBadTimeout = errors.New("timeout must be positive")
	// ErrTooFewReplicas: a group needs at least two replicas (self + 1 peer).
	ErrTooFewReplicas = errors.New("replica count < 2")
)

// ConfigError reports which field of a Config failed validation; it
// unwraps to one of the sentinel errors above.
type ConfigError struct {
	Field string
	Err   error
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("engine: config field %s: %v", e.Field, e.Err)
}

func (e *ConfigError) Unwrap() error { return e.Err }

// Validate checks a fully specified Config. It is strict: zero timeouts
// are rejected, not defaulted — NewWithError applies defaults first, so
// zero-valued fields from callers still mean "use the default"; Validate
// exists for code (the fabric, tests) that builds explicit configs and
// wants contradictions surfaced as typed errors instead of silently
// papered over.
func (c *Config) Validate() error {
	peers := c.Peers
	if len(peers) == 0 && c.PeerNode != "" {
		peers = []string{c.PeerNode}
	}
	if len(peers) == 0 {
		return &ConfigError{Field: "Peers", Err: ErrTooFewReplicas}
	}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" {
			return &ConfigError{Field: "Peers", Err: fmt.Errorf("%w: empty node name", ErrDuplicatePeer)}
		}
		if seen[p] {
			return &ConfigError{Field: "Peers", Err: fmt.Errorf("%w: %q", ErrDuplicatePeer, p)}
		}
		seen[p] = true
	}
	for _, f := range []struct {
		name string
		d    int64
	}{
		{"HeartbeatInterval", int64(c.HeartbeatInterval)},
		{"PeerTimeout", int64(c.PeerTimeout)},
		{"SweepInterval", int64(c.SweepInterval)},
		{"RPCTimeout", int64(c.RPCTimeout)},
		{"CheckpointAckTimeout", int64(c.CheckpointAckTimeout)},
		{"LeaseDuration", int64(c.LeaseDuration)},
	} {
		if f.d <= 0 {
			return &ConfigError{Field: f.name, Err: ErrBadTimeout}
		}
	}
	if c.PeerTimeout < c.HeartbeatInterval {
		return &ConfigError{Field: "PeerTimeout", Err: fmt.Errorf("%w: shorter than the heartbeat interval", ErrBadTimeout)}
	}
	return nil
}

// validateFor finishes validation with knowledge of the hosting node:
// membership must not include the node itself.
func (c *Config) validateFor(self string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	for _, p := range c.Peers {
		if p == self {
			return &ConfigError{Field: "Peers", Err: fmt.Errorf("%w: %q is the hosting node", ErrDuplicatePeer, p)}
		}
	}
	return nil
}

package engine

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// fullPartition cuts every engine channel between the pair, both ways.
func (h *pairHarness) fullPartition() {
	h.nets[0].PartitionPrefix("node1", "node2")
}

// splitBrainTrace returns the completed trace closed by the split-brain
// tie-break, if any.
func (h *pairHarness) splitBrainTrace() (telemetry.Trace, bool) {
	for _, tr := range h.hub.Tracer().Traces() {
		if !tr.Complete {
			continue
		}
		if ev, ok := tr.First(telemetry.PhaseDecision); ok &&
			ev.Detail == "split-brain tie-break: demote" {
			return tr, true
		}
		// The decision may not be the trace's first decision (the takeover
		// decision precedes it); scan all events.
		for _, ev := range tr.Events {
			if ev.Phase == telemetry.PhaseDecision &&
				ev.Detail == "split-brain tie-break: demote" {
				return tr, true
			}
		}
	}
	return telemetry.Trace{}, false
}

// TestSplitBrainDemotesExactlyOne partitions the pair symmetrically until
// both sides claim primary, heals, and checks that the lexicographic
// tie-break demotes exactly one engine (node2 > node1 loses) and closes a
// recovery trace spanning detection through resolution.
func TestSplitBrainDemotesExactlyOne(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	h.fullPartition()
	waitFor(t, "dual primary", func() bool {
		return h.e1.Role() == RolePrimary && h.e2.Role() == RolePrimary
	})

	h.nets[0].HealAll()
	h.waitRoles(t, RolePrimary, RoleBackup)

	if d := h.e2.Demotions(); d != 1 {
		t.Fatalf("losing engine demoted %d times, want exactly 1", d)
	}
	if d := h.e1.Demotions(); d != 0 {
		t.Fatalf("winning engine demoted %d times, want 0", d)
	}
	tr, ok := h.splitBrainTrace()
	if !ok {
		t.Fatal("no completed recovery trace for the split-brain resolution")
	}
	if !tr.HasOrdered(telemetry.PhaseDetect, telemetry.PhaseDecision, telemetry.PhaseRecovered) {
		t.Fatalf("trace missing detect->decision->recovered ordering:\n%s", tr)
	}
	if tr.Duration() <= 0 {
		t.Fatalf("trace has no measurable duration:\n%s", tr)
	}
}

// TestAsymmetricSplitBrainResolvesOnHeal cuts only the node1->node2
// direction: node2 stops hearing the primary and promotes, while node1
// still hears node2. During the cut node1 sees node2's PRIMARY beats but
// holds its role (node1 < node2: the tie-break demotes the receiver only
// when its own name is larger). After the heal node2 hears node1's PRIMARY
// beats and must be the one — and only one — to demote.
func TestAsymmetricSplitBrainResolvesOnHeal(t *testing.T) {
	h := newPair(t, false)
	h.waitRoles(t, RolePrimary, RoleBackup)

	h.nets[0].PartitionPrefixOneWay("node1", "node2")
	waitFor(t, "backup promotes behind one-way cut", func() bool {
		return h.e2.Role() == RolePrimary
	})
	// The reverse direction stayed up the whole time, and node1 must not
	// have flinched on seeing the usurper's beats.
	if h.e1.Role() != RolePrimary {
		t.Fatalf("surviving primary changed role during one-way cut: %s", h.e1.Role())
	}

	h.nets[0].HealPrefix("node1", "node2")
	h.waitRoles(t, RolePrimary, RoleBackup)

	if d := h.e2.Demotions(); d != 1 {
		t.Fatalf("losing engine demoted %d times, want exactly 1", d)
	}
	if d := h.e1.Demotions(); d != 0 {
		t.Fatalf("winning engine demoted %d times, want 0", d)
	}
	if _, ok := h.splitBrainTrace(); !ok {
		t.Fatal("no completed recovery trace for the asymmetric split-brain resolution")
	}
}

// TestDisableTieBreakLeavesDualPrimary is the chaos-harness knob's unit
// face: with DisableTieBreak set neither side demotes after a heal, which
// is exactly the broken invariant the campaign checker must catch.
func TestDisableTieBreakLeavesDualPrimary(t *testing.T) {
	nets := []*netsim.Network{netsim.New("ethA", 1)}
	node1 := cluster.NewNode("node1", 1, nets...)
	node2 := cluster.NewNode("node2", 2, nets...)
	cfg1 := fastConfig("node2")
	cfg1.DisableTieBreak = true
	cfg2 := fastConfig("node1")
	cfg2.DisableTieBreak = true
	e1 := New(node1, cfg1, nil)
	e2 := New(node2, cfg2, nil)
	if err := e1.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(nil); err != nil {
		t.Fatal(err)
	}
	defer e1.Stop()
	defer e2.Stop()
	waitFor(t, "pair", func() bool {
		return e1.Role() == RolePrimary && e2.Role() == RoleBackup
	})

	nets[0].PartitionPrefix("node1", "node2")
	waitFor(t, "dual primary", func() bool {
		return e1.Role() == RolePrimary && e2.Role() == RolePrimary
	})
	nets[0].HealAll()

	// Give the tie-break ample opportunity to (wrongly) fire.
	time.Sleep(150 * time.Millisecond)
	if e1.Role() != RolePrimary || e2.Role() != RolePrimary {
		t.Fatalf("roles changed with tie-break disabled: %s/%s", e1.Role(), e2.Role())
	}
	if e1.Demotions()+e2.Demotions() != 0 {
		t.Fatalf("demotions happened with tie-break disabled: %d/%d",
			e1.Demotions(), e2.Demotions())
	}
}

package engine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
)

func validQuorumConfig() Config {
	return Config{
		Peers:                []string{"b", "c"},
		HeartbeatInterval:    5 * time.Millisecond,
		PeerTimeout:          25 * time.Millisecond,
		SweepInterval:        5 * time.Millisecond,
		RPCTimeout:           200 * time.Millisecond,
		CheckpointAckTimeout: time.Second,
		LeaseDuration:        25 * time.Millisecond,
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
		field   string
	}{
		{name: "valid", mutate: func(c *Config) {}},
		{name: "valid pair via PeerNode", mutate: func(c *Config) {
			c.Peers = nil
			c.PeerNode = "b"
		}},
		{
			name:    "no peers",
			mutate:  func(c *Config) { c.Peers, c.PeerNode = nil, "" },
			wantErr: ErrTooFewReplicas, field: "Peers",
		},
		{
			name:    "duplicate peer",
			mutate:  func(c *Config) { c.Peers = []string{"b", "c", "b"} },
			wantErr: ErrDuplicatePeer, field: "Peers",
		},
		{
			name:    "empty peer name",
			mutate:  func(c *Config) { c.Peers = []string{"b", ""} },
			wantErr: ErrDuplicatePeer, field: "Peers",
		},
		{
			name:    "zero heartbeat interval",
			mutate:  func(c *Config) { c.HeartbeatInterval = 0 },
			wantErr: ErrBadTimeout, field: "HeartbeatInterval",
		},
		{
			name:    "negative peer timeout",
			mutate:  func(c *Config) { c.PeerTimeout = -time.Second },
			wantErr: ErrBadTimeout, field: "PeerTimeout",
		},
		{
			name:    "zero rpc timeout",
			mutate:  func(c *Config) { c.RPCTimeout = 0 },
			wantErr: ErrBadTimeout, field: "RPCTimeout",
		},
		{
			name:    "zero lease duration",
			mutate:  func(c *Config) { c.LeaseDuration = 0 },
			wantErr: ErrBadTimeout, field: "LeaseDuration",
		},
		{
			name:    "peer timeout under heartbeat interval",
			mutate:  func(c *Config) { c.PeerTimeout = 2 * time.Millisecond },
			wantErr: ErrBadTimeout, field: "PeerTimeout",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validQuorumConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.wantErr)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %T, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
}

// TestNewRejectsSelfMembership: an engine whose peer list names its own
// node is a typed construction error, not a runtime surprise.
func TestNewRejectsSelfMembership(t *testing.T) {
	net := netsim.New("ethV", 1)
	node := cluster.NewNode("self", 31, net)
	cfg := validQuorumConfig()
	cfg.Peers = []string{"self", "b"}
	_, err := NewWithError(node, cfg, nil)
	if !errors.Is(err, ErrDuplicatePeer) {
		t.Fatalf("NewWithError = %v, want ErrDuplicatePeer (self in membership)", err)
	}
}

// TestNewDefaultsZeroTimeouts: the constructor path still treats zero as
// "use the default" — strictness lives in Validate for explicit configs.
func TestNewDefaultsZeroTimeouts(t *testing.T) {
	net := netsim.New("ethW", 1)
	node := cluster.NewNode("a", 32, net)
	e, err := NewWithError(node, Config{PeerNode: "b"}, nil)
	if err != nil {
		t.Fatalf("NewWithError with zero timeouts: %v", err)
	}
	if e.cfg.HeartbeatInterval <= 0 || e.cfg.PeerTimeout <= 0 || e.cfg.LeaseDuration <= 0 {
		t.Fatalf("defaults not applied: %+v", e.cfg)
	}
}

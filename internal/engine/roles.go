package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dcom"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// negotiate runs the startup role protocol of Section 3.2: contact the
// peer engine, exchange roles, and decide primary/backup; retry several
// times before acting alone.
func (e *Engine) negotiate() {
	policy := e.cfg.Startup
	for attempt := 1; attempt <= policy.Retries; attempt++ {
		select {
		case <-e.stop:
			return
		default:
		}
		resp, err := e.hello()
		if err == nil {
			e.decideRole(resp)
			return
		}
		e.event("engine", "info",
			fmt.Sprintf("negotiation attempt %d/%d failed: %v", attempt, policy.Retries, err))
		select {
		case <-e.stop:
			return
		case <-time.After(policy.RetryInterval):
		}
		// A takeover/demotion may have resolved the role concurrently
		// (e.g. the peer called Hello on us while our dial was failing).
		if e.Role() != RoleNegotiating {
			return
		}
	}

	switch policy.Alone {
	case AloneBecomePrimary:
		e.event("engine", "role", "peer unreachable after retries; running alone as primary")
		e.becomePrimary("negotiation: alone")
	default: // AloneShutdown — the paper's original logic
		e.event("engine", "role", "peer unreachable after retries; shutting down (AloneShutdown policy)")
		e.setRole(RoleShutdown, "negotiation: alone shutdown")
	}
}

// hello performs one negotiation round-trip.
func (e *Engine) hello() (helloResp, error) {
	e.mu.Lock()
	req := helloReq{
		Node:        e.node.Name(),
		Incarnation: e.incarnation,
		Role:        int(e.role),
		Preferred:   e.cfg.Preferred,
	}
	e.mu.Unlock()

	var resp helloResp
	if err := e.peerCall("Hello", []any{&resp}, req); err != nil {
		return helloResp{}, err
	}
	return resp, nil
}

// decideRole applies the negotiation outcome from the peer's response.
func (e *Engine) decideRole(peer helloResp) {
	if e.Role() != RoleNegotiating {
		return // already resolved concurrently
	}
	switch Role(peer.Role) {
	case RolePrimary:
		e.becomeBackup("negotiation: peer is primary")
	case RoleBackup, RoleShutdown:
		e.becomePrimary("negotiation: peer is " + Role(peer.Role).String())
	default:
		// Both negotiating: deterministic tie-break — preference first,
		// then lexicographic node name.
		if e.winsTie(peer.Preferred, peer.Node) {
			e.becomePrimary("negotiation: won tie-break")
		} else {
			e.becomeBackup("negotiation: lost tie-break")
		}
	}
}

func (e *Engine) winsTie(peerPreferred bool, peerNode string) bool {
	if e.cfg.Preferred != peerPreferred {
		return e.cfg.Preferred
	}
	return e.node.Name() < peerNode
}

// setRole performs the transition and fires callbacks (off the lock).
func (e *Engine) setRole(r Role, reason string) {
	e.mu.Lock()
	if e.stopped && r != RoleShutdown {
		e.mu.Unlock()
		return
	}
	if e.role == r {
		e.mu.Unlock()
		return
	}
	e.role = r
	e.incarnation++
	if r == RolePrimary {
		e.switchovers++
	}
	callbacks := make([]func(Role), len(e.onRole))
	copy(callbacks, e.onRole)
	e.mu.Unlock()

	if e.emitter != nil {
		e.emitter.SetStatus(r.String())
	}
	e.ins.roleTransitions.Inc()
	if r == RolePrimary {
		e.ins.switchovers.Inc()
		// Before the app-activation callbacks run, so the rebind/deliver
		// spans they trigger land after this one on the timeline. During
		// negotiated startup no recovery trace is open and the tracer
		// drops this as an orphan.
		e.span("oftt-engine", telemetry.PhaseSwitchover, reason)
	}
	e.event("engine", "role", fmt.Sprintf("role -> %s (%s)", r, reason))
	e.reportStatus()
	for _, fn := range callbacks {
		fn(r)
	}
}

func (e *Engine) becomePrimary(reason string) {
	e.setRole(RolePrimary, reason)
}

func (e *Engine) becomeBackup(reason string) {
	// A fresh backup must accept the new primary's checkpoint stream from
	// sequence one.
	e.store.Reset()
	e.setRole(RoleBackup, reason)
}

// TakeOver promotes this engine to primary immediately: the switchover
// path. The FTIM's role callback restores the latest checkpoint and
// activates the application copy.
func (e *Engine) TakeOver(reason string) {
	if e.Role() == RolePrimary {
		return
	}
	start := time.Now()
	e.closeSender() // any stale primary-side plumbing
	e.becomePrimary("takeover: " + reason)
	// Includes the role callbacks, i.e. checkpoint restore and app
	// activation — the paper's switchover duration, not just the role flip.
	e.ins.switchoverDur.ObserveDuration(time.Since(start))
}

// Demote retires this engine to backup (commanded switchover, split-brain
// resolution).
func (e *Engine) Demote(reason string) {
	if r := e.Role(); r != RolePrimary && r != RoleNegotiating {
		return
	}
	e.closeSender()
	e.becomeBackup("demote: " + reason)
	e.ins.demotions.Inc()
	e.mu.Lock()
	e.demotions++
	e.mu.Unlock()
}

// onPeerFailure reacts to loss of all peer heartbeats.
func (e *Engine) onPeerFailure() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.peerFailed = true
	role := e.role
	e.mu.Unlock()

	e.span("oftt-engine", telemetry.PhaseDetect, "peer heartbeats lost")
	e.event("engine", "failure", "peer engine heartbeats lost on all segments")
	e.reportStatus()
	// The dead peer cannot update its own monitor row; report on its
	// behalf so the dashboard reflects reality.
	e.sink.ReportStatus(telemetry.Status{
		Node:      e.cfg.PeerNode,
		Component: "node",
		Kind:      telemetry.KindHardware,
		State:     "FAILED",
		Detail:    "heartbeats lost (reported by " + e.node.Name() + ")",
		UpdatedAt: time.Now(),
	})

	switch role {
	case RoleBackup:
		// The primary is gone: take over with the latest checkpoint.
		e.span("oftt-engine", telemetry.PhaseDecision, "take over: primary lost")
		e.TakeOver("primary heartbeats lost")
	case RolePrimary:
		// The backup is gone: keep running; checkpoints will fail until
		// the peer returns.
		e.closeSender()
	case RoleNegotiating:
		// negotiate() handles retries; nothing to do here.
	}
}

// onPeerRecovered reacts to the peer beating again after a failure.
func (e *Engine) onPeerRecovered() {
	e.mu.Lock()
	e.peerFailed = false
	e.mu.Unlock()
	e.event("engine", "recovery", "peer engine heartbeats resumed")
	e.reportStatus()
	e.sink.ReportStatus(telemetry.Status{
		Node:      e.cfg.PeerNode,
		Component: "node",
		Kind:      telemetry.KindHardware,
		State:     "UP",
		Detail:    "heartbeats resumed (reported by " + e.node.Name() + ")",
		UpdatedAt: time.Now(),
	})
}

// PeerFailed reports the detector's current view of the peer.
func (e *Engine) PeerFailed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peerFailed
}

// peerCall invokes a method on the pair peer's control interface (the
// 2-replica protocol path).
func (e *Engine) peerCall(method string, out []any, args ...any) error {
	return e.peerCallNode(e.cfg.PeerNode, method, out, args...)
}

// peerCallNode invokes a method on one peer's member of this group,
// (re)dialing as needed. On a fabric transport the call rides the node's
// shared group-routed client; standalone engines keep one client per peer.
func (e *Engine) peerCallNode(peer, method string, out []any, args ...any) error {
	if tr := e.cfg.Transport; tr != nil {
		return tr.call(peer, e.cfg.GroupID, method, out, args...)
	}
	e.peerMu.Lock()
	defer e.peerMu.Unlock()

	client := e.peerClients[peer]
	if client == nil || client.Broken() {
		if client != nil {
			client.Close()
			delete(e.peerClients, peer)
		}
		var err error
		client, err = e.dialPeerRPC(peer)
		if err != nil {
			return err
		}
		e.peerClients[peer] = client
	}
	err := client.Object(EngineOID).Call(method, out, args...)
	if err != nil && client.Broken() {
		client.Close()
		delete(e.peerClients, peer)
	}
	return err
}

func (e *Engine) dialPeerRPC(peer string) (*dcom.Client, error) {
	from := e.node.Addr("engine-rpc-cli")
	to := netsim.Addr(peer + ":engine-rpc")
	// Bound each segment's connect attempt by the RPC timeout: a failover
	// decision must never wait on a hung dial longer than it would wait on
	// a hung call.
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.RPCTimeout)
	defer cancel()
	var lastErr error
	for _, n := range e.networks {
		client, err := dcom.DialContext(ctx, n, from, to)
		if err == nil {
			client.SetTimeout(e.cfg.RPCTimeout)
			return client, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrPeerUnavailable
	}
	return nil, fmt.Errorf("%w: %v", ErrPeerUnavailable, lastErr)
}

// ShipSnapshot sends a checkpoint to every peer's store — the FTIM calls
// this on every checkpoint period and on OFTTSave. Only the primary
// ships; the ship succeeds if at least one replica confirmed the state.
// On a fabric transport checkpoints ride the shared group-routed RPC; a
// standalone engine keeps one streaming checkpoint channel per peer.
//
// Peers ship in parallel, each serialized by its own shipper: one
// unreachable or backpressured replica (a cut link buffering into a dead
// TCP window) must not starve the healthy replicas of checkpoints — the
// healthy side's recency is exactly what bounds state loss at the next
// failover. A round where some replicas confirmed and some did not
// returns checkpoint.ErrPartialShip so the caller re-bases the broken
// chains with a full snapshot.
func (e *Engine) ShipSnapshot(snap *checkpoint.Snapshot) error {
	if e.Role() != RolePrimary {
		return ErrNotPrimary
	}
	if tr := e.cfg.Transport; tr != nil {
		data, err := snap.Encode()
		if err != nil {
			return err
		}
		var lastErr error
		ok := 0
		for _, peer := range e.peers {
			if err := tr.call(peer, e.cfg.GroupID, "StoreSnapshot", nil, data); err != nil {
				lastErr = err
				continue
			}
			ok++
		}
		return shipVerdict(ok, len(e.peers), lastErr)
	}
	var (
		wg      sync.WaitGroup
		resMu   sync.Mutex
		lastErr error
		ok      int
	)
	for _, peer := range e.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			err := e.shipTo(peer, snap)
			resMu.Lock()
			if err != nil {
				lastErr = err
			} else {
				ok++
			}
			resMu.Unlock()
		}(peer)
	}
	wg.Wait()
	return shipVerdict(ok, len(e.peers), lastErr)
}

// shipVerdict folds a fan-out's per-replica outcomes into the ship
// contract: all confirmed = nil, none = the failure, some = partial.
func shipVerdict(ok, total int, lastErr error) error {
	switch {
	case ok == total:
		return nil
	case ok == 0:
		if lastErr == nil {
			lastErr = ErrPeerUnavailable
		}
		return fmt.Errorf("%w: checkpoint ship: %v", ErrPeerUnavailable, lastErr)
	default:
		return fmt.Errorf("%w: %d/%d confirmed: %v", checkpoint.ErrPartialShip, ok, total, lastErr)
	}
}

// peerShipper owns one peer's checkpoint channel. sendMu serializes whole
// dial-and-send rounds; mu guards only the sender pointer so close can
// interrupt an in-flight send without waiting out its ack timeout.
type peerShipper struct {
	sendMu sync.Mutex
	mu     sync.Mutex
	sender *checkpoint.Sender
}

func (ps *peerShipper) close() {
	ps.mu.Lock()
	s := ps.sender
	ps.sender = nil
	ps.mu.Unlock()
	if s != nil {
		s.Close()
	}
}

// shipper returns peer's shipper, creating it on first use.
func (e *Engine) shipper(peer string) *peerShipper {
	e.peerMu.Lock()
	defer e.peerMu.Unlock()
	ps := e.senders[peer]
	if ps == nil {
		ps = &peerShipper{}
		e.senders[peer] = ps
	}
	return ps
}

// shipTo sends one snapshot down one peer's checkpoint channel.
func (e *Engine) shipTo(peer string, snap *checkpoint.Snapshot) error {
	return e.shipWith(peer, func(s *checkpoint.Sender) error { return s.Send(snap) })
}

// shipWith runs one send round on peer's checkpoint channel, (re)dialing
// as needed. A send failure tears the channel down so the next round
// dials fresh — and, for snapshot streams, resumes from the receiver's
// buffered partial transfer.
func (e *Engine) shipWith(peer string, send func(*checkpoint.Sender) error) error {
	ps := e.shipper(peer)
	ps.sendMu.Lock()
	defer ps.sendMu.Unlock()
	ps.mu.Lock()
	sender := ps.sender
	ps.mu.Unlock()
	if sender == nil {
		s, err := e.dialCheckpoint(peer)
		if err != nil {
			return err
		}
		sender = s
		ps.mu.Lock()
		ps.sender = sender
		ps.mu.Unlock()
	}
	if err := send(sender); err != nil {
		ps.mu.Lock()
		if ps.sender == sender {
			ps.sender = nil
		}
		ps.mu.Unlock()
		sender.Close()
		return err
	}
	return nil
}

// ShipOps sends an op-log batch to every peer's store — the FTIM's
// continuous replication lane between checkpoint anchors. Standalone
// pairs ride the same streaming checkpoint channel (total order with
// snapshots per peer); fabric groups ride the shared group-routed RPC.
// The verdict contract matches ShipSnapshot: any failed replica means the
// caller must re-base (checkpoint.ErrPartialShip or worse), because a
// replica that missed ops can no longer replay to the primary's state.
func (e *Engine) ShipOps(batch *checkpoint.OpBatch) error {
	if e.Role() != RolePrimary {
		return ErrNotPrimary
	}
	if batch == nil || len(batch.Ops) == 0 {
		return nil
	}
	if tr := e.cfg.Transport; tr != nil {
		data, err := batch.Encode()
		if err != nil {
			return err
		}
		var lastErr error
		ok := 0
		for _, peer := range e.peers {
			if err := tr.call(peer, e.cfg.GroupID, "StoreOps", nil, data); err != nil {
				lastErr = err
				continue
			}
			ok++
		}
		return shipVerdict(ok, len(e.peers), lastErr)
	}
	var (
		wg      sync.WaitGroup
		resMu   sync.Mutex
		lastErr error
		ok      int
	)
	for _, peer := range e.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			err := e.shipWith(peer, func(s *checkpoint.Sender) error { return s.SendOps(batch) })
			resMu.Lock()
			if err != nil {
				lastErr = err
			} else {
				ok++
			}
			resMu.Unlock()
		}(peer)
	}
	wg.Wait()
	return shipVerdict(ok, len(e.peers), lastErr)
}

func (e *Engine) dialCheckpoint(peer string) (*checkpoint.Sender, error) {
	from := e.node.Addr("engine-ckpt-cli")
	to := netsim.Addr(peer + ":engine-ckpt")
	var lastErr error
	for _, n := range e.networks {
		conn, err := n.Dial(from, to)
		if err == nil {
			return checkpoint.NewStreamSender(conn, checkpoint.StreamConfig{
				ChunkSize:   e.cfg.CheckpointChunkSize,
				Window:      e.cfg.CheckpointWindow,
				Compress:    e.cfg.CheckpointCompress,
				AckTimeout:  e.cfg.CheckpointAckTimeout,
				Instruments: e.streamIns,
			}), nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: checkpoint channel: %v", ErrPeerUnavailable, lastErr)
}

func (e *Engine) closeSender() {
	e.peerMu.Lock()
	defer e.peerMu.Unlock()
	for peer, ps := range e.senders {
		ps.close()
		delete(e.senders, peer)
	}
}

// Materialize restores the latest received checkpoint into a registry —
// the takeover path ("start running with the latest checkpoint").
func (e *Engine) Materialize(reg *checkpoint.Registry) error {
	return e.store.Materialize(reg)
}

// RecoverFromPeer pulls the peer's latest stored checkpoint and restores
// it into reg. A primary uses this to rehydrate a locally restarted
// application: the freshest copy of its state lives in the backup's store.
func (e *Engine) RecoverFromPeer(reg *checkpoint.Registry) (bool, error) {
	var lastErr error
	for _, peer := range e.peers {
		var data []byte
		if err := e.peerCallNode(peer, "FetchSnapshot", []any{&data}); err != nil {
			lastErr = err
			continue
		}
		if len(data) == 0 {
			continue // this peer has nothing stored yet
		}
		snap, err := checkpoint.DecodeSnapshot(data)
		if err != nil {
			return false, err
		}
		if err := reg.Restore(snap); err != nil {
			return false, err
		}
		return true, nil
	}
	if lastErr != nil {
		return false, fmt.Errorf("engine: fetch peer snapshot: %w", lastErr)
	}
	return false, nil
}

// RequestSwitchover asks the peer to take over and demotes this node. It
// is the engine half of OFTTDistress: honored only "if application on the
// peer node is functional".
func (e *Engine) RequestSwitchover(reason string) error {
	if e.Role() != RolePrimary {
		return ErrNotPrimary
	}
	if e.quorumOn() {
		// Quorum groups have no designated successor: step down and let
		// the lease election promote whichever replica wins the majority.
		e.Demote("switchover: " + reason)
		return nil
	}
	if e.PeerFailed() {
		return fmt.Errorf("%w: cannot switch over", ErrPeerUnavailable)
	}
	// Demote first, then hand the role over: the reverse order opens a
	// dual-primary window that races the split-brain tie-break and can
	// strand the pair with no primary at all.
	e.Demote("switchover: " + reason)
	if err := e.peerCall("TakeOverRPC", nil, reason); err != nil {
		// The peer never got the role: take it back.
		e.TakeOver("switchover handoff failed: " + reason)
		return fmt.Errorf("engine: switchover request: %w", err)
	}
	return nil
}

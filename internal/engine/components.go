package engine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/heartbeat"
	"repro/internal/telemetry"
)

// RegisterComponent places a local software component under failure
// detection: if its heartbeats stop for timeout, recovery management
// applies the rule. restart is the local recovery provision (may be nil if
// the rule never restarts locally).
func (e *Engine) RegisterComponent(name string, timeout time.Duration, rule RecoveryRule, restart func() error) error {
	if name == "" || name == peerSource {
		return fmt.Errorf("engine: invalid component name %q", name)
	}
	if timeout <= 0 {
		timeout = 5 * e.cfg.HeartbeatInterval
	}
	e.mu.Lock()
	if _, dup := e.components[name]; dup {
		e.mu.Unlock()
		return fmt.Errorf("engine: component %q already registered", name)
	}
	c := &component{name: name, timeout: timeout, rule: rule, restart: restart}
	e.components[name] = c
	e.mu.Unlock()

	e.monitor().Watch(e.monKey(name), timeout, func(_ string, lastSeen time.Time) {
		e.onComponentFailure(name, lastSeen)
	})
	e.sink.ReportStatus(telemetry.Status{
		Node:      e.node.Name(),
		Component: name,
		Kind:      telemetry.KindFTIM,
		State:     "RUNNING",
		UpdatedAt: time.Now(),
	})
	return nil
}

// ReattachComponent rebinds a restarted application to its existing
// component entry, preserving the restart budget so a crash-looping
// application still exhausts its local restarts and escalates. If the
// component is unknown it behaves like RegisterComponent.
func (e *Engine) ReattachComponent(name string, timeout time.Duration, rule RecoveryRule, restart func() error) error {
	e.mu.Lock()
	c, ok := e.components[name]
	if !ok {
		e.mu.Unlock()
		return e.RegisterComponent(name, timeout, rule, restart)
	}
	if timeout <= 0 {
		timeout = c.timeout
	}
	c.timeout = timeout
	c.rule = rule
	c.restart = restart
	c.gaveUp = false
	e.mu.Unlock()

	e.monitor().Unwatch(e.monKey(name))
	e.monitor().Watch(e.monKey(name), timeout, func(_ string, lastSeen time.Time) {
		e.onComponentFailure(name, lastSeen)
	})
	e.sink.ReportStatus(telemetry.Status{
		Node:      e.node.Name(),
		Component: name,
		Kind:      telemetry.KindFTIM,
		State:     "RUNNING",
		Detail:    "reattached",
		UpdatedAt: time.Now(),
	})
	return nil
}

// UnregisterComponent removes a component from failure detection (clean
// application shutdown).
func (e *Engine) UnregisterComponent(name string) {
	e.mu.Lock()
	delete(e.components, name)
	e.mu.Unlock()
	if mon := e.monitor(); mon != nil {
		mon.Unwatch(e.monKey(name))
	}
	e.dogs.DeleteOwned(name)
}

// ComponentBeat records a heartbeat from a local component (FTIMs call
// this directly: component and engine share the node).
func (e *Engine) ComponentBeat(name string, seq uint64, status string) {
	mon := e.monitor()
	if mon == nil {
		return
	}
	mon.Observe(heartbeat.Beat{Source: e.monKey(name), Seq: seq, Status: status, SentAt: time.Now()})
}

// Components lists registered component names, sorted.
func (e *Engine) Components() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.components))
	for name := range e.components {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// notePolicyDecision records a recovery-policy decision in the metrics
// registry (no-op when uninstrumented).
func (e *Engine) notePolicyDecision(dec Decision) {
	if reg := e.cfg.Metrics; reg != nil {
		reg.Counter(`oftt_engine_policy_decisions_total{node="` + e.node.Name() +
			`",decision="` + dec.String() + `"}`).Inc()
	}
}

// onComponentFailure routes a heartbeat timeout through the recovery
// policy (StaticPolicy reproduces the classic per-component rule). lastSeen
// is the component's final observed beat (zero if it never beat).
func (e *Engine) onComponentFailure(name string, lastSeen time.Time) {
	now := time.Now()
	e.mu.Lock()
	c, ok := e.components[name]
	if !ok || e.stopped || c.gaveUp {
		e.mu.Unlock()
		return
	}
	c.restarts++
	var sinceLast time.Duration
	if !c.lastFailAt.IsZero() {
		sinceLast = now.Sub(c.lastFailAt)
	}
	c.observeFailureLocked(now)
	stats := c.statsLocked(e.role, now)
	stats.SinceLast = sinceLast
	attempt := stats.Attempt
	rule := c.rule
	restart := c.restart
	role := e.role
	pol := e.policy
	e.mu.Unlock()

	if !lastSeen.IsZero() {
		e.ins.compDetect.ObserveDuration(time.Since(lastSeen))
	}
	e.span(name, telemetry.PhaseDetect, fmt.Sprintf("heartbeat timeout (failure #%d)", attempt))
	e.event(name, "failure", fmt.Sprintf("heartbeat timeout (failure #%d)", attempt))
	e.sink.ReportStatus(telemetry.Status{
		Node: e.node.Name(), Component: name, Kind: telemetry.KindFTIM,
		State: "FAILED", Detail: fmt.Sprintf("failure #%d", attempt), UpdatedAt: time.Now(),
	})

	dec := pol.Decide(stats)
	e.notePolicyDecision(dec)
	if dec == DecideRestart && restart == nil {
		// No local provision to run; fall back to the rule's escalation
		// (the classic behavior for restart-less components).
		dec = exhaustedDecision(rule)
	}
	if dec == DecideRestart {
		e.span(name, telemetry.PhaseDecision, "local restart ("+DescribeDecision(dec, stats)+")")
		e.event(name, "recovery", "local restart (transient-fault provision)")
		// Rearm the detector so continued silence after the restart is
		// caught as the next failure in the budget.
		e.monitor().Rearm(e.monKey(name))
		e.span(name, telemetry.PhaseRestart, fmt.Sprintf("attempt %d", attempt))
		began := time.Now()
		if err := restart(); err == nil {
			e.ins.restarts.Inc()
			e.mu.Lock()
			if c, ok := e.components[name]; ok {
				c.failedRestarts = 0
				c.recoverSum += time.Since(began)
				c.recoverN++
			}
			e.mu.Unlock()
			e.sink.ReportStatus(telemetry.Status{
				Node: e.node.Name(), Component: name, Kind: telemetry.KindFTIM,
				State: "RUNNING", Detail: "restarted", UpdatedAt: time.Now(),
			})
			// The detector's recovery latch was cleared by Rearm, so the
			// resumed beats will not fire OnRecover; close the timeline
			// here where the restart is known to have succeeded.
			e.span(name, telemetry.PhaseRecovered, "local restart succeeded")
			return
		} else {
			e.event(name, "failure", fmt.Sprintf("local restart failed: %v", err))
			e.mu.Lock()
			var failed int
			if c, ok := e.components[name]; ok {
				c.failedRestarts++
				failed = c.failedRestarts
			}
			e.mu.Unlock()
			// The restart path itself is broken; ask the policy again with
			// the error on record so it can escalate past it.
			stats.FailedRestarts = failed
			dec = pol.Decide(stats)
			e.notePolicyDecision(dec)
			if dec == DecideRestart {
				// A policy that still wants a restart waits for the rearmed
				// detector to fire again rather than spinning here.
				return
			}
		}
	}

	switch dec {
	case DecideSwitchover:
		if role == RolePrimary {
			e.span(name, telemetry.PhaseDecision, "switchover: local restarts exhausted ("+DescribeDecision(dec, stats)+")")
			e.event(name, "switchover",
				"local restarts exhausted; transferring control to backup (permanent-fault provision)")
			if err := e.RequestSwitchover("component " + name + " failed permanently"); err != nil {
				e.event(name, "failure", fmt.Sprintf("switchover failed: %v", err))
			}
		}
	case DecideRebuild:
		e.rebuildComponent(name, stats, role, restart)
	case DecideGiveUp:
		e.mu.Lock()
		if c, ok := e.components[name]; ok {
			c.gaveUp = true
		}
		e.mu.Unlock()
		e.monitor().Unwatch(e.monKey(name))
		e.event(name, "failure", "recovery abandoned (policy: give up)")
	}
}

// rebuildComponent executes a demote-and-rebuild decision: give the
// primary role away first (the group keeps running on a healthy node),
// then reset the component's budget and failure telemetry and try to
// restore a standby copy locally.
func (e *Engine) rebuildComponent(name string, stats ComponentStats, role Role, restart func() error) {
	e.span(name, telemetry.PhaseDecision, "demote-and-rebuild ("+DescribeDecision(DecideRebuild, stats)+")")
	e.event(name, "switchover",
		"restart provision failing; demoting and rebuilding with a fresh budget (adaptive policy)")
	if role == RolePrimary {
		if err := e.RequestSwitchover("component " + name + " demote-and-rebuild"); err != nil {
			e.event(name, "failure", fmt.Sprintf("demote-and-rebuild switchover failed: %v", err))
		}
	}
	e.mu.Lock()
	if c, ok := e.components[name]; ok {
		c.restarts = 0
		c.failedRestarts = 0
		c.ewmaRate = 0
		c.lastFailAt = time.Time{}
	}
	e.mu.Unlock()
	if restart == nil {
		return
	}
	e.monitor().Rearm(e.monKey(name))
	e.span(name, telemetry.PhaseRestart, "rebuild")
	if err := restart(); err != nil {
		e.event(name, "failure", fmt.Sprintf("rebuild failed: %v", err))
		return
	}
	e.ins.restarts.Inc()
	e.sink.ReportStatus(telemetry.Status{
		Node: e.node.Name(), Component: name, Kind: telemetry.KindFTIM,
		State: "RUNNING", Detail: "rebuilt", UpdatedAt: time.Now(),
	})
	e.span(name, telemetry.PhaseRecovered, "rebuild succeeded")
}

// SetRecoveryRule changes a component's recovery rule at run-time — the
// paper's "dynamically at run-time" option that its implementation left as
// future work ("The current implementation only supports static
// decision"). The restart budget is preserved unless resetBudget is set.
func (e *Engine) SetRecoveryRule(name string, rule RecoveryRule, resetBudget bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.components[name]
	if !ok {
		return fmt.Errorf("engine: unknown component %q", name)
	}
	c.rule = rule
	c.gaveUp = false
	if resetBudget {
		c.restarts = 0
		c.failedRestarts = 0
		c.ewmaRate = 0
		c.lastFailAt = time.Time{}
	}
	return nil
}

// ComponentStatsOf returns a snapshot of the failure telemetry the
// recovery policy sees for a component (tests, monitor, /state endpoints).
func (e *Engine) ComponentStatsOf(name string) (ComponentStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.components[name]
	if !ok {
		return ComponentStats{}, false
	}
	return c.statsLocked(e.role, time.Now()), true
}

// RecoveryRuleOf returns a component's current rule (for tests and the
// monitor).
func (e *Engine) RecoveryRuleOf(name string) (RecoveryRule, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.components[name]
	if !ok {
		return RecoveryRule{}, false
	}
	return c.rule, true
}

// ResetComponent clears a component's restart budget (after a confirmed
// repair).
func (e *Engine) ResetComponent(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.components[name]; ok {
		c.restarts = 0
		c.gaveUp = false
		c.failedRestarts = 0
		c.ewmaRate = 0
		c.lastFailAt = time.Time{}
	}
}

// Distress is OFTTDistress: a component reports a significant problem and
// requests a switchover, honored if the peer is functional; otherwise the
// distress is logged and local recovery continues.
func (e *Engine) Distress(component, reason string) error {
	e.event(component, "failure", "distress: "+reason)
	if e.Role() != RolePrimary {
		return ErrNotPrimary
	}
	if e.PeerFailed() {
		e.event(component, "info", "distress switchover refused: peer not functional")
		return ErrPeerUnavailable
	}
	return e.RequestSwitchover("distress from " + component + ": " + reason)
}

// Status assembles the RPC-visible status block.
func (e *Engine) Status() EngineStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	comps := make([]string, 0, len(e.components))
	for name := range e.components {
		comps = append(comps, name)
	}
	sort.Strings(comps)
	return EngineStatus{
		Node:        e.node.Name(),
		Role:        int(e.role),
		Incarnation: e.incarnation,
		PeerFailed:  e.peerFailed,
		Components:  comps,
		LastCkptSeq: e.store.LastSeq(),
	}
}

// Stub is the engine's DCOM-exported control interface.
type Stub struct {
	e *Engine
}

// Hello services peer negotiation. Responding with our current role lets
// the caller decide; if we are also negotiating, we apply the same
// deterministic tie-break so both sides agree without a second round.
func (s *Stub) Hello(req helloReq) (helloResp, error) {
	e := s.e
	e.mu.Lock()
	resp := helloResp{
		Node:        e.node.Name(),
		Incarnation: e.incarnation,
		Role:        int(e.role),
		Preferred:   e.cfg.Preferred,
	}
	bothNegotiating := e.role == RoleNegotiating && Role(req.Role) == RoleNegotiating
	e.mu.Unlock()

	if bothNegotiating {
		if e.winsTie(req.Preferred, req.Node) {
			e.becomePrimary("negotiation: won tie-break (hello)")
		} else {
			e.becomeBackup("negotiation: lost tie-break (hello)")
		}
	}
	return resp, nil
}

// TakeOverRPC services a commanded switchover from the peer.
func (s *Stub) TakeOverRPC(reason string) error {
	s.e.TakeOver("peer request: " + reason)
	return nil
}

// DemoteRPC services a commanded demotion from the peer.
func (s *Stub) DemoteRPC(reason string) error {
	s.e.Demote("peer request: " + reason)
	return nil
}

// StatusRPC services remote status queries (system monitor, tests).
func (s *Stub) StatusRPC() (EngineStatus, error) {
	return s.e.Status(), nil
}

// FetchSnapshot serves this engine's stored checkpoint to the peer (the
// local-restart recovery path). Empty bytes mean the store is empty.
func (s *Stub) FetchSnapshot() ([]byte, error) {
	snap := s.e.store.Export()
	if snap == nil {
		return nil, nil
	}
	return snap.Encode()
}

// Package engine implements the OFTT engine (Section 2.2.1), the core of
// the toolkit: role management for the primary/backup pair, failure
// detection for every monitored component and for the peer node, recovery
// management driven by per-component recovery rules, and status reporting
// to the system monitor.
//
// One engine runs on each node of the pair as a separate process started by
// the application (in the original, a client-side COM server). The two
// engines exchange heartbeats over one or two Ethernet segments and
// negotiate roles at startup with the retry logic Section 3.2 describes.
package engine

import (
	"time"

	"repro/internal/telemetry"
)

// Role is the node's position in the primary/backup pair.
type Role int

// Roles.
const (
	// RoleNegotiating: startup, before the pair has agreed.
	RoleNegotiating Role = iota + 1
	// RolePrimary: executing the application, shipping checkpoints.
	RolePrimary
	// RoleBackup: receiving checkpoints, watching the primary.
	RoleBackup
	// RoleShutdown: the engine has stopped (voluntarily or by negotiation
	// failure with AloneShutdown policy).
	RoleShutdown
)

// String renders the role.
func (r Role) String() string {
	switch r {
	case RoleNegotiating:
		return "NEGOTIATING"
	case RolePrimary:
		return "PRIMARY"
	case RoleBackup:
		return "BACKUP"
	case RoleShutdown:
		return "SHUTDOWN"
	default:
		return "UNKNOWN"
	}
}

// AloneAction is what a node does when the peer is unreachable after all
// negotiation retries.
type AloneAction int

// Alone actions.
const (
	// AloneBecomePrimary: run alone (availability over split-brain safety).
	AloneBecomePrimary AloneAction = iota + 1
	// AloneShutdown: refuse to run without the peer — the paper's original
	// startup logic, designed to minimize the impact of network failures
	// ("both nodes become the primary"), which caused the false-shutdown
	// problem of Section 3.2.
	AloneShutdown
)

// StartupPolicy is the negotiation configuration of Section 3.2. The
// paper's original logic is {Retries: 1, Alone: AloneShutdown}; the shipped
// fix added "additional logic ... to initiate retries several times before
// it shuts down".
type StartupPolicy struct {
	// Retries is how many Hello attempts are made before giving up.
	Retries int
	// RetryInterval separates attempts.
	RetryInterval time.Duration
	// Alone decides the outcome when every attempt fails.
	Alone AloneAction
}

// ExhaustedAction is what recovery management does when a component's local
// restarts are used up.
type ExhaustedAction int

// Exhausted actions.
const (
	// ExhaustSwitchover transfers control to the backup node (the paper's
	// "permanent fault" provision).
	ExhaustSwitchover ExhaustedAction = iota + 1
	// ExhaustKeepRestarting never gives up on local recovery.
	ExhaustKeepRestarting
	// ExhaustGiveUp marks the component failed and stops recovering.
	ExhaustGiveUp
)

// RecoveryRule controls how a detected failure is recovered: "whether to
// initiate a local recovery (e.g., a transient fault), or to transfer
// control to the backup node (e.g., a permanent fault)". The current
// implementation, like the paper's, is specified statically.
type RecoveryRule struct {
	// MaxLocalRestarts is how many local restarts are tried first.
	MaxLocalRestarts int
	// Exhausted is the action after local restarts are used up.
	Exhausted ExhaustedAction
}

// Config parameterizes an engine.
type Config struct {
	// PeerNode is the machine name of the other half of the pair.
	PeerNode string

	// GroupID names the FT group this engine serves. The classic standalone
	// pair leaves it empty; fabric groups set it so many engines can share a
	// node's endpoints and beat streams.
	GroupID string

	// Peers lists the other replicas' machine names. Empty falls back to
	// {PeerNode}. One peer keeps the classic pair protocol (negotiation +
	// tie-break); two or more activate the lease/quorum election path.
	Peers []string

	// LeaseDuration bounds how long a quorum-elected primary keeps its role
	// without hearing from a majority of the group (default PeerTimeout).
	LeaseDuration time.Duration

	// Transport, when set, runs this engine over the node's shared fabric
	// transport — multiplexed per-node-pair beats and a group-routed DCOM
	// exporter — instead of binding its own endpoints.
	Transport *NodeTransport

	// HeartbeatInterval is the engine-to-engine beat period (default 20ms).
	HeartbeatInterval time.Duration
	// PeerTimeout declares the peer dead after this much silence on every
	// network segment (default 5x heartbeat).
	PeerTimeout time.Duration
	// SweepInterval is the failure-detector scan period (default 1/4 of
	// the smallest timeout, min 2ms).
	SweepInterval time.Duration
	// RPCTimeout bounds engine-to-engine control calls (default 500ms).
	RPCTimeout time.Duration
	// CheckpointAckTimeout bounds checkpoint acknowledgement (default 1s).
	CheckpointAckTimeout time.Duration

	// Startup is the negotiation policy (default: 5 retries, 50ms apart,
	// AloneBecomePrimary).
	Startup StartupPolicy
	// Preferred breaks negotiation ties in this node's favor.
	Preferred bool

	// StorePath, when set, persists the checkpoint store to disk so the
	// last confirmed checkpoint survives even a whole-pair outage.
	StorePath string

	// StoreDir, when set, persists the checkpoint store as a segmented
	// write-ahead log under this directory instead: applies append
	// O(delta) records with background compaction, rather than rewriting
	// the whole state file per apply. Takes precedence over StorePath.
	StoreDir string

	// CheckpointChunkSize is the streaming transfer's raw bytes per chunk
	// (default checkpoint.DefaultChunkSize).
	CheckpointChunkSize int
	// CheckpointWindow is the streaming transfer's credit window in
	// chunks (default checkpoint.DefaultWindow).
	CheckpointWindow int
	// CheckpointCompress enables per-chunk flate compression on the
	// checkpoint stream.
	CheckpointCompress bool

	// Policy selects the recovery action for component failures. Nil means
	// StaticPolicy: follow each component's RecoveryRule verbatim. Set an
	// *AdaptivePolicy (or any RecoveryPolicy) to pick restart vs. switchover
	// vs. demote-and-rebuild from observed failure telemetry instead.
	Policy RecoveryPolicy

	// Metrics, when set, is where the engine registers its instruments
	// (role transitions, detection latency, restart counts, switchover
	// duration). Nil runs uninstrumented at zero cost.
	Metrics *telemetry.Registry

	// DisableTieBreak turns off split-brain resolution (the lexicographic
	// demotion on dual-primary detection). Test-only: chaos campaigns use
	// it to prove the eventually-single-primary invariant checker catches
	// a pair that never resolves.
	DisableTieBreak bool
}

func (c *Config) applyDefaults() {
	if len(c.Peers) == 0 && c.PeerNode != "" {
		c.Peers = []string{c.PeerNode}
	}
	if c.PeerNode == "" && len(c.Peers) == 1 {
		c.PeerNode = c.Peers[0]
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 5 * c.HeartbeatInterval
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.PeerTimeout / 8
		if c.SweepInterval < 2*time.Millisecond {
			c.SweepInterval = 2 * time.Millisecond
		}
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 500 * time.Millisecond
	}
	if c.CheckpointAckTimeout <= 0 {
		c.CheckpointAckTimeout = time.Second
	}
	if c.Startup.Retries <= 0 {
		c.Startup.Retries = 5
	}
	if c.Startup.RetryInterval <= 0 {
		c.Startup.RetryInterval = 50 * time.Millisecond
	}
	if c.Startup.Alone == 0 {
		c.Startup.Alone = AloneBecomePrimary
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = c.PeerTimeout
	}
}

// helloReq/helloResp are the negotiation frames.
type helloReq struct {
	Node        string
	Incarnation uint64
	Role        int
	Preferred   bool
}

type helloResp struct {
	Node        string
	Incarnation uint64
	Role        int
	Preferred   bool
}

// EngineStatus is the RPC-visible status block.
type EngineStatus struct {
	Node        string
	Role        int
	Incarnation uint64
	PeerFailed  bool
	Components  []string
	LastCkptSeq uint64
}

package engine

import (
	"fmt"
	"time"
)

// Decision is the recovery action a policy selects for one component
// failure. The zero value means "no action" (used internally when a rule
// with ExhaustKeepRestarting has no restart provision to run).
type Decision int

// Decisions.
const (
	decideNone Decision = iota
	// DecideRestart retries the local restart provision (the paper's
	// transient-fault recovery).
	DecideRestart
	// DecideSwitchover transfers control to a peer node (the paper's
	// permanent-fault recovery).
	DecideSwitchover
	// DecideRebuild demotes this node (if primary) and rebuilds the local
	// copy with a fresh restart budget — the adaptive middle ground for a
	// node whose restart provision itself is failing: give the role away
	// first, then keep trying to restore a standby copy in the background.
	DecideRebuild
	// DecideGiveUp abandons recovery for the component.
	DecideGiveUp
)

// String renders the decision for spans and metrics labels.
func (d Decision) String() string {
	switch d {
	case DecideRestart:
		return "restart"
	case DecideSwitchover:
		return "switchover"
	case DecideRebuild:
		return "demote-and-rebuild"
	case DecideGiveUp:
		return "give-up"
	default:
		return "none"
	}
}

// ComponentStats is the per-component telemetry a recovery policy decides
// from. It is assembled by the engine at each failure, before the decision.
type ComponentStats struct {
	// Component is the failed component's name.
	Component string
	// Attempt is the failure count since the budget was last reset,
	// including the current failure (so the first failure has Attempt 1).
	Attempt int
	// Rule is the component's configured static rule — the policy baseline.
	Rule RecoveryRule
	// Role is this engine's role at decision time.
	Role Role
	// SinceLast is the time since the previous failure (zero on the first).
	SinceLast time.Duration
	// FailureRate is an exponentially weighted moving average of the
	// component's failure arrival rate in failures/second. Zero until two
	// failures have been observed.
	FailureRate float64
	// FailedRestarts counts consecutive restart provisions that returned an
	// error (reset on any successful restart).
	FailedRestarts int
	// MeanRecovery is the mean duration of this component's successful
	// local restarts (zero until one has succeeded).
	MeanRecovery time.Duration
}

// RecoveryPolicy picks the recovery action for a component failure. The
// engine consults it once per detected failure, and a second time if the
// chosen restart provision itself returns an error (with FailedRestarts
// incremented) so a policy can escalate past a broken restart path.
//
// Implementations must be safe for concurrent use; the engine may serve
// several components.
type RecoveryPolicy interface {
	Decide(s ComponentStats) Decision
}

// exhaustedDecision maps a static rule's exhausted action to a Decision —
// the escalation applied when the budget is spent or the restart provision
// is absent/broken.
func exhaustedDecision(rule RecoveryRule) Decision {
	switch rule.Exhausted {
	case ExhaustSwitchover:
		return DecideSwitchover
	case ExhaustGiveUp:
		return DecideGiveUp
	default: // ExhaustKeepRestarting: nothing left to do but wait for beats.
		return decideNone
	}
}

// StaticPolicy reproduces the classic per-component RecoveryRule behavior
// exactly: restart while the budget lasts (or forever under
// ExhaustKeepRestarting), then the rule's exhausted action. It is the
// default when Config.Policy is nil.
type StaticPolicy struct{}

// Decide implements RecoveryPolicy.
func (StaticPolicy) Decide(s ComponentStats) Decision {
	if s.FailedRestarts > 0 {
		// The restart provision itself failed; the static rule escalates
		// straight to its exhausted action rather than retrying in place.
		return exhaustedDecision(s.Rule)
	}
	if s.Attempt <= s.Rule.MaxLocalRestarts || s.Rule.Exhausted == ExhaustKeepRestarting {
		return DecideRestart
	}
	return exhaustedDecision(s.Rule)
}

// AdaptivePolicy picks the recovery action from observed failure telemetry
// instead of a fixed budget: local restarts are tried while they appear to
// be converging, a crash loop (failures arriving faster than MaxFailureRate
// once MinSamples failures have been seen) escalates to switchover even if
// budget remains, and a restart provision that itself keeps erroring
// escalates to demote-and-rebuild — the node gives the role away and
// rebuilds its copy with a fresh budget instead of wedging the group.
type AdaptivePolicy struct {
	// MaxFailureRate is the failures/second EWMA above which local restarts
	// are judged non-converging (default 5).
	MaxFailureRate float64
	// MinSamples is how many failures must be observed before the rate
	// estimate is trusted (default 3).
	MinSamples int
	// RebuildAfterFailedRestarts escalates to demote-and-rebuild after this
	// many consecutive restart-provision errors (default 2).
	RebuildAfterFailedRestarts int
	// BudgetSlack multiplies the static rule's MaxLocalRestarts before the
	// budget alone forces escalation (default 1: honor the rule's budget).
	BudgetSlack int
}

func (p *AdaptivePolicy) maxRate() float64 {
	if p.MaxFailureRate > 0 {
		return p.MaxFailureRate
	}
	return 5
}

func (p *AdaptivePolicy) minSamples() int {
	if p.MinSamples > 0 {
		return p.MinSamples
	}
	return 3
}

func (p *AdaptivePolicy) rebuildAfter() int {
	if p.RebuildAfterFailedRestarts > 0 {
		return p.RebuildAfterFailedRestarts
	}
	return 2
}

func (p *AdaptivePolicy) budget(rule RecoveryRule) int {
	slack := p.BudgetSlack
	if slack <= 0 {
		slack = 1
	}
	return rule.MaxLocalRestarts * slack
}

// Decide implements RecoveryPolicy.
func (p *AdaptivePolicy) Decide(s ComponentStats) Decision {
	if s.FailedRestarts >= p.rebuildAfter() {
		return DecideRebuild
	}
	if s.FailedRestarts > 0 {
		// One restart error: retry the provision once more before the
		// rebuild escalation — transient exec failures are common on a
		// loaded box.
		return DecideRestart
	}
	if s.Attempt >= p.minSamples() && s.FailureRate > p.maxRate() {
		// Crash loop: restarts complete but the component keeps dying
		// faster than the convergence threshold. Move the role away.
		return DecideSwitchover
	}
	if s.Attempt > p.budget(s.Rule) && s.Rule.Exhausted != ExhaustKeepRestarting {
		return exhaustedDecision(s.Rule)
	}
	return DecideRestart
}

// DescribeDecision renders the policy inputs behind a decision for
// telemetry spans.
func DescribeDecision(d Decision, s ComponentStats) string {
	return fmt.Sprintf("policy=%s attempt=%d rate=%.1f/s failed-restarts=%d",
		d, s.Attempt, s.FailureRate, s.FailedRestarts)
}
